package scdn

import (
	"strings"
	"testing"
	"time"
)

func TestBuildStrategies(t *testing.T) {
	for _, strategy := range []string{"", "social", "trust", "availability"} {
		c := NewCommunity().
			Add(Researcher{ID: 1, Site: 0}).
			Add(Researcher{ID: 2, Site: 1}).
			Connect(1, 2, Coauthor, 1)
		opts := DefaultOptions(1)
		opts.Strategy = strategy
		opts.Churn = false
		if _, err := c.Build(opts); err != nil {
			t.Fatalf("strategy %q: %v", strategy, err)
		}
	}
	c := NewCommunity().Add(Researcher{ID: 1, Site: 0})
	opts := DefaultOptions(1)
	opts.Strategy = "psychic"
	if _, err := c.Build(opts); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestTrustStrategyEndToEnd(t *testing.T) {
	n := buildStrategyNetwork(t, "trust")
	if err := n.Publish(1, "d", 1e6); err != nil {
		t.Fatal(err)
	}
	hosts, err := n.Replicate("d", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	n.Run(time.Hour)
}

func TestAvailabilityStrategyEndToEnd(t *testing.T) {
	n := buildStrategyNetwork(t, "availability")
	if err := n.Publish(1, "d", 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Replicate("d", 2); err != nil {
		t.Fatal(err)
	}
	n.Run(time.Hour)
}

func buildStrategyNetwork(t *testing.T, strategy string) *Network {
	t.Helper()
	c := NewCommunity()
	for i := ResearcherID(1); i <= 6; i++ {
		c.Add(Researcher{ID: i, Site: int(i - 1), Institutional: i%2 == 0})
	}
	c.Connect(1, 2, Coauthor, 2).
		Connect(1, 3, Coauthor, 1).
		Connect(2, 4, Coauthor, 1).
		Connect(3, 5, Coauthor, 1).
		Connect(4, 6, Coauthor, 1)
	opts := DefaultOptions(5)
	opts.Strategy = strategy
	opts.MigrationUptimeFloor = 0.5
	n, err := c.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPlanPartitionMethods(t *testing.T) {
	n := buildNetwork(t)
	segments := []PartitionSegment{
		{ID: "s1", Bytes: 100}, {ID: "s2", Bytes: 100}, {ID: "s3", Bytes: 100},
	}
	usage := SegmentUsage{
		1: {"s1": 10},
		5: {"s2": 10},
	}
	hosts := []ResearcherID{2, 5}
	for _, method := range []PartitionMethod{PartitionRoundRobin, PartitionUsage, PartitionSocial} {
		plan, err := n.PlanPartition(method, segments, usage, hosts, 1)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(plan.Assignment) != 3 {
			t.Fatalf("%s assigned %d segments", method, len(plan.Assignment))
		}
		if plan.Locality < 0 || plan.Locality > 1 {
			t.Fatalf("%s locality = %v", method, plan.Locality)
		}
	}
	// Usage-based should co-locate s1 near researcher 1 (host 2 is 1's
	// neighbour; host 5 is three hops away).
	plan, err := n.PlanPartition(PartitionUsage, segments, usage, hosts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assignment["s1"][0] != 2 {
		t.Fatalf("usage plan put s1 on %v, want neighbour 2", plan.Assignment["s1"])
	}
	if _, err := n.PlanPartition("bogus", segments, usage, hosts, 1); err == nil {
		t.Fatal("bogus method accepted")
	}
	if _, err := n.PlanPartition(PartitionUsage, nil, usage, hosts, 1); err == nil {
		t.Fatal("empty segments accepted")
	}
}

func TestScorePartition(t *testing.T) {
	n := buildNetwork(t)
	usage := SegmentUsage{1: {"s": 5}}
	perfect := map[DatasetID][]ResearcherID{"s": {1}}
	score, err := n.ScorePartition(perfect, usage)
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 {
		t.Fatalf("perfect score = %v", score)
	}
	if _, err := n.ScorePartition(nil, usage); err == nil {
		t.Fatal("nil assignment accepted")
	}
}

func TestMigrationViaPublicAPI(t *testing.T) {
	c := NewCommunity()
	for i := ResearcherID(1); i <= 8; i++ {
		c.Add(Researcher{ID: i, Site: int(i - 1), Institutional: i <= 2})
	}
	for i := ResearcherID(2); i <= 8; i++ {
		c.Connect(1, i, Coauthor, 1)
	}
	opts := DefaultOptions(21)
	opts.Churn = true
	opts.MigrationUptimeFloor = 0.9
	n, err := c.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Publish(3, "d", 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Replicate("d", 3); err != nil {
		t.Fatal(err)
	}
	n.Run(48 * time.Hour)
	cdn, _ := n.Metrics()
	// With churny hosts below the floor, migrations should occur; the
	// replica set must always retain the origin.
	reps, err := n.Replicas("d")
	if err != nil {
		t.Fatal(err)
	}
	foundOrigin := false
	for _, r := range reps {
		if r == 3 {
			foundOrigin = true
		}
	}
	if !foundOrigin {
		t.Fatalf("origin missing from replica set %v", reps)
	}
	t.Logf("migrations over 48h: %d, final replica set %v", cdn.Migrations.Value(), reps)
}

func TestNewStudyFromDBLP(t *testing.T) {
	const xml = `<dblp>
	<article><author>A</author><author>B</author><year>2009</year></article>
	<article><author>A</author><author>B</author><year>2010</year></article>
	<article><author>B</author><author>C</author><year>2010</year></article>
	<article><author>A</author><author>C</author><year>2011</year></article>
	</dblp>`
	s, err := NewStudyFromDBLP(strings.NewReader(xml), "A", 2009, 2010, 2011,
		StudyConfig{Seed: 1, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := s.TableI()
	if rows[0].Nodes != 3 {
		t.Fatalf("baseline nodes = %d, want 3", rows[0].Nodes)
	}
	// A-B coauthored twice → only pair surviving double pruning.
	if rows[1].Nodes != 2 {
		t.Fatalf("double nodes = %d, want 2", rows[1].Nodes)
	}
	curves, err := s.Fig3("baseline")
	if err != nil || len(curves) != 4 {
		t.Fatalf("fig3 on real data: %d curves, %v", len(curves), err)
	}
	if _, err := NewStudyFromDBLP(strings.NewReader(xml), "Nobody", 2009, 2010, 2011, StudyConfig{}); err == nil {
		t.Fatal("unknown seed author accepted")
	}
	if _, err := NewStudyFromDBLP(strings.NewReader("<dblp><article>"), "A", 2009, 2010, 2011, StudyConfig{}); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestUpdateAndStalenessPublicAPI(t *testing.T) {
	n := buildNetwork(t)
	if err := n.Publish(1, "d", 5e6); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Replicate("d", 2); err != nil {
		t.Fatal(err)
	}
	n.Run(time.Hour)
	if n.Stale("d") {
		t.Fatal("fresh replicas stale")
	}
	if err := n.Update("d"); err != nil {
		t.Fatal(err)
	}
	if !n.Stale("d") {
		t.Fatal("update did not mark replicas stale")
	}
	n.Run(12 * time.Hour)
	if n.Stale("d") {
		t.Fatalf("anti-entropy did not converge: %+v", n.Staleness())
	}
	rep := n.Staleness()
	if rep.Propagations == 0 || rep.Ratio != 0 {
		t.Fatalf("staleness report = %+v", rep)
	}
	if err := n.Update("ghost"); err == nil {
		t.Fatal("unknown dataset updated")
	}
}

func TestProvenancePublicAPI(t *testing.T) {
	n := buildNetwork(t)
	if err := n.Publish(1, "raw", 100e6); err != nil {
		t.Fatal(err)
	}
	if err := n.PublishDerived(2, "fa", 1400e6, "raw", "fa-calculation"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Replicate("fa", 2); err != nil {
		t.Fatal(err)
	}
	n.Run(2 * time.Hour)
	n.Request(6, "fa", nil)
	n.Run(6 * time.Hour)
	n.Update("fa")

	chain, err := n.Lineage("fa")
	if err != nil || len(chain) != 2 || chain[0] != "raw" || chain[1] != "fa" {
		t.Fatalf("lineage = %v, %v", chain, err)
	}
	if desc := n.Descendants("raw"); len(desc) != 1 || desc[0] != "fa" {
		t.Fatalf("descendants = %v", desc)
	}
	custody := n.Custody("fa")
	if len(custody) < 2 { // at least the two replica holders
		t.Fatalf("custody = %v", custody)
	}
	hist := n.History("fa")
	var sawCreated, sawDerived, sawAccessed, sawUpdated bool
	for _, e := range hist {
		switch e.Kind {
		case ProvCreated:
			sawCreated = true
		case ProvDerived:
			sawDerived = true
		case ProvAccessed:
			sawAccessed = true
		case ProvUpdated:
			sawUpdated = true
		}
	}
	if !sawCreated || !sawDerived || !sawAccessed || !sawUpdated {
		t.Fatalf("history missing kinds: %+v", hist)
	}
	if acts := n.Activity(6); len(acts) == 0 {
		t.Fatal("accessor has no recorded activity")
	}
	var sb strings.Builder
	if err := n.WriteAudit(&sb, "fa"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "derived") {
		t.Fatalf("audit trail malformed:\n%s", sb.String())
	}
}
