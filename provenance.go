package scdn

import (
	"io"

	"scdn/internal/provenance"
)

// ProvenanceEvent is one record of a dataset's lineage/custody history.
type ProvenanceEvent = provenance.Event

// Provenance event kinds re-exported for event inspection.
const (
	ProvCreated    = provenance.Created
	ProvDerived    = provenance.Derived
	ProvReplicated = provenance.Replicated
	ProvAccessed   = provenance.Accessed
	ProvUpdated    = provenance.Updated
	ProvRetired    = provenance.Retired
)

// PublishDerived publishes a dataset produced from parent by a workflow
// stage (e.g. an FA calculation derived from a raw MRI session),
// recording the derivation in the provenance log.
func (n *Network) PublishDerived(owner ResearcherID, id DatasetID, bytes int64,
	parent DatasetID, stage string) error {
	return n.sys.PublishDerived(owner, id, bytes, parent, stage)
}

// History returns a dataset's full provenance trail in record order.
func (n *Network) History(id DatasetID) []ProvenanceEvent {
	return n.sys.Provenance.History(id)
}

// Lineage returns a dataset's derivation chain, root first.
func (n *Network) Lineage(id DatasetID) ([]DatasetID, error) {
	return n.sys.Provenance.Lineage(id)
}

// Descendants returns every dataset derived (transitively) from id.
func (n *Network) Descendants(id DatasetID) []DatasetID {
	return n.sys.Provenance.Descendants(id)
}

// Custody returns the researchers currently holding copies of a dataset
// according to the provenance log (the accountability view; the origin is
// tracked via its Created record).
func (n *Network) Custody(id DatasetID) []ResearcherID {
	holders := n.sys.Provenance.Custody(id, true)
	out := make([]ResearcherID, 0, len(holders))
	for _, h := range holders {
		out = append(out, ResearcherID(h))
	}
	return out
}

// Activity returns everything a researcher did or received — the
// accountability audit for one participant.
func (n *Network) Activity(user ResearcherID) []ProvenanceEvent {
	return n.sys.Provenance.Activity(int64(user))
}

// WriteAudit prints a dataset's audit trail.
func (n *Network) WriteAudit(w io.Writer, id DatasetID) error {
	return n.sys.Provenance.WriteAudit(w, id)
}
