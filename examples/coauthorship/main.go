// Coauthorship analysis: the paper's Section VI methodology step by step.
// Builds the synthetic DBLP-like corpus, derives the three trust
// subgraphs (Table I), inspects their topology (Fig. 2), measures the
// replica hit rate of every placement algorithm (Fig. 3), and runs the
// trust-threshold ablations — all through the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"scdn"
)

func main() {
	study, err := scdn.NewStudy(scdn.StudyConfig{
		Seed: 42,
		Runs: 30, // the paper uses 100; 30 keeps the example snappy
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table I — trust subgraphs")
	fmt.Println("(paper: 2335/1163/17973, 811/881/5123, 604/435/1988)")
	if err := study.WriteTableI(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFig. 2 — topology under trust pruning")
	for _, st := range study.Fig2() {
		fmt.Printf("  %-22s span=%d hops, components=%d (largest %d), seed degree=%d\n",
			st.Name, st.MaxSpan, st.Components, st.LargestComp, st.SeedDegree)
	}
	fmt.Println("  → the baseline stays connected at span 6; double-coauthorship")
	fmt.Println("    pruning detaches loosely linked groups into islands (Fig. 2b).")

	for _, panel := range []string{"baseline", "double", "fewauthors"} {
		fmt.Println()
		if err := study.WriteFig3(os.Stdout, panel); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nObservations matching the paper:")
	fmt.Println("  1. hit rates rise with trust pruning: baseline < double < number-of-authors;")
	fmt.Println("  2. community-elected replicas win by avoiding clustered placements;")
	fmt.Println("  3. node degree plateaus on the baseline graph — the 86-author")
	fmt.Println("     consortium publication creates artificially high-degree nodes;")
	fmt.Println("  4. clustering coefficient picks tight low-reach cliques and loses.")

	// Export Fig. 2(c) for rendering with Graphviz.
	f, err := os.Create("fig2c.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := study.WriteDOT(f, "fewauthors"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote fig2c.dot (render with: dot -Tsvg -Kneato fig2c.dot)")
}
