// Real-data path: the original study ran on a DBLP extraction. This
// example round-trips the pipeline through DBLP XML: it exports the
// calibrated synthetic corpus in DBLP format, then re-imports it exactly
// the way a user would load their own `dblp.xml` slice — by naming the
// ego author — and reruns the Section VI evaluation on the parsed data.
//
// To run on actual DBLP data instead, download a slice of dblp.xml and:
//
//	go run ./cmd/scdn-casestudy -dblp your.xml -seed-author "Kyle Chard"
package main

import (
	"fmt"
	"log"
	"os"

	"scdn"
)

func main() {
	// Export the synthetic corpus as DBLP XML.
	study, err := scdn.NewStudy(scdn.StudyConfig{Seed: 42, Runs: 1})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.CreateTemp("", "scdn-dblp-*.xml")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := study.ExportDBLP(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(f.Name())
	fmt.Printf("exported corpus as DBLP XML: %s (%.1f MB)\n", f.Name(), float64(info.Size())/1e6)

	// Re-import through the real-data path, exactly as with a DBLP slice.
	in, err := os.Open(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	reimported, err := scdn.NewStudyFromDBLP(in, "author-1", 2009, 2010, 2011,
		scdn.StudyConfig{Seed: 42, Runs: 20})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTable I from the re-imported XML (matches the synthetic run):")
	if err := reimported.WriteTableI(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := reimported.WriteFig3(os.Stdout, "fewauthors"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSwap the temp file for your own DBLP export and the same code")
	fmt.Println("reproduces the paper's evaluation on real coauthorship data.")
}
