// Medical-imaging trial: the paper's Section IV use case. A multi-center
// MRI study runs over an S-CDN built from the trusted (number-of-authors)
// coauthorship subgraph: raw 100 MB sessions expand through analysis
// workflows into ~1.4 GB of derived data per session, shared across the
// collaboration. The example publishes the trial's datasets, replicates
// the derived data, replays the analysts' accesses, and reports the
// Section V-E metrics.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"scdn"
)

func main() {
	study, err := scdn.NewStudy(scdn.StudyConfig{Seed: 42, Runs: 1})
	if err != nil {
		log.Fatal(err)
	}
	// The trusted subgraph is the collaboration: institutions with proven
	// working relationships, pre-approved for the trial (the paper's
	// HIPAA framing). The top 10% run always-on institutional servers.
	community, err := study.Community("fewauthors", 0.10)
	if err != nil {
		log.Fatal(err)
	}
	opts := scdn.DefaultOptions(42)
	opts.MaxReplicas = 4
	net, err := community.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-center trial over %d researchers\n", community.Size())

	// 12 subjects, 2 sessions each, 4 workflow stages (brain extraction,
	// registration, ROI annotation, FA calculation).
	trial, err := scdn.GenerateMedicalTrial(net, 12, 7)
	if err != nil {
		log.Fatal(err)
	}
	var totalBytes int64
	for _, d := range trial.Datasets {
		if der, ok := trial.Derivations[d.ID]; ok {
			// Derived datasets carry their lineage into the provenance log.
			err = net.PublishDerived(d.Owner, d.ID, d.Bytes, der.Parent, der.Stage)
		} else {
			err = net.Publish(d.Owner, d.ID, d.Bytes)
		}
		if err != nil {
			log.Fatal(err)
		}
		totalBytes += d.Bytes
	}
	fmt.Printf("published %d datasets (%.1f GB total: raw sessions + derived analyses)\n",
		len(trial.Datasets), float64(totalBytes)/1e9)

	// Replicate every dataset twice beyond its origin; the allocation
	// servers add more on demand as the trial runs.
	for _, d := range trial.Datasets {
		if _, err := net.Replicate(d.ID, 2); err != nil {
			log.Fatal(err)
		}
	}
	net.Schedule(trial.Requests)
	fmt.Printf("replaying %d analyst accesses over 30 days of the trial...\n\n", len(trial.Requests))
	net.Run(30 * 24 * time.Hour)

	if err := net.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Provenance: the audit trail the paper's vision demands for
	// sensitive medical data — lineage, custody, and access history.
	sample := trial.Datasets[len(trial.Datasets)-1].ID
	chain, err := net.Lineage(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovenance of %q:\n  lineage: %v\n  custody: %v\n",
		sample, chain, net.Custody(sample))
	fmt.Println("  audit trail:")
	if err := net.WriteAudit(os.Stdout, sample); err != nil {
		log.Fatal(err)
	}
}
