// Data partitioning: the second allocation stage of Section V-D. After
// replica locations exist, which data segments go where? This example
// compares the socially blind round-robin baseline, traditional
// usage-based assignment, and the paper's socially informed partitioning
// on a collaboration whose access patterns follow its community
// structure.
package main

import (
	"fmt"
	"log"

	"scdn"
)

func main() {
	study, err := scdn.NewStudy(scdn.StudyConfig{Seed: 42, Runs: 1})
	if err != nil {
		log.Fatal(err)
	}
	community, err := study.Community("fewauthors", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	opts := scdn.DefaultOptions(42)
	opts.Churn = false
	net, err := community.Build(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate replica hosts: one placement run of the CDN's algorithm.
	wl, err := scdn.GenerateSocialWorkload(net, scdn.WorkloadConfig{
		Seed: 7, Datasets: 24, Requests: 4000,
		Duration: 24 * 3600 * 1e9, SocialLocality: 0.85,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range wl.Datasets {
		if err := net.Publish(d.Owner, d.ID, d.Bytes); err != nil {
			log.Fatal(err)
		}
	}
	hosts, err := net.Replicate(wl.Datasets[0].ID, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate replica hosts: %v\n\n", hosts)

	// Usage derived from the workload's access schedule: who reads what.
	// The "full" profile sees every access; the "sparse" profile sees
	// only the first 5% — the realistic cold-start situation where the
	// paper argues social structure should fill the gap.
	full := scdn.SegmentUsage{}
	sparse := scdn.SegmentUsage{}
	record := func(u scdn.SegmentUsage, user scdn.ResearcherID, data scdn.DatasetID) {
		if u[user] == nil {
			u[user] = map[scdn.DatasetID]uint64{}
		}
		u[user][data]++
	}
	for i, r := range wl.Requests {
		record(full, r.User, r.Data)
		if i < len(wl.Requests)/20 {
			record(sparse, r.User, r.Data)
		}
	}
	var segments []scdn.PartitionSegment
	for _, d := range wl.Datasets {
		segments = append(segments, scdn.PartitionSegment{ID: d.ID, Bytes: d.Bytes})
	}

	evaluate := func(label string, planning scdn.SegmentUsage) {
		fmt.Printf("%s\n%-14s %s\n", label, "method",
			"locality vs. the FULL future workload (1.0 = served at the accessing node)")
		for _, method := range []scdn.PartitionMethod{
			scdn.PartitionRoundRobin, scdn.PartitionUsage, scdn.PartitionSocial,
		} {
			plan, err := net.PlanPartition(method, segments, planning, hosts, 2)
			if err != nil {
				log.Fatal(err)
			}
			// Score the plan against the complete workload, not just the
			// profile it was planned from.
			scored, err := net.ScorePartition(plan.Assignment, full)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %.4f\n", method, scored)
		}
		fmt.Println()
	}
	evaluate("— planning with the FULL usage profile —", full)
	evaluate("— planning with a SPARSE (5%) usage profile —", sparse)

	fmt.Println("Findings: both informed methods clearly beat blind round-robin.")
	fmt.Println("Usage-based assignment is the upper reference when access data")
	fmt.Println("exists; socially informed partitioning gets most of the way")
	fmt.Println("there from community structure and aggregate demand alone, and")
	fmt.Println("the gap narrows as histories get sparser — the trade-off")
	fmt.Println("Section V-D proposes to explore.")
}
