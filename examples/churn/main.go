// Churn study: user-contributed storage is not Akamai. The paper
// (Section V-A) expects "much lower availability" from researcher-hosted
// folders than from a commercial CDN. This example runs the same
// socially-local workload twice — once over always-on institutional
// servers, once over personal machines with diurnal churn — and compares
// reliability, hit ratio, and response times.
package main

import (
	"fmt"
	"log"
	"time"

	"scdn"
)

func run(churn bool) (*scdn.Network, error) {
	study, err := scdn.NewStudy(scdn.StudyConfig{Seed: 42, Runs: 1})
	if err != nil {
		return nil, err
	}
	// No institutional nodes at all: every repository is a personal
	// machine, so churn (when enabled) bites everywhere.
	community, err := study.Community("fewauthors", 0)
	if err != nil {
		return nil, err
	}
	opts := scdn.DefaultOptions(42)
	opts.Churn = churn
	net, err := community.Build(opts)
	if err != nil {
		return nil, err
	}
	wl, err := scdn.GenerateSocialWorkload(net, scdn.WorkloadConfig{
		Seed:           7,
		Datasets:       30,
		Requests:       1500,
		Duration:       7 * 24 * time.Hour,
		SocialLocality: 0.7,
	})
	if err != nil {
		return nil, err
	}
	for _, d := range wl.Datasets {
		if err := net.Publish(d.Owner, d.ID, d.Bytes); err != nil {
			return nil, err
		}
		if _, err := net.Replicate(d.ID, 3); err != nil {
			return nil, err
		}
	}
	net.Schedule(wl.Requests)
	net.Run(7 * 24 * time.Hour)
	return net, nil
}

func main() {
	stable, err := run(false)
	if err != nil {
		log.Fatal(err)
	}
	churned, err := run(true)
	if err != nil {
		log.Fatal(err)
	}

	sc, _ := stable.Metrics()
	cc, _ := churned.Metrics()

	fmt.Println("                         always-on     diurnal churn")
	fmt.Printf("availability            %10.3f    %14.3f\n", sc.Availability(), cc.Availability())
	fmt.Printf("requests served         %10d    %14d\n", sc.RequestsServed.Value(), cc.RequestsServed.Value())
	fmt.Printf("requests failed         %10d    %14d\n", sc.RequestsFailed.Value(), cc.RequestsFailed.Value())
	fmt.Printf("reliability             %10.3f    %14.3f\n", sc.Reliability(), cc.Reliability())
	fmt.Printf("hit ratio               %10.3f    %14.3f\n", sc.HitRatio(), cc.HitRatio())
	fmt.Printf("response p95 (s)        %10.2f    %14.2f\n",
		sc.ResponseTime.Quantile(0.95), cc.ResponseTime.Quantile(0.95))
	fmt.Printf("mean redundancy         %10.2f    %14.2f\n",
		sc.RedundancySamples.Mean(), cc.RedundancySamples.Mean())

	fmt.Println("\nChurn costs availability and reliability; the allocation servers")
	fmt.Println("respond by raising redundancy for hot datasets (maintenance sweeps).")
}
