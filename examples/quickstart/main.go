// Quickstart: build a small scientific collaboration, publish a dataset,
// let the S-CDN place replicas socially, access it from across the
// community, and print the metric report — the whole public API in one
// file.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"scdn"
)

func main() {
	// A collaboration of six researchers at different sites: two tight
	// groups (Chicago and Karlsruhe) bridged by one collaboration tie.
	community := scdn.NewCommunity().
		Add(scdn.Researcher{ID: 1, Name: "kyle", Site: 0, Institutional: true}).
		Add(scdn.Researcher{ID: 2, Name: "dan", Site: 1}).
		Add(scdn.Researcher{ID: 3, Name: "ian", Site: 2, Institutional: true}).
		Add(scdn.Researcher{ID: 4, Name: "simon", Site: 8}).
		Add(scdn.Researcher{ID: 5, Name: "omer", Site: 7}).
		Add(scdn.Researcher{ID: 6, Name: "chris", Site: 9}).
		Connect(1, 2, scdn.Coauthor, 4).
		Connect(1, 3, scdn.Coauthor, 2).
		Connect(2, 3, scdn.Coauthor, 1).
		Connect(4, 5, scdn.Coauthor, 3).
		Connect(5, 6, scdn.Coauthor, 1).
		Connect(4, 6, scdn.Colleague, 1).
		Connect(1, 4, scdn.ProjectPartner, 2) // the bridge

	net, err := community.Build(scdn.DefaultOptions(42))
	if err != nil {
		log.Fatal(err)
	}

	// Kyle publishes a 1.4 GB derived MRI dataset; the CDN replicates it
	// to two socially chosen hosts.
	if err := net.Publish(1, "dti-fa-session-001", 1_400_000_000); err != nil {
		log.Fatal(err)
	}
	hosts, err := net.Replicate("dti-fa-session-001", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica hosts chosen by %q: %v\n", scdn.DefaultOptions(42).Placement, hosts)

	// Simon (in Karlsruhe) needs the data.
	net.Request(4, "dti-fa-session-001", func(r scdn.AccessResult) {
		fmt.Printf("simon's access: %s from node %d in %v (%.0f Mbps)\n",
			r.Outcome, r.Source, r.Elapsed.Round(time.Millisecond), r.ThroughputMbps)
	})

	// Drive the simulation for a virtual day.
	net.Run(24 * time.Hour)

	reps, _ := net.Replicas("dti-fa-session-001")
	fmt.Printf("replica set after a day: %v\n", reps)
	fmt.Printf("trust(kyle, simon) after the exchange: %.2f\n\n", net.TrustScore(1, 4))

	if err := net.WriteReport(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// And the paper's headline experiment in one call (reduced run count
	// to keep the quickstart fast — the benchmarks use the full 100).
	fmt.Println("\n— Section VI case study (10 runs per point) —")
	if err := scdn.RunCaseStudy(os.Stdout, 42, 10); err != nil {
		log.Fatal(err)
	}
}
