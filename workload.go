package scdn

import (
	"fmt"
	"math/rand"
	"time"

	"scdn/internal/workload"
)

// WorkloadConfig parameterizes synthetic request generation over a built
// network.
type WorkloadConfig struct {
	Seed int64
	// Datasets is how many datasets to mint (owners drawn round-robin
	// from the community).
	Datasets int
	// MinBytes/MaxBytes bound dataset sizes (defaults 100 MB / 2 GB — the
	// paper's MRI session-to-derived range).
	MinBytes, MaxBytes int64
	// Requests and Duration shape the access schedule.
	Requests int
	Duration time.Duration
	// SocialLocality is the probability a request targets a collaborator's
	// dataset (vs. Zipf over the catalog).
	SocialLocality float64
	// ZipfExponent shapes global popularity (default 0.9).
	ZipfExponent float64
}

// Workload is a generated dataset catalog plus its access schedule.
type Workload struct {
	Datasets []WorkloadDataset
	Requests []WorkloadRequest
	// Derivations maps derived dataset IDs to their parent and workflow
	// stage (medical-trial workloads); publish those with PublishDerived
	// so provenance captures the lineage.
	Derivations map[DatasetID]WorkloadDerivation
}

// WorkloadDerivation is a derived dataset's parentage.
type WorkloadDerivation struct {
	Parent DatasetID
	Stage  string
}

// WorkloadDataset describes one mintable dataset.
type WorkloadDataset struct {
	ID    DatasetID
	Owner ResearcherID
	Bytes int64
}

// GenerateSocialWorkload builds a socially local workload over the
// network's community: datasets owned by members, requests biased toward
// collaborators' data.
func GenerateSocialWorkload(n *Network, cfg WorkloadConfig) (*Workload, error) {
	if n == nil {
		return nil, fmt.Errorf("scdn: nil network")
	}
	if cfg.Datasets <= 0 || cfg.Requests <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("scdn: workload needs positive datasets, requests, and duration")
	}
	if cfg.MinBytes <= 0 {
		cfg.MinBytes = 100e6
	}
	if cfg.MaxBytes < cfg.MinBytes {
		cfg.MaxBytes = 2e9
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := n.sys.Platform.SocialGraph()
	users := g.Nodes()
	if len(users) == 0 {
		return nil, fmt.Errorf("scdn: empty community")
	}
	// Owners: round-robin over members so data is spread out.
	owners := make([]ResearcherID, 0, cfg.Datasets)
	for i := 0; i < cfg.Datasets; i++ {
		owners = append(owners, users[i%len(users)])
	}
	perOwner := make(map[ResearcherID]int)
	var datasets []WorkloadDataset
	var cat []workload.Dataset
	for _, o := range owners {
		id := DatasetID(fmt.Sprintf("ds-%d-%d", o, perOwner[o]))
		perOwner[o]++
		bytes := cfg.MinBytes + rng.Int63n(cfg.MaxBytes-cfg.MinBytes+1)
		datasets = append(datasets, WorkloadDataset{ID: id, Owner: o, Bytes: bytes})
		cat = append(cat, workload.Dataset{ID: id, Owner: o, Bytes: bytes})
	}
	reqs, err := workload.SocialRequests(g, cat, workload.SocialConfig{
		Requests:     cfg.Requests,
		Duration:     cfg.Duration,
		PSocial:      cfg.SocialLocality,
		ZipfExponent: cfg.ZipfExponent,
	}, rng)
	if err != nil {
		return nil, err
	}
	return &Workload{Datasets: datasets, Requests: reqs}, nil
}

// GenerateMedicalTrial builds the Section IV multi-center MRI trial
// workload over the network's community: raw sessions, derived analysis
// datasets (≈14× raw), and the analysts' access schedule.
func GenerateMedicalTrial(n *Network, subjects int, seed int64) (*Workload, error) {
	if n == nil {
		return nil, fmt.Errorf("scdn: nil network")
	}
	g := n.sys.Platform.SocialGraph()
	users := g.Nodes()
	if len(users) == 0 {
		return nil, fmt.Errorf("scdn: empty community")
	}
	rng := rand.New(rand.NewSource(seed))
	trial, err := workload.GenerateMedImaging(users, workload.DefaultMedImaging(subjects), rng)
	if err != nil {
		return nil, err
	}
	out := &Workload{Requests: trial.Requests, Derivations: make(map[DatasetID]WorkloadDerivation)}
	for _, d := range trial.Datasets {
		out.Datasets = append(out.Datasets, WorkloadDataset{ID: d.ID, Owner: d.Owner, Bytes: d.Bytes})
	}
	for id, der := range trial.Derivations {
		out.Derivations[id] = WorkloadDerivation{Parent: der.Parent, Stage: der.Stage}
	}
	return out, nil
}
