// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table/figure; each reports the headline reproduced numbers as
// custom metrics so `go test -bench . -benchmem` doubles as the
// reproduction harness (EXPERIMENTS.md records the expected values).
package scdn

import (
	"io"
	"testing"
	"time"

	"scdn/internal/casestudy"
	"scdn/internal/coauthor"
	"scdn/internal/placement"
)

// benchStudy builds the case study once per benchmark with the paper's
// full 100-run averaging.
func benchStudy(b *testing.B, runs int) *casestudy.Study {
	b.Helper()
	cfg := casestudy.DefaultConfig()
	cfg.Runs = runs
	s, err := casestudy.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTableISubgraphs regenerates Table I: corpus generation plus
// derivation of the three trust subgraphs. Reported metrics are the
// subgraph sizes (paper: 2335/811/604 nodes).
func BenchmarkTableISubgraphs(b *testing.B) {
	var rows []coauthor.Stats
	for i := 0; i < b.N; i++ {
		s := benchStudy(b, 1)
		rows = s.TableI()
	}
	b.ReportMetric(float64(rows[0].Nodes), "baseline-nodes")
	b.ReportMetric(float64(rows[1].Nodes), "double-nodes")
	b.ReportMetric(float64(rows[2].Nodes), "fewauthors-nodes")
	b.ReportMetric(float64(rows[0].Edges), "baseline-edges")
}

// BenchmarkFig2Topology regenerates the Fig. 2 statistics (span,
// components, islands). Paper: span 6 across all subgraphs; islands
// appear after double-coauthorship pruning.
func BenchmarkFig2Topology(b *testing.B) {
	s := benchStudy(b, 1)
	b.ResetTimer()
	var stats []casestudy.Fig2Stats
	for i := 0; i < b.N; i++ {
		stats = s.Fig2()
	}
	b.ReportMetric(float64(stats[0].MaxSpan), "baseline-span")
	b.ReportMetric(float64(stats[1].Components), "double-components")
}

// fig3Bench runs one Fig. 3 panel with the paper's 100-run averaging and
// reports the k=10 hit rates of the four algorithms.
func fig3Bench(b *testing.B, subgraph string) {
	s := benchStudy(b, 100)
	sub, err := s.SubgraphByName(subgraph)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var curves []casestudy.Curve
	for i := 0; i < b.N; i++ {
		curves = s.Fig3(sub)
	}
	for _, c := range curves {
		last := c.Points[len(c.Points)-1]
		switch c.Algorithm {
		case "Random":
			b.ReportMetric(last.HitRate, "random@10")
		case "Node Degree":
			b.ReportMetric(last.HitRate, "degree@10")
		case "Community Node Degree":
			b.ReportMetric(last.HitRate, "community@10")
		case "Clustering Coefficient":
			b.ReportMetric(last.HitRate, "clustering@10")
		}
	}
}

// BenchmarkFig3Baseline regenerates Fig. 3(a). Paper shape: community ≈
// 27% at k=10 > plateaued node degree ≈ 20% > random ≈ 9% > clustering.
func BenchmarkFig3Baseline(b *testing.B) { fig3Bench(b, "baseline") }

// BenchmarkFig3DoubleAuthor regenerates Fig. 3(b). Paper shape: rates
// above the baseline panel, community-elected best (~35-40% at k=10).
func BenchmarkFig3DoubleAuthor(b *testing.B) { fig3Bench(b, "double") }

// BenchmarkFig3FewAuthors regenerates Fig. 3(c). Paper shape: the highest
// panel (~60% at k=10) with node degree ≈ community node degree.
func BenchmarkFig3FewAuthors(b *testing.B) { fig3Bench(b, "fewauthors") }

// BenchmarkPlacementAblation compares the Section V-D extension
// algorithms against the paper's best on the baseline graph at k=10
// (DESIGN.md ablation: social vs. traditional placement).
func BenchmarkPlacementAblation(b *testing.B) {
	s := benchStudy(b, 30)
	sub, err := s.SubgraphByName("baseline")
	if err != nil {
		b.Fatal(err)
	}
	// Runs per algorithm: the centrality-based extensions are
	// deterministic up to tie-shuffling, and Betweenness/Closeness cost
	// O(VE) per placement, so a couple of runs suffice for them.
	algs := []struct {
		alg  placement.Algorithm
		runs int
	}{
		{placement.CommunityNodeDegree{}, 30},
		{placement.Betweenness{}, 2},
		{placement.Closeness{}, 2},
		{placement.NewSocialScore(), 2},
		{placement.GreedyCover{}, 2},
	}
	b.ResetTimer()
	results := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for _, a := range algs {
			res := placement.Evaluate(sub.Graph, s.TestEvents, a.alg, placement.EvalConfig{
				Replicas: 10, Runs: a.runs, HitRadius: 1, Seed: 42,
			})
			results[a.alg.Name()] = res.HitRate
		}
	}
	b.ReportMetric(results["Community Node Degree"], "community@10")
	b.ReportMetric(results["Betweenness"], "betweenness@10")
	b.ReportMetric(results["Closeness"], "closeness@10")
	b.ReportMetric(results["Social Score"], "socialscore@10")
	b.ReportMetric(results["Greedy Cover"], "greedycover@10")
}

// BenchmarkTrustThresholdAblation sweeps the double-coauthorship
// threshold (DESIGN.md ablation) and reports the k=10 hit rate at each.
func BenchmarkTrustThresholdAblation(b *testing.B) {
	s := benchStudy(b, 30)
	b.ResetTimer()
	var points []casestudy.AblationPoint
	for i := 0; i < b.N; i++ {
		points = s.CoauthorshipThresholdSweep([]int{1, 2, 3})
	}
	for _, p := range points {
		switch p.Threshold {
		case 1:
			b.ReportMetric(p.HitRate, "threshold1")
		case 2:
			b.ReportMetric(p.HitRate, "threshold2")
		case 3:
			b.ReportMetric(p.HitRate, "threshold3")
		}
	}
}

// BenchmarkSimulationMetrics runs the full S-CDN simulation that
// generates the Section V-E metric report: a week of socially local
// accesses over the trusted subgraph with churn, failures, and
// re-replication.
func BenchmarkSimulationMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := NewStudy(StudyConfig{Seed: 42, Runs: 1})
		if err != nil {
			b.Fatal(err)
		}
		community, err := study.Community("fewauthors", 0.1)
		if err != nil {
			b.Fatal(err)
		}
		net, err := community.Build(DefaultOptions(42))
		if err != nil {
			b.Fatal(err)
		}
		wl, err := GenerateSocialWorkload(net, WorkloadConfig{
			Seed: 7, Datasets: 30, Requests: 1500,
			Duration: 7 * 24 * time.Hour, SocialLocality: 0.7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range wl.Datasets {
			if err := net.Publish(d.Owner, d.ID, d.Bytes); err != nil {
				b.Fatal(err)
			}
			if _, err := net.Replicate(d.ID, 3); err != nil {
				b.Fatal(err)
			}
		}
		net.Schedule(wl.Requests)
		net.Run(7 * 24 * time.Hour)
		cdn, social := net.Metrics()
		if i == b.N-1 {
			b.ReportMetric(cdn.HitRatio(), "hit-ratio")
			b.ReportMetric(cdn.Reliability(), "reliability")
			b.ReportMetric(cdn.Availability(), "availability")
			b.ReportMetric(social.AcceptanceRate(), "acceptance")
		}
	}
}

// BenchmarkCaseStudyEndToEnd times the complete paper reproduction (all
// tables and figures at reduced run count), the workload of
// cmd/scdn-casestudy.
func BenchmarkCaseStudyEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := RunCaseStudy(io.Discard, 42, 10); err != nil {
			b.Fatal(err)
		}
	}
}
