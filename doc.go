// Package scdn is a Social Content Delivery Network for scientific
// cooperation: a reproduction of Chard, Caton, Rana & Katz, "A Social
// Content Delivery Network for Scientific Cooperation: Vision, Design,
// and Architecture" (SC 2012 companion).
//
// An S-CDN turns a scientific collaboration's social network into a
// content delivery network: researchers contribute storage folders that
// act as CDN edge nodes, allocation servers catalogue datasets and
// replicas, a social middleware authenticates users through the social
// platform and keeps data inside the collaboration's trust boundary, and
// replica placement is driven by social metrics — node degree, community
// structure, clustering, and proven trust from prior coauthorship.
//
// The package exposes three layers:
//
//   - Community and Network: build a collaboration (researchers, ties,
//     contributed storage) and run a fully simulated S-CDN over it —
//     publishing datasets, placing replicas socially, serving accesses
//     through third-party transfers over a wide-area network model, with
//     churn, failures, re-replication, and the paper's Section V-E
//     metrics.
//
//   - Placement: the paper's four replica-placement algorithms (Random,
//     Node Degree, Community Node Degree, Clustering Coefficient) plus
//     the Section V-D extensions (Betweenness, Closeness, Social Score,
//     Greedy Cover), and the hit-rate evaluator of the Section VI case
//     study.
//
//   - CaseStudy: the paper's evaluation — Table I trust subgraphs,
//     Fig. 2 topology analysis, and the Fig. 3 replica-hit-rate panels —
//     over a synthetic coauthorship network calibrated to the paper's
//     DBLP extraction (see DESIGN.md for the substitution rationale).
//
// Start with NewCommunity and Community.Build, or RunCaseStudy for the
// paper's experiments. The examples/ directory contains runnable
// walk-throughs.
package scdn
