package scdn

import (
	"strings"
	"testing"
	"time"
)

func buildNetwork(t *testing.T) *Network {
	t.Helper()
	c := NewCommunity()
	for i := ResearcherID(1); i <= 6; i++ {
		c.Add(Researcher{ID: i, Name: "r", Site: int(i - 1), Institutional: true,
			StorageBytes: 10e9, ReplicaReserveBytes: 4e9})
	}
	c.Connect(1, 2, Coauthor, 2).
		Connect(2, 3, Coauthor, 1).
		Connect(3, 4, Colleague, 1).
		Connect(4, 5, Coauthor, 3).
		Connect(5, 6, Coauthor, 1)
	opts := DefaultOptions(9)
	opts.Churn = false
	n, err := c.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCommunityBuildErrors(t *testing.T) {
	c := NewCommunity()
	c.Add(Researcher{ID: 1})
	c.Add(Researcher{ID: 1}) // duplicate
	if _, err := c.Build(DefaultOptions(1)); err == nil {
		t.Fatal("duplicate researcher accepted")
	}
	c2 := NewCommunity()
	c2.Add(Researcher{ID: 1})
	c2.Connect(1, 9, Coauthor, 1)
	if _, err := c2.Build(DefaultOptions(1)); err == nil {
		t.Fatal("tie to unknown researcher accepted")
	}
	c3 := NewCommunity()
	c3.Add(Researcher{ID: 1, Site: 0})
	opts := DefaultOptions(1)
	opts.Placement = "No Such Algorithm"
	if _, err := c3.Build(opts); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

func TestCommunitySize(t *testing.T) {
	c := NewCommunity().Add(Researcher{ID: 1}).Add(Researcher{ID: 2})
	if c.Size() != 2 {
		t.Fatalf("size = %d", c.Size())
	}
}

func TestEndToEndPublishReplicateAccess(t *testing.T) {
	n := buildNetwork(t)
	if err := n.Publish(1, "dataset", 2e9); err != nil {
		t.Fatal(err)
	}
	hosts, err := n.Replicate("dataset", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	n.Run(3 * time.Hour)
	reps, err := n.Replicas("dataset")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("replicas = %v, want origin + 2", reps)
	}
	var got *AccessResult
	if err := n.Request(6, "dataset", func(r AccessResult) { got = &r }); err != nil {
		t.Fatal(err)
	}
	n.Run(8 * time.Hour)
	if got == nil {
		t.Fatal("access incomplete")
	}
	if got.Outcome != ReplicaFetch && got.Outcome != OriginFetch {
		t.Fatalf("outcome = %v", got.Outcome)
	}
	has, err := n.HasLocal(6, "dataset")
	if err != nil || !has {
		t.Fatalf("HasLocal = %v, %v", has, err)
	}
	if n.TrustScore(6, reps[0]) < 0 {
		t.Fatal("trust score negative")
	}
	cdn, social := n.Metrics()
	if cdn.RequestsServed.Value() != 1 {
		t.Fatalf("served = %d", cdn.RequestsServed.Value())
	}
	if social.Exchanges.Value() == 0 {
		t.Fatal("no exchanges recorded")
	}
	var sb strings.Builder
	if err := n.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CDN metrics") {
		t.Fatal("report malformed")
	}
	if n.Now() != 8*time.Hour {
		t.Fatalf("Now = %v", n.Now())
	}
}

func TestScheduleWorkload(t *testing.T) {
	n := buildNetwork(t)
	n.Publish(1, "a", 1e6)
	n.Schedule([]WorkloadRequest{
		{At: time.Minute, User: 2, Data: "a"},
		{At: 2 * time.Minute, User: 3, Data: "a"},
	})
	n.Run(time.Hour)
	cdn, _ := n.Metrics()
	if cdn.RequestsServed.Value()+cdn.RequestsFailed.Value() != 2 {
		t.Fatal("scheduled requests not served")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 8 {
		t.Fatalf("algorithms = %v", algs)
	}
	if algs[0] != "Random" || algs[2] != "Community Node Degree" {
		t.Fatalf("paper algorithms not first: %v", algs)
	}
}

func TestStudyFacade(t *testing.T) {
	s, err := NewStudy(StudyConfig{Seed: 42, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	rows := s.TableI()
	if len(rows) != 3 || rows[0].Name != "baseline" {
		t.Fatalf("rows = %+v", rows)
	}
	fig2 := s.Fig2()
	if len(fig2) != 3 || fig2[0].MaxSpan != 6 {
		t.Fatalf("fig2 = %+v", fig2)
	}
	curves, err := s.Fig3("fewauthors")
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	if _, err := s.Fig3("bogus"); err == nil {
		t.Fatal("bogus subgraph accepted")
	}
	var sb strings.Builder
	if err := s.WriteTableI(&sb); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFig3(&sb, "double"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDOT(&sb, "fewauthors"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFig3(&sb, "bogus"); err == nil {
		t.Fatal("bogus panel accepted")
	}
	if err := s.WriteDOT(&sb, "bogus"); err == nil {
		t.Fatal("bogus DOT accepted")
	}
	out := sb.String()
	for _, want := range []string{"baseline", "Replicas", "graph fig2"} {
		if !strings.Contains(out, want) {
			t.Errorf("facade output missing %q", want)
		}
	}
}

func TestStudyCommunityBridge(t *testing.T) {
	s, err := NewStudy(StudyConfig{Seed: 42, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Community("fewauthors", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() < 100 {
		t.Fatalf("community size = %d, want hundreds", c.Size())
	}
	opts := DefaultOptions(1)
	opts.Churn = false
	n, err := c.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The community is usable: publish + replicate end to end.
	owner := ResearcherID(1)
	if err := n.Publish(owner, "shared", 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Replicate("shared", 3); err != nil {
		t.Fatal(err)
	}
	n.Run(2 * time.Hour)
	reps, _ := n.Replicas("shared")
	if len(reps) < 2 {
		t.Fatalf("replicas = %v", reps)
	}
	if _, err := s.Community("bogus", 0.1); err == nil {
		t.Fatal("bogus community accepted")
	}
}

func TestRunCaseStudySmoke(t *testing.T) {
	var sb strings.Builder
	if err := RunCaseStudy(&sb, 42, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"baseline", "double-coauthorship", "number-of-authors",
		"Random", "Community Node Degree"} {
		if !strings.Contains(out, want) {
			t.Errorf("case study output missing %q", want)
		}
	}
}

func TestExportDBLPErrors(t *testing.T) {
	// A corpus-based study has nothing to export.
	const xml = `<dblp><article><author>A</author><author>B</author><year>2009</year></article>
	<article><author>A</author><author>B</author><year>2011</year></article></dblp>`
	s, err := NewStudyFromDBLP(strings.NewReader(xml), "A", 2009, 2010, 2011, StudyConfig{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := s.ExportDBLP(&sb); err == nil {
		t.Fatal("corpus-based export should error")
	}
	// A synthetic study exports successfully.
	synth, err := NewStudy(StudyConfig{Seed: 42, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.ExportDBLP(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<dblp>") {
		t.Fatal("export malformed")
	}
}

func TestWorkloadValidation(t *testing.T) {
	n := buildNetwork(t)
	if _, err := GenerateSocialWorkload(nil, WorkloadConfig{Datasets: 1, Requests: 1, Duration: time.Hour}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := GenerateSocialWorkload(n, WorkloadConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := GenerateMedicalTrial(nil, 3, 1); err == nil {
		t.Fatal("nil network accepted for trial")
	}
	wl, err := GenerateMedicalTrial(n, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Derivations) == 0 {
		t.Fatal("trial derivations missing")
	}
	for id, der := range wl.Derivations {
		if der.Parent == "" || der.Stage == "" {
			t.Fatalf("derivation %q incomplete: %+v", id, der)
		}
	}
}

func TestTransferStreamsOption(t *testing.T) {
	c := NewCommunity().
		Add(Researcher{ID: 1, Site: 0}).
		Add(Researcher{ID: 2, Site: 5}).
		Connect(1, 2, Coauthor, 1)
	opts := DefaultOptions(3)
	opts.Churn = false
	opts.TransferStreams = 4
	n, err := c.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Publish(1, "d", 50e6); err != nil {
		t.Fatal(err)
	}
	var got *AccessResult
	n.Request(2, "d", func(r AccessResult) { got = &r })
	n.Run(time.Hour)
	if got == nil || got.Outcome != OriginFetch {
		t.Fatalf("result = %+v", got)
	}
}
