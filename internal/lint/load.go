package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the module's packages without any
// dependency outside the standard library: module-local import paths are
// resolved straight from the source tree, everything else (the standard
// library) through go/importer's source importer. Loaded dependency
// packages are memoized, so the expensive stdlib type-check is paid
// once per process.
type Loader struct {
	Fset *token.FileSet

	modPath string
	root    string
	std     types.Importer
	pkgs    map[string]*types.Package // memoized non-test packages, by import path
}

// NewLoader builds a loader for the module rooted at or above dir
// (located by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*types.Package),
	}, nil
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modPath }

// Root returns the module's root directory.
func (l *Loader) Root() string { return l.root }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer: module-local packages come from the
// source tree (non-test files only, memoized), the rest from the
// standard-library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, _, _, err := l.checkDir(path, filepath.Join(l.root, rel), baseFiles)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// file-selection modes for checkDir.
type fileMode int

const (
	baseFiles     fileMode = iota // non-test files only (dependency view)
	unitFiles                     // non-test + in-package test files (lint view)
	externalFiles                 // package foo_test files only
)

// checkDir parses the directory's files per mode and type-checks them as
// one package. Type errors do not abort: the partially filled Info is
// still useful to the analyzers, and a tree that builds under tier-1
// should not produce any.
func (l *Loader) checkDir(path, dir string, mode fileMode) (*types.Package, []*ast.File, *types.Info, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if mode == baseFiles && isTest {
			continue
		}
		if mode == externalFiles && !isTest {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		external := strings.HasSuffix(f.Name.Name, "_test")
		if mode == unitFiles && external {
			continue
		}
		if mode == externalFiles && !external {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, nil
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // collect nothing; keep checking
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && pkg == nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// LoadPatterns expands Go-style package patterns ("./...", "./x/...",
// "./internal/server") against the module tree and loads every matching
// directory as lint units: the package including its in-package test
// files, plus a separate unit for an external _test package when one
// exists. testdata and hidden directories are never matched.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := l.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, rel := range dirs {
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		dir := filepath.Join(l.root, rel)
		pkg, err := l.loadUnit(path, dir, unitFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		if pkg != nil {
			out = append(out, pkg)
		}
		ext, err := l.loadUnit(path+"_test", dir, externalFiles)
		if err != nil {
			return nil, fmt.Errorf("lint: %s [external test]: %w", path, err)
		}
		if ext != nil {
			out = append(out, ext)
		}
	}
	return out, nil
}

func (l *Loader) loadUnit(path, dir string, mode fileMode) (*Package, error) {
	// For externalFiles, path already carries the "_test" suffix, so the
	// external test package's import of the base package is not a cycle.
	tpkg, files, info, err := l.checkDir(path, dir, mode)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	pkg.indexIgnores()
	return pkg, nil
}

// matchDirs expands patterns to module-relative directories that contain
// Go files, sorted and deduplicated.
func (l *Loader) matchDirs(patterns []string) ([]string, error) {
	type matcher struct {
		prefix string // module-relative dir ("", "internal/server")
		rec    bool
	}
	var ms []matcher
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == "":
			ms = append(ms, matcher{"", true})
		case strings.HasSuffix(p, "/..."):
			ms = append(ms, matcher{strings.TrimSuffix(p, "/..."), true})
		default:
			ms = append(ms, matcher{p, false})
		}
	}
	seen := make(map[string]bool)
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		matched := false
		for _, m := range ms {
			if m.rec {
				if m.prefix == "" || rel == m.prefix || strings.HasPrefix(rel, m.prefix+"/") {
					matched = true
				}
			} else if rel == m.prefix || (m.prefix == "" && rel == ".") {
				matched = true
			}
		}
		if !matched {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				seen[rel] = true
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for rel := range seen {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out, nil
}
