package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BodyDrain returns the bodydrain analyzer: every *http.Response body
// obtained in a function must be closed on all paths, and a branch that
// bails out while the body is still going to be read later must drain it
// first — an undrained body tears down the TCP connection instead of
// returning it to the transport's idle pool, so every failed peer hop
// costs the next attempt a fresh handshake (the PR 3 connection-reuse
// bug, made mechanical).
func BodyDrain() *Analyzer {
	a := &Analyzer{
		Name: "bodydrain",
		Doc:  "http.Response bodies must be closed on all paths and drained before early returns",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Packages {
			if pkg.Info == nil {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						bodyDrainFunc(pass, pkg, body)
					}
					return true
				})
			}
		}
	}
	return a
}

// respAssign is one statement binding a *http.Response variable.
type respAssign struct {
	stmt ast.Stmt
	resp types.Object // the response variable
	errv types.Object // the error bound alongside it, if any
}

// bodyDrainFunc analyzes one function body. Nested function literals are
// analyzed separately for their own response variables, but their
// contents still count when looking for Close/drain uses of an outer
// response (deferred closers are closures).
func bodyDrainFunc(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	var assigns []respAssign
	inspectSkipFuncLit(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		// Only responses fresh off the wire: a *http.Response returned by
		// a local helper is the helper's to close (its own client.Do
		// binding is checked where it happens).
		if len(as.Rhs) != 1 || !isHTTPIssuingCall(pkg, as.Rhs[0]) {
			return
		}
		ra := respAssign{stmt: as}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if isHTTPResponsePtr(obj.Type()) {
				ra.resp = obj
			} else if isErrorType(obj.Type()) {
				ra.errv = obj
			}
		}
		if ra.resp != nil {
			assigns = append(assigns, ra)
		}
	})
	for _, ra := range assigns {
		checkRespUsage(pass, pkg, body, ra)
	}
}

// checkRespUsage enforces the two rules for one response binding:
// a Close must exist (unless the response escapes), and any
// bail-out branch positioned before a later read of the body must drain
// it first.
func checkRespUsage(pass *Pass, pkg *Package, body *ast.BlockStmt, ra respAssign) {
	after := ra.stmt.End()
	var (
		closed  bool
		escaped bool
		// bodyUses are positions where <resp>.Body is referenced other
		// than as the receiver of Close — reads, drains, decoder wraps.
		bodyUses []token.Pos
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isSel(pkg, e.Fun, ra.resp, "Body", "Close") {
				if e.Pos() > after {
					closed = true
				}
				return false // don't count the Body selector inside as a use
			}
			// The whole response handed to another function (a helper may
			// close it), returned, or stored: out of this function's hands.
			for _, arg := range e.Args {
				if usesObj(pkg, arg, ra.resp) && !selectsThroughObj(pkg, arg, ra.resp) && arg.Pos() > after {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if usesObj(pkg, r, ra.resp) && !selectsThroughObj(pkg, r, ra.resp) && r.Pos() > after {
					escaped = true
				}
			}
		case *ast.SelectorExpr:
			if e.Sel.Name == "Body" && isObjIdent(pkg, e.X, ra.resp) && e.Pos() > after {
				bodyUses = append(bodyUses, e.Pos())
			}
		}
		return true
	})
	if !closed && !escaped {
		pass.Reportf(pkg, ra.stmt.Pos(),
			"response body is never closed on this path (leaks the connection)")
	}
	// Bail-out rule: an if-branch that returns while the body is read
	// only after the branch must drain before returning, or the
	// connection cannot go back to the idle pool.
	inspectSkipFuncLit(body, func(n ast.Node) {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() < after {
			return
		}
		if ra.errv != nil && exprMentionsObj(pkg, ifs.Cond, ra.errv) {
			return // the err != nil branch: no response to drain
		}
		if !containsReturn(ifs.Body) {
			return
		}
		// Is the body still going to be read after this branch?
		laterRead := false
		for _, p := range bodyUses {
			if p > ifs.End() {
				laterRead = true
			}
		}
		if !laterRead {
			return
		}
		// Does the branch itself touch the body (drain, read) or hand the
		// response off?
		branchTouches := false
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if se, ok := m.(*ast.SelectorExpr); ok && se.Sel.Name == "Body" && isObjIdent(pkg, se.X, ra.resp) {
				branchTouches = true
			}
			return true
		})
		if branchTouches {
			return
		}
		// Find the return to anchor the finding.
		var retPos token.Pos
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if r, ok := m.(*ast.ReturnStmt); ok && retPos == token.NoPos {
				retPos = r.Pos()
			}
			return true
		})
		if retPos == token.NoPos {
			retPos = ifs.Pos()
		}
		pass.Reportf(pkg, retPos,
			"early return leaves the response body undrained (read it to EOF — e.g. io.Copy(io.Discard, ...) — before returning, or the connection cannot be reused)")
	})
}

// inspectSkipFuncLit walks n's subtree in lexical order, not descending
// into nested function literals.
func inspectSkipFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		fn(m)
		return true
	})
}

// containsReturn reports whether the block contains a return statement
// (not counting nested function literals).
func containsReturn(b *ast.BlockStmt) bool {
	found := false
	inspectSkipFuncLit(b, func(n ast.Node) {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
	})
	return found
}

// isHTTPIssuingCall reports whether e is a call that issues an HTTP
// request and hands back the caller-owned response: a *http.Client
// method or a net/http package function.
func isHTTPIssuingCall(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return s.Recv().String() == "*net/http.Client"
	}
	if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		return fn.Pkg() != nil && fn.Pkg().Path() == "net/http"
	}
	return false
}

// isHTTPResponsePtr reports whether t is *net/http.Response.
func isHTTPResponsePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Response" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// objOf resolves an expression to the object it names, if it is a bare
// identifier (possibly parenthesized).
func objOf(pkg *Package, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// isObjIdent reports whether e is a bare identifier naming obj.
func isObjIdent(pkg *Package, e ast.Expr, obj types.Object) bool {
	return objOf(pkg, e) == obj
}

// isSel reports whether e is the selector obj.<mid>.<last> (e.g.
// resp.Body.Close).
func isSel(pkg *Package, e ast.Expr, obj types.Object, mid, last string) bool {
	outer, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || outer.Sel.Name != last {
		return false
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != mid {
		return false
	}
	return isObjIdent(pkg, inner.X, obj)
}

// usesObj reports whether obj's identifier appears anywhere in e.
func usesObj(pkg *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(pkg, id) == obj {
			found = true
		}
		return true
	})
	return found
}

// selectsThroughObj reports whether every appearance of obj in e is as
// the base of a selector (resp.Body, resp.StatusCode) rather than the
// bare value — passing resp.Body to io.Copy is a read, not an escape of
// the response.
func selectsThroughObj(pkg *Package, e ast.Expr, obj types.Object) bool {
	bare := false
	var walk func(n ast.Node, parentSel bool)
	walk = func(n ast.Node, parentSel bool) {
		switch v := n.(type) {
		case *ast.SelectorExpr:
			walk(v.X, true)
		case *ast.Ident:
			if objOf(pkg, v) == obj && !parentSel {
				bare = true
			}
		case *ast.CallExpr:
			walk(v.Fun, false)
			for _, a := range v.Args {
				walk(a, false)
			}
		case *ast.ParenExpr:
			walk(v.X, parentSel)
		case *ast.UnaryExpr:
			walk(v.X, false)
		case *ast.BinaryExpr:
			walk(v.X, false)
			walk(v.Y, false)
		case *ast.IndexExpr:
			walk(v.X, false)
			walk(v.Index, false)
		case *ast.StarExpr:
			walk(v.X, false)
		}
	}
	walk(e, false)
	return !bare
}

// exprMentionsObj reports whether the expression references obj at all.
func exprMentionsObj(pkg *Package, e ast.Expr, obj types.Object) bool {
	return usesObj(pkg, e, obj)
}
