package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultGoroutineLeakPackages are the packages whose background
// goroutines must be tied to a lifecycle: the serving plane runs
// long-lived loops (repair sweepers, churn schedulers, accept loops)
// whose nodes stop and restart, so a goroutine nothing can cancel keeps
// probing peers from the grave. Test files are exempt — their goroutines
// die with the test binary.
var DefaultGoroutineLeakPackages = []string{
	"scdn/internal/server",
}

// GoroutineLeak returns the goroutineleak analyzer for the given package
// list. A `go` statement is accepted when the launched function is
// observably stoppable: it receives a context.Context (argument or
// captured), waits on a channel or select, or is an http.Server serve
// call (terminated by Shutdown/Close). Everything else is reported —
// a goroutine with no stop signal outlives the component that spawned
// it.
func GoroutineLeak(packages []string) *Analyzer {
	set := make(map[string]bool, len(packages))
	for _, p := range packages {
		set[p] = true
	}
	a := &Analyzer{
		Name: "goroutineleak",
		Doc:  "background goroutines in serving-plane packages must be tied to a context or stop channel",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Packages {
			if !set[strings.TrimSuffix(pkg.Path, "_test")] || pkg.Info == nil {
				continue
			}
			decls := indexFuncDecls(pkg)
			for _, f := range pkg.Files {
				pos := pkg.Fset.Position(f.Pos())
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if goStmtTied(pkg, decls, g) {
						return true
					}
					pass.Reportf(pkg, g.Pos(),
						"goroutine is not tied to a context or stop channel; pass a context.Context or wait on a done channel so Stop/Crash can reap it")
					return true
				})
			}
		}
	}
	return a
}

// indexFuncDecls maps a package's function objects to their
// declarations, so a `go name(...)` launch can be checked against the
// named function's body.
func indexFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// goStmtTied decides whether the launched goroutine has a stop signal.
func goStmtTied(pkg *Package, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) bool {
	// A context handed to the launched function (argument position) ties
	// it regardless of what the body looks like from here.
	for _, arg := range g.Call.Args {
		if isContextType(pkg.Info.TypeOf(arg)) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyTied(pkg, fun.Body)
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil && fd.Body != nil {
				return bodyTied(pkg, fd.Body)
			}
		}
	case *ast.SelectorExpr:
		// Method or imported call: a same-package method's body is
		// checked; http.Server serve loops are tied by construction
		// (Shutdown/Close terminates them).
		if isServerServeCall(pkg, fun) {
			return true
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil && fd.Body != nil {
				return bodyTied(pkg, fd.Body)
			}
		}
	}
	// Unresolvable target (e.g. a function value): nothing proves a stop
	// signal, report it.
	return false
}

// bodyTied scans a function body for evidence of a stop signal: a
// channel receive (unary or select), a range over a channel, a
// context-typed reference, or a server serve call. Nested function
// literals are included — a stop signal observed anywhere in the
// launched code counts.
func bodyTied(pkg *Package, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				tied = true
			}
		case *ast.SelectStmt:
			tied = true
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case *ast.Ident:
			if isContextType(pkg.Info.TypeOf(x)) {
				tied = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && isServerServeCall(pkg, sel) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// serveMethods are the *net/http.Server entry points terminated by
// Shutdown/Close.
var serveMethods = map[string]bool{"Serve": true, "ServeTLS": true, "ListenAndServe": true, "ListenAndServeTLS": true}

// isServerServeCall reports whether sel is a serve method on
// *net/http.Server.
func isServerServeCall(pkg *Package, sel *ast.SelectorExpr) bool {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	return s.Recv().String() == "*net/http.Server" && serveMethods[sel.Sel.Name]
}
