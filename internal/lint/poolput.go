package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultPoolPutPackages are the packages where every sync.Pool.Get
// must provably return its object: the serving plane's hot paths lean
// on pooled scratch (copy buffers, per-request header state) for their
// zero-allocation budgets, and a Get whose Put is skipped on one error
// path quietly turns the pool into a per-request allocator — the alloc
// regression tests then fail far from the line that caused it.
var DefaultPoolPutPackages = []string{
	"scdn/internal/server",
}

// PoolPut returns the poolput analyzer for the given package list. A
// call to Get on a sync.Pool is accepted when the same function (or a
// function literal deferred by it) defers a Put on the same pool —
// covering every exit — or when a plain Put on that pool follows the
// Get with no return statement between them. Everything else is
// reported: a Put that a return can jump over is a leak on exactly the
// paths that are hardest to test. Test files are exempt.
func PoolPut(packages []string) *Analyzer {
	set := make(map[string]bool, len(packages))
	for _, p := range packages {
		set[p] = true
	}
	a := &Analyzer{
		Name: "poolput",
		Doc:  "every serving-plane sync.Pool.Get needs a deferred or all-paths Put",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Packages {
			if !set[strings.TrimSuffix(pkg.Path, "_test")] || pkg.Info == nil {
				continue
			}
			for _, f := range pkg.Files {
				pos := pkg.Fset.Position(f.Pos())
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					switch fn := n.(type) {
					case *ast.FuncDecl:
						if fn.Body != nil {
							checkPoolBody(pass, pkg, fn.Body)
						}
					case *ast.FuncLit:
						checkPoolBody(pass, pkg, fn.Body)
					}
					return true
				})
			}
		}
	}
	return a
}

// poolCall is one Get/Put touch on a pool within a function body.
type poolCall struct {
	pool     string    // textual pool expression, the identity key
	pos      token.Pos // for ordering within the body
	deferred bool
}

// checkPoolBody analyzes one function body's own statements (nested
// function literals are analyzed separately by the caller's walk, except
// that a deferred literal's Puts count for this body — `defer func() {
// p.Put(x) }()` is this function's cleanup).
func checkPoolBody(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	var gets, puts []poolCall
	var returns []token.Pos
	var walk func(n ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				if x == root {
					return true
				}
				return false // analyzed as its own body
			case *ast.DeferStmt:
				// The deferred call runs on every exit of *this* function.
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
				} else {
					walk(x.Call, true)
				}
				return false
			case *ast.ReturnStmt:
				if !deferred {
					returns = append(returns, x.Pos())
				}
			case *ast.CallExpr:
				pool, method, ok := poolMethodCall(pkg, x)
				if !ok {
					return true
				}
				c := poolCall{pool: pool, pos: x.Pos(), deferred: deferred}
				switch method {
				case "Get":
					if !deferred {
						gets = append(gets, c)
					}
				case "Put":
					puts = append(puts, c)
				}
			}
			return true
		})
	}
	walk(body, false)
	for _, g := range gets {
		if poolGetCovered(g, puts, returns) {
			continue
		}
		pass.Reportf(pkg, g.pos,
			"sync.Pool Get on %s without a deferred or all-paths Put; defer %s.Put(...) right after Get so every return recycles the object", g.pool, g.pool)
	}
}

// poolGetCovered reports whether one Get has a covering Put: a deferred
// Put on the same pool anywhere in the body, or a plain Put after the
// Get with no return statement in between.
func poolGetCovered(g poolCall, puts []poolCall, returns []token.Pos) bool {
	for _, p := range puts {
		if p.pool != g.pool {
			continue
		}
		if p.deferred {
			return true
		}
		if p.pos <= g.pos {
			continue
		}
		escaped := false
		for _, r := range returns {
			if r > g.pos && r < p.pos {
				escaped = true
				break
			}
		}
		if !escaped {
			return true
		}
	}
	return false
}

// poolMethodCall matches a call of the form <expr>.Get() / <expr>.Put(x)
// where <expr> is a sync.Pool or *sync.Pool, returning the pool
// expression's text as its identity.
func poolMethodCall(pkg *Package, call *ast.CallExpr) (pool, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
		return "", "", false
	}
	s, found := pkg.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", "", false
	}
	recv := s.Recv().String()
	if recv != "sync.Pool" && recv != "*sync.Pool" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
