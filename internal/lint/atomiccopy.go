package lint

import (
	"go/ast"
	"go/types"
)

// atomicTypeNames are the sync/atomic types whose by-value copy silently
// forks the value (and, for Pointer[T], defeats the copy-on-write
// registry design).
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// AtomicCopy returns the atomiccopy analyzer: no struct that embeds a
// sync/atomic type (directly or transitively) may be copied by value —
// assignment from an existing value, by-value argument passing, by-value
// returns, or ranging over a slice of them. vet's copylocks misses the
// generic atomic.Pointer[T] fields the registry's copy-on-write snapshot
// depends on; this closes that gap.
func AtomicCopy() *Analyzer {
	a := &Analyzer{
		Name: "atomiccopy",
		Doc:  "no by-value copies of structs carrying sync/atomic fields",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Packages {
			if pkg.Info == nil {
				continue
			}
			c := &atomicCopyCheck{pass: pass, pkg: pkg, memo: map[types.Type]bool{}}
			for _, f := range pkg.Files {
				ast.Inspect(f, c.visit)
			}
		}
	}
	return a
}

type atomicCopyCheck struct {
	pass *Pass
	pkg  *Package
	memo map[types.Type]bool
}

func (c *atomicCopyCheck) visit(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.AssignStmt:
		if len(v.Lhs) == len(v.Rhs) {
			for _, rhs := range v.Rhs {
				c.checkCopyExpr(rhs, "assignment")
			}
		}
	case *ast.ValueSpec:
		for _, val := range v.Values {
			c.checkCopyExpr(val, "assignment")
		}
	case *ast.CallExpr:
		for _, arg := range v.Args {
			c.checkCopyExpr(arg, "argument")
		}
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			c.checkCopyExpr(r, "return")
		}
	case *ast.RangeStmt:
		if v.Value != nil {
			if t := c.typeOf(v.Value); t != nil && c.carriesAtomic(t) {
				c.pass.Reportf(c.pkg, v.Value.Pos(),
					"range copies %s by value; it carries sync/atomic fields — range over indices or pointers instead", t)
			}
		}
	}
	return true
}

// checkCopyExpr reports e if evaluating it copies an existing value of
// an atomic-carrying struct type. Composite literals, calls, and
// address-taking produce or move fresh/pointer values and are fine.
func (c *atomicCopyCheck) checkCopyExpr(e ast.Expr, what string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.typeOf(e)
	if t == nil || !c.carriesAtomic(t) {
		return
	}
	c.pass.Reportf(c.pkg, e.Pos(),
		"%s copies %s by value; it carries sync/atomic fields (vet's copylocks misses this) — pass a pointer", what, t)
}

func (c *atomicCopyCheck) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := c.pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// carriesAtomic reports whether t is, or transitively contains by value,
// a sync/atomic type. Pointers, slices, and maps break the chain — the
// hazard is only in values copied wholesale.
func (c *atomicCopyCheck) carriesAtomic(t types.Type) bool {
	if done, ok := c.memo[t]; ok {
		return done
	}
	c.memo[t] = false // breaks recursive types
	res := c.atomicWalk(t)
	c.memo[t] = res
	return res
}

func (c *atomicCopyCheck) atomicWalk(t types.Type) bool {
	switch v := t.(type) {
	case *types.Named:
		obj := v.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()] {
			return true
		}
		return c.carriesAtomic(v.Underlying())
	case *types.Alias:
		return c.carriesAtomic(types.Unalias(t))
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if c.carriesAtomic(v.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.carriesAtomic(v.Elem())
	}
	return false
}
