package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultCtxHTTPPackages are the packages whose outbound HTTP requests
// must carry a context: the serving plane's peer hops, the striped
// fetcher, the CDN client, and the load drivers. A peer hop without a
// context cannot be canceled when the client goes away, so a dead
// request keeps streaming between edges. Test files are exempt — they
// drive short-lived in-process servers.
var DefaultCtxHTTPPackages = []string{
	"scdn/internal/server",
	"scdn/internal/stripe",
	"scdn/internal/cdnclient",
	"scdn/cmd/scdn-loadgen",
	"scdn/cmd/scdn-serve",
}

// ctxlessFuncs are net/http package functions that build a request with
// no caller-supplied context.
var ctxlessFuncs = map[string]bool{"NewRequest": true, "Get": true, "Post": true, "Head": true, "PostForm": true}

// ctxlessClientMethods are *http.Client methods that do the same.
var ctxlessClientMethods = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}

// CtxHTTP returns the ctxhttp analyzer for the given package list.
func CtxHTTP(packages []string) *Analyzer {
	set := make(map[string]bool, len(packages))
	for _, p := range packages {
		set[p] = true
	}
	a := &Analyzer{
		Name: "ctxhttp",
		Doc:  "outbound requests in serving-plane packages must be built with a context",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Packages {
			if !set[strings.TrimSuffix(pkg.Path, "_test")] || pkg.Info == nil {
				continue
			}
			for _, f := range pkg.Files {
				pos := pkg.Fset.Position(f.Pos())
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
						if s.Recv().String() == "*net/http.Client" && ctxlessClientMethods[sel.Sel.Name] {
							pass.Reportf(pkg, call.Pos(),
								"http.Client.%s builds a context-less request; use http.NewRequestWithContext + Do so the fetch stays cancelable", sel.Sel.Name)
						}
						return true
					}
					if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
						if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && ctxlessFuncs[fn.Name()] {
							pass.Reportf(pkg, call.Pos(),
								"http.%s builds a context-less request; use http.NewRequestWithContext so the fetch stays cancelable", fn.Name())
						}
					}
					return true
				})
			}
		}
	}
	return a
}
