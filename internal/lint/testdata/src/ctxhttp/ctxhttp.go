// Package ctxhttp exercises the ctxhttp analyzer: outbound requests in
// a configured package must be built with a context.
package ctxhttp

import (
	"context"
	"net/http"
)

// plainGet uses the context-less client helper.
func plainGet(c *http.Client) {
	resp, err := c.Get("http://example.com") // want "http.Client.Get"
	if err == nil {
		resp.Body.Close()
	}
}

// plainNewRequest builds a request with no context.
func plainNewRequest() {
	req, _ := http.NewRequest(http.MethodGet, "http://example.com", nil) // want "http.NewRequest"
	_ = req
}

// pkgGet uses the context-less package helper.
func pkgGet() {
	resp, err := http.Get("http://example.com") // want "http.Get builds"
	if err == nil {
		resp.Body.Close()
	}
}

// withCtx is the required shape — clean.
func withCtx(ctx context.Context, c *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.com", nil)
	if err != nil {
		return err
	}
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
