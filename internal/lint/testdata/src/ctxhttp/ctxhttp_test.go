package ctxhttp

import "net/http"

// Test files are exempt from ctxhttp: they drive short-lived in-process
// servers and need no cancellation plumbing. No want comments here — if
// the analyzer reports this file, the harness fails.
func helperInTest() {
	resp, err := http.Get("http://example.com")
	if err == nil {
		resp.Body.Close()
	}
}
