// Package bodydrain exercises the bodydrain analyzer: every fixture is
// either a true positive (carrying a want comment) or a pattern the
// analyzer must stay quiet on.
package bodydrain

import (
	"fmt"
	"io"
	"net/http"
)

// neverClosed binds a response and reads it but never closes it.
func neverClosed(c *http.Client) error {
	resp, err := c.Get("http://example.com") // want "never closed"
	if err != nil {
		return err
	}
	_, _ = io.ReadAll(resp.Body)
	return nil
}

// closedHappy closes via defer — clean.
func closedHappy(c *http.Client) error {
	resp, err := c.Get("http://example.com")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.ReadAll(resp.Body)
	return nil
}

// earlyBail returns out of a status check with the body unread while a
// later read exists: the connection cannot be reused.
func earlyBail(c *http.Client) error {
	resp, err := c.Get("http://example.com")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status) // want "undrained"
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// drainedBail drains before the same bail-out — clean.
func drainedBail(c *http.Client) error {
	resp, err := c.Get("http://example.com")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("status %s", resp.Status)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// closeHelper closes any response handed to it.
func closeHelper(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// closedInDeferredHelper hands the whole response to a deferred helper
// that closes it — clean (the response escapes this function's hands).
func closedInDeferredHelper(c *http.Client) error {
	resp, err := c.Get("http://example.com")
	if err != nil {
		return err
	}
	defer closeHelper(resp)
	_, _ = io.ReadAll(resp.Body)
	return nil
}

// returnedVar escapes the response to the caller — the caller owns the
// close, clean here.
func returnedVar(c *http.Client) (*http.Response, error) {
	resp, err := c.Get("http://example.com")
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// helperResponse returns a response it already closed; the caller
// binding it must NOT be flagged (only responses fresh off the wire
// are tracked).
func helperResponse(c *http.Client) *http.Response {
	resp, err := c.Get("http://example.com")
	if err != nil {
		return nil
	}
	closeHelper(resp)
	return resp
}

func callsHelper(c *http.Client) string {
	resp := helperResponse(c)
	if resp == nil {
		return ""
	}
	return resp.Status
}
