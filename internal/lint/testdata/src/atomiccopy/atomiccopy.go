// Package atomiccopy exercises the atomiccopy analyzer: by-value copies
// of structs carrying sync/atomic fields (directly, transitively, or
// via generic atomic.Pointer) are findings; pointers and fresh
// composite literals are not.
package atomiccopy

import "sync/atomic"

type counter struct {
	hits atomic.Int64
}

type wrapper struct {
	c counter // transitively carries an atomic
}

type snapshot struct {
	p atomic.Pointer[counter] // the generic type vet's copylocks misses
}

var global counter

// copyAssign copies an existing value by assignment.
func copyAssign() {
	c := global // want "assignment copies"
	c.hits.Add(1)
}

func take(counter) {}

// copyArg passes a transitively atomic-carrying field by value.
func copyArg(w *wrapper) {
	take(w.c) // want "argument copies"
}

// copyReturn returns one by value.
func copyReturn(w *wrapper) counter {
	return w.c // want "return copies"
}

// copyIndex copies out of a slice by value.
func copyIndex(list []counter) counter {
	return list[0] // want "return copies"
}

// copyRange ranges over values of a generic-atomic-carrying type.
func copyRange(list []snapshot) {
	for _, s := range list { // want "range copies"
		s.p.Load()
	}
}

// ptrOK moves pointers around — clean.
func ptrOK() *counter {
	c := &global
	return c
}

// freshOK returns a fresh composite literal — clean.
func freshOK() counter {
	return counter{}
}
