// Package goroutineleak exercises the goroutineleak analyzer:
// background goroutines must be tied to a context or stop channel.
package goroutineleak

import (
	"context"
	"net"
	"net/http"
)

func work() {}

// untiedLoop spins forever with no stop signal.
func untiedLoop() {
	go func() { // want "not tied to a context or stop channel"
		for {
			work()
		}
	}()
}

// untiedNamed launches a named function that has no stop signal either.
func untiedNamed() {
	go forever() // want "not tied to a context or stop channel"
}

func forever() {
	for {
		work()
	}
}

// ctxArg hands the goroutine a context at the call site — tied.
func ctxArg(ctx context.Context) {
	go tick(ctx)
}

func tick(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			work()
		}
	}
}

// ctxCaptured closes over a context — tied.
func ctxCaptured(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			work()
		}
	}()
}

// stopChannel waits on a quit channel — tied.
func stopChannel(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
				work()
			}
		}
	}()
}

// receiveOnly blocks on a receive — tied.
func receiveOnly(done chan struct{}) {
	go func() {
		<-done
		work()
	}()
}

// rangeChannel drains a channel until it closes — tied.
func rangeChannel(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

// serveLoop is an http.Server accept loop, terminated by Shutdown — tied.
func serveLoop(srv *http.Server, ln net.Listener) {
	go func() {
		_ = srv.Serve(ln)
	}()
}

// serveDirect launches the serve method itself — tied.
func serveDirect(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln) //nolint:errcheck
}

// funcValue launches an opaque function value: nothing proves a stop
// signal, so it is reported.
func funcValue(f func()) {
	go f() // want "not tied to a context or stop channel"
}

// suppressed demonstrates the escape hatch for a goroutine whose
// lifetime is genuinely process-long.
func suppressed() {
	//lint:ignore goroutineleak process-lifetime janitor, dies with the binary
	go forever()
}
