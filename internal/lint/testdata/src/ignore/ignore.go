// Package ignore exercises //lint:ignore directive handling: justified
// suppressions (same line or line above) are honored, a directive
// naming a different analyzer suppresses nothing, and a directive
// without a reason is itself a finding.
package ignore

import (
	"sync"
	"time"
)

type s struct{ mu sync.Mutex }

// suppressed: a justified suppression on the line above is honored.
func (x *s) suppressed() {
	x.mu.Lock()
	//lint:ignore lockio fixture: exercising the line-above suppression path
	time.Sleep(time.Millisecond)
	x.mu.Unlock()
}

// sameLine: a justified suppression on the same line is honored.
func (x *s) sameLine() {
	x.mu.Lock()
	time.Sleep(time.Millisecond) //lint:ignore lockio fixture: same-line form
	x.mu.Unlock()
}

// wrongAnalyzer: a directive naming a different analyzer suppresses
// nothing; the sleep is still reported.
func (x *s) wrongAnalyzer() {
	x.mu.Lock()
	//lint:ignore bodydrain fixture: wrong analyzer name
	time.Sleep(2 * time.Millisecond)
	x.mu.Unlock()
}

// malformed: a reason-less directive is a "directive" finding and
// suppresses nothing; the sleep is still reported.
func (x *s) malformed() {
	x.mu.Lock()
	time.Sleep(3 * time.Millisecond) //lint:ignore lockio
	x.mu.Unlock()
}
