// Package lockio exercises the lockio analyzer: blocking I/O inside a
// mutex critical section is a finding; I/O after an unlock (explicit,
// even in a branch) and goroutine bodies are not.
package lockio

import (
	"net/http"
	"os"
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	f  *os.File
}

// sleepUnderLock blocks inside the critical section.
func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep"
	s.mu.Unlock()
}

// renameUnderDeferredLock: a deferred unlock holds to function end, so
// the rename runs locked.
func (s *store) renameUnderDeferredLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Rename("a", "b") // want "os.Rename"
}

// writeUnderLock: file I/O on a pooled handle inside the section.
func (s *store) writeUnderLock(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Write(p) // want "os.File.Write"
}

type cache struct {
	mu sync.RWMutex
	c  *http.Client
}

// httpUnderLock: an outbound HTTP call while holding a read lock.
func (c *cache) httpUnderLock() error {
	c.mu.RLock()
	resp, err := c.c.Get("http://example.com") // want "http.Client.Get"
	c.mu.RUnlock()
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// unlockThenIO releases before the I/O — clean.
func (s *store) unlockThenIO() error {
	s.mu.Lock()
	s.mu.Unlock()
	return os.Remove("a")
}

// branchUnlockThenIO: each branch unlocks (one via the shared tail)
// before its own I/O — clean.
func (s *store) branchUnlockThenIO(cond bool) error {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return os.Remove("a")
	}
	s.mu.Unlock()
	return os.Remove("b")
}

// goAsync: a spawned goroutine does not hold this goroutine's locks —
// clean.
func (s *store) goAsync() {
	s.mu.Lock()
	go func() {
		_ = os.Remove("c")
	}()
	s.mu.Unlock()
}
