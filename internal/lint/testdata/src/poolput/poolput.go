// Package poolput exercises the poolput analyzer: every sync.Pool.Get
// must be covered by a deferred Put or by a plain Put no return can
// jump over.
package poolput

import (
	"errors"
	"sync"
)

type scratch struct{ buf [64]byte }

var pool = sync.Pool{New: func() interface{} { return new(scratch) }}

var other = sync.Pool{New: func() interface{} { return new(scratch) }}

func use(*scratch) error { return nil }

// leakOnError Gets but an early return skips the Put — reported.
func leakOnError() error {
	sc := pool.Get().(*scratch) // want "without a deferred or all-paths Put"
	if err := use(sc); err != nil {
		return err
	}
	pool.Put(sc)
	return nil
}

// neverPut Gets and forgets entirely — reported.
func neverPut() *scratch {
	return pool.Get().(*scratch) // want "without a deferred or all-paths Put"
}

// deferredPut is the canonical safe shape.
func deferredPut() error {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	return use(sc)
}

// straightLine Puts before any return can intervene — safe.
func straightLine() {
	sc := pool.Get().(*scratch)
	_ = use(sc)
	pool.Put(sc)
}

// deferredClosure recycles inside a deferred literal — safe.
func deferredClosure() error {
	sc := pool.Get().(*scratch)
	defer func() {
		sc.buf[0] = 0
		pool.Put(sc)
	}()
	return use(sc)
}

// closureOwnsGet: the Get lives in a function literal with its own
// deferred Put; the literal is analyzed as its own body — safe.
func closureOwnsGet() func() error {
	return func() error {
		sc := pool.Get().(*scratch)
		defer pool.Put(sc)
		return use(sc)
	}
}

// wrongPool defers a Put on a different pool: the Get on pool is still
// uncovered — reported.
func wrongPool() error {
	sc := pool.Get().(*scratch) // want "without a deferred or all-paths Put"
	o := other.Get().(*scratch)
	defer other.Put(o)
	if err := use(sc); err != nil {
		return errors.New("scratch lost")
	}
	pool.Put(sc)
	return nil
}

// pointerPool covers Get/Put through a *sync.Pool receiver — safe.
func pointerPool(p *sync.Pool) error {
	sc := p.Get().(*scratch)
	defer p.Put(sc)
	return use(sc)
}

// suppressed demonstrates the escape hatch for a handoff where the
// object is intentionally recycled elsewhere.
func suppressed() *scratch {
	//lint:ignore poolput ownership transfers to the caller, which Puts
	return pool.Get().(*scratch)
}
