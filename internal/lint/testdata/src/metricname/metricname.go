// Package metricname exercises the metricname analyzer. The
// WriteExposition function below is the fixture's registration site;
// everything else is a reader.
package metricname

import (
	"fmt"
	"io"
)

// WriteExposition registers this fixture's metric names.
func WriteExposition(w io.Writer) {
	fmt.Fprintf(w, "scdn_good_total %d\n", 1)
	fmt.Fprintf(w, "scdn_hist_seconds %f\n", 0.5)
	fmt.Fprintf(w, "scdn_dup_total %d\n", 1)
	fmt.Fprintf(w, "scdn_dup_total %d\n", 2)     // want "registered more than once"
	fmt.Fprintf(w, "scdn_BadCase_total %d\n", 1) // want "not snake_case"
}

func readers() {
	_ = "scdn_good_total"
	_ = "scdn_hist_seconds_count"  // derived histogram series — clean
	_ = "scdn_hist_seconds_mean"   // derived histogram series — clean
	_ = "scdn_typo_totl"           // want "not registered"
	name := "scdn_req_" + "suffix" // want "built dynamically"
	_ = name
	_ = fmt.Sprintf("scdn_shard_%d_total", 3) // want "built dynamically"
}
