// Package lint is the S-CDN's project-specific static-analysis suite:
// a stdlib-only (go/ast, go/parser, go/types) multi-analyzer driver that
// mechanically enforces invariants the serving plane has already paid to
// learn — response bodies drained and closed so peer connections stay
// reusable, no blocking I/O inside hot-lock critical sections, metric
// names that reconcile, no by-value copies of lock-free structs, and
// cancelable outbound requests. Each analyzer emits
// "file:line:col: [name] message" findings; cmd/scdn-lint exits non-zero
// on any hit, so `make lint` is a regression gate, not a report.
//
// A finding can be suppressed with an inline directive on the same line
// or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without a recorded
// justification is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked lint unit.
type Package struct {
	// Path is the import path ("scdn/internal/server"); external test
	// packages carry their real name ("scdn/internal/server_test").
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Types/Info may be partially populated if type checking hit errors;
	// analyzers must tolerate missing entries.
	Types *types.Package
	Info  *types.Info

	// ignores maps file name -> line -> analyzer names suppressed there.
	ignores map[string]map[int]map[string]bool
	// badDirectives are malformed //lint:ignore comments.
	badDirectives []Diagnostic
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Global analyzers see every loaded package in a single pass (needed
	// when the invariant spans packages, e.g. metric registration in one
	// package and use in another); per-package analyzers run once per
	// package.
	Global bool
	Run    func(*Pass)
}

// Pass is one analyzer execution over one or more packages.
type Pass struct {
	Analyzer *Analyzer
	// Packages holds the packages under analysis: exactly one for
	// per-package analyzers, all loaded packages for global ones.
	Packages []*Package

	diags []Diagnostic
}

// Reportf records a finding at pos inside pkg, honoring ignore
// directives.
func (p *Pass) Reportf(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	position := pkg.Fset.Position(pos)
	if pkg.ignoredAt(position.Filename, position.Line, p.Analyzer.Name) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (pkg *Package) ignoredAt(file string, line int, analyzer string) bool {
	byLine, ok := pkg.ignores[file]
	if !ok {
		return false
	}
	for _, l := range []int{line, line - 1} {
		if set, ok := byLine[l]; ok && (set[analyzer] || set["all"]) {
			return true
		}
	}
	return false
}

// ignorePrefix introduces a suppression directive.
const ignorePrefix = "//lint:ignore"

// indexIgnores scans a package's comments for //lint:ignore directives,
// recording well-formed ones and reporting malformed ones.
func (pkg *Package) indexIgnores() {
	pkg.ignores = make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					pkg.badDirectives = append(pkg.badDirectives, Diagnostic{
						Pos:      pos,
						Analyzer: "directive",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" (reason is mandatory)",
					})
					continue
				}
				byLine := pkg.ignores[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					pkg.ignores[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				set[fields[0]] = true
			}
		}
	}
}

// Run executes the analyzers over the loaded packages and returns every
// finding, sorted by position. Malformed suppression directives are
// included as "directive" findings.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, pkg.badDirectives...)
	}
	for _, a := range analyzers {
		if a.Global {
			pass := &Pass{Analyzer: a, Packages: pkgs}
			a.Run(pass)
			out = append(out, pass.diags...)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Packages: []*Package{pkg}}
			a.Run(pass)
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// All returns the full analyzer suite in its default configuration.
func All() []*Analyzer {
	return []*Analyzer{
		BodyDrain(),
		LockIO(),
		MetricName(),
		AtomicCopy(),
		CtxHTTP(DefaultCtxHTTPPackages),
		GoroutineLeak(DefaultGoroutineLeakPackages),
		PoolPut(DefaultPoolPutPackages),
	}
}
