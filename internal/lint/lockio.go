package lint

import (
	"go/ast"
	"go/types"
)

// LockIO returns the lockio analyzer: no blocking I/O — HTTP client
// calls, file reads/writes, directory scans, renames/unlinks, network
// dials/listens, time.Sleep — may execute between a Lock()/RLock() and
// its unlock in the same function. The sharded catalog and the
// DiskVolume index are on every request's path; one file operation
// inside such a critical section serializes the whole delivery plane
// behind a disk. The analysis is intra-procedural and lexical: a lock
// released via defer is treated as held until the end of the function,
// an explicit Unlock anywhere (even in a branch that returns) clears the
// state — conservative in the direction of not crying wolf.
func LockIO() *Analyzer {
	a := &Analyzer{
		Name: "lockio",
		Doc:  "no blocking I/O while holding a mutex",
	}
	a.Run = func(pass *Pass) {
		for _, pkg := range pass.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						s := &lockScan{pass: pass, pkg: pkg, held: map[string]bool{}, deferred: map[string]bool{}}
						s.scanStmts(body.List)
					}
					return true
				})
			}
		}
	}
	return a
}

type lockScan struct {
	pass     *Pass
	pkg      *Package
	held     map[string]bool // lock expr -> currently held
	deferred map[string]bool // lock expr -> released only at function end
}

func (s *lockScan) anyHeld() (string, bool) {
	for k, v := range s.held {
		if v {
			return k, true
		}
	}
	return "", false
}

func (s *lockScan) scanStmts(list []ast.Stmt) {
	for _, st := range list {
		s.scanStmt(st)
	}
}

func (s *lockScan) scanStmt(st ast.Stmt) {
	switch v := st.(type) {
	case *ast.ExprStmt:
		if recv, kind := lockCallRecv(v.X); kind != "" {
			key := exprKey(recv)
			switch kind {
			case "lock":
				s.held[key] = true
			case "unlock":
				if !s.deferred[key] {
					delete(s.held, key)
				}
			}
			return
		}
		s.scanExpr(v.X)
	case *ast.DeferStmt:
		// defer mu.Unlock(): held until the end of the function.
		if recv, kind := lockCallRecv(v.Call); kind == "unlock" {
			s.deferred[exprKey(recv)] = true
			return
		}
		// defer func() { ...; mu.Unlock(); ... }(): same thing.
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if recv, kind := lockCallRecv(call); kind == "unlock" {
						s.deferred[exprKey(recv)] = true
					}
				}
				return true
			})
		}
		// I/O in other defers runs at return time; lock state there is
		// ambiguous (depends on defer order), so it is not reported.
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			s.scanExpr(e)
		}
		for _, e := range v.Lhs {
			s.scanExpr(e)
		}
	case *ast.GoStmt:
		// A spawned goroutine does not hold this goroutine's locks; its
		// body is analyzed as its own function literal.
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			s.scanExpr(e)
		}
	case *ast.IfStmt:
		if v.Init != nil {
			s.scanStmt(v.Init)
		}
		s.scanExpr(v.Cond)
		s.scanStmts(v.Body.List)
		if v.Else != nil {
			s.scanStmt(v.Else)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			s.scanStmt(v.Init)
		}
		if v.Cond != nil {
			s.scanExpr(v.Cond)
		}
		s.scanStmts(v.Body.List)
		if v.Post != nil {
			s.scanStmt(v.Post)
		}
	case *ast.RangeStmt:
		s.scanExpr(v.X)
		s.scanStmts(v.Body.List)
	case *ast.BlockStmt:
		s.scanStmts(v.List)
	case *ast.SwitchStmt:
		if v.Init != nil {
			s.scanStmt(v.Init)
		}
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.scanStmts(cc.Body)
			}
		}
	case *ast.DeclStmt:
		// var x = expr
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						s.scanExpr(e)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		s.scanStmt(v.Stmt)
	}
}

// scanExpr reports blocking calls inside e while a lock is held, without
// descending into function literals (they run later, elsewhere).
func (s *lockScan) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	lock, heldNow := s.anyHeld()
	if !heldNow && len(s.deferred) == 0 {
		return
	}
	if !heldNow {
		for k := range s.deferred {
			lock = k
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc := blockingCallDesc(s.pkg, call); desc != "" {
			s.pass.Reportf(s.pkg, call.Pos(),
				"blocking I/O (%s) while holding %s — move the call outside the critical section", desc, lock)
		}
		return true
	})
}

// lockCallRecv classifies e as a lock or unlock call and returns the
// receiver expression. Any .Lock()/.RLock()/.Unlock()/.RUnlock() call
// counts — in this codebase those names always mean sync primitives.
func lockCallRecv(e ast.Expr) (ast.Expr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return sel.X, "lock"
	case "Unlock", "RUnlock":
		return sel.X, "unlock"
	}
	return nil, ""
}

// exprKey renders a receiver expression to a stable string key.
func exprKey(e ast.Expr) string {
	return types.ExprString(e)
}

// pkgFuncs lists blocking package-level functions by package path.
var pkgFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
		"Remove": true, "RemoveAll": true, "Rename": true, "Link": true, "Symlink": true,
		"Mkdir": true, "MkdirAll": true, "Stat": true, "Lstat": true,
		"Truncate": true, "Chtimes": true, "Chmod": true,
	},
	"net": {
		"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true,
		"LookupHost": true, "LookupAddr": true, "LookupIP": true,
	},
	"net/http": {"Get": true, "Post": true, "Head": true, "PostForm": true},
	"io":       {"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true},
}

// clientMethods are the blocking methods of *net/http.Client.
var clientMethods = map[string]bool{"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true}

// fileMethods are the blocking methods of *os.File (Seek and Close are
// effectively instant and deliberately excluded — the DiskVolume FD pool
// rewinds handles under its lock).
var fileMethods = map[string]bool{
	"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
	"ReadFrom": true, "WriteTo": true, "Sync": true, "Truncate": true, "WriteString": true,
}

// blockingCallDesc classifies a call as blocking I/O, returning a short
// description or "".
func blockingCallDesc(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Method call? Resolve the receiver type.
	if pkg.Info != nil {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recv := s.Recv().String()
			switch {
			case recv == "*net/http.Client" && clientMethods[sel.Sel.Name]:
				return "http.Client." + sel.Sel.Name
			case recv == "*os.File" && fileMethods[sel.Sel.Name]:
				return "os.File." + sel.Sel.Name
			}
			return ""
		}
		// Package-qualified function: resolve through Uses so aliased
		// imports still match.
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
			if fn.Pkg() != nil {
				if set, ok := pkgFuncs[fn.Pkg().Path()]; ok && set[fn.Name()] {
					return fn.Pkg().Path() + "." + fn.Name()
				}
			}
			return ""
		}
	}
	// No type info: fall back to the syntactic package name.
	if id, ok := sel.X.(*ast.Ident); ok {
		if set, ok := pkgFuncs[id.Name]; ok && set[sel.Sel.Name] {
			return id.Name + "." + sel.Sel.Name
		}
		if id.Name == "http" && pkgFuncs["net/http"][sel.Sel.Name] {
			return "http." + sel.Sel.Name
		}
	}
	return ""
}
