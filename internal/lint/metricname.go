package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// metricTokenRE extracts candidate metric names from string literals.
var metricTokenRE = regexp.MustCompile(`scdn_[A-Za-z0-9_]*`)

// metricSnakeRE is the legal shape of a metric name.
var metricSnakeRE = regexp.MustCompile(`^scdn_[a-z0-9]+(_[a-z0-9]+)*$`)

// derivedSuffixes are series the exposition derives from a registered
// histogram base name.
var derivedSuffixes = []string{"_count", "_mean"}

// MetricName returns the metricname analyzer: every scdn_* metric string
// literal must be snake_case, must be registered exactly once (a
// registration is a literal inside a function named WriteExposition),
// and every name used elsewhere — loadgen scrapes, tests, dashboards —
// must match a registered name (or a _count/_mean series derived from
// one). A metric name assembled by concatenation or a format verb is
// reported as unverifiable rather than silently passed: the silent-typo
// counter that breaks loadgen's metrics reconciliation is exactly the
// bug this exists to stop. The analyzer is global — registrations in
// internal/server must be visible when checking uses in cmd/.
func MetricName() *Analyzer {
	a := &Analyzer{
		Name:   "metricname",
		Doc:    "scdn_* metric literals: snake_case, registered once, every use matches a registration",
		Global: true,
	}
	a.Run = runMetricName
	return a
}

// metricLit is one scdn_* token found in a string literal.
type metricLit struct {
	pkg          *Package
	pos          token.Pos
	name         string
	registration bool // inside WriteExposition
	unverifiable bool // assembled by concatenation or a format verb
}

func runMetricName(pass *Pass) {
	var lits []metricLit
	for _, pkg := range pass.Packages {
		if strings.HasSuffix(pkg.Path, "internal/lint") || strings.HasSuffix(pkg.Path, "internal/lint_test") {
			// The analyzer's own regexes and diagnostic strings contain
			// scdn_ fragments that are not metrics.
			continue
		}
		for _, f := range pkg.Files {
			collectMetricLits(pkg, f, &lits)
		}
	}
	// Shape and verifiability first.
	for _, l := range lits {
		if l.unverifiable {
			// A dynamic name is only a prefix; shape-checking it would
			// double-report.
			pass.Reportf(l.pkg, l.pos,
				"metric name %q is built dynamically (concatenation or format verb); it cannot be verified against the registered set — use a complete literal", l.name)
			continue
		}
		if !metricSnakeRE.MatchString(l.name) {
			pass.Reportf(l.pkg, l.pos,
				"metric name %q is not snake_case (want ^scdn_[a-z0-9]+(_[a-z0-9]+)*$)", l.name)
		}
	}
	// Registration set + duplicate registrations.
	registered := make(map[string]token.Pos)
	haveRegistrations := false
	for _, l := range lits {
		if !l.registration || l.unverifiable {
			continue
		}
		haveRegistrations = true
		if _, dup := registered[l.name]; dup {
			pass.Reportf(l.pkg, l.pos, "metric %q registered more than once in WriteExposition", l.name)
			continue
		}
		registered[l.name] = l.pos
	}
	if !haveRegistrations {
		// Linting a subset that holds no exposition: uses cannot be
		// checked, and reporting them all would be noise.
		return
	}
	for _, l := range lits {
		if l.registration || l.unverifiable {
			continue
		}
		if _, ok := registered[l.name]; ok {
			continue
		}
		derivedOK := false
		for _, suf := range derivedSuffixes {
			if base, ok := strings.CutSuffix(l.name, suf); ok {
				if _, ok := registered[base]; ok {
					derivedOK = true
					break
				}
			}
		}
		if !derivedOK {
			pass.Reportf(l.pkg, l.pos,
				"metric %q is not registered in any WriteExposition (typo? the exposition and this reader will silently disagree)", l.name)
		}
	}
}

// collectMetricLits walks one file, recording every scdn_* token in a
// string literal together with its context.
func collectMetricLits(pkg *Package, f *ast.File, out *[]metricLit) {
	// Track enclosing function names and binary-+ parents with an
	// explicit stack.
	type frame struct {
		node   ast.Node
		inExpo bool
		concat bool // literal sits under a string concatenation
		format bool // literal is an argument of a *printf-style call
	}
	var stack []frame
	inExpo := func() bool {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].inExpo {
				return true
			}
		}
		return false
	}
	underConcat := func() bool {
		if len(stack) == 0 {
			return false
		}
		return stack[len(stack)-1].concat
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		fr := frame{node: n}
		switch v := n.(type) {
		case *ast.FuncDecl:
			fr.inExpo = v.Name.Name == "WriteExposition"
		case *ast.BinaryExpr:
			fr.concat = v.Op == token.ADD
		case *ast.BasicLit:
			if v.Kind == token.STRING {
				content, err := strconv.Unquote(v.Value)
				if err != nil {
					content = v.Value
				}
				for _, idx := range metricTokenRE.FindAllStringIndex(content, -1) {
					name := content[idx[0]:idx[1]]
					ml := metricLit{
						pkg:          pkg,
						pos:          v.Pos(),
						name:         name,
						registration: inExpo(),
					}
					// A token that runs to the end of a concatenated
					// literal, or is immediately followed by a format
					// verb, names only a prefix of the real metric.
					if idx[1] == len(content) && underConcat() {
						ml.unverifiable = true
					}
					if idx[1] < len(content) && content[idx[1]] == '%' {
						ml.unverifiable = true
					}
					*out = append(*out, ml)
				}
			}
		}
		stack = append(stack, fr)
		return true
	})
}
