package lint

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// fixtureState loads the fixture module under testdata/src exactly once
// per test binary — the stdlib source type-check behind it is the
// expensive part.
var fixtureState struct {
	once sync.Once
	pkgs map[string]*Package
	err  error
}

func fixturePkgs(t *testing.T) map[string]*Package {
	t.Helper()
	fixtureState.once.Do(func() {
		loader, err := NewLoader("testdata/src")
		if err != nil {
			fixtureState.err = err
			return
		}
		pkgs, err := loader.LoadPatterns(nil)
		if err != nil {
			fixtureState.err = err
			return
		}
		fixtureState.pkgs = make(map[string]*Package, len(pkgs))
		for _, p := range pkgs {
			fixtureState.pkgs[p.Path] = p
		}
	})
	if fixtureState.err != nil {
		t.Fatalf("loading fixtures: %v", fixtureState.err)
	}
	return fixtureState.pkgs
}

// want is one expected diagnostic, parsed from a fixture comment of the
// form `// want "substring"` on the line the diagnostic lands on.
type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

// parseWants extracts want comments from every file of the package.
func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want "):]
			for {
				start := strings.Index(rest, `"`)
				if start < 0 {
					break
				}
				end := strings.Index(rest[start+1:], `"`)
				if end < 0 {
					break
				}
				out = append(out, &want{file: name, line: i + 1, substr: rest[start+1 : start+1+end]})
				rest = rest[start+end+2:]
			}
		}
	}
	return out
}

// checkWants verifies the diagnostics exactly cover the want comments:
// every finding matches an unclaimed want on its line, every want is
// claimed.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// TestAnalyzerFixtures runs each analyzer over its fixture package and
// compares findings against the embedded want comments.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		name      string
		pkg       string
		analyzers []*Analyzer
	}{
		{"bodydrain", "fixtures/bodydrain", []*Analyzer{BodyDrain()}},
		{"lockio", "fixtures/lockio", []*Analyzer{LockIO()}},
		{"metricname", "fixtures/metricname", []*Analyzer{MetricName()}},
		{"atomiccopy", "fixtures/atomiccopy", []*Analyzer{AtomicCopy()}},
		{"ctxhttp", "fixtures/ctxhttp", []*Analyzer{CtxHTTP([]string{"fixtures/ctxhttp"})}},
		{"goroutineleak", "fixtures/goroutineleak", []*Analyzer{GoroutineLeak([]string{"fixtures/goroutineleak"})}},
		{"poolput", "fixtures/poolput", []*Analyzer{PoolPut([]string{"fixtures/poolput"})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := fixturePkgs(t)[tc.pkg]
			if pkg == nil {
				t.Fatalf("fixture package %s not loaded", tc.pkg)
			}
			checkWants(t, pkg, Run([]*Package{pkg}, tc.analyzers))
		})
	}
}

// TestIgnoreDirectives checks suppression semantics on the ignore
// fixture: the two justified suppressions hold, the wrong-analyzer and
// reason-less directives do not, and the reason-less directive is
// itself reported.
func TestIgnoreDirectives(t *testing.T) {
	pkg := fixturePkgs(t)["fixtures/ignore"]
	if pkg == nil {
		t.Fatal("fixture package fixtures/ignore not loaded")
	}
	diags := Run([]*Package{pkg}, []*Analyzer{LockIO()})
	var lockio, directive []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "lockio":
			lockio = append(lockio, d)
		case "directive":
			directive = append(directive, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	// Four sleeps under lock in the fixture; the two justified
	// suppressions remove exactly two.
	if len(lockio) != 2 {
		t.Errorf("lockio findings = %d, want 2 (suppressions not honored, or honored too broadly):\n%s",
			len(lockio), diagLines(lockio))
	}
	if len(directive) != 1 || !strings.Contains(directive[0].Message, "malformed") {
		t.Errorf("directive findings = %v, want exactly one malformed-directive report", directive)
	}
}

func diagLines(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
