// Package provenance records the lineage and custody of every dataset in
// the S-CDN: who created it, which workflow derived it from what, every
// copy movement between repositories, and every access — the "data
// provenance management ... and accountability" the paper's vision calls
// for. The log is append-only; queries reconstruct custody chains and
// derivation trees.
package provenance

import (
	"fmt"
	"io"
	"sort"
	"time"

	"scdn/internal/storage"
)

// NodeID identifies a user in provenance records.
type NodeID = int64

// EventKind classifies a provenance record.
type EventKind int

// Provenance event kinds.
const (
	// Created: the dataset first appeared at its origin.
	Created EventKind = iota
	// Derived: the dataset was produced from another by a workflow stage.
	Derived
	// Replicated: a copy moved to a new holder (CDN placement).
	Replicated
	// Accessed: a user fetched or read the dataset.
	Accessed
	// Updated: the owner published a new version.
	Updated
	// Retired: a replica was dropped (migration or eviction).
	Retired
)

func (k EventKind) String() string {
	switch k {
	case Created:
		return "created"
	case Derived:
		return "derived"
	case Replicated:
		return "replicated"
	case Accessed:
		return "accessed"
	case Updated:
		return "updated"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one append-only provenance record.
type Event struct {
	Seq     uint64
	At      time.Duration
	Kind    EventKind
	Dataset storage.DatasetID
	// Actor is the user performing or receiving the action (creator,
	// new holder, accessor).
	Actor NodeID
	// Source is the counterpart (the holder served from, the parent
	// dataset's owner); 0 when not applicable.
	Source NodeID
	// Parent is the dataset this one derives from (Derived events).
	Parent storage.DatasetID
	// Stage annotates Derived events with the workflow stage name.
	Stage string
}

// Log is an append-only provenance store. Not safe for concurrent use.
type Log struct {
	events    []Event
	byDataset map[storage.DatasetID][]int
	byActor   map[NodeID][]int
	nextSeq   uint64
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{
		byDataset: make(map[storage.DatasetID][]int),
		byActor:   make(map[NodeID][]int),
	}
}

// append records an event and indexes it.
func (l *Log) append(e Event) {
	e.Seq = l.nextSeq
	l.nextSeq++
	idx := len(l.events)
	l.events = append(l.events, e)
	l.byDataset[e.Dataset] = append(l.byDataset[e.Dataset], idx)
	l.byActor[e.Actor] = append(l.byActor[e.Actor], idx)
}

// RecordCreated logs a dataset's first appearance at its origin.
func (l *Log) RecordCreated(id storage.DatasetID, owner NodeID, at time.Duration) {
	l.append(Event{At: at, Kind: Created, Dataset: id, Actor: owner})
}

// RecordDerived logs a workflow derivation: child produced from parent by
// actor at the given stage.
func (l *Log) RecordDerived(child, parent storage.DatasetID, actor NodeID, stage string, at time.Duration) {
	l.append(Event{At: at, Kind: Derived, Dataset: child, Actor: actor, Parent: parent, Stage: stage})
}

// RecordReplicated logs a copy landing on holder, served from source.
func (l *Log) RecordReplicated(id storage.DatasetID, holder, source NodeID, at time.Duration) {
	l.append(Event{At: at, Kind: Replicated, Dataset: id, Actor: holder, Source: source})
}

// RecordAccessed logs a read/fetch by actor served from source (source 0
// for local hits).
func (l *Log) RecordAccessed(id storage.DatasetID, actor, source NodeID, at time.Duration) {
	l.append(Event{At: at, Kind: Accessed, Dataset: id, Actor: actor, Source: source})
}

// RecordUpdated logs a new version published by the owner.
func (l *Log) RecordUpdated(id storage.DatasetID, owner NodeID, at time.Duration) {
	l.append(Event{At: at, Kind: Updated, Dataset: id, Actor: owner})
}

// RecordRetired logs a replica drop at holder.
func (l *Log) RecordRetired(id storage.DatasetID, holder NodeID, at time.Duration) {
	l.append(Event{At: at, Kind: Retired, Dataset: id, Actor: holder})
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// History returns a dataset's events in record order.
func (l *Log) History(id storage.DatasetID) []Event {
	idxs := l.byDataset[id]
	out := make([]Event, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.events[i])
	}
	return out
}

// Activity returns a user's events in record order — the accountability
// view: everything this participant did or received.
func (l *Log) Activity(actor NodeID) []Event {
	idxs := l.byActor[actor]
	out := make([]Event, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, l.events[i])
	}
	return out
}

// Lineage returns the derivation chain of a dataset, root first: the IDs
// of its ancestors (via Derived events) ending with the dataset itself.
// Cycles (which would indicate log corruption) terminate the walk with an
// error.
func (l *Log) Lineage(id storage.DatasetID) ([]storage.DatasetID, error) {
	var chain []storage.DatasetID
	seen := make(map[storage.DatasetID]bool)
	cur := id
	for {
		if seen[cur] {
			return nil, fmt.Errorf("provenance: derivation cycle at %q", cur)
		}
		seen[cur] = true
		chain = append(chain, cur)
		parent, ok := l.parentOf(cur)
		if !ok {
			break
		}
		cur = parent
	}
	// Reverse: root first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, nil
}

func (l *Log) parentOf(id storage.DatasetID) (storage.DatasetID, bool) {
	for _, i := range l.byDataset[id] {
		if e := l.events[i]; e.Kind == Derived {
			return e.Parent, true
		}
	}
	return "", false
}

// Descendants returns every dataset derived (transitively) from id,
// sorted ascending.
func (l *Log) Descendants(id storage.DatasetID) []storage.DatasetID {
	children := make(map[storage.DatasetID][]storage.DatasetID)
	for _, e := range l.events {
		if e.Kind == Derived {
			children[e.Parent] = append(children[e.Parent], e.Dataset)
		}
	}
	var out []storage.DatasetID
	var walk func(storage.DatasetID)
	seen := make(map[storage.DatasetID]bool)
	walk = func(cur storage.DatasetID) {
		for _, c := range children[cur] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
				walk(c)
			}
		}
	}
	walk(id)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Custody returns the holders that ever kept a copy of the dataset
// (creator, replicas), sorted ascending, with retired holders excluded
// when excludeRetired is set.
func (l *Log) Custody(id storage.DatasetID, excludeRetired bool) []NodeID {
	holding := make(map[NodeID]bool)
	for _, i := range l.byDataset[id] {
		switch e := l.events[i]; e.Kind {
		case Created, Replicated:
			holding[e.Actor] = true
		case Retired:
			if excludeRetired {
				delete(holding, e.Actor)
			}
		}
	}
	out := make([]NodeID, 0, len(holding))
	for n := range holding {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AccessCount returns how many Accessed events the dataset has.
func (l *Log) AccessCount(id storage.DatasetID) int {
	n := 0
	for _, i := range l.byDataset[id] {
		if l.events[i].Kind == Accessed {
			n++
		}
	}
	return n
}

// WriteAudit prints a dataset's full history as a human-readable audit
// trail.
func (l *Log) WriteAudit(w io.Writer, id storage.DatasetID) error {
	for _, e := range l.History(id) {
		var err error
		switch e.Kind {
		case Derived:
			_, err = fmt.Fprintf(w, "%-12v %-10s %q by user %d from %q (stage %s)\n",
				e.At, e.Kind, e.Dataset, e.Actor, e.Parent, e.Stage)
		case Replicated, Accessed:
			_, err = fmt.Fprintf(w, "%-12v %-10s %q by user %d from user %d\n",
				e.At, e.Kind, e.Dataset, e.Actor, e.Source)
		default:
			_, err = fmt.Fprintf(w, "%-12v %-10s %q by user %d\n",
				e.At, e.Kind, e.Dataset, e.Actor)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
