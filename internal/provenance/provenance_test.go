package provenance

import (
	"strings"
	"testing"
	"time"
)

func sampleLog() *Log {
	l := NewLog()
	l.RecordCreated("raw", 1, 0)
	l.RecordDerived("brain", "raw", 2, "brain-extraction", time.Hour)
	l.RecordDerived("fa", "brain", 3, "fa-calculation", 2*time.Hour)
	l.RecordReplicated("fa", 4, 3, 3*time.Hour)
	l.RecordAccessed("fa", 5, 4, 4*time.Hour)
	l.RecordUpdated("fa", 3, 5*time.Hour)
	l.RecordRetired("fa", 4, 6*time.Hour)
	return l
}

func TestSequenceAndLen(t *testing.T) {
	l := sampleLog()
	if l.Len() != 7 {
		t.Fatalf("len = %d", l.Len())
	}
	hist := l.History("fa")
	for i := 1; i < len(hist); i++ {
		if hist[i].Seq <= hist[i-1].Seq {
			t.Fatal("sequence numbers not increasing")
		}
	}
}

func TestLineage(t *testing.T) {
	l := sampleLog()
	chain, err := l.Lineage("fa")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"raw", "brain", "fa"}
	if len(chain) != 3 {
		t.Fatalf("chain = %v", chain)
	}
	for i, id := range chain {
		if string(id) != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
	// A root dataset's lineage is itself.
	chain, err = l.Lineage("raw")
	if err != nil || len(chain) != 1 || chain[0] != "raw" {
		t.Fatalf("root lineage = %v, %v", chain, err)
	}
}

func TestLineageCycleDetected(t *testing.T) {
	l := NewLog()
	l.RecordDerived("a", "b", 1, "s", 0)
	l.RecordDerived("b", "a", 1, "s", 0)
	if _, err := l.Lineage("a"); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestDescendants(t *testing.T) {
	l := sampleLog()
	desc := l.Descendants("raw")
	if len(desc) != 2 || desc[0] != "brain" || desc[1] != "fa" {
		t.Fatalf("descendants = %v", desc)
	}
	if got := l.Descendants("fa"); len(got) != 0 {
		t.Fatalf("leaf descendants = %v", got)
	}
}

func TestCustody(t *testing.T) {
	l := sampleLog()
	all := l.Custody("fa", false)
	if len(all) != 1 || all[0] != 4 {
		t.Fatalf("custody(all) = %v (fa was only ever replicated to 4)", all)
	}
	current := l.Custody("fa", true)
	if len(current) != 0 {
		t.Fatalf("custody(current) = %v, want empty after retire", current)
	}
	raw := l.Custody("raw", true)
	if len(raw) != 1 || raw[0] != 1 {
		t.Fatalf("raw custody = %v", raw)
	}
}

func TestActivityAccountability(t *testing.T) {
	l := sampleLog()
	acts := l.Activity(3)
	// User 3: derived "fa" and updated "fa".
	if len(acts) != 2 || acts[0].Kind != Derived || acts[1].Kind != Updated {
		t.Fatalf("activity = %+v", acts)
	}
	if got := l.Activity(99); len(got) != 0 {
		t.Fatal("stranger has activity")
	}
}

func TestAccessCount(t *testing.T) {
	l := sampleLog()
	if n := l.AccessCount("fa"); n != 1 {
		t.Fatalf("access count = %d", n)
	}
	if n := l.AccessCount("raw"); n != 0 {
		t.Fatalf("raw access count = %d", n)
	}
}

func TestWriteAudit(t *testing.T) {
	l := sampleLog()
	var sb strings.Builder
	if err := l.WriteAudit(&sb, "fa"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"derived", "fa-calculation", "replicated", "accessed", "updated", "retired"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		Created: "created", Derived: "derived", Replicated: "replicated",
		Accessed: "accessed", Updated: "updated", Retired: "retired",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if EventKind(77).String() != "event(77)" {
		t.Error("unknown kind String wrong")
	}
}
