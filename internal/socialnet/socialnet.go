// Package socialnet is the in-process social network platform the S-CDN
// builds on: users with profile properties, typed relationships, groups
// representing collaborations, and a token-based authentication service.
// It stands in for the paper's Facebook-like platform, exposing the same
// capabilities the architecture consumes — identity, the social graph,
// group membership, and credentials.
package socialnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"scdn/internal/graph"
)

// UserID identifies a platform user; it doubles as the social-graph node.
type UserID = graph.NodeID

// RelationshipType classifies a social tie.
type RelationshipType int

// Relationship types, ordered roughly by the strength the trust model
// assigns them.
const (
	Acquaintance RelationshipType = iota
	Colleague
	Coauthor
	ProjectPartner
)

func (r RelationshipType) String() string {
	switch r {
	case Acquaintance:
		return "acquaintance"
	case Colleague:
		return "colleague"
	case Coauthor:
		return "coauthor"
	case ProjectPartner:
		return "project-partner"
	default:
		return fmt.Sprintf("relationship(%d)", int(r))
	}
}

// Profile holds the user properties the CDN algorithms consume
// (Section V-C: "key user properties such as research interests or
// current location").
type Profile struct {
	Name      string
	SiteID    int // home site in the network model
	Interests []string
}

// Relationship is a directed view of a social tie (stored symmetrically).
type Relationship struct {
	Peer     UserID
	Type     RelationshipType
	Strength float64 // application-defined tie strength, e.g. coauthorship count
}

// Platform is the social network. Safe for concurrent use.
type Platform struct {
	mu     sync.RWMutex
	users  map[UserID]*Profile
	ties   map[UserID]map[UserID]*Relationship
	groups map[string]map[UserID]struct{}
	auth   *AuthService
}

// New creates an empty platform with its own auth service.
func New(authSeed int64) *Platform {
	return &Platform{
		users:  make(map[UserID]*Profile),
		ties:   make(map[UserID]map[UserID]*Relationship),
		groups: make(map[string]map[UserID]struct{}),
		auth:   NewAuthService(authSeed),
	}
}

// Auth returns the platform's authentication service.
func (p *Platform) Auth() *AuthService { return p.auth }

// Register adds a user. Registering an existing ID returns an error.
func (p *Platform) Register(id UserID, profile Profile) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.users[id]; dup {
		return fmt.Errorf("socialnet: user %d already registered", id)
	}
	cp := profile
	cp.Interests = append([]string(nil), profile.Interests...)
	p.users[id] = &cp
	p.ties[id] = make(map[UserID]*Relationship)
	return nil
}

// ProfileOf returns a copy of the user's profile.
func (p *Platform) ProfileOf(id UserID) (Profile, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	prof, ok := p.users[id]
	if !ok {
		return Profile{}, fmt.Errorf("socialnet: unknown user %d", id)
	}
	cp := *prof
	cp.Interests = append([]string(nil), prof.Interests...)
	return cp, nil
}

// NumUsers returns the registered-user count.
func (p *Platform) NumUsers() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.users)
}

// Connect records a symmetric relationship between two users, overwriting
// any existing tie. Self-ties and unknown users are errors.
func (p *Platform) Connect(a, b UserID, typ RelationshipType, strength float64) error {
	if a == b {
		return errors.New("socialnet: self relationship")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.users[a]; !ok {
		return fmt.Errorf("socialnet: unknown user %d", a)
	}
	if _, ok := p.users[b]; !ok {
		return fmt.Errorf("socialnet: unknown user %d", b)
	}
	p.ties[a][b] = &Relationship{Peer: b, Type: typ, Strength: strength}
	p.ties[b][a] = &Relationship{Peer: a, Type: typ, Strength: strength}
	return nil
}

// Connected reports whether a tie exists.
func (p *Platform) Connected(a, b UserID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.ties[a][b]
	return ok
}

// RelationshipsOf returns the user's ties sorted by peer ID.
func (p *Platform) RelationshipsOf(id UserID) []Relationship {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Relationship, 0, len(p.ties[id]))
	for _, r := range p.ties[id] {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// CreateGroup creates an empty named group (idempotent).
func (p *Platform) CreateGroup(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.groups[name]; !ok {
		p.groups[name] = make(map[UserID]struct{})
	}
}

// JoinGroup adds a user to a group, creating the group if needed.
func (p *Platform) JoinGroup(name string, id UserID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.users[id]; !ok {
		return fmt.Errorf("socialnet: unknown user %d", id)
	}
	g, ok := p.groups[name]
	if !ok {
		g = make(map[UserID]struct{})
		p.groups[name] = g
	}
	g[id] = struct{}{}
	return nil
}

// LeaveGroup removes a user from a group (no-op if absent).
func (p *Platform) LeaveGroup(name string, id UserID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.groups[name], id)
}

// InGroup reports group membership.
func (p *Platform) InGroup(name string, id UserID) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.groups[name][id]
	return ok
}

// GroupMembers returns a group's members sorted ascending.
func (p *Platform) GroupMembers(name string) []UserID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]UserID, 0, len(p.groups[name]))
	for id := range p.groups[name] {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SocialGraph exports the platform's tie structure as a graph for the
// placement and community algorithms. Users without ties appear as
// isolated nodes.
func (p *Platform) SocialGraph() *graph.Graph {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g := graph.New()
	for id := range p.users {
		g.AddNode(id)
	}
	for a, peers := range p.ties {
		for b := range peers {
			if a < b {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

// GroupGraph exports the tie structure restricted to a group's members.
func (p *Platform) GroupGraph(name string) *graph.Graph {
	p.mu.RLock()
	defer p.mu.RUnlock()
	g := graph.New()
	members := p.groups[name]
	for id := range members {
		g.AddNode(id)
	}
	for a := range members {
		for b := range p.ties[a] {
			if _, ok := members[b]; ok && a < b {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}
