package socialnet

import (
	"testing"
	"time"
)

func newPlatform(t *testing.T, users ...UserID) *Platform {
	t.Helper()
	p := New(1)
	for _, u := range users {
		if err := p.Register(u, Profile{Name: "u", SiteID: int(u)}); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestRegisterDuplicate(t *testing.T) {
	p := newPlatform(t, 1)
	if err := p.Register(1, Profile{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if p.NumUsers() != 1 {
		t.Fatalf("NumUsers = %d", p.NumUsers())
	}
}

func TestProfileIsolation(t *testing.T) {
	p := New(1)
	orig := Profile{Name: "kyle", Interests: []string{"escience"}}
	p.Register(1, orig)
	orig.Interests[0] = "mutated"
	got, err := p.ProfileOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interests[0] != "escience" {
		t.Fatal("profile not copied on register")
	}
	got.Interests[0] = "mutated-again"
	got2, _ := p.ProfileOf(1)
	if got2.Interests[0] != "escience" {
		t.Fatal("profile not copied on read")
	}
	if _, err := p.ProfileOf(99); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	p := newPlatform(t, 1, 2)
	if err := p.Connect(1, 1, Coauthor, 1); err == nil {
		t.Fatal("self tie accepted")
	}
	if err := p.Connect(1, 9, Coauthor, 1); err == nil {
		t.Fatal("unknown peer accepted")
	}
	if err := p.Connect(1, 2, Coauthor, 2.5); err != nil {
		t.Fatal(err)
	}
	if !p.Connected(1, 2) || !p.Connected(2, 1) {
		t.Fatal("tie not symmetric")
	}
	rels := p.RelationshipsOf(2)
	if len(rels) != 1 || rels[0].Peer != 1 || rels[0].Strength != 2.5 || rels[0].Type != Coauthor {
		t.Fatalf("relationships = %+v", rels)
	}
}

func TestRelationshipOverwrite(t *testing.T) {
	p := newPlatform(t, 1, 2)
	p.Connect(1, 2, Acquaintance, 1)
	p.Connect(1, 2, ProjectPartner, 5)
	rels := p.RelationshipsOf(1)
	if len(rels) != 1 || rels[0].Type != ProjectPartner || rels[0].Strength != 5 {
		t.Fatalf("overwrite failed: %+v", rels)
	}
}

func TestGroups(t *testing.T) {
	p := newPlatform(t, 1, 2, 3)
	if err := p.JoinGroup("trial", 1); err != nil {
		t.Fatal(err)
	}
	p.JoinGroup("trial", 3)
	if err := p.JoinGroup("trial", 99); err == nil {
		t.Fatal("unknown user joined group")
	}
	if !p.InGroup("trial", 1) || p.InGroup("trial", 2) {
		t.Fatal("membership wrong")
	}
	members := p.GroupMembers("trial")
	if len(members) != 2 || members[0] != 1 || members[1] != 3 {
		t.Fatalf("members = %v", members)
	}
	p.LeaveGroup("trial", 1)
	if p.InGroup("trial", 1) {
		t.Fatal("leave failed")
	}
	p.LeaveGroup("absent-group", 1) // no-op
	p.CreateGroup("empty")
	if got := p.GroupMembers("empty"); len(got) != 0 {
		t.Fatalf("empty group has members: %v", got)
	}
}

func TestSocialGraphExport(t *testing.T) {
	p := newPlatform(t, 1, 2, 3, 4)
	p.Connect(1, 2, Coauthor, 1)
	p.Connect(2, 3, Colleague, 1)
	g := p.SocialGraph()
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("graph = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 3) || g.HasEdge(1, 3) {
		t.Fatal("graph edges wrong")
	}
	if !g.HasNode(4) {
		t.Fatal("isolated user missing")
	}
}

func TestGroupGraph(t *testing.T) {
	p := newPlatform(t, 1, 2, 3)
	p.Connect(1, 2, Coauthor, 1)
	p.Connect(2, 3, Coauthor, 1)
	p.JoinGroup("g", 1)
	p.JoinGroup("g", 2)
	g := p.GroupGraph("g")
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("group graph = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.HasNode(3) {
		t.Fatal("non-member in group graph")
	}
}

func TestRelationshipTypeString(t *testing.T) {
	if Coauthor.String() != "coauthor" || ProjectPartner.String() != "project-partner" {
		t.Fatal("String() wrong")
	}
	if RelationshipType(99).String() != "relationship(99)" {
		t.Fatal("unknown type String() wrong")
	}
}

func TestAuthIssueValidate(t *testing.T) {
	a := NewAuthService(1)
	tok, err := a.Issue(7, 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := a.Validate(tok, 30*time.Minute)
	if err != nil || user != 7 {
		t.Fatalf("validate = %d, %v", user, err)
	}
	if _, err := a.Validate(tok, 2*time.Hour); err == nil {
		t.Fatal("expired token validated")
	}
	if _, err := a.Validate("bogus", 0); err == nil {
		t.Fatal("bogus token validated")
	}
	if _, err := a.Issue(7, 0, 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
}

func TestAuthRevoke(t *testing.T) {
	a := NewAuthService(1)
	tok, _ := a.Issue(7, 0, time.Hour)
	if err := a.Revoke(tok); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Validate(tok, time.Minute); err == nil {
		t.Fatal("revoked token validated")
	}
	if err := a.Revoke("bogus"); err == nil {
		t.Fatal("revoking bogus token should error")
	}
}

func TestAuthActiveSessions(t *testing.T) {
	a := NewAuthService(1)
	t1, _ := a.Issue(1, 0, time.Hour)
	a.Issue(2, 0, 2*time.Hour)
	if n := a.ActiveSessions(30 * time.Minute); n != 2 {
		t.Fatalf("active = %d, want 2", n)
	}
	if n := a.ActiveSessions(90 * time.Minute); n != 1 {
		t.Fatalf("active = %d, want 1", n)
	}
	a.Revoke(t1)
	if n := a.ActiveSessions(time.Minute); n != 1 {
		t.Fatalf("active after revoke = %d, want 1", n)
	}
}

func TestAuthTokensUnique(t *testing.T) {
	a := NewAuthService(1)
	seen := make(map[Token]bool)
	for i := 0; i < 100; i++ {
		tok, err := a.Issue(UserID(i), 0, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok] {
			t.Fatal("duplicate token issued")
		}
		seen[tok] = true
	}
}
