package socialnet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Token is an opaque session credential issued by the platform. The S-CDN
// middleware validates tokens before touching allocation servers
// (Section V: "access to allocation servers can only take place after
// users have been authenticated through their social network").
type Token string

// AuthService issues and validates session tokens. Tokens are bound to a
// user and an expiry measured on a caller-supplied clock, so simulations
// can drive expiry with virtual time.
type AuthService struct {
	mu       sync.Mutex
	rng      *rand.Rand
	sessions map[Token]session
}

type session struct {
	user    UserID
	expires time.Duration // absolute point on the caller's clock
	revoked bool
}

// NewAuthService creates a token service; seed drives token generation.
func NewAuthService(seed int64) *AuthService {
	return &AuthService{
		rng:      rand.New(rand.NewSource(seed)),
		sessions: make(map[Token]session),
	}
}

// Issue creates a token for user valid until now+ttl on the caller's
// clock. A non-positive ttl yields an error.
func (a *AuthService) Issue(user UserID, now, ttl time.Duration) (Token, error) {
	if ttl <= 0 {
		return "", fmt.Errorf("socialnet: non-positive token ttl %v", ttl)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	raw := make([]byte, 16)
	for i := range raw {
		raw[i] = byte(a.rng.Intn(256))
	}
	sum := sha256.Sum256(append(raw, []byte(fmt.Sprintf("%d@%d", user, now))...))
	tok := Token(hex.EncodeToString(sum[:16]))
	a.sessions[tok] = session{user: user, expires: now + ttl}
	return tok, nil
}

// Validate returns the user a token belongs to if it is current at `now`.
func (a *AuthService) Validate(tok Token, now time.Duration) (UserID, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sessions[tok]
	if !ok {
		return 0, fmt.Errorf("socialnet: unknown token")
	}
	if s.revoked {
		return 0, fmt.Errorf("socialnet: token revoked")
	}
	if now >= s.expires {
		return 0, fmt.Errorf("socialnet: token expired")
	}
	return s.user, nil
}

// Revoke invalidates a token immediately. Revoking an unknown token is an
// error so callers notice bookkeeping bugs.
func (a *AuthService) Revoke(tok Token) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sessions[tok]
	if !ok {
		return fmt.Errorf("socialnet: unknown token")
	}
	s.revoked = true
	a.sessions[tok] = s
	return nil
}

// ActiveSessions counts unexpired, unrevoked sessions at `now`.
func (a *AuthService) ActiveSessions(now time.Duration) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.sessions {
		if !s.revoked && now < s.expires {
			n++
		}
	}
	return n
}
