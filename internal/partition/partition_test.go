package partition

import (
	"math/rand"
	"testing"

	"scdn/internal/graph"
	"scdn/internal/storage"
)

// twoCliqueGraph builds two K4 cliques {0..3} and {10..13} joined by an
// edge 0-10.
func twoCliqueGraph() *graph.Graph {
	g := graph.New()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			g.AddEdge(graph.NodeID(10+i), graph.NodeID(10+j))
		}
	}
	g.AddEdge(0, 10)
	return g
}

func seg(id string, bytes int64) Segment {
	return Segment{ID: storage.DatasetID(id), Bytes: bytes}
}

func TestRoundRobinDistributes(t *testing.T) {
	g := twoCliqueGraph()
	p := Params{Graph: g, Replicas: []graph.NodeID{1, 11}}
	segs := []Segment{seg("a", 10), seg("b", 10), seg("c", 10), seg("d", 10)}
	a, err := RoundRobin(segs, p)
	if err != nil {
		t.Fatal(err)
	}
	count := map[graph.NodeID]int{}
	for _, nodes := range a {
		if len(nodes) != 1 {
			t.Fatalf("copies = %d, want 1", len(nodes))
		}
		count[nodes[0]]++
	}
	if count[1] != 2 || count[11] != 2 {
		t.Fatalf("distribution = %v, want 2/2", count)
	}
}

func TestRoundRobinCapacity(t *testing.T) {
	g := twoCliqueGraph()
	p := Params{
		Graph:    g,
		Replicas: []graph.NodeID{1, 11},
		Capacity: map[graph.NodeID]int64{1: 10, 11: 30},
	}
	segs := []Segment{seg("a", 10), seg("b", 10), seg("c", 10)}
	a, err := RoundRobin(segs, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(segs, p.Capacity); err != nil {
		t.Fatal(err)
	}
	// Over-capacity demand fails.
	segs = append(segs, seg("d", 10), seg("e", 10))
	if _, err := RoundRobin(segs, p); err == nil {
		t.Fatal("over-capacity assignment accepted")
	}
}

func TestRoundRobinNoReplicas(t *testing.T) {
	if _, err := RoundRobin([]Segment{seg("a", 1)}, Params{Graph: graph.New()}); err == nil {
		t.Fatal("no replicas accepted")
	}
}

func TestUsageBasedAffinity(t *testing.T) {
	g := twoCliqueGraph()
	usage := Usage{
		1:  {"left": 100},
		2:  {"left": 50},
		11: {"right": 100},
		12: {"right": 60},
	}
	p := Params{Graph: g, Replicas: []graph.NodeID{3, 13}}
	a, err := UsageBased([]Segment{seg("left", 10), seg("right", 10)}, usage, p)
	if err != nil {
		t.Fatal(err)
	}
	if a["left"][0] != 3 {
		t.Fatalf("left assigned to %v, want clique-A replica 3", a["left"])
	}
	if a["right"][0] != 13 {
		t.Fatalf("right assigned to %v, want clique-B replica 13", a["right"])
	}
}

func TestUsageBasedCopies(t *testing.T) {
	g := twoCliqueGraph()
	usage := Usage{1: {"a": 10}}
	p := Params{Graph: g, Replicas: []graph.NodeID{2, 3, 12}, CopiesPerSegment: 2}
	a, err := UsageBased([]Segment{seg("a", 5)}, usage, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a["a"]) != 2 {
		t.Fatalf("copies = %d, want 2", len(a["a"]))
	}
}

func TestUsageBasedCapacitySpill(t *testing.T) {
	g := twoCliqueGraph()
	usage := Usage{1: {"a": 100, "b": 90}}
	p := Params{
		Graph:    g,
		Replicas: []graph.NodeID{2, 12},
		Capacity: map[graph.NodeID]int64{2: 10, 12: 100},
	}
	// Both segments prefer replica 2 (same clique), but only one fits;
	// the other must spill to 12.
	a, err := UsageBased([]Segment{seg("a", 10), seg("b", 10)}, usage, p)
	if err != nil {
		t.Fatal(err)
	}
	if a["a"][0] != 2 { // heavier segment wins the good spot
		t.Fatalf("a → %v, want 2", a["a"])
	}
	if a["b"][0] != 12 {
		t.Fatalf("b → %v, want spill to 12", a["b"])
	}
}

func TestSocialGroupBasedPrefersCommunityReplica(t *testing.T) {
	g := twoCliqueGraph()
	usage := Usage{
		1:  {"left": 100},
		2:  {"left": 80},
		11: {"right": 100},
	}
	p := Params{Graph: g, Replicas: []graph.NodeID{3, 13}}
	a, err := SocialGroupBased([]Segment{seg("left", 10), seg("right", 10)}, usage, p,
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if a["left"][0] != 3 {
		t.Fatalf("left → %v, want community replica 3", a["left"])
	}
	if a["right"][0] != 13 {
		t.Fatalf("right → %v, want community replica 13", a["right"])
	}
}

func TestSocialGroupBasedFallback(t *testing.T) {
	g := twoCliqueGraph()
	// Segment nobody uses still gets placed somewhere.
	p := Params{Graph: g, Replicas: []graph.NodeID{3}}
	a, err := SocialGroupBased([]Segment{seg("unused", 10)}, Usage{}, p,
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a["unused"]) != 1 {
		t.Fatalf("unused segment not placed: %v", a)
	}
	if _, err := SocialGroupBased(nil, Usage{}, Params{Graph: g}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("no replicas accepted")
	}
}

func TestLocalityScore(t *testing.T) {
	g := twoCliqueGraph()
	usage := Usage{1: {"a": 10}}
	// Replica at the accessing node: perfect locality.
	perfect := Assignment{"a": {1}}
	if s := LocalityScore(perfect, usage, g); s != 1 {
		t.Fatalf("perfect locality = %v, want 1", s)
	}
	// Replica one hop away: 1/2.
	near := Assignment{"a": {2}}
	if s := LocalityScore(near, usage, g); s != 0.5 {
		t.Fatalf("one-hop locality = %v, want 0.5", s)
	}
	// Unreachable assignment contributes 0.
	if s := LocalityScore(Assignment{"a": {}}, usage, g); s != 0 {
		t.Fatalf("empty locality = %v, want 0", s)
	}
	if s := LocalityScore(Assignment{}, Usage{}, g); s != 0 {
		t.Fatalf("no-usage locality = %v, want 0", s)
	}
}

func TestSocialBeatsRoundRobinOnClusteredUsage(t *testing.T) {
	g := twoCliqueGraph()
	usage := Usage{
		0: {"a": 50}, 1: {"a": 50}, 2: {"a": 50},
		10: {"b": 50}, 11: {"b": 50}, 12: {"b": 50},
	}
	p := Params{Graph: g, Replicas: []graph.NodeID{3, 13}}
	segs := []Segment{seg("a", 10), seg("b", 10)}
	social, err := SocialGroupBased(segs, usage, p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial round-robin: replica order makes RR place each segment
	// in the wrong clique.
	pBad := Params{Graph: g, Replicas: []graph.NodeID{13, 3}}
	rr, err := RoundRobin(segs, pBad)
	if err != nil {
		t.Fatal(err)
	}
	if LocalityScore(social, usage, g) <= LocalityScore(rr, usage, g) {
		t.Fatalf("social locality %.3f should beat adversarial round-robin %.3f",
			LocalityScore(social, usage, g), LocalityScore(rr, usage, g))
	}
}

func TestAssignmentValidate(t *testing.T) {
	segs := []Segment{seg("a", 10)}
	good := Assignment{"a": {1}}
	if err := good.Validate(segs, map[graph.NodeID]int64{1: 10}); err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(segs, map[graph.NodeID]int64{1: 5}); err == nil {
		t.Fatal("over-capacity validated")
	}
	bad := Assignment{"ghost": {1}}
	if err := bad.Validate(segs, nil); err == nil {
		t.Fatal("unknown segment validated")
	}
}

func TestUsageTotal(t *testing.T) {
	u := Usage{1: {"a": 3}, 2: {"a": 4, "b": 1}}
	if got := u.Total("a"); got != 7 {
		t.Fatalf("total = %d, want 7", got)
	}
	if got := u.Total("zzz"); got != 0 {
		t.Fatalf("missing total = %d, want 0", got)
	}
}
