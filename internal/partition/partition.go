// Package partition implements the second allocation stage of
// Section V-D: assigning data segments to replica nodes. The paper
// contrasts traditional usage-based partitioning with socially informed
// partitioning that groups similar users by their social connections; both
// are implemented here, plus a round-robin baseline.
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"scdn/internal/community"
	"scdn/internal/graph"
	"scdn/internal/storage"
)

// Segment is a unit of placeable data (a dataset or dataset fragment).
type Segment struct {
	ID    storage.DatasetID
	Bytes int64
}

// Usage records per-user access counts per segment.
type Usage map[graph.NodeID]map[storage.DatasetID]uint64

// Total returns the total access count for a segment.
func (u Usage) Total(id storage.DatasetID) uint64 {
	var sum uint64
	for _, m := range u {
		sum += m[id]
	}
	return sum
}

// Assignment maps each segment to the replica nodes chosen to host it.
type Assignment map[storage.DatasetID][]graph.NodeID

// Validate checks that an assignment respects per-node capacities.
func (a Assignment) Validate(segments []Segment, capacity map[graph.NodeID]int64) error {
	size := make(map[storage.DatasetID]int64, len(segments))
	for _, s := range segments {
		size[s.ID] = s.Bytes
	}
	used := make(map[graph.NodeID]int64)
	for id, nodes := range a {
		b, ok := size[id]
		if !ok {
			return fmt.Errorf("partition: assignment contains unknown segment %q", id)
		}
		for _, n := range nodes {
			used[n] += b
		}
	}
	for n, u := range used {
		if cap, ok := capacity[n]; ok && u > cap {
			return fmt.Errorf("partition: node %d over capacity (%d > %d)", n, u, cap)
		}
	}
	return nil
}

// Params carries the shared inputs of all partitioners.
type Params struct {
	Graph *graph.Graph
	// Replicas are the candidate holder nodes (already selected by the
	// replica-placement stage).
	Replicas []graph.NodeID
	// Capacity bounds bytes per replica node; nodes absent from the map
	// are unconstrained.
	Capacity map[graph.NodeID]int64
	// CopiesPerSegment is how many replicas each segment should have
	// (clamped to len(Replicas); minimum 1).
	CopiesPerSegment int
}

func (p *Params) copies() int {
	c := p.CopiesPerSegment
	if c < 1 {
		c = 1
	}
	if c > len(p.Replicas) {
		c = len(p.Replicas)
	}
	return c
}

// remainingCapacity initializes the capacity tracker.
func (p *Params) remainingCapacity() map[graph.NodeID]int64 {
	rem := make(map[graph.NodeID]int64, len(p.Replicas))
	for _, r := range p.Replicas {
		if c, ok := p.Capacity[r]; ok {
			rem[r] = c
		} else {
			rem[r] = 1 << 62 // effectively unconstrained
		}
	}
	return rem
}

// sortSegmentsByDemand orders segments by descending total usage, ties by
// ID, so heavy segments get first pick of capacity.
func sortSegmentsByDemand(segments []Segment, usage Usage) []Segment {
	out := make([]Segment, len(segments))
	copy(out, segments)
	sort.Slice(out, func(i, j int) bool {
		ui, uj := usage.Total(out[i].ID), usage.Total(out[j].ID)
		if ui != uj {
			return ui > uj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RoundRobin distributes segments cyclically over replicas, honouring
// capacity. It is the socially blind baseline.
func RoundRobin(segments []Segment, p Params) (Assignment, error) {
	if len(p.Replicas) == 0 {
		return nil, fmt.Errorf("partition: no replicas")
	}
	rem := p.remainingCapacity()
	out := make(Assignment, len(segments))
	idx := 0
	for _, s := range segments {
		placed := 0
		for tries := 0; tries < len(p.Replicas) && placed < p.copies(); tries++ {
			r := p.Replicas[idx%len(p.Replicas)]
			idx++
			if rem[r] >= s.Bytes && !contains(out[s.ID], r) {
				rem[r] -= s.Bytes
				out[s.ID] = append(out[s.ID], r)
				placed++
			}
		}
		if placed == 0 {
			return nil, fmt.Errorf("partition: no capacity for segment %q", s.ID)
		}
	}
	return out, nil
}

// UsageBased assigns each segment to the replicas with the highest
// access-weighted proximity: Σ_users usage(u, s) / (1 + dist(u, r)). This
// is the paper's "traditional" model — individual users and access
// patterns, no social structure.
func UsageBased(segments []Segment, usage Usage, p Params) (Assignment, error) {
	if len(p.Replicas) == 0 {
		return nil, fmt.Errorf("partition: no replicas")
	}
	rem := p.remainingCapacity()
	// Hop distances from every replica (graph is shared, BFS per replica).
	dist := make(map[graph.NodeID]map[graph.NodeID]int, len(p.Replicas))
	for _, r := range p.Replicas {
		dist[r] = p.Graph.BFSFrom(r)
	}
	out := make(Assignment, len(segments))
	for _, s := range sortSegmentsByDemand(segments, usage) {
		type scored struct {
			node  graph.NodeID
			score float64
		}
		var ranked []scored
		for _, r := range p.Replicas {
			score := 0.0
			for u, m := range usage {
				c := m[s.ID]
				if c == 0 {
					continue
				}
				d, reachable := dist[r][u]
				if !reachable {
					continue
				}
				score += float64(c) / float64(1+d)
			}
			ranked = append(ranked, scored{r, score})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].node < ranked[j].node
		})
		placed := 0
		for _, cand := range ranked {
			if placed == p.copies() {
				break
			}
			if rem[cand.node] >= s.Bytes {
				rem[cand.node] -= s.Bytes
				out[s.ID] = append(out[s.ID], cand.node)
				placed++
			}
		}
		if placed == 0 {
			return nil, fmt.Errorf("partition: no capacity for segment %q", s.ID)
		}
	}
	return out, nil
}

// SocialGroupBased groups users into communities (label propagation),
// aggregates each community's demand per segment, and assigns segments to
// replicas inside (or nearest to) the highest-demand communities — the
// paper's "incorporate social information to group similar users based on
// their social connections ... and data access patterns".
func SocialGroupBased(segments []Segment, usage Usage, p Params, rng *rand.Rand) (Assignment, error) {
	if len(p.Replicas) == 0 {
		return nil, fmt.Errorf("partition: no replicas")
	}
	part := community.LabelPropagation(p.Graph, rng, 50)
	// Demand per (community, segment).
	demand := make(map[int]map[storage.DatasetID]uint64)
	for u, m := range usage {
		label, ok := part[u]
		if !ok {
			continue // user outside the graph
		}
		if demand[label] == nil {
			demand[label] = make(map[storage.DatasetID]uint64)
		}
		for id, c := range m {
			demand[label][id] += c
		}
	}
	// Replicas per community.
	repsByComm := make(map[int][]graph.NodeID)
	for _, r := range p.Replicas {
		repsByComm[part[r]] = append(repsByComm[part[r]], r)
	}
	for _, reps := range repsByComm {
		sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	}
	rem := p.remainingCapacity()
	out := make(Assignment, len(segments))
	for _, s := range sortSegmentsByDemand(segments, usage) {
		// Communities by descending demand for this segment.
		type commDemand struct {
			label int
			d     uint64
		}
		var ranked []commDemand
		for label, m := range demand {
			if d := m[s.ID]; d > 0 {
				ranked = append(ranked, commDemand{label, d})
			}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].d != ranked[j].d {
				return ranked[i].d > ranked[j].d
			}
			return ranked[i].label < ranked[j].label
		})
		placed := 0
		tryPlace := func(r graph.NodeID) {
			if placed < p.copies() && rem[r] >= s.Bytes && !contains(out[s.ID], r) {
				rem[r] -= s.Bytes
				out[s.ID] = append(out[s.ID], r)
				placed++
			}
		}
		for _, cd := range ranked {
			for _, r := range repsByComm[cd.label] {
				tryPlace(r)
			}
		}
		// Fallback: any replica with room (segment unused or its
		// communities host no replicas).
		for _, r := range sortedNodes(p.Replicas) {
			tryPlace(r)
		}
		if placed == 0 {
			return nil, fmt.Errorf("partition: no capacity for segment %q", s.ID)
		}
	}
	return out, nil
}

func contains(nodes []graph.NodeID, n graph.NodeID) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}

func sortedNodes(in []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LocalityScore measures how well an assignment matches demand: the mean
// over access instances of 1/(1+dist(user, nearest assigned replica)).
// Higher is better; 1.0 means every access is served by a replica at the
// accessing node.
func LocalityScore(a Assignment, usage Usage, g *graph.Graph) float64 {
	var weighted, total float64
	for u, m := range usage {
		dists := g.BFSFrom(u)
		for id, c := range m {
			if c == 0 {
				continue
			}
			best := -1
			for _, r := range a[id] {
				if d, ok := dists[r]; ok && (best < 0 || d < best) {
					best = d
				}
			}
			total += float64(c)
			if best >= 0 {
				weighted += float64(c) / float64(1+best)
			}
		}
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}
