package ingest

import (
	"crypto/sha256"
	"hash"

	"scdn/internal/storage"
)

// Hasher computes a dataset's manifest in one streaming pass: it is an
// io.Writer that feeds every byte to both the whole-stream SHA-256 and
// the current block's SHA-256, closing out a block digest at each block
// boundary. Memory stays flat no matter how large the dataset is, so
// the upload path can hash exactly the bytes it spills to disk without
// buffering anything.
type Hasher struct {
	blockSize int64
	whole     hash.Hash
	block     hash.Hash
	inBlock   int64
	blocks    [][sha256.Size]byte
	n         int64
}

// NewHasher creates a hasher with the given block granularity
// (non-positive means DefaultBlockSize).
func NewHasher(blockSize int64) *Hasher {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Hasher{
		blockSize: blockSize,
		whole:     sha256.New(),
		block:     sha256.New(),
	}
}

// Write consumes the next chunk of the stream. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	total := len(p)
	_, _ = h.whole.Write(p)
	h.n += int64(total)
	for len(p) > 0 {
		room := h.blockSize - h.inBlock
		chunk := int64(len(p))
		if chunk > room {
			chunk = room
		}
		_, _ = h.block.Write(p[:chunk])
		h.inBlock += chunk
		if h.inBlock == h.blockSize {
			h.closeBlock()
		}
		p = p[chunk:]
	}
	return total, nil
}

// closeBlock finalizes the current block digest.
func (h *Hasher) closeBlock() {
	var d [sha256.Size]byte
	h.block.Sum(d[:0])
	h.blocks = append(h.blocks, d)
	h.block.Reset()
	h.inBlock = 0
}

// Bytes returns how many bytes have streamed through.
func (h *Hasher) Bytes() int64 { return h.n }

// Sum256 returns the whole-stream SHA-256 of the bytes so far.
func (h *Hasher) Sum256() (d [sha256.Size]byte) {
	h.whole.Sum(d[:0])
	return d
}

// Manifest finalizes the stream (closing a trailing short block) and
// returns the dataset's manifest. The hasher must not be written to
// afterwards.
func (h *Hasher) Manifest(id storage.DatasetID, opaque bool) *Manifest {
	if h.inBlock > 0 {
		h.closeBlock()
	}
	return &Manifest{
		Dataset:   id,
		Size:      h.n,
		BlockSize: h.blockSize,
		Opaque:    opaque,
		Digest:    h.Sum256(),
		Blocks:    h.blocks,
	}
}
