package ingest

import (
	"fmt"
	"sort"
	"sync"

	"scdn/internal/storage"
)

// Store is the cluster's shared manifest index: dataset → manifest. In
// the paper's architecture this state lives beside the allocation
// catalog (every allocation server must be able to hand a client the
// content address before any replica holder is contacted); here one
// Store is shared by every node of a local cluster the same way the
// catalog is. Safe for concurrent use.
type Store struct {
	mu sync.RWMutex
	m  map[storage.DatasetID]*Manifest
}

// NewStore creates an empty manifest store.
func NewStore() *Store {
	return &Store{m: make(map[storage.DatasetID]*Manifest)}
}

// Put records a dataset's manifest. Re-putting an identical manifest is
// a no-op; a manifest that disagrees with the recorded one is an error —
// a dataset's content address never silently changes.
func (s *Store) Put(m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.m[m.Dataset]; ok {
		if old.Digest != m.Digest || old.Size != m.Size {
			return fmt.Errorf("ingest: dataset %q already has a different manifest", m.Dataset)
		}
		return nil
	}
	s.m[m.Dataset] = m
	return nil
}

// Get returns a dataset's manifest, or ok == false when none is
// recorded (pre-ingest datasets have no manifest until one is
// registered for them).
func (s *Store) Get(id storage.DatasetID) (*Manifest, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.m[id]
	return m, ok
}

// Delete removes a dataset's manifest (unpublish path; no-op when
// absent).
func (s *Store) Delete(id storage.DatasetID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
}

// Len returns how many manifests are recorded.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// IDs returns the recorded dataset IDs sorted ascending.
func (s *Store) IDs() []storage.DatasetID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]storage.DatasetID, 0, len(s.m))
	for id := range s.m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
