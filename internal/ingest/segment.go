package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Segment digests: the manifest's per-block digests rolled up to the
// serving plane's segment granularity. A segment digest is the SHA-256
// of the concatenated block digests the segment covers — cheap to
// compute (hashes 32 bytes per block, never payload bytes), stable
// under any segment size that is a whole number of blocks, and enough
// for a peer to advertise or spot-check a segment without shipping the
// full manifest. Byte-level verification of a pulled segment still
// goes through NewRangeVerifier, whose block alignment every segment
// boundary satisfies by construction.

// SegmentBlocks returns how many manifest blocks one segSize-byte
// segment spans, or an error when segSize is not a positive multiple
// of the manifest's block size.
func (m *Manifest) SegmentBlocks(segSize int64) (int64, error) {
	if segSize <= 0 || m.BlockSize <= 0 || segSize%m.BlockSize != 0 {
		return 0, fmt.Errorf("ingest: segment size %d not a positive multiple of block size %d",
			segSize, m.BlockSize)
	}
	return segSize / m.BlockSize, nil
}

// SegmentDigest rolls up the block digests of segment i (of segSize
// bytes) into one digest.
func (m *Manifest) SegmentDigest(segSize, i int64) ([sha256.Size]byte, error) {
	var d [sha256.Size]byte
	per, err := m.SegmentBlocks(segSize)
	if err != nil {
		return d, err
	}
	segs := BlockCount(m.Size, segSize)
	if i < 0 || i >= segs {
		return d, fmt.Errorf("ingest: segment %d of %q outside [0, %d)", i, m.Dataset, segs)
	}
	lo := i * per
	hi := lo + per
	if n := int64(len(m.Blocks)); hi > n {
		hi = n
	}
	h := sha256.New()
	for _, b := range m.Blocks[lo:hi] {
		_, _ = h.Write(b[:])
	}
	h.Sum(d[:0])
	return d, nil
}

// SegmentDigestHex is SegmentDigest in lowercase hex (the wire form
// the segment endpoint advertises).
func (m *Manifest) SegmentDigestHex(segSize, i int64) (string, error) {
	d, err := m.SegmentDigest(segSize, i)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(d[:]), nil
}

// SegmentDigests rolls up every segment's digest at the given segment
// size.
func (m *Manifest) SegmentDigests(segSize int64) ([][sha256.Size]byte, error) {
	if _, err := m.SegmentBlocks(segSize); err != nil {
		return nil, err
	}
	segs := BlockCount(m.Size, segSize)
	out := make([][sha256.Size]byte, segs)
	for i := int64(0); i < segs; i++ {
		d, err := m.SegmentDigest(segSize, i)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}
