// Package ingest is the S-CDN's content addressing layer: the manifests,
// digests, and verifiers behind live user uploads. The paper's storage
// model (Section V-A) gives every member repository a user partition for
// researcher-contributed data; until datasets actually enter through it,
// every byte in the system is re-derivable from the deterministic
// generator and "replication" never has to move data. An ingested
// dataset is opaque — nobody can regenerate it — so the system must
// carry a verifiable description of its content instead: the manifest.
//
// A manifest content-addresses one dataset: its total size, the SHA-256
// of the whole byte stream, and the SHA-256 of each fixed-size block.
// The whole digest makes an upload or full-body transfer verifiable end
// to end; the block digests make *ranges* verifiable, which is what lets
// repair re-replication fetch stripes from several surviving holders in
// parallel (GridFTP-style) and still reject a corrupt peer per stripe.
package ingest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"scdn/internal/storage"
)

// DefaultBlockSize is the manifest block granularity: 64 KiB matches the
// delivery plane's pooled copy buffers, so hashing adds no extra
// userspace copies, and it keeps block-digest lists small (16 per MiB).
const DefaultBlockSize = 64 << 10

// HTTP headers of the upload wire protocol (PUT /v1/datasets/{id}).
const (
	// DigestHeader declares the whole-stream SHA-256 (lowercase hex) the
	// uploaded bytes must hash to; the edge rejects the upload otherwise.
	DigestHeader = "X-SCDN-Digest"
	// GroupHeader names the collaboration group a new dataset is scoped
	// to; required on the first stripe of a new dataset.
	GroupHeader = "X-SCDN-Group"
)

// Limits enforced by DecodeManifest so a hostile manifest can neither
// size an absurd allocation nor describe an impossible dataset.
const (
	maxManifestDataset = 1024     // bytes of dataset ID
	maxManifestBlocks  = 1 << 20  // block-digest count
	maxBlockSize       = 1 << 30  // 1 GiB
	maxManifestBytes   = 64 << 20 // encoded form, decode input cap
)

// Manifest content-addresses one dataset.
type Manifest struct {
	// Dataset is the dataset the manifest describes.
	Dataset storage.DatasetID
	// Size is the dataset's exact byte length.
	Size int64
	// BlockSize is the block granularity of Blocks.
	BlockSize int64
	// Opaque marks a dataset whose bytes exist nowhere but in replicas:
	// it cannot be regenerated, so losing every copy loses the data and
	// repair must move real bytes.
	Opaque bool
	// Digest is the SHA-256 of the whole byte stream.
	Digest [sha256.Size]byte
	// Blocks holds the SHA-256 of each BlockSize-sized block; the last
	// block may be short. len(Blocks) == ceil(Size/BlockSize).
	Blocks [][sha256.Size]byte
}

// BlockCount returns how many blocks a size/blockSize pair implies.
func BlockCount(size, blockSize int64) int64 {
	if size <= 0 || blockSize <= 0 {
		return 0
	}
	n := size / blockSize
	if size%blockSize != 0 {
		n++
	}
	return n
}

// DigestHex returns the whole-stream digest as lowercase hex.
func (m *Manifest) DigestHex() string { return hex.EncodeToString(m.Digest[:]) }

// blockExtent returns the byte length of block i (the last block may be
// short).
func (m *Manifest) blockExtent(i int64) int64 {
	if off := i * m.BlockSize; off+m.BlockSize > m.Size {
		return m.Size - off
	}
	return m.BlockSize
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	if m.Dataset == "" || len(m.Dataset) > maxManifestDataset {
		return fmt.Errorf("ingest: bad dataset ID (%d bytes)", len(m.Dataset))
	}
	if m.Size <= 0 {
		return fmt.Errorf("ingest: non-positive size %d", m.Size)
	}
	if m.BlockSize <= 0 || m.BlockSize > maxBlockSize {
		return fmt.Errorf("ingest: block size %d outside (0, %d]", m.BlockSize, int64(maxBlockSize))
	}
	want := BlockCount(m.Size, m.BlockSize)
	if want > maxManifestBlocks {
		return fmt.Errorf("ingest: %d blocks exceeds cap %d", want, int64(maxManifestBlocks))
	}
	if int64(len(m.Blocks)) != want {
		return fmt.Errorf("ingest: %d block digests for %d bytes of %d-byte blocks (want %d)",
			len(m.Blocks), m.Size, m.BlockSize, want)
	}
	return nil
}

// wireManifest is the JSON encoding: digests travel as lowercase hex.
type wireManifest struct {
	Dataset   string   `json:"dataset"`
	Size      int64    `json:"size"`
	BlockSize int64    `json:"block_size"`
	Opaque    bool     `json:"opaque"`
	Digest    string   `json:"sha256"`
	Blocks    []string `json:"blocks"`
}

// EncodeManifest serializes a manifest to its canonical JSON wire form.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	wm := wireManifest{
		Dataset:   string(m.Dataset),
		Size:      m.Size,
		BlockSize: m.BlockSize,
		Opaque:    m.Opaque,
		Digest:    m.DigestHex(),
		Blocks:    make([]string, len(m.Blocks)),
	}
	for i := range m.Blocks {
		wm.Blocks[i] = hex.EncodeToString(m.Blocks[i][:])
	}
	return json.Marshal(wm)
}

// ParseDigest decodes a lowercase-hex SHA-256 (the wire form of digests
// in manifests and the DigestHeader). Uppercase hex is rejected so
// every digest has exactly one encoded form (round-trip stability).
func ParseDigest(s string) (d [sha256.Size]byte, err error) {
	if len(s) != hex.EncodedLen(sha256.Size) {
		return d, fmt.Errorf("ingest: digest %q: want %d hex chars", s, hex.EncodedLen(sha256.Size))
	}
	if s != string(bytes.ToLower([]byte(s))) {
		return d, fmt.Errorf("ingest: digest %q: want lowercase hex", s)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("ingest: digest %q: %w", s, err)
	}
	copy(d[:], b)
	return d, nil
}

// DecodeManifest parses and validates a wire-form manifest. Hostile
// inputs — oversized fields, inconsistent size/block counts, malformed
// digests, trailing garbage — are rejected; a decoded manifest always
// re-encodes to an identical byte string.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("ingest: manifest %d bytes exceeds cap %d", len(data), int64(maxManifestBytes))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var wm wireManifest
	if err := dec.Decode(&wm); err != nil {
		return nil, fmt.Errorf("ingest: bad manifest: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("ingest: trailing data after manifest")
	}
	m := &Manifest{
		Dataset:   storage.DatasetID(wm.Dataset),
		Size:      wm.Size,
		BlockSize: wm.BlockSize,
		Opaque:    wm.Opaque,
	}
	var err error
	if m.Digest, err = ParseDigest(wm.Digest); err != nil {
		return nil, err
	}
	if int64(len(wm.Blocks)) > maxManifestBlocks {
		return nil, fmt.Errorf("ingest: %d block digests exceeds cap %d", len(wm.Blocks), int64(maxManifestBlocks))
	}
	m.Blocks = make([][sha256.Size]byte, len(wm.Blocks))
	for i, s := range wm.Blocks {
		if m.Blocks[i], err = ParseDigest(s); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
