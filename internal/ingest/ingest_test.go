package ingest

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

// testPayload builds deterministic pseudo-random content.
func testPayload(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// manifestOf hashes a payload through the streaming Hasher in random
// chunk sizes, so block-boundary handling is exercised.
func manifestOf(t *testing.T, id string, data []byte, blockSize int64) *Manifest {
	t.Helper()
	h := NewHasher(blockSize)
	rng := rand.New(rand.NewSource(int64(len(data))))
	for off := 0; off < len(data); {
		n := 1 + rng.Intn(3*int(blockSize))
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := h.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	return h.Manifest("ds", true)
}

func TestHasherMatchesReference(t *testing.T) {
	data := testPayload(1, 3*1024+17)
	m := manifestOf(t, "ds", data, 1024)
	if m.Size != int64(len(data)) {
		t.Fatalf("size = %d, want %d", m.Size, len(data))
	}
	if m.Digest != sha256.Sum256(data) {
		t.Fatal("whole digest diverges from one-shot sha256")
	}
	if want := BlockCount(m.Size, 1024); int64(len(m.Blocks)) != want {
		t.Fatalf("blocks = %d, want %d", len(m.Blocks), want)
	}
	for i := range m.Blocks {
		lo := i * 1024
		hi := lo + 1024
		if hi > len(data) {
			hi = len(data)
		}
		if m.Blocks[i] != sha256.Sum256(data[lo:hi]) {
			t.Fatalf("block %d digest diverges", i)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	data := testPayload(2, 5000)
	m := manifestOf(t, "ds", data, 1024)
	enc, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeManifest(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("re-encode diverges")
	}
	if got.Digest != m.Digest || got.Size != m.Size || len(got.Blocks) != len(m.Blocks) {
		t.Fatal("decoded manifest diverges")
	}
}

func TestDecodeManifestRejectsHostileInputs(t *testing.T) {
	data := testPayload(3, 2048)
	m := manifestOf(t, "ds", data, 1024)
	good, err := EncodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"trailing garbage", func(b []byte) []byte { return append(b, " {}"...) }},
		{"uppercase digest", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"sha256":"`+m.DigestHex()),
				[]byte(`"sha256":"`+string(bytes.ToUpper([]byte(m.DigestHex())))), 1)
		}},
		{"wrong block count", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"size":2048`), []byte(`"size":9048`), 1)
		}},
		{"negative size", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"size":2048`), []byte(`"size":-1`), 1)
		}},
		{"zero block size", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"block_size":1024`), []byte(`"block_size":0`), 1)
		}},
		{"unknown field", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`{"dataset"`), []byte(`{"evil":1,"dataset"`), 1)
		}},
		{"short digest", func(b []byte) []byte {
			return bytes.Replace(b, []byte(m.DigestHex()), []byte(m.DigestHex()[:10]), 1)
		}},
	}
	for _, tc := range cases {
		mutated := tc.mutate(append([]byte(nil), good...))
		if bytes.Equal(mutated, good) {
			t.Fatalf("%s: mutation did not apply", tc.name)
		}
		if _, err := DecodeManifest(mutated); err == nil {
			t.Fatalf("%s: hostile manifest accepted", tc.name)
		}
	}
}

func TestWholeVerifier(t *testing.T) {
	data := testPayload(4, 4096+100)
	m := manifestOf(t, "ds", data, 1024)

	v, err := m.NewVerifier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	// One flipped byte must fail the block that contains it.
	bad := append([]byte(nil), data...)
	bad[2000] ^= 0xff
	v2, _ := m.NewVerifier()
	_, werr := v2.Write(bad)
	if werr == nil {
		t.Fatal("corrupt stream verified")
	}

	// Truncation must fail Close.
	v3, _ := m.NewVerifier()
	if _, err := v3.Write(data[:len(data)-1]); err != nil {
		t.Fatal(err)
	}
	if err := v3.Close(); err == nil {
		t.Fatal("truncated stream verified")
	}

	// Surplus bytes must fail Write.
	v4, _ := m.NewVerifier()
	if _, err := v4.Write(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("surplus byte verified")
	}
}

func TestRangeVerifierAlignment(t *testing.T) {
	data := testPayload(5, 4096+100)
	m := manifestOf(t, "ds", data, 1024)

	// Aligned interior range verifies.
	v, err := m.NewRangeVerifier(1024, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Write(data[1024:3072]); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	// Tail range ending at Size (short last block) verifies.
	v2, err := m.NewRangeVerifier(4096, m.Size-4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Write(data[4096:]); err != nil {
		t.Fatal(err)
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}

	// Misaligned ranges are rejected at construction.
	if _, err := m.NewRangeVerifier(100, 1024); err == nil {
		t.Fatal("misaligned offset accepted")
	}
	if _, err := m.NewRangeVerifier(0, 100); err == nil {
		t.Fatal("mid-block range end accepted")
	}
	if _, err := m.NewRangeVerifier(0, m.Size+1); err == nil {
		t.Fatal("over-long range accepted")
	}
}

func TestStoreSemantics(t *testing.T) {
	a := manifestOf(t, "ds", testPayload(6, 2048), 1024)
	b := manifestOf(t, "ds", testPayload(7, 2048), 1024)
	s := NewStore()
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(a); err != nil {
		t.Fatalf("idempotent re-put failed: %v", err)
	}
	if err := s.Put(b); err == nil {
		t.Fatal("conflicting manifest accepted")
	}
	got, ok := s.Get("ds")
	if !ok || got.Digest != a.Digest {
		t.Fatal("stored manifest not returned")
	}
	if s.Len() != 1 || len(s.IDs()) != 1 {
		t.Fatal("store accounting wrong")
	}
	s.Delete("ds")
	if _, ok := s.Get("ds"); ok {
		t.Fatal("deleted manifest still present")
	}
}
