package ingest

import (
	"bytes"
	"testing"

	"scdn/internal/storage"
)

// FuzzManifest hammers the manifest decoder with hostile bytes: any
// input the decoder accepts must survive an encode/decode round trip
// byte-identically, and must satisfy Validate — a manifest can never
// decode into a state that describes an impossible dataset (negative
// sizes, inconsistent block counts, malformed digests).
func FuzzManifest(f *testing.F) {
	seed := func(id string, data []byte, blockSize int64) {
		h := NewHasher(blockSize)
		_, _ = h.Write(data)
		m := h.Manifest(storage.DatasetID("ds-"+id), true)
		if enc, err := EncodeManifest(m); err == nil {
			f.Add(enc)
		}
	}
	seed("tiny", []byte("x"), 1024)
	seed("even", bytes.Repeat([]byte("abcd"), 512), 512)
	seed("ragged", bytes.Repeat([]byte("scdn"), 700), 1024)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"dataset":"d","size":1,"block_size":1,"opaque":true,` +
		`"sha256":"zz","blocks":[]}`))
	f.Add([]byte(`{"dataset":"d","size":9223372036854775807,"block_size":1,` +
		`"opaque":false,"sha256":"` + string(bytes.Repeat([]byte("a"), 64)) + `","blocks":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("decoded manifest fails validation: %v", verr)
		}
		enc, err := EncodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		m2, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest does not decode: %v", err)
		}
		enc2, err := EncodeManifest(m2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip unstable:\n%s\n%s", enc, enc2)
		}
	})
}
