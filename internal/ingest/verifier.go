package ingest

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
)

// ErrDigestMismatch marks verification failures caused by the bytes
// themselves — a block or whole-stream digest disagreeing with the
// manifest — as opposed to I/O or framing problems. Callers classify
// with errors.Is to count corruption separately from plumbing errors.
var ErrDigestMismatch = errors.New("digest mismatch")

// RangeVerifier incrementally checks a byte stream against a manifest's
// block digests over [off, off+length). It is an io.WriteCloser:
// verification runs in constant memory as the stream passes through, a
// corrupt block fails the Write that completes it, and Close fails on a
// truncated stream. The range must start on a block boundary and end on
// one (or at the dataset's end) — exactly what aligned stripe planning
// produces — because a partial block cannot be checked against its
// digest.
type RangeVerifier struct {
	m         *Manifest
	idx       int64 // current block index
	inBlock   int64 // bytes of the current block consumed
	remaining int64 // bytes still expected
	off       int64 // absolute offset of the next expected byte
	block     hash.Hash
	whole     hash.Hash // non-nil only for whole-stream verifiers
}

// NewRangeVerifier builds a verifier for the manifest's bytes
// [off, off+length). off must be block-aligned and the range must end at
// a block boundary or at Size.
func (m *Manifest) NewRangeVerifier(off, length int64) (*RangeVerifier, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if off < 0 || length <= 0 || off+length > m.Size {
		return nil, fmt.Errorf("ingest: range [%d, %d) outside dataset %q (%d bytes)",
			off, off+length, m.Dataset, m.Size)
	}
	if off%m.BlockSize != 0 {
		return nil, fmt.Errorf("ingest: range offset %d not aligned to %d-byte blocks", off, m.BlockSize)
	}
	if end := off + length; end%m.BlockSize != 0 && end != m.Size {
		return nil, fmt.Errorf("ingest: range end %d neither block-aligned nor dataset end %d", end, m.Size)
	}
	return &RangeVerifier{
		m:         m,
		idx:       off / m.BlockSize,
		remaining: length,
		off:       off,
		block:     sha256.New(),
	}, nil
}

// NewVerifier builds a whole-stream verifier: every block digest plus
// the whole-stream digest must match.
func (m *Manifest) NewVerifier() (*RangeVerifier, error) {
	v, err := m.NewRangeVerifier(0, m.Size)
	if err != nil {
		return nil, err
	}
	v.whole = sha256.New()
	return v, nil
}

// Write consumes the next chunk, failing on the first surplus byte or
// mismatched block digest.
func (v *RangeVerifier) Write(p []byte) (int, error) {
	if int64(len(p)) > v.remaining {
		return 0, fmt.Errorf("ingest: stream for %q longer than expected: %d surplus bytes at offset %d",
			v.m.Dataset, int64(len(p))-v.remaining, v.off)
	}
	if v.whole != nil {
		_, _ = v.whole.Write(p)
	}
	consumed := 0
	for len(p) > 0 {
		extent := v.m.blockExtent(v.idx)
		chunk := int64(len(p))
		if room := extent - v.inBlock; chunk > room {
			chunk = room
		}
		_, _ = v.block.Write(p[:chunk])
		v.inBlock += chunk
		v.off += chunk
		v.remaining -= chunk
		consumed += int(chunk)
		if v.inBlock == extent {
			if err := v.checkBlock(); err != nil {
				return consumed, err
			}
		}
		p = p[chunk:]
	}
	return consumed, nil
}

// checkBlock compares the completed block's digest to the manifest.
func (v *RangeVerifier) checkBlock() error {
	var d [sha256.Size]byte
	v.block.Sum(d[:0])
	if d != v.m.Blocks[v.idx] {
		return fmt.Errorf("ingest: %q block %d: %w", v.m.Dataset, v.idx, ErrDigestMismatch)
	}
	v.block.Reset()
	v.idx++
	v.inBlock = 0
	return nil
}

// Close checks stream completeness — every expected byte arrived — and,
// for whole-stream verifiers, the whole-stream digest.
func (v *RangeVerifier) Close() error {
	if v.remaining != 0 {
		return fmt.Errorf("ingest: stream for %q truncated: %d bytes missing at offset %d",
			v.m.Dataset, v.remaining, v.off)
	}
	if v.whole != nil {
		var d [sha256.Size]byte
		v.whole.Sum(d[:0])
		if d != v.m.Digest {
			return fmt.Errorf("ingest: %q whole-stream: %w", v.m.Dataset, ErrDigestMismatch)
		}
	}
	return nil
}
