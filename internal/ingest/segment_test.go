package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"
)

// segTestManifest hashes n pseudorandom bytes at a small block size so
// segment rollups span several blocks without megabytes of test data.
func segTestManifest(t *testing.T, n int64, blockSize int64) *Manifest {
	t.Helper()
	h := NewHasher(blockSize)
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, n)
	rng.Read(buf)
	if _, err := h.Write(buf); err != nil {
		t.Fatal(err)
	}
	return h.Manifest("seg-ds", false)
}

func TestSegmentDigestRollup(t *testing.T) {
	const (
		blockSize = int64(1 << 10)
		segSize   = 4 * blockSize
		total     = 10*blockSize + 100 // 11 blocks, 3 segments (4+4+3 blocks)
	)
	m := segTestManifest(t, total, blockSize)
	if len(m.Blocks) != 11 {
		t.Fatalf("manifest has %d blocks, want 11", len(m.Blocks))
	}
	digests, err := m.SegmentDigests(segSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 3 {
		t.Fatalf("got %d segment digests, want 3", len(digests))
	}
	// Each segment digest is SHA-256 over exactly the covered block
	// digests — recompute by hand, including the short tail segment.
	for i, span := range [][2]int{{0, 4}, {4, 8}, {8, 11}} {
		h := sha256.New()
		for _, b := range m.Blocks[span[0]:span[1]] {
			h.Write(b[:])
		}
		var want [sha256.Size]byte
		h.Sum(want[:0])
		if digests[i] != want {
			t.Errorf("segment %d digest mismatch", i)
		}
		got, err := m.SegmentDigest(segSize, int64(i))
		if err != nil || got != want {
			t.Errorf("SegmentDigest(%d) = %x err=%v, want %x", i, got, err, want)
		}
		hexGot, err := m.SegmentDigestHex(segSize, int64(i))
		if err != nil || hexGot != hex.EncodeToString(want[:]) {
			t.Errorf("SegmentDigestHex(%d) = %q err=%v", i, hexGot, err)
		}
	}
	// Two manifests over different content disagree per segment.
	other := segTestManifest(t, total, blockSize)
	other.Blocks[0][0] ^= 0xFF
	od, err := other.SegmentDigest(segSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if od == digests[0] {
		t.Error("segment digest unchanged after flipping a covered block digest")
	}
	if od2, _ := other.SegmentDigest(segSize, 1); od2 != digests[1] {
		t.Error("segment 1 digest changed by a block outside its span")
	}
}

func TestSegmentDigestErrors(t *testing.T) {
	m := segTestManifest(t, 8<<10, 1<<10)
	if _, err := m.SegmentBlocks(1500); err == nil {
		t.Error("unaligned segment size accepted")
	}
	if _, err := m.SegmentBlocks(0); err == nil {
		t.Error("zero segment size accepted")
	}
	if _, err := m.SegmentDigest(4<<10, -1); err == nil {
		t.Error("negative segment index accepted")
	}
	if _, err := m.SegmentDigest(4<<10, 2); err == nil {
		t.Error("out-of-range segment index accepted")
	}
	if _, err := m.SegmentDigests(3 << 10); err != nil {
		t.Errorf("3-block segments over 8 blocks should roll up (3+3+2): %v", err)
	}
}
