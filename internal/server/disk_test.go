package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scdn/internal/allocation"
)

func TestStoreModeValidation(t *testing.T) {
	if _, err := StartLocalCluster(ClusterConfig{StoreMode: "ramdisk"}); err == nil {
		t.Fatal("unknown store mode accepted")
	}
}

func TestDiskModeFullFetch(t *testing.T) {
	lc := startCluster(t, ClusterConfig{
		Nodes: 1, Users: 1, Datasets: 1, StoreMode: StoreModeDir,
	})
	client := &http.Client{Timeout: 5 * time.Second}
	node := lc.Nodes[0]
	tok := login(t, lc)

	// First fetch materializes the replica file, then serves it.
	resp := fetchDataset(t, client, node.BaseURL(), tok, "ds-001", lc.Config.DatasetBytes)
	if src := resp.Header.Get("X-SCDN-Source"); src != "1" {
		t.Fatalf("source = %q, want 1", src)
	}
	if got := node.Metrics.StoreMaterializations.Value(); got != 1 {
		t.Fatalf("materializations = %d, want 1", got)
	}
	if got := node.Metrics.StoreMaterializedBytes.Value(); got != uint64(lc.Config.DatasetBytes) {
		t.Fatalf("materialized bytes = %d, want %d", got, lc.Config.DatasetBytes)
	}
	if got := node.Metrics.StoreDiskHits.Value(); got != 1 {
		t.Fatalf("disk hits = %d, want 1", got)
	}
	// The replica is a real file under the cluster's store root.
	path := filepath.Join(lc.StoreRoot, "node-1", "data", "ds-001")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != lc.Config.DatasetBytes {
		t.Fatalf("replica file is %d bytes, want %d", fi.Size(), lc.Config.DatasetBytes)
	}
	if !node.Volume().Has("ds-001") {
		t.Fatal("volume does not report the replica")
	}

	// Warm fetch: served from the same file, no re-materialization.
	fetchDataset(t, client, node.BaseURL(), tok, "ds-001", lc.Config.DatasetBytes)
	if got := node.Metrics.StoreMaterializations.Value(); got != 1 {
		t.Fatalf("warm fetch re-materialized: %d", got)
	}
	if got := node.Metrics.StoreDiskHits.Value(); got != 2 {
		t.Fatalf("disk hits = %d, want 2", got)
	}
	if got := node.Metrics.LocalHits.Value(); got != 2 {
		t.Fatalf("local hits = %d, want 2", got)
	}
}

func TestDiskModeRangeFetch(t *testing.T) {
	lc := startCluster(t, ClusterConfig{
		Nodes: 1, Users: 1, Datasets: 1, StoreMode: StoreModeDir,
	})
	client := &http.Client{Timeout: 5 * time.Second}
	node := lc.Nodes[0]
	tok := login(t, lc)
	total := lc.Config.DatasetBytes
	off, n := int64(5000), int64(9000) // crosses a block boundary mid-block

	req, err := http.NewRequest(http.MethodGet, node.BaseURL()+"/v1/fetch/ds-001", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+string(tok))
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range fetch = %s", resp.Status)
	}
	wantCR := fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, total)
	if cr := resp.Header.Get("Content-Range"); cr != wantCR {
		t.Fatalf("Content-Range = %q, want %q", cr, wantCR)
	}
	if read, err := VerifyPayloadRange(resp.Body, "ds-001", off, n); err != nil || read != n {
		t.Fatalf("range payload: read %d, err %v", read, err)
	}
	if got := node.Metrics.RangeRequests.Value(); got != 1 {
		t.Fatalf("range requests = %d, want 1", got)
	}
	if got := node.Metrics.StoreDiskHits.Value(); got != 1 {
		t.Fatalf("disk hits = %d, want 1", got)
	}
	if got := node.Metrics.BytesServed.Value(); got != uint64(n) {
		t.Fatalf("bytes served = %d, want %d", got, n)
	}
}

func TestDiskModePullThroughSpills(t *testing.T) {
	lc := startCluster(t, ClusterConfig{
		Nodes: 2, Users: 1, Datasets: 2, StoreMode: StoreModeDir, PullThrough: true,
	})
	client := &http.Client{Timeout: 5 * time.Second}
	node2 := lc.Nodes[1]
	tok := login(t, lc)

	// ds-001's origin is node 1; fetching through node 2 proxies the
	// stream and spills it into node 2's replica volume on the way.
	fetchDataset(t, client, node2.BaseURL(), tok, "ds-001", lc.Config.DatasetBytes)
	if got := node2.Metrics.StoreSpills.Value(); got != 1 {
		t.Fatalf("spills on node2 = %d, want 1", got)
	}
	if got := node2.Metrics.StoreSpillFailures.Value(); got != 0 {
		t.Fatalf("spill failures on node2 = %d", got)
	}
	if !node2.Volume().Has("ds-001") {
		t.Fatal("spilled replica missing from node2's volume")
	}
	// The spilled file is byte-exact against the deterministic payload.
	f, err := os.Open(filepath.Join(lc.StoreRoot, "node-2", "data", "ds-001"))
	if err != nil {
		t.Fatal(err)
	}
	_, verr := VerifyPayload(f, "ds-001", lc.Config.DatasetBytes)
	f.Close()
	if verr != nil {
		t.Fatal(verr)
	}
	// No temp-file litter survived the spill.
	if tmps := node2.Volume().TempFiles(); len(tmps) != 0 {
		t.Fatalf("temp files after spill = %v", tmps)
	}

	// Second fetch is a local disk hit on node 2 — the spill, not the
	// generator, produced the bytes (no materialization happened).
	fetchDataset(t, client, node2.BaseURL(), tok, "ds-001", lc.Config.DatasetBytes)
	if got := node2.Metrics.StoreDiskHits.Value(); got != 1 {
		t.Fatalf("disk hits on node2 = %d, want 1", got)
	}
	if got := node2.Metrics.StoreMaterializations.Value(); got != 0 {
		t.Fatalf("materializations on node2 = %d, want 0", got)
	}
	if got := node2.Metrics.LocalHits.Value(); got != 1 {
		t.Fatalf("local hits on node2 = %d, want 1", got)
	}
}

// TestPeerDrainKeepsConnectionAlive is the regression test for the peer
// fallback's body handling: a failed hop's response must be drained to
// EOF before close so the transport reuses the connection on the next
// attempt. A peer that 503s with a multi-KiB error body would otherwise
// cost every retry a fresh TCP handshake.
func TestPeerDrainKeepsConnectionAlive(t *testing.T) {
	var mu sync.Mutex
	var remoteAddrs []string
	errBody := make([]byte, 64<<10)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		remoteAddrs = append(remoteAddrs, r.RemoteAddr)
		mu.Unlock()
		w.Header().Set("Content-Length", fmt.Sprint(len(errBody)))
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write(errBody)
	}))
	defer peer.Close()

	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1, FetchAttempts: 3})
	tok := login(t, lc)

	// A dataset whose only holder is the failing fake peer: every attempt
	// of node 1's fallback loop hits it and fails.
	phantom := allocation.NodeID(99)
	lc.Registry.Register(Member{Node: phantom, Site: 0, BaseURL: peer.URL, Online: true})
	if err := lc.Middleware.RegisterDataset("ds-phantom", lc.Config.Group); err != nil {
		t.Fatal(err)
	}
	if err := lc.Catalog.RegisterDataset("ds-phantom", phantom, 4096); err != nil {
		t.Fatal(err)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	req, err := http.NewRequest(http.MethodGet, lc.Nodes[0].BaseURL()+"/v1/fetch/ds-phantom", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+string(tok))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("fetch with failing peer = %s", resp.Status)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(remoteAddrs) < 2 {
		t.Fatalf("peer saw %d attempts, want >= 2", len(remoteAddrs))
	}
	for i, addr := range remoteAddrs {
		if addr != remoteAddrs[0] {
			t.Fatalf("attempt %d used a new connection (%s vs %s): body not drained",
				i, addr, remoteAddrs[0])
		}
	}
}
