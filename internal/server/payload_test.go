package server

import (
	"bytes"
	"strings"
	"testing"
)

func TestPayloadDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := WritePayload(&a, "ds-001", 10000); err != nil {
		t.Fatal(err)
	}
	if _, err := WritePayload(&b, "ds-001", 10000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same dataset produced different payloads")
	}
	var c bytes.Buffer
	if _, err := WritePayload(&c, "ds-002", 10000); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different datasets produced identical payloads")
	}
}

func TestPayloadSizes(t *testing.T) {
	for _, n := range []int64{0, 1, payloadBlockSize - 1, payloadBlockSize, payloadBlockSize + 1, 3*payloadBlockSize + 17} {
		var buf bytes.Buffer
		written, err := WritePayload(&buf, "ds-x", n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if written != n || int64(buf.Len()) != n {
			t.Fatalf("n=%d: wrote %d bytes", n, buf.Len())
		}
	}
	if _, err := WritePayload(&bytes.Buffer{}, "ds-x", -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestVerifyPayload(t *testing.T) {
	var buf bytes.Buffer
	const n = 9000
	if _, err := WritePayload(&buf, "ds-ok", n); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if read, err := VerifyPayload(bytes.NewReader(good), "ds-ok", n); err != nil || read != n {
		t.Fatalf("verify = %d, %v", read, err)
	}
	// Wrong dataset → corrupt.
	if _, err := VerifyPayload(bytes.NewReader(good), "ds-other", n); err == nil {
		t.Fatal("wrong dataset verified")
	}
	// Truncated stream.
	if _, err := VerifyPayload(bytes.NewReader(good[:n-1]), "ds-ok", n); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation not detected: %v", err)
	}
	// Over-long stream.
	if _, err := VerifyPayload(bytes.NewReader(append(append([]byte(nil), good...), 0)), "ds-ok", n); err == nil {
		t.Fatal("over-long stream verified")
	}
	// Flipped byte.
	bad := append([]byte(nil), good...)
	bad[1234] ^= 0xff
	if _, err := VerifyPayload(bytes.NewReader(bad), "ds-ok", n); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption not detected: %v", err)
	}
}
