package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scdn/internal/allocation"
)

// Churn actions.
const (
	ChurnKill    = "kill"    // hard Crash: connections die mid-flight, no goodbye
	ChurnStop    = "stop"    // graceful Stop: drain, deregister, then close
	ChurnRestart = "restart" // Start the node again (fresh port, re-adoption)
)

// ChurnEvent is one scripted membership change.
type ChurnEvent struct {
	// At is the event's offset from the start of the churn run.
	At time.Duration
	// Action is ChurnKill, ChurnStop, or ChurnRestart.
	Action string
	// Node is the 1-based node ID the event targets.
	Node allocation.NodeID
}

// ChurnSpec is the compact churn description behind the -churn flag:
// "kill=2,restart=5s,spacing=2s" kills two distinct nodes two seconds
// apart and restarts each five seconds after its death. restart=never
// leaves the victims down.
type ChurnSpec struct {
	// Kills is how many distinct nodes get crashed.
	Kills int
	// Restart is the downtime before each victim starts again; negative
	// means never.
	Restart time.Duration
	// Spacing separates consecutive kills. Default 2s.
	Spacing time.Duration
}

// ParseChurnSpec parses the "k=v,k=v" form. Unknown keys are errors so a
// typo does not silently run a different experiment.
func ParseChurnSpec(s string) (ChurnSpec, error) {
	spec := ChurnSpec{Restart: 5 * time.Second, Spacing: 2 * time.Second}
	if strings.TrimSpace(s) == "" {
		return spec, fmt.Errorf("server: empty churn spec")
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return spec, fmt.Errorf("server: churn spec %q: want key=value", part)
		}
		switch k {
		case "kill":
			kn, err := strconv.Atoi(v)
			if err != nil || kn < 1 {
				return spec, fmt.Errorf("server: churn spec kill=%q: want a positive count", v)
			}
			spec.Kills = kn
		case "restart":
			if v == "never" {
				spec.Restart = -1
				continue
			}
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return spec, fmt.Errorf("server: churn spec restart=%q: want a duration or never", v)
			}
			spec.Restart = d
		case "spacing":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return spec, fmt.Errorf("server: churn spec spacing=%q: want a positive duration", v)
			}
			spec.Spacing = d
		default:
			return spec, fmt.Errorf("server: churn spec: unknown key %q", k)
		}
	}
	if spec.Kills < 1 {
		return spec, fmt.Errorf("server: churn spec: kill count missing")
	}
	return spec, nil
}

// Events expands the spec into a schedule over a cluster of the given
// size: victims are picked deterministically from the seed, distinct,
// and capped at nodes-1 so at least one member always remains to repair
// around the dead.
func (spec ChurnSpec) Events(nodes int, seed int64) []ChurnEvent {
	kills := spec.Kills
	if kills > nodes-1 {
		kills = nodes - 1
	}
	if kills < 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	victims := rng.Perm(nodes)[:kills]
	var ev []ChurnEvent
	for i, v := range victims {
		at := spec.Spacing * time.Duration(i+1)
		node := allocation.NodeID(v + 1)
		ev = append(ev, ChurnEvent{At: at, Action: ChurnKill, Node: node})
		if spec.Restart >= 0 {
			ev = append(ev, ChurnEvent{At: at + spec.Restart, Action: ChurnRestart, Node: node})
		}
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return ev
}

// ParseChurnScript reads a churn script: one event per line,
// "<offset> <action> <node>", e.g. "2s kill 3". Blank lines and
// #-comments are skipped.
func ParseChurnScript(r io.Reader) ([]ChurnEvent, error) {
	var ev []ChurnEvent
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("server: churn script line %d: want \"<offset> <action> <node>\", got %q", line, text)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil || at < 0 {
			return nil, fmt.Errorf("server: churn script line %d: bad offset %q", line, fields[0])
		}
		action := fields[1]
		if action != ChurnKill && action != ChurnStop && action != ChurnRestart {
			return nil, fmt.Errorf("server: churn script line %d: unknown action %q", line, action)
		}
		node, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || node < 1 {
			return nil, fmt.Errorf("server: churn script line %d: bad node %q", line, fields[2])
		}
		ev = append(ev, ChurnEvent{At: at, Action: action, Node: node})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].At < ev[j].At })
	return ev, nil
}

// ChurnSummary is a churn run's outcome.
type ChurnSummary struct {
	// Kills and Stops count applied take-down events; Restarts counts
	// applied start events (failed starts are not counted).
	Kills, Stops, Restarts int
	// Down is how many nodes are still down.
	Down int
	// AllRestarted reports that the schedule has fully run and every
	// taken-down node came back.
	AllRestarted bool
	// Errs collects event application errors (failed restarts).
	Errs []string
}

// ChurnRun executes a churn schedule against a LocalCluster in the
// background.
type ChurnRun struct {
	lc   *LocalCluster
	done chan struct{}
	quit chan struct{}

	mu       sync.Mutex
	down     map[allocation.NodeID]bool
	kills    int
	stops    int
	restarts int
	last     time.Time // most recent membership transition
	finished bool
	errs     []string
}

// StartChurn launches the schedule. Events with out-of-range node IDs
// are recorded as errors and skipped.
func StartChurn(lc *LocalCluster, events []ChurnEvent) *ChurnRun {
	c := &ChurnRun{
		lc:   lc,
		done: make(chan struct{}),
		quit: make(chan struct{}),
		down: make(map[allocation.NodeID]bool),
		last: time.Now(),
	}
	go c.run(events)
	return c
}

func (c *ChurnRun) run(events []ChurnEvent) {
	defer close(c.done)
	start := time.Now()
	for _, ev := range events {
		wait := ev.At - time.Since(start)
		if wait > 0 {
			select {
			case <-c.quit:
				c.mu.Lock()
				c.finished = true
				c.mu.Unlock()
				return
			case <-time.After(wait):
			}
		}
		c.apply(ev)
	}
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
}

func (c *ChurnRun) apply(ev ChurnEvent) {
	idx := int(ev.Node) - 1
	if idx < 0 || idx >= len(c.lc.Nodes) {
		c.note(fmt.Sprintf("churn: no node %d", ev.Node))
		return
	}
	node := c.lc.Nodes[idx]
	switch ev.Action {
	case ChurnKill:
		node.Crash()
		c.transition(func() { c.kills++; c.down[ev.Node] = true })
	case ChurnStop:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := node.Stop(ctx)
		cancel()
		if err != nil {
			c.note(fmt.Sprintf("churn: stop node %d: %v", ev.Node, err))
		}
		c.transition(func() { c.stops++; c.down[ev.Node] = true })
	case ChurnRestart:
		if err := node.Start(); err != nil {
			c.note(fmt.Sprintf("churn: restart node %d: %v", ev.Node, err))
			return
		}
		c.transition(func() { c.restarts++; delete(c.down, ev.Node) })
	}
}

func (c *ChurnRun) transition(f func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f()
	c.last = time.Now()
}

func (c *ChurnRun) note(msg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs = append(c.errs, msg)
}

// Wait blocks until the schedule has fully run.
func (c *ChurnRun) Wait() { <-c.done }

// Cancel abandons not-yet-applied events (nodes already taken down stay
// down) and waits for the runner to exit.
func (c *ChurnRun) Cancel() {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	<-c.done
}

// Active reports whether churn can currently explain a failed request:
// some node is down, or a membership transition happened within the
// grace window (suspicion, deregistration, and repair all trail the
// event itself).
func (c *ChurnRun) Active(grace time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.down) > 0 || !c.finished || time.Since(c.last) < grace
}

// Summary snapshots the run's outcome.
func (c *ChurnRun) Summary() ChurnSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChurnSummary{
		Kills:        c.kills,
		Stops:        c.stops,
		Restarts:     c.restarts,
		Down:         len(c.down),
		AllRestarted: c.finished && len(c.down) == 0 && (c.kills+c.stops) > 0,
		Errs:         append([]string(nil), c.errs...),
	}
}
