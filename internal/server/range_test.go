package server

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	const total = 10000
	cases := []struct {
		h       string
		off, n  int64
		isRange bool
		wantErr bool
	}{
		{"", 0, total, false, false},
		{"bytes=0-4095", 0, 4096, true, false},
		{"bytes=4096-8191", 4096, 4096, true, false},
		{"bytes=9999-9999", 9999, 1, true, false}, // last byte
		{"bytes=0-0", 0, 1, true, false},          // first byte
		{"bytes=500-", 500, total - 500, true, false},
		{"bytes=0-99999", 0, total, true, false}, // end clipped
		{"bytes=-100", total - 100, 100, true, false},
		{"bytes=-99999", 0, total, true, false}, // suffix clipped
		// Malformed.
		{"bytes=", 0, 0, false, true},
		{"bytes=abc-def", 0, 0, false, true},
		{"bytes=5", 0, 0, false, true},
		{"bytes=9-5", 0, 0, false, true},
		{"bytes=-0", 0, 0, false, true},
		{"bytes=0-10,20-30", 0, 0, false, true}, // multipart where a single range is required
		{"items=0-5", 0, 0, false, true},        // unknown unit
		// Unsatisfiable.
		{"bytes=10000-", 0, 0, false, true},
		{"bytes=10001-10005", 0, 0, false, true},
	}
	for _, tc := range cases {
		rng, isRange, err := parseRange(tc.h, total)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseRange(%q): want error, got %+v", tc.h, rng)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRange(%q): %v", tc.h, err)
			continue
		}
		if rng.off != tc.off || rng.n != tc.n || isRange != tc.isRange {
			t.Errorf("parseRange(%q) = {off %d, n %d} range=%v, want {off %d, n %d} range=%v",
				tc.h, rng.off, rng.n, isRange, tc.off, tc.n, tc.isRange)
		}
	}
}

func TestParseRanges(t *testing.T) {
	const total = 10000
	type br = byteRange
	cases := []struct {
		h       string
		want    []br
		isRange bool
		wantErr bool
	}{
		{"", []br{{0, total}}, false, false},
		{"bytes=0-99", []br{{0, 100}}, true, false},
		// Multipart: sorted by offset on the way out.
		{"bytes=0-99,200-299", []br{{0, 100}, {200, 100}}, true, false},
		{"bytes=200-299,0-99", []br{{0, 100}, {200, 100}}, true, false},
		// Whitespace around parts is tolerated (RFC 7233 list syntax).
		{"bytes=0-99, 200-299", []br{{0, 100}, {200, 100}}, true, false},
		// Overlap and adjacency merge into one part.
		{"bytes=0-99,50-149", []br{{0, 150}}, true, false},
		{"bytes=0-99,100-199", []br{{0, 200}}, true, false},
		{"bytes=0-99,0-99", []br{{0, 100}}, true, false},
		// Containment collapses too.
		{"bytes=0-999,100-199", []br{{0, 1000}}, true, false},
		// Suffix and open-ended parts participate in merging.
		{"bytes=0-99,-100", []br{{0, 100}, {total - 100, 100}}, true, false},
		{"bytes=9000-,-2000", []br{{8000, 2000}}, true, false},
		// One malformed or unsatisfiable part poisons the whole set.
		{"bytes=0-99,oops", nil, false, true},
		{"bytes=0-99,9-5", nil, false, true},
		{"bytes=0-99,10000-", nil, false, true},
		{"bytes=0-99,,200-299", nil, false, true},
	}
	for _, tc := range cases {
		got, isRange, err := parseRanges(tc.h, total)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseRanges(%q): want error, got %+v", tc.h, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseRanges(%q): %v", tc.h, err)
			continue
		}
		if isRange != tc.isRange || len(got) != len(tc.want) {
			t.Errorf("parseRanges(%q) = %+v range=%v, want %+v range=%v", tc.h, got, isRange, tc.want, tc.isRange)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseRanges(%q)[%d] = %+v, want %+v", tc.h, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseRangesPartCap(t *testing.T) {
	const total = 100000
	h := "bytes=0-0"
	for i := 1; i < maxRangeParts; i++ {
		h += fmt.Sprintf(",%d-%d", i*10, i*10)
	}
	if got, _, err := parseRanges(h, total); err != nil || len(got) != maxRangeParts {
		t.Fatalf("at-cap spec rejected: %v (%d parts)", err, len(got))
	}
	h += fmt.Sprintf(",%d-%d", maxRangeParts*10, maxRangeParts*10)
	if _, _, err := parseRanges(h, total); err == nil {
		t.Fatal("over-cap spec accepted")
	}
}

// TestWritePayloadRangeBoundaries checks range writes at every block
// boundary case: offset 0, mid-block, across blocks, the last byte, and
// the empty range.
func TestWritePayloadRangeBoundaries(t *testing.T) {
	const id = "ds-range"
	const total = 3*payloadBlockSize + 17
	var whole bytes.Buffer
	if _, err := WritePayload(&whole, id, total); err != nil {
		t.Fatal(err)
	}
	ref := whole.Bytes()

	cases := []struct{ off, n int64 }{
		{0, total},                           // full body as a range
		{0, 1},                               // first byte
		{0, payloadBlockSize},                // exactly one block
		{payloadBlockSize, payloadBlockSize}, // block-aligned interior
		{1000, 1},                            // single mid-block byte
		{1000, payloadBlockSize},             // mid-block start crossing a boundary
		{payloadBlockSize - 1, 2},            // straddles a block edge
		{total - 1, 1},                       // last byte
		{total - 17, 17},                     // trailing partial block
		{500, 0},                             // empty range writes nothing
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		written, err := WritePayloadRange(&buf, id, tc.off, tc.n)
		if err != nil {
			t.Fatalf("range %d+%d: %v", tc.off, tc.n, err)
		}
		if written != tc.n {
			t.Fatalf("range %d+%d wrote %d bytes", tc.off, tc.n, written)
		}
		if !bytes.Equal(buf.Bytes(), ref[tc.off:tc.off+tc.n]) {
			t.Fatalf("range %d+%d bytes diverge from whole payload", tc.off, tc.n)
		}
	}

	if _, err := WritePayloadRange(&bytes.Buffer{}, id, -1, 5); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := WritePayloadRange(&bytes.Buffer{}, id, 0, -5); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestRangeVerifier(t *testing.T) {
	const id = "ds-verify"
	const off, n = 5000, 3000
	var buf bytes.Buffer
	if _, err := WritePayloadRange(&buf, id, off, n); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	v := NewRangeVerifier(id, off, n)
	if _, err := v.Write(good); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if v.BytesRead() != n {
		t.Fatalf("bytes read = %d", v.BytesRead())
	}
	if len(v.Sum256()) != 32 {
		t.Fatal("no digest")
	}

	// Truncated: missing bytes surface on Close.
	v = NewRangeVerifier(id, off, n)
	if _, err := v.Write(good[:n-10]); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncation not detected: %v", err)
	}

	// Corrupt byte mid-stream.
	bad := append([]byte(nil), good...)
	bad[1234] ^= 0xff
	v = NewRangeVerifier(id, off, n)
	if _, err := v.Write(bad); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption not detected: %v", err)
	}

	// Surplus bytes rejected.
	v = NewRangeVerifier(id, off, n)
	if _, err := v.Write(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("surplus byte accepted")
	}

	// Wrong offset means wrong expected bytes.
	v = NewRangeVerifier(id, off+1, n)
	if _, err := v.Write(good); err == nil {
		t.Fatal("offset-shifted stream verified")
	}
}

func TestBlockCache(t *testing.T) {
	c := NewBlockCache(2)
	b1, hit := c.Block("ds-a")
	if hit {
		t.Fatal("cold lookup reported hit")
	}
	if !bytes.Equal(b1, payloadBlock("ds-a")) {
		t.Fatal("cached block differs from computed block")
	}
	if _, hit = c.Block("ds-a"); !hit {
		t.Fatal("warm lookup reported miss")
	}
	// Fill past capacity: ds-a stays (MRU), ds-b evicted.
	c.Block("ds-b")
	c.Block("ds-a")
	c.Block("ds-c")
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, hit = c.Block("ds-a"); !hit {
		t.Fatal("recently used block evicted")
	}
	if _, hit = c.Block("ds-b"); hit {
		t.Fatal("LRU victim still cached")
	}
}

func TestBlockCacheConcurrent(t *testing.T) {
	c := NewBlockCache(64)
	done := make(chan []byte, 32)
	for g := 0; g < 32; g++ {
		go func() {
			b, _ := c.Block("ds-flight")
			done <- b
		}()
	}
	want := payloadBlock("ds-flight")
	for g := 0; g < 32; g++ {
		if b := <-done; !bytes.Equal(b, want) {
			t.Fatal("concurrent Block returned wrong bytes")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (singleflight collapsed)", c.Len())
	}
}
