package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/ingest"
	"scdn/internal/storage"
)

// singleMutexCatalog is the pre-sharding baseline: one allocation cluster
// behind one mutex. It exists only so the resolve benchmark can measure
// the sharded catalog against the design it replaced — the acceptance bar
// is ≥ 2× parallel resolve throughput at GOMAXPROCS ≥ 4.
type singleMutexCatalog struct {
	mu      sync.Mutex
	cluster *allocation.Cluster
}

func (c *singleMutexCatalog) Resolve(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Resolve(id, requester)
}

func (c *singleMutexCatalog) Datasets() ([]storage.DatasetID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Datasets()
}

func (c *singleMutexCatalog) Stats() (uint64, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Stats()
}

// benchResolver abstracts the two catalogs under test.
type benchResolver interface {
	Resolve(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error)
	Datasets() ([]storage.DatasetID, error)
	Stats() (uint64, uint64, uint64)
}

const (
	benchMembers  = 8
	benchDatasets = 2048
)

func benchRegistry(b *testing.B) (*Registry, []storage.DatasetID) {
	b.Helper()
	reg := NewRegistry()
	for i := 0; i < benchMembers; i++ {
		reg.Register(Member{Node: allocation.NodeID(i + 1), Site: i, Online: true})
	}
	var ids []storage.DatasetID
	for d := 0; d < benchDatasets; d++ {
		ids = append(ids, storage.DatasetID(fmt.Sprintf("bench-%04d", d)))
	}
	return reg, ids
}

func registerAll(b *testing.B, ids []storage.DatasetID, register func(storage.DatasetID, allocation.NodeID, int64) error) {
	b.Helper()
	for d, id := range ids {
		if err := register(id, allocation.NodeID(d%benchMembers+1), 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func benchResolveParallel(b *testing.B, cat benchResolver, ids []storage.DatasetID, withScans bool) {
	stop := make(chan struct{})
	var scanWG sync.WaitGroup
	if withScans {
		// The metrics exporter and maintenance loop periodically walk the
		// whole catalog in production. Behind one mutex each walk stalls
		// every resolve for the full scan; with shards a walk only blocks
		// 1/ShardCount of the key space at a time.
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				if _, err := cat.Datasets(); err != nil {
					b.Error(err)
					return
				}
				cat.Stats()
			}
		}()
	}
	var cursor atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine walks its own stride of datasets so resolves
		// spread across shards, like independent clients would.
		i := cursor.Add(1)
		for pb.Next() {
			id := ids[i%uint64(len(ids))]
			if _, ok, err := cat.Resolve(id, allocation.NodeID(i%benchMembers+1)); err != nil || !ok {
				b.Fatalf("resolve %s: ok=%v err=%v", id, ok, err)
			}
			i += 7 // coprime stride: all datasets visited, adjacent goroutines diverge
		}
	})
	b.StopTimer()
	close(stop)
	scanWG.Wait()
}

func benchBothCatalogs(b *testing.B, withScans bool) {
	b.Run("sharded", func(b *testing.B) {
		reg, ids := benchRegistry(b)
		cat, err := NewCatalogSharded(2, reg, DefaultCatalogShards)
		if err != nil {
			b.Fatal(err)
		}
		registerAll(b, ids, cat.RegisterDataset)
		benchResolveParallel(b, cat, ids, withScans)
	})
	b.Run("single-mutex", func(b *testing.B) {
		reg, ids := benchRegistry(b)
		cl, err := allocation.NewCluster(2, reg)
		if err != nil {
			b.Fatal(err)
		}
		cat := &singleMutexCatalog{cluster: cl}
		registerAll(b, ids, cl.RegisterDataset)
		benchResolveParallel(b, cat, ids, withScans)
	})
}

// BenchmarkCatalogResolveParallel compares parallel resolve throughput of
// the sharded catalog against the single-mutex baseline under the
// delivery plane's real concurrent load: resolves racing the full-catalog
// scans that the metrics exporter and maintenance sweep run continuously.
// Run with -cpu 4 (or higher); the acceptance criterion is sharded ≥ 2×
// single-mutex ops/sec.
func BenchmarkCatalogResolveParallel(b *testing.B) {
	benchBothCatalogs(b, true)
}

// BenchmarkCatalogResolveNoScan is the same resolve loop without the
// background scans — the uncontended floor of both designs.
func BenchmarkCatalogResolveNoScan(b *testing.B) {
	benchBothCatalogs(b, false)
}

// BenchmarkCatalogReadsParallel measures the RLock read path (the bytes/
// origin/replicas lookups every fetch performs).
func BenchmarkCatalogReadsParallel(b *testing.B) {
	reg, ids := benchRegistry(b)
	cat, err := NewCatalogSharded(2, reg, DefaultCatalogShards)
	if err != nil {
		b.Fatal(err)
	}
	registerAll(b, ids, cat.RegisterDataset)
	var cursor atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := cursor.Add(1)
		for pb.Next() {
			id := ids[i%uint64(len(ids))]
			if _, err := cat.DatasetBytes(id); err != nil {
				b.Fatal(err)
			}
			if _, err := cat.Origin(id); err != nil {
				b.Fatal(err)
			}
			i += 7
		}
	})
}

// BenchmarkPayloadBlock contrasts the cold SHA-256 chain against a warm
// cache hit. The acceptance criterion is warm ≥ 10× fewer allocations
// than cold (warm hits allocate nothing).
func BenchmarkPayloadBlock(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = payloadBlock("bench-payload")
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := NewBlockCache(16)
		cache.Block("bench-payload") // prime
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit := cache.Block("bench-payload"); !hit {
				b.Fatal("cache miss on warm path")
			}
		}
	})
}

// BenchmarkWritePayloadRange measures the wire-serialization cost of a
// mid-block 64 KiB range from a cached block.
func BenchmarkWritePayloadRange(b *testing.B) {
	cache := NewBlockCache(16)
	block, _ := cache.Block("bench-payload")
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := writeBlockRange(io.Discard, block, 1000, 64<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRW is a minimal ResponseWriter standing in for net/http's: like
// the real one it implements io.ReaderFrom (the hook sendfile rides in
// production), here with a pooled buffer so the benchmark measures the
// serving path's own allocations, not the fake's.
type benchRW struct {
	h http.Header
	n int64
}

func (w *benchRW) Header() http.Header { return w.h }
func (w *benchRW) WriteHeader(int)     {}
func (w *benchRW) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func (w *benchRW) ReadFrom(r io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	var n int64
	for {
		m, err := r.Read(*bp)
		n += int64(m)
		w.n += int64(m)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

// benchNode builds an in-package node with just the serving-path
// collaborators (block cache, optional volume) wired.
func benchNode(vol *storage.DiskVolume) *Node {
	return &Node{
		cfg:       Config{Node: 1},
		blocks:    NewBlockCache(16),
		vol:       vol,
		srcID:     "1",
		srcHdr:    []string{"1"},
		manifests: ingest.NewStore(),
		Metrics:   &Metrics{},
	}
}

// benchServeLocal drives the local serve path (disk or generated,
// depending on the node's volume) with a warm start: the replica file /
// payload block exists before the timer runs.
func benchServeLocal(b *testing.B, n *Node, total int64, rangeHdr string) {
	b.Helper()
	const id = storage.DatasetID("bench-serve")
	req := httptest.NewRequest(http.MethodGet, "/v1/fetch/bench-serve", nil)
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	rngs, isRange, err := parseRanges(rangeHdr, total)
	if err != nil {
		b.Fatal(err)
	}
	var want int64
	for _, rng := range rngs {
		want += rng.n
	}
	w := &benchRW{h: make(http.Header)}
	n.serveLocal(w, req, id, rngs, isRange, total) // warm: materialize + prime caches
	b.SetBytes(want)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.n = 0
		n.serveLocal(w, req, id, rngs, isRange, total)
		if len(rngs) == 1 && w.n != want {
			b.Fatalf("served %d bytes, want %d", w.n, want)
		}
	}
	b.StopTimer()
	if n.vol != nil && n.Metrics.StoreDiskHits.Value() == 0 {
		b.Fatal("disk benchmark never hit the volume")
	}
}

// BenchmarkServeLocalModes compares the warm per-fetch cost of the
// disk-backed sendfile path against the generated-payload path it
// replaces, for full bodies and single-part ranges. The acceptance
// criterion is disk/warm allocating less per op than generated/warm.
func BenchmarkServeLocalModes(b *testing.B) {
	const total = int64(256 << 10)
	const rangeHdr = "bytes=5000-70535" // 64 KiB, mid-block offset
	b.Run("disk/warm-full", func(b *testing.B) {
		vol, err := storage.NewDiskVolume(b.TempDir(), 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		benchServeLocal(b, benchNode(vol), total, "")
	})
	b.Run("generated/warm-full", func(b *testing.B) {
		benchServeLocal(b, benchNode(nil), total, "")
	})
	b.Run("disk/warm-range", func(b *testing.B) {
		vol, err := storage.NewDiskVolume(b.TempDir(), 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		benchServeLocal(b, benchNode(vol), total, rangeHdr)
	})
	b.Run("generated/warm-range", func(b *testing.B) {
		benchServeLocal(b, benchNode(nil), total, rangeHdr)
	})
}

// BenchmarkMaterializeCold measures the one-time cost the disk path pays
// before its first serve: deriving the payload and committing it to the
// volume (temp file + rename). Amortized over every later sendfile hit.
func BenchmarkMaterializeCold(b *testing.B) {
	const total = int64(256 << 10)
	const id = storage.DatasetID("bench-serve")
	vol, err := storage.NewDiskVolume(b.TempDir(), 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	n := benchNode(vol)
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vol.Remove(id)
		if !n.materialize(id, total) {
			b.Fatal("materialize failed")
		}
	}
}
