package server

import (
	"net"
	"net/http"
	"time"
)

// sharedTransport is the delivery plane's one tuned HTTP transport,
// shared by every in-process client of the cluster: the edges' peer
// clients, striped fetches, and load-generator workers. The stock
// http.DefaultTransport keeps only two idle connections per host, so a
// 32-worker load generator (or a node proxying a hot dataset) churns
// through TCP handshakes as fast as it closes sockets; here the per-host
// idle pool is sized for a striped fan-out and keep-alives stay on, so
// peer hops and stripes ride warm connections.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:        512,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// SharedTransport returns the process-wide tuned transport. Callers must
// not mutate it.
func SharedTransport() *http.Transport { return sharedTransport }

// NewHTTPClient returns an HTTP client over the shared transport.
// timeout <= 0 means no client-level timeout.
func NewHTTPClient(timeout time.Duration) *http.Client {
	return &http.Client{Transport: sharedTransport, Timeout: timeout}
}
