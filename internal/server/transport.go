package server

import (
	"net/http"
	"time"

	"scdn/internal/transport"
)

// SharedTransport returns the process-wide tuned transport (see
// internal/transport, where it lives so client packages can share the
// connection pool without importing the serving plane). Callers must
// not mutate it.
func SharedTransport() *http.Transport { return transport.Shared() }

// NewHTTPClient returns an HTTP client over the shared transport.
// timeout <= 0 means no client-level timeout.
func NewHTTPClient(timeout time.Duration) *http.Client {
	return transport.NewClient(timeout)
}
