package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scdn/internal/socialnet"
)

// TestClusterConcurrentEndToEnd drives a 3-node cluster over loopback
// TCP with closed-loop concurrent workers — the in-repo version of the
// scdn-loadgen acceptance run. Every worker logs in over the wire,
// fetches datasets from edges chosen round-robin (forcing a mix of local
// hits and peer fallbacks), and verifies every payload. Afterwards the
// cluster's /metrics expositions must reconcile exactly with the
// client-side totals. Run under -race this is the serving plane's
// concurrency regression test.
func TestClusterConcurrentEndToEnd(t *testing.T) {
	const (
		workers    = 8
		perWorker  = 25
		totalFetch = workers * perWorker
	)
	lc := startCluster(t, ClusterConfig{
		Nodes: 3, Users: workers, Datasets: 9,
		DatasetBytes: 32 << 10, PullThrough: true,
	})
	urls := lc.URLs()

	var issued, failed, resolves atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			var loginResp LoginResponse
			code := doJSON(t, client, http.MethodPost, urls[w%len(urls)]+"/v1/login", "",
				LoginRequest{User: int64(lc.UserIDs[w])}, &loginResp)
			if code != http.StatusOK {
				t.Errorf("worker %d login = %d", w, code)
				return
			}
			tok := socialnet.Token(loginResp.Token)
			for i := 0; i < perWorker; i++ {
				// Dataset and edge stride differently so workers hit a
				// mix of origin nodes (local hits) and non-holders
				// (peer fallbacks).
				ds := lc.DatasetIDs[(w+i)%len(lc.DatasetIDs)]
				base := urls[i%len(urls)]
				// Every 5th access resolves first, like the simulated
				// client's access protocol.
				if i%5 == 0 {
					var res ResolveResponse
					if code := doJSON(t, client, http.MethodPost, base+"/v1/resolve", tok,
						ResolveRequest{Dataset: string(ds)}, &res); code != http.StatusOK {
						t.Errorf("worker %d resolve %s = %d", w, ds, code)
						failed.Add(1)
						continue
					}
					resolves.Add(1)
				}
				issued.Add(1)
				req, err := http.NewRequest(http.MethodGet, base+"/v1/fetch/"+string(ds), nil)
				if err != nil {
					t.Error(err)
					failed.Add(1)
					continue
				}
				req.Header.Set("Authorization", "Bearer "+string(tok))
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("worker %d fetch %s: %v", w, ds, err)
					failed.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d fetch %s = %s", w, ds, resp.Status)
					resp.Body.Close()
					failed.Add(1)
					continue
				}
				if _, err := VerifyPayload(resp.Body, ds, lc.Config.DatasetBytes); err != nil {
					t.Error(err)
					failed.Add(1)
				}
				resp.Body.Close()
			}
			// Report client-side statistics, as the paper's CDN client does.
			code = doJSON(t, client, http.MethodPost, urls[w%len(urls)]+"/v1/report", tok,
				ReportRequest{Client: int64(lc.UserIDs[w]), Accesses: perWorker}, nil)
			if code != http.StatusNoContent {
				t.Errorf("worker %d report = %d", w, code)
			}
		}(w)
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d requests failed", failed.Load(), issued.Load())
	}
	if issued.Load() != totalFetch {
		t.Fatalf("issued %d fetches, want %d", issued.Load(), totalFetch)
	}

	// Reconcile server-side metrics with client-side totals.
	var fetches, fetchFail, latCount, resolveTotal, hits, reported uint64
	for _, n := range lc.Nodes {
		m := n.Metrics
		fetches += m.FetchRequests.Value()
		fetchFail += m.FetchFailures.Value()
		latCount += uint64(m.FetchLatency.Summary().Count)
		resolveTotal += m.ResolveRequests.Value()
		hits += m.LocalHits.Value() + m.PeerHits.Value() + m.OriginFetches.Value()
		reported += m.ReportedAccesses.Value()
	}
	if fetches != totalFetch {
		t.Errorf("cluster fetch_requests_total = %d, want %d", fetches, totalFetch)
	}
	if fetchFail != 0 {
		t.Errorf("cluster fetch_failures_total = %d, want 0", fetchFail)
	}
	if latCount != totalFetch {
		t.Errorf("cluster fetch latency samples = %d, want %d", latCount, totalFetch)
	}
	if resolveTotal != resolves.Load() {
		t.Errorf("cluster resolve_requests_total = %d, want %d", resolveTotal, resolves.Load())
	}
	// Local hits on peer hops mean hits can exceed client fetches only
	// via peer-internal serving; client-facing outcomes must cover every
	// client fetch.
	if hits < totalFetch {
		t.Errorf("hit outcomes = %d, want >= %d", hits, totalFetch)
	}
	if reported != workers*perWorker {
		t.Errorf("reported accesses = %d, want %d", reported, workers*perWorker)
	}

	// With pull-through caching and nine datasets hammered from three
	// edges, demand must have replicated data beyond the origins.
	extra := 0
	for _, ds := range lc.DatasetIDs {
		if c := lc.Catalog.ReplicaCount(ds); c > 1 {
			extra += c - 1
		}
	}
	if extra == 0 {
		t.Error("pull-through caching never replicated a dataset")
	}
}

// TestClusterShutdownUnderLoad checks graceful shutdown drains in-flight
// requests: workers hammer the cluster while it shuts down; every
// response must be either a success or a connection error — never a
// truncated/corrupt payload.
func TestClusterShutdownUnderLoad(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 3, Users: 2, Datasets: 3, DatasetBytes: 256 << 10})
	tok := login(t, lc)
	urls := lc.URLs()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ds := lc.DatasetIDs[i%len(lc.DatasetIDs)]
				req, _ := http.NewRequest(http.MethodGet,
					urls[i%len(urls)]+"/v1/fetch/"+string(ds), nil)
				req.Header.Set("Authorization", "Bearer "+string(tok))
				resp, err := client.Do(req)
				if err != nil {
					continue // refused mid-shutdown: fine
				}
				if resp.StatusCode == http.StatusOK {
					if _, err := VerifyPayload(resp.Body, ds, lc.Config.DatasetBytes); err != nil {
						// A drained request must still complete its stream.
						t.Errorf("in-flight payload corrupted during shutdown: %v", err)
					}
				}
				resp.Body.Close()
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := lc.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
}

// TestClusterStartupErrors exercises bootstrap validation.
func TestClusterStartupErrors(t *testing.T) {
	// Dataset bigger than the repository cannot seed the origin copy.
	_, err := StartLocalCluster(ClusterConfig{
		Nodes: 1, Users: 1, Datasets: 1,
		RepoCapacity: 1024, ReplicaReserve: 512, DatasetBytes: 4096,
	})
	if err == nil {
		t.Fatal("oversized dataset accepted")
	}
	if !strings.Contains(err.Error(), "storage") {
		t.Fatalf("unexpected error: %v", err)
	}
}
