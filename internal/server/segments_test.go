package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"scdn/internal/cdnclient"
	"scdn/internal/ingest"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// Segment-test geometry: one-block segments keep datasets small while
// still spanning several segments (64 KiB each, the smallest legal
// segment size).
const (
	segTestSize  = int64(ingest.DefaultBlockSize) // 64 KiB
	segTestBytes = 4*segTestSize + 1000           // 5 segments, short tail
	segTestCount = int64(5)
	segTestTail  = int64(1000)
)

// segCluster starts a dir-store cluster whose seeded datasets all take
// the segmented layout.
func segCluster(t *testing.T, cfg ClusterConfig) *LocalCluster {
	t.Helper()
	cfg.StoreMode = StoreModeDir
	cfg.DatasetBytes = segTestBytes
	cfg.SegmentSize = segTestSize
	cfg.SegmentThreshold = segTestSize
	return startCluster(t, cfg)
}

// fadviseCounters reports whether this platform's fadvise calls are
// real (the build-tagged syscall, not the stub).
func fadviseCounters() bool {
	return runtime.GOOS == "linux" && (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64")
}

// fetchRange GETs one byte window and verifies the 206 body.
func fetchRange(t *testing.T, client *http.Client, base string, tok socialnet.Token,
	id storage.DatasetID, off, length int64) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/fetch/"+string(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+string(tok))
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("range fetch: %s", resp.Status)
	}
	if _, err := VerifyPayloadRange(resp.Body, id, off, length); err != nil {
		t.Fatal(err)
	}
}

// fetchSegment GETs one segment, returning the response with its body
// unread (callers verify or discard).
func fetchSegment(t *testing.T, client *http.Client, base string, tok socialnet.Token,
	id storage.DatasetID, seg int64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/fetch/%s/segments/%d", base, id, seg), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tok != "" {
		req.Header.Set("Authorization", "Bearer "+string(tok))
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSegmentedWholeFetch(t *testing.T) {
	lc := segCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 10 * time.Second}
	node := lc.Nodes[0]
	tok := login(t, lc)

	fetchDataset(t, client, node.BaseURL(), tok, "ds-001", segTestBytes)
	if got := node.Metrics.SegmentedServes.Value(); got != 1 {
		t.Fatalf("segmented serves = %d, want 1", got)
	}
	if node.Volume().Has("ds-001") {
		t.Fatal("segmented dataset committed a whole-file replica")
	}
	if got := node.Volume().ResidentSegments("ds-001", segTestCount); got != segTestCount {
		t.Fatalf("resident segments = %d, want %d", got, segTestCount)
	}
	if got := node.Metrics.StoreMaterializations.Value(); got != uint64(segTestCount) {
		t.Fatalf("materializations = %d, want %d (one per segment)", got, segTestCount)
	}
	if got := node.Metrics.StoreMaterializedBytes.Value(); got != uint64(segTestBytes) {
		t.Fatalf("materialized bytes = %d, want %d", got, segTestBytes)
	}

	// Warm serve: same segments, no new disk work.
	fetchDataset(t, client, node.BaseURL(), tok, "ds-001", segTestBytes)
	if got := node.Metrics.StoreMaterializations.Value(); got != uint64(segTestCount) {
		t.Fatalf("warm fetch re-materialized: %d", got)
	}
	if got := node.Metrics.SegmentedServes.Value(); got != 2 {
		t.Fatalf("segmented serves = %d, want 2", got)
	}
	if fadviseCounters() {
		// Sequential advice once per fresh descriptor (5 first-open
		// segments); DONTNEED after every complete segment pass (5 per
		// whole-object serve, 2 serves).
		if got := node.Metrics.StoreFadviseSequential.Value(); got != uint64(segTestCount) {
			t.Errorf("fadvise sequential = %d, want %d", got, segTestCount)
		}
		if got := node.Metrics.StoreFadviseDontNeed.Value(); got != uint64(2*segTestCount) {
			t.Errorf("fadvise dontneed = %d, want %d", got, 2*segTestCount)
		}
	}
}

// TestSegmentedQuotaResidency is the partial-residency contract: a
// volume whose quota holds a fraction of one dataset still serves the
// whole thing, keeps the hot tail resident, and a later ranged fetch
// re-materializes only the segments its window needs.
func TestSegmentedQuotaResidency(t *testing.T) {
	lc := segCluster(t, ClusterConfig{
		Nodes: 1, Users: 1, Datasets: 1,
		StoreQuota: 2 * segTestSize, // room for 2 of the 5 segments
	})
	client := &http.Client{Timeout: 10 * time.Second}
	node := lc.Nodes[0]
	tok := login(t, lc)
	const id = storage.DatasetID("ds-001")

	fetchDataset(t, client, node.BaseURL(), tok, string(id), segTestBytes)
	if got := node.Metrics.StoreMaterializations.Value(); got != uint64(segTestCount) {
		t.Fatalf("materializations = %d, want %d", got, segTestCount)
	}
	if got := node.Volume().ResidentSegments(id, segTestCount); got != 2 {
		t.Fatalf("resident segments = %d, want 2 (quota holds 2)", got)
	}
	// The sequential walk ends with the tail segments resident.
	for _, seg := range []int64{3, 4} {
		if !node.Volume().HasSegment(id, seg) {
			t.Fatalf("hot tail segment %d not resident", seg)
		}
	}

	// A window inside evicted segment 1 re-materializes exactly one
	// segment, not the dataset.
	before := node.Metrics.StoreMaterializations.Value()
	fetchRange(t, client, node.BaseURL(), tok, id, segTestSize+5000, 2000)
	if got := node.Metrics.StoreMaterializations.Value() - before; got != 1 {
		t.Fatalf("ranged fetch materialized %d segments, want 1", got)
	}
	// Warm repeat of the same window: zero new disk work.
	before = node.Metrics.StoreMaterializations.Value()
	fetchRange(t, client, node.BaseURL(), tok, id, segTestSize+5000, 2000)
	if got := node.Metrics.StoreMaterializations.Value() - before; got != 0 {
		t.Fatalf("warm ranged fetch materialized %d segments", got)
	}
	// A window spanning the 2-3 boundary needs at most those 2 segments.
	before = node.Metrics.StoreMaterializations.Value()
	fetchRange(t, client, node.BaseURL(), tok, id, 3*segTestSize-1000, 2000)
	if got := node.Metrics.StoreMaterializations.Value() - before; got > 2 {
		t.Fatalf("boundary range materialized %d segments, want <= 2", got)
	}

	// Concurrent mixed readers under the same starved quota: every
	// stream must still verify end to end while segments are being
	// materialized and evicted underneath them (exercised under -race).
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			off := (int64(g%5)*7919 + 13) % (segTestBytes - 3000)
			req, err := http.NewRequest(http.MethodGet, node.BaseURL()+"/v1/fetch/"+string(id), nil)
			if err != nil {
				errs <- err
				return
			}
			req.Header.Set("Authorization", "Bearer "+string(tok))
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+2999))
			resp, err := client.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusPartialContent {
				io.Copy(io.Discard, resp.Body)
				errs <- fmt.Errorf("goroutine %d: %s", g, resp.Status)
				return
			}
			if _, err := VerifyPayloadRange(resp.Body, id, off, 3000); err != nil {
				errs <- fmt.Errorf("goroutine %d: %w", g, err)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := node.Volume().ResidentSegments(id, segTestCount); got > 2 {
		t.Fatalf("resident segments = %d, quota allows 2", got)
	}
}

func TestSegmentEndpoint(t *testing.T) {
	lc := segCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 10 * time.Second}
	node := lc.Nodes[0]
	tok := login(t, lc)
	const id = storage.DatasetID("ds-001")

	// Every segment serves as a plain 200 with its exact extent.
	for seg := int64(0); seg < segTestCount; seg++ {
		extent := storage.SegmentExtent(segTestBytes, segTestSize, seg)
		resp := fetchSegment(t, client, node.BaseURL(), tok, id, seg)
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("segment %d: %s", seg, resp.Status)
		}
		if got := resp.ContentLength; got != extent {
			t.Fatalf("segment %d Content-Length = %d, want %d", seg, got, extent)
		}
		if _, err := VerifyPayloadRange(resp.Body, id, seg*segTestSize, extent); err != nil {
			t.Fatalf("segment %d: %v", seg, err)
		}
		resp.Body.Close()
	}
	if got := node.Metrics.SegmentFetchRequests.Value(); got != uint64(segTestCount) {
		t.Fatalf("segment fetch requests = %d, want %d", got, segTestCount)
	}
	if got := node.Metrics.SegmentFetchFailures.Value(); got != 0 {
		t.Fatalf("segment fetch failures = %d", got)
	}

	// Out-of-range, negative, and non-numeric ordinals are 404s.
	for _, bad := range []string{"5", "-1", "abc", "01x"} {
		req, _ := http.NewRequest(http.MethodGet,
			node.BaseURL()+"/v1/fetch/ds-001/segments/"+bad, nil)
		req.Header.Set("Authorization", "Bearer "+string(tok))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("segment %q: %s, want 404", bad, resp.Status)
		}
	}
	// Missing auth is refused before any byte of the segment.
	resp := fetchSegment(t, client, node.BaseURL(), "", id, 0)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated segment fetch: %s, want 403", resp.Status)
	}
}

func TestSegmentEndpointUnsegmentedDataset(t *testing.T) {
	// Default threshold (16 MiB) far above the 64 KiB dataset: the
	// segment surface does not exist for small datasets.
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1, StoreMode: StoreModeDir})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)
	resp := fetchSegment(t, client, lc.Nodes[0].BaseURL(), tok, "ds-001", 0)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("segment fetch of unsegmented dataset: %s, want 404", resp.Status)
	}
}

// TestSegmentPeerPull: an edge that holds nothing of a dataset proxies
// the requested segment from a holder and adopts exactly that segment —
// no whole-dataset transfer, no catalog replica record for a piece.
func TestSegmentPeerPull(t *testing.T) {
	lc := segCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2, PullThrough: true,
		Sweep: SweeperConfig{Disabled: true}})
	client := &http.Client{Timeout: 10 * time.Second}
	owner, other := lc.Nodes[0], lc.Nodes[1] // ds-001's origin is node 1
	tok := login(t, lc)
	const id = storage.DatasetID("ds-001")
	const seg = int64(2)

	resp := fetchSegment(t, client, other.BaseURL(), tok, id, seg)
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("proxied segment: %s", resp.Status)
	}
	if _, err := VerifyPayloadRange(resp.Body, id, seg*segTestSize, segTestSize); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if got := owner.Metrics.PeerSegmentFetchRequests.Value(); got != 1 {
		t.Fatalf("owner peer segment requests = %d, want 1", got)
	}
	if got := other.Metrics.SegmentPulls.Value(); got != 1 {
		t.Fatalf("segment pulls = %d, want 1", got)
	}
	if !other.Volume().HasSegment(id, seg) {
		t.Fatal("pulled segment not adopted into the volume")
	}
	if other.Volume().ResidentSegments(id, segTestCount) != 1 {
		t.Fatal("peer pull adopted more than the requested segment")
	}
	// Holding one piece must not mint a replica record: the catalog
	// would route whole-object fetches to an edge that cannot serve them
	// locally in full.
	if holdsReplica(lc, id, 2) {
		t.Fatal("segment adoption minted a whole-dataset replica record")
	}

	// Second fetch of the same segment serves locally from the adopted
	// file — no second peer hop.
	resp = fetchSegment(t, client, other.BaseURL(), tok, id, seg)
	if _, err := VerifyPayloadRange(resp.Body, id, seg*segTestSize, segTestSize); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := owner.Metrics.PeerSegmentFetchRequests.Value(); got != 1 {
		t.Fatalf("adopted segment re-proxied: owner saw %d peer requests", got)
	}
	if got := other.Metrics.SegmentPulls.Value(); got != 1 {
		t.Fatalf("segment pulls = %d after warm serve, want 1", got)
	}
}

// TestSegmentedPullThroughWholeFetch: a whole-object fetch proxied
// through a non-holder adopts the dataset segment by segment, each one
// verified against the manifest window as it completes, and the edge
// then serves the dataset locally via the segmented path.
func TestSegmentedPullThroughWholeFetch(t *testing.T) {
	lc := segCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2, PullThrough: true,
		Sweep: SweeperConfig{Disabled: true}})
	client := &http.Client{Timeout: 10 * time.Second}
	other := lc.Nodes[1]
	tok := login(t, lc)
	const id = storage.DatasetID("ds-001")

	fetchDataset(t, client, other.BaseURL(), tok, string(id), segTestBytes)
	if got := other.Metrics.SegmentPulls.Value(); got != uint64(segTestCount) {
		t.Fatalf("segment pulls = %d, want %d (every segment adopted mid-stream)", got, segTestCount)
	}
	if got := other.Volume().ResidentSegments(id, segTestCount); got != segTestCount {
		t.Fatalf("resident segments after pull-through = %d, want %d", got, segTestCount)
	}
	if other.Volume().Has(id) {
		t.Fatal("segmented pull-through committed a whole-file replica")
	}
	// Regenerable dataset: the adopted edge becomes a real replica
	// holder (it can always re-derive evicted segments).
	if !holdsReplica(lc, id, 2) {
		t.Fatal("pull-through of a regenerable segmented dataset did not register a replica")
	}

	// Warm: the second fetch never leaves the edge.
	origins := other.Metrics.OriginFetches.Value()
	fetchDataset(t, client, other.BaseURL(), tok, string(id), segTestBytes)
	if got := other.Metrics.SegmentedServes.Value(); got != 1 {
		t.Fatalf("segmented serves = %d, want 1 (warm serve is local)", got)
	}
	if got := other.Metrics.OriginFetches.Value(); got != origins {
		t.Fatal("warm fetch went back to the origin")
	}
}

func TestResolveSegmentIndex(t *testing.T) {
	lc := segCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)
	var res ResolveResponse
	status := doJSON(t, client, http.MethodPost, lc.Nodes[0].BaseURL()+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res)
	if status != http.StatusOK {
		t.Fatalf("resolve: %d", status)
	}
	if res.SegmentSize != segTestSize || res.Segments != segTestCount {
		t.Fatalf("resolve segment geometry = (%d, %d), want (%d, %d)",
			res.SegmentSize, res.Segments, segTestSize, segTestCount)
	}
	if int64(len(res.SegmentDigests)) != segTestCount {
		t.Fatalf("segment digest index has %d entries, want %d", len(res.SegmentDigests), segTestCount)
	}
	man, ok := lc.Manifests.Get("ds-001")
	if !ok {
		t.Fatal("no manifest for seeded dataset")
	}
	for i := int64(0); i < segTestCount; i++ {
		want, err := man.SegmentDigestHex(segTestSize, i)
		if err != nil {
			t.Fatal(err)
		}
		if res.SegmentDigests[i] != want {
			t.Fatalf("segment digest %d mismatch", i)
		}
	}
	// The index is cached: a second resolve returns the identical slice
	// contents without error.
	var res2 ResolveResponse
	doJSON(t, client, http.MethodPost, lc.Nodes[0].BaseURL()+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res2)
	if len(res2.SegmentDigests) != len(res.SegmentDigests) {
		t.Fatal("cached resolve lost the segment index")
	}
}

func TestResolveSmallDatasetHasNoSegmentIndex(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)
	var res ResolveResponse
	doJSON(t, client, http.MethodPost, lc.Nodes[0].BaseURL()+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res)
	if res.SegmentSize != 0 || res.Segments != 0 || res.SegmentDigests != nil {
		t.Fatalf("small dataset grew a segment index: %+v", res)
	}
}

// TestOpaqueSegmentWindow: opaque uploads commit as one file (their
// segments could never be re-derived), and the segment endpoint serves
// windows out of that file.
func TestOpaqueSegmentWindow(t *testing.T) {
	lc := startCluster(t, ClusterConfig{
		Nodes: 1, Users: 1, NoSeedDatasets: true, StoreMode: StoreModeDir,
		SegmentSize: segTestSize, SegmentThreshold: segTestSize,
		Sweep: SweeperConfig{Disabled: true},
	})
	client := &http.Client{Timeout: 10 * time.Second}
	node := lc.Nodes[0]
	tok := login(t, lc)
	data := opaqueBytes(7, int(segTestBytes))
	const id = storage.DatasetID("up-seg")

	if _, err := cdnclient.Upload(context.Background(), cdnclient.TransferOptions{
		Endpoints: []string{node.BaseURL()}, Token: string(tok),
	}, id, lc.Config.Group, bytes.NewReader(data), int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if !node.Volume().Has(id) {
		t.Fatal("opaque upload did not commit a whole-file replica")
	}

	// Whole fetch stays on the whole-file path.
	resp := fetchSegment(t, client, node.BaseURL(), tok, id, 1)
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("opaque segment window: %s", resp.Status)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := data[segTestSize : 2*segTestSize]
	if !bytes.Equal(got, want) {
		t.Fatalf("opaque segment window served %d wrong bytes", len(got))
	}
	if got := node.Metrics.SegmentedServes.Value(); got != 0 {
		t.Fatalf("opaque dataset took the segmented serve path (%d)", got)
	}
	// The short tail window too.
	resp = fetchSegment(t, client, node.BaseURL(), tok, id, segTestCount-1)
	got, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("tail window: %s err=%v", resp.Status, err)
	}
	if !bytes.Equal(got, data[4*segTestSize:]) {
		t.Fatal("opaque tail window bytes wrong")
	}
}
