package server

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"sync"

	"scdn/internal/storage"
)

// copyBufPool holds the 64 KiB scratch buffers behind every userspace
// byte move in the delivery plane — generated-payload assembly, peer
// proxy streaming, disk spills, and client-side verification — so the
// steady state performs no per-request buffer allocation.
var copyBufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 64<<10)
		return &b
	},
}

// copyBuffered copies src to dst through a pooled buffer. dst is wrapped
// so an io.ReaderFrom implementation cannot bypass the buffer and
// allocate its own (io.Copy's fallback inside net/http does exactly
// that, 32 KiB per call).
func copyBuffered(dst io.Writer, src io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	return io.CopyBuffer(struct{ io.Writer }{dst}, src, *bp)
}

// The repositories track dataset *metadata* (sizes, partitions, recency);
// the serving plane still has to put real bytes on the wire. Payload
// bytes are derived deterministically from the dataset ID, so any edge
// holding a dataset serves the identical stream and clients can verify
// integrity without the cluster shipping content around out of band.

// payloadBlockSize is the repetition unit of a dataset's byte stream.
const payloadBlockSize = 4096

// payloadBlock builds a dataset's repetition block by chaining SHA-256
// over the dataset ID. Hot paths should go through BlockCache instead of
// calling this per request.
func payloadBlock(id storage.DatasetID) []byte {
	block := make([]byte, 0, payloadBlockSize)
	sum := sha256.Sum256([]byte(id))
	for len(block) < payloadBlockSize {
		block = append(block, sum[:]...)
		sum = sha256.Sum256(sum[:])
	}
	return block[:payloadBlockSize]
}

// writeBlockRange streams payload bytes [off, off+n) derived from a
// prebuilt repetition block, honoring mid-block offsets: the first write
// starts at off within the block cycle, subsequent writes emit whole
// blocks until n bytes are out.
func writeBlockRange(w io.Writer, block []byte, off, n int64) (int64, error) {
	var written int64
	for written < n {
		pos := (off + written) % int64(len(block))
		chunk := int64(len(block)) - pos
		if rem := n - written; rem < chunk {
			chunk = rem
		}
		m, err := w.Write(block[pos : pos+chunk])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// writeBlockRangeBuffered streams the same byte range as writeBlockRange
// but assembles the cyclic payload into a pooled scratch buffer first,
// emitting few large writes instead of one write per 4 KiB block — the
// non-sendfile serving path's syscall count stops scaling with payload
// size, and nothing is allocated per request.
func writeBlockRangeBuffered(w io.Writer, block []byte, off, n int64) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bp)
	buf := *bp
	var written int64
	for written < n {
		fill := 0
		for fill < len(buf) && written+int64(fill) < n {
			pos := (off + written + int64(fill)) % int64(len(block))
			c := copy(buf[fill:], block[pos:])
			if rem := n - written - int64(fill); int64(c) > rem {
				c = int(rem)
			}
			fill += c
		}
		m, err := w.Write(buf[:fill])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// WritePayload streams a dataset's first n bytes to w and returns the
// bytes written.
func WritePayload(w io.Writer, id storage.DatasetID, n int64) (int64, error) {
	return WritePayloadRange(w, id, 0, n)
}

// WritePayloadRange streams the dataset's bytes [off, off+n) to w — the
// server side of an HTTP range request. An empty range (n == 0) writes
// nothing and succeeds.
func WritePayloadRange(w io.Writer, id storage.DatasetID, off, n int64) (int64, error) {
	if off < 0 {
		return 0, fmt.Errorf("server: negative payload offset %d", off)
	}
	if n < 0 {
		return 0, fmt.Errorf("server: negative payload size %d", n)
	}
	if n == 0 {
		return 0, nil
	}
	return writeBlockRange(w, payloadBlock(id), off, n)
}

// RangeVerifier incrementally checks that a byte stream equals the
// dataset's deterministic payload over [off, off+n). It is an io.Writer,
// so verification runs in constant memory as the response body streams
// through it — no buffering of the payload — while a running SHA-256 of
// the consumed bytes is kept for callers that want a content digest.
type RangeVerifier struct {
	id    storage.DatasetID
	block []byte
	off   int64 // absolute offset of the next expected byte
	n     int64 // bytes still expected
	read  int64
	h     hash.Hash
}

// NewRangeVerifier builds a verifier for the dataset's bytes [off, off+n).
func NewRangeVerifier(id storage.DatasetID, off, n int64) *RangeVerifier {
	return &RangeVerifier{id: id, block: payloadBlock(id), off: off, n: n, h: sha256.New()}
}

// Write consumes the next chunk of the stream, failing on the first
// mismatched or surplus byte.
func (v *RangeVerifier) Write(p []byte) (int, error) {
	if int64(len(p)) > v.n {
		return 0, fmt.Errorf("server: payload for %q longer than expected: %d surplus bytes at offset %d",
			v.id, int64(len(p))-v.n, v.off)
	}
	for i, b := range p {
		if b != v.block[(v.off+int64(i))%int64(len(v.block))] {
			return i, fmt.Errorf("server: payload for %q corrupt at offset %d", v.id, v.off+int64(i))
		}
	}
	_, _ = v.h.Write(p)
	v.off += int64(len(p))
	v.n -= int64(len(p))
	v.read += int64(len(p))
	return len(p), nil
}

// Close checks stream completeness: every expected byte arrived.
func (v *RangeVerifier) Close() error {
	if v.n != 0 {
		return fmt.Errorf("server: payload for %q truncated: %d bytes missing at offset %d", v.id, v.n, v.off)
	}
	return nil
}

// BytesRead returns how many verified bytes have streamed through.
func (v *RangeVerifier) BytesRead() int64 { return v.read }

// Sum256 returns the SHA-256 of the bytes consumed so far.
func (v *RangeVerifier) Sum256() []byte { return v.h.Sum(nil) }

// VerifyPayload consumes r and checks that it carries exactly the
// dataset's deterministic stream of length n. It returns the bytes read
// and the first mismatch found. Verification streams: memory stays flat
// regardless of n.
func VerifyPayload(r io.Reader, id storage.DatasetID, n int64) (int64, error) {
	return VerifyPayloadRange(r, id, 0, n)
}

// VerifyPayloadRange consumes r and checks it carries exactly the
// dataset's bytes [off, off+n).
func VerifyPayloadRange(r io.Reader, id storage.DatasetID, off, n int64) (int64, error) {
	v := NewRangeVerifier(id, off, n)
	read, err := copyBuffered(v, r)
	if err != nil {
		return read, err
	}
	return read, v.Close()
}
