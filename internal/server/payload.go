package server

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"io"

	"scdn/internal/storage"
)

// The repositories track dataset *metadata* (sizes, partitions, recency);
// the serving plane still has to put real bytes on the wire. Payload
// bytes are derived deterministically from the dataset ID, so any edge
// holding a dataset serves the identical stream and clients can verify
// integrity without the cluster shipping content around out of band.

// payloadBlockSize is the repetition unit of a dataset's byte stream.
const payloadBlockSize = 4096

// payloadBlock builds a dataset's repetition block by chaining SHA-256
// over the dataset ID. Hot paths should go through BlockCache instead of
// calling this per request.
func payloadBlock(id storage.DatasetID) []byte {
	block := make([]byte, 0, payloadBlockSize)
	sum := sha256.Sum256([]byte(id))
	for len(block) < payloadBlockSize {
		block = append(block, sum[:]...)
		sum = sha256.Sum256(sum[:])
	}
	return block[:payloadBlockSize]
}

// writeBlockRange streams payload bytes [off, off+n) derived from a
// prebuilt repetition block, honoring mid-block offsets: the first write
// starts at off within the block cycle, subsequent writes emit whole
// blocks until n bytes are out.
func writeBlockRange(w io.Writer, block []byte, off, n int64) (int64, error) {
	var written int64
	for written < n {
		pos := (off + written) % int64(len(block))
		chunk := int64(len(block)) - pos
		if rem := n - written; rem < chunk {
			chunk = rem
		}
		m, err := w.Write(block[pos : pos+chunk])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// WritePayload streams a dataset's first n bytes to w and returns the
// bytes written.
func WritePayload(w io.Writer, id storage.DatasetID, n int64) (int64, error) {
	return WritePayloadRange(w, id, 0, n)
}

// WritePayloadRange streams the dataset's bytes [off, off+n) to w — the
// server side of an HTTP range request. An empty range (n == 0) writes
// nothing and succeeds.
func WritePayloadRange(w io.Writer, id storage.DatasetID, off, n int64) (int64, error) {
	if off < 0 {
		return 0, fmt.Errorf("server: negative payload offset %d", off)
	}
	if n < 0 {
		return 0, fmt.Errorf("server: negative payload size %d", n)
	}
	if n == 0 {
		return 0, nil
	}
	return writeBlockRange(w, payloadBlock(id), off, n)
}

// RangeVerifier incrementally checks that a byte stream equals the
// dataset's deterministic payload over [off, off+n). It is an io.Writer,
// so verification runs in constant memory as the response body streams
// through it — no buffering of the payload — while a running SHA-256 of
// the consumed bytes is kept for callers that want a content digest.
type RangeVerifier struct {
	id    storage.DatasetID
	block []byte
	off   int64 // absolute offset of the next expected byte
	n     int64 // bytes still expected
	read  int64
	h     hash.Hash
}

// NewRangeVerifier builds a verifier for the dataset's bytes [off, off+n).
func NewRangeVerifier(id storage.DatasetID, off, n int64) *RangeVerifier {
	return &RangeVerifier{id: id, block: payloadBlock(id), off: off, n: n, h: sha256.New()}
}

// Write consumes the next chunk of the stream, failing on the first
// mismatched or surplus byte.
func (v *RangeVerifier) Write(p []byte) (int, error) {
	if int64(len(p)) > v.n {
		return 0, fmt.Errorf("server: payload for %q longer than expected: %d surplus bytes at offset %d",
			v.id, int64(len(p))-v.n, v.off)
	}
	for i, b := range p {
		if b != v.block[(v.off+int64(i))%int64(len(v.block))] {
			return i, fmt.Errorf("server: payload for %q corrupt at offset %d", v.id, v.off+int64(i))
		}
	}
	_, _ = v.h.Write(p)
	v.off += int64(len(p))
	v.n -= int64(len(p))
	v.read += int64(len(p))
	return len(p), nil
}

// Close checks stream completeness: every expected byte arrived.
func (v *RangeVerifier) Close() error {
	if v.n != 0 {
		return fmt.Errorf("server: payload for %q truncated: %d bytes missing at offset %d", v.id, v.n, v.off)
	}
	return nil
}

// BytesRead returns how many verified bytes have streamed through.
func (v *RangeVerifier) BytesRead() int64 { return v.read }

// Sum256 returns the SHA-256 of the bytes consumed so far.
func (v *RangeVerifier) Sum256() []byte { return v.h.Sum(nil) }

// VerifyPayload consumes r and checks that it carries exactly the
// dataset's deterministic stream of length n. It returns the bytes read
// and the first mismatch found. Verification streams: memory stays flat
// regardless of n.
func VerifyPayload(r io.Reader, id storage.DatasetID, n int64) (int64, error) {
	return VerifyPayloadRange(r, id, 0, n)
}

// VerifyPayloadRange consumes r and checks it carries exactly the
// dataset's bytes [off, off+n).
func VerifyPayloadRange(r io.Reader, id storage.DatasetID, off, n int64) (int64, error) {
	v := NewRangeVerifier(id, off, n)
	read, err := io.Copy(v, r)
	if err != nil {
		return read, err
	}
	return read, v.Close()
}
