package server

import (
	"crypto/sha256"
	"fmt"
	"io"

	"scdn/internal/storage"
)

// The repositories track dataset *metadata* (sizes, partitions, recency);
// the serving plane still has to put real bytes on the wire. Payload
// bytes are derived deterministically from the dataset ID, so any edge
// holding a dataset serves the identical stream and clients can verify
// integrity without the cluster shipping content around out of band.

// payloadBlockSize is the repetition unit of a dataset's byte stream.
const payloadBlockSize = 4096

// payloadBlock builds a dataset's repetition block by chaining SHA-256
// over the dataset ID.
func payloadBlock(id storage.DatasetID) []byte {
	block := make([]byte, 0, payloadBlockSize)
	sum := sha256.Sum256([]byte(id))
	for len(block) < payloadBlockSize {
		block = append(block, sum[:]...)
		sum = sha256.Sum256(sum[:])
	}
	return block[:payloadBlockSize]
}

// WritePayload streams a dataset's first n bytes to w and returns the
// bytes written.
func WritePayload(w io.Writer, id storage.DatasetID, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("server: negative payload size %d", n)
	}
	block := payloadBlock(id)
	var written int64
	for written < n {
		chunk := int64(len(block))
		if rem := n - written; rem < chunk {
			chunk = rem
		}
		m, err := w.Write(block[:chunk])
		written += int64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// VerifyPayload consumes r and checks that it carries exactly the
// dataset's deterministic stream of length n. It returns the bytes read
// and the first mismatch found.
func VerifyPayload(r io.Reader, id storage.DatasetID, n int64) (int64, error) {
	block := payloadBlock(id)
	buf := make([]byte, payloadBlockSize)
	var read int64
	for {
		m, err := r.Read(buf)
		for i := 0; i < m; i++ {
			if read >= n {
				return read, fmt.Errorf("server: payload for %q longer than %d bytes", id, n)
			}
			if buf[i] != block[read%payloadBlockSize] {
				return read, fmt.Errorf("server: payload for %q corrupt at offset %d", id, read)
			}
			read++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return read, err
		}
	}
	if read != n {
		return read, fmt.Errorf("server: payload for %q truncated: %d of %d bytes", id, read, n)
	}
	return read, nil
}
