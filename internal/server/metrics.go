package server

import (
	"fmt"
	"io"
	"sync"
	"time"

	"scdn/internal/metrics"
)

// LatencyHist is a goroutine-safe wrapper around metrics.Histogram for
// request latencies. The underlying histogram keeps raw samples (exact
// quantiles); a mutex serializes Observe against quantile queries, which
// sort in place.
type LatencyHist struct {
	mu sync.Mutex
	h  metrics.Histogram
}

// Observe records one latency sample in seconds.
func (l *LatencyHist) Observe(seconds float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h.Observe(seconds)
}

// HistSummary is a point-in-time histogram digest.
type HistSummary struct {
	Count               int
	Mean, P50, P95, P99 float64
}

// Summary returns the histogram digest.
func (l *LatencyHist) Summary() HistSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	return HistSummary{
		Count: l.h.Count(),
		Mean:  l.h.Mean(),
		P50:   l.h.Quantile(0.5),
		P95:   l.h.Quantile(0.95),
		P99:   l.h.Quantile(0.99),
	}
}

// Metrics is one node's serving-plane metric set, built on the
// goroutine-safe internal/metrics primitives. Client-facing and
// peer-internal traffic are counted separately so a load generator's
// request totals can be reconciled against the cluster's exposition
// without double-counting proxy hops.
type Metrics struct {
	// ResolveRequests / ResolveMisses count POST /v1/resolve calls and
	// the subset that found no online replica.
	ResolveRequests metrics.Counter
	ResolveMisses   metrics.Counter
	// FetchRequests / FetchFailures count client-facing GET /v1/fetch
	// calls; PeerFetchRequests counts fetches arriving from another edge
	// (the internal hop of a fallback).
	FetchRequests     metrics.Counter
	FetchFailures     metrics.Counter
	PeerFetchRequests metrics.Counter
	// LocalHits: served from this node's repository. PeerHits: proxied
	// from another edge's replica. OriginFetches: proxied from the
	// dataset's origin because no other replica was reachable.
	LocalHits     metrics.Counter
	PeerHits      metrics.Counter
	OriginFetches metrics.Counter
	// PeerRetries counts fallback attempts that failed and were retried
	// with backoff.
	PeerRetries metrics.Counter
	// AuthDenied counts rejected authorizations; Reports counts
	// POST /v1/report deliveries; Logins counts issued sessions.
	AuthDenied metrics.Counter
	Reports    metrics.Counter
	Logins     metrics.Counter
	// BytesServed totals payload bytes sent to clients and peers.
	BytesServed metrics.Counter
	// RangeRequests counts fetches that carried a satisfiable Range
	// header (served as 206); RangeMultipart the subset answered as
	// multipart/byteranges (more than one part after coalescing);
	// RangeNotSatisfiable counts the 416s.
	RangeRequests       metrics.Counter
	RangeMultipart      metrics.Counter
	RangeNotSatisfiable metrics.Counter
	// PayloadCacheHits / PayloadCacheMisses count repetition-block cache
	// outcomes on locally served payloads: a hit skips the per-request
	// SHA-256 chain entirely.
	PayloadCacheHits   metrics.Counter
	PayloadCacheMisses metrics.Counter
	// Disk-backed store instrumentation. StoreDiskHits counts local
	// fetches served from the replica volume via sendfile;
	// StoreMaterializations / StoreMaterializedBytes count datasets (and
	// their bytes) written to disk from the deterministic generator;
	// StoreSpills counts pull-through streams committed to disk, and
	// StoreSpillFailures the temp-file spills that could not start or
	// commit (the serve falls back to the generated path, the fetch
	// itself still succeeds).
	StoreDiskHits          metrics.Counter
	StoreMaterializations  metrics.Counter
	StoreMaterializedBytes metrics.Counter
	StoreSpills            metrics.Counter
	StoreSpillFailures     metrics.Counter
	// Segmented large-object delivery instrumentation (segments.go).
	// SegmentedServes counts whole-dataset fetches answered from the
	// per-segment layout; SegmentFetchRequests / SegmentFetchFailures
	// count client-facing GET /v1/fetch/{id}/segments/{n} calls and
	// their failures, PeerSegmentFetchRequests the peer hops of segment
	// proxies; SegmentPulls counts verified segments adopted into the
	// local volume from peer streams (pull-through at segment
	// granularity); StoreFadviseSequential / StoreFadviseDontNeed count
	// applied page-cache hints — readahead advice on fresh segment
	// descriptors and page drops behind completed sequential serves
	// (zero on platforms without posix_fadvise).
	SegmentedServes          metrics.Counter
	SegmentFetchRequests     metrics.Counter
	SegmentFetchFailures     metrics.Counter
	PeerSegmentFetchRequests metrics.Counter
	SegmentPulls             metrics.Counter
	StoreFadviseSequential   metrics.Counter
	StoreFadviseDontNeed     metrics.Counter
	// ReportedAccesses aggregates client-side access counts delivered
	// via /v1/report (the Section V-A usage statistics).
	ReportedAccesses metrics.Counter
	// Failure-detector and repair-sweeper instrumentation (sweeper.go).
	// ProbeFailures counts failed /healthz probes; RepairSweeps counts
	// completed sweep cycles; RepairDeadMembers counts members this node
	// declared dead and deregistered; RepairReadmissions counts members
	// this node re-admitted after a successful probe;
	// RepairReplicasRestored counts replicas this node adopted to close
	// an under-replication or demand gap; RepairReadoptedReplicas counts
	// surviving local copies re-announced to the catalog after a
	// restart; RepairFailures counts repair actions that errored;
	// ReplicateRequests counts POST /v1/replicate calls received.
	ProbeFailures           metrics.Counter
	RepairSweeps            metrics.Counter
	RepairDeadMembers       metrics.Counter
	RepairReadmissions      metrics.Counter
	RepairReplicasRestored  metrics.Counter
	RepairReadoptedReplicas metrics.Counter
	RepairFailures          metrics.Counter
	ReplicateRequests       metrics.Counter
	// Churn instrumentation. ChurnKills counts hard Crash calls on this
	// node; ChurnRestarts counts re-Starts after the first;
	// ChurnUnavailable counts fetches answered 503 + Retry-After because
	// churn left a catalogued dataset with zero live holders — kept out
	// of FetchFailures so load generators can reconcile churn-caused
	// unavailability separately from real errors.
	ChurnKills       metrics.Counter
	ChurnRestarts    metrics.Counter
	ChurnUnavailable metrics.Counter
	// Ingest instrumentation (upload.go, sweeper.go). IngestUploads /
	// IngestUploadBytes count datasets (and bytes) published through
	// PUT /v1/datasets; IngestUploadExpired counts abandoned upload
	// sessions the sweeper reaped; IngestDigestRejects counts byte
	// streams refused for disagreeing with their declared or recorded
	// digest (failed uploads and corrupt peer pulls alike);
	// IngestRepairCopies / IngestRepairCopyBytes count re-replications
	// satisfied by a verified byte transfer from surviving holders, and
	// IngestRepairRegenerated those satisfied by the deterministic
	// generator — for opaque datasets the latter must stay zero.
	IngestUploads           metrics.Counter
	IngestUploadBytes       metrics.Counter
	IngestUploadExpired     metrics.Counter
	IngestDigestRejects     metrics.Counter
	IngestRepairCopies      metrics.Counter
	IngestRepairCopyBytes   metrics.Counter
	IngestRepairRegenerated metrics.Counter
	// SuspectNodes gauges how many members this node's failure detector
	// currently suspects.
	SuspectNodes metrics.Gauge
	// FetchLatency / ResolveLatency / SegmentFetchLatency are end-to-end
	// handler latencies in seconds for client-facing requests.
	FetchLatency        LatencyHist
	ResolveLatency      LatencyHist
	SegmentFetchLatency LatencyHist
}

// WriteExposition writes the node's metrics in a Prometheus-style text
// format. up is the node's uptime.
func (m *Metrics) WriteExposition(w io.Writer, up time.Duration) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("scdn_up 1\n")
	p("scdn_uptime_seconds %.3f\n", up.Seconds())
	counters := []struct {
		name string
		c    *metrics.Counter
	}{
		{"scdn_resolve_requests_total", &m.ResolveRequests},
		{"scdn_resolve_misses_total", &m.ResolveMisses},
		{"scdn_fetch_requests_total", &m.FetchRequests},
		{"scdn_fetch_failures_total", &m.FetchFailures},
		{"scdn_peer_fetch_requests_total", &m.PeerFetchRequests},
		{"scdn_local_hits_total", &m.LocalHits},
		{"scdn_peer_hits_total", &m.PeerHits},
		{"scdn_origin_fetches_total", &m.OriginFetches},
		{"scdn_peer_retries_total", &m.PeerRetries},
		{"scdn_auth_denied_total", &m.AuthDenied},
		{"scdn_reports_total", &m.Reports},
		{"scdn_logins_total", &m.Logins},
		{"scdn_bytes_served_total", &m.BytesServed},
		{"scdn_range_requests_total", &m.RangeRequests},
		{"scdn_range_multipart_total", &m.RangeMultipart},
		{"scdn_range_not_satisfiable_total", &m.RangeNotSatisfiable},
		{"scdn_payload_cache_hits_total", &m.PayloadCacheHits},
		{"scdn_payload_cache_misses_total", &m.PayloadCacheMisses},
		{"scdn_store_disk_hits_total", &m.StoreDiskHits},
		{"scdn_store_materialize_total", &m.StoreMaterializations},
		{"scdn_store_materialize_bytes_total", &m.StoreMaterializedBytes},
		{"scdn_store_spills_total", &m.StoreSpills},
		{"scdn_store_spill_failures_total", &m.StoreSpillFailures},
		{"scdn_segmented_serves_total", &m.SegmentedServes},
		{"scdn_segment_fetch_requests_total", &m.SegmentFetchRequests},
		{"scdn_segment_fetch_failures_total", &m.SegmentFetchFailures},
		{"scdn_peer_segment_fetch_requests_total", &m.PeerSegmentFetchRequests},
		{"scdn_segment_pulls_total", &m.SegmentPulls},
		{"scdn_store_fadvise_sequential_total", &m.StoreFadviseSequential},
		{"scdn_store_fadvise_dontneed_total", &m.StoreFadviseDontNeed},
		{"scdn_reported_accesses_total", &m.ReportedAccesses},
		{"scdn_probe_failures_total", &m.ProbeFailures},
		{"scdn_repair_sweeps_total", &m.RepairSweeps},
		{"scdn_repair_dead_members_total", &m.RepairDeadMembers},
		{"scdn_repair_readmissions_total", &m.RepairReadmissions},
		{"scdn_repair_replicas_restored_total", &m.RepairReplicasRestored},
		{"scdn_repair_readopted_replicas_total", &m.RepairReadoptedReplicas},
		{"scdn_repair_failures_total", &m.RepairFailures},
		{"scdn_replicate_requests_total", &m.ReplicateRequests},
		{"scdn_churn_kills_total", &m.ChurnKills},
		{"scdn_churn_restarts_total", &m.ChurnRestarts},
		{"scdn_churn_unavailable_total", &m.ChurnUnavailable},
		{"scdn_ingest_uploads_total", &m.IngestUploads},
		{"scdn_ingest_upload_bytes_total", &m.IngestUploadBytes},
		{"scdn_ingest_upload_expired_total", &m.IngestUploadExpired},
		{"scdn_ingest_digest_rejects_total", &m.IngestDigestRejects},
		{"scdn_ingest_repair_copies_total", &m.IngestRepairCopies},
		{"scdn_ingest_repair_copy_bytes_total", &m.IngestRepairCopyBytes},
		{"scdn_ingest_repair_regenerated_total", &m.IngestRepairRegenerated},
	}
	for _, c := range counters {
		p("%s %d\n", c.name, c.c.Value())
	}
	p("scdn_suspect_nodes %.0f\n", m.SuspectNodes.Value())
	hists := []struct {
		name string
		h    *LatencyHist
	}{
		{"scdn_fetch_latency_seconds", &m.FetchLatency},
		{"scdn_resolve_latency_seconds", &m.ResolveLatency},
		{"scdn_segment_fetch_latency_seconds", &m.SegmentFetchLatency},
	}
	for _, h := range hists {
		s := h.h.Summary()
		p("%s{quantile=\"0.5\"} %.6f\n", h.name, s.P50)
		p("%s{quantile=\"0.95\"} %.6f\n", h.name, s.P95)
		p("%s{quantile=\"0.99\"} %.6f\n", h.name, s.P99)
		p("%s_mean %.6f\n", h.name, s.Mean)
		p("%s_count %d\n", h.name, s.Count)
	}
	return err
}
