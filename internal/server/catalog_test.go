package server

import (
	"fmt"
	"sync"
	"testing"

	"scdn/internal/allocation"
	"scdn/internal/storage"
)

// catalogFixture builds a sharded catalog over a registry with members
// nodes 1..members (all online, sites 0..members-1) and datasets
// ds-000..ds-(datasets-1) owned round-robin.
func catalogFixture(t testing.TB, members, servers, shards, datasets int) (*Catalog, []storage.DatasetID) {
	t.Helper()
	reg := NewRegistry()
	for i := 0; i < members; i++ {
		reg.Register(Member{Node: allocation.NodeID(i + 1), Site: i, Online: true})
	}
	cat, err := NewCatalogSharded(servers, reg, shards)
	if err != nil {
		t.Fatal(err)
	}
	var ids []storage.DatasetID
	for d := 0; d < datasets; d++ {
		id := storage.DatasetID(fmt.Sprintf("ds-%03d", d))
		origin := allocation.NodeID(d%members + 1)
		if err := cat.RegisterDataset(id, origin, 1024); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return cat, ids
}

func TestCatalogShardCountRounding(t *testing.T) {
	reg := NewRegistry()
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		cat, err := NewCatalogSharded(1, reg, tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if got := cat.ShardCount(); got != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	cat, err := NewCatalog(2, reg)
	if err != nil {
		t.Fatal(err)
	}
	if cat.ShardCount() != DefaultCatalogShards {
		t.Fatalf("default shards = %d", cat.ShardCount())
	}
}

func TestCatalogShardedSemantics(t *testing.T) {
	cat, ids := catalogFixture(t, 4, 2, 8, 40)

	// Every dataset resolves regardless of which shard it hashed into.
	for _, id := range ids {
		rep, ok, err := cat.Resolve(id, 2)
		if err != nil || !ok {
			t.Fatalf("resolve %s = %v ok=%v", id, err, ok)
		}
		origin, err := cat.Origin(id)
		if err != nil || rep.Node != origin {
			t.Fatalf("resolve %s → node %d, origin %d (err %v)", id, rep.Node, origin, err)
		}
		if n, err := cat.DatasetBytes(id); err != nil || n != 1024 {
			t.Fatalf("bytes %s = %d, %v", id, n, err)
		}
	}

	// Datasets merges across shards, sorted, complete.
	all, err := cat.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ids) {
		t.Fatalf("datasets = %d, want %d", len(all), len(ids))
	}
	for i, id := range all {
		if id != ids[i] {
			t.Fatalf("datasets[%d] = %s, want %s (merged order broken)", i, id, ids[i])
		}
	}

	// Stats aggregates lookups across shards: one per resolve above.
	lookups, resolved, _ := cat.Stats()
	if lookups != uint64(len(ids)) || resolved != uint64(len(ids)) {
		t.Fatalf("stats = %d/%d, want %d/%d", lookups, resolved, len(ids), len(ids))
	}

	// Replica bookkeeping routes to the owning shard.
	if err := cat.AddReplica(ids[0], 3, 0); err != nil {
		t.Fatal(err)
	}
	if got := cat.ReplicaCount(ids[0]); got != 2 {
		t.Fatalf("replica count = %d, want 2", got)
	}
	if err := cat.RemoveReplica(ids[0], 3); err != nil {
		t.Fatal(err)
	}
	if got := cat.ReplicaCount(ids[0]); got != 1 {
		t.Fatalf("replica count after removal = %d, want 1", got)
	}
}

// TestCatalogConcurrentAccess hammers overlapping datasets with resolves,
// replica add/remove cycles, and read-side scans from many goroutines.
// Run with -race (make race covers this package) — it is the regression
// gate for the sharded catalog's locking.
func TestCatalogConcurrentAccess(t *testing.T) {
	const (
		goroutines = 16
		iters      = 300
	)
	cat, ids := catalogFixture(t, 8, 2, 8, 12)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Writers get a node of their own so AddReplica dup errors stay
			// deterministic per goroutine; all goroutines overlap on ids.
			node := allocation.NodeID(g%8 + 1)
			for i := 0; i < iters; i++ {
				id := ids[(g+i)%len(ids)]
				switch i % 5 {
				case 0:
					if _, _, err := cat.Resolve(id, node); err != nil {
						t.Errorf("resolve: %v", err)
						return
					}
				case 1:
					// Add/remove may race with another goroutine using the
					// same node: dup/missing errors are expected outcomes,
					// only data races are failures.
					_ = cat.AddReplica(id, node, 0)
				case 2:
					_ = cat.RemoveReplica(id, node)
				case 3:
					if _, err := cat.Replicas(id); err != nil {
						t.Errorf("replicas: %v", err)
						return
					}
					if _, err := cat.Origin(id); err != nil {
						t.Errorf("origin: %v", err)
						return
					}
					if _, err := cat.DatasetBytes(id); err != nil {
						t.Errorf("bytes: %v", err)
						return
					}
				case 4:
					if _, err := cat.Datasets(); err != nil {
						t.Errorf("datasets: %v", err)
						return
					}
					cat.Stats()
					cat.ReplicaCount(id)
				}
			}
		}(g)
	}
	wg.Wait()

	// The catalog must still be coherent: every dataset resolves and the
	// origin replica survived every remove cycle.
	for _, id := range ids {
		if _, ok, err := cat.Resolve(id, 1); err != nil || !ok {
			t.Fatalf("post-race resolve %s = ok=%v err=%v", id, ok, err)
		}
		if cat.ReplicaCount(id) < 1 {
			t.Fatalf("dataset %s lost its origin replica", id)
		}
	}
	lookups, _, _ := cat.Stats()
	if lookups == 0 {
		t.Fatal("no lookups recorded")
	}
}

// TestCatalogConcurrentRegister checks racing registrations of disjoint
// and duplicate datasets.
func TestCatalogConcurrentRegister(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 4; i++ {
		reg.Register(Member{Node: allocation.NodeID(i + 1), Site: i, Online: true})
	}
	cat, err := NewCatalogSharded(2, reg, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	var dups sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for d := 0; d < n; d++ {
				id := storage.DatasetID(fmt.Sprintf("reg-%03d", d))
				if err := cat.RegisterDataset(id, allocation.NodeID(d%4+1), 64); err != nil {
					dups.Store(fmt.Sprintf("%d/%s", g, id), true) // expected for losers
				}
			}
		}(g)
	}
	wg.Wait()
	all, err := cat.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("registered %d datasets, want %d", len(all), n)
	}
}
