package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scdn/internal/allocation"
)

// Member is one participant the serving plane knows about: an edge node
// (BaseURL set) or a pure client (BaseURL empty). Both occupy the same
// identifier space — in the paper every participant is a researcher who
// may both consume data and contribute an edge repository.
type Member struct {
	Node allocation.NodeID
	Site int
	// BaseURL is the member's HTTP endpoint ("http://host:port"), empty
	// for client-only members.
	BaseURL string
	Online  bool
}

// Registry is the live-membership directory of the serving plane. It
// implements allocation.Directory, so the catalog's replica selection
// (nearest online holder) runs against real node liveness. Safe for
// concurrent use.
//
// Reads are lock-free: membership lives in an immutable map snapshot
// behind an atomic pointer, and writers publish a fresh copy. Every
// catalog resolve performs several directory lookups (requester site,
// holder liveness, RTT), so a shared reader lock here would serialize
// all catalog shards on one contended cache line; copy-on-write keeps
// the read path scaling with cores while membership churn — rare next
// to lookups — pays the copy.
type Registry struct {
	writeMu sync.Mutex // serializes writers; readers never take it
	members atomic.Pointer[map[allocation.NodeID]Member]
	// RTTFloor and RTTStep parameterize the inter-site latency estimate
	// used for replica selection: floor + step × |siteA − siteB|. Set
	// them before the registry is shared; they are read without locking.
	RTTFloor time.Duration
	RTTStep  time.Duration
}

// NewRegistry returns an empty registry with default RTT parameters.
func NewRegistry() *Registry {
	r := &Registry{
		RTTFloor: time.Millisecond,
		RTTStep:  2 * time.Millisecond,
	}
	empty := make(map[allocation.NodeID]Member)
	r.members.Store(&empty)
	return r
}

// snapshot returns the current immutable membership map. Callers must
// not mutate it.
func (r *Registry) snapshot() map[allocation.NodeID]Member {
	return *r.members.Load()
}

// update publishes a new snapshot produced by applying fn to a copy of
// the current membership.
func (r *Registry) update(fn func(map[allocation.NodeID]Member)) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	cur := r.snapshot()
	next := make(map[allocation.NodeID]Member, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	fn(next)
	r.members.Store(&next)
}

// Register adds or replaces a member record.
func (r *Registry) Register(m Member) {
	r.update(func(members map[allocation.NodeID]Member) {
		members[m.Node] = m
	})
}

// SetOnline flips a member's liveness (no-op for unknown members).
func (r *Registry) SetOnline(node allocation.NodeID, online bool) {
	r.update(func(members map[allocation.NodeID]Member) {
		if m, ok := members[node]; ok {
			m.Online = online
			members[node] = m
		}
	})
}

// SetBaseURL records a member's HTTP endpoint once it starts listening.
func (r *Registry) SetBaseURL(node allocation.NodeID, url string) {
	r.update(func(members map[allocation.NodeID]Member) {
		if m, ok := members[node]; ok {
			m.BaseURL = url
			members[node] = m
		}
	})
}

// BaseURL returns a member's endpoint.
func (r *Registry) BaseURL(node allocation.NodeID) (string, bool) {
	m, ok := r.snapshot()[node]
	if !ok || m.BaseURL == "" {
		return "", false
	}
	return m.BaseURL, true
}

// Members returns all records sorted by node ID.
func (r *Registry) Members() []Member {
	snap := r.snapshot()
	out := make([]Member, 0, len(snap))
	for _, m := range snap {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// SiteOf implements allocation.Directory.
func (r *Registry) SiteOf(node allocation.NodeID) (int, bool) {
	m, ok := r.snapshot()[node]
	return m.Site, ok
}

// Online implements allocation.Directory.
func (r *Registry) Online(node allocation.NodeID) bool {
	m, ok := r.snapshot()[node]
	return ok && m.Online
}

// RTT implements allocation.Directory with a distance-proportional
// estimate: co-located sites pay only the floor.
func (r *Registry) RTT(siteA, siteB int) (time.Duration, error) {
	d := siteA - siteB
	if d < 0 {
		d = -d
	}
	return r.RTTFloor + time.Duration(d)*r.RTTStep, nil
}

// interface check
var _ allocation.Directory = (*Registry)(nil)

// ErrNoEndpoint reports a member without a serving endpoint.
var ErrNoEndpoint = fmt.Errorf("server: member has no endpoint")
