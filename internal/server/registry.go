package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scdn/internal/allocation"
)

// Member is one participant the serving plane knows about: an edge node
// (BaseURL set) or a pure client (BaseURL empty). Both occupy the same
// identifier space — in the paper every participant is a researcher who
// may both consume data and contribute an edge repository.
type Member struct {
	Node allocation.NodeID
	Site int
	// BaseURL is the member's HTTP endpoint ("http://host:port"), empty
	// for client-only members.
	BaseURL string
	Online  bool
}

// Registry is the live-membership directory of the serving plane. It
// implements allocation.Directory, so the catalog's replica selection
// (nearest online holder) runs against real node liveness. Safe for
// concurrent use.
type Registry struct {
	mu      sync.RWMutex
	members map[allocation.NodeID]Member
	// RTTFloor and RTTStep parameterize the inter-site latency estimate
	// used for replica selection: floor + step × |siteA − siteB|.
	RTTFloor time.Duration
	RTTStep  time.Duration
}

// NewRegistry returns an empty registry with default RTT parameters.
func NewRegistry() *Registry {
	return &Registry{
		members:  make(map[allocation.NodeID]Member),
		RTTFloor: time.Millisecond,
		RTTStep:  2 * time.Millisecond,
	}
}

// Register adds or replaces a member record.
func (r *Registry) Register(m Member) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.members[m.Node] = m
}

// SetOnline flips a member's liveness (no-op for unknown members).
func (r *Registry) SetOnline(node allocation.NodeID, online bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[node]; ok {
		m.Online = online
		r.members[node] = m
	}
}

// SetBaseURL records a member's HTTP endpoint once it starts listening.
func (r *Registry) SetBaseURL(node allocation.NodeID, url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[node]; ok {
		m.BaseURL = url
		r.members[node] = m
	}
}

// BaseURL returns a member's endpoint.
func (r *Registry) BaseURL(node allocation.NodeID) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[node]
	if !ok || m.BaseURL == "" {
		return "", false
	}
	return m.BaseURL, true
}

// Members returns all records sorted by node ID.
func (r *Registry) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// SiteOf implements allocation.Directory.
func (r *Registry) SiteOf(node allocation.NodeID) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[node]
	return m.Site, ok
}

// Online implements allocation.Directory.
func (r *Registry) Online(node allocation.NodeID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[node]
	return ok && m.Online
}

// RTT implements allocation.Directory with a distance-proportional
// estimate: co-located sites pay only the floor.
func (r *Registry) RTT(siteA, siteB int) (time.Duration, error) {
	d := siteA - siteB
	if d < 0 {
		d = -d
	}
	r.mu.RLock()
	floor, step := r.RTTFloor, r.RTTStep
	r.mu.RUnlock()
	return floor + time.Duration(d)*step, nil
}

// interface check
var _ allocation.Directory = (*Registry)(nil)

// ErrNoEndpoint reports a member without a serving endpoint.
var ErrNoEndpoint = fmt.Errorf("server: member has no endpoint")
