package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/storage"
)

// DefaultCatalogShards is the shard count NewCatalog uses. Sixteen shards
// keep contention negligible well past typical core counts while the
// per-shard memory overhead (one small allocation cluster each) stays
// trivial.
const DefaultCatalogShards = 16

// catalogShard is one lock domain of the catalog: a full allocation
// cluster owning the datasets that hash into this shard. Resolve mutates
// demand counters and lookup statistics inside the allocation package, so
// it takes the write lock; the pure reads (Replicas, DatasetBytes,
// Origin, Datasets, ReplicaCount, Stats) share an RLock — the allocation
// cluster's round-robin read cursor is atomic precisely so these can
// overlap.
type catalogShard struct {
	mu      sync.RWMutex
	cluster *allocation.Cluster
}

// Catalog is the serving plane's view of the allocation-server cluster.
// The allocation package is deliberately single-threaded (the simulator
// owns its own event loop); here every HTTP request may touch the catalog
// concurrently. Datasets are spread across power-of-two shards by an
// FNV-1a hash of the dataset ID, so resolves and fetches of distinct
// datasets never contend on a lock — the catalog scales with cores
// instead of serializing the whole delivery plane behind one mutex.
type Catalog struct {
	shards []*catalogShard
	mask   uint32
}

// NewCatalog builds a sharded catalog over n allocation servers per
// shard, sharing the registry as their directory, with
// DefaultCatalogShards shards.
func NewCatalog(n int, dir allocation.Directory) (*Catalog, error) {
	return NewCatalogSharded(n, dir, DefaultCatalogShards)
}

// NewCatalogSharded builds a catalog with an explicit shard count, which
// is rounded up to the next power of two (minimum 1) so shard selection
// is a mask, not a modulo.
func NewCatalogSharded(n int, dir allocation.Directory, shards int) (*Catalog, error) {
	if shards < 1 {
		shards = 1
	}
	pow2 := 1
	for pow2 < shards {
		pow2 <<= 1
	}
	c := &Catalog{mask: uint32(pow2 - 1)}
	for i := 0; i < pow2; i++ {
		cl, err := allocation.NewCluster(n, dir)
		if err != nil {
			return nil, fmt.Errorf("server: catalog shard %d: %w", i, err)
		}
		c.shards = append(c.shards, &catalogShard{cluster: cl})
	}
	return c, nil
}

// ShardCount returns the catalog's shard count.
func (c *Catalog) ShardCount() int { return len(c.shards) }

// shard picks a dataset's lock domain by FNV-1a hash. The hash is
// inlined rather than built on hash/fnv so the hot path performs no
// allocation and no interface dispatch.
func (c *Catalog) shard(id storage.DatasetID) *catalogShard {
	h := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619 // FNV prime
	}
	return c.shards[h&c.mask]
}

// RegisterDataset catalogs a dataset with its origin node and size.
func (c *Catalog) RegisterDataset(id storage.DatasetID, origin allocation.NodeID, bytes int64) error {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster.RegisterDataset(id, origin, bytes)
}

// AddReplica records a new replica holder.
func (c *Catalog) AddReplica(id storage.DatasetID, node allocation.NodeID, at time.Duration) error {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster.AddReplica(id, node, at)
}

// RemoveReplica deletes a replica record.
func (c *Catalog) RemoveReplica(id storage.DatasetID, node allocation.NodeID) error {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster.RemoveReplica(id, node)
}

// Resolve picks the best online replica for a requester. It takes the
// shard's write lock: resolution records demand on every cluster member.
func (c *Catalog) Resolve(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error) {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster.Resolve(id, requester)
}

// Replicas lists a dataset's replica holders.
func (c *Catalog) Replicas(id storage.DatasetID) ([]allocation.Replica, error) {
	s := c.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cluster.Replicas(id)
}

// DatasetBytes returns a dataset's size.
func (c *Catalog) DatasetBytes(id storage.DatasetID) (int64, error) {
	s := c.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cluster.DatasetBytes(id)
}

// Origin returns a dataset's origin node.
func (c *Catalog) Origin(id storage.DatasetID) (allocation.NodeID, error) {
	s := c.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cluster.Origin(id)
}

// Datasets lists all catalogued dataset IDs, merged across shards and
// sorted ascending.
func (c *Catalog) Datasets() ([]storage.DatasetID, error) {
	var out []storage.DatasetID
	for _, s := range c.shards {
		s.mu.RLock()
		ids, err := s.cluster.Datasets()
		s.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ReplicaCount returns a dataset's replica count.
func (c *Catalog) ReplicaCount(id storage.DatasetID) int {
	s := c.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cluster.ReplicaCount(id)
}

// MaintenanceSweep merges hot-dataset recommendations across every
// shard, sorted by dataset ID. The sweep is read-only (shared lock):
// demand counters are consumed only by AckSweep, so a repairer that dies
// between sweeping and placing drops no work.
func (c *Catalog) MaintenanceSweep() []allocation.HotDataset {
	var out []allocation.HotDataset
	for _, s := range c.shards {
		s.mu.RLock()
		hot, err := s.cluster.MaintenanceSweep()
		s.mu.RUnlock()
		if err == nil {
			out = append(out, hot...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AckSweep acknowledges handled recommendations, routing each to its
// dataset's shard under the write lock.
func (c *Catalog) AckSweep(hot []allocation.HotDataset) {
	for _, h := range hot {
		s := c.shard(h.ID)
		s.mu.Lock()
		s.cluster.AckSweep([]allocation.HotDataset{h})
		s.mu.Unlock()
	}
}

// SetPolicy applies replica-budget and demand-threshold settings to
// every shard's allocation cluster.
func (c *Catalog) SetPolicy(maxReplicas int, demandThreshold uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		s.cluster.SetPolicy(maxReplicas, demandThreshold)
		s.mu.Unlock()
	}
}

// Stats aggregates lookup statistics across every shard's members.
func (c *Catalog) Stats() (lookups, resolved, unresolved uint64) {
	for _, s := range c.shards {
		s.mu.RLock()
		l, r, u := s.cluster.Stats()
		s.mu.RUnlock()
		lookups += l
		resolved += r
		unresolved += u
	}
	return
}
