package server

import (
	"sync"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/storage"
)

// Catalog is the serving plane's view of the allocation-server cluster.
// The allocation package is deliberately single-threaded (the simulator
// owns its own event loop); here every HTTP request may touch the catalog
// concurrently, so one mutex serializes access. Resolution is cheap
// (sorted scan over a replica set), so a single lock is not the
// bottleneck — the network is.
type Catalog struct {
	mu      sync.Mutex
	cluster *allocation.Cluster
}

// NewCatalog builds a locked catalog over n allocation servers sharing
// the registry as their directory.
func NewCatalog(n int, dir allocation.Directory) (*Catalog, error) {
	cl, err := allocation.NewCluster(n, dir)
	if err != nil {
		return nil, err
	}
	return &Catalog{cluster: cl}, nil
}

// RegisterDataset catalogs a dataset with its origin node and size.
func (c *Catalog) RegisterDataset(id storage.DatasetID, origin allocation.NodeID, bytes int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.RegisterDataset(id, origin, bytes)
}

// AddReplica records a new replica holder.
func (c *Catalog) AddReplica(id storage.DatasetID, node allocation.NodeID, at time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.AddReplica(id, node, at)
}

// RemoveReplica deletes a replica record.
func (c *Catalog) RemoveReplica(id storage.DatasetID, node allocation.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.RemoveReplica(id, node)
}

// Resolve picks the best online replica for a requester.
func (c *Catalog) Resolve(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Resolve(id, requester)
}

// Replicas lists a dataset's replica holders.
func (c *Catalog) Replicas(id storage.DatasetID) ([]allocation.Replica, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Replicas(id)
}

// DatasetBytes returns a dataset's size.
func (c *Catalog) DatasetBytes(id storage.DatasetID) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.DatasetBytes(id)
}

// Origin returns a dataset's origin node.
func (c *Catalog) Origin(id storage.DatasetID) (allocation.NodeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Origin(id)
}

// Datasets lists all catalogued dataset IDs.
func (c *Catalog) Datasets() ([]storage.DatasetID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Datasets()
}

// ReplicaCount returns a dataset's replica count.
func (c *Catalog) ReplicaCount(id storage.DatasetID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.ReplicaCount(id)
}

// Stats aggregates lookup statistics across the cluster's members.
func (c *Catalog) Stats() (lookups, resolved, unresolved uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cluster.Stats()
}
