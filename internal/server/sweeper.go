package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/cdnclient"
	"scdn/internal/ingest"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// SweeperConfig tunes a node's background repair sweeper: the loop that
// probes fellow members, deregisters the dead, re-replicates
// under-replicated datasets onto survivors, and re-admits members that
// come back. Defaults are deliberately conservative on loopback: a
// member is declared dead only after FailThreshold consecutive probes
// each time out at ProbeTimeout, so a node that is merely slow is
// skipped as a suspect (fetch-path candidate ordering) long before it is
// deregistered, and a spurious deregistration heals itself on the next
// successful probe.
type SweeperConfig struct {
	// Disabled turns the sweeper off entirely (tests that want full
	// control over membership).
	Disabled bool
	// Interval is the base sweep period; each cycle adds up to 50%
	// deterministic per-node jitter so a cluster's sweepers do not beat
	// in phase. Default 500ms.
	Interval time.Duration
	// ProbeTimeout bounds one /healthz probe. Default 1s.
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-failure count at which a member
	// is declared dead and deregistered. Default 3.
	FailThreshold int
	// ReplicationTarget is the live-copy floor the repair phase restores
	// per dataset, capped by how many members are actually alive.
	// Default 2.
	ReplicationTarget int
}

func (c *SweeperConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReplicationTarget <= 0 {
		c.ReplicationTarget = 2
	}
}

// runSweeper is the node's repair loop. It exits when ctx is canceled
// (Stop/Crash) and signals done so teardown can wait for it — a stopped
// node must not keep probing peers from the grave.
func (n *Node) runSweeper(ctx context.Context, done chan struct{}) {
	defer close(done)
	// Deterministic per-node jitter: nodes de-phase from each other, runs
	// stay reproducible.
	rng := rand.New(rand.NewSource(int64(n.cfg.Node)))
	for {
		jitter := time.Duration(rng.Int63n(int64(n.cfg.Sweep.Interval)/2 + 1))
		select {
		case <-ctx.Done():
			return
		case <-time.After(n.cfg.Sweep.Interval + jitter):
		}
		n.sweepOnce(ctx)
	}
}

// sweepOnce runs one repair cycle: probe membership, expire abandoned
// upload sessions, repair replication, publish detector state.
func (n *Node) sweepOnce(ctx context.Context) {
	n.Metrics.RepairSweeps.Inc()
	n.probeMembers(ctx)
	if ctx.Err() != nil {
		return
	}
	n.expireUploads()
	n.repairReplication(ctx)
	n.Metrics.SuspectNodes.Set(float64(n.suspects.count()))
}

// probeMembers health-checks every fellow edge (members with an HTTP
// endpoint). A failed probe marks the member suspect; FailThreshold
// consecutive failures deregister it from the registry so resolution
// stops routing clients to a corpse. A successful probe clears suspicion
// and re-admits a member that was (perhaps spuriously) deregistered —
// restarted nodes also re-admit themselves on Start, so this path covers
// false positives and members that recover in place.
func (n *Node) probeMembers(ctx context.Context) {
	for _, m := range n.registry.Members() {
		if m.Node == n.cfg.Node || m.BaseURL == "" {
			continue
		}
		if ctx.Err() != nil {
			return // stopping: a canceled probe is not evidence of death
		}
		if err := n.probe(ctx, m.BaseURL); err != nil {
			if ctx.Err() != nil {
				return
			}
			n.Metrics.ProbeFailures.Inc()
			fails := n.suspects.noteFailure(m.Node)
			if fails == n.cfg.Sweep.FailThreshold && m.Online {
				n.registry.SetOnline(m.Node, false)
				n.Metrics.RepairDeadMembers.Inc()
				n.purgeDeadMember(m.Node)
			}
			continue
		}
		n.suspects.noteSuccess(m.Node)
		if !n.registry.Online(m.Node) {
			n.registry.SetOnline(m.Node, true)
			n.Metrics.RepairReadmissions.Inc()
		}
	}
}

// purgeDeadMember removes a dead member's replica records from the
// catalog so the slots free up for repair (MaxReplicas must not fill
// with corpses). Origin records survive — the allocation layer refuses
// to remove an owner's copy — which is exactly right: the owner's data
// comes back with the owner, and readoptReplicas re-announces whatever
// a restarted member still holds on disk.
func (n *Node) purgeDeadMember(dead allocation.NodeID) {
	ids, err := n.catalog.Datasets()
	if err != nil {
		return
	}
	for _, id := range ids {
		reps, err := n.catalog.Replicas(id)
		if err != nil {
			continue
		}
		for _, r := range reps {
			if r.Node == dead {
				// Errors (origin copy, racing purge) are expected outcomes.
				_ = n.catalog.RemoveReplica(id, dead)
				break
			}
		}
	}
}

// probe issues one bounded /healthz request.
func (n *Node) probe(ctx context.Context, base string) error {
	pctx, cancel := context.WithTimeout(ctx, n.cfg.Sweep.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	drainBody(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: healthz returned %s", resp.Status)
	}
	return nil
}

// repairReplication restores every dataset's live-copy floor after
// members die, and acts on the catalog's demand recommendations
// (two-phase: sweep, place, then acknowledge — a sweeper that dies
// mid-repair drops no work, the next cycle sees the same demand). Each
// node repairs onto itself first — no coordination needed, AddReplica
// deduplicates racing repairers — and asks one surviving non-holder
// peer (POST /v1/replicate) when it already holds the data.
func (n *Node) repairReplication(ctx context.Context) {
	peers := n.livePeers()
	// Live copies can't exceed live members; don't chase an impossible
	// floor while most of the cluster is down.
	target := n.cfg.Sweep.ReplicationTarget
	if alive := len(peers) + 1; alive < target { // +1: this node
		target = alive
	}
	ids, err := n.catalog.Datasets()
	if err != nil {
		return
	}
	for _, id := range ids {
		if ctx.Err() != nil {
			return
		}
		n.repairDataset(ctx, id, target, peers)
	}
	// Demand-driven placement rides the same loop: hot datasets get one
	// more replica here (this node volunteering), then the observed
	// demand is acknowledged.
	hot := n.catalog.MaintenanceSweep()
	var handled []allocation.HotDataset
	for _, h := range hot {
		if ctx.Err() != nil {
			break
		}
		if n.replicateLocal(ctx, h.ID) {
			handled = append(handled, h)
		}
	}
	n.catalog.AckSweep(handled)
}

// livePeers lists fellow edges currently believed alive: online in the
// registry, not suspect, with an endpoint.
func (n *Node) livePeers() []Member {
	var out []Member
	for _, m := range n.registry.Members() {
		if m.Node == n.cfg.Node || m.BaseURL == "" || !m.Online || n.suspects.isSuspect(m.Node) {
			continue
		}
		out = append(out, m)
	}
	return out
}

// repairDataset brings one dataset back to the live-copy floor.
func (n *Node) repairDataset(ctx context.Context, id storage.DatasetID, target int, peers []Member) {
	reps, err := n.catalog.Replicas(id)
	if err != nil {
		return
	}
	holders := make(map[allocation.NodeID]bool, len(reps))
	live := 0
	for _, r := range reps {
		holders[r.Node] = true
		if n.registry.Online(r.Node) && !n.suspects.isSuspect(r.Node) {
			live++
		}
	}
	if live >= target {
		return
	}
	need := target - live
	if !holders[n.cfg.Node] {
		if n.replicateLocal(ctx, id) {
			need--
		}
	}
	for _, m := range peers {
		if need <= 0 {
			return
		}
		if holders[m.Node] {
			continue
		}
		if n.requestPeerReplica(ctx, m.BaseURL, id) {
			need--
		}
	}
}

// replicateLocal restores a copy of the dataset on this node and
// announces it to the catalog. Seeded datasets re-materialize through
// the deterministic generator; opaque (uploaded) datasets have no
// generator, so their repair is a real byte transfer — a striped,
// manifest-verified range download from surviving holders
// (replicateByCopy). Reports whether this node now newly counts as a
// holder; losing the AddReplica race to another repairer is a normal
// outcome, not a failure.
func (n *Node) replicateLocal(ctx context.Context, id storage.DatasetID) bool {
	if man, ok := n.manifests.Get(id); ok && man.Opaque {
		return n.replicateByCopy(ctx, id, man)
	}
	size, err := n.catalog.DatasetBytes(id)
	if err != nil {
		return false
	}
	n.repoMu.Lock()
	held := n.repo.HasLocal(id)
	if !held {
		err = n.repo.StoreReplica(id, size, n.now())
	}
	n.repoMu.Unlock()
	if err != nil {
		n.Metrics.RepairFailures.Inc()
		return false
	}
	if n.vol != nil {
		// Best effort: if the disk is full the generated path still
		// serves the bytes, so the replica is real either way.
		_ = n.materialize(id, size)
	}
	if err := n.catalog.AddReplica(id, n.cfg.Node, n.now()); err != nil {
		return false // already announced (origin copy or racing repairer)
	}
	n.Metrics.RepairReplicasRestored.Inc()
	n.Metrics.IngestRepairRegenerated.Inc()
	return true
}

// replicateByCopy restores an opaque dataset's replica by moving real
// bytes: a parallel range download from the surviving holders, each
// stripe digest-verified against the manifest in-stream, spilled to the
// replica volume, size-checked, and only then committed and announced.
// A corrupt or short transfer leaves no state.
func (n *Node) replicateByCopy(ctx context.Context, id storage.DatasetID, man *ingest.Manifest) bool {
	if n.vol == nil {
		return false // opaque bytes only live as real files
	}
	reps, err := n.catalog.Replicas(id)
	if err != nil {
		return false
	}
	var eps []string
	for _, rep := range reps {
		if rep.Node == n.cfg.Node || !n.registry.Online(rep.Node) || n.suspects.isSuspect(rep.Node) {
			continue
		}
		if u, ok := n.registry.BaseURL(rep.Node); ok {
			eps = append(eps, u)
		}
	}
	if len(eps) == 0 {
		return false // nobody alive to copy from; next sweep retries
	}
	tok, err := n.auth.Login(socialnet.UserID(n.cfg.Node))
	if err != nil {
		n.Metrics.RepairFailures.Inc()
		return false
	}
	sp, err := n.vol.NewSpill(id)
	if err != nil {
		n.Metrics.StoreSpillFailures.Inc()
		return false
	}
	stripes := len(eps)
	if stripes > repairCopyStripes {
		stripes = repairCopyStripes
	}
	res, err := cdnclient.Download(ctx, cdnclient.TransferOptions{
		Client: n.client, Endpoints: eps, Token: string(tok), Stripes: stripes,
	}, man, sp)
	if err != nil {
		sp.Abort()
		if ctx.Err() == nil {
			n.Metrics.RepairFailures.Inc()
		}
		return false
	}
	// In-stream verification covered the wire; CommitVerified's stat
	// check covers the file length the stripes actually produced.
	if err := sp.CommitVerified(man.Size, nil, false); err != nil {
		n.Metrics.RepairFailures.Inc()
		return false
	}
	n.repoMu.Lock()
	if !n.repo.HasLocal(id) {
		err = n.repo.StoreReplica(id, man.Size, n.now())
	}
	n.repoMu.Unlock()
	if err != nil {
		n.Metrics.RepairFailures.Inc()
		n.vol.Remove(id)
		return false
	}
	n.Metrics.IngestRepairCopies.Inc()
	n.Metrics.IngestRepairCopyBytes.Add(uint64(res.Bytes))
	if err := n.catalog.AddReplica(id, n.cfg.Node, n.now()); err != nil {
		return false // already announced (racing repairer); the bytes stay
	}
	n.Metrics.RepairReplicasRestored.Inc()
	return true
}

// repairCopyStripes caps the parallel range fan-out of one repair copy.
const repairCopyStripes = 4

// requestPeerReplica asks a surviving peer to adopt a replica. The
// sweeper authenticates as its node's own platform user, so the peer
// authorizes the request exactly like any client's.
func (n *Node) requestPeerReplica(ctx context.Context, base string, id storage.DatasetID) bool {
	tok, err := n.auth.Login(socialnet.UserID(n.cfg.Node))
	if err != nil {
		n.Metrics.RepairFailures.Inc()
		return false
	}
	body, err := json.Marshal(ReplicateRequest{Dataset: string(id)})
	if err != nil {
		return false
	}
	rctx, cancel := context.WithTimeout(ctx, n.cfg.Sweep.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		base+"/v1/replicate", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+string(tok))
	resp, err := n.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			n.Metrics.RepairFailures.Inc()
		}
		return false
	}
	defer resp.Body.Close()
	var rr ReplicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil || resp.StatusCode != http.StatusOK {
		drainBody(resp.Body)
		if ctx.Err() == nil {
			n.Metrics.RepairFailures.Inc()
		}
		return false
	}
	// The adopting peer counts the restore in its own metrics
	// (replicateLocal); here only success matters.
	return rr.Adopted || rr.Already
}
