//go:build race

package server

// raceEnabled reports whether the race detector is compiled in; the
// allocation-budget tests skip under -race because instrumentation
// allocates on paths that are allocation-free in production builds.
const raceEnabled = true
