package server

import (
	"io"
	"mime/multipart"
	"net/http"
	"strconv"
	"sync"
)

// fetchScratch is the pooled per-request state of the fetch hot path.
// Everything a warm serve would otherwise allocate lives here: the
// one-element header-value arrays the response header map aliases, the
// memoized Content-Length / Content-Range strings (dataset sizes and
// stripe plans repeat, so the steady state re-renders nothing), and the
// LimitedReader the range path hands to the sendfile-riding io.Copy.
//
// Aliasing pooled arrays in a response header map is only safe when the
// headers are serialized before the scratch is recycled — which on the
// real serving path happens at the first body write. Callers therefore
// only take the scratch path when a body write is guaranteed (GET with
// at least one payload byte); HEAD and empty bodies use plain
// Header().Set, whose values net/http may read after the handler
// returns.
type fetchScratch struct {
	num [24]byte // strconv scratch

	clVal int64 // memo key for clStr; -1 = empty
	clStr string
	cl    [1]string

	crRng   byteRange // memo key for crStr
	crTotal int64     // -1 = empty
	crStr   string
	cr      [1]string

	lr io.LimitedReader
}

var fetchScratchPool = sync.Pool{
	New: func() interface{} {
		return &fetchScratch{clVal: -1, crTotal: -1}
	},
}

// contentLength returns the scratch's one-element header value holding
// the decimal rendering of v, re-rendering only when v changed since the
// last request this scratch served.
func (sc *fetchScratch) contentLength(v int64) []string {
	if sc.clVal != v {
		sc.clVal = v
		sc.clStr = string(strconv.AppendInt(sc.num[:0], v, 10))
	}
	sc.cl[0] = sc.clStr
	return sc.cl[:]
}

// contentRange is the Content-Range analogue of contentLength.
func (sc *fetchScratch) contentRange(r byteRange, total int64) []string {
	if sc.crRng != r || sc.crTotal != total {
		sc.crRng, sc.crTotal = r, total
		sc.crStr = r.contentRange(total)
	}
	sc.cr[0] = sc.crStr
	return sc.cr[:]
}

// useScratch reports whether the request may take the pooled-scratch
// serving path: a body write must be guaranteed (see fetchScratch) so
// the header values the map aliases are on the wire before the scratch
// is recycled.
func useScratch(r *http.Request, n int64) bool {
	return r.Method != http.MethodHead && n > 0
}

// countingWriter tallies bytes written and discards them; it sizes the
// multipart framing without buffering it.
type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// multipartContentLength computes the exact Content-Length of a
// multipart/byteranges body with the given boundary by replaying the
// framing (boundaries + per-part headers) through a counting writer and
// adding the part payload sizes — the same technique net/http uses, so
// the response can carry a Content-Length without assembling the body
// in memory first.
func multipartContentLength(boundary string, rngs []byteRange, total int64) int64 {
	var cw countingWriter
	mw := multipart.NewWriter(&cw)
	if err := mw.SetBoundary(boundary); err != nil {
		return -1
	}
	for _, r := range rngs {
		if _, err := mw.CreatePart(r.mimeHeader(total)); err != nil {
			return -1
		}
		cw += countingWriter(r.n)
	}
	if err := mw.Close(); err != nil {
		return -1
	}
	return int64(cw)
}

// writeMultipart streams a multipart/byteranges response body: headers,
// then each part framed by mw with its bytes produced by copyPart
// directly into the response writer — no part is ever buffered whole.
// copyPart writes exactly rng.n bytes of the dataset window into w (a
// seek+copy for the disk path, a generator walk for the in-memory
// path). Returns the payload bytes served (excluding framing).
func writeMultipart(w http.ResponseWriter, r *http.Request, rngs []byteRange, total int64,
	copyPart func(io.Writer, byteRange) error) int64 {
	mw := multipart.NewWriter(w)
	h := w.Header()
	h["Content-Type"] = []string{"multipart/byteranges; boundary=" + mw.Boundary()}
	if cl := multipartContentLength(mw.Boundary(), rngs, total); cl >= 0 {
		h["Content-Length"] = []string{strconv.FormatInt(cl, 10)}
	}
	w.WriteHeader(http.StatusPartialContent)
	if r.Method == http.MethodHead {
		return 0
	}
	var served int64
	for _, rng := range rngs {
		pw, err := mw.CreatePart(rng.mimeHeader(total))
		if err != nil {
			return served // client gone mid-body: nothing to salvage
		}
		if err := copyPart(pw, rng); err != nil {
			return served
		}
		served += rng.n
	}
	_ = mw.Close()
	return served
}
