package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// startCluster spins up an in-process cluster and registers cleanup.
func startCluster(t *testing.T, cfg ClusterConfig) *LocalCluster {
	t.Helper()
	lc, err := StartLocalCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Shutdown(ctx)
	})
	return lc
}

func login(t *testing.T, lc *LocalCluster) socialnet.Token {
	t.Helper()
	tok, err := lc.Login(lc.UserIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// doJSON posts v and decodes the response into out (if non-nil),
// returning the status code.
func doJSON(t *testing.T, client *http.Client, method, url string, tok socialnet.Token,
	v, out interface{}) int {
	t.Helper()
	var body io.Reader
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if tok != "" {
		req.Header.Set("Authorization", "Bearer "+string(tok))
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// fetchDataset GETs a dataset and verifies the payload stream.
func fetchDataset(t *testing.T, client *http.Client, base string, tok socialnet.Token,
	id string, wantBytes int64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/fetch/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+string(tok))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("fetch %s from %s: %s: %s", id, base, resp.Status, b)
	}
	if _, err := VerifyPayload(resp.Body, storageID(id), wantBytes); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthzAndMetrics(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	base := lc.Nodes[0].BaseURL()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %s %q", resp.Status, body)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "scdn_up 1") {
		t.Fatalf("metrics exposition missing scdn_up:\n%s", body)
	}
}

func TestLoginResolveFetchOverHTTP(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 2, Datasets: 2})
	client := &http.Client{Timeout: 5 * time.Second}
	base := lc.Nodes[0].BaseURL()

	// Login over the wire.
	var loginResp LoginResponse
	if code := doJSON(t, client, http.MethodPost, base+"/v1/login", "",
		LoginRequest{User: int64(lc.UserIDs[0])}, &loginResp); code != 200 {
		t.Fatalf("login = %d", code)
	}
	tok := socialnet.Token(loginResp.Token)

	// Resolve ds-001 (origin node 1).
	var res ResolveResponse
	if code := doJSON(t, client, http.MethodPost, base+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res); code != 200 {
		t.Fatalf("resolve = %d", code)
	}
	if res.Node != 1 || !res.Origin || res.Bytes != lc.Config.DatasetBytes {
		t.Fatalf("resolve = %+v", res)
	}
	if res.URL != lc.Nodes[0].BaseURL() {
		t.Fatalf("resolve URL = %q, want %q", res.URL, lc.Nodes[0].BaseURL())
	}

	// Fetch from the resolved edge: a local hit there.
	resp := fetchDataset(t, client, res.URL, tok, "ds-001", res.Bytes)
	if src := resp.Header.Get("X-SCDN-Source"); src != "1" {
		t.Fatalf("source = %q", src)
	}
	if lc.Nodes[0].Metrics.LocalHits.Value() != 1 {
		t.Fatal("local hit not counted")
	}

	// Report usage statistics.
	code := doJSON(t, client, http.MethodPost, base+"/v1/report", tok,
		ReportRequest{Client: int64(lc.UserIDs[0]), Accesses: 3,
			ByOutcome: map[string]uint64{"local-hit": 3}}, nil)
	if code != http.StatusNoContent {
		t.Fatalf("report = %d", code)
	}
	if lc.Nodes[0].Metrics.Reports.Value() != 1 ||
		lc.Nodes[0].Metrics.ReportedAccesses.Value() != 3 {
		t.Fatal("report not counted")
	}
}

func TestFetchPeerFallback(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 3, Users: 1, Datasets: 3})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)

	// ds-001's origin is node 1; fetch it via node 2 → one proxy hop.
	base2 := lc.Nodes[1].BaseURL()
	fetchDataset(t, client, base2, tok, "ds-001", lc.Config.DatasetBytes)
	if lc.Nodes[1].Metrics.OriginFetches.Value() != 1 {
		t.Fatalf("origin fetches on node2 = %d, want 1",
			lc.Nodes[1].Metrics.OriginFetches.Value())
	}
	if lc.Nodes[0].Metrics.PeerFetchRequests.Value() != 1 {
		t.Fatalf("peer fetches on node1 = %d, want 1",
			lc.Nodes[0].Metrics.PeerFetchRequests.Value())
	}
	// The peer hop must not inflate client-facing counters on node 1.
	if lc.Nodes[0].Metrics.FetchRequests.Value() != 0 {
		t.Fatal("peer hop counted as client fetch")
	}
}

func TestFetchUnknownAndUnauthorized(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	base := lc.Nodes[0].BaseURL()
	tok := login(t, lc)

	// No token.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/fetch/ds-001", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless fetch = %s", resp.Status)
	}

	// Unknown dataset is denied at the trust boundary (unscoped data
	// never flows), matching the simulated client's Denied outcome.
	req, _ = http.NewRequest(http.MethodGet, base+"/v1/fetch/nope", nil)
	req.Header.Set("Authorization", "Bearer "+string(tok))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown dataset fetch = %s", resp.Status)
	}
	if lc.Nodes[0].Metrics.AuthDenied.Value() != 2 {
		t.Fatalf("auth denied = %d, want 2", lc.Nodes[0].Metrics.AuthDenied.Value())
	}
	if lc.Nodes[0].Metrics.FetchFailures.Value() != 2 {
		t.Fatalf("fetch failures = %d, want 2", lc.Nodes[0].Metrics.FetchFailures.Value())
	}
}

func TestResolveMissWhenHolderOffline(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)

	// Take the only holder of ds-001 (node 1, its origin) offline.
	lc.Registry.SetOnline(1, false)
	var res ResolveResponse
	code := doJSON(t, client, http.MethodPost, lc.Nodes[1].BaseURL()+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("resolve with offline holder = %d", code)
	}
	if lc.Nodes[1].Metrics.ResolveMisses.Value() != 1 {
		t.Fatal("resolve miss not counted")
	}
	lc.Registry.SetOnline(1, true)
	if code := doJSON(t, client, http.MethodPost, lc.Nodes[1].BaseURL()+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res); code != 200 {
		t.Fatalf("resolve after rejoin = %d", code)
	}
}

func TestFetchRetriesDeadPeerThenFallsBack(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2})
	client := &http.Client{Timeout: 10 * time.Second}
	tok := login(t, lc)

	// Register a phantom replica of ds-001 on a member whose endpoint is
	// a dead port: attempt 1 targets it (same site as node 2 → lowest
	// RTT), fails, and the bounded retry loop must back off and fall
	// back to the live origin.
	dead := allocation.NodeID(99)
	lc.Registry.Register(Member{Node: dead, Site: 1, BaseURL: "http://127.0.0.1:1", Online: true})
	if err := lc.Catalog.AddReplica("ds-001", dead, 0); err != nil {
		t.Fatal(err)
	}
	fetchDataset(t, client, lc.Nodes[1].BaseURL(), tok, "ds-001", lc.Config.DatasetBytes)
	if lc.Nodes[1].Metrics.PeerRetries.Value() == 0 {
		t.Fatal("dead peer did not trigger a retry")
	}
	if lc.Nodes[1].Metrics.OriginFetches.Value() != 1 {
		t.Fatal("fallback to origin not recorded")
	}
}

func TestFetchFailsWhenNoReachableReplica(t *testing.T) {
	// Sweeper off: the test drives membership by hand, and a live prober
	// would re-admit node 1 the moment it noticed healthz still answers.
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2, FetchAttempts: 2,
		Sweep: SweeperConfig{Disabled: true}})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)

	// All holders of ds-001 offline → node 2 has nobody to proxy from.
	lc.Registry.SetOnline(1, false)
	req, _ := http.NewRequest(http.MethodGet, lc.Nodes[1].BaseURL()+"/v1/fetch/ds-001", nil)
	req.Header.Set("Authorization", "Bearer "+string(tok))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Zero live holders of a catalogued dataset is churn-style
	// unavailability: 503 with a Retry-After hint, counted under the
	// churn metric — not a fetch failure.
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unreachable fetch = %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("churn 503 missing Retry-After")
	}
	if lc.Nodes[1].Metrics.ChurnUnavailable.Value() != 1 {
		t.Fatal("churn unavailability not counted")
	}
	if lc.Nodes[1].Metrics.FetchFailures.Value() != 0 {
		t.Fatal("churn unavailability miscounted as fetch failure")
	}
}

func TestPullThroughCachesReplica(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2, PullThrough: true})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)
	base2 := lc.Nodes[1].BaseURL()

	// First access proxies from the origin and caches the replica...
	fetchDataset(t, client, base2, tok, "ds-001", lc.Config.DatasetBytes)
	if got := lc.Catalog.ReplicaCount("ds-001"); got != 2 {
		t.Fatalf("replica count after pull-through = %d, want 2", got)
	}
	st := lc.Nodes[1].RepoStats()
	if st.ReplicaObjects != 1 {
		t.Fatalf("node2 replica objects = %d, want 1", st.ReplicaObjects)
	}
	// ...so the second access is a local hit on node 2.
	fetchDataset(t, client, base2, tok, "ds-001", lc.Config.DatasetBytes)
	if lc.Nodes[1].Metrics.LocalHits.Value() != 1 {
		t.Fatalf("local hits on node2 = %d, want 1", lc.Nodes[1].Metrics.LocalHits.Value())
	}
}

func TestGracefulShutdown(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 1})
	node := lc.Nodes[0]
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := node.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if lc.Registry.Online(node.ID()) {
		t.Fatal("shut-down node still online in registry")
	}
	if _, err := http.Get(node.BaseURL() + "/healthz"); err == nil {
		t.Fatal("shut-down node still serving")
	}
	// Second shutdown is a no-op.
	if err := node.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Node: 1}, nil, nil, nil, nil); err == nil {
		t.Fatal("missing collaborators accepted")
	}
}

// storageID converts for test readability.
func storageID(id string) storage.DatasetID { return storage.DatasetID(id) }
