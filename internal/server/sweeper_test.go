package server

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/storage"
)

// fastSweep is an aggressive sweeper tuning for tests: suspicion and
// repair converge in hundreds of milliseconds instead of seconds.
func fastSweep() SweeperConfig {
	return SweeperConfig{
		Interval:          50 * time.Millisecond,
		ProbeTimeout:      250 * time.Millisecond,
		FailThreshold:     2,
		ReplicationTarget: 2,
	}
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, what)
}

// replicationMet reports whether every dataset has at least
// min(target, live nodes) online holders.
func replicationMet(lc *LocalCluster, target int) bool {
	want := target
	if live := lc.LiveNodes(); live < want {
		want = live
	}
	for _, st := range lc.ReplicationStatus() {
		if st.Live < want {
			return false
		}
	}
	return true
}

// holdsReplica reports whether the catalog lists node as a holder of id.
func holdsReplica(lc *LocalCluster, id storage.DatasetID, node allocation.NodeID) bool {
	reps, err := lc.Catalog.Replicas(id)
	if err != nil {
		return false
	}
	for _, r := range reps {
		if r.Node == node {
			return true
		}
	}
	return false
}

// TestSweeperDetectsDeadRepairsAndReadmits walks the full repair story:
// a crashed member is declared dead by its peers' failure detectors and
// deregistered, its datasets are re-replicated onto the survivors so
// fetches keep succeeding, and the member is welcomed back when it
// restarts.
func TestSweeperDetectsDeadRepairsAndReadmits(t *testing.T) {
	lc := startCluster(t, ClusterConfig{
		Nodes: 3, Users: 1, Datasets: 6, Sweep: fastSweep(),
	})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)

	// The sweepers fan every dataset out to the replication target even
	// before anything fails.
	waitFor(t, 15*time.Second, "initial replication fan-out", func() bool {
		return replicationMet(lc, 2)
	})

	// Crash node 1 the hard way: no goodbye, registry still lists it
	// online until a peer's detector notices.
	lc.Nodes[0].Crash()
	waitFor(t, 15*time.Second, "dead member deregistered", func() bool {
		return !lc.Registry.Online(1)
	})
	if got := lc.Nodes[1].Metrics.RepairDeadMembers.Value() +
		lc.Nodes[2].Metrics.RepairDeadMembers.Value(); got < 1 {
		t.Fatalf("no survivor counted the dead member (dead_members=%d)", got)
	}

	// Repair restores the floor with only the survivors.
	waitFor(t, 15*time.Second, "post-crash re-replication", func() bool {
		return replicationMet(lc, 2)
	})

	// ds-001's origin was the dead node; a survivor must now serve it.
	fetchDataset(t, client, lc.Nodes[1].BaseURL(), tok, "ds-001", lc.Config.DatasetBytes)

	// The member comes back and is re-admitted.
	if err := lc.Nodes[0].Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "restarted member re-admitted", func() bool {
		return lc.Registry.Online(1) && lc.LiveNodes() == 3
	})
	fetchDataset(t, client, lc.Nodes[0].BaseURL(), tok, "ds-001", lc.Config.DatasetBytes)
}

// TestCrashRestartReadoptsDiskReplica checks the disk-mode crash story:
// a node adopts a replica onto its DiskVolume, crashes, is purged from
// the catalog by its peers, and on restart re-announces the file it
// still holds on disk — re-adoption without re-transfer.
func TestCrashRestartReadoptsDiskReplica(t *testing.T) {
	lc := startCluster(t, ClusterConfig{
		Nodes: 3, Users: 1, Datasets: 4, Sweep: fastSweep(),
		StoreMode: StoreModeDir,
	})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)
	node1 := lc.Nodes[0]
	const ds = "ds-002" // origin node 2: node 1's record is purgeable

	// Make node 1 a holder via the replication endpoint (idempotent if a
	// sweeper already volunteered it).
	var rr ReplicateResponse
	if code := doJSON(t, client, http.MethodPost, node1.BaseURL()+"/v1/replicate", tok,
		ReplicateRequest{Dataset: ds}, &rr); code != http.StatusOK {
		t.Fatalf("replicate = %d", code)
	}
	if !rr.Adopted && !rr.Already {
		t.Fatalf("replicate response = %+v", rr)
	}
	waitFor(t, 10*time.Second, "replica materialized on disk", func() bool {
		return node1.Volume().Has(ds) && holdsReplica(lc, ds, 1)
	})

	node1.Crash()
	waitFor(t, 15*time.Second, "dead member purged from catalog", func() bool {
		return !lc.Registry.Online(1) && !holdsReplica(lc, ds, 1)
	})

	// Restart: the file survived the crash, so Start re-announces it.
	if err := node1.Start(); err != nil {
		t.Fatal(err)
	}
	if !lc.Registry.Online(1) {
		t.Fatal("restarted node did not rejoin the registry")
	}
	if !holdsReplica(lc, ds, 1) {
		t.Fatalf("restarted node did not re-adopt %s in the catalog", ds)
	}
	if got := node1.Metrics.RepairReadoptedReplicas.Value(); got < 1 {
		t.Fatalf("readopted replicas = %d, want >= 1", got)
	}
	if !node1.Volume().Has(ds) {
		t.Fatal("disk replica vanished across restart")
	}

	// And it serves the readopted bytes itself.
	fetchDataset(t, client, node1.BaseURL(), tok, ds, lc.Config.DatasetBytes)
}

// TestChurnConcurrentSweepAndFetch runs scripted churn, the repair
// sweepers, and a fetch workload against the same 4-node cluster at
// once — the -race exercise for the whole self-healing plane. Client
// errors are expected mid-churn; what must hold is that the schedule
// applies cleanly and the cluster converges back to the replication
// floor afterwards.
func TestChurnConcurrentSweepAndFetch(t *testing.T) {
	const datasets = 8
	lc := startCluster(t, ClusterConfig{
		Nodes: 4, Users: 2, Datasets: datasets, Sweep: fastSweep(),
	})
	tok := login(t, lc)
	client := &http.Client{Timeout: 2 * time.Second}

	events := []ChurnEvent{
		{At: 50 * time.Millisecond, Action: ChurnKill, Node: 2},
		{At: 150 * time.Millisecond, Action: ChurnStop, Node: 3},
		{At: 450 * time.Millisecond, Action: ChurnRestart, Node: 2},
		{At: 600 * time.Millisecond, Action: ChurnRestart, Node: 3},
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				node := lc.Nodes[(w+i)%len(lc.Nodes)]
				if !node.Running() {
					continue
				}
				id := fmt.Sprintf("ds-%03d", (i%datasets)+1)
				req, err := http.NewRequest(http.MethodGet, node.BaseURL()+"/v1/fetch/"+id, nil)
				if err != nil {
					continue
				}
				req.Header.Set("Authorization", "Bearer "+string(tok))
				resp, err := client.Do(req)
				if err != nil {
					continue // mid-churn failures are the point
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	churn := StartChurn(lc, events)
	churn.Wait()
	close(stop)
	wg.Wait()

	sum := churn.Summary()
	if len(sum.Errs) > 0 {
		t.Fatalf("churn errors: %v", sum.Errs)
	}
	if sum.Kills != 1 || sum.Stops != 1 || sum.Restarts != 2 || !sum.AllRestarted {
		t.Fatalf("churn summary = %+v", sum)
	}
	waitFor(t, 20*time.Second, "post-churn repair convergence", func() bool {
		return replicationMet(lc, 2)
	})
}
