package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"scdn/internal/socialnet"
)

// rangeGet fetches a dataset with a Range header and returns the response
// plus the fully-read body.
func rangeGet(t *testing.T, client *http.Client, base, tok, id, rangeHeader string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/fetch/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	if rangeHeader != "" {
		req.Header.Set("Range", rangeHeader)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestFetchFullResponseHeaders(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	resp, body := rangeGet(t, client, lc.Nodes[0].BaseURL(), tok, "ds-001", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full fetch = %s", resp.Status)
	}
	if got := resp.Header.Get("Accept-Ranges"); got != "bytes" {
		t.Fatalf("Accept-Ranges = %q, want bytes", got)
	}
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(lc.Config.DatasetBytes) {
		t.Fatalf("Content-Length = %q, want %d", got, lc.Config.DatasetBytes)
	}
	if int64(len(body)) != lc.Config.DatasetBytes {
		t.Fatalf("body = %d bytes", len(body))
	}
}

func TestFetchRangeLocal(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	base := lc.Nodes[0].BaseURL()
	total := lc.Config.DatasetBytes

	var whole bytes.Buffer
	if _, err := WritePayload(&whole, "ds-001", total); err != nil {
		t.Fatal(err)
	}
	ref := whole.Bytes()

	cases := []struct {
		header string
		off, n int64
	}{
		{"bytes=0-1023", 0, 1024},
		{"bytes=5000-5000", 5000, 1},                                 // single mid-block byte
		{fmt.Sprintf("bytes=%d-%d", total-1, total-1), total - 1, 1}, // last byte
		{fmt.Sprintf("bytes=%d-", total-100), total - 100, 100},
		{"bytes=-256", total - 256, 256},
	}
	for _, tc := range cases {
		resp, body := rangeGet(t, client, base, tok, "ds-001", tc.header)
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("%s: status %s, want 206", tc.header, resp.Status)
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", tc.off, tc.off+tc.n-1, total)
		if got := resp.Header.Get("Content-Range"); got != wantCR {
			t.Fatalf("%s: Content-Range = %q, want %q", tc.header, got, wantCR)
		}
		if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(tc.n) {
			t.Fatalf("%s: Content-Length = %q, want %d", tc.header, got, tc.n)
		}
		if !bytes.Equal(body, ref[tc.off:tc.off+tc.n]) {
			t.Fatalf("%s: body diverges from payload slice", tc.header)
		}
	}
	if lc.Nodes[0].Metrics.RangeRequests.Value() != uint64(len(cases)) {
		t.Fatalf("range requests = %d, want %d",
			lc.Nodes[0].Metrics.RangeRequests.Value(), len(cases))
	}
}

func TestFetchRangeRejected(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	base := lc.Nodes[0].BaseURL()
	total := lc.Config.DatasetBytes

	for _, h := range []string{
		"bytes=oops",
		"bytes=9-5",
		"bytes=-0",
		"bytes=0-10,20-30",
		fmt.Sprintf("bytes=%d-", total), // offset == size
		fmt.Sprintf("bytes=%d-%d", total+1, total+9),
	} {
		resp, _ := rangeGet(t, client, base, tok, "ds-001", h)
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("%s: status %s, want 416", h, resp.Status)
		}
		if got := resp.Header.Get("Content-Range"); got != fmt.Sprintf("bytes */%d", total) {
			t.Fatalf("%s: 416 Content-Range = %q", h, got)
		}
	}
	want := uint64(6)
	if got := lc.Nodes[0].Metrics.RangeNotSatisfiable.Value(); got != want {
		t.Fatalf("range 416s = %d, want %d", got, want)
	}
	if got := lc.Nodes[0].Metrics.FetchFailures.Value(); got != want {
		t.Fatalf("fetch failures = %d, want %d", got, want)
	}
}

// TestFetchRangeProxied asks an edge that does not hold the dataset for a
// range: the peer hop must forward the range and the client must see a
// 206 with only the requested bytes.
func TestFetchRangeProxied(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	total := lc.Config.DatasetBytes

	// ds-001's origin is node 1; ask node 2 for a slice of it.
	resp, body := rangeGet(t, client, lc.Nodes[1].BaseURL(), tok, "ds-001", "bytes=100-4199")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("proxied range = %s, want 206", resp.Status)
	}
	if got := resp.Header.Get("Content-Range"); got != fmt.Sprintf("bytes 100-4199/%d", total) {
		t.Fatalf("Content-Range = %q", got)
	}
	if _, err := VerifyPayloadRange(bytes.NewReader(body), "ds-001", 100, 4100); err != nil {
		t.Fatal(err)
	}
	if lc.Nodes[1].Metrics.OriginFetches.Value() != 1 {
		t.Fatal("proxied range not accounted as origin fetch")
	}
}

// TestFetchRangeNoPullThrough: a partial transfer must never mint a
// replica record, even with pull-through on.
func TestFetchRangeNoPullThrough(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2, PullThrough: true})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))

	resp, _ := rangeGet(t, client, lc.Nodes[1].BaseURL(), tok, "ds-001", "bytes=0-99")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("proxied range = %s", resp.Status)
	}
	if got := lc.Catalog.ReplicaCount("ds-001"); got != 1 {
		t.Fatalf("replica count after range fetch = %d, want 1 (no pull-through)", got)
	}

	// A full fetch still pulls through.
	fetchDataset(t, client, lc.Nodes[1].BaseURL(), socialnet.Token(tok), "ds-001", lc.Config.DatasetBytes)
	if got := lc.Catalog.ReplicaCount("ds-001"); got != 2 {
		t.Fatalf("replica count after full fetch = %d, want 2", got)
	}
}

func TestResolveListsReplicaHolders(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 3, Users: 1, Datasets: 3})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)
	if err := lc.Catalog.AddReplica("ds-001", 2, 0); err != nil {
		t.Fatal(err)
	}
	var res ResolveResponse
	if code := doJSON(t, client, http.MethodPost, lc.Nodes[0].BaseURL()+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res); code != 200 {
		t.Fatalf("resolve = %d", code)
	}
	if len(res.Replicas) != 2 {
		t.Fatalf("replicas = %+v, want 2 holders", res.Replicas)
	}
	seenOrigin := false
	for _, rep := range res.Replicas {
		if rep.URL == "" {
			t.Fatalf("holder %d has no URL", rep.Node)
		}
		if rep.Origin {
			if rep.Node != 1 {
				t.Fatalf("origin flag on node %d", rep.Node)
			}
			seenOrigin = true
		}
	}
	if !seenOrigin {
		t.Fatal("origin holder missing from replica list")
	}
}
