package server

import (
	"bytes"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"testing"
	"time"

	"scdn/internal/socialnet"
)

// rangeGet fetches a dataset with a Range header and returns the response
// plus the fully-read body.
func rangeGet(t *testing.T, client *http.Client, base, tok, id, rangeHeader string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/fetch/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	if rangeHeader != "" {
		req.Header.Set("Range", rangeHeader)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestFetchFullResponseHeaders(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	resp, body := rangeGet(t, client, lc.Nodes[0].BaseURL(), tok, "ds-001", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full fetch = %s", resp.Status)
	}
	if got := resp.Header.Get("Accept-Ranges"); got != "bytes" {
		t.Fatalf("Accept-Ranges = %q, want bytes", got)
	}
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(lc.Config.DatasetBytes) {
		t.Fatalf("Content-Length = %q, want %d", got, lc.Config.DatasetBytes)
	}
	if int64(len(body)) != lc.Config.DatasetBytes {
		t.Fatalf("body = %d bytes", len(body))
	}
}

func TestFetchRangeLocal(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	base := lc.Nodes[0].BaseURL()
	total := lc.Config.DatasetBytes

	var whole bytes.Buffer
	if _, err := WritePayload(&whole, "ds-001", total); err != nil {
		t.Fatal(err)
	}
	ref := whole.Bytes()

	cases := []struct {
		header string
		off, n int64
	}{
		{"bytes=0-1023", 0, 1024},
		{"bytes=5000-5000", 5000, 1},                                 // single mid-block byte
		{fmt.Sprintf("bytes=%d-%d", total-1, total-1), total - 1, 1}, // last byte
		{fmt.Sprintf("bytes=%d-", total-100), total - 100, 100},
		{"bytes=-256", total - 256, 256},
	}
	for _, tc := range cases {
		resp, body := rangeGet(t, client, base, tok, "ds-001", tc.header)
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("%s: status %s, want 206", tc.header, resp.Status)
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", tc.off, tc.off+tc.n-1, total)
		if got := resp.Header.Get("Content-Range"); got != wantCR {
			t.Fatalf("%s: Content-Range = %q, want %q", tc.header, got, wantCR)
		}
		if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(tc.n) {
			t.Fatalf("%s: Content-Length = %q, want %d", tc.header, got, tc.n)
		}
		if !bytes.Equal(body, ref[tc.off:tc.off+tc.n]) {
			t.Fatalf("%s: body diverges from payload slice", tc.header)
		}
	}
	if lc.Nodes[0].Metrics.RangeRequests.Value() != uint64(len(cases)) {
		t.Fatalf("range requests = %d, want %d",
			lc.Nodes[0].Metrics.RangeRequests.Value(), len(cases))
	}
}

func TestFetchRangeRejected(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	base := lc.Nodes[0].BaseURL()
	total := lc.Config.DatasetBytes

	// 17 disjoint parts: one past the multipart cap.
	tooMany := "bytes=0-0"
	for i := 1; i <= maxRangeParts; i++ {
		tooMany += fmt.Sprintf(",%d-%d", i*10, i*10)
	}
	for _, h := range []string{
		"bytes=oops",
		"bytes=9-5",
		"bytes=-0",
		"bytes=0-10,20-oops", // one bad part poisons the whole set
		tooMany,
		fmt.Sprintf("bytes=%d-", total), // offset == size
		fmt.Sprintf("bytes=%d-%d", total+1, total+9),
		fmt.Sprintf("bytes=0-10,%d-", total), // one unsatisfiable part poisons the set
	} {
		resp, _ := rangeGet(t, client, base, tok, "ds-001", h)
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("%s: status %s, want 416", h, resp.Status)
		}
		if got := resp.Header.Get("Content-Range"); got != fmt.Sprintf("bytes */%d", total) {
			t.Fatalf("%s: 416 Content-Range = %q", h, got)
		}
	}
	want := uint64(8)
	if got := lc.Nodes[0].Metrics.RangeNotSatisfiable.Value(); got != want {
		t.Fatalf("range 416s = %d, want %d", got, want)
	}
	if got := lc.Nodes[0].Metrics.FetchFailures.Value(); got != want {
		t.Fatalf("fetch failures = %d, want %d", got, want)
	}
}

// readMultipartBody parses a multipart/byteranges response and returns
// the per-part Content-Range headers and bodies, failing on any framing
// defect.
func readMultipartBody(t *testing.T, resp *http.Response, body []byte) (crs []string, parts [][]byte) {
	t.Helper()
	mediaType, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatalf("Content-Type %q: %v", resp.Header.Get("Content-Type"), err)
	}
	if mediaType != "multipart/byteranges" {
		t.Fatalf("media type = %q, want multipart/byteranges", mediaType)
	}
	if params["boundary"] == "" {
		t.Fatal("no boundary parameter")
	}
	mr := multipart.NewReader(bytes.NewReader(body), params["boundary"])
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			return crs, parts
		}
		if err != nil {
			t.Fatalf("part %d: %v", len(parts), err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			t.Fatalf("part %d body: %v", len(parts), err)
		}
		crs = append(crs, p.Header.Get("Content-Range"))
		parts = append(parts, data)
	}
}

// testFetchRangeMultipart drives multipart Range requests against a
// 1-node cluster in the given store mode and verifies the
// multipart/byteranges framing byte for byte.
func testFetchRangeMultipart(t *testing.T, storeMode string) {
	lc := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1, StoreMode: storeMode})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	base := lc.Nodes[0].BaseURL()
	total := lc.Config.DatasetBytes

	var whole bytes.Buffer
	if _, err := WritePayload(&whole, "ds-001", total); err != nil {
		t.Fatal(err)
	}
	ref := whole.Bytes()

	header := fmt.Sprintf("bytes=0-1023,5000-8191,-256,%d-%d", total-1000, total-900)
	wantParts := []struct{ off, n int64 }{
		{0, 1024},
		{5000, 3192},
		{total - 1000, 101},
		{total - 256, 256},
	}
	resp, body := rangeGet(t, client, base, tok, "ds-001", header)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("multipart fetch = %s, want 206", resp.Status)
	}
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(len(body)) {
		t.Fatalf("Content-Length = %q, body is %d bytes", got, len(body))
	}
	crs, parts := readMultipartBody(t, resp, body)
	if len(parts) != len(wantParts) {
		t.Fatalf("%d parts, want %d (ranges must arrive sorted and merged)", len(parts), len(wantParts))
	}
	for i, wp := range wantParts {
		wantCR := fmt.Sprintf("bytes %d-%d/%d", wp.off, wp.off+wp.n-1, total)
		if crs[i] != wantCR {
			t.Fatalf("part %d Content-Range = %q, want %q", i, crs[i], wantCR)
		}
		if !bytes.Equal(parts[i], ref[wp.off:wp.off+wp.n]) {
			t.Fatalf("part %d bytes diverge from payload window %d+%d", i, wp.off, wp.n)
		}
	}
	m := lc.Nodes[0].Metrics
	if m.RangeRequests.Value() != 1 || m.RangeMultipart.Value() != 1 {
		t.Fatalf("range metrics = %d/%d, want 1/1",
			m.RangeRequests.Value(), m.RangeMultipart.Value())
	}
	if storeMode == StoreModeDir && m.StoreDiskHits.Value() == 0 {
		t.Fatal("dir-mode multipart never hit the disk volume")
	}

	// Overlapping and adjacent parts coalesce into one plain 206.
	resp, body = rangeGet(t, client, base, tok, "ds-001", "bytes=100-199,150-299,300-399")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("coalesced fetch = %s, want 206", resp.Status)
	}
	if got := resp.Header.Get("Content-Range"); got != fmt.Sprintf("bytes 100-399/%d", total) {
		t.Fatalf("coalesced Content-Range = %q", got)
	}
	if !bytes.Equal(body, ref[100:400]) {
		t.Fatal("coalesced body diverges from payload window")
	}
	if m.RangeMultipart.Value() != 1 {
		t.Fatal("coalesced single range wrongly counted as multipart")
	}
}

func TestFetchRangeMultipartDisk(t *testing.T)      { testFetchRangeMultipart(t, StoreModeDir) }
func TestFetchRangeMultipartGenerated(t *testing.T) { testFetchRangeMultipart(t, StoreModeGenerated) }

// TestFetchRangeMultipartProxied: an edge that does not hold the dataset
// relays the peer's multipart framing (boundary, Content-Length, parts)
// untouched.
func TestFetchRangeMultipartProxied(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	total := lc.Config.DatasetBytes

	var whole bytes.Buffer
	if _, err := WritePayload(&whole, "ds-001", total); err != nil {
		t.Fatal(err)
	}
	ref := whole.Bytes()

	// ds-001's origin is node 1; ask node 2 for two slices of it.
	resp, body := rangeGet(t, client, lc.Nodes[1].BaseURL(), tok, "ds-001", "bytes=0-99,1000-1099")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("proxied multipart = %s, want 206", resp.Status)
	}
	crs, parts := readMultipartBody(t, resp, body)
	if len(parts) != 2 {
		t.Fatalf("%d parts, want 2", len(parts))
	}
	for i, off := range []int64{0, 1000} {
		wantCR := fmt.Sprintf("bytes %d-%d/%d", off, off+99, total)
		if crs[i] != wantCR {
			t.Fatalf("part %d Content-Range = %q, want %q", i, crs[i], wantCR)
		}
		if !bytes.Equal(parts[i], ref[off:off+100]) {
			t.Fatalf("part %d bytes diverge", i)
		}
	}
	if lc.Nodes[1].Metrics.OriginFetches.Value() != 1 {
		t.Fatal("proxied multipart not accounted as origin fetch")
	}
	// Partial transfers never mint replica records, multipart included.
	if got := lc.Catalog.ReplicaCount("ds-001"); got != 1 {
		t.Fatalf("replica count after multipart fetch = %d, want 1", got)
	}
}

// TestFetchRangeProxied asks an edge that does not hold the dataset for a
// range: the peer hop must forward the range and the client must see a
// 206 with only the requested bytes.
func TestFetchRangeProxied(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))
	total := lc.Config.DatasetBytes

	// ds-001's origin is node 1; ask node 2 for a slice of it.
	resp, body := rangeGet(t, client, lc.Nodes[1].BaseURL(), tok, "ds-001", "bytes=100-4199")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("proxied range = %s, want 206", resp.Status)
	}
	if got := resp.Header.Get("Content-Range"); got != fmt.Sprintf("bytes 100-4199/%d", total) {
		t.Fatalf("Content-Range = %q", got)
	}
	if _, err := VerifyPayloadRange(bytes.NewReader(body), "ds-001", 100, 4100); err != nil {
		t.Fatal(err)
	}
	if lc.Nodes[1].Metrics.OriginFetches.Value() != 1 {
		t.Fatal("proxied range not accounted as origin fetch")
	}
}

// TestFetchRangeNoPullThrough: a partial transfer must never mint a
// replica record, even with pull-through on.
func TestFetchRangeNoPullThrough(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 2, Users: 1, Datasets: 2, PullThrough: true})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := string(login(t, lc))

	resp, _ := rangeGet(t, client, lc.Nodes[1].BaseURL(), tok, "ds-001", "bytes=0-99")
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("proxied range = %s", resp.Status)
	}
	if got := lc.Catalog.ReplicaCount("ds-001"); got != 1 {
		t.Fatalf("replica count after range fetch = %d, want 1 (no pull-through)", got)
	}

	// A full fetch still pulls through.
	fetchDataset(t, client, lc.Nodes[1].BaseURL(), socialnet.Token(tok), "ds-001", lc.Config.DatasetBytes)
	if got := lc.Catalog.ReplicaCount("ds-001"); got != 2 {
		t.Fatalf("replica count after full fetch = %d, want 2", got)
	}
}

func TestResolveListsReplicaHolders(t *testing.T) {
	lc := startCluster(t, ClusterConfig{Nodes: 3, Users: 1, Datasets: 3})
	client := &http.Client{Timeout: 5 * time.Second}
	tok := login(t, lc)
	if err := lc.Catalog.AddReplica("ds-001", 2, 0); err != nil {
		t.Fatal(err)
	}
	var res ResolveResponse
	if code := doJSON(t, client, http.MethodPost, lc.Nodes[0].BaseURL()+"/v1/resolve", tok,
		ResolveRequest{Dataset: "ds-001"}, &res); code != 200 {
		t.Fatalf("resolve = %d", code)
	}
	if len(res.Replicas) != 2 {
		t.Fatalf("replicas = %+v, want 2 holders", res.Replicas)
	}
	seenOrigin := false
	for _, rep := range res.Replicas {
		if rep.URL == "" {
			t.Fatalf("holder %d has no URL", rep.Node)
		}
		if rep.Origin {
			if rep.Node != 1 {
				t.Fatalf("origin flag on node %d", rep.Node)
			}
			seenOrigin = true
		}
	}
	if !seenOrigin {
		t.Fatal("origin holder missing from replica list")
	}
}
