package server

// Wire types of the serving-plane HTTP API (v1). All bodies are JSON
// unless noted.
//
//	POST /v1/login    LoginRequest → LoginResponse
//	POST /v1/resolve  ResolveRequest → ResolveResponse   (Bearer token)
//	GET  /v1/fetch/{dataset}  → payload bytes            (Bearer token)
//	GET  /v1/fetch/{dataset}/segments/{n}  → one segment (Bearer token)
//	PUT  /v1/datasets/{dataset}  octet-stream → manifest (Bearer token)
//	POST /v1/report   ReportRequest → 204                (Bearer token)
//	POST /v1/replicate  ReplicateRequest → ReplicateResponse (Bearer token)
//	GET  /metrics     → text exposition
//	GET  /healthz     → "ok"
//
// Fetch honors single-part HTTP range requests (Range: bytes=a-b, a-,
// -k) with 206 + Content-Range; full responses advertise
// Accept-Ranges: bytes. Malformed or unsatisfiable ranges are answered
// with 416, never with a silent full body.
//
// Upload (upload.go) publishes a new dataset: the body is raw bytes,
// X-SCDN-Digest declares their whole-stream SHA-256 up front, and
// X-SCDN-Group scopes the dataset to a collaboration group. Large
// uploads may arrive as parallel stripes, each carrying
// "Content-Range: bytes a-b/total"; the stripe completing the byte
// count answers 201 with the accepted manifest JSON (see
// internal/ingest), the rest answer 204. Bytes that do not hash to the
// declared digest are rejected with 422 and leave no state.

// peerHeader marks a fetch as an edge-to-edge hop: the receiving node
// serves only from its local repository and never fans out again, which
// bounds a fallback chain at one hop and makes proxy loops impossible.
const peerHeader = "X-SCDN-Peer"

// LoginRequest authenticates a platform user and opens a session. In the
// paper the credentials come from the social network platform; here the
// platform is in-process, so the serving plane fronts its auth service.
type LoginRequest struct {
	User int64 `json:"user"`
}

// LoginResponse carries the session token.
type LoginResponse struct {
	Token string `json:"token"`
}

// ResolveRequest asks for the best replica of a dataset. The requester is
// taken from the session token; the body names only the dataset.
type ResolveRequest struct {
	Dataset string `json:"dataset"`
}

// ResolveResponse names the selected replica holder. URL is empty when
// the holder contributes storage but no HTTP endpoint. Replicas lists
// every online holder so striped clients can fan range fetches out across
// them (the GridFTP-style parallel transfer of Section V-A).
//
// For datasets the serving plane stores segmented (large objects at or
// above the node's segment threshold), SegmentSize and Segments
// describe the HLS-style segment index behind
// GET /v1/fetch/{dataset}/segments/{n}: segment i covers bytes
// [i*SegmentSize, min((i+1)*SegmentSize, Bytes)). SegmentDigests, when
// present, carries the per-segment roll-up of the manifest's block
// digests (hex SHA-256), so a client can spot-check any piece without
// the full manifest. All three are absent for unsegmented datasets.
type ResolveResponse struct {
	Dataset        string        `json:"dataset"`
	Node           int64         `json:"node"`
	Site           int           `json:"site"`
	URL            string        `json:"url,omitempty"`
	Origin         bool          `json:"origin"`
	Bytes          int64         `json:"bytes"`
	Replicas       []ReplicaInfo `json:"replicas,omitempty"`
	SegmentSize    int64         `json:"segment_size,omitempty"`
	Segments       int64         `json:"segments,omitempty"`
	SegmentDigests []string      `json:"segment_digests,omitempty"`
}

// ReplicaInfo is one online replica holder in a ResolveResponse.
type ReplicaInfo struct {
	Node   int64  `json:"node"`
	Site   int    `json:"site"`
	URL    string `json:"url,omitempty"`
	Origin bool   `json:"origin"`
}

// ReportRequest delivers client-side usage statistics (Section V-A: the
// client "reports usage statistics" to the allocation servers).
type ReportRequest struct {
	Client    int64             `json:"client"`
	Accesses  uint64            `json:"accesses"`
	ByOutcome map[string]uint64 `json:"by_outcome,omitempty"`
}

// ReplicateRequest asks an edge to adopt a replica of a dataset (the
// repair sweeper's peer-to-peer re-replication, POST /v1/replicate).
// The caller authenticates like any client; the receiving edge pulls
// the bytes itself (deterministic re-materialization), so the request
// carries no payload.
type ReplicateRequest struct {
	Dataset string `json:"dataset"`
}

// ReplicateResponse reports the adoption outcome: Adopted when the edge
// newly holds and announced the replica, Already when it was a holder
// before the request.
type ReplicateResponse struct {
	Dataset string `json:"dataset"`
	Adopted bool   `json:"adopted"`
	Already bool   `json:"already"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}
