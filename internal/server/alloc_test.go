package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"scdn/internal/allocation"
	"scdn/internal/storage"
)

// Allocation budgets for the warm serving hot paths, in allocs/op.
// These are ratchets, not aspirations: the values pin what the current
// code achieves so a future change cannot silently re-inflate the hot
// path (ISSUE 7 acceptance: warm full-GET at or under the pre-refactor
// 4 allocs). Lower them when the paths get leaner; never raise one
// without a comment explaining what the new allocation buys.
const (
	allocBudgetDiskFull  = 0 // sendfile + pooled scratch: nothing left to allocate
	allocBudgetDiskRange = 0
	allocBudgetGenFull   = 0 // pooled copy buffer + pooled scratch
	allocBudgetGenRange  = 0
	// The warm segmented path crosses segment boundaries (pooled FDs,
	// interned segment keys) and must stay as lean as the whole-file
	// path (ISSUE 8 acceptance).
	allocBudgetSegFull  = 0
	allocBudgetSegRange = 0
	// Resolve walks the sharded catalog and copies one replica record
	// out under the shard lock; the copy and the per-call rand draw
	// dominate.
	allocBudgetResolve = 4
)

// serveAllocs measures steady-state allocs/op of the warm local serve
// path for the given store mode and Range header.
func serveAllocs(t *testing.T, n *Node, total int64, rangeHdr string) float64 {
	t.Helper()
	const id = storage.DatasetID("alloc-serve")
	req := httptest.NewRequest(http.MethodGet, "/v1/fetch/alloc-serve", nil)
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	rngs, isRange, err := parseRanges(rangeHdr, total)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, rng := range rngs {
		want += rng.n
	}
	w := &benchRW{h: make(http.Header)}
	for i := 0; i < 3; i++ { // warm: materialize replica, prime block + scratch pools
		w.n = 0
		if !n.serveLocal(w, req, id, rngs, isRange, total) {
			t.Fatal("serveLocal failed")
		}
	}
	return testing.AllocsPerRun(200, func() {
		w.n = 0
		n.serveLocal(w, req, id, rngs, isRange, total)
		if w.n != want {
			t.Fatalf("served %d bytes, want %d", w.n, want)
		}
	})
}

// TestServeAllocBudgets pins the warm-path allocation budgets. Skipped
// under -race: detector instrumentation allocates where production
// builds do not.
func TestServeAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	const total = int64(256 << 10)
	const rangeHdr = "bytes=5000-70535" // 64 KiB, mid-block offset
	newDiskNode := func(t *testing.T) *Node {
		vol, err := storage.NewDiskVolume(t.TempDir(), 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		return benchNode(vol)
	}
	// Segmented node: 64 KiB segments with the threshold at one segment,
	// so the 256 KiB test dataset takes the segmented layout (4 segments;
	// the range below crosses the 0-1 boundary).
	newSegNode := func(t *testing.T) *Node {
		n := newDiskNode(t)
		n.cfg.SegmentSize = 64 << 10
		n.cfg.SegmentThreshold = 64 << 10
		return n
	}
	cases := []struct {
		name     string
		node     func(*testing.T) *Node
		rangeHdr string
		budget   float64
	}{
		{"disk/full", newDiskNode, "", allocBudgetDiskFull},
		{"disk/range", newDiskNode, rangeHdr, allocBudgetDiskRange},
		{"generated/full", func(*testing.T) *Node { return benchNode(nil) }, "", allocBudgetGenFull},
		{"generated/range", func(*testing.T) *Node { return benchNode(nil) }, rangeHdr, allocBudgetGenRange},
		{"segment/full", newSegNode, "", allocBudgetSegFull},
		{"segment/range", newSegNode, rangeHdr, allocBudgetSegRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := serveAllocs(t, tc.node(t), total, tc.rangeHdr)
			if got > tc.budget {
				t.Errorf("warm %s = %.1f allocs/op, budget %.0f — the hot path re-inflated", tc.name, got, tc.budget)
			}
		})
	}
}

// TestResolveAllocBudget pins the catalog resolve hot path (the lookup
// every striped client pays once per dataset before its range fetches).
func TestResolveAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets are meaningless under the race detector")
	}
	reg := NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Register(Member{Node: allocation.NodeID(i + 1), Site: i, Online: true})
	}
	cat, err := NewCatalogSharded(2, reg, DefaultCatalogShards)
	if err != nil {
		t.Fatal(err)
	}
	var ids []storage.DatasetID
	for d := 0; d < 64; d++ {
		id := storage.DatasetID(fmt.Sprintf("alloc-%03d", d))
		if err := cat.RegisterDataset(id, allocation.NodeID(d%8+1), 1024); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	i := 0
	got := testing.AllocsPerRun(500, func() {
		id := ids[i%len(ids)]
		if _, ok, err := cat.Resolve(id, allocation.NodeID(i%8+1)); err != nil || !ok {
			t.Fatalf("resolve %s: ok=%v err=%v", id, ok, err)
		}
		i++
	})
	if got > allocBudgetResolve {
		t.Errorf("warm resolve = %.1f allocs/op, budget %d", got, allocBudgetResolve)
	}
}
