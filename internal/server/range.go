package server

import (
	"fmt"
	"strconv"
	"strings"
)

// byteRange is a resolved HTTP byte range: off is the first byte served,
// n the length in bytes.
type byteRange struct {
	off, n int64
}

// end returns the inclusive last-byte position (only valid for n > 0).
func (r byteRange) end() int64 { return r.off + r.n - 1 }

// contentRange renders the 206 Content-Range header value.
func (r byteRange) contentRange(total int64) string {
	return fmt.Sprintf("bytes %d-%d/%d", r.off, r.end(), total)
}

// header renders the client-side Range header value for this range.
func (r byteRange) header() string {
	return fmt.Sprintf("bytes=%d-%d", r.off, r.end())
}

// parseRange interprets a Range request header against a body of total
// bytes. It returns (range, true, nil) for a valid single range,
// (full, false, nil) when no Range header is present, and an error when
// the header is malformed or unsatisfiable — the delivery plane answers
// those with 416 rather than silently serving the full body, so a striped
// client can never mistake a whole payload for one stripe. Multipart
// ranges ("a-b,c-d") are deliberately unsupported: stripes are
// single-range by construction.
func parseRange(h string, total int64) (byteRange, bool, error) {
	if h == "" {
		return byteRange{off: 0, n: total}, false, nil
	}
	const prefix = "bytes="
	if !strings.HasPrefix(h, prefix) {
		return byteRange{}, false, fmt.Errorf("server: unsupported range unit in %q", h)
	}
	spec := strings.TrimSpace(h[len(prefix):])
	if strings.Contains(spec, ",") {
		return byteRange{}, false, fmt.Errorf("server: multipart ranges unsupported: %q", h)
	}
	dash := strings.Index(spec, "-")
	if dash < 0 {
		return byteRange{}, false, fmt.Errorf("server: malformed range %q", h)
	}
	first, last := strings.TrimSpace(spec[:dash]), strings.TrimSpace(spec[dash+1:])
	if first == "" {
		// Suffix form "bytes=-k": the final k bytes.
		k, err := strconv.ParseInt(last, 10, 64)
		if err != nil || k <= 0 {
			return byteRange{}, false, fmt.Errorf("server: malformed suffix range %q", h)
		}
		if k > total {
			k = total
		}
		if k == 0 {
			return byteRange{}, false, fmt.Errorf("server: unsatisfiable range %q for %d bytes", h, total)
		}
		return byteRange{off: total - k, n: k}, true, nil
	}
	off, err := strconv.ParseInt(first, 10, 64)
	if err != nil || off < 0 {
		return byteRange{}, false, fmt.Errorf("server: malformed range %q", h)
	}
	if off >= total {
		return byteRange{}, false, fmt.Errorf("server: unsatisfiable range %q for %d bytes", h, total)
	}
	end := total - 1
	if last != "" {
		end, err = strconv.ParseInt(last, 10, 64)
		if err != nil || end < off {
			return byteRange{}, false, fmt.Errorf("server: malformed range %q", h)
		}
		if end > total-1 {
			end = total - 1
		}
	}
	return byteRange{off: off, n: end - off + 1}, true, nil
}
