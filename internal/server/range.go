package server

import (
	"fmt"
	"net/textproto"
	"sort"
	"strconv"
	"strings"
)

// byteRange is a resolved HTTP byte range: off is the first byte served,
// n the length in bytes.
type byteRange struct {
	off, n int64
}

// end returns the inclusive last-byte position (only valid for n > 0).
func (r byteRange) end() int64 { return r.off + r.n - 1 }

// contentRange renders the 206 Content-Range header value.
func (r byteRange) contentRange(total int64) string {
	return fmt.Sprintf("bytes %d-%d/%d", r.off, r.end(), total)
}

// header renders the client-side Range header value for this range.
func (r byteRange) header() string {
	return fmt.Sprintf("bytes=%d-%d", r.off, r.end())
}

// mimeHeader renders the per-part headers of a multipart/byteranges part.
func (r byteRange) mimeHeader(total int64) textproto.MIMEHeader {
	return textproto.MIMEHeader{
		"Content-Range": {r.contentRange(total)},
		"Content-Type":  {"application/octet-stream"},
	}
}

// rangesHeader renders the client-side Range header for a set of parts
// ("bytes=a-b,c-d"), the form forwarded to a peer on a proxied
// multipart fetch.
func rangesHeader(rngs []byteRange) string {
	var b strings.Builder
	b.WriteString("bytes=")
	for i, r := range rngs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(r.off, 10))
		b.WriteByte('-')
		b.WriteString(strconv.FormatInt(r.end(), 10))
	}
	return b.String()
}

// maxRangeParts caps how many parts one multipart Range request may ask
// for (counted after merging). Each part costs a seek plus MIME framing;
// an unbounded list would let one request turn a sendfile stream into
// thousands of tiny scattered reads. GridFTP-style striping needs a
// handful of parts, not hundreds; past the cap the request is rejected
// with 416 like any other unsatisfiable range.
const maxRangeParts = 16

// parseRanges interprets a Range request header against a body of total
// bytes. It returns (parts, true, nil) for a valid range set — sorted by
// offset, with overlapping and adjacent parts merged, so callers always
// see a minimal ascending sequence — ([full], false, nil) when no Range
// header is present, and an error when the header is malformed or any
// part is unsatisfiable. The delivery plane answers errors with 416
// rather than silently serving the full body, so a striped client can
// never mistake a whole payload for one stripe; that strictness is
// deliberately tighter than RFC 7233's "ignore invalid Range" latitude
// and covers every part of a multipart spec, not just the set as a
// whole. A multipart spec that merges down to one part is served as a
// plain single-range 206.
func parseRanges(h string, total int64) ([]byteRange, bool, error) {
	if h == "" {
		return []byteRange{{off: 0, n: total}}, false, nil
	}
	const prefix = "bytes="
	if !strings.HasPrefix(h, prefix) {
		return nil, false, fmt.Errorf("server: unsupported range unit in %q", h)
	}
	spec := strings.TrimSpace(h[len(prefix):])
	specs := strings.Split(spec, ",")
	if len(specs) > maxRangeParts {
		return nil, false, fmt.Errorf("server: %d range parts exceeds the %d-part cap", len(specs), maxRangeParts)
	}
	parts := make([]byteRange, 0, len(specs))
	for _, s := range specs {
		r, err := parseOneRange(strings.TrimSpace(s), total)
		if err != nil {
			return nil, false, err
		}
		parts = append(parts, r)
	}
	return coalesceRanges(parts), true, nil
}

// parseRange is the single-range form used by stripe planning and the
// benchmark harness: identical to parseRanges but rejecting multipart
// specs, because a stripe is one range by construction.
func parseRange(h string, total int64) (byteRange, bool, error) {
	if strings.Contains(h, ",") {
		return byteRange{}, false, fmt.Errorf("server: multipart range where a single range is required: %q", h)
	}
	rngs, isRange, err := parseRanges(h, total)
	if err != nil {
		return byteRange{}, false, err
	}
	return rngs[0], isRange, nil
}

// parseOneRange interprets one range-spec element ("a-b", "a-", "-k")
// against a body of total bytes, clamping the end to the body.
func parseOneRange(spec string, total int64) (byteRange, error) {
	dash := strings.Index(spec, "-")
	if dash < 0 {
		return byteRange{}, fmt.Errorf("server: malformed range part %q", spec)
	}
	first, last := strings.TrimSpace(spec[:dash]), strings.TrimSpace(spec[dash+1:])
	if first == "" {
		// Suffix form "-k": the final k bytes.
		k, err := strconv.ParseInt(last, 10, 64)
		if err != nil || k <= 0 {
			return byteRange{}, fmt.Errorf("server: malformed suffix range %q", spec)
		}
		if k > total {
			k = total
		}
		if k == 0 {
			return byteRange{}, fmt.Errorf("server: unsatisfiable range %q for %d bytes", spec, total)
		}
		return byteRange{off: total - k, n: k}, nil
	}
	off, err := strconv.ParseInt(first, 10, 64)
	if err != nil || off < 0 {
		return byteRange{}, fmt.Errorf("server: malformed range part %q", spec)
	}
	if off >= total {
		return byteRange{}, fmt.Errorf("server: unsatisfiable range %q for %d bytes", spec, total)
	}
	end := total - 1
	if last != "" {
		end, err = strconv.ParseInt(last, 10, 64)
		if err != nil || end < off {
			return byteRange{}, fmt.Errorf("server: malformed range part %q", spec)
		}
		if end > total-1 {
			end = total - 1
		}
	}
	return byteRange{off: off, n: end - off + 1}, nil
}

// coalesceRanges sorts parts by offset and merges overlapping or
// directly adjacent parts, so "0-10,5-20" and "0-10,11-20" both become
// one "0-20" part. Clients request parts for transfer scheduling, not
// semantics: merging preserves every requested byte while keeping the
// response's seek pattern monotone and minimal.
func coalesceRanges(parts []byteRange) []byteRange {
	if len(parts) <= 1 {
		return parts
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].off < parts[j].off })
	out := parts[:1]
	for _, r := range parts[1:] {
		last := &out[len(out)-1]
		if r.off <= last.end()+1 {
			if r.end() > last.end() {
				last.n = r.end() - last.off + 1
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
