package server

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/ingest"
	"scdn/internal/storage"
)

// Segmented large-object delivery (ROADMAP item 4). Datasets at or
// above Config.SegmentThreshold are stored and served as fixed-size
// segment files (storage/segment.go), each an independent LRU entry in
// the replica volume: a giant dataset can be partially resident, its
// cold tail evicted and re-materialized per segment on demand instead
// of all-or-nothing. Segment boundaries are ingest block boundaries,
// so every segment verifies against the manifest's block digests, and
// the rolled-up segment digests publish through /v1/resolve as an
// HLS-style segment index. GET /v1/fetch/{dataset}/segments/{n} serves
// one segment (proxying to a peer holder when this edge has neither
// the bytes nor a generator), and pull-through adoption happens at
// segment granularity: a proxied large-object stream commits each
// verified segment as it completes, so even an interrupted pull leaves
// servable segments behind.

// segmented reports whether a dataset of this size takes the segmented
// layout on this node.
func (n *Node) segmented(total int64) bool {
	return n.cfg.SegmentThreshold > 0 && total >= n.cfg.SegmentThreshold
}

// errSegment covers segment files that vanished or went stale between
// index lookup and serve; static so the serve loop never formats an
// error on a path that can run per segment.
var errSegment = errors.New("server: segment unavailable")

// ensureSegment makes segment seg of the dataset resident, reporting
// success. The warm path is one interned-key map lookup.
func (n *Node) ensureSegment(id storage.DatasetID, seg, total int64) bool {
	if n.vol.HasSegment(id, seg) {
		return true
	}
	return n.materializeSegment(id, seg, total)
}

// materializeSegment writes one segment's deterministic bytes into the
// replica volume (single-flight per segment) and reports whether a
// committed segment now exists. Store counters account per segment, so
// a ranged fetch that re-materializes two evicted segments moves
// exactly two segments' worth of scdn_store_materialize_bytes_total.
func (n *Node) materializeSegment(id storage.DatasetID, seg, total int64) bool {
	segSize := n.cfg.SegmentSize
	extent := storage.SegmentExtent(total, segSize, seg)
	if extent <= 0 {
		return false
	}
	did, err := n.vol.MaterializeSegment(id, seg, extent, func(w io.Writer) error {
		block, hit := n.blocks.Block(id)
		if hit {
			n.Metrics.PayloadCacheHits.Inc()
		} else {
			n.Metrics.PayloadCacheMisses.Inc()
		}
		_, err := writeBlockRangeBuffered(w, block, seg*segSize, extent)
		return err
	})
	if err != nil {
		n.Metrics.StoreSpillFailures.Inc()
		return false
	}
	if did {
		n.Metrics.StoreMaterializations.Inc()
		n.Metrics.StoreMaterializedBytes.Add(uint64(extent))
	}
	return true
}

// copySegmentRange streams the dataset window [off, off+length) by
// walking its segments: each one is opened (materialized first when
// evicted), advised for sequential readahead on a fresh descriptor,
// seeked, and copied. When a segment is streamed end to end its page
// cache is dropped behind the copy (posix_fadvise DONTNEED) unless
// Config.KeepSegmentPages — one giant transfer must not evict the warm
// small-object working set. With a scratch the warm path allocates
// nothing: interned segment keys, pooled descriptors, and the pooled
// LimitedReader that net/http unwraps onto sendfile.
func (n *Node) copySegmentRange(dst io.Writer, sc *fetchScratch, id storage.DatasetID,
	total, off, length int64) error {
	segSize := n.cfg.SegmentSize
	drop := !n.cfg.KeepSegmentPages
	for length > 0 {
		seg := off / segSize
		extent := storage.SegmentExtent(total, segSize, seg)
		if extent <= 0 {
			return errSegment
		}
		segOff := off - seg*segSize
		chunk := extent - segOff
		if chunk > length {
			chunk = length
		}
		f, size, fresh, ok := n.vol.OpenSegment(id, seg)
		if !ok {
			if !n.materializeSegment(id, seg, total) {
				return errSegment
			}
			if f, size, fresh, ok = n.vol.OpenSegment(id, seg); !ok {
				return errSegment
			}
		}
		if size != extent {
			// Stale segment (catalog size changed under it): drop it and
			// re-materialize on the next access, never serve wrong bytes.
			n.vol.ReleaseSegment(id, seg, f)
			n.vol.Remove(storage.SegmentKey(id, seg))
			return errSegment
		}
		if fresh && storage.FadviseSequential(f) {
			n.Metrics.StoreFadviseSequential.Inc()
		}
		if _, err := f.Seek(segOff, io.SeekStart); err != nil {
			n.vol.ReleaseSegment(id, seg, f)
			return err
		}
		var err error
		if sc != nil {
			sc.lr = io.LimitedReader{R: f, N: chunk}
			_, err = io.Copy(dst, &sc.lr)
		} else {
			_, err = io.CopyN(dst, f, chunk)
		}
		if err == nil && drop && segOff == 0 && chunk == extent {
			// Complete sequential pass: this serve touched every page of
			// the segment once and will not come back for them.
			if storage.FadviseDontNeed(f, 0, 0) {
				n.Metrics.StoreFadviseDontNeed.Inc()
			}
		}
		n.vol.ReleaseSegment(id, seg, f)
		if err != nil {
			return err
		}
		off += chunk
		length -= chunk
	}
	return nil
}

// serveSegments is serveDisk for the segmented layout: the dataset's
// bytes come from per-segment replica files, materialized on demand,
// so a quota-constrained volume serves datasets far larger than
// itself. Returns false (before any header is written) when the first
// needed segment cannot be produced — the caller falls back to the
// whole-file or generated path.
func (n *Node) serveSegments(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	rngs []byteRange, isRange bool, total int64) bool {
	if !n.ensureSegment(id, rngs[0].off/n.cfg.SegmentSize, total) {
		return false
	}
	n.Metrics.StoreDiskHits.Inc()
	n.Metrics.SegmentedServes.Inc()
	h := w.Header()
	h["Accept-Ranges"] = acceptRangesHeader
	h["X-Scdn-Source"] = n.srcHdr
	if len(rngs) > 1 {
		n.Metrics.RangeRequests.Inc()
		n.Metrics.RangeMultipart.Inc()
		served := writeMultipart(w, r, rngs, total, func(pw io.Writer, rng byteRange) error {
			return n.copySegmentRange(pw, nil, id, total, rng.off, rng.n)
		})
		n.Metrics.LocalHits.Inc()
		n.Metrics.BytesServed.Add(uint64(served))
		return true
	}
	rng := rngs[0]
	h["Content-Type"] = octetStreamHeader
	if useScratch(r, rng.n) {
		sc := fetchScratchPool.Get().(*fetchScratch)
		defer fetchScratchPool.Put(sc)
		h["Content-Length"] = sc.contentLength(rng.n)
		if isRange {
			n.Metrics.RangeRequests.Inc()
			h["Content-Range"] = sc.contentRange(rng, total)
			w.WriteHeader(http.StatusPartialContent)
		} else {
			w.WriteHeader(http.StatusOK)
		}
		_ = n.copySegmentRange(w, sc, id, total, rng.off, rng.n)
	} else {
		h.Set("Content-Length", strconv.FormatInt(rng.n, 10))
		status := http.StatusOK
		if isRange {
			n.Metrics.RangeRequests.Inc()
			h.Set("Content-Range", rng.contentRange(total))
			status = http.StatusPartialContent
		}
		w.WriteHeader(status)
		if r.Method != http.MethodHead {
			_ = n.copySegmentRange(w, nil, id, total, rng.off, rng.n)
		}
	}
	n.Metrics.LocalHits.Inc()
	n.Metrics.BytesServed.Add(uint64(rng.n))
	return true
}

// handleFetchSegment is GET /v1/fetch/{dataset}/segments/{n}: one
// whole segment of a segmented dataset as a plain 200 — the HLS-style
// chunk surface that lets clients and peers move large objects in
// independently fetchable, independently verifiable pieces.
func (n *Node) handleFetchSegment(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := storage.DatasetID(r.PathValue("dataset"))
	fromPeer := r.Header.Get(peerHeader) != ""
	if fromPeer {
		n.Metrics.PeerSegmentFetchRequests.Inc()
	} else {
		n.Metrics.SegmentFetchRequests.Inc()
		defer func() { n.Metrics.SegmentFetchLatency.Observe(time.Since(start).Seconds()) }()
	}
	fail := func(status int, err error) {
		if !fromPeer {
			n.Metrics.SegmentFetchFailures.Inc()
		}
		writeError(w, status, err)
	}
	if _, err := n.auth.Authorize(bearerToken(r), id); err != nil {
		n.Metrics.AuthDenied.Inc()
		fail(http.StatusForbidden, err)
		return
	}
	total, err := n.catalog.DatasetBytes(id)
	if err != nil {
		fail(http.StatusNotFound, err)
		return
	}
	if !n.segmented(total) {
		fail(http.StatusNotFound, fmt.Errorf("server: dataset %q is not segmented", id))
		return
	}
	count := storage.SegmentCount(total, n.cfg.SegmentSize)
	seg, perr := strconv.ParseInt(r.PathValue("n"), 10, 64)
	if perr != nil || seg < 0 || seg >= count {
		fail(http.StatusNotFound,
			fmt.Errorf("server: segment %q of %q outside [0, %d)", r.PathValue("n"), id, count))
		return
	}
	if n.serveSegmentLocal(w, r, id, seg, total) {
		return
	}
	if fromPeer {
		// Peer hops never fan out again: a fallback chain is one hop.
		fail(http.StatusNotFound,
			fmt.Errorf("server: node %d does not hold segment %d of %q", n.cfg.Node, seg, id))
		return
	}
	n.proxySegment(w, r, id, seg, total, fail)
}

// serveSegmentLocal streams one segment from whatever this edge has: a
// whole-file replica (opaque uploads commit as one file — the segment
// is a window into it), a per-segment file (cached from a peer pull or
// materialized), or the deterministic generator. Returns false, before
// any header is written, when none of those can produce the bytes.
func (n *Node) serveSegmentLocal(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	seg, total int64) bool {
	segSize := n.cfg.SegmentSize
	extent := storage.SegmentExtent(total, segSize, seg)
	off := seg * segSize
	man, hasMan := n.manifests.Get(id)
	opaque := hasMan && man.Opaque
	if n.vol != nil {
		if f, size, ok := n.vol.Open(id); ok {
			// Whole-file replica: serve the segment window out of it.
			if size != total {
				n.vol.Release(id, f)
				n.vol.Remove(id)
				return false
			}
			if _, err := f.Seek(off, io.SeekStart); err != nil {
				n.vol.Release(id, f)
				return false
			}
			n.Metrics.StoreDiskHits.Inc()
			n.writeSegment(w, r, extent, func(dst io.Writer, sc *fetchScratch) {
				if sc != nil {
					sc.lr = io.LimitedReader{R: f, N: extent}
					_, _ = io.Copy(dst, &sc.lr)
				} else {
					_, _ = io.CopyN(dst, f, extent)
				}
			})
			n.vol.Release(id, f)
			return true
		}
		// Per-segment file: serve what is cached, and materialize on
		// demand when this edge is a holder of a regenerable dataset.
		if n.vol.HasSegment(id, seg) || (!opaque && n.hasLocal(id)) {
			if !n.ensureSegment(id, seg, total) {
				return false
			}
			n.Metrics.StoreDiskHits.Inc()
			n.writeSegment(w, r, extent, func(dst io.Writer, sc *fetchScratch) {
				_ = n.copySegmentRange(dst, sc, id, total, off, extent)
			})
			return true
		}
		return false
	}
	// Generated mode: synthesize the window for regenerable datasets
	// this edge holds.
	if opaque || !n.hasLocal(id) {
		return false
	}
	block, hit := n.blocks.Block(id)
	if hit {
		n.Metrics.PayloadCacheHits.Inc()
	} else {
		n.Metrics.PayloadCacheMisses.Inc()
	}
	n.writeSegment(w, r, extent, func(dst io.Writer, _ *fetchScratch) {
		_, _ = writeBlockRangeBuffered(dst, block, off, extent)
	})
	return true
}

// writeSegment writes a segment response: minimal headers (the segment
// index lives on /v1/resolve, not in per-segment headers), a 200, and
// the body produced by body. The scratch path keeps warm segment
// serves free of header-value allocations, same as the fetch path.
func (n *Node) writeSegment(w http.ResponseWriter, r *http.Request, extent int64,
	body func(io.Writer, *fetchScratch)) {
	h := w.Header()
	h["Content-Type"] = octetStreamHeader
	h["X-Scdn-Source"] = n.srcHdr
	if useScratch(r, extent) {
		sc := fetchScratchPool.Get().(*fetchScratch)
		defer fetchScratchPool.Put(sc)
		h["Content-Length"] = sc.contentLength(extent)
		w.WriteHeader(http.StatusOK)
		body(w, sc)
	} else {
		h.Set("Content-Length", strconv.FormatInt(extent, 10))
		w.WriteHeader(http.StatusOK)
		if r.Method != http.MethodHead {
			body(w, nil)
		}
	}
	n.Metrics.LocalHits.Inc()
	n.Metrics.BytesServed.Add(uint64(extent))
}

// proxySegment fetches one segment from a peer holder (one hop, RTT-
// ordered candidates, bounded retry with backoff — the same fallback
// discipline as proxyFetch) and streams it through, adopting the
// verified segment into the local volume on the way past when
// pull-through is enabled. Adoption is segment-granular: no catalog
// replica record is minted for holding a piece of a dataset.
func (n *Node) proxySegment(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	seg, total int64, fail func(int, error)) {
	reps, err := n.catalog.Replicas(id)
	if err != nil {
		fail(http.StatusBadGateway, err)
		return
	}
	origin, err := n.catalog.Origin(id)
	if err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	cands := n.orderCandidates(reps)
	if len(cands) == 0 {
		n.serveUnavailable(w, id)
		return
	}
	backoff := n.cfg.RetryBase
	var lastErr error
	for attempt := 0; attempt < n.cfg.FetchAttempts; attempt++ {
		if attempt > 0 {
			n.Metrics.PeerRetries.Inc()
			select {
			case <-r.Context().Done():
				fail(http.StatusBadGateway, r.Context().Err())
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > n.cfg.RetryMax {
				backoff = n.cfg.RetryMax
			}
		}
		cand := cands[attempt%len(cands)]
		committed, err := n.tryPeerSegment(w, r, id, cand, seg, total, origin)
		if committed {
			return
		}
		lastErr = err
	}
	if len(n.orderCandidates(cands)) == 0 {
		n.serveUnavailable(w, id)
		return
	}
	fail(http.StatusBadGateway,
		fmt.Errorf("server: all %d segment fetch attempts for %q/%d failed: %w",
			n.cfg.FetchAttempts, id, seg, lastErr))
}

// tryPeerSegment fetches one segment from one peer and streams it to
// the client, spilling a manifest-verified copy into the local segment
// file when pull-through is on. committed reports whether a response
// was written (successfully or not) — once headers are on the wire
// there is no retrying.
func (n *Node) tryPeerSegment(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	cand allocation.Replica, seg, total int64, origin allocation.NodeID) (committed bool, _ error) {
	base, ok := n.registry.BaseURL(cand.Node)
	if !ok {
		return false, ErrNoEndpoint
	}
	extent := storage.SegmentExtent(total, n.cfg.SegmentSize, seg)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		segmentURL(base, id, seg), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set(peerHeader, n.srcID)
	req.Header.Set("Authorization", r.Header.Get("Authorization"))
	resp, err := n.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drainBody(resp.Body)
		return false, fmt.Errorf("server: peer %d returned %s for segment %d", cand.Node, resp.Status, seg)
	}
	// Segment pull-through: spill the stream into the per-segment file,
	// verified against the manifest's block digests over exactly this
	// segment's window. Spill problems never fail the client's stream.
	var spill *storage.Spill
	var verifier *ingest.RangeVerifier
	man, hasMan := n.manifests.Get(id)
	if n.cfg.PullThrough && n.vol != nil && !n.vol.HasSegment(id, seg) &&
		hasMan && n.cfg.SegmentSize%man.BlockSize == 0 {
		if sp, serr := n.vol.NewSegmentSpill(id, seg); serr == nil {
			if vv, verr := man.NewRangeVerifier(seg*n.cfg.SegmentSize, extent); verr == nil {
				spill, verifier = sp, vv
			} else {
				sp.Abort()
				n.Metrics.StoreSpillFailures.Inc()
			}
		} else {
			n.Metrics.StoreSpillFailures.Inc()
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(extent, 10))
	w.Header().Set("X-SCDN-Source", n.srcID)
	w.WriteHeader(http.StatusOK)
	dst := io.Writer(w)
	var spillW *bestEffortWriter
	if spill != nil {
		spillW = &bestEffortWriter{w: io.MultiWriter(verifier, spill)}
		dst = io.MultiWriter(w, spillW)
	}
	written, copyErr := copyBuffered(dst, resp.Body)
	n.Metrics.BytesServed.Add(uint64(written))
	if copyErr != nil || written != extent {
		if spill != nil {
			spill.Abort()
			n.Metrics.StoreSpillFailures.Inc()
		}
		n.Metrics.SegmentFetchFailures.Inc()
		return true, copyErr
	}
	if cand.Node == origin {
		n.Metrics.OriginFetches.Inc()
	} else {
		n.Metrics.PeerHits.Inc()
	}
	if spill != nil {
		var verr error
		if spillW.err == nil {
			verr = verifier.Close()
		}
		switch {
		case errors.Is(spillW.err, ingest.ErrDigestMismatch) || errors.Is(verr, ingest.ErrDigestMismatch):
			// The peer's bytes do not match the manifest window: never
			// adopt them. The client's own stream already carried the bad
			// bytes — end-to-end verification catches that side.
			spill.Abort()
			n.Metrics.IngestDigestRejects.Inc()
		case spillW.err != nil || verr != nil:
			spill.Abort()
			n.Metrics.StoreSpillFailures.Inc()
		default:
			if err := spill.Commit(extent); err != nil {
				n.Metrics.StoreSpillFailures.Inc()
			} else {
				n.Metrics.SegmentPulls.Inc()
			}
		}
	}
	return true, nil
}

// segmentURL renders the segment endpoint URL for a peer hop.
func segmentURL(base string, id storage.DatasetID, seg int64) string {
	return base + "/v1/fetch/" + url.PathEscape(string(id)) + "/segments/" + strconv.FormatInt(seg, 10)
}

// segmentDigestIndex returns the dataset's rolled-up segment digests
// in hex (the /v1/resolve segment index), computed once per dataset
// and cached — the roll-up hashes 32 bytes per ingest block, never
// payload bytes, but resolves should still not repeat it. Nil when the
// dataset has no manifest, its size disagrees with the catalog, or its
// block size does not divide the segment size.
func (n *Node) segmentDigestIndex(id storage.DatasetID, total int64) []string {
	n.segIdxMu.Lock()
	cached, ok := n.segIdx[id]
	n.segIdxMu.Unlock()
	if ok {
		return cached
	}
	man, hasMan := n.manifests.Get(id)
	if !hasMan || man.Size != total || n.cfg.SegmentSize%man.BlockSize != 0 {
		return nil
	}
	digests, err := man.SegmentDigests(n.cfg.SegmentSize)
	if err != nil {
		return nil
	}
	hexes := make([]string, len(digests))
	for i, d := range digests {
		hexes[i] = hex.EncodeToString(d[:])
	}
	n.segIdxMu.Lock()
	if n.segIdx == nil {
		n.segIdx = make(map[storage.DatasetID][]string)
	}
	n.segIdx[id] = hexes
	n.segIdxMu.Unlock()
	return hexes
}

// segmentSpillWriter splits a whole-dataset pull-through stream into
// per-segment spills: each segment's bytes are verified against the
// manifest's block digests for exactly that window and committed the
// moment they complete. An interrupted or partially corrupt transfer
// still leaves every clean, complete segment servable — pull-through
// adopts segments, not whole datasets.
type segmentSpillWriter struct {
	n         *Node
	id        storage.DatasetID
	man       *ingest.Manifest
	total     int64
	off       int64
	cur       *storage.Spill
	verifier  *ingest.RangeVerifier
	committed int64
}

func (s *segmentSpillWriter) Write(p []byte) (int, error) {
	segSize := s.n.cfg.SegmentSize
	written := 0
	for len(p) > 0 {
		if s.off >= s.total {
			return written, fmt.Errorf("server: segment spill for %q overflows %d bytes", s.id, s.total)
		}
		seg := s.off / segSize
		extent := storage.SegmentExtent(s.total, segSize, seg)
		segOff := s.off - seg*segSize
		if s.cur == nil {
			sp, err := s.n.vol.NewSegmentSpill(s.id, seg)
			if err != nil {
				return written, err
			}
			vv, err := s.man.NewRangeVerifier(seg*segSize, extent)
			if err != nil {
				sp.Abort()
				return written, err
			}
			s.cur, s.verifier = sp, vv
		}
		chunk := extent - segOff
		if int64(len(p)) < chunk {
			chunk = int64(len(p))
		}
		if _, err := s.verifier.Write(p[:chunk]); err != nil {
			s.abortCur()
			return written, err
		}
		if _, err := s.cur.Write(p[:chunk]); err != nil {
			s.abortCur()
			return written, err
		}
		s.off += chunk
		written += int(chunk)
		p = p[chunk:]
		if s.off == seg*segSize+extent {
			if err := s.verifier.Close(); err != nil {
				s.abortCur()
				return written, err
			}
			cur := s.cur
			s.cur, s.verifier = nil, nil
			if err := cur.Commit(extent); err != nil {
				return written, err
			}
			s.committed++
			s.n.Metrics.SegmentPulls.Inc()
		}
	}
	return written, nil
}

// noteSegSpillErr classifies the first error a segment-spill sink
// swallowed: corrupt peer bytes count as digest rejects, everything
// else as spill failures. The client's stream already succeeded either
// way — adoption problems are never fetch problems.
func (n *Node) noteSegSpillErr(spillW *bestEffortWriter) {
	switch {
	case spillW == nil || spillW.err == nil:
	case errors.Is(spillW.err, ingest.ErrDigestMismatch):
		n.Metrics.IngestDigestRejects.Inc()
	default:
		n.Metrics.StoreSpillFailures.Inc()
	}
}

// abortCur discards the in-flight segment spill after an error.
func (s *segmentSpillWriter) abortCur() {
	if s.cur != nil {
		s.cur.Abort()
		s.cur, s.verifier = nil, nil
	}
}

// finish closes out the writer after the stream ends, aborting any
// incomplete tail segment, and reports whether every segment of the
// dataset committed.
func (s *segmentSpillWriter) finish() bool {
	s.abortCur()
	return s.committed == storage.SegmentCount(s.total, s.n.cfg.SegmentSize)
}
