package server

import (
	"strings"
	"testing"
	"time"
)

func TestParseChurnSpec(t *testing.T) {
	spec, err := ParseChurnSpec("kill=2,restart=5s")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kills != 2 || spec.Restart != 5*time.Second || spec.Spacing != 2*time.Second {
		t.Fatalf("spec = %+v", spec)
	}

	spec, err = ParseChurnSpec("kill=1,restart=never,spacing=500ms")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Restart >= 0 {
		t.Fatalf("restart=never should be negative, got %v", spec.Restart)
	}
	if spec.Spacing != 500*time.Millisecond {
		t.Fatalf("spacing = %v", spec.Spacing)
	}

	for _, bad := range []string{
		"",                 // empty
		"kill=0",           // non-positive count
		"restart=5s",       // kill missing
		"kill=2,nope=3",    // unknown key (typos must not run a different experiment)
		"kill=2,restart",   // not key=value
		"kill=2,spacing=0", // non-positive spacing
	} {
		if _, err := ParseChurnSpec(bad); err == nil {
			t.Errorf("ParseChurnSpec(%q) accepted, want error", bad)
		}
	}
}

func TestChurnSpecEvents(t *testing.T) {
	// More kills than the cluster can lose: capped at nodes-1 so a
	// survivor always remains to repair around the dead.
	ev := ChurnSpec{Kills: 10, Restart: time.Second, Spacing: time.Second}.Events(3, 42)
	kills, restarts := 0, 0
	victims := map[int64]bool{}
	for _, e := range ev {
		switch e.Action {
		case ChurnKill:
			kills++
			if victims[int64(e.Node)] {
				t.Fatalf("node %d killed twice", e.Node)
			}
			victims[int64(e.Node)] = true
		case ChurnRestart:
			restarts++
		}
	}
	if kills != 2 || restarts != 2 {
		t.Fatalf("kills=%d restarts=%d, want 2/2 (capped at nodes-1)", kills, restarts)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatal("events not sorted by offset")
		}
	}

	// Same seed, same schedule: churn runs must be reproducible.
	again := ChurnSpec{Kills: 10, Restart: time.Second, Spacing: time.Second}.Events(3, 42)
	if len(again) != len(ev) {
		t.Fatal("schedule not deterministic")
	}
	for i := range ev {
		if ev[i] != again[i] {
			t.Fatalf("event %d differs across runs: %+v vs %+v", i, ev[i], again[i])
		}
	}

	if got := (ChurnSpec{Kills: 0}).Events(3, 1); got != nil {
		t.Fatalf("zero kills should produce no events, got %v", got)
	}

	// restart=never leaves victims down.
	for _, e := range (ChurnSpec{Kills: 1, Restart: -1, Spacing: time.Second}).Events(3, 1) {
		if e.Action == ChurnRestart {
			t.Fatal("restart=never schedule contains a restart")
		}
	}
}

func TestParseChurnScript(t *testing.T) {
	script := `
# take node 2 down hard, node 3 politely, bring both back
2s kill 2
7s restart 2

3s stop 3
9s restart 3
`
	ev, err := ParseChurnScript(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	// Sorted by offset regardless of line order.
	want := []ChurnEvent{
		{At: 2 * time.Second, Action: ChurnKill, Node: 2},
		{At: 3 * time.Second, Action: ChurnStop, Node: 3},
		{At: 7 * time.Second, Action: ChurnRestart, Node: 2},
		{At: 9 * time.Second, Action: ChurnRestart, Node: 3},
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, ev[i], want[i])
		}
	}

	for _, bad := range []string{
		"2s kill",      // missing node
		"2s reboot 1",  // unknown action
		"2s kill zero", // non-numeric node
		"2s kill 0",    // node IDs are 1-based
		"soon kill 1",  // bad offset
	} {
		if _, err := ParseChurnScript(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseChurnScript(%q) accepted, want error", bad)
		}
	}
}
