package server

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistSummary(t *testing.T) {
	var h LatencyHist
	if s := h.Summary(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Summary()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 0.050 || s.P95 != 0.095 || s.P99 != 0.099 {
		t.Fatalf("quantiles = %+v", s)
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	var h LatencyHist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.001)
				_ = h.Summary()
			}
		}()
	}
	wg.Wait()
	if s := h.Summary(); s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
}

func TestWriteExposition(t *testing.T) {
	m := &Metrics{}
	m.FetchRequests.Add(7)
	m.LocalHits.Add(5)
	m.BytesServed.Add(1234)
	m.FetchLatency.Observe(0.25)
	var sb strings.Builder
	if err := m.WriteExposition(&sb, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"scdn_up 1\n",
		"scdn_uptime_seconds 3.000\n",
		"scdn_fetch_requests_total 7\n",
		"scdn_local_hits_total 5\n",
		"scdn_bytes_served_total 1234\n",
		"scdn_fetch_latency_seconds{quantile=\"0.5\"} 0.250000\n",
		"scdn_fetch_latency_seconds_count 1\n",
		"scdn_resolve_latency_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
