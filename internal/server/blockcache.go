package server

import (
	"container/list"
	"sync"

	"scdn/internal/storage"
)

// DefaultBlockCacheBlocks is the block-cache capacity NewNode uses when
// the config leaves it zero: 1024 cached repetition blocks (4 MiB), far
// more datasets than a single edge typically serves.
const DefaultBlockCacheBlocks = 1024

// BlockCache memoizes payload repetition blocks so the SHA-256 chain that
// derives a dataset's bytes is paid once per dataset instead of once per
// request. It is an LRU over immutable blocks with single-flight misses:
// concurrent first requests for the same dataset compute the block once
// and the rest wait for it, so a thundering herd on a cold dataset does
// not burn a core per connection.
type BlockCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[storage.DatasetID]*list.Element
	inflight map[storage.DatasetID]*inflightBlock
}

type cacheEntry struct {
	id    storage.DatasetID
	block []byte
}

type inflightBlock struct {
	wg    sync.WaitGroup
	block []byte
}

// NewBlockCache returns a cache holding up to capacity blocks
// (DefaultBlockCacheBlocks if capacity <= 0).
func NewBlockCache(capacity int) *BlockCache {
	if capacity <= 0 {
		capacity = DefaultBlockCacheBlocks
	}
	return &BlockCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[storage.DatasetID]*list.Element),
		inflight: make(map[storage.DatasetID]*inflightBlock),
	}
}

// Block returns the dataset's repetition block and whether it was served
// from cache. Callers must treat the block as read-only — it is shared.
// A caller that joins another goroutine's in-flight computation counts as
// a hit: it did not pay the hash cost.
func (c *BlockCache) Block(id storage.DatasetID) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		block := el.Value.(*cacheEntry).block
		c.mu.Unlock()
		return block, true
	}
	if fl, ok := c.inflight[id]; ok {
		c.mu.Unlock()
		fl.wg.Wait()
		return fl.block, true
	}
	fl := &inflightBlock{}
	fl.wg.Add(1)
	c.inflight[id] = fl
	c.mu.Unlock()

	fl.block = payloadBlock(id)

	c.mu.Lock()
	delete(c.inflight, id)
	// A concurrent eviction cycle cannot have inserted id (inserts only
	// happen here, and id was held in inflight), so insert unconditionally.
	el := c.ll.PushFront(&cacheEntry{id: id, block: fl.block})
	c.items[id] = el
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).id)
	}
	c.mu.Unlock()
	fl.wg.Done()
	return fl.block, false
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
