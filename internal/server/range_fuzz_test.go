package server

import "testing"

// FuzzParseRange holds parseRange to its contract under arbitrary Range
// headers: accepted ranges are in-bounds and non-empty, the full-body
// result only ever comes from an absent header, and re-rendering an
// accepted range parses back to the same range (fixed point) — so a
// stripe plan echoed through HTTP can never drift.
func FuzzParseRange(f *testing.F) {
	f.Add("", int64(4096))
	f.Add("bytes=0-99", int64(8192))
	f.Add("bytes=-256", int64(10000))
	f.Add("bytes=100-", int64(512))
	f.Add("bytes=5000-5000", int64(10000))
	f.Add("bytes=0-10,20-30", int64(4096))
	f.Add("bytes=9-5", int64(4096))
	f.Add("bytes=-0", int64(4096))
	f.Fuzz(func(t *testing.T, h string, total int64) {
		if total < 0 {
			t.Skip("dataset sizes are non-negative by construction")
		}
		r, partial, err := parseRange(h, total)
		if err != nil {
			return // rejected headers carry no further obligations
		}
		if !partial {
			if h != "" {
				t.Fatalf("parseRange(%q, %d) = full body for a present header", h, total)
			}
			if r.off != 0 || r.n != total {
				t.Fatalf("parseRange(%q, %d) full body = {off %d, n %d}", h, total, r.off, r.n)
			}
			return
		}
		if r.off < 0 || r.n < 1 {
			t.Fatalf("parseRange(%q, %d) = {off %d, n %d}: empty or negative", h, total, r.off, r.n)
		}
		if r.off+r.n < r.off || r.off+r.n > total {
			t.Fatalf("parseRange(%q, %d) = {off %d, n %d}: out of bounds (or overflow)", h, total, r.off, r.n)
		}
		r2, partial2, err2 := parseRange(r.header(), total)
		if err2 != nil || !partial2 || r2 != r {
			t.Fatalf("parseRange(%q, %d) = %+v, but reparsing its header %q gave (%+v, %v, %v)",
				h, total, r, r.header(), r2, partial2, err2)
		}
	})
}
