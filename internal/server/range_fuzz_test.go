package server

import "testing"

// FuzzParseRange holds parseRanges to its contract under arbitrary Range
// headers: accepted range sets are in-bounds, non-empty, sorted,
// non-overlapping and non-adjacent (fully coalesced), the full-body
// result only ever comes from an absent header, and re-rendering an
// accepted set parses back to the same set (fixed point) — so a stripe
// plan echoed through HTTP can never drift. The single-range
// parseRange wrapper must agree with parseRanges on every
// comma-free header.
func FuzzParseRange(f *testing.F) {
	f.Add("", int64(4096))
	f.Add("bytes=0-99", int64(8192))
	f.Add("bytes=-256", int64(10000))
	f.Add("bytes=100-", int64(512))
	f.Add("bytes=5000-5000", int64(10000))
	f.Add("bytes=0-10,20-30", int64(4096))
	f.Add("bytes=20-30,0-10", int64(4096))
	f.Add("bytes=0-10,5-30", int64(4096))
	f.Add("bytes=0-10,11-30", int64(4096))
	f.Add("bytes=0-10, 20-30, -100", int64(4096))
	f.Add("bytes=0-,-1", int64(4096))
	f.Add("bytes=0-0,2-2,4-4,6-6,8-8,10-10,12-12,14-14,16-16", int64(64))
	f.Add("bytes=0-10,20-oops", int64(4096))
	f.Add("bytes=0-10,,20-30", int64(4096))
	f.Add("bytes=9-5", int64(4096))
	f.Add("bytes=-0", int64(4096))
	f.Fuzz(func(t *testing.T, h string, total int64) {
		if total < 0 {
			t.Skip("dataset sizes are non-negative by construction")
		}
		rngs, partial, err := parseRanges(h, total)
		if err != nil {
			return // rejected headers carry no further obligations
		}
		if !partial {
			if h != "" {
				t.Fatalf("parseRanges(%q, %d) = full body for a present header", h, total)
			}
			if len(rngs) != 1 || rngs[0].off != 0 || rngs[0].n != total {
				t.Fatalf("parseRanges(%q, %d) full body = %+v", h, total, rngs)
			}
			return
		}
		if len(rngs) == 0 || len(rngs) > maxRangeParts {
			t.Fatalf("parseRanges(%q, %d) = %d parts", h, total, len(rngs))
		}
		for i, r := range rngs {
			if r.off < 0 || r.n < 1 {
				t.Fatalf("parseRanges(%q, %d)[%d] = {off %d, n %d}: empty or negative", h, total, i, r.off, r.n)
			}
			if r.off+r.n < r.off || r.off+r.n > total {
				t.Fatalf("parseRanges(%q, %d)[%d] = {off %d, n %d}: out of bounds (or overflow)", h, total, i, r.off, r.n)
			}
			if i > 0 && r.off <= rngs[i-1].end()+1 {
				t.Fatalf("parseRanges(%q, %d): parts %d,%d unsorted or uncoalesced: %+v", h, total, i-1, i, rngs)
			}
		}
		// Fixed point: rendering the set and reparsing returns it verbatim.
		rendered := rangesHeader(rngs)
		rngs2, partial2, err2 := parseRanges(rendered, total)
		if err2 != nil || !partial2 || len(rngs2) != len(rngs) {
			t.Fatalf("parseRanges(%q, %d) = %+v, but reparsing its header %q gave (%+v, %v, %v)",
				h, total, rngs, rendered, rngs2, partial2, err2)
		}
		for i := range rngs {
			if rngs2[i] != rngs[i] {
				t.Fatalf("reparse drifted at part %d: %+v vs %+v", i, rngs[i], rngs2[i])
			}
		}
		// The single-range wrapper agrees on every single-part result it
		// accepts (it rejects all specs containing a comma, merged or not).
		if len(rngs) == 1 {
			if r1, p1, err1 := parseRange(rngs[0].header(), total); err1 != nil || !p1 || r1 != rngs[0] {
				t.Fatalf("parseRange(%q, %d) = (%+v, %v, %v), disagrees with parseRanges",
					rngs[0].header(), total, r1, p1, err1)
			}
		}
	})
}
