package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/ingest"
	"scdn/internal/middleware"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// ClusterConfig parameterizes an in-process edge cluster listening on
// real TCP sockets — the serving-plane analogue of the simulator's
// Community.Build.
type ClusterConfig struct {
	// Nodes is the edge-server count (default 3).
	Nodes int
	// Sites spreads nodes and users across this many network sites
	// (default: one site per node).
	Sites int
	// CatalogServers is the allocation-cluster membership (default 2).
	CatalogServers int
	// CatalogShards is the catalog's lock-shard count, rounded up to a
	// power of two (default DefaultCatalogShards).
	CatalogShards int
	// BlockCacheBlocks caps each edge's payload-block cache (default
	// DefaultBlockCacheBlocks).
	BlockCacheBlocks int
	// Users is the number of client-only participants (default 8).
	Users int
	// Datasets is the number of published datasets (default 12) of
	// DatasetBytes each (default 64 KiB), owned round-robin by the edges.
	Datasets     int
	DatasetBytes int64
	// NoSeedDatasets starts the cluster with zero published datasets
	// (ingest-driven runs: every dataset enters through an upload).
	NoSeedDatasets bool
	// RepoCapacity / ReplicaReserve size each edge repository
	// (defaults 1 GiB / 512 MiB).
	RepoCapacity   int64
	ReplicaReserve int64
	// StoreMode selects how edges produce payload bytes: "generated"
	// (in-memory deterministic synthesis, the default) or "dir"
	// (disk-backed replica volumes served through sendfile).
	StoreMode string
	// StoreDir roots the per-node replica volumes in "dir" mode
	// (<StoreDir>/node-<id>/...). Empty means a fresh temp directory
	// that Shutdown removes.
	StoreDir string
	// StoreQuota bounds each node's replica volume in "dir" mode
	// (default ReplicaReserve).
	StoreQuota int64
	// SegmentSize / SegmentThreshold configure every node's segmented
	// large-object layout (see Config). Zeros take the storage package
	// defaults; a negative threshold disables segmentation.
	SegmentSize      int64
	SegmentThreshold int64
	// KeepSegmentPages disables the page-cache DONTNEED drop behind
	// completed sequential segment serves (see Config).
	KeepSegmentPages bool
	// Group is the collaboration every participant and dataset belongs
	// to (default "live-collab").
	Group string
	// Seed drives the platform's token generation.
	Seed int64
	// PullThrough enables demand-driven replica caching on the edges.
	PullThrough bool
	// Sweep configures every node's background repair sweeper; the zero
	// value enables it with defaults (see SweeperConfig).
	Sweep SweeperConfig
	// FetchAttempts bounds each edge's peer-fallback retries.
	FetchAttempts int
	// ListenHost is the bind address (default 127.0.0.1); ports are
	// ephemeral.
	ListenHost string
}

func (c *ClusterConfig) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Sites <= 0 {
		c.Sites = c.Nodes
	}
	if c.CatalogServers <= 0 {
		c.CatalogServers = 2
	}
	if c.CatalogShards <= 0 {
		c.CatalogShards = DefaultCatalogShards
	}
	if c.Users <= 0 {
		c.Users = 8
	}
	if c.Datasets <= 0 {
		c.Datasets = 12
	}
	if c.DatasetBytes <= 0 {
		c.DatasetBytes = 64 << 10
	}
	if c.RepoCapacity <= 0 {
		c.RepoCapacity = 1 << 30
	}
	if c.ReplicaReserve <= 0 {
		c.ReplicaReserve = c.RepoCapacity / 2
	}
	if c.StoreMode == "" {
		c.StoreMode = StoreModeGenerated
	}
	if c.StoreQuota <= 0 {
		c.StoreQuota = c.ReplicaReserve
	}
	if c.Group == "" {
		c.Group = "live-collab"
	}
	if c.ListenHost == "" {
		c.ListenHost = "127.0.0.1"
	}
}

// Store modes for ClusterConfig.StoreMode.
const (
	StoreModeGenerated = "generated"
	StoreModeDir       = "dir"
)

// clientUserBase offsets client user IDs away from edge node IDs.
const clientUserBase = 100

// LocalCluster is a running in-process cluster: N edge nodes over
// loopback TCP sharing one platform, middleware, registry, and catalog.
type LocalCluster struct {
	Config     ClusterConfig
	Platform   *socialnet.Platform
	Middleware *middleware.Middleware
	Registry   *Registry
	Catalog    *Catalog
	Manifests  *ingest.Store
	Nodes      []*Node
	// UserIDs are the client participants; DatasetIDs the published data.
	UserIDs    []socialnet.UserID
	DatasetIDs []storage.DatasetID
	// StoreRoot is the replica-volume root in "dir" mode ("" otherwise);
	// node i's files live under StoreRoot/node-<id>/data/.
	StoreRoot string
	// ownStoreRoot marks a temp StoreRoot the cluster created and must
	// remove on Shutdown.
	ownStoreRoot bool
}

// StartLocalCluster assembles and starts a cluster. On any error the
// already-started nodes are shut down before returning.
func StartLocalCluster(cfg ClusterConfig) (*LocalCluster, error) {
	cfg.applyDefaults()
	if cfg.StoreMode != StoreModeGenerated && cfg.StoreMode != StoreModeDir {
		return nil, fmt.Errorf("server: unknown store mode %q (want %q or %q)",
			cfg.StoreMode, StoreModeGenerated, StoreModeDir)
	}
	platform := socialnet.New(cfg.Seed)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	mw := middleware.New(platform, clock)
	reg := NewRegistry()
	catalog, err := NewCatalogSharded(cfg.CatalogServers, reg, cfg.CatalogShards)
	if err != nil {
		return nil, err
	}
	manifests := ingest.NewStore()
	lc := &LocalCluster{
		Config: cfg, Platform: platform, Middleware: mw,
		Registry: reg, Catalog: catalog, Manifests: manifests,
	}
	if cfg.StoreMode == StoreModeDir {
		if cfg.StoreDir != "" {
			lc.StoreRoot = cfg.StoreDir
		} else {
			root, err := os.MkdirTemp("", "scdn-store-")
			if err != nil {
				return nil, fmt.Errorf("server: store root: %w", err)
			}
			lc.StoreRoot = root
			lc.ownStoreRoot = true
		}
	}
	// fail unwinds partial bootstrap (a temp store root must not leak).
	fail := func(err error) (*LocalCluster, error) {
		if lc.ownStoreRoot {
			_ = os.RemoveAll(lc.StoreRoot)
		}
		return nil, err
	}

	// Edge nodes are researchers contributing repositories (Section V-A):
	// platform users, group members, registry members, one repo each.
	repos := make([]*storage.Repository, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		nodeID := allocation.NodeID(i + 1)
		site := i % cfg.Sites
		if err := platform.Register(socialnet.UserID(nodeID), socialnet.Profile{
			Name: fmt.Sprintf("edge-%d", nodeID), SiteID: site,
		}); err != nil {
			return fail(err)
		}
		if err := platform.JoinGroup(cfg.Group, socialnet.UserID(nodeID)); err != nil {
			return fail(err)
		}
		reg.Register(Member{Node: nodeID, Site: site})
		repo, err := storage.NewRepository(nodeID, site, cfg.RepoCapacity, cfg.ReplicaReserve)
		if err != nil {
			return fail(err)
		}
		repos[i] = repo
		var vol *storage.DiskVolume
		if cfg.StoreMode == StoreModeDir {
			vol, err = storage.NewDiskVolume(
				filepath.Join(lc.StoreRoot, fmt.Sprintf("node-%d", nodeID)), cfg.StoreQuota)
			if err != nil {
				return fail(err)
			}
		}
		node, err := NewNode(Config{
			Node:             nodeID,
			ListenAddr:       cfg.ListenHost + ":0",
			PullThrough:      cfg.PullThrough,
			FetchAttempts:    cfg.FetchAttempts,
			BlockCacheBlocks: cfg.BlockCacheBlocks,
			Volume:           vol,
			Sweep:            cfg.Sweep,
			Manifests:        manifests,
			SegmentSize:      cfg.SegmentSize,
			SegmentThreshold: cfg.SegmentThreshold,
			KeepSegmentPages: cfg.KeepSegmentPages,
			Clock:            clock,
		}, repo, mw, catalog, reg)
		if err != nil {
			return fail(err)
		}
		lc.Nodes = append(lc.Nodes, node)
	}

	// Client participants: consume data but serve nothing.
	for u := 0; u < cfg.Users; u++ {
		uid := socialnet.UserID(clientUserBase + 1 + u)
		site := u % cfg.Sites
		if err := platform.Register(uid, socialnet.Profile{
			Name: fmt.Sprintf("user-%d", uid), SiteID: site,
		}); err != nil {
			return nil, err
		}
		if err := platform.JoinGroup(cfg.Group, uid); err != nil {
			return nil, err
		}
		reg.Register(Member{Node: allocation.NodeID(uid), Site: site, Online: true})
		lc.UserIDs = append(lc.UserIDs, uid)
	}

	// Datasets: group-scoped, owned round-robin by the edges; the
	// owner's repository holds the origin copy. Each seeded dataset gets
	// a content manifest computed from its deterministic payload
	// (opaque=false — it stays regenerable), so digest verification on
	// peer transfers works uniformly for seeded and uploaded data.
	if !cfg.NoSeedDatasets {
		for d := 0; d < cfg.Datasets; d++ {
			id := storage.DatasetID(fmt.Sprintf("ds-%03d", d+1))
			originIdx := d % cfg.Nodes
			origin := allocation.NodeID(originIdx + 1)
			if err := mw.RegisterDataset(id, cfg.Group); err != nil {
				return nil, err
			}
			if err := catalog.RegisterDataset(id, origin, cfg.DatasetBytes); err != nil {
				return nil, err
			}
			if err := repos[originIdx].StoreUser(id, cfg.DatasetBytes, 0); err != nil {
				return nil, err
			}
			hasher := ingest.NewHasher(ingest.DefaultBlockSize)
			if _, err := WritePayload(hasher, id, cfg.DatasetBytes); err != nil {
				return nil, err
			}
			if err := manifests.Put(hasher.Manifest(id, false)); err != nil {
				return nil, err
			}
			lc.DatasetIDs = append(lc.DatasetIDs, id)
		}
	}

	for _, node := range lc.Nodes {
		if err := node.Start(); err != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = lc.Shutdown(ctx)
			cancel()
			return nil, err
		}
	}
	return lc, nil
}

// URLs returns the running nodes' endpoints.
func (lc *LocalCluster) URLs() []string {
	out := make([]string, 0, len(lc.Nodes))
	for _, n := range lc.Nodes {
		out = append(out, n.BaseURL())
	}
	return out
}

// DatasetReplication is one dataset's replication health: how many
// holders the catalog records and how many of them are currently online.
type DatasetReplication struct {
	ID       storage.DatasetID
	Replicas int
	Live     int
}

// ReplicationStatus reports every dataset's replication health — the
// post-churn acceptance check: after repair converges, each dataset's
// Live count must be back at the replication target (capped by how many
// edges are up).
func (lc *LocalCluster) ReplicationStatus() []DatasetReplication {
	out := make([]DatasetReplication, 0, len(lc.DatasetIDs))
	for _, id := range lc.DatasetIDs {
		st := DatasetReplication{ID: id}
		if reps, err := lc.Catalog.Replicas(id); err == nil {
			st.Replicas = len(reps)
			for _, r := range reps {
				if lc.Registry.Online(r.Node) {
					st.Live++
				}
			}
		}
		out = append(out, st)
	}
	return out
}

// LiveNodes counts edges currently serving.
func (lc *LocalCluster) LiveNodes() int {
	live := 0
	for _, n := range lc.Nodes {
		if n.Running() {
			live++
		}
	}
	return live
}

// Login opens a session for a participant directly against the
// middleware (tests and in-process drivers; remote clients use
// POST /v1/login).
func (lc *LocalCluster) Login(user socialnet.UserID) (socialnet.Token, error) {
	return lc.Middleware.Login(user)
}

// Shutdown gracefully stops every node, returning the first error. A
// temp store root created by StartLocalCluster is removed; an explicit
// StoreDir is left in place.
func (lc *LocalCluster) Shutdown(ctx context.Context) error {
	var firstErr error
	for _, n := range lc.Nodes {
		if err := n.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if lc.ownStoreRoot {
		if err := os.RemoveAll(lc.StoreRoot); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
