package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// Handler returns the node's HTTP API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/login", n.handleLogin)
	mux.HandleFunc("POST /v1/resolve", n.handleResolve)
	mux.HandleFunc("GET /v1/fetch/{dataset}", n.handleFetch)
	mux.HandleFunc("POST /v1/report", n.handleReport)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	return mux
}

// bearerToken extracts the session token from the Authorization header.
func bearerToken(r *http.Request) socialnet.Token {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if strings.HasPrefix(h, prefix) {
		return socialnet.Token(h[len(prefix):])
	}
	return ""
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (n *Node) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (n *Node) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = n.Metrics.WriteExposition(w, time.Since(n.started))
}

func (n *Node) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req LoginRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad login body: %w", err))
		return
	}
	tok, err := n.auth.Login(socialnet.UserID(req.User))
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	n.Metrics.Logins.Inc()
	writeJSON(w, http.StatusOK, LoginResponse{Token: string(tok)})
}

func (n *Node) handleResolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	n.Metrics.ResolveRequests.Inc()
	defer func() { n.Metrics.ResolveLatency.Observe(time.Since(start).Seconds()) }()
	var req ResolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad resolve body: %w", err))
		return
	}
	id := storage.DatasetID(req.Dataset)
	user, err := n.auth.Authorize(bearerToken(r), id)
	if err != nil {
		n.Metrics.AuthDenied.Inc()
		writeError(w, http.StatusForbidden, err)
		return
	}
	rep, ok, err := n.catalog.Resolve(id, allocation.NodeID(user))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !ok {
		n.Metrics.ResolveMisses.Inc()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server: no online replica for %q", id))
		return
	}
	bytes, err := n.catalog.DatasetBytes(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	origin, err := n.catalog.Origin(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	peerURL, _ := n.registry.BaseURL(rep.Node)
	// List every online holder with an endpoint so striped clients can
	// spread range fetches across replica holders (GridFTP-style).
	var holders []ReplicaInfo
	if all, err := n.catalog.Replicas(id); err == nil {
		for _, hr := range all {
			if !n.registry.Online(hr.Node) {
				continue
			}
			hu, _ := n.registry.BaseURL(hr.Node)
			holders = append(holders, ReplicaInfo{
				Node: hr.Node, Site: hr.Site, URL: hu, Origin: hr.Node == origin,
			})
		}
	}
	writeJSON(w, http.StatusOK, ResolveResponse{
		Dataset:  req.Dataset,
		Node:     rep.Node,
		Site:     rep.Site,
		URL:      peerURL,
		Origin:   rep.Node == origin,
		Bytes:    bytes,
		Replicas: holders,
	})
}

func (n *Node) handleReport(w http.ResponseWriter, r *http.Request) {
	if _, err := n.auth.Authenticate(bearerToken(r)); err != nil {
		n.Metrics.AuthDenied.Inc()
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad report body: %w", err))
		return
	}
	n.Metrics.Reports.Inc()
	n.Metrics.ReportedAccesses.Add(req.Accesses)
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleFetch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := storage.DatasetID(r.PathValue("dataset"))
	fromPeer := r.Header.Get(peerHeader) != ""
	if fromPeer {
		n.Metrics.PeerFetchRequests.Inc()
	} else {
		n.Metrics.FetchRequests.Inc()
		defer func() { n.Metrics.FetchLatency.Observe(time.Since(start).Seconds()) }()
	}
	fail := func(status int, err error) {
		if !fromPeer {
			n.Metrics.FetchFailures.Inc()
		}
		writeError(w, status, err)
	}
	if _, err := n.auth.Authorize(bearerToken(r), id); err != nil {
		n.Metrics.AuthDenied.Inc()
		fail(http.StatusForbidden, err)
		return
	}
	bytes, berr := n.catalog.DatasetBytes(id)
	local := n.hasLocal(id)
	if berr != nil {
		if local {
			fail(http.StatusInternalServerError, berr)
		} else if fromPeer {
			// Peer hops never fan out again: a fallback chain is one hop.
			fail(http.StatusNotFound, fmt.Errorf("server: node %d does not hold %q", n.cfg.Node, id))
		} else {
			fail(http.StatusNotFound, berr)
		}
		return
	}
	// Parse the range before deciding how to serve: malformed or
	// unsatisfiable ranges are rejected here with 416 — never silently
	// answered with the full body — and never forwarded to a peer.
	rng, isRange, rerr := parseRange(r.Header.Get("Range"), bytes)
	if rerr != nil {
		n.Metrics.RangeNotSatisfiable.Inc()
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", bytes))
		fail(http.StatusRequestedRangeNotSatisfiable, rerr)
		return
	}
	if local {
		n.serveLocal(w, id, rng, isRange, bytes)
		return
	}
	if fromPeer {
		fail(http.StatusNotFound, fmt.Errorf("server: node %d does not hold %q", n.cfg.Node, id))
		return
	}
	n.proxyFetch(w, r, id, rng, isRange, bytes, fail)
}

// serveLocal streams the dataset (or the requested byte range of it) from
// this edge's repository, deriving bytes from the node's payload-block
// cache so the SHA-256 chain is paid once per dataset, not per request.
func (n *Node) serveLocal(w http.ResponseWriter, id storage.DatasetID,
	rng byteRange, isRange bool, total int64) {
	block, hit := n.blocks.Block(id)
	if hit {
		n.Metrics.PayloadCacheHits.Inc()
	} else {
		n.Metrics.PayloadCacheMisses.Inc()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", fmt.Sprint(rng.n))
	w.Header().Set("X-SCDN-Source", fmt.Sprint(n.cfg.Node))
	status := http.StatusOK
	if isRange {
		n.Metrics.RangeRequests.Inc()
		w.Header().Set("Content-Range", rng.contentRange(total))
		status = http.StatusPartialContent
	}
	w.WriteHeader(status)
	written, _ := writeBlockRange(w, block, rng.off, rng.n)
	n.Metrics.LocalHits.Inc()
	n.Metrics.BytesServed.Add(uint64(written))
}

// proxyFetch realizes the edge fallback: resolve the dataset's replica
// holders, order them by estimated RTT from this edge's site, and try
// them with bounded retry and exponential backoff, streaming the first
// successful response to the client. Range requests are forwarded to the
// peer as ranges, so a proxied stripe moves only its own bytes.
func (n *Node) proxyFetch(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	rng byteRange, isRange bool, total int64, fail func(int, error)) {
	reps, err := n.catalog.Replicas(id)
	if err != nil {
		fail(http.StatusBadGateway, err)
		return
	}
	origin, err := n.catalog.Origin(id)
	if err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	cands := n.orderCandidates(reps)
	if len(cands) == 0 {
		fail(http.StatusBadGateway, fmt.Errorf("server: no reachable replica for %q", id))
		return
	}
	backoff := n.cfg.RetryBase
	var lastErr error
	for attempt := 0; attempt < n.cfg.FetchAttempts; attempt++ {
		if attempt > 0 {
			n.Metrics.PeerRetries.Inc()
			select {
			case <-r.Context().Done():
				fail(http.StatusBadGateway, r.Context().Err())
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > n.cfg.RetryMax {
				backoff = n.cfg.RetryMax
			}
		}
		cand := cands[attempt%len(cands)]
		committed, err := n.tryPeer(w, r, id, cand, rng, isRange, total, origin)
		if committed {
			return
		}
		lastErr = err
	}
	fail(http.StatusBadGateway,
		fmt.Errorf("server: all %d fetch attempts for %q failed: %w", n.cfg.FetchAttempts, id, lastErr))
}

// orderCandidates filters replica holders down to online peers with an
// endpoint (excluding this node) and sorts them by estimated RTT from
// this edge's site, ties by node ID for determinism.
func (n *Node) orderCandidates(reps []allocation.Replica) []allocation.Replica {
	mySite, _ := n.registry.SiteOf(n.cfg.Node)
	cands := make([]allocation.Replica, 0, len(reps))
	for _, rep := range reps {
		if rep.Node == n.cfg.Node || !n.registry.Online(rep.Node) {
			continue
		}
		if _, ok := n.registry.BaseURL(rep.Node); !ok {
			continue
		}
		cands = append(cands, rep)
	}
	sort.Slice(cands, func(i, j int) bool {
		ri, _ := n.registry.RTT(mySite, cands[i].Site)
		rj, _ := n.registry.RTT(mySite, cands[j].Site)
		if ri != rj {
			return ri < rj
		}
		return cands[i].Node < cands[j].Node
	})
	return cands
}

// tryPeer fetches the dataset from one peer edge and, on success, streams
// it through to the client. committed reports whether a response was
// written (successfully or not) — once headers are on the wire there is
// no retrying.
func (n *Node) tryPeer(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	cand allocation.Replica, rng byteRange, isRange bool, total int64,
	origin allocation.NodeID) (committed bool, _ error) {
	base, ok := n.registry.BaseURL(cand.Node)
	if !ok {
		return false, ErrNoEndpoint
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		base+"/v1/fetch/"+url.PathEscape(string(id)), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set(peerHeader, fmt.Sprint(n.cfg.Node))
	req.Header.Set("Authorization", r.Header.Get("Authorization"))
	wantStatus := http.StatusOK
	if isRange {
		req.Header.Set("Range", rng.header())
		wantStatus = http.StatusPartialContent
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		// Drain a bounded amount so the connection can be reused.
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		return false, fmt.Errorf("server: peer %d returned %s", cand.Node, resp.Status)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", fmt.Sprint(rng.n))
	w.Header().Set("X-SCDN-Source", fmt.Sprint(cand.Node))
	status := http.StatusOK
	if isRange {
		w.Header().Set("Content-Range", rng.contentRange(total))
		status = http.StatusPartialContent
	}
	w.WriteHeader(status)
	written, copyErr := io.Copy(w, resp.Body)
	n.Metrics.BytesServed.Add(uint64(written))
	if copyErr != nil || written != rng.n {
		n.Metrics.FetchFailures.Inc()
		return true, copyErr
	}
	if cand.Node == origin {
		n.Metrics.OriginFetches.Inc()
	} else {
		n.Metrics.PeerHits.Inc()
	}
	// Pull-through only on full-body fetches: a stripe proves nothing
	// about the rest of the dataset, so partial transfers never mint a
	// replica record.
	if n.cfg.PullThrough && !isRange {
		n.cachePulled(id, total)
	}
	return true, nil
}
