package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/ingest"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// Handler returns the node's HTTP API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/login", n.handleLogin)
	mux.HandleFunc("POST /v1/resolve", n.handleResolve)
	mux.HandleFunc("GET /v1/fetch/{dataset}", n.handleFetch)
	mux.HandleFunc("GET /v1/fetch/{dataset}/segments/{n}", n.handleFetchSegment)
	mux.HandleFunc("PUT /v1/datasets/{dataset}", n.handleUpload)
	mux.HandleFunc("POST /v1/report", n.handleReport)
	mux.HandleFunc("POST /v1/replicate", n.handleReplicate)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	return mux
}

// bearerToken extracts the session token from the Authorization header.
func bearerToken(r *http.Request) socialnet.Token {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if strings.HasPrefix(h, prefix) {
		return socialnet.Token(h[len(prefix):])
	}
	return ""
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (n *Node) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (n *Node) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	n.mu.Lock()
	up := time.Since(n.started)
	n.mu.Unlock()
	_ = n.Metrics.WriteExposition(w, up)
}

// handleReplicate adopts a replica on request (the repair sweeper's
// peer-to-peer re-replication). Authorization is the same group check
// any fetch pays; the bytes are re-derived locally, never shipped.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var req ReplicateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad replicate body: %w", err))
		return
	}
	id := storage.DatasetID(req.Dataset)
	if _, err := n.auth.Authorize(bearerToken(r), id); err != nil {
		n.Metrics.AuthDenied.Inc()
		writeError(w, http.StatusForbidden, err)
		return
	}
	n.Metrics.ReplicateRequests.Inc()
	if _, err := n.catalog.DatasetBytes(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if n.hasLocal(id) {
		writeJSON(w, http.StatusOK, ReplicateResponse{Dataset: req.Dataset, Already: true})
		return
	}
	if !n.replicateLocal(r.Context(), id) {
		// Not adopted here and now (partition full, or a racing repairer
		// beat us to the announcement): either way this edge is not a new
		// holder.
		writeJSON(w, http.StatusOK, ReplicateResponse{Dataset: req.Dataset, Already: n.hasLocal(id)})
		return
	}
	writeJSON(w, http.StatusOK, ReplicateResponse{Dataset: req.Dataset, Adopted: true})
}

func (n *Node) handleLogin(w http.ResponseWriter, r *http.Request) {
	var req LoginRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad login body: %w", err))
		return
	}
	tok, err := n.auth.Login(socialnet.UserID(req.User))
	if err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	n.Metrics.Logins.Inc()
	writeJSON(w, http.StatusOK, LoginResponse{Token: string(tok)})
}

func (n *Node) handleResolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	n.Metrics.ResolveRequests.Inc()
	defer func() { n.Metrics.ResolveLatency.Observe(time.Since(start).Seconds()) }()
	var req ResolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad resolve body: %w", err))
		return
	}
	id := storage.DatasetID(req.Dataset)
	user, err := n.auth.Authorize(bearerToken(r), id)
	if err != nil {
		n.Metrics.AuthDenied.Inc()
		writeError(w, http.StatusForbidden, err)
		return
	}
	rep, ok, err := n.catalog.Resolve(id, allocation.NodeID(user))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !ok {
		n.Metrics.ResolveMisses.Inc()
		w.Header().Set("Retry-After", retryAfterHeader)
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("server: no online replica for %q", id))
		return
	}
	bytes, err := n.catalog.DatasetBytes(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	origin, err := n.catalog.Origin(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	peerURL, _ := n.registry.BaseURL(rep.Node)
	// List every online holder with an endpoint so striped clients can
	// spread range fetches across replica holders (GridFTP-style).
	var holders []ReplicaInfo
	if all, err := n.catalog.Replicas(id); err == nil {
		for _, hr := range all {
			if !n.registry.Online(hr.Node) || n.suspects.isSuspect(hr.Node) {
				continue
			}
			hu, _ := n.registry.BaseURL(hr.Node)
			holders = append(holders, ReplicaInfo{
				Node: hr.Node, Site: hr.Site, URL: hu, Origin: hr.Node == origin,
			})
		}
	}
	resp := ResolveResponse{
		Dataset:  req.Dataset,
		Node:     rep.Node,
		Site:     rep.Site,
		URL:      peerURL,
		Origin:   rep.Node == origin,
		Bytes:    bytes,
		Replicas: holders,
	}
	// Segmented datasets publish their segment index (an HLS-style
	// manifest): size, count, and the rolled-up per-segment digests, so
	// clients can plan stripes on segment boundaries and spot-check
	// pieces without the full block manifest.
	if n.segmented(bytes) {
		resp.SegmentSize = n.cfg.SegmentSize
		resp.Segments = storage.SegmentCount(bytes, n.cfg.SegmentSize)
		resp.SegmentDigests = n.segmentDigestIndex(id, bytes)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (n *Node) handleReport(w http.ResponseWriter, r *http.Request) {
	if _, err := n.auth.Authenticate(bearerToken(r)); err != nil {
		n.Metrics.AuthDenied.Inc()
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad report body: %w", err))
		return
	}
	n.Metrics.Reports.Inc()
	n.Metrics.ReportedAccesses.Add(req.Accesses)
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handleFetch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := storage.DatasetID(r.PathValue("dataset"))
	fromPeer := r.Header.Get(peerHeader) != ""
	if fromPeer {
		n.Metrics.PeerFetchRequests.Inc()
	} else {
		n.Metrics.FetchRequests.Inc()
		defer func() { n.Metrics.FetchLatency.Observe(time.Since(start).Seconds()) }()
	}
	fail := func(status int, err error) {
		if !fromPeer {
			n.Metrics.FetchFailures.Inc()
		}
		writeError(w, status, err)
	}
	if _, err := n.auth.Authorize(bearerToken(r), id); err != nil {
		n.Metrics.AuthDenied.Inc()
		fail(http.StatusForbidden, err)
		return
	}
	bytes, berr := n.catalog.DatasetBytes(id)
	local := n.hasLocal(id)
	if berr != nil {
		if local {
			fail(http.StatusInternalServerError, berr)
		} else if fromPeer {
			// Peer hops never fan out again: a fallback chain is one hop.
			fail(http.StatusNotFound, fmt.Errorf("server: node %d does not hold %q", n.cfg.Node, id))
		} else {
			fail(http.StatusNotFound, berr)
		}
		return
	}
	// Parse the range set before deciding how to serve: malformed or
	// unsatisfiable ranges (any part of a multipart spec) are rejected
	// here with 416 — never silently answered with the full body — and
	// never forwarded to a peer.
	rngs, isRange, rerr := parseRanges(r.Header.Get("Range"), bytes)
	if rerr != nil {
		n.Metrics.RangeNotSatisfiable.Inc()
		w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", bytes))
		fail(http.StatusRequestedRangeNotSatisfiable, rerr)
		return
	}
	if local {
		if n.serveLocal(w, r, id, rngs, isRange, bytes) {
			return
		}
		// The local claim was a lie: an opaque dataset whose volume file
		// is gone cannot be regenerated. Withdraw the stale records so
		// resolution stops routing here, then fall through to the peer
		// path — a surviving holder still has the real bytes.
		n.dropLocal(id)
	}
	if fromPeer {
		fail(http.StatusNotFound, fmt.Errorf("server: node %d does not hold %q", n.cfg.Node, id))
		return
	}
	n.proxyFetch(w, r, id, rngs, isRange, bytes, fail)
}

// serveLocal streams the dataset (or the requested byte range of it)
// from this edge: from the disk-backed replica volume via sendfile when
// the node has one, from the in-memory deterministic generator
// otherwise. Generated and disk copies of a seeded dataset are the
// identical byte stream, so clients verify either the same way. Opaque
// (uploaded) datasets exist only as real files: they are never
// synthesized, so a missing volume file returns false — the caller must
// treat the local copy as lost.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	rngs []byteRange, isRange bool, total int64) bool {
	man, hasMan := n.manifests.Get(id)
	opaque := hasMan && man.Opaque
	// Large regenerable datasets take the segmented layout: per-segment
	// files materialized on demand, so the volume never commits to one
	// monolithic large file and a quota-constrained edge still serves
	// datasets bigger than itself. A whole-file replica that already
	// exists (e.g. committed before the threshold changed) is still
	// served as one file below; opaque datasets always are — their
	// missing segments could never be re-derived.
	if n.vol != nil && !opaque && n.segmented(total) && !n.vol.Has(id) {
		if n.serveSegments(w, r, id, rngs, isRange, total) {
			return true
		}
		n.serveGenerated(w, r, id, rngs, isRange, total)
		return true
	}
	if n.vol != nil && n.serveDisk(w, r, id, rngs, isRange, total, opaque) {
		return true
	}
	if opaque {
		return false
	}
	n.serveGenerated(w, r, id, rngs, isRange, total)
	return true
}

// Constant header values shared across requests. The keys they are
// assigned under are already in canonical form, so the disk serving path
// pays neither textproto canonicalization nor a value-slice allocation
// per request for them.
var (
	octetStreamHeader  = []string{"application/octet-stream"}
	acceptRangesHeader = []string{"bytes"}
)

// serveDisk serves the dataset from the node's replica volume as an
// *os.File, so on a plain TCP connection the kernel moves the bytes
// (sendfile) and userspace copies nothing. Full GETs seek to the start
// (the FD pool hands back files wherever the last request left them)
// and stream via io.Copy, whose ReadFrom fast path is the sendfile
// call; single-part ranges — already parsed and validated by
// handleFetch — seek and stream the window through the scratch's pooled
// LimitedReader, which net/http unwraps so the range path rides
// sendfile too. Multipart range sets stream a multipart/byteranges body
// part by part straight off the file, never buffering a part. Warm
// requests allocate nothing: header values, length strings, and the
// LimitedReader all live in the pooled fetchScratch (see hotpath.go),
// enforced by TestServeAllocBudgets. The replica is materialized on
// first access (once, via the deterministic generator, so integrity
// verification is unchanged). Returns false to fall back to the
// generated path when the volume cannot produce the file; the fetch
// must not fail just because a disk is full. Opaque datasets skip
// materialization — their bytes are not derivable, a missing file is
// simply a miss.
func (n *Node) serveDisk(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	rngs []byteRange, isRange bool, total int64, opaque bool) bool {
	f, size, ok := n.vol.Open(id)
	if !ok {
		if opaque || !n.materialize(id, total) {
			return false
		}
		if f, size, ok = n.vol.Open(id); !ok {
			return false
		}
	}
	if size != total {
		// Stale replica (catalog size changed): drop it and re-materialize
		// on the next access rather than serving wrong bytes now.
		n.vol.Release(id, f)
		n.vol.Remove(id)
		return false
	}
	defer n.vol.Release(id, f)
	if len(rngs) > 1 {
		n.Metrics.StoreDiskHits.Inc()
		n.Metrics.RangeRequests.Inc()
		n.Metrics.RangeMultipart.Inc()
		h := w.Header()
		h["Accept-Ranges"] = acceptRangesHeader
		h["X-Scdn-Source"] = n.srcHdr
		served := writeMultipart(w, r, rngs, total, func(pw io.Writer, rng byteRange) error {
			if _, err := f.Seek(rng.off, io.SeekStart); err != nil {
				return err
			}
			_, err := io.CopyN(pw, f, rng.n)
			return err
		})
		n.Metrics.LocalHits.Inc()
		n.Metrics.BytesServed.Add(uint64(served))
		return true
	}
	rng := rngs[0]
	off := int64(0)
	if isRange {
		off = rng.off
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false // nothing written yet; generated path takes over
	}
	n.Metrics.StoreDiskHits.Inc()
	h := w.Header()
	h["Content-Type"] = octetStreamHeader
	h["Accept-Ranges"] = acceptRangesHeader
	h["X-Scdn-Source"] = n.srcHdr
	if useScratch(r, rng.n) {
		sc := fetchScratchPool.Get().(*fetchScratch)
		defer fetchScratchPool.Put(sc)
		h["Content-Length"] = sc.contentLength(rng.n)
		if isRange {
			n.Metrics.RangeRequests.Inc()
			h["Content-Range"] = sc.contentRange(rng, total)
			w.WriteHeader(http.StatusPartialContent)
		} else {
			w.WriteHeader(http.StatusOK)
		}
		sc.lr = io.LimitedReader{R: f, N: rng.n}
		_, _ = io.Copy(w, &sc.lr)
	} else {
		// HEAD or empty body: net/http may serialize the header map after
		// the handler returns, so the values must not alias pooled memory.
		h.Set("Content-Length", strconv.FormatInt(rng.n, 10))
		status := http.StatusOK
		if isRange {
			n.Metrics.RangeRequests.Inc()
			h.Set("Content-Range", rng.contentRange(total))
			status = http.StatusPartialContent
		}
		w.WriteHeader(status)
		if r.Method != http.MethodHead {
			_, _ = io.CopyN(w, f, rng.n)
		}
	}
	n.Metrics.LocalHits.Inc()
	n.Metrics.BytesServed.Add(uint64(rng.n))
	return true
}

// materialize writes the dataset's deterministic bytes into the replica
// volume (single-flight across concurrent fetches) and reports whether a
// committed replica now exists.
func (n *Node) materialize(id storage.DatasetID, total int64) bool {
	did, err := n.vol.Materialize(id, total, func(w io.Writer) error {
		block, hit := n.blocks.Block(id)
		if hit {
			n.Metrics.PayloadCacheHits.Inc()
		} else {
			n.Metrics.PayloadCacheMisses.Inc()
		}
		_, err := writeBlockRangeBuffered(w, block, 0, total)
		return err
	})
	if err != nil {
		n.Metrics.StoreSpillFailures.Inc()
		return false
	}
	if did {
		n.Metrics.StoreMaterializations.Inc()
		n.Metrics.StoreMaterializedBytes.Add(uint64(total))
	}
	return true
}

// serveGenerated streams the dataset from the node's payload-block cache
// so the SHA-256 chain is paid once per dataset, not per request; the
// wire bytes are assembled through a pooled buffer and the response
// headers through the pooled fetchScratch, so the warm steady state
// allocates nothing per fetch. Multipart range sets stream a
// multipart/byteranges body with each part generated directly into the
// response writer.
func (n *Node) serveGenerated(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	rngs []byteRange, isRange bool, total int64) {
	block, hit := n.blocks.Block(id)
	if hit {
		n.Metrics.PayloadCacheHits.Inc()
	} else {
		n.Metrics.PayloadCacheMisses.Inc()
	}
	h := w.Header()
	h["Accept-Ranges"] = acceptRangesHeader
	h["X-Scdn-Source"] = n.srcHdr
	if len(rngs) > 1 {
		n.Metrics.RangeRequests.Inc()
		n.Metrics.RangeMultipart.Inc()
		served := writeMultipart(w, r, rngs, total, func(pw io.Writer, rng byteRange) error {
			_, err := writeBlockRangeBuffered(pw, block, rng.off, rng.n)
			return err
		})
		n.Metrics.LocalHits.Inc()
		n.Metrics.BytesServed.Add(uint64(served))
		return
	}
	rng := rngs[0]
	h["Content-Type"] = octetStreamHeader
	var written int64
	if useScratch(r, rng.n) {
		sc := fetchScratchPool.Get().(*fetchScratch)
		defer fetchScratchPool.Put(sc)
		h["Content-Length"] = sc.contentLength(rng.n)
		if isRange {
			n.Metrics.RangeRequests.Inc()
			h["Content-Range"] = sc.contentRange(rng, total)
			w.WriteHeader(http.StatusPartialContent)
		} else {
			w.WriteHeader(http.StatusOK)
		}
		written, _ = writeBlockRangeBuffered(w, block, rng.off, rng.n)
	} else {
		h.Set("Content-Length", strconv.FormatInt(rng.n, 10))
		status := http.StatusOK
		if isRange {
			n.Metrics.RangeRequests.Inc()
			h.Set("Content-Range", rng.contentRange(total))
			status = http.StatusPartialContent
		}
		w.WriteHeader(status)
		if r.Method != http.MethodHead {
			written, _ = writeBlockRangeBuffered(w, block, rng.off, rng.n)
		}
	}
	n.Metrics.LocalHits.Inc()
	n.Metrics.BytesServed.Add(uint64(written))
}

// proxyFetch realizes the edge fallback: resolve the dataset's replica
// holders, order them by estimated RTT from this edge's site, and try
// them with bounded retry and exponential backoff, streaming the first
// successful response to the client. Range requests are forwarded to the
// peer as ranges, so a proxied stripe moves only its own bytes.
func (n *Node) proxyFetch(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	rngs []byteRange, isRange bool, total int64, fail func(int, error)) {
	reps, err := n.catalog.Replicas(id)
	if err != nil {
		fail(http.StatusBadGateway, err)
		return
	}
	origin, err := n.catalog.Origin(id)
	if err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}
	cands := n.orderCandidates(reps)
	if len(cands) == 0 {
		// Zero live holders is churn, not a client error: the dataset is
		// catalogued, its members are just (momentarily) dead and the
		// repair sweeper is already working the gap. Tell the client when
		// to come back instead of counting a fetch failure.
		n.serveUnavailable(w, id)
		return
	}
	backoff := n.cfg.RetryBase
	var lastErr error
	for attempt := 0; attempt < n.cfg.FetchAttempts; attempt++ {
		if attempt > 0 {
			n.Metrics.PeerRetries.Inc()
			select {
			case <-r.Context().Done():
				fail(http.StatusBadGateway, r.Context().Err())
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > n.cfg.RetryMax {
				backoff = n.cfg.RetryMax
			}
		}
		cand := cands[attempt%len(cands)]
		committed, err := n.tryPeer(w, r, id, cand, rngs, isRange, total, origin)
		if committed {
			return
		}
		lastErr = err
	}
	// If everything we tried has since been declared dead or suspect, the
	// failure is churn (the holders died under us), not a broken peer.
	if len(n.orderCandidates(cands)) == 0 {
		n.serveUnavailable(w, id)
		return
	}
	fail(http.StatusBadGateway,
		fmt.Errorf("server: all %d fetch attempts for %q failed: %w", n.cfg.FetchAttempts, id, lastErr))
}

// retryAfterHeader is the Retry-After value on churn 503s: one second is
// a couple of sweep intervals, enough for the repair loop to restore a
// live copy in the common case.
const retryAfterHeader = "1"

// serveUnavailable answers a fetch for a catalogued dataset that churn
// has left with zero live holders: 503 with Retry-After, counted under
// the churn metric rather than FetchFailures so load generators can
// reconcile churn-caused unavailability separately from real errors.
func (n *Node) serveUnavailable(w http.ResponseWriter, id storage.DatasetID) {
	n.Metrics.ChurnUnavailable.Inc()
	w.Header().Set("Retry-After", retryAfterHeader)
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("server: no live replica for %q (members down, repair in progress)", id))
}

// orderCandidates filters replica holders down to online peers with an
// endpoint (excluding this node) and sorts them by estimated RTT from
// this edge's site, ties by node ID for determinism.
func (n *Node) orderCandidates(reps []allocation.Replica) []allocation.Replica {
	mySite, _ := n.registry.SiteOf(n.cfg.Node)
	cands := make([]allocation.Replica, 0, len(reps))
	for _, rep := range reps {
		// Suspects — members whose last health probe failed but that the
		// sweeper has not yet declared dead — are skipped the same as
		// offline members: don't burn retry budget on a likely corpse.
		if rep.Node == n.cfg.Node || !n.registry.Online(rep.Node) || n.suspects.isSuspect(rep.Node) {
			continue
		}
		if _, ok := n.registry.BaseURL(rep.Node); !ok {
			continue
		}
		cands = append(cands, rep)
	}
	sort.Slice(cands, func(i, j int) bool {
		ri, _ := n.registry.RTT(mySite, cands[i].Site)
		rj, _ := n.registry.RTT(mySite, cands[j].Site)
		if ri != rj {
			return ri < rj
		}
		return cands[i].Node < cands[j].Node
	})
	return cands
}

// tryPeer fetches the dataset from one peer edge and, on success, streams
// it through to the client. committed reports whether a response was
// written (successfully or not) — once headers are on the wire there is
// no retrying.
func (n *Node) tryPeer(w http.ResponseWriter, r *http.Request, id storage.DatasetID,
	cand allocation.Replica, rngs []byteRange, isRange bool, total int64,
	origin allocation.NodeID) (committed bool, _ error) {
	base, ok := n.registry.BaseURL(cand.Node)
	if !ok {
		return false, ErrNoEndpoint
	}
	rng, multi := rngs[0], len(rngs) > 1
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		base+"/v1/fetch/"+url.PathEscape(string(id)), nil)
	if err != nil {
		return false, err
	}
	req.Header.Set(peerHeader, fmt.Sprint(n.cfg.Node))
	req.Header.Set("Authorization", r.Header.Get("Authorization"))
	wantStatus := http.StatusOK
	if isRange {
		req.Header.Set("Range", rangesHeader(rngs))
		wantStatus = http.StatusPartialContent
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		drainBody(resp.Body)
		return false, fmt.Errorf("server: peer %d returned %s", cand.Node, resp.Status)
	}
	// Pull-through spills the stream to the replica volume as it proxies
	// (temp file + atomic rename on success), so the next local hit rides
	// sendfile without re-deriving a single byte. Spill problems never
	// fail the client's fetch: the spill is poisoned, aborted at the end,
	// and counted.
	var spill *storage.Spill
	var segSpill *segmentSpillWriter
	man, hasMan := n.manifests.Get(id)
	opaque := hasMan && man.Opaque
	pullThrough := n.cfg.PullThrough && !isRange
	if pullThrough && n.vol != nil {
		if n.segmented(total) {
			// Large objects adopt per segment: the stream is cut on
			// segment boundaries, each piece verified against its block
			// digests and committed the moment it completes — an
			// interrupted pull still leaves servable segments behind,
			// and a dataset bigger than the whole volume still caches
			// its hot prefix. Without a manifest whose block size
			// divides the segment size there is nothing to verify
			// against, so nothing is adopted.
			if hasMan && n.cfg.SegmentSize%man.BlockSize == 0 {
				segSpill = &segmentSpillWriter{n: n, id: id, man: man, total: total}
			}
		} else if total <= n.vol.Quota() {
			if sp, serr := n.vol.NewSpill(id); serr == nil {
				spill = sp
			} else {
				n.Metrics.StoreSpillFailures.Inc()
			}
		}
	}
	// Peer bytes are never trusted on faith: when the dataset has a
	// manifest, the spilled stream runs through a whole-stream digest
	// verifier and a mismatch discards the copy (and, for opaque
	// datasets, the would-be replica record). The client's own stream is
	// already on the wire by then — end-to-end client verification
	// catches that side.
	var verifier *ingest.RangeVerifier
	if spill != nil && hasMan {
		if vv, verr := man.NewVerifier(); verr == nil {
			verifier = vv
		} else {
			spill.Abort()
			spill = nil
			n.Metrics.StoreSpillFailures.Inc()
		}
	}
	// A multipart stripe set is relayed as the peer framed it: the
	// boundary lives in the peer's Content-Type, so that header (and the
	// framing-inclusive Content-Length) pass through verbatim.
	expected := rng.n
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("X-SCDN-Source", fmt.Sprint(cand.Node))
	status := http.StatusOK
	if multi {
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		if cl := resp.Header.Get("Content-Length"); cl != "" {
			w.Header().Set("Content-Length", cl)
		}
		expected = resp.ContentLength
		status = http.StatusPartialContent
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(rng.n))
		if isRange {
			w.Header().Set("Content-Range", rng.contentRange(total))
			status = http.StatusPartialContent
		}
	}
	w.WriteHeader(status)
	dst := io.Writer(w)
	var spillW *bestEffortWriter
	switch {
	case segSpill != nil:
		spillW = &bestEffortWriter{w: segSpill}
		dst = io.MultiWriter(w, spillW)
	case spill != nil:
		sink := io.Writer(spill)
		if verifier != nil {
			sink = io.MultiWriter(verifier, spill)
		}
		spillW = &bestEffortWriter{w: sink}
		dst = io.MultiWriter(w, spillW)
	}
	written, copyErr := copyBuffered(dst, resp.Body)
	n.Metrics.BytesServed.Add(uint64(written))
	if copyErr != nil || (expected >= 0 && written != expected) {
		if spill != nil {
			spill.Abort()
			n.Metrics.StoreSpillFailures.Inc()
		}
		if segSpill != nil {
			// The tail segment aborts; every segment that completed and
			// verified before the failure stays adopted.
			segSpill.finish()
			n.noteSegSpillErr(spillW)
		}
		n.Metrics.FetchFailures.Inc()
		return true, copyErr
	}
	if cand.Node == origin {
		n.Metrics.OriginFetches.Inc()
	} else {
		n.Metrics.PeerHits.Inc()
	}
	committedSpill := false
	if segSpill != nil {
		// Segment-granular adoption never mints a catalog replica record
		// (even at full coverage): segments are pieces, individually
		// evictable, so the holder claim stays with whole-file replicas
		// and generator-backed datasets. finish aborts a half-received
		// tail segment and keeps everything that committed.
		segSpill.finish()
		n.noteSegSpillErr(spillW)
	}
	if spill != nil {
		var verr error
		if spillW.err == nil && verifier != nil {
			verr = verifier.Close()
		}
		switch {
		case errors.Is(spillW.err, ingest.ErrDigestMismatch):
			// A corrupt block fails the verifier mid-stream, which
			// surfaces through the sink as a write error: corruption,
			// not a spill problem.
			spill.Abort()
			n.Metrics.IngestDigestRejects.Inc()
		case spillW.err != nil:
			spill.Abort()
			n.Metrics.StoreSpillFailures.Inc()
		case verr != nil:
			// The peer's bytes do not match the manifest: never adopt them.
			spill.Abort()
			n.Metrics.IngestDigestRejects.Inc()
		default:
			if err := spill.Commit(total); err != nil {
				n.Metrics.StoreSpillFailures.Inc()
			} else {
				n.Metrics.StoreSpills.Inc()
				committedSpill = true
			}
		}
	}
	// Pull-through only on full-body fetches: a stripe proves nothing
	// about the rest of the dataset, so partial transfers never mint a
	// replica record. (The metadata registration below is what announces
	// the replica; for a seeded dataset a failed spill just means the
	// bytes get materialized from the generator on the next local hit —
	// but an opaque dataset has no generator, so its replica record
	// exists only when digest-verified bytes actually committed.)
	if pullThrough && (!opaque || committedSpill) {
		n.cachePulled(id, total)
	}
	return true, nil
}

// drainBodyLimit bounds how much of a failed peer response gets read
// before close. Error envelopes are small JSON bodies, but a peer that
// commits to a payload and then fails mid-flight can leave much more in
// the pipe; reading up to 1 MiB keeps the connection reusable in every
// realistic failure without letting a pathological peer pin this edge.
const drainBodyLimit = 1 << 20

// drainBody reads a response body to EOF (bounded) so the underlying
// connection returns to the transport's idle pool instead of being torn
// down — without this, every failed peer hop costs the next attempt a
// TCP handshake.
func drainBody(body io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, drainBodyLimit))
}

// bestEffortWriter forwards writes to w until the first error, then
// swallows everything: the primary stream (the client response) must
// never fail because a secondary sink (the disk spill) did.
type bestEffortWriter struct {
	w   io.Writer
	err error
}

func (b *bestEffortWriter) Write(p []byte) (int, error) {
	if b.err == nil {
		if _, err := b.w.Write(p); err != nil {
			b.err = err
		}
	}
	return len(p), nil
}
