package server

import (
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"scdn/internal/ingest"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// Live user ingest: PUT /v1/datasets/{dataset} streams researcher bytes
// into the receiving edge's disk volume through a temp-file spill,
// verifies them against the digest the client declared up front, and —
// only then, atomically — publishes the dataset: manifest in the shared
// store, group scope in the middleware, origin record in the catalog,
// user-partition record in the repository. A digest mismatch, short
// stream, or crashed client leaves no state at all: no temp file, no
// catalog entry, no manifest.
//
// Large uploads arrive as parallel Content-Range stripes (the upload
// mirror of the striped fetch). Stripes of one dataset share an
// uploadSession; the stripe whose bytes complete the session performs
// the verify-and-publish and answers 201 with the accepted manifest,
// the others answer 204.

// uploadSession is one in-flight (possibly striped) upload.
type uploadSession struct {
	spill  *storage.Spill
	user   socialnet.UserID
	group  string
	total  int64
	digest [sha256.Size]byte

	mu       sync.Mutex
	got      int64 // bytes acknowledged by completed stripes
	inflight int   // stripes currently writing
	failed   bool  // a stripe failed; last one out aborts the spill
	aborted  bool
	touched  time.Time
}

// touch refreshes the session's idle clock. Caller holds sess.mu.
func (s *uploadSession) touchLocked() { s.touched = time.Now() }

// maxUploadDatasetID caps the dataset-ID path segment (matches the
// manifest codec's own cap, checked early so a hostile URL fails fast).
const maxUploadDatasetID = 1024

// handleUpload is PUT /v1/datasets/{dataset}.
func (n *Node) handleUpload(w http.ResponseWriter, r *http.Request) {
	id := storage.DatasetID(r.PathValue("dataset"))
	user, err := n.auth.Authenticate(bearerToken(r))
	if err != nil {
		n.Metrics.AuthDenied.Inc()
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	if len(id) > maxUploadDatasetID {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("server: dataset ID exceeds %d bytes", maxUploadDatasetID))
		return
	}
	if n.vol == nil {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("server: node %d has no replica volume; uploads need disk-backed storage", n.cfg.Node))
		return
	}
	digest, err := parseDigestHeader(r.Header.Get(ingest.DigestHeader))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	off, length, total, err := uploadExtent(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Re-publishing an existing dataset is a conflict, not an overwrite:
	// a dataset's content address never silently changes.
	if _, err := n.catalog.DatasetBytes(id); err == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("server: dataset %q already published", id))
		return
	}
	if _, ok := n.manifests.Get(id); ok {
		writeError(w, http.StatusConflict, fmt.Errorf("server: dataset %q already has a manifest", id))
		return
	}
	if total > n.vol.Quota() {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: dataset %q (%d bytes) exceeds volume quota %d", id, total, n.vol.Quota()))
		return
	}

	sess, status, err := n.uploadSessionFor(id, user, r.Header.Get(ingest.GroupHeader), total, digest)
	if err != nil {
		writeError(w, status, err)
		return
	}
	defer n.uploadStripeDone(id, sess)

	// Stream this stripe's bytes into the shared spill at its offset.
	// WriteAt is stripe-concurrent; a failure poisons the spill for all.
	written, cerr := copyBuffered(io.NewOffsetWriter(sess.spill, off), io.LimitReader(r.Body, length))
	if cerr != nil || written != length {
		if cerr == nil {
			cerr = fmt.Errorf("server: upload stripe for %q moved %d of %d bytes", id, written, length)
		}
		n.failUpload(id, sess)
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: upload %q: %w", id, cerr))
		return
	}

	sess.mu.Lock()
	sess.got += length
	sess.touchLocked()
	done := !sess.failed && sess.got == sess.total
	sess.mu.Unlock()
	if !done {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	n.finalizeUpload(w, id, sess)
}

// uploadSessionFor joins the dataset's in-flight session or opens a new
// one (creating the spill and checking group membership). The returned
// session has this stripe registered as in flight.
func (n *Node) uploadSessionFor(id storage.DatasetID, user socialnet.UserID,
	group string, total int64, digest [sha256.Size]byte) (*uploadSession, int, error) {
	n.upMu.Lock()
	defer n.upMu.Unlock()
	if sess, ok := n.uploads[id]; ok {
		// Every stripe of one upload must describe the same dataset.
		if sess.total != total || sess.digest != digest {
			return nil, http.StatusConflict,
				fmt.Errorf("server: upload %q: stripe disagrees with session (size/digest)", id)
		}
		sess.mu.Lock()
		sess.inflight++
		sess.touchLocked()
		sess.mu.Unlock()
		return sess, 0, nil
	}
	if group == "" {
		return nil, http.StatusBadRequest,
			fmt.Errorf("server: upload %q: missing %s header", id, ingest.GroupHeader)
	}
	if !n.auth.InGroup(user, group) {
		n.Metrics.AuthDenied.Inc()
		return nil, http.StatusForbidden,
			fmt.Errorf("server: user %d is not a member of group %q", user, group)
	}
	spill, err := n.vol.NewSpill(id)
	if err != nil {
		n.Metrics.StoreSpillFailures.Inc()
		return nil, http.StatusInternalServerError, err
	}
	sess := &uploadSession{
		spill: spill, user: user, group: group,
		total: total, digest: digest, inflight: 1,
	}
	sess.touchLocked()
	n.uploads[id] = sess
	return sess, 0, nil
}

// uploadStripeDone deregisters an in-flight stripe; the last stripe out
// of a failed session aborts the spill (WriteAt must never race a
// close).
func (n *Node) uploadStripeDone(id storage.DatasetID, sess *uploadSession) {
	sess.mu.Lock()
	sess.inflight--
	abort := sess.failed && !sess.aborted && sess.inflight == 0
	if abort {
		sess.aborted = true
	}
	sess.mu.Unlock()
	if abort {
		sess.spill.Abort()
	}
}

// failUpload marks the session failed and removes it from the index so
// no new stripe joins; the temp file dies with the last in-flight
// stripe (uploadStripeDone).
func (n *Node) failUpload(id storage.DatasetID, sess *uploadSession) {
	sess.mu.Lock()
	sess.failed = true
	sess.mu.Unlock()
	n.upMu.Lock()
	if n.uploads[id] == sess {
		delete(n.uploads, id)
	}
	n.upMu.Unlock()
}

// finalizeUpload verifies the completed spill against the declared
// digest and publishes the dataset. Runs on the stripe that completed
// the byte count; every other stripe has finished writing (each adds to
// got only after its copy returned).
func (n *Node) finalizeUpload(w http.ResponseWriter, id storage.DatasetID, sess *uploadSession) {
	n.upMu.Lock()
	if n.uploads[id] == sess {
		delete(n.uploads, id)
	}
	n.upMu.Unlock()

	// Re-read the temp file through a manifest hasher before the rename:
	// the digest check covers exactly the bytes that hit the disk, and
	// the same pass yields the block digests the manifest needs. The
	// committed origin copy is pinned — an opaque dataset's last byte
	// must never fall to LRU pressure.
	hasher := ingest.NewHasher(ingest.DefaultBlockSize)
	err := sess.spill.CommitVerified(sess.total, func(r io.Reader) error {
		if _, err := io.Copy(hasher, r); err != nil {
			return err
		}
		if hasher.Sum256() != sess.digest {
			return fmt.Errorf("server: upload %q: content does not hash to declared digest", id)
		}
		return nil
	}, true)
	if err != nil {
		n.Metrics.IngestDigestRejects.Inc()
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	man := hasher.Manifest(id, true)

	// Publish: manifest first (fetch verification needs it the moment a
	// catalog entry exists), then group scope, then the catalog origin
	// record that makes the dataset resolvable.
	if err := n.manifests.Put(man); err != nil {
		n.vol.Remove(id)
		writeError(w, http.StatusConflict, err)
		return
	}
	if err := n.auth.RegisterDataset(id, sess.group); err != nil {
		n.manifests.Delete(id)
		n.vol.Remove(id)
		writeError(w, http.StatusConflict, err)
		return
	}
	if err := n.catalog.RegisterDataset(id, n.cfg.Node, sess.total); err != nil {
		// A racing upload of the same ID through another edge won the
		// publish; withdraw ours completely.
		n.manifests.Delete(id)
		n.vol.Remove(id)
		writeError(w, http.StatusConflict, err)
		return
	}
	// The uploaded bytes land in the user partition (Section V-A: the
	// researcher-managed half of the member repository). Best effort —
	// the catalog record above is what makes the dataset servable.
	n.repoMu.Lock()
	_ = n.repo.StoreUser(id, sess.total, n.now())
	n.repoMu.Unlock()

	n.Metrics.IngestUploads.Inc()
	n.Metrics.IngestUploadBytes.Add(uint64(sess.total))

	body, err := ingest.EncodeManifest(man)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write(body)
}

// parseDigestHeader decodes the declared whole-stream digest.
func parseDigestHeader(h string) ([sha256.Size]byte, error) {
	if h == "" {
		var d [sha256.Size]byte
		return d, fmt.Errorf("server: missing %s header", ingest.DigestHeader)
	}
	return ingest.ParseDigest(h)
}

// uploadExtent resolves the byte range this request carries and the
// dataset's total size: either a plain body (no Content-Range, total =
// Content-Length) or one stripe of a parallel upload ("Content-Range:
// bytes a-b/total").
func uploadExtent(r *http.Request) (off, length, total int64, err error) {
	cr := r.Header.Get("Content-Range")
	if cr == "" {
		if r.ContentLength <= 0 {
			return 0, 0, 0, fmt.Errorf("server: upload needs a known positive Content-Length")
		}
		return 0, r.ContentLength, r.ContentLength, nil
	}
	off, length, total, err = parseContentRange(cr)
	if err != nil {
		return 0, 0, 0, err
	}
	if r.ContentLength >= 0 && r.ContentLength != length {
		return 0, 0, 0, fmt.Errorf("server: Content-Length %d disagrees with Content-Range %q",
			r.ContentLength, cr)
	}
	return off, length, total, nil
}

// parseContentRange parses "bytes a-b/total" (the only form uploads
// accept: every stripe knows exactly where it lands).
func parseContentRange(cr string) (off, length, total int64, err error) {
	bad := func() (int64, int64, int64, error) {
		return 0, 0, 0, fmt.Errorf("server: bad Content-Range %q (want \"bytes a-b/total\")", cr)
	}
	rest, ok := strings.CutPrefix(cr, "bytes ")
	if !ok {
		return bad()
	}
	span, totalStr, ok := strings.Cut(rest, "/")
	if !ok {
		return bad()
	}
	aStr, bStr, ok := strings.Cut(span, "-")
	if !ok {
		return bad()
	}
	a, errA := parseInt64(aStr)
	b, errB := parseInt64(bStr)
	t, errT := parseInt64(totalStr)
	if errA != nil || errB != nil || errT != nil {
		return bad()
	}
	if a < 0 || b < a || t <= b {
		return bad()
	}
	return a, b - a + 1, t, nil
}

// parseInt64 parses a non-negative decimal without accepting signs or
// whitespace.
func parseInt64(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-digit")
		}
		d := int64(c - '0')
		if v > (1<<63-1-d)/10 {
			return 0, fmt.Errorf("overflow")
		}
		v = v*10 + d
	}
	return v, nil
}

// expireUploads aborts upload sessions idle past the configured
// timeout: a client that died mid-stripe must not pin a temp file (or
// the dataset ID) forever. Called from the repair sweeper.
func (n *Node) expireUploads() {
	cutoff := time.Now().Add(-n.cfg.UploadIdleTimeout)
	var stale []*uploadSession
	n.upMu.Lock()
	for id, sess := range n.uploads {
		sess.mu.Lock()
		idle := sess.inflight == 0 && sess.touched.Before(cutoff)
		if idle && !sess.aborted {
			sess.failed, sess.aborted = true, true
			stale = append(stale, sess)
		}
		sess.mu.Unlock()
		if idle {
			delete(n.uploads, id)
			n.Metrics.IngestUploadExpired.Inc()
		}
	}
	n.upMu.Unlock()
	for _, sess := range stale {
		sess.spill.Abort()
	}
}

// abortUploads discards every upload session (node stopping or
// crashed). Sessions with stripes still in flight are marked failed and
// cleaned up by the last stripe's exit.
func (n *Node) abortUploads() {
	var dead []*uploadSession
	n.upMu.Lock()
	for id, sess := range n.uploads {
		sess.mu.Lock()
		sess.failed = true
		if sess.inflight == 0 && !sess.aborted {
			sess.aborted = true
			dead = append(dead, sess)
		}
		sess.mu.Unlock()
		delete(n.uploads, id)
	}
	n.upMu.Unlock()
	for _, sess := range dead {
		sess.spill.Abort()
	}
}
