// Package server is the S-CDN's live delivery plane: a network-facing
// HTTP allocation/edge server wrapping the simulator's building blocks —
// the allocation catalog (Section V-B), researcher-contributed storage
// repositories (Section V-A), and the social middleware's authentication
// and group-scoped authorization (Section V-C) — behind a concurrent API.
// Each Node is simultaneously an allocation endpoint (it resolves
// requests against the shared catalog) and an edge repository (it serves
// dataset bytes, falling back to a peer edge with bounded retry and
// exponential backoff when it does not hold the data locally).
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/middleware"
	"scdn/internal/storage"
)

// Config parameterizes one node.
type Config struct {
	// Node is this edge's participant ID (its repository owner).
	Node allocation.NodeID
	// ListenAddr is the TCP address to bind ("127.0.0.1:0" for an
	// ephemeral port).
	ListenAddr string
	// FetchAttempts bounds the peer-fallback retry loop (total attempts
	// across candidates). Zero means the default of 4.
	FetchAttempts int
	// RetryBase is the first backoff delay; it doubles per retry up to
	// RetryMax. Zeros mean 10ms and 250ms.
	RetryBase time.Duration
	RetryMax  time.Duration
	// PullThrough caches successfully proxied datasets in the local
	// replica partition and registers the new replica in the catalog, so
	// demand migrates data toward where it is requested.
	PullThrough bool
	// BlockCacheBlocks caps the node's payload-block cache (number of
	// cached 4 KiB repetition blocks). Zero means
	// DefaultBlockCacheBlocks.
	BlockCacheBlocks int
	// Volume, when non-nil, is the node's disk-backed replica volume:
	// locally held datasets are materialized as real files (once, via
	// the deterministic generator) and served through http.ServeContent
	// so full bodies and single-part ranges ride the kernel's sendfile
	// path, and pull-through caching spills the proxied stream straight
	// to disk. Nil keeps the in-memory generated-payload path.
	Volume *storage.DiskVolume
	// Clock supplies the node's notion of elapsed time (repository
	// recency, token expiry). Nil means wall time since Start.
	Clock func() time.Duration
}

// Node is one running allocation/edge server.
type Node struct {
	cfg      Config
	auth     *middleware.Middleware
	catalog  *Catalog
	registry *Registry
	blocks   *BlockCache
	vol      *storage.DiskVolume // nil in generated-payload mode
	srcID    string              // X-SCDN-Source value, rendered once
	srcHdr   []string            // the same value as a sharable header slice
	Metrics  *Metrics

	// repoMu serializes access to the repository, which is
	// single-threaded by design (the simulator owns it elsewhere).
	repoMu sync.Mutex
	repo   *storage.Repository

	client  *http.Client
	httpSrv *http.Server
	ln      net.Listener
	started time.Time

	mu      sync.Mutex
	baseURL string
	running bool
}

// NewNode wires a node over shared serving-plane state. All
// collaborators are required.
func NewNode(cfg Config, repo *storage.Repository, auth *middleware.Middleware,
	catalog *Catalog, registry *Registry) (*Node, error) {
	if repo == nil || auth == nil || catalog == nil || registry == nil {
		return nil, errors.New("server: missing collaborator")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.FetchAttempts <= 0 {
		cfg.FetchAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 250 * time.Millisecond
	}
	n := &Node{
		cfg:      cfg,
		repo:     repo,
		auth:     auth,
		catalog:  catalog,
		registry: registry,
		blocks:   NewBlockCache(cfg.BlockCacheBlocks),
		vol:      cfg.Volume,
		srcID:    strconv.FormatInt(int64(cfg.Node), 10),
		srcHdr:   []string{strconv.FormatInt(int64(cfg.Node), 10)},
		Metrics:  &Metrics{},
		// Peer hops share the process-wide tuned transport: raised
		// per-host idle pool, keep-alives on.
		client: NewHTTPClient(30 * time.Second),
	}
	n.httpSrv = &http.Server{
		Handler:           n.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return n, nil
}

// ID returns the node's participant ID.
func (n *Node) ID() allocation.NodeID { return n.cfg.Node }

// now returns elapsed time on the node's clock.
func (n *Node) now() time.Duration {
	if n.cfg.Clock != nil {
		return n.cfg.Clock()
	}
	return time.Since(n.started)
}

// Start binds the listener, begins serving in a background goroutine,
// and publishes the node's endpoint and liveness in the registry.
func (n *Node) Start() error {
	// Claim the started state first, then bind outside the mutex: a slow
	// or hanging listen must not block BaseURL/Shutdown callers.
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return errors.New("server: already started")
	}
	n.running = true
	n.mu.Unlock()
	ln, err := net.Listen("tcp", n.cfg.ListenAddr)
	if err != nil {
		n.mu.Lock()
		n.running = false
		n.mu.Unlock()
		return fmt.Errorf("server: listen %s: %w", n.cfg.ListenAddr, err)
	}
	baseURL := "http://" + ln.Addr().String()
	n.mu.Lock()
	n.ln = ln
	n.started = time.Now()
	n.baseURL = baseURL
	n.mu.Unlock()
	n.registry.SetBaseURL(n.cfg.Node, baseURL)
	n.registry.SetOnline(n.cfg.Node, true)
	go func() {
		if err := n.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener died outside a graceful shutdown: withdraw
			// from the membership so peers stop selecting this edge.
			n.registry.SetOnline(n.cfg.Node, false)
		}
	}()
	return nil
}

// BaseURL returns the node's endpoint ("" before Start).
func (n *Node) BaseURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.baseURL
}

// Shutdown withdraws the node from the membership and drains in-flight
// requests until ctx expires.
func (n *Node) Shutdown(ctx context.Context) error {
	n.mu.Lock()
	if !n.running {
		n.mu.Unlock()
		return nil
	}
	n.running = false
	n.mu.Unlock()
	n.registry.SetOnline(n.cfg.Node, false)
	return n.httpSrv.Shutdown(ctx)
}

// Volume returns the node's disk-backed replica volume (nil in
// generated-payload mode).
func (n *Node) Volume() *storage.DiskVolume { return n.vol }

// RepoStats snapshots the node's repository statistics.
func (n *Node) RepoStats() storage.Stats {
	n.repoMu.Lock()
	defer n.repoMu.Unlock()
	return n.repo.Stats()
}

// hasLocal reports whether the repository holds the dataset, refreshing
// recency on hit.
func (n *Node) hasLocal(id storage.DatasetID) bool {
	n.repoMu.Lock()
	defer n.repoMu.Unlock()
	_, ok := n.repo.Read(id, n.now())
	return ok
}

// cachePulled stores a successfully proxied dataset in the replica
// partition and registers the replica in the catalog. Failures (partition
// full, concurrent duplicate) are expected outcomes, not errors.
func (n *Node) cachePulled(id storage.DatasetID, bytes int64) {
	n.repoMu.Lock()
	err := n.repo.StoreReplica(id, bytes, n.now())
	n.repoMu.Unlock()
	if err != nil {
		return
	}
	if err := n.catalog.AddReplica(id, n.cfg.Node, n.now()); err != nil {
		// Catalog refused (e.g. racing fetch already registered us):
		// drop the local copy so repository and catalog stay consistent.
		n.repoMu.Lock()
		_ = n.repo.DropReplica(id)
		n.repoMu.Unlock()
	}
}
