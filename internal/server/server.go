// Package server is the S-CDN's live delivery plane: a network-facing
// HTTP allocation/edge server wrapping the simulator's building blocks —
// the allocation catalog (Section V-B), researcher-contributed storage
// repositories (Section V-A), and the social middleware's authentication
// and group-scoped authorization (Section V-C) — behind a concurrent API.
// Each Node is simultaneously an allocation endpoint (it resolves
// requests against the shared catalog) and an edge repository (it serves
// dataset bytes, falling back to a peer edge with bounded retry and
// exponential backoff when it does not hold the data locally).
//
// Nodes are member-contributed and carry no uptime SLA: they can be
// stopped (graceful drain), crashed (hard close, no goodbye), and
// started again. A background repair sweeper per node (sweeper.go)
// detects dead members by failed health probes, deregisters them, and
// re-replicates under-replicated datasets onto survivors; churn.go
// injects scripted failures so the loop is testable end to end.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/ingest"
	"scdn/internal/middleware"
	"scdn/internal/storage"
)

// Config parameterizes one node.
type Config struct {
	// Node is this edge's participant ID (its repository owner).
	Node allocation.NodeID
	// ListenAddr is the TCP address to bind ("127.0.0.1:0" for an
	// ephemeral port).
	ListenAddr string
	// FetchAttempts bounds the peer-fallback retry loop (total attempts
	// across candidates). Zero means the default of 4.
	FetchAttempts int
	// RetryBase is the first backoff delay; it doubles per retry up to
	// RetryMax. Zeros mean 10ms and 250ms.
	RetryBase time.Duration
	RetryMax  time.Duration
	// PullThrough caches successfully proxied datasets in the local
	// replica partition and registers the new replica in the catalog, so
	// demand migrates data toward where it is requested.
	PullThrough bool
	// BlockCacheBlocks caps the node's payload-block cache (number of
	// cached 4 KiB repetition blocks). Zero means
	// DefaultBlockCacheBlocks.
	BlockCacheBlocks int
	// Volume, when non-nil, is the node's disk-backed replica volume:
	// locally held datasets are materialized as real files (once, via
	// the deterministic generator) and served through http.ServeContent
	// so full bodies and single-part ranges ride the kernel's sendfile
	// path, and pull-through caching spills the proxied stream straight
	// to disk. Nil keeps the in-memory generated-payload path.
	Volume *storage.DiskVolume
	// Sweep configures the node's background repair sweeper
	// (sweeper.go). The zero value enables it with defaults; set
	// Sweep.Disabled to run without one.
	Sweep SweeperConfig
	// Manifests is the cluster's shared content-address index (dataset →
	// manifest). Nil gets a private empty store; clusters share one the
	// same way they share the catalog.
	Manifests *ingest.Store
	// UploadIdleTimeout is how long a striped upload session may sit
	// with no arriving stripe before the sweeper aborts it and deletes
	// its temp file. Zero means 15s.
	UploadIdleTimeout time.Duration
	// SegmentSize is the fixed segment size of the large-object layout
	// (segments.go); it must be a positive multiple of the ingest block
	// size so every segment boundary is a digest boundary. Zero means
	// storage.DefaultSegmentSize.
	SegmentSize int64
	// SegmentThreshold is the dataset size at or above which the node
	// stores and serves bytes as segments instead of one flat file. Zero
	// means storage.DefaultSegmentThreshold; negative disables the
	// segmented layout entirely.
	SegmentThreshold int64
	// KeepSegmentPages disables the page-cache hygiene drop
	// (posix_fadvise DONTNEED) behind completed sequential segment
	// serves. Set it when the box is dedicated to serving one hot large
	// object and the pages are worth keeping.
	KeepSegmentPages bool
	// Clock supplies the node's notion of elapsed time (repository
	// recency, token expiry). Nil means wall time since Start.
	Clock func() time.Duration
}

// Node is one running allocation/edge server.
type Node struct {
	cfg      Config
	auth     *middleware.Middleware
	catalog  *Catalog
	registry *Registry
	blocks   *BlockCache
	vol      *storage.DiskVolume // nil in generated-payload mode
	srcID    string              // X-SCDN-Source value, rendered once
	srcHdr   []string            // the same value as a sharable header slice
	Metrics  *Metrics

	// manifests is the shared content-address index: which datasets are
	// content-addressed (and which of those are opaque — not
	// regenerable). See upload.go and the opaque rules in handlers.go.
	manifests *ingest.Store

	// upMu guards uploads, the in-flight striped upload sessions
	// (upload.go).
	upMu    sync.Mutex
	uploads map[storage.DatasetID]*uploadSession

	// segIdxMu guards segIdx, the per-dataset cache of rolled-up
	// segment digests published on /v1/resolve (segments.go).
	segIdxMu sync.Mutex
	segIdx   map[storage.DatasetID][]string

	// suspects is the node's local failure-detector state: members whose
	// last health probe failed. The fetch path skips suspects before the
	// registry has deregistered them (sweeper.go).
	suspects suspectTable

	// repoMu serializes access to the repository, which is
	// single-threaded by design (the simulator owns it elsewhere).
	repoMu sync.Mutex
	repo   *storage.Repository

	client *http.Client

	mu          sync.Mutex
	httpSrv     *http.Server // fresh per Start: a shut-down http.Server cannot serve again
	ln          net.Listener
	started     time.Time
	baseURL     string
	running     bool
	everStarted bool
	sweepCancel context.CancelFunc
	sweepDone   chan struct{}
}

// NewNode wires a node over shared serving-plane state. All
// collaborators are required.
func NewNode(cfg Config, repo *storage.Repository, auth *middleware.Middleware,
	catalog *Catalog, registry *Registry) (*Node, error) {
	if repo == nil || auth == nil || catalog == nil || registry == nil {
		return nil, errors.New("server: missing collaborator")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.FetchAttempts <= 0 {
		cfg.FetchAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 250 * time.Millisecond
	}
	cfg.Sweep.applyDefaults()
	if cfg.Manifests == nil {
		cfg.Manifests = ingest.NewStore()
	}
	if cfg.UploadIdleTimeout <= 0 {
		cfg.UploadIdleTimeout = 15 * time.Second
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = storage.DefaultSegmentSize
	}
	if cfg.SegmentThreshold == 0 {
		cfg.SegmentThreshold = storage.DefaultSegmentThreshold
	}
	if cfg.SegmentSize <= 0 || cfg.SegmentSize%ingest.DefaultBlockSize != 0 {
		return nil, fmt.Errorf("server: segment size %d is not a positive multiple of the %d-byte ingest block",
			cfg.SegmentSize, ingest.DefaultBlockSize)
	}
	n := &Node{
		cfg:       cfg,
		repo:      repo,
		auth:      auth,
		catalog:   catalog,
		registry:  registry,
		blocks:    NewBlockCache(cfg.BlockCacheBlocks),
		vol:       cfg.Volume,
		srcID:     strconv.FormatInt(int64(cfg.Node), 10),
		srcHdr:    []string{strconv.FormatInt(int64(cfg.Node), 10)},
		Metrics:   &Metrics{},
		manifests: cfg.Manifests,
		uploads:   make(map[storage.DatasetID]*uploadSession),
		// Peer hops share the process-wide tuned transport: raised
		// per-host idle pool, keep-alives on.
		client: NewHTTPClient(30 * time.Second),
	}
	return n, nil
}

// ID returns the node's participant ID.
func (n *Node) ID() allocation.NodeID { return n.cfg.Node }

// now returns elapsed time on the node's clock.
func (n *Node) now() time.Duration {
	if n.cfg.Clock != nil {
		return n.cfg.Clock()
	}
	n.mu.Lock()
	s := n.started
	n.mu.Unlock()
	return time.Since(s)
}

// Start binds the listener, begins serving in a background goroutine,
// publishes the node's endpoint and liveness in the registry, and (when
// enabled) launches the repair sweeper. Starting again after Stop or
// Crash restarts the node on a fresh ephemeral port: the member rejoins
// the registry and re-adopts any replicas its disk volume or repository
// still holds.
func (n *Node) Start() error {
	// Claim the started state first, then bind outside the mutex: a slow
	// or hanging listen must not block BaseURL/Stop callers.
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return errors.New("server: already started")
	}
	n.running = true
	n.mu.Unlock()
	ln, err := net.Listen("tcp", n.cfg.ListenAddr)
	if err != nil {
		n.mu.Lock()
		n.running = false
		n.mu.Unlock()
		return fmt.Errorf("server: listen %s: %w", n.cfg.ListenAddr, err)
	}
	// A shut-down or closed http.Server is spent; every (re)start gets a
	// fresh one over the node's handler.
	srv := &http.Server{
		Handler:           n.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	baseURL := "http://" + ln.Addr().String()
	var sweepCtx context.Context
	n.mu.Lock()
	restart := n.everStarted
	n.everStarted = true
	n.httpSrv = srv
	n.ln = ln
	n.started = time.Now()
	n.baseURL = baseURL
	if !n.cfg.Sweep.Disabled {
		sweepCtx, n.sweepCancel = context.WithCancel(context.Background())
		n.sweepDone = make(chan struct{})
	}
	done := n.sweepDone
	n.mu.Unlock()
	if restart {
		n.Metrics.ChurnRestarts.Inc()
	}
	n.registry.SetBaseURL(n.cfg.Node, baseURL)
	n.registry.SetOnline(n.cfg.Node, true)
	if restart {
		// A restarted member still holds whatever its volume and
		// repository committed before the crash: re-announce those
		// replicas so the catalog converges without re-transferring.
		n.readoptReplicas()
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener died outside a graceful shutdown: withdraw
			// from the membership so peers stop selecting this edge.
			n.registry.SetOnline(n.cfg.Node, false)
		}
	}()
	if sweepCtx != nil {
		go n.runSweeper(sweepCtx, done)
	}
	return nil
}

// BaseURL returns the node's endpoint ("" before Start).
func (n *Node) BaseURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.baseURL
}

// Running reports whether the node is currently serving.
func (n *Node) Running() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.running
}

// stopLocked claims the stopped state and returns the server to tear
// down plus the sweeper handles to reap. ok is false when the node was
// not running.
func (n *Node) stopLocked() (srv *http.Server, cancel context.CancelFunc, done chan struct{}, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.running {
		return nil, nil, nil, false
	}
	n.running = false
	srv = n.httpSrv
	cancel, done = n.sweepCancel, n.sweepDone
	n.sweepCancel, n.sweepDone = nil, nil
	return srv, cancel, done, true
}

// Stop gracefully drains the node: it withdraws from the membership,
// stops the repair sweeper, and lets in-flight requests finish until
// ctx expires. The node can Start again later.
func (n *Node) Stop(ctx context.Context) error {
	srv, cancel, done, ok := n.stopLocked()
	if !ok {
		return nil
	}
	n.registry.SetOnline(n.cfg.Node, false)
	reapSweeper(cancel, done)
	err := srv.Shutdown(ctx)
	// With the listener drained no new stripes can arrive: whatever
	// upload sessions remain are half-finished and must not leave temp
	// files behind.
	n.abortUploads()
	return err
}

// Crash kills the node the way a failing member dies: the listener and
// every active connection close immediately, and nothing is announced —
// the registry still lists the member online until a peer's failure
// detector notices. The node can Start again later, as a contributor's
// machine comes back.
func (n *Node) Crash() {
	srv, cancel, done, ok := n.stopLocked()
	if !ok {
		return
	}
	n.Metrics.ChurnKills.Inc()
	reapSweeper(cancel, done)
	_ = srv.Close()
	// Connections are dead; in-flight stripes error out on their own and
	// the rest of the session state is garbage now.
	n.abortUploads()
}

// reapSweeper cancels a node's sweeper goroutine and waits for it to
// exit, so Stop/Crash never leak a prober still dialing peers.
func reapSweeper(cancel context.CancelFunc, done chan struct{}) {
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// Shutdown is Stop under its historical name.
func (n *Node) Shutdown(ctx context.Context) error { return n.Stop(ctx) }

// readoptReplicas re-registers the datasets this node still holds after
// a restart: committed disk-volume files and repository records survive
// a crash (the simulator's Node object persists; on a real machine the
// volume's recovery scan plays this role), but the catalog may have
// been repaired around the dead member in the meantime. AddReplica
// failures (most commonly "already replicates", e.g. the origin copy
// that is never deregistered) are expected outcomes.
func (n *Node) readoptReplicas() {
	seen := make(map[storage.DatasetID]bool)
	var ids []storage.DatasetID
	if n.vol != nil {
		for _, id := range n.vol.IDs() {
			// Segment entries are pieces, not replicas: holding some
			// segments of a dataset is never a catalog claim to hold it.
			if _, _, isSeg := storage.ParseSegmentKey(id); isSeg {
				continue
			}
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	n.repoMu.Lock()
	held := append(n.repo.ReplicaIDs(), n.repo.UserIDs()...)
	n.repoMu.Unlock()
	for _, id := range held {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	now := n.now()
	for _, id := range ids {
		bytes, err := n.catalog.DatasetBytes(id)
		if err != nil {
			continue // not catalogued (anymore): nothing to re-adopt
		}
		n.repoMu.Lock()
		if !n.repo.HasLocal(id) {
			// A volume file without a repository record (the record was
			// evicted, the file survived): restore the accounting.
			_ = n.repo.StoreReplica(id, bytes, now)
		}
		n.repoMu.Unlock()
		if err := n.catalog.AddReplica(id, n.cfg.Node, now); err == nil {
			n.Metrics.RepairReadoptedReplicas.Inc()
		}
	}
}

// Volume returns the node's disk-backed replica volume (nil in
// generated-payload mode).
func (n *Node) Volume() *storage.DiskVolume { return n.vol }

// Manifest returns the dataset's recorded content manifest, if any.
func (n *Node) Manifest(id storage.DatasetID) (*ingest.Manifest, bool) {
	return n.manifests.Get(id)
}

// dropLocal withdraws this node's claim to hold the dataset: repository
// record and catalog announcement both go (best effort — an origin copy
// the allocation layer refuses to deregister stays announced). Used
// when a local copy turns out to be unservable, e.g. an opaque
// dataset's volume file is gone and regeneration is impossible.
func (n *Node) dropLocal(id storage.DatasetID) {
	n.repoMu.Lock()
	_ = n.repo.DropReplica(id)
	n.repoMu.Unlock()
	_ = n.catalog.RemoveReplica(id, n.cfg.Node)
}

// RepoStats snapshots the node's repository statistics.
func (n *Node) RepoStats() storage.Stats {
	n.repoMu.Lock()
	defer n.repoMu.Unlock()
	return n.repo.Stats()
}

// hasLocal reports whether the repository holds the dataset, refreshing
// recency on hit.
func (n *Node) hasLocal(id storage.DatasetID) bool {
	n.repoMu.Lock()
	defer n.repoMu.Unlock()
	_, ok := n.repo.Read(id, n.now())
	return ok
}

// cachePulled stores a successfully proxied dataset in the replica
// partition and registers the replica in the catalog. Failures (partition
// full, concurrent duplicate) are expected outcomes, not errors.
func (n *Node) cachePulled(id storage.DatasetID, bytes int64) {
	n.repoMu.Lock()
	err := n.repo.StoreReplica(id, bytes, n.now())
	n.repoMu.Unlock()
	if err != nil {
		return
	}
	if err := n.catalog.AddReplica(id, n.cfg.Node, n.now()); err != nil {
		// Catalog refused (e.g. racing fetch already registered us):
		// drop the local copy so repository and catalog stay consistent.
		n.repoMu.Lock()
		_ = n.repo.DropReplica(id)
		n.repoMu.Unlock()
	}
}

// suspectTable tracks consecutive failed health probes per member. A
// member with any recent failure is "suspect" (skipped by the fetch
// path's candidate ordering); one that fails SweeperConfig.FailThreshold
// probes in a row is declared dead and deregistered from the registry.
type suspectTable struct {
	mu    sync.Mutex
	fails map[allocation.NodeID]int
}

// noteFailure records one failed probe and returns the consecutive
// count.
func (s *suspectTable) noteFailure(node allocation.NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fails == nil {
		s.fails = make(map[allocation.NodeID]int)
	}
	s.fails[node]++
	return s.fails[node]
}

// noteSuccess clears a member's failure streak, reporting whether it had
// one (a recovery).
func (s *suspectTable) noteSuccess(node allocation.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fails[node] == 0 {
		return false
	}
	delete(s.fails, node)
	return true
}

// isSuspect reports whether the member's last probe failed.
func (s *suspectTable) isSuspect(node allocation.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fails[node] > 0
}

// count returns how many members are currently suspect.
func (s *suspectTable) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.fails)
}

// Suspect reports whether this node's failure detector currently
// suspects the member (test and inspection hook).
func (n *Node) Suspect(node allocation.NodeID) bool { return n.suspects.isSuspect(node) }
