package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scdn/internal/cdnclient"
	"scdn/internal/ingest"
	"scdn/internal/storage"
)

// opaqueBytes generates seeded pseudorandom content — deliberately NOT
// the deterministic payload chain, so nothing in the system can
// regenerate it.
func opaqueBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// ingestCluster starts a disk-backed cluster with no seeded datasets:
// every dataset must enter through an upload.
func ingestCluster(t *testing.T, cfg ClusterConfig) *LocalCluster {
	t.Helper()
	cfg.StoreMode = StoreModeDir
	cfg.NoSeedDatasets = true
	return startCluster(t, cfg)
}

// rawPut issues one PUT /v1/datasets request with explicit headers.
func rawPut(t *testing.T, client *http.Client, base string, id string, tok string,
	body io.Reader, length int64, hdrs map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/datasets/"+url.PathEscape(id), body)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = length
	if tok != "" {
		req.Header.Set("Authorization", "Bearer "+tok)
	}
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func digestOf(data []byte) string {
	d := sha256.Sum256(data)
	m := ingest.Manifest{Digest: d}
	return m.DigestHex()
}

func TestUploadRoundTrip(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{Nodes: 3, Users: 2, Sweep: SweeperConfig{Disabled: true}})
	tok := login(t, lc)
	data := opaqueBytes(42, 256<<10+17)
	id := storage.DatasetID("up-001")

	man, err := cdnclient.Upload(context.Background(), cdnclient.TransferOptions{
		Endpoints: []string{lc.Nodes[0].BaseURL()}, Token: string(tok), Stripes: 4,
	}, id, lc.Config.Group, bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !man.Opaque || man.Size != int64(len(data)) {
		t.Fatalf("manifest = %+v", man)
	}
	if _, ok := lc.Manifests.Get(id); !ok {
		t.Fatal("manifest not recorded in shared store")
	}
	if got, err := lc.Catalog.DatasetBytes(id); err != nil || got != int64(len(data)) {
		t.Fatalf("catalog bytes = %d, %v", got, err)
	}
	if !lc.Nodes[0].Volume().Has(id) {
		t.Fatal("origin volume does not hold the uploaded bytes")
	}
	if tmp := lc.Nodes[0].Volume().TempFiles(); len(tmp) != 0 {
		t.Fatalf("leftover temp files after upload: %v", tmp)
	}
	if got := lc.Nodes[0].Metrics.IngestUploads.Value(); got != 1 {
		t.Fatalf("IngestUploads = %d, want 1", got)
	}

	// Striped, manifest-verified download through any edge reassembles
	// the exact bytes (non-holders proxy from the origin).
	dst := make([]byte, len(data))
	res, err := cdnclient.Download(context.Background(), cdnclient.TransferOptions{
		Endpoints: lc.URLs(), Token: string(tok), Stripes: 3,
	}, man, &writerAt{b: dst})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != int64(len(data)) || !bytes.Equal(dst, data) {
		t.Fatal("downloaded bytes diverge from uploaded bytes")
	}

	// Re-publishing the same ID is a conflict, even with identical bytes.
	if _, err := cdnclient.Upload(context.Background(), cdnclient.TransferOptions{
		Endpoints: []string{lc.Nodes[0].BaseURL()}, Token: string(tok), Stripes: 1,
	}, id, lc.Config.Group, bytes.NewReader(data), int64(len(data))); err == nil {
		t.Fatal("duplicate upload accepted")
	}
}

type writerAt struct {
	mu sync.Mutex
	b  []byte
}

func (w *writerAt) WriteAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	copy(w.b[off:], p)
	return len(p), nil
}

func TestUploadDigestMismatchLeavesNoState(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{Nodes: 1, Users: 1, Sweep: SweeperConfig{Disabled: true}})
	tok := login(t, lc)
	node := lc.Nodes[0]
	data := opaqueBytes(7, 64<<10)
	id := "up-bad"

	resp := rawPut(t, http.DefaultClient, node.BaseURL(), id, string(tok),
		bytes.NewReader(data), int64(len(data)), map[string]string{
			ingest.DigestHeader: digestOf([]byte("not those bytes")),
			ingest.GroupHeader:  lc.Config.Group,
		})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	if node.Metrics.IngestDigestRejects.Value() != 1 {
		t.Fatal("digest reject not counted")
	}
	// No partial state anywhere: no catalog entry, no manifest, no
	// volume file, no temp file, no lingering session.
	if _, err := lc.Catalog.DatasetBytes(storage.DatasetID(id)); err == nil {
		t.Fatal("rejected upload reached the catalog")
	}
	if _, ok := lc.Manifests.Get(storage.DatasetID(id)); ok {
		t.Fatal("rejected upload left a manifest")
	}
	if node.Volume().Has(storage.DatasetID(id)) {
		t.Fatal("rejected upload left a committed replica")
	}
	if tmp := node.Volume().TempFiles(); len(tmp) != 0 {
		t.Fatalf("rejected upload left temp files: %v", tmp)
	}
	node.upMu.Lock()
	sessions := len(node.uploads)
	node.upMu.Unlock()
	if sessions != 0 {
		t.Fatalf("%d upload sessions linger", sessions)
	}
}

// brokenReader fails after feeding part of the stream — a client that
// crashes mid-upload.
type brokenReader struct {
	data []byte
	off  int
}

func (r *brokenReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("client crashed mid-stream")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestUploadCrashMidStreamLeavesNoState(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{Nodes: 1, Users: 1, Sweep: SweeperConfig{Disabled: true}})
	tok := login(t, lc)
	node := lc.Nodes[0]
	data := opaqueBytes(9, 64<<10)
	id := storage.DatasetID("up-crash")

	req, err := http.NewRequest(http.MethodPut, node.BaseURL()+"/v1/datasets/"+string(id),
		&brokenReader{data: data[:1000]})
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = int64(len(data))
	req.Header.Set("Authorization", "Bearer "+string(tok))
	req.Header.Set(ingest.DigestHeader, digestOf(data))
	req.Header.Set(ingest.GroupHeader, lc.Config.Group)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		// The server may have answered 400 before the transport noticed
		// the body error; either way the upload failed.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 400 {
			t.Fatalf("crashed upload answered %d", resp.StatusCode)
		}
	}
	// The handler's failure path runs as the request unwinds; poll
	// briefly for the cleanup to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		node.upMu.Lock()
		sessions := len(node.uploads)
		node.upMu.Unlock()
		tmp := node.Volume().TempFiles()
		if sessions == 0 && len(tmp) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("crashed upload left sessions=%d temp=%v", sessions, tmp)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := lc.Catalog.DatasetBytes(id); err == nil {
		t.Fatal("crashed upload reached the catalog")
	}
	if node.Volume().Has(id) {
		t.Fatal("crashed upload left a committed replica")
	}
}

func TestUploadValidation(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{Nodes: 1, Users: 1, Sweep: SweeperConfig{Disabled: true}})
	tok := login(t, lc)
	base := lc.Nodes[0].BaseURL()
	data := opaqueBytes(11, 4096)
	good := map[string]string{
		ingest.DigestHeader: digestOf(data),
		ingest.GroupHeader:  lc.Config.Group,
	}
	cases := []struct {
		name string
		tok  string
		hdrs map[string]string
		want int
	}{
		{"bad token", "bogus", good, http.StatusUnauthorized},
		{"missing digest", string(tok), map[string]string{ingest.GroupHeader: lc.Config.Group}, http.StatusBadRequest},
		{"malformed digest", string(tok), map[string]string{
			ingest.DigestHeader: "zz", ingest.GroupHeader: lc.Config.Group}, http.StatusBadRequest},
		{"missing group", string(tok), map[string]string{ingest.DigestHeader: digestOf(data)}, http.StatusBadRequest},
		{"non-member group", string(tok), map[string]string{
			ingest.DigestHeader: digestOf(data), ingest.GroupHeader: "not-my-group"}, http.StatusForbidden},
	}
	for _, tc := range cases {
		resp := rawPut(t, http.DefaultClient, base, "up-v-"+tc.name, tc.tok,
			bytes.NewReader(data), int64(len(data)), tc.hdrs)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Generated-mode nodes have no volume: uploads are unsupported there.
	gen := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1, Sweep: SweeperConfig{Disabled: true}})
	gtok := login(t, gen)
	resp := rawPut(t, http.DefaultClient, gen.Nodes[0].BaseURL(), "up-gen", string(gtok),
		bytes.NewReader(data), int64(len(data)), good)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("generated-mode upload: status = %d, want 501", resp.StatusCode)
	}
	// Seeded datasets cannot be overwritten.
	seeded := startCluster(t, ClusterConfig{Nodes: 1, Users: 1, Datasets: 1,
		StoreMode: StoreModeDir, Sweep: SweeperConfig{Disabled: true}})
	stok := login(t, seeded)
	resp = rawPut(t, http.DefaultClient, seeded.Nodes[0].BaseURL(), "ds-001", string(stok),
		bytes.NewReader(data), int64(len(data)), good)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("seeded overwrite: status = %d, want 409", resp.StatusCode)
	}
}

func TestUploadSessionExpiry(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{Nodes: 1, Users: 1, Sweep: SweeperConfig{Disabled: true}})
	tok := login(t, lc)
	node := lc.Nodes[0]
	data := opaqueBytes(13, 128<<10)
	id := storage.DatasetID("up-idle")

	// First stripe of two arrives; the second never does.
	resp := rawPut(t, http.DefaultClient, node.BaseURL(), string(id), string(tok),
		bytes.NewReader(data[:64<<10]), 64<<10, map[string]string{
			ingest.DigestHeader: digestOf(data),
			ingest.GroupHeader:  lc.Config.Group,
			"Content-Range":     fmt.Sprintf("bytes 0-%d/%d", 64<<10-1, len(data)),
		})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("stripe status = %d, want 204", resp.StatusCode)
	}
	node.upMu.Lock()
	sess := node.uploads[id]
	node.upMu.Unlock()
	if sess == nil {
		t.Fatal("no session after first stripe")
	}
	sess.mu.Lock()
	sess.touched = time.Now().Add(-time.Hour)
	sess.mu.Unlock()
	node.expireUploads()
	node.upMu.Lock()
	_, still := node.uploads[id]
	node.upMu.Unlock()
	if still {
		t.Fatal("idle session survived expiry")
	}
	if tmp := node.Volume().TempFiles(); len(tmp) != 0 {
		t.Fatalf("expired session left temp files: %v", tmp)
	}
	if node.Metrics.IngestUploadExpired.Value() != 1 {
		t.Fatal("expiry not counted")
	}
}

// TestOpaqueRepairByCopy: the sweeper restores an opaque dataset's
// replication floor by copying verified bytes from surviving holders —
// never by regeneration — and the copies are byte-identical.
func TestOpaqueRepairByCopy(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{
		Nodes: 3, Users: 1,
		Sweep: SweeperConfig{Interval: 50 * time.Millisecond, ReplicationTarget: 2},
	})
	tok := login(t, lc)
	data := opaqueBytes(99, 192<<10+5)
	id := storage.DatasetID("up-repair")

	man, err := cdnclient.Upload(context.Background(), cdnclient.TransferOptions{
		Endpoints: []string{lc.Nodes[0].BaseURL()}, Token: string(tok), Stripes: 2,
	}, id, lc.Config.Group, bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}

	// The sweeper must bring the dataset to two live holders by byte
	// transfer (the origin plus one copy).
	waitFor(t, 10*time.Second, "second holder via byte copy", func() bool {
		reps, err := lc.Catalog.Replicas(id)
		return err == nil && len(reps) >= 2
	})
	var copies, regen uint64
	for _, n := range lc.Nodes {
		copies += n.Metrics.IngestRepairCopies.Value()
		regen += n.Metrics.IngestRepairRegenerated.Value()
	}
	if copies == 0 {
		t.Fatal("no repair was satisfied by byte copy")
	}
	if regen != 0 {
		t.Fatalf("%d opaque repairs regenerated bytes", regen)
	}

	// Every holder's on-disk copy is byte-identical to the upload.
	reps, err := lc.Catalog.Replicas(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		node := lc.Nodes[rep.Node-1]
		f, size, ok := node.Volume().Open(id)
		if !ok {
			t.Fatalf("holder %d has no volume file", rep.Node)
		}
		got, rerr := io.ReadAll(f)
		node.Volume().Release(id, f)
		if rerr != nil || size != int64(len(data)) || !bytes.Equal(got, data) {
			t.Fatalf("holder %d copy diverges (size %d, err %v)", rep.Node, size, rerr)
		}
	}

	// Kill the origin: the floor must be restored from the surviving
	// copy, still without regeneration.
	lc.Nodes[0].Crash()
	waitFor(t, 15*time.Second, "floor restored after origin crash", func() bool {
		reps, err := lc.Catalog.Replicas(id)
		if err != nil {
			return false
		}
		live := 0
		for _, rep := range reps {
			if lc.Registry.Online(rep.Node) && lc.Nodes[rep.Node-1].Running() {
				live++
			}
		}
		return live >= 2
	})
	regen = 0
	for _, n := range lc.Nodes {
		regen += n.Metrics.IngestRepairRegenerated.Value()
	}
	if regen != 0 {
		t.Fatalf("%d opaque repairs regenerated bytes after crash", regen)
	}
	// And the dataset still downloads byte-exact from the survivors.
	var eps []string
	for _, n := range lc.Nodes[1:] {
		eps = append(eps, n.BaseURL())
	}
	dst := make([]byte, len(data))
	if _, err := cdnclient.Download(context.Background(), cdnclient.TransferOptions{
		Endpoints: eps, Token: string(tok), Stripes: 2,
	}, man, &writerAt{b: dst}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("post-churn download diverges from uploaded bytes")
	}
}

// TestCorruptReplicaNeverAdopted: a holder serving corrupted bytes must
// not spread them — neither pull-through caching nor repair-by-copy
// adopts a replica whose stream disagrees with the manifest.
func TestCorruptReplicaNeverAdopted(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{
		Nodes: 2, Users: 1, PullThrough: true, Sweep: SweeperConfig{Disabled: true},
	})
	tok := login(t, lc)
	data := opaqueBytes(1234, 96<<10)
	id := storage.DatasetID("up-corrupt")

	man, err := cdnclient.Upload(context.Background(), cdnclient.TransferOptions{
		Endpoints: []string{lc.Nodes[0].BaseURL()}, Token: string(tok), Stripes: 1,
	}, id, lc.Config.Group, bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte of the origin's on-disk copy (bit rot).
	path := filepath.Join(lc.StoreRoot, "node-1", "data", url.PathEscape(string(id)))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A client fetch through node 2 proxies the corrupt stream; the
	// client's own verifier is its protection. Node 2, though, must
	// refuse to adopt what it spilled.
	req, err := http.NewRequest(http.MethodGet,
		lc.Nodes[1].BaseURL()+"/v1/fetch/"+string(id), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+string(tok))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Equal(got, data) {
		t.Fatal("corruption did not propagate through the proxy — test setup broken")
	}
	if lc.Nodes[1].Volume().Has(id) {
		t.Fatal("pull-through adopted a corrupt replica")
	}
	reps, err := lc.Catalog.Replicas(id)
	if err != nil || len(reps) != 1 {
		t.Fatalf("corrupt pull minted a replica record: %v, %v", reps, err)
	}
	if lc.Nodes[1].Metrics.IngestDigestRejects.Value() == 0 {
		t.Fatal("corrupt pull-through not counted as digest reject")
	}

	// Repair-by-copy from the corrupt holder must refuse too.
	if ok := lc.Nodes[1].replicateByCopy(context.Background(), id, man); ok {
		t.Fatal("repair-by-copy adopted corrupt bytes")
	}
	if lc.Nodes[1].Volume().Has(id) {
		t.Fatal("repair-by-copy left a committed replica of corrupt bytes")
	}
	if tmp := lc.Nodes[1].Volume().TempFiles(); len(tmp) != 0 {
		t.Fatalf("repair-by-copy left temp files: %v", tmp)
	}
}

// TestConcurrentUploadFetchChurn drives uploads, verified fetches, and
// node churn at once — the -race exercise for the ingest data plane.
func TestConcurrentUploadFetchChurn(t *testing.T) {
	lc := ingestCluster(t, ClusterConfig{
		Nodes: 3, Users: 2, PullThrough: true,
		Sweep: SweeperConfig{Interval: 50 * time.Millisecond, ReplicationTarget: 2},
	})
	tok := login(t, lc)
	data := opaqueBytes(5, 128<<10)
	id := storage.DatasetID("up-live")

	man, err := cdnclient.Upload(context.Background(), cdnclient.TransferOptions{
		Endpoints: []string{lc.Nodes[0].BaseURL()}, Token: string(tok), Stripes: 2,
	}, id, lc.Config.Group, bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// Fetchers: striped verified downloads of the live dataset,
	// tolerating churn-window errors (the verifier makes silent
	// corruption impossible; availability gaps are expected).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, len(data))
			for ctx.Err() == nil {
				_, err := cdnclient.Download(ctx, cdnclient.TransferOptions{
					Endpoints: lc.URLs(), Token: string(tok), Stripes: 3,
				}, man, &writerAt{b: dst})
				if err == nil && !bytes.Equal(dst, data) {
					t.Error("verified download returned wrong bytes")
					return
				}
			}
		}()
	}
	// Uploader: new opaque datasets keep arriving on other edges.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ctx.Err() == nil; i++ {
			d := opaqueBytes(int64(100+i), 32<<10)
			_, _ = cdnclient.Upload(ctx, cdnclient.TransferOptions{
				Endpoints: []string{lc.Nodes[1].BaseURL()}, Token: string(tok), Stripes: 2,
			}, storage.DatasetID(fmt.Sprintf("up-live-%03d", i)), lc.Config.Group,
				bytes.NewReader(d), int64(len(d)))
		}
	}()
	// Churn: the third edge dies and returns, twice.
	for cycle := 0; cycle < 2; cycle++ {
		time.Sleep(300 * time.Millisecond)
		lc.Nodes[2].Crash()
		time.Sleep(300 * time.Millisecond)
		if err := lc.Nodes[2].Start(); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	cancel()
	wg.Wait()

	// Post-churn reconciliation: the dataset still downloads byte-exact.
	dst := make([]byte, len(data))
	if _, err := cdnclient.Download(context.Background(), cdnclient.TransferOptions{
		Endpoints: lc.URLs(), Token: string(tok), Stripes: 3,
	}, man, &writerAt{b: dst}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("post-churn download diverges")
	}
	var regen uint64
	for _, n := range lc.Nodes {
		regen += n.Metrics.IngestRepairRegenerated.Value()
	}
	if regen != 0 {
		t.Fatalf("%d opaque repairs regenerated bytes", regen)
	}
}
