// Package transport holds the delivery plane's process-wide tuned HTTP
// transport. It sits below every networked package (server, stripe,
// cdnclient) so all of them can share one connection pool without
// importing each other: the serving plane's peer clients, striped
// fetches, repair byte copies, and load-generator workers all ride the
// same warm keep-alive sockets.
package transport

import (
	"net"
	"net/http"
	"time"
)

// shared is the one tuned transport. The stock http.DefaultTransport
// keeps only two idle connections per host, so a 32-worker load
// generator (or a node proxying a hot dataset) churns through TCP
// handshakes as fast as it closes sockets; here the per-host idle pool
// is sized for a striped fan-out and keep-alives stay on.
var shared = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:        512,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

// Shared returns the process-wide tuned transport. Callers must not
// mutate it.
func Shared() *http.Transport { return shared }

// NewClient returns an HTTP client over the shared transport.
// timeout <= 0 means no client-level timeout.
func NewClient(timeout time.Duration) *http.Client {
	return &http.Client{Transport: shared, Timeout: timeout}
}
