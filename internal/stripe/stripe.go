// Package stripe implements the client side of the paper's GridFTP-style
// high-performance transfer (Section V-A): a dataset is split into N byte
// ranges fetched concurrently — ideally from N different replica holders
// — and reassembled into one verified stream. Each stripe is an HTTP
// range request against the serving plane's GET /v1/fetch/{dataset}, so
// any edge can serve any stripe (locally or via its own peer fallback),
// and verification runs in-stream through a caller-supplied per-range
// verifier (deterministic payload, manifest block digests, ...), so
// memory stays flat no matter how large the dataset is.
package stripe

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"scdn/internal/storage"
	"scdn/internal/transport"
)

// defaultClient drives stripes over the delivery plane's shared tuned
// transport (raised per-host idle pool, keep-alives on) when the caller
// supplies no client of their own.
var defaultClient = transport.NewClient(30 * time.Second)

// Options parameterizes a striped fetch.
type Options struct {
	// Client issues the HTTP requests. Nil means a package-default client
	// over the delivery plane's shared tuned transport.
	Client *http.Client
	// Endpoints are candidate base URLs ("http://host:port"). Stripe i
	// targets Endpoints[i mod len] — pass replica holders first (e.g.
	// from ResolveResponse.Replicas) to realize holder-parallel transfer.
	Endpoints []string
	// Token is the bearer session token.
	Token string
	// Stripes is the parallel range count (values < 1 mean 1). Datasets
	// smaller than the stripe count use fewer, non-empty stripes.
	Stripes int
	// NewVerifier, when non-nil, supplies an in-stream verifier for each
	// planned range [off, off+length): the stripe's bytes pass through
	// the verifier's Write as they arrive, and Close must confirm
	// completeness — the fetch fails on the first corrupt, short, or
	// surplus byte. A factory error fails the stripe before any byte
	// moves.
	NewVerifier func(off, length int64) (io.WriteCloser, error)
	// Align, when > 1, makes every stripe boundary (except the dataset
	// end) a multiple of Align. Block-aligned ranges are what manifest
	// block-digest verifiers can check, so content-addressed transfers
	// set Align to the manifest block size.
	Align int64
	// Dst, when non-nil, receives the reassembled payload at the correct
	// offsets (stripes write concurrently, each to its own region).
	Dst io.WriterAt
}

// StripeStat describes one completed (or failed) stripe.
type StripeStat struct {
	Offset, Length int64
	Bytes          int64
	Endpoint       string
	Source         string // serving edge, from X-SCDN-Source
	Elapsed        time.Duration
	Err            error
}

// Result summarizes a striped fetch.
type Result struct {
	// Bytes is the total payload bytes received across stripes.
	Bytes int64
	// Stripes holds per-stripe accounting, ordered by offset.
	Stripes []StripeStat
	// Elapsed is the wall-clock time of the whole fan-out.
	Elapsed time.Duration
}

// Fetch retrieves the dataset's total bytes as opts.Stripes concurrent
// range requests and returns per-stripe accounting. It fails if any
// stripe errors, returns a wrong status, or moves the wrong byte count —
// a short stripe can never masquerade as success.
func Fetch(ctx context.Context, opts Options, id storage.DatasetID, total int64) (Result, error) {
	if opts.Client == nil {
		opts.Client = defaultClient
	}
	if len(opts.Endpoints) == 0 {
		return Result{}, fmt.Errorf("stripe: no endpoints")
	}
	if total <= 0 {
		return Result{}, fmt.Errorf("stripe: non-positive dataset size %d", total)
	}
	plan := planStripesAligned(total, opts.Stripes, opts.Align)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now()
	stats := make([]StripeStat, len(plan))
	for i, p := range plan {
		stats[i] = StripeStat{Offset: p.Offset, Length: p.Length}
	}
	var wg sync.WaitGroup
	for i := range stats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &stats[i]
			st.Endpoint = opts.Endpoints[i%len(opts.Endpoints)]
			t0 := time.Now()
			st.Bytes, st.Source, st.Err = fetchOne(ctx, opts, id, st.Endpoint, st.Offset, st.Length, total)
			st.Elapsed = time.Since(t0)
			if st.Err != nil {
				cancel() // abort sibling stripes; the fetch already failed
			}
		}(i)
	}
	wg.Wait()

	res := Result{Stripes: stats, Elapsed: time.Since(start)}
	var firstErr error
	for i := range stats {
		res.Bytes += stats[i].Bytes
		if stats[i].Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("stripe: range %d-%d of %q from %s: %w",
				stats[i].Offset, stats[i].Offset+stats[i].Length-1, id,
				stats[i].Endpoint, stats[i].Err)
		}
	}
	if firstErr != nil {
		return res, firstErr
	}
	if res.Bytes != total {
		return res, fmt.Errorf("stripe: reassembled %d of %d bytes of %q", res.Bytes, total, id)
	}
	return res, nil
}

// maxStripes caps the fan-out no matter what the caller asks for: past
// a point more ranges only add request overhead, and an attacker-sized
// stripe count must not size an allocation.
const maxStripes = 1024

// stripeRange is one planned byte range.
type stripeRange struct {
	Offset, Length int64
}

// planStripes splits [0, total) into at most n contiguous non-empty
// ranges. It returns nil for non-positive totals, clamps n to
// [1, maxStripes], never plans more ranges than bytes, and the ceiling
// division is written to be overflow-safe at total == math.MaxInt64.
func planStripes(total int64, n int) []stripeRange {
	if total <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	if int64(n) > total {
		n = int(total)
	}
	chunk := total / int64(n)
	if total%int64(n) != 0 {
		chunk++
	}
	return fillPlan(total, n, chunk)
}

// fillPlan lays chunk-sized ranges over [0, total). The final (short)
// range is detected by remainder, not by advancing off past total —
// off + chunk can overflow int64 when total is near MaxInt64, and a
// wrapped offset would loop forever.
func fillPlan(total int64, n int, chunk int64) []stripeRange {
	plan := make([]stripeRange, 0, n)
	off := int64(0)
	for {
		rem := total - off
		if rem <= chunk {
			plan = append(plan, stripeRange{Offset: off, Length: rem})
			return plan
		}
		plan = append(plan, stripeRange{Offset: off, Length: chunk})
		off += chunk
	}
}

// planStripesAligned is planStripes with every boundary (except the
// dataset end) rounded to a multiple of align: the plan covers whole
// align-sized blocks per stripe, at most n of them, so per-block digest
// verification lines up with stripe edges. align <= 1 degrades to the
// unaligned planner. The chunk arithmetic is overflow-safe at
// total == math.MaxInt64.
func planStripesAligned(total int64, n int, align int64) []stripeRange {
	if align <= 1 {
		return planStripes(total, n)
	}
	if total <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	blocks := total / align
	if total%align != 0 {
		blocks++
	}
	if int64(n) > blocks {
		n = int(blocks)
	}
	per := blocks / int64(n)
	if blocks%int64(n) != 0 {
		per++
	}
	chunk := total // fallback: one stripe, when per*align would overflow
	if per <= (int64(1)<<62)/align {
		chunk = per * align
	}
	return fillPlan(total, n, chunk)
}

// Range is one planned byte range of a striped transfer.
type Range struct {
	Offset, Length int64
}

// Plan splits [0, total) into at most n contiguous non-empty ranges,
// aligned to align when align > 1 (see planStripesAligned). It is the
// exported planner for callers that drive their own transfer loop —
// striped uploads use the same ranges a striped fetch would.
func Plan(total int64, n int, align int64) []Range {
	plan := planStripesAligned(total, n, align)
	out := make([]Range, len(plan))
	for i, p := range plan {
		out[i] = Range{Offset: p.Offset, Length: p.Length}
	}
	return out
}

// drainLimit bounds how many bytes of an unwanted response body are read
// before close; enough for any error payload the serving plane emits.
const drainLimit = 1 << 20

// fetchOne moves a single stripe, verifying and/or writing it as it
// streams.
func fetchOne(ctx context.Context, opts Options, id storage.DatasetID,
	base string, off, length, total int64) (int64, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/fetch/"+url.PathEscape(string(id)), nil)
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Authorization", "Bearer "+opts.Token)
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	resp, err := opts.Client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	src := resp.Header.Get("X-SCDN-Source")
	if resp.StatusCode != http.StatusPartialContent {
		// Drain the unwanted body to EOF (bounded) before close so the
		// transport can return the connection to its idle pool instead of
		// tearing it down — error bodies here are small (JSON or a 416).
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		return 0, src, fmt.Errorf("status %s, want 206", resp.Status)
	}
	wantCR := fmt.Sprintf("bytes %d-%d/%d", off, off+length-1, total)
	if cr := resp.Header.Get("Content-Range"); cr != wantCR {
		// Same reasoning as above: drain before bailing so the connection
		// survives for the retry this error will trigger.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		return 0, src, fmt.Errorf("Content-Range %q, want %q", cr, wantCR)
	}

	var w io.Writer = io.Discard
	var verifier io.WriteCloser
	if opts.NewVerifier != nil {
		verifier, err = opts.NewVerifier(off, length)
		if err != nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
			return 0, src, fmt.Errorf("verifier: %w", err)
		}
		w = verifier
	}
	if opts.Dst != nil {
		w = io.MultiWriter(w, io.NewOffsetWriter(opts.Dst, off))
	}
	n, err := io.Copy(w, resp.Body)
	if err != nil {
		return n, src, err
	}
	if verifier != nil {
		if err := verifier.Close(); err != nil {
			return n, src, err
		}
	} else if n != length {
		return n, src, fmt.Errorf("read %d bytes, want %d", n, length)
	}
	return n, src, nil
}
