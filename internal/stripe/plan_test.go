package stripe

import (
	"math"
	"testing"
)

// checkPlan asserts the planStripes contract: contiguous, non-empty,
// non-overlapping ranges covering [0, total) exactly, at most
// min(max(n,1), maxStripes) of them.
func checkPlan(t *testing.T, total int64, n int, plan []stripeRange) {
	t.Helper()
	if total <= 0 {
		if plan != nil {
			t.Fatalf("planStripes(%d, %d) = %v, want nil", total, n, plan)
		}
		return
	}
	if len(plan) == 0 {
		t.Fatalf("planStripes(%d, %d) planned nothing", total, n)
	}
	limit := n
	if limit < 1 {
		limit = 1
	}
	if limit > maxStripes {
		limit = maxStripes
	}
	if len(plan) > limit {
		t.Fatalf("planStripes(%d, %d) planned %d stripes, limit %d", total, n, len(plan), limit)
	}
	var next, sum int64
	for i, p := range plan {
		if p.Offset != next {
			t.Fatalf("planStripes(%d, %d): stripe %d starts at %d, want %d (gap or overlap)", total, n, i, p.Offset, next)
		}
		if p.Length < 1 {
			t.Fatalf("planStripes(%d, %d): stripe %d has length %d", total, n, i, p.Length)
		}
		if p.Offset > total-p.Length {
			t.Fatalf("planStripes(%d, %d): stripe %d = %+v runs past total", total, n, i, p)
		}
		next = p.Offset + p.Length
		sum += p.Length
	}
	if sum != total {
		t.Fatalf("planStripes(%d, %d): planned %d bytes, want %d", total, n, sum, total)
	}
}

func TestPlanStripes(t *testing.T) {
	cases := []struct {
		total int64
		n     int
	}{
		{0, 4}, {-5, 4}, {1, 1}, {1, 8}, {5, 10}, {100, 4},
		{64 << 10, 4}, {64<<10 + 1, 4}, {7, 3},
		{math.MaxInt64, 7}, {math.MaxInt64, 1}, {100, -2}, {100, 1 << 30},
	}
	for _, tc := range cases {
		checkPlan(t, tc.total, tc.n, planStripes(tc.total, tc.n))
	}
}

// FuzzPlanStripes drives the reassembly offset math with arbitrary
// sizes and stripe counts; the overflow-prone ceiling division and the
// clamp logic must always produce an exact, in-bounds cover.
func FuzzPlanStripes(f *testing.F) {
	f.Add(int64(1), 1)
	f.Add(int64(100), 4)
	f.Add(int64(64<<10), 4)
	f.Add(int64(math.MaxInt64), 7)
	f.Add(int64(math.MaxInt64), 1)
	f.Add(int64(5), 10)
	f.Add(int64(-1), 3)
	f.Fuzz(func(t *testing.T, total int64, n int) {
		checkPlan(t, total, n, planStripes(total, n))
	})
}
