package stripe

import (
	"math"
	"testing"
)

// checkPlan asserts the planStripes contract: contiguous, non-empty,
// non-overlapping ranges covering [0, total) exactly, at most
// min(max(n,1), maxStripes) of them.
func checkPlan(t *testing.T, total int64, n int, plan []stripeRange) {
	t.Helper()
	if total <= 0 {
		if plan != nil {
			t.Fatalf("planStripes(%d, %d) = %v, want nil", total, n, plan)
		}
		return
	}
	if len(plan) == 0 {
		t.Fatalf("planStripes(%d, %d) planned nothing", total, n)
	}
	limit := n
	if limit < 1 {
		limit = 1
	}
	if limit > maxStripes {
		limit = maxStripes
	}
	if len(plan) > limit {
		t.Fatalf("planStripes(%d, %d) planned %d stripes, limit %d", total, n, len(plan), limit)
	}
	var next, sum int64
	for i, p := range plan {
		if p.Offset != next {
			t.Fatalf("planStripes(%d, %d): stripe %d starts at %d, want %d (gap or overlap)", total, n, i, p.Offset, next)
		}
		if p.Length < 1 {
			t.Fatalf("planStripes(%d, %d): stripe %d has length %d", total, n, i, p.Length)
		}
		if p.Offset > total-p.Length {
			t.Fatalf("planStripes(%d, %d): stripe %d = %+v runs past total", total, n, i, p)
		}
		next = p.Offset + p.Length
		sum += p.Length
	}
	if sum != total {
		t.Fatalf("planStripes(%d, %d): planned %d bytes, want %d", total, n, sum, total)
	}
}

func TestPlanStripes(t *testing.T) {
	cases := []struct {
		total int64
		n     int
	}{
		{0, 4}, {-5, 4}, {1, 1}, {1, 8}, {5, 10}, {100, 4},
		{64 << 10, 4}, {64<<10 + 1, 4}, {7, 3},
		{math.MaxInt64, 7}, {math.MaxInt64, 1}, {100, -2}, {100, 1 << 30},
		// Near-max totals whose chunk does not divide evenly: the final
		// off += chunk used to overflow int64 and loop forever.
		{math.MaxInt64, 10}, {math.MaxInt64 - 1, 7}, {math.MaxInt64, 1024},
	}
	for _, tc := range cases {
		checkPlan(t, tc.total, tc.n, planStripes(tc.total, tc.n))
	}
}

// checkAlignedPlan asserts the planStripesAligned contract: everything
// checkPlan demands, plus every boundary except the dataset end falls on
// a multiple of align.
func checkAlignedPlan(t *testing.T, total int64, n int, align int64, plan []stripeRange) {
	t.Helper()
	checkPlan(t, total, n, plan)
	if align <= 1 {
		return
	}
	for i, p := range plan {
		if p.Offset%align != 0 {
			t.Fatalf("planStripesAligned(%d, %d, %d): stripe %d starts at %d, not %d-aligned",
				total, n, align, i, p.Offset, align)
		}
		if end := p.Offset + p.Length; end%align != 0 && end != total {
			t.Fatalf("planStripesAligned(%d, %d, %d): stripe %d ends at %d, neither %d-aligned nor total",
				total, n, align, i, end, align)
		}
	}
}

func TestPlanStripesAligned(t *testing.T) {
	cases := []struct {
		total int64
		n     int
		align int64
	}{
		{0, 4, 1024}, {1, 4, 1024}, {1023, 4, 1024}, {1024, 4, 1024},
		{1025, 4, 1024}, {64 << 10, 4, 1024}, {64<<10 + 1, 4, 1024},
		{256 << 10, 4, 64 << 10}, {256<<10 + 17, 3, 64 << 10},
		{100, 4, 0}, {100, 4, 1}, {5, 10, 2}, {7, 3, 4},
		{math.MaxInt64, 7, 64 << 10}, {math.MaxInt64, 1, 1 << 40},
		{1 << 40, 1024, 4096},
	}
	for _, tc := range cases {
		checkAlignedPlan(t, tc.total, tc.n, tc.align, planStripesAligned(tc.total, tc.n, tc.align))
	}
}

// FuzzPlanStripes drives the reassembly offset math with arbitrary
// sizes and stripe counts; the overflow-prone ceiling division and the
// clamp logic must always produce an exact, in-bounds cover.
func FuzzPlanStripes(f *testing.F) {
	f.Add(int64(1), 1)
	f.Add(int64(100), 4)
	f.Add(int64(64<<10), 4)
	f.Add(int64(math.MaxInt64), 7)
	f.Add(int64(math.MaxInt64), 1)
	f.Add(int64(math.MaxInt64), 10)
	f.Add(int64(5), 10)
	f.Add(int64(-1), 3)
	f.Fuzz(func(t *testing.T, total int64, n int) {
		checkPlan(t, total, n, planStripes(total, n))
	})
}
