package stripe_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"scdn/internal/server"
	"scdn/internal/storage"
	"scdn/internal/stripe"
)

// aligned buffer implementing io.WriterAt for reassembly checks.
type bufferAt struct {
	b []byte
}

func (w *bufferAt) WriteAt(p []byte, off int64) (int, error) {
	copy(w.b[off:], p)
	return len(p), nil
}

// payloadVerifier adapts the serving plane's deterministic payload
// verifier to the stripe package's injected-verifier contract.
func payloadVerifier(id storage.DatasetID) func(off, length int64) (io.WriteCloser, error) {
	return func(off, length int64) (io.WriteCloser, error) {
		return server.NewRangeVerifier(id, off, length), nil
	}
}

func startCluster(t *testing.T, cfg server.ClusterConfig) (*server.LocalCluster, string) {
	t.Helper()
	lc, err := server.StartLocalCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = lc.Shutdown(ctx)
	})
	tok, err := lc.Login(lc.UserIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	return lc, string(tok)
}

func TestStripedFetchVerifiesAndReassembles(t *testing.T) {
	lc, tok := startCluster(t, server.ClusterConfig{Nodes: 3, Users: 1, Datasets: 3})
	client := &http.Client{Timeout: 10 * time.Second}
	total := lc.Config.DatasetBytes
	dst := &bufferAt{b: make([]byte, total)}

	res, err := stripe.Fetch(context.Background(), stripe.Options{
		Client: client, Endpoints: lc.URLs(), Token: tok,
		Stripes: 4, NewVerifier: payloadVerifier("ds-001"), Dst: dst,
	}, "ds-001", total)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != total {
		t.Fatalf("bytes = %d, want %d", res.Bytes, total)
	}
	if len(res.Stripes) != 4 {
		t.Fatalf("stripes = %d, want 4", len(res.Stripes))
	}
	// Stripes must cover [0, total) contiguously, and each must have hit
	// its own endpoint in rotation.
	var off int64
	for i, st := range res.Stripes {
		if st.Offset != off {
			t.Fatalf("stripe %d offset = %d, want %d", i, st.Offset, off)
		}
		if st.Endpoint != lc.URLs()[i%len(lc.URLs())] {
			t.Fatalf("stripe %d endpoint = %s", i, st.Endpoint)
		}
		if st.Err != nil || st.Bytes != st.Length {
			t.Fatalf("stripe %d = %+v", i, st)
		}
		off += st.Length
	}
	if off != total {
		t.Fatalf("stripes cover %d of %d bytes", off, total)
	}
	// The reassembled buffer is byte-exact.
	var want bytes.Buffer
	if _, err := server.WritePayload(&want, "ds-001", total); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.b, want.Bytes()) {
		t.Fatal("reassembled payload diverges from reference")
	}
}

func TestStripedFetchClipsSmallDatasets(t *testing.T) {
	lc, tok := startCluster(t, server.ClusterConfig{
		Nodes: 1, Users: 1, Datasets: 1, DatasetBytes: 3,
	})
	client := &http.Client{Timeout: 10 * time.Second}
	res, err := stripe.Fetch(context.Background(), stripe.Options{
		Client: client, Endpoints: lc.URLs(), Token: tok,
		Stripes: 8, NewVerifier: payloadVerifier("ds-001"),
	}, "ds-001", 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 3 || len(res.Stripes) != 3 {
		t.Fatalf("result = %d bytes over %d stripes, want 3 over 3", res.Bytes, len(res.Stripes))
	}
}

func TestStripedFetchDetectsWrongSize(t *testing.T) {
	lc, tok := startCluster(t, server.ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 10 * time.Second}
	// Claim the dataset is larger than it is: the stripe past the real
	// end must fail with 416, and the fetch must fail loudly.
	if _, err := stripe.Fetch(context.Background(), stripe.Options{
		Client: client, Endpoints: lc.URLs(), Token: tok,
		Stripes: 4, NewVerifier: payloadVerifier("ds-001"),
	}, "ds-001", lc.Config.DatasetBytes*2); err == nil {
		t.Fatal("oversized fetch succeeded")
	}
}

func TestStripedFetchAuthRequired(t *testing.T) {
	lc, _ := startCluster(t, server.ClusterConfig{Nodes: 1, Users: 1, Datasets: 1})
	client := &http.Client{Timeout: 10 * time.Second}
	if _, err := stripe.Fetch(context.Background(), stripe.Options{
		Client: client, Endpoints: lc.URLs(), Token: "bogus",
		Stripes: 2, NewVerifier: payloadVerifier("ds-001"),
	}, "ds-001", lc.Config.DatasetBytes); err == nil {
		t.Fatal("unauthenticated striped fetch succeeded")
	}
}

func TestFetchValidation(t *testing.T) {
	client := &http.Client{}
	if _, err := stripe.Fetch(context.Background(), stripe.Options{Client: client}, "d", 1); err == nil {
		t.Fatal("no endpoints accepted")
	}
	if _, err := stripe.Fetch(context.Background(), stripe.Options{
		Client: client, Endpoints: []string{"x"},
	}, "d", 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestStripedFetchDiskStore(t *testing.T) {
	lc, tok := startCluster(t, server.ClusterConfig{
		Nodes: 3, Users: 1, Datasets: 3, StoreMode: server.StoreModeDir,
	})
	total := lc.Config.DatasetBytes
	dst := &bufferAt{b: make([]byte, total)}

	// Nil client: the package-default shared-transport client drives the
	// stripes; every stripe rides the disk-backed sendfile path.
	res, err := stripe.Fetch(context.Background(), stripe.Options{
		Endpoints: lc.URLs(), Token: tok,
		Stripes: 4, NewVerifier: payloadVerifier("ds-001"), Dst: dst,
	}, "ds-001", total)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != total {
		t.Fatalf("bytes = %d, want %d", res.Bytes, total)
	}
	var want bytes.Buffer
	if _, err := server.WritePayload(&want, "ds-001", total); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.b, want.Bytes()) {
		t.Fatal("reassembled payload diverges from reference")
	}
	// At least one edge served stripes from its replica volume.
	var diskHits uint64
	for _, n := range lc.Nodes {
		diskHits += n.Metrics.StoreDiskHits.Value()
	}
	if diskHits == 0 {
		t.Fatal("no stripe was served from a disk volume")
	}
}
