package storage

import (
	"container/list"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DiskVolume is the on-disk realization of the CDN-managed replica
// partition (Section V-A): dataset bytes live as real files under a root
// directory, one file per dataset, so the serving plane can hand the
// kernel an *os.File and ride sendfile instead of synthesizing payload
// bytes in userspace per request. Files become visible only through an
// atomic rename of a fully written temp file, so readers can never
// observe a partial replica — a crash mid-write leaves only garbage in
// the temp area, which the next NewDiskVolume sweeps away. The volume
// enforces a byte quota with LRU eviction and pools open read handles
// per dataset, so a warm serve costs no open(2) and no allocation.
//
// Layout under the root:
//
//	data/<escaped dataset ID>   committed replicas
//	tmp/<escaped ID>.<seq>      in-flight spills (never read)
//
// All methods are safe for concurrent use.
type DiskVolume struct {
	dir   string
	quota int64

	// fsMu serializes mutations of the data/ namespace: a commit's
	// rename-into-place against eviction/removal unlinks of the same
	// path. It is ordered before v.mu and is never taken on the serve
	// path (Open/Release touch only v.mu), so disk latency under fsMu
	// cannot stall readers.
	fsMu sync.Mutex

	// mu guards the index below and is held only for map/list work —
	// never across file I/O, which the serving plane's hot path sits
	// behind.
	mu        sync.Mutex
	ll        *list.List // front = most recently used
	items     map[DatasetID]*list.Element
	used      int64
	evictions uint64
	inflight  map[DatasetID]chan struct{} // singleflight materializations
	tmpSeq    uint64

	// segMu guards the interned segment-key table (segment.go). Its own
	// lock, not v.mu: key interning is read-mostly and must not contend
	// with the index on the serve path.
	segMu   sync.RWMutex
	segKeys map[DatasetID][]DatasetID
}

// maxPooledFDs caps the idle read handles kept per dataset. Four covers
// a striped client's typical fan-in without hoarding descriptors.
const maxPooledFDs = 4

type diskEntry struct {
	id     DatasetID
	size   int64
	fds    []*os.File // idle read handles, LIFO
	pinned bool       // never evicted (origin/user-partition copies)
}

// DiskVolumeStats is a point-in-time usage snapshot.
type DiskVolumeStats struct {
	Files      int
	UsedBytes  int64
	QuotaBytes int64
	Evictions  uint64
}

// NewDiskVolume opens (or creates) a replica volume rooted at dir with
// the given byte quota. Committed files already under data/ are adopted
// — a restart keeps its replicas — and anything under tmp/ is a spill
// that never committed, so it is deleted.
func NewDiskVolume(dir string, quota int64) (*DiskVolume, error) {
	if quota <= 0 {
		return nil, fmt.Errorf("storage: non-positive volume quota %d", quota)
	}
	v := &DiskVolume{
		dir:      dir,
		quota:    quota,
		ll:       list.New(),
		items:    make(map[DatasetID]*list.Element),
		inflight: make(map[DatasetID]chan struct{}),
		segKeys:  make(map[DatasetID][]DatasetID),
	}
	for _, d := range []string{v.dataDir(), v.tmpDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("storage: volume %s: %w", dir, err)
		}
	}
	if err := v.recover(); err != nil {
		return nil, err
	}
	return v, nil
}

func (v *DiskVolume) dataDir() string { return filepath.Join(v.dir, "data") }
func (v *DiskVolume) tmpDir() string  { return filepath.Join(v.dir, "tmp") }

// path returns a dataset's committed file path. IDs are path-escaped so
// any dataset name maps to exactly one flat file.
func (v *DiskVolume) path(id DatasetID) string {
	return filepath.Join(v.dataDir(), url.PathEscape(string(id)))
}

// recover sweeps orphaned spills and adopts committed replicas.
func (v *DiskVolume) recover() error {
	tmps, err := os.ReadDir(v.tmpDir())
	if err != nil {
		return err
	}
	for _, e := range tmps {
		_ = os.Remove(filepath.Join(v.tmpDir(), e.Name()))
	}
	files, err := os.ReadDir(v.dataDir())
	if err != nil {
		return err
	}
	for _, e := range files {
		name, uerr := url.PathUnescape(e.Name())
		info, ierr := e.Info()
		if uerr != nil || ierr != nil || !info.Mode().IsRegular() {
			continue
		}
		v.mu.Lock()
		cs := v.insertLocked(DatasetID(name), info.Size(), false)
		v.mu.Unlock()
		v.reap(cs) // adopted files may already exceed the quota
	}
	return nil
}

// Dir returns the volume's root directory.
func (v *DiskVolume) Dir() string { return v.dir }

// Quota returns the volume's byte quota.
func (v *DiskVolume) Quota() int64 { return v.quota }

// Stats returns a usage snapshot.
func (v *DiskVolume) Stats() DiskVolumeStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return DiskVolumeStats{
		Files:      len(v.items),
		UsedBytes:  v.used,
		QuotaBytes: v.quota,
		Evictions:  v.evictions,
	}
}

// Len returns the number of committed replicas.
func (v *DiskVolume) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.items)
}

// Has reports whether the volume holds a committed replica of id.
func (v *DiskVolume) Has(id DatasetID) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.items[id]
	return ok
}

// IDs returns the committed dataset IDs in LRU order (most recent
// first).
func (v *DiskVolume) IDs() []DatasetID {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]DatasetID, 0, len(v.items))
	for el := v.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*diskEntry).id)
	}
	return out
}

// Open returns a positioned read handle on the dataset's replica and its
// size, refreshing LRU recency. The handle is exclusively the caller's
// until Release — pooled handles are never shared, so callers may Seek
// freely (http.ServeContent does). A miss returns ok == false.
func (v *DiskVolume) Open(id DatasetID) (f *os.File, size int64, ok bool) {
	f, size, _, ok = v.open(id)
	return f, size, ok
}

// open is Open plus a freshness report: fresh is true when the handle
// came from open(2) rather than the FD pool, which is when per-
// descriptor advice (readahead hints) is worth applying.
func (v *DiskVolume) open(id DatasetID) (f *os.File, size int64, fresh, ok bool) {
	v.mu.Lock()
	el, present := v.items[id]
	if !present {
		v.mu.Unlock()
		return nil, 0, false, false
	}
	v.ll.MoveToFront(el)
	e := el.Value.(*diskEntry)
	size = e.size
	if n := len(e.fds); n > 0 {
		f = e.fds[n-1]
		e.fds = e.fds[:n-1]
		v.mu.Unlock()
		return f, size, false, true
	}
	v.mu.Unlock()
	f, err := os.Open(v.path(id))
	if err != nil {
		// Evicted (unlinked) between the lookup and the open, or the
		// file vanished under us: drop the stale entry. fsMu first, so
		// the reap below cannot unlink a replica a concurrent commit
		// just renamed into place.
		v.fsMu.Lock()
		var cs []cleanup
		v.mu.Lock()
		if cur, still := v.items[id]; still && cur == el {
			cs = append(cs, v.removeLocked(el))
		}
		v.mu.Unlock()
		v.reap(cs)
		v.fsMu.Unlock()
		return nil, 0, false, false
	}
	return f, size, true, true
}

// Release returns a handle obtained from Open. Handles rewind to offset
// zero and go back into the per-dataset pool; handles of evicted entries
// (or a full pool) are closed. f may be nil.
func (v *DiskVolume) Release(id DatasetID, f *os.File) {
	if f == nil {
		return
	}
	v.mu.Lock()
	if el, ok := v.items[id]; ok {
		e := el.Value.(*diskEntry)
		if len(e.fds) < maxPooledFDs {
			if _, err := f.Seek(0, io.SeekStart); err == nil {
				e.fds = append(e.fds, f)
				v.mu.Unlock()
				return
			}
		}
	}
	v.mu.Unlock()
	_ = f.Close()
}

// Remove deletes a committed replica (and closes its pooled handles).
// Removing an absent dataset is a no-op.
func (v *DiskVolume) Remove(id DatasetID) {
	v.fsMu.Lock()
	defer v.fsMu.Unlock()
	var cs []cleanup
	v.mu.Lock()
	if el, ok := v.items[id]; ok {
		cs = append(cs, v.removeLocked(el))
	}
	v.mu.Unlock()
	v.reap(cs)
}

// cleanup is file I/O deferred out of a v.mu critical section: a path
// to unlink and idle handles to close once the index lock is released.
type cleanup struct {
	path string
	fds  []*os.File
}

// reap performs deferred cleanups. Callers must have released v.mu;
// they hold fsMu whenever the unlinked path could race a commit's
// rename (everywhere except construction-time recovery, which is
// single-threaded).
func (v *DiskVolume) reap(cs []cleanup) {
	for _, c := range cs {
		for _, f := range c.fds {
			_ = f.Close()
		}
		_ = os.Remove(c.path)
	}
}

// insertLocked records a committed file and returns the deferred
// cleanups of any entries evicted to make room. Caller holds v.mu.
func (v *DiskVolume) insertLocked(id DatasetID, size int64, pin bool) []cleanup {
	el := v.ll.PushFront(&diskEntry{id: id, size: size, pinned: pin})
	v.items[id] = el
	v.used += size
	return v.evictOverQuotaLocked(el)
}

// evictOverQuotaLocked drops least-recently-used replicas from the
// index until the volume fits its quota, never evicting keep or pinned
// entries (origin copies of opaque datasets exist nowhere else — losing
// the last copy to cache pressure would lose the data). The file I/O is
// returned as cleanups for the caller to perform after v.mu is
// released.
func (v *DiskVolume) evictOverQuotaLocked(keep *list.Element) []cleanup {
	var cs []cleanup
	el := v.ll.Back()
	for v.used > v.quota && el != nil {
		prev := el.Prev()
		if el != keep && !el.Value.(*diskEntry).pinned {
			cs = append(cs, v.removeLocked(el))
			v.evictions++
		}
		el = prev
	}
	return cs
}

// Pin marks a committed replica as non-evictable: LRU pressure skips it
// (Remove still deletes it explicitly). Reports whether the dataset was
// present.
func (v *DiskVolume) Pin(id DatasetID) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	el, ok := v.items[id]
	if ok {
		el.Value.(*diskEntry).pinned = true
	}
	return ok
}

// removeLocked drops an entry from the index and returns the deferred
// unlink/close work. Handles currently out via Open stay valid — POSIX
// keeps the data reachable through open descriptors after the unlink.
func (v *DiskVolume) removeLocked(el *list.Element) cleanup {
	e := el.Value.(*diskEntry)
	v.ll.Remove(el)
	delete(v.items, e.id)
	v.used -= e.size
	fds := e.fds
	e.fds = nil
	return cleanup{path: v.path(e.id), fds: fds}
}

// Spill is an in-flight write of one dataset's bytes into the volume: a
// temp file that becomes a committed replica only through Commit's
// atomic rename. Sequential Write/Commit/Abort are single-goroutine;
// WriteAt may be called from many goroutines at once (striped
// transfers), provided Commit/CommitVerified/Abort happen only after
// every writer has returned. The volume itself stays concurrent around
// spills.
type Spill struct {
	v    *DiskVolume
	id   DatasetID
	f    *os.File
	path string
	n    int64
	err  error
	done bool

	// atMu guards the error state shared by concurrent WriteAt callers.
	atMu  sync.Mutex
	atErr error
}

// NewSpill opens a temp file for the dataset's bytes. The caller must
// finish with Commit or Abort.
func (v *DiskVolume) NewSpill(id DatasetID) (*Spill, error) {
	v.mu.Lock()
	v.tmpSeq++
	seq := v.tmpSeq
	v.mu.Unlock()
	path := filepath.Join(v.tmpDir(), fmt.Sprintf("%s.%d", url.PathEscape(string(id)), seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: spill %q: %w", id, err)
	}
	return &Spill{v: v, id: id, f: f, path: path}, nil
}

// Write appends to the temp file. After the first error the spill is
// poisoned: Commit will fail, further writes are rejected.
func (s *Spill) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n, err := s.f.Write(p)
	s.n += int64(n)
	if err != nil {
		s.err = err
	}
	return n, err
}

// WriteAt writes p at absolute offset off in the temp file (pwrite).
// Safe for concurrent use by the stripes of one parallel transfer; the
// positioned writes do not disturb sequential Write's file offset, and
// after the first failure the spill is poisoned the same as Write.
// Byte accounting is by extent, so CommitVerified — which checks the
// real file size — must be used to publish a striped spill.
func (s *Spill) WriteAt(p []byte, off int64) (int, error) {
	s.atMu.Lock()
	err := s.atErr
	s.atMu.Unlock()
	if err != nil {
		return 0, err
	}
	n, err := s.f.WriteAt(p, off)
	if err != nil {
		s.atMu.Lock()
		if s.atErr == nil {
			s.atErr = err
		}
		s.atMu.Unlock()
	}
	return n, err
}

// Bytes returns how many bytes have been spilled so far.
func (s *Spill) Bytes() int64 { return s.n }

// Abort discards the spill: the temp file is closed and deleted, and no
// replica appears. Abort after Commit is a no-op.
func (s *Spill) Abort() {
	if s.done {
		return
	}
	s.done = true
	_ = s.f.Close()
	_ = os.Remove(s.path)
}

// Commit publishes the spill as the dataset's replica iff exactly want
// bytes were written and no write failed. On success the temp file is
// atomically renamed into place, the entry is indexed, and LRU eviction
// trims the volume back under quota. On any failure the temp file is
// removed and no replica appears.
func (s *Spill) Commit(want int64) error {
	if s.done {
		return fmt.Errorf("storage: spill %q already finished", s.id)
	}
	if s.err == nil {
		s.atMu.Lock()
		s.err = s.atErr
		s.atMu.Unlock()
	}
	if s.err != nil {
		s.Abort()
		return fmt.Errorf("storage: spill %q failed: %w", s.id, s.err)
	}
	if s.n != want {
		s.Abort()
		return fmt.Errorf("storage: spill %q wrote %d of %d bytes", s.id, s.n, want)
	}
	if err := s.f.Close(); err != nil {
		s.done = true
		_ = os.Remove(s.path)
		return fmt.Errorf("storage: spill %q: %w", s.id, err)
	}
	s.done = true
	return s.v.commit(s.id, s.path, want, false)
}

// CommitVerified publishes the spill like Commit, but sizes the spill by
// the real file length (so positioned WriteAt stripes count correctly)
// and, when verify is non-nil, re-reads the finished temp file through
// it before the rename — the replica becomes visible only if its
// on-disk bytes pass. pin marks the committed entry non-evictable (the
// origin copy of an uploaded dataset). On any failure the temp file is
// removed and no replica appears.
func (s *Spill) CommitVerified(want int64, verify func(io.Reader) error, pin bool) error {
	if s.done {
		return fmt.Errorf("storage: spill %q already finished", s.id)
	}
	if s.err == nil {
		s.atMu.Lock()
		s.err = s.atErr
		s.atMu.Unlock()
	}
	if s.err != nil {
		s.Abort()
		return fmt.Errorf("storage: spill %q failed: %w", s.id, s.err)
	}
	if err := s.f.Close(); err != nil {
		s.done = true
		_ = os.Remove(s.path)
		return fmt.Errorf("storage: spill %q: %w", s.id, err)
	}
	s.done = true
	info, err := os.Stat(s.path)
	if err != nil {
		_ = os.Remove(s.path)
		return fmt.Errorf("storage: spill %q: %w", s.id, err)
	}
	if info.Size() != want {
		_ = os.Remove(s.path)
		return fmt.Errorf("storage: spill %q holds %d of %d bytes", s.id, info.Size(), want)
	}
	if verify != nil {
		f, err := os.Open(s.path)
		if err != nil {
			_ = os.Remove(s.path)
			return fmt.Errorf("storage: spill %q: %w", s.id, err)
		}
		verr := verify(f)
		_ = f.Close()
		if verr != nil {
			_ = os.Remove(s.path)
			return fmt.Errorf("storage: spill %q rejected: %w", s.id, verr)
		}
	}
	return s.v.commit(s.id, s.path, want, pin)
}

// commit renames a completed temp file into the data directory and
// indexes it. The rename and the index insert happen under fsMu (not
// v.mu), so eviction unlinks cannot interleave with the publish, while
// readers on v.mu never wait on the disk.
func (v *DiskVolume) commit(id DatasetID, tmpPath string, size int64, pin bool) error {
	if size > v.quota {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("storage: replica %q (%d bytes) exceeds volume quota %d", id, size, v.quota)
	}
	v.fsMu.Lock()
	defer v.fsMu.Unlock()
	v.mu.Lock()
	el, dup := v.items[id]
	if dup && pin {
		// The racer's copy carries identical (verified) bytes; keep it and
		// take over only the pinning obligation.
		el.Value.(*diskEntry).pinned = true
	}
	v.mu.Unlock()
	if dup {
		// A racing spill/materialization committed first. Bytes are
		// content-addressed per dataset, so the existing file is identical;
		// drop ours.
		v.discardTmp(tmpPath)
		return nil
	}
	//lint:ignore lockio fsMu's entire purpose is serializing this rename against eviction unlinks; it is never taken on the serve path (see the field comment)
	if err := os.Rename(tmpPath, v.path(id)); err != nil {
		v.discardTmp(tmpPath)
		return fmt.Errorf("storage: commit %q: %w", id, err)
	}
	v.mu.Lock()
	cs := v.insertLocked(id, size, pin)
	v.mu.Unlock()
	v.reap(cs)
	return nil
}

// discardTmp disposes of a temp file that lost its commit.
func (v *DiskVolume) discardTmp(tmpPath string) { _ = os.Remove(tmpPath) }

// Materialize ensures the dataset's replica exists on disk, producing it
// with fill (which must write exactly size bytes) when absent.
// Concurrent calls for the same dataset are single-flight: one caller
// runs fill, the rest wait for its outcome. It reports whether this call
// did the work — false means the replica already existed or another
// flight produced it.
func (v *DiskVolume) Materialize(id DatasetID, size int64, fill func(io.Writer) error) (bool, error) {
	for {
		v.mu.Lock()
		if _, ok := v.items[id]; ok {
			v.mu.Unlock()
			return false, nil
		}
		if ch, ok := v.inflight[id]; ok {
			v.mu.Unlock()
			<-ch
			// The flight may have failed; re-check and possibly lead.
			continue
		}
		ch := make(chan struct{})
		v.inflight[id] = ch
		v.mu.Unlock()

		err := v.materializeOnce(id, size, fill)

		v.mu.Lock()
		delete(v.inflight, id)
		v.mu.Unlock()
		close(ch)
		if err != nil {
			return false, err
		}
		return true, nil
	}
}

func (v *DiskVolume) materializeOnce(id DatasetID, size int64, fill func(io.Writer) error) error {
	sp, err := v.NewSpill(id)
	if err != nil {
		return err
	}
	if err := fill(sp); err != nil {
		sp.Abort()
		return fmt.Errorf("storage: materialize %q: %w", id, err)
	}
	return sp.Commit(size)
}

// TempFiles returns the basenames currently in the spill area (test and
// inspection hook; committed volumes should report none at rest).
func (v *DiskVolume) TempFiles() []string {
	entries, err := os.ReadDir(v.tmpDir())
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), ".") {
			out = append(out, e.Name())
		}
	}
	return out
}
