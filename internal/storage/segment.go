package storage

import (
	"io"
	"os"
	"strconv"
	"strings"
)

// Segmented large-object layout (ROADMAP item 4, the GiB half of raw
// speed). Datasets above a serving-plane threshold are not stored as
// one flat file: their bytes live as fixed-size segment files, each an
// independent DiskVolume entry with its own LRU recency. That turns
// quota pressure from all-or-nothing (a 10 GiB dataset either fits or
// is unservable) into partial residency — the hot prefix of a giant
// dataset stays on disk while its cold tail is evicted and
// re-materialized per segment on demand. Segment sizes are multiples of
// the ingest block size, so every segment boundary is a digest
// boundary: a segment can be verified against the manifest's rolled-up
// block digests without touching any other segment's bytes.
const (
	// DefaultSegmentSize is the serving plane's default segment size:
	// 64 ingest blocks (64 × 64 KiB). Large enough that sequential
	// serves ride sendfile in long runs, small enough that partial
	// residency and peer segment adoption are meaningful.
	DefaultSegmentSize = 4 << 20

	// DefaultSegmentThreshold is the default size at or above which a
	// dataset is stored and served segmented.
	DefaultSegmentThreshold = 16 << 20
)

// segKeySep separates a dataset ID from its segment ordinal inside a
// segment entry's key. The NUL byte cannot appear in IDs that arrive
// over HTTP paths, so segment keys can never collide with dataset keys.
const segKeySep = "\x00seg\x00"

// SegmentCount returns how many segSize-byte segments cover total
// bytes (the last segment may be short). Zero when either is
// non-positive.
func SegmentCount(total, segSize int64) int64 {
	if total <= 0 || segSize <= 0 {
		return 0
	}
	return (total + segSize - 1) / segSize
}

// SegmentExtent returns the byte length of segment i of a total-byte
// dataset cut into segSize-byte segments — segSize for all but
// possibly the last. Zero when i is out of range.
func SegmentExtent(total, segSize, i int64) int64 {
	n := SegmentCount(total, segSize)
	if i < 0 || i >= n {
		return 0
	}
	if i == n-1 {
		return total - i*segSize
	}
	return segSize
}

// SegmentKey derives the volume key under which segment i of a dataset
// is stored. Segment entries are ordinary DiskVolume entries — LRU,
// quota, FD pooling, and crash recovery all apply per segment.
func SegmentKey(id DatasetID, i int64) DatasetID {
	return DatasetID(string(id) + segKeySep + strconv.FormatInt(i, 10))
}

// ParseSegmentKey splits a volume key produced by SegmentKey back into
// the dataset and segment ordinal. ok is false for whole-dataset keys.
func ParseSegmentKey(key DatasetID) (id DatasetID, seg int64, ok bool) {
	s := string(key)
	at := strings.LastIndex(s, segKeySep)
	if at < 0 {
		return "", 0, false
	}
	n, err := strconv.ParseInt(s[at+len(segKeySep):], 10, 64)
	if err != nil || n < 0 {
		return "", 0, false
	}
	return DatasetID(s[:at]), n, true
}

// segmentKey returns the interned key for segment i of id. The warm
// serve path hits the read-locked map and allocates nothing; keys are
// built once per (dataset, segment) and reused for every open after.
func (v *DiskVolume) segmentKey(id DatasetID, i int64) DatasetID {
	v.segMu.RLock()
	if ks := v.segKeys[id]; int64(len(ks)) > i {
		k := ks[i]
		v.segMu.RUnlock()
		return k
	}
	v.segMu.RUnlock()
	v.segMu.Lock()
	ks := v.segKeys[id]
	for int64(len(ks)) <= i {
		ks = append(ks, SegmentKey(id, int64(len(ks))))
	}
	v.segKeys[id] = ks
	k := ks[i]
	v.segMu.Unlock()
	return k
}

// OpenSegment returns a positioned read handle on segment i of the
// dataset, exactly like Open but keyed per segment. fresh reports that
// the handle came from open(2) rather than the FD pool — the caller
// applies sequential readahead advice once per descriptor, not per
// serve.
func (v *DiskVolume) OpenSegment(id DatasetID, i int64) (f *os.File, size int64, fresh, ok bool) {
	return v.open(v.segmentKey(id, i))
}

// ReleaseSegment returns a handle obtained from OpenSegment to the
// segment's FD pool.
func (v *DiskVolume) ReleaseSegment(id DatasetID, i int64, f *os.File) {
	v.Release(v.segmentKey(id, i), f)
}

// HasSegment reports whether segment i of the dataset is resident.
func (v *DiskVolume) HasSegment(id DatasetID, i int64) bool {
	return v.Has(v.segmentKey(id, i))
}

// ResidentSegments counts how many of the dataset's first count
// segments are currently resident (partial-residency inspection).
func (v *DiskVolume) ResidentSegments(id DatasetID, count int64) int64 {
	var n int64
	v.mu.Lock()
	for i := int64(0); i < count; i++ {
		if _, ok := v.items[SegmentKey(id, i)]; ok {
			n++
		}
	}
	v.mu.Unlock()
	return n
}

// MaterializeSegment ensures segment i exists on disk, producing it
// with fill (which must write exactly size bytes) when absent.
// Single-flight per segment, so concurrent rangers over the same cold
// segment do the disk work once.
func (v *DiskVolume) MaterializeSegment(id DatasetID, i, size int64, fill func(io.Writer) error) (bool, error) {
	return v.Materialize(v.segmentKey(id, i), size, fill)
}

// NewSegmentSpill opens a spill that commits as segment i of the
// dataset — the adoption path for segments pulled from peers.
func (v *DiskVolume) NewSegmentSpill(id DatasetID, i int64) (*Spill, error) {
	return v.NewSpill(v.segmentKey(id, i))
}

// RemoveSegments deletes the dataset's segments [0, count) — the
// segment-granular analog of Remove for dataset teardown.
func (v *DiskVolume) RemoveSegments(id DatasetID, count int64) {
	for i := int64(0); i < count; i++ {
		v.Remove(SegmentKey(id, i))
	}
	v.segMu.Lock()
	delete(v.segKeys, id)
	v.segMu.Unlock()
}
