package storage

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fillBytes returns a fill func writing b.
func fillBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

// pattern builds deterministic content for a dataset.
func pattern(id DatasetID, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(id[len(id)-1]) + i)
	}
	return b
}

func newVolume(t *testing.T, quota int64) *DiskVolume {
	t.Helper()
	v, err := NewDiskVolume(filepath.Join(t.TempDir(), "vol"), quota)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func readAll(t *testing.T, v *DiskVolume, id DatasetID) []byte {
	t.Helper()
	f, size, ok := v.Open(id)
	if !ok {
		t.Fatalf("open %q: miss", id)
	}
	defer v.Release(id, f)
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(b)) != size {
		t.Fatalf("read %d bytes of %q, Open reported %d", len(b), id, size)
	}
	return b
}

func TestMaterializeAndOpen(t *testing.T) {
	v := newVolume(t, 1<<20)
	want := pattern("ds-a", 4096)
	did, err := v.Materialize("ds-a", 4096, fillBytes(want))
	if err != nil {
		t.Fatal(err)
	}
	if !did {
		t.Fatal("first materialize reported no work")
	}
	if !v.Has("ds-a") || v.Len() != 1 {
		t.Fatalf("volume state after materialize: has=%v len=%d", v.Has("ds-a"), v.Len())
	}
	if got := readAll(t, v, "ds-a"); !bytes.Equal(got, want) {
		t.Fatal("materialized bytes diverge")
	}
	// Second materialize is a no-op.
	if did, err = v.Materialize("ds-a", 4096, fillBytes(want)); err != nil || did {
		t.Fatalf("re-materialize = (%v, %v), want (false, nil)", did, err)
	}
	st := v.Stats()
	if st.Files != 1 || st.UsedBytes != 4096 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReleasePoolsHandles(t *testing.T) {
	v := newVolume(t, 1<<20)
	if _, err := v.Materialize("ds-a", 64, fillBytes(pattern("ds-a", 64))); err != nil {
		t.Fatal(err)
	}
	f1, _, ok := v.Open("ds-a")
	if !ok {
		t.Fatal("miss")
	}
	// Move the offset; Release must rewind before pooling.
	if _, err := io.CopyN(io.Discard, f1, 10); err != nil {
		t.Fatal(err)
	}
	v.Release("ds-a", f1)
	f2, _, ok := v.Open("ds-a")
	if !ok {
		t.Fatal("miss after release")
	}
	defer v.Release("ds-a", f2)
	if f2 != f1 {
		t.Fatal("released handle not pooled")
	}
	if off, err := f2.Seek(0, io.SeekCurrent); err != nil || off != 0 {
		t.Fatalf("pooled handle at offset %d (err %v), want 0", off, err)
	}
}

func TestSpillInvisibleUntilCommit(t *testing.T) {
	v := newVolume(t, 1<<20)
	sp, err := v.NewSpill("ds-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Write(pattern("ds-a", 100)[:60]); err != nil {
		t.Fatal(err)
	}
	// Partial spill: no replica visible, one temp file on disk.
	if v.Has("ds-a") {
		t.Fatal("partial spill visible as replica")
	}
	if _, _, ok := v.Open("ds-a"); ok {
		t.Fatal("partial spill openable")
	}
	if n := len(v.TempFiles()); n != 1 {
		t.Fatalf("temp files = %d, want 1", n)
	}
	// Committing with the wrong byte count fails and removes the temp.
	if err := sp.Commit(100); err == nil {
		t.Fatal("short spill committed")
	}
	if v.Has("ds-a") || len(v.TempFiles()) != 0 {
		t.Fatalf("short commit left state: has=%v temps=%d", v.Has("ds-a"), len(v.TempFiles()))
	}

	// A full spill commits atomically.
	sp, err = v.NewSpill("ds-a")
	if err != nil {
		t.Fatal(err)
	}
	want := pattern("ds-a", 100)
	if _, err := sp.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := sp.Commit(100); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, v, "ds-a"); !bytes.Equal(got, want) {
		t.Fatal("committed bytes diverge")
	}
	if len(v.TempFiles()) != 0 {
		t.Fatal("commit left temp files")
	}
}

func TestSpillAbort(t *testing.T) {
	v := newVolume(t, 1<<20)
	sp, err := v.NewSpill("ds-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	sp.Abort()
	if v.Has("ds-a") || len(v.TempFiles()) != 0 {
		t.Fatal("abort left state behind")
	}
	// Abort after abort is a no-op; commit after abort fails.
	sp.Abort()
	if err := sp.Commit(7); err == nil {
		t.Fatal("commit after abort succeeded")
	}
}

func TestQuotaEviction(t *testing.T) {
	v := newVolume(t, 10*1024)
	for i := 0; i < 3; i++ {
		id := DatasetID(fmt.Sprintf("ds-%d", i))
		if _, err := v.Materialize(id, 4096, fillBytes(pattern(id, 4096))); err != nil {
			t.Fatal(err)
		}
	}
	// 3 × 4 KiB > 10 KiB: the least recently used replica (ds-0) is gone.
	st := v.Stats()
	if st.UsedBytes > st.QuotaBytes {
		t.Fatalf("usage %d exceeds quota %d", st.UsedBytes, st.QuotaBytes)
	}
	if st.Evictions != 1 || v.Has("ds-0") || !v.Has("ds-1") || !v.Has("ds-2") {
		t.Fatalf("eviction state: %+v has0=%v has1=%v has2=%v",
			st, v.Has("ds-0"), v.Has("ds-1"), v.Has("ds-2"))
	}
	// The evicted file is really unlinked.
	if _, err := os.Stat(v.path("ds-0")); !os.IsNotExist(err) {
		t.Fatalf("evicted file still on disk: %v", err)
	}
	// Recency protects a replica: touch ds-1, insert another, ds-2 goes.
	f, _, ok := v.Open("ds-1")
	if !ok {
		t.Fatal("ds-1 missing")
	}
	v.Release("ds-1", f)
	if _, err := v.Materialize("ds-3", 4096, fillBytes(pattern("ds-3", 4096))); err != nil {
		t.Fatal(err)
	}
	if !v.Has("ds-1") || v.Has("ds-2") || !v.Has("ds-3") {
		t.Fatalf("LRU order violated: has1=%v has2=%v has3=%v",
			v.Has("ds-1"), v.Has("ds-2"), v.Has("ds-3"))
	}
}

func TestOversizedReplicaRejected(t *testing.T) {
	v := newVolume(t, 1024)
	if _, err := v.Materialize("big", 2048, fillBytes(make([]byte, 2048))); err == nil {
		t.Fatal("replica larger than the quota accepted")
	}
	if v.Has("big") || len(v.TempFiles()) != 0 {
		t.Fatal("oversized materialize left state")
	}
}

func TestRecoveryAdoptsFilesAndSweepsTemps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "vol")
	v, err := NewDiskVolume(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []DatasetID{"ds-a", "ds/b"} { // "/" exercises escaping
		if _, err := v.Materialize(id, 512, fillBytes(pattern(id, 512))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-spill: a stray temp file.
	stray := filepath.Join(dir, "tmp", "ds-c.99")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: replicas adopted, temp swept.
	v2, err := NewDiskVolume(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 2 || !v2.Has("ds-a") || !v2.Has("ds/b") {
		t.Fatalf("recovery adopted %d replicas (a=%v b=%v), want 2",
			v2.Len(), v2.Has("ds-a"), v2.Has("ds/b"))
	}
	if got := readAll(t, v2, "ds/b"); !bytes.Equal(got, pattern("ds/b", 512)) {
		t.Fatal("adopted bytes diverge")
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp survived recovery")
	}
	if st := v2.Stats(); st.UsedBytes != 1024 {
		t.Fatalf("recovered usage = %d, want 1024", st.UsedBytes)
	}
}

func TestMaterializeSingleFlight(t *testing.T) {
	v := newVolume(t, 1<<20)
	var fills, did int32
	var mu sync.Mutex
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			d, err := v.Materialize("hot", 4096, func(w io.Writer) error {
				mu.Lock()
				fills++
				mu.Unlock()
				_, err := w.Write(pattern("hot", 4096))
				return err
			})
			if err != nil {
				t.Error(err)
			}
			if d {
				mu.Lock()
				did++
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()
	if fills != 1 || did != 1 {
		t.Fatalf("fills = %d, leaders = %d, want 1 and 1", fills, did)
	}
}

// TestConcurrentMaterializeReadEvict hammers every mutating and reading
// path at once under a tight quota; run with -race. At the end the
// volume must satisfy its invariants: usage within quota, every indexed
// replica intact on disk, no temp litter.
func TestConcurrentMaterializeReadEvict(t *testing.T) {
	const (
		workers  = 8
		iters    = 60
		objSize  = 2048
		datasets = 12
	)
	v := newVolume(t, 6*objSize) // forces constant eviction churn
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				id := DatasetID(fmt.Sprintf("ds-%d", rng.Intn(datasets)))
				switch rng.Intn(4) {
				case 0: // materialize
					if _, err := v.Materialize(id, objSize, fillBytes(pattern(id, objSize))); err != nil {
						t.Error(err)
						return
					}
				case 1: // read and verify whatever is present
					if f, size, ok := v.Open(id); ok {
						b, err := io.ReadAll(f)
						v.Release(id, f)
						if err != nil {
							t.Error(err)
							return
						}
						if int64(len(b)) != size || !bytes.Equal(b, pattern(id, objSize)) {
							t.Errorf("read of %q returned wrong bytes (%d of %d)", id, len(b), size)
							return
						}
					}
				case 2: // spill the same content through the streaming path
					sp, err := v.NewSpill(id)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := sp.Write(pattern(id, objSize)); err != nil {
						sp.Abort()
						continue
					}
					if err := sp.Commit(objSize); err != nil {
						t.Error(err)
						return
					}
				case 3: // evict explicitly
					v.Remove(id)
				}
			}
		}(w)
	}
	wg.Wait()

	st := v.Stats()
	if st.UsedBytes > st.QuotaBytes {
		t.Fatalf("usage %d exceeds quota %d", st.UsedBytes, st.QuotaBytes)
	}
	for _, id := range v.IDs() {
		if got := readAll(t, v, id); !bytes.Equal(got, pattern(id, objSize)) {
			t.Fatalf("surviving replica %q corrupt", id)
		}
	}
	if temps := v.TempFiles(); len(temps) != 0 {
		t.Fatalf("temp litter after churn: %v", temps)
	}
}

func TestNewDiskVolumeValidation(t *testing.T) {
	if _, err := NewDiskVolume(filepath.Join(t.TempDir(), "v"), 0); err == nil {
		t.Fatal("zero quota accepted")
	}
}
