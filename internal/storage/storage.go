// Package storage implements the researcher-contributed storage
// repositories of the S-CDN (Section V-A): each repository is a shared
// folder partitioned into a CDN-managed replica volume (read-only to the
// owner) and the owner's general-purpose user volume, with quotas, LRU
// eviction in the user partition, and usage statistics that the CDN client
// reports to allocation servers.
package storage

import (
	"fmt"
	"sort"
	"time"
)

// DatasetID identifies a dataset (or dataset fragment) in the CDN.
type DatasetID string

// Object is a stored dataset copy.
type Object struct {
	Dataset  DatasetID
	Bytes    int64
	StoredAt time.Duration
	lastUsed time.Duration
}

// Stats summarizes a repository for allocation-server reporting.
type Stats struct {
	CapacityBytes    int64
	ReplicaUsedBytes int64
	UserUsedBytes    int64
	ReplicaObjects   int
	UserObjects      int
	Evictions        uint64
	ReadHits         uint64
	ReadMisses       uint64
}

// Free returns the unused capacity.
func (s Stats) Free() int64 { return s.CapacityBytes - s.ReplicaUsedBytes - s.UserUsedBytes }

// Repository is one contributed storage folder. Not safe for concurrent
// use (the simulation is single-threaded).
type Repository struct {
	Owner    int64 // owning user
	SiteID   int   // network-model site
	capacity int64
	// replicaReserve caps the CDN-managed partition (Section V-A: the
	// folder "is partitioned for transparent usage as a replica and also
	// as general storage for the user").
	replicaReserve int64

	replicas map[DatasetID]*Object
	user     map[DatasetID]*Object
	stats    Stats
}

// NewRepository creates a repository. replicaReserve bounds the CDN
// partition and must not exceed capacity.
func NewRepository(owner int64, siteID int, capacity, replicaReserve int64) (*Repository, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: non-positive capacity %d", capacity)
	}
	if replicaReserve < 0 || replicaReserve > capacity {
		return nil, fmt.Errorf("storage: replica reserve %d outside [0, %d]", replicaReserve, capacity)
	}
	return &Repository{
		Owner:          owner,
		SiteID:         siteID,
		capacity:       capacity,
		replicaReserve: replicaReserve,
		replicas:       make(map[DatasetID]*Object),
		user:           make(map[DatasetID]*Object),
		stats:          Stats{CapacityBytes: capacity},
	}, nil
}

// Capacity returns total capacity in bytes.
func (r *Repository) Capacity() int64 { return r.capacity }

// ReplicaReserve returns the CDN partition bound.
func (r *Repository) ReplicaReserve() int64 { return r.replicaReserve }

// Stats returns a snapshot of usage statistics.
func (r *Repository) Stats() Stats { return r.stats }

// StoreReplica places a CDN-managed object in the replica partition. It
// fails when the partition bound or total capacity would be exceeded —
// the CDN, not the owner, decides evictions there.
func (r *Repository) StoreReplica(id DatasetID, bytes int64, now time.Duration) error {
	if bytes <= 0 {
		return fmt.Errorf("storage: non-positive object size %d", bytes)
	}
	if _, dup := r.replicas[id]; dup {
		return fmt.Errorf("storage: replica %q already present", id)
	}
	if r.stats.ReplicaUsedBytes+bytes > r.replicaReserve {
		return fmt.Errorf("storage: replica partition full (%d + %d > %d)",
			r.stats.ReplicaUsedBytes, bytes, r.replicaReserve)
	}
	if r.stats.ReplicaUsedBytes+r.stats.UserUsedBytes+bytes > r.capacity {
		return fmt.Errorf("storage: repository full")
	}
	r.replicas[id] = &Object{Dataset: id, Bytes: bytes, StoredAt: now, lastUsed: now}
	r.stats.ReplicaUsedBytes += bytes
	r.stats.ReplicaObjects++
	return nil
}

// DropReplica removes a CDN-managed object (allocation-server initiated).
func (r *Repository) DropReplica(id DatasetID) error {
	obj, ok := r.replicas[id]
	if !ok {
		return fmt.Errorf("storage: replica %q not present", id)
	}
	delete(r.replicas, id)
	r.stats.ReplicaUsedBytes -= obj.Bytes
	r.stats.ReplicaObjects--
	return nil
}

// HasReplica reports whether the replica partition holds the dataset.
func (r *Repository) HasReplica(id DatasetID) bool {
	_, ok := r.replicas[id]
	return ok
}

// ReplicaIDs returns the replica partition's datasets sorted ascending.
func (r *Repository) ReplicaIDs() []DatasetID {
	out := make([]DatasetID, 0, len(r.replicas))
	for id := range r.replicas {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StoreUser places an object in the owner's partition, evicting
// least-recently-used user objects if needed to fit within the space not
// reserved for replicas. It fails if the object can never fit.
func (r *Repository) StoreUser(id DatasetID, bytes int64, now time.Duration) error {
	if bytes <= 0 {
		return fmt.Errorf("storage: non-positive object size %d", bytes)
	}
	userBudget := r.capacity - r.stats.ReplicaUsedBytes
	if bytes > userBudget {
		return fmt.Errorf("storage: object %q (%d bytes) exceeds user budget %d", id, bytes, userBudget)
	}
	if old, dup := r.user[id]; dup {
		// Re-store refreshes recency and size.
		r.stats.UserUsedBytes -= old.Bytes
		r.stats.UserObjects--
		delete(r.user, id)
	}
	for r.stats.UserUsedBytes+bytes > userBudget {
		victim := r.lruUserVictim()
		if victim == "" {
			return fmt.Errorf("storage: cannot free space for %q", id)
		}
		r.evictUser(victim)
	}
	r.user[id] = &Object{Dataset: id, Bytes: bytes, StoredAt: now, lastUsed: now}
	r.stats.UserUsedBytes += bytes
	r.stats.UserObjects++
	return nil
}

// lruUserVictim returns the least-recently-used user object (ties by ID).
func (r *Repository) lruUserVictim() DatasetID {
	var victim DatasetID
	var oldest time.Duration = -1
	for id, obj := range r.user {
		if oldest < 0 || obj.lastUsed < oldest || (obj.lastUsed == oldest && id < victim) {
			victim, oldest = id, obj.lastUsed
		}
	}
	return victim
}

func (r *Repository) evictUser(id DatasetID) {
	obj := r.user[id]
	delete(r.user, id)
	r.stats.UserUsedBytes -= obj.Bytes
	r.stats.UserObjects--
	r.stats.Evictions++
}

// Read looks a dataset up in either partition, refreshing recency, and
// reports whether it was found locally (a cache hit in CDN terms).
func (r *Repository) Read(id DatasetID, now time.Duration) (*Object, bool) {
	if obj, ok := r.replicas[id]; ok {
		obj.lastUsed = now
		r.stats.ReadHits++
		return obj, true
	}
	if obj, ok := r.user[id]; ok {
		obj.lastUsed = now
		r.stats.ReadHits++
		return obj, true
	}
	r.stats.ReadMisses++
	return nil, false
}

// HasLocal reports whether the dataset is in either partition without
// touching statistics or recency.
func (r *Repository) HasLocal(id DatasetID) bool {
	if _, ok := r.replicas[id]; ok {
		return true
	}
	_, ok := r.user[id]
	return ok
}

// UserIDs returns the user partition's datasets sorted ascending.
func (r *Repository) UserIDs() []DatasetID {
	out := make([]DatasetID, 0, len(r.user))
	for id := range r.user {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
