//go:build !(linux && (amd64 || arm64))

package storage

import "os"

// posix_fadvise is Linux-only; elsewhere the hints are no-ops and
// report not-applied so callers' counters stay honest.

// FadviseSequential hints sequential access on platforms that support
// it. No-op here.
func FadviseSequential(*os.File) bool { return false }

// FadviseDontNeed drops cached pages on platforms that support it.
// No-op here.
func FadviseDontNeed(*os.File, int64, int64) bool { return false }
