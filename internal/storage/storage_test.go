package storage

import (
	"testing"
	"testing/quick"
	"time"
)

func newRepo(t *testing.T, capacity, reserve int64) *Repository {
	t.Helper()
	r, err := NewRepository(1, 0, capacity, reserve)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRepositoryValidation(t *testing.T) {
	if _, err := NewRepository(1, 0, 0, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewRepository(1, 0, 100, 200); err == nil {
		t.Fatal("reserve > capacity accepted")
	}
	if _, err := NewRepository(1, 0, 100, -1); err == nil {
		t.Fatal("negative reserve accepted")
	}
}

func TestStoreReplicaBounds(t *testing.T) {
	r := newRepo(t, 100, 60)
	if err := r.StoreReplica("a", 40, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.StoreReplica("a", 10, 0); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	if err := r.StoreReplica("b", 30, 0); err == nil {
		t.Fatal("replica partition overflow accepted (40+30 > 60)")
	}
	if err := r.StoreReplica("b", 20, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.StoreReplica("c", 0, 0); err == nil {
		t.Fatal("zero-size object accepted")
	}
	st := r.Stats()
	if st.ReplicaUsedBytes != 60 || st.ReplicaObjects != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Free() != 40 {
		t.Fatalf("free = %d, want 40", st.Free())
	}
}

func TestDropReplica(t *testing.T) {
	r := newRepo(t, 100, 60)
	r.StoreReplica("a", 40, 0)
	if err := r.DropReplica("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.DropReplica("a"); err == nil {
		t.Fatal("double drop accepted")
	}
	if r.HasReplica("a") || r.Stats().ReplicaUsedBytes != 0 {
		t.Fatal("drop did not clear state")
	}
}

func TestReplicaIDsSorted(t *testing.T) {
	r := newRepo(t, 100, 100)
	r.StoreReplica("z", 10, 0)
	r.StoreReplica("a", 10, 0)
	r.StoreReplica("m", 10, 0)
	ids := r.ReplicaIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[2] != "z" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestStoreUserLRUEviction(t *testing.T) {
	r := newRepo(t, 100, 0)
	r.StoreUser("old", 40, 1*time.Second)
	r.StoreUser("mid", 40, 2*time.Second)
	// Touch "old" so "mid" becomes the LRU victim.
	if _, ok := r.Read("old", 3*time.Second); !ok {
		t.Fatal("read miss")
	}
	if err := r.StoreUser("new", 40, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if r.HasLocal("mid") {
		t.Fatal("LRU victim should be mid")
	}
	if !r.HasLocal("old") || !r.HasLocal("new") {
		t.Fatal("wrong objects evicted")
	}
	if r.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", r.Stats().Evictions)
	}
}

func TestStoreUserRespectsReplicaReserve(t *testing.T) {
	r := newRepo(t, 100, 60)
	r.StoreReplica("rep", 60, 0)
	// User budget = 100 - 60 = 40.
	if err := r.StoreUser("big", 50, 0); err == nil {
		t.Fatal("user object exceeding budget accepted")
	}
	if err := r.StoreUser("fits", 40, 0); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUserReStoreRefreshes(t *testing.T) {
	r := newRepo(t, 100, 0)
	r.StoreUser("a", 30, 0)
	if err := r.StoreUser("a", 50, time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.UserUsedBytes != 50 || st.UserObjects != 1 {
		t.Fatalf("re-store stats = %+v", st)
	}
}

func TestReadHitsAndMisses(t *testing.T) {
	r := newRepo(t, 100, 50)
	r.StoreReplica("rep", 30, 0)
	r.StoreUser("usr", 30, 0)
	if _, ok := r.Read("rep", 0); !ok {
		t.Fatal("replica read missed")
	}
	if _, ok := r.Read("usr", 0); !ok {
		t.Fatal("user read missed")
	}
	if _, ok := r.Read("ghost", 0); ok {
		t.Fatal("phantom read hit")
	}
	st := r.Stats()
	if st.ReadHits != 2 || st.ReadMisses != 1 {
		t.Fatalf("hits/misses = %d/%d", st.ReadHits, st.ReadMisses)
	}
}

func TestHasLocalDoesNotTouchStats(t *testing.T) {
	r := newRepo(t, 100, 50)
	r.StoreReplica("rep", 30, 0)
	r.HasLocal("rep")
	r.HasLocal("ghost")
	st := r.Stats()
	if st.ReadHits != 0 || st.ReadMisses != 0 {
		t.Fatal("HasLocal touched stats")
	}
}

func TestUserIDs(t *testing.T) {
	r := newRepo(t, 100, 0)
	r.StoreUser("b", 10, 0)
	r.StoreUser("a", 10, 0)
	ids := r.UserIDs()
	if len(ids) != 2 || ids[0] != "a" {
		t.Fatalf("ids = %v", ids)
	}
}

// Property: usage accounting matches the sum of stored objects and never
// exceeds capacity, across arbitrary operation sequences.
func TestPropertyAccountingInvariant(t *testing.T) {
	type op struct {
		Kind  uint8
		ID    uint8
		Bytes uint8
	}
	f := func(ops []op) bool {
		r, _ := NewRepository(1, 0, 500, 200)
		now := time.Duration(0)
		for _, o := range ops {
			now += time.Second
			bytes := int64(o.Bytes%60) + 1
			// Disjoint ID ranges per partition so the partition-sum check
			// below can attribute sizes unambiguously.
			repID := DatasetID(string(rune('a' + o.ID%4)))
			usrID := DatasetID(string(rune('e' + o.ID%4)))
			switch o.Kind % 4 {
			case 0:
				r.StoreReplica(repID, bytes, now) //nolint:errcheck // errors expected
			case 1:
				r.StoreUser(usrID, bytes, now) //nolint:errcheck
			case 2:
				r.DropReplica(repID) //nolint:errcheck
			case 3:
				r.Read(repID, now)
			}
			st := r.Stats()
			var repSum, usrSum int64
			for _, rid := range r.ReplicaIDs() {
				obj, _ := r.Read(rid, now)
				repSum += obj.Bytes
			}
			for _, uid := range r.UserIDs() {
				obj, _ := r.Read(uid, now)
				usrSum += obj.Bytes
			}
			if st.ReplicaUsedBytes != repSum || st.UserUsedBytes != usrSum {
				return false
			}
			if st.ReplicaUsedBytes > 200 || st.ReplicaUsedBytes+st.UserUsedBytes > 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
