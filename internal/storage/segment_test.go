package storage

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

func TestSegmentKeyRoundTrip(t *testing.T) {
	cases := []struct {
		id  DatasetID
		seg int64
	}{
		{"ds-001", 0},
		{"ds-001", 17},
		{"a\x00seg\x00weird", 3}, // an ID that embeds the separator still parses (LastIndex)
		{"seg", 9},
	}
	for _, tc := range cases {
		key := SegmentKey(tc.id, tc.seg)
		id, seg, ok := ParseSegmentKey(key)
		if !ok || id != tc.id || seg != tc.seg {
			t.Errorf("ParseSegmentKey(SegmentKey(%q, %d)) = (%q, %d, %v)", tc.id, tc.seg, id, seg, ok)
		}
	}
	for _, plain := range []DatasetID{"ds-001", "", "seg-5", "ds\x00segx"} {
		if _, _, ok := ParseSegmentKey(plain); ok {
			t.Errorf("ParseSegmentKey(%q) parsed a non-segment key", plain)
		}
	}
	// Two different (dataset, segment) pairs can never share a key: the
	// NUL separator cannot appear in HTTP-path dataset IDs.
	if SegmentKey("ds-1", 12) == SegmentKey("ds-112", 2) {
		t.Fatal("segment keys collided across datasets")
	}
}

func TestSegmentMath(t *testing.T) {
	cases := []struct {
		total, segSize, wantCount int64
	}{
		{0, 4, 0}, {-1, 4, 0}, {4, 0, 0},
		{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3},
	}
	for _, tc := range cases {
		if got := SegmentCount(tc.total, tc.segSize); got != tc.wantCount {
			t.Errorf("SegmentCount(%d, %d) = %d, want %d", tc.total, tc.segSize, got, tc.wantCount)
		}
	}
	// 9 bytes in 4-byte segments: 4, 4, 1.
	for i, want := range []int64{4, 4, 1} {
		if got := SegmentExtent(9, 4, int64(i)); got != want {
			t.Errorf("SegmentExtent(9, 4, %d) = %d, want %d", i, got, want)
		}
	}
	if got := SegmentExtent(9, 4, 3); got != 0 {
		t.Errorf("SegmentExtent out of range = %d, want 0", got)
	}
	if got := SegmentExtent(9, 4, -1); got != 0 {
		t.Errorf("SegmentExtent(-1) = %d, want 0", got)
	}
	// Extents always sum back to the total.
	var sum int64
	for i := int64(0); i < SegmentCount(100, 7); i++ {
		sum += SegmentExtent(100, 7, i)
	}
	if sum != 100 {
		t.Errorf("segment extents sum to %d, want 100", sum)
	}
}

// fillSeq writes n bytes of a recognizable per-segment pattern.
func fillSeq(seg int64, n int64) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte{byte('a' + seg%26)}, int(n)))
		return err
	}
}

func TestSegmentPartialResidency(t *testing.T) {
	const (
		segSize = int64(4 << 10)
		segs    = int64(8)
	)
	// Quota holds only half the dataset: materializing all segments in
	// order must evict the oldest, leaving the tail resident.
	vol, err := NewDiskVolume(t.TempDir(), 4*segSize)
	if err != nil {
		t.Fatal(err)
	}
	const id = DatasetID("big")
	for i := int64(0); i < segs; i++ {
		did, err := vol.MaterializeSegment(id, i, segSize, fillSeq(i, segSize))
		if err != nil {
			t.Fatalf("materialize segment %d: %v", i, err)
		}
		if !did {
			t.Fatalf("segment %d was already resident", i)
		}
	}
	if got := vol.ResidentSegments(id, segs); got != 4 {
		t.Fatalf("resident segments = %d, want 4 (quota holds half the dataset)", got)
	}
	if vol.HasSegment(id, 0) || vol.HasSegment(id, 3) {
		t.Fatal("cold head segments survived quota eviction")
	}
	for i := int64(4); i < segs; i++ {
		if !vol.HasSegment(id, i) {
			t.Fatalf("hot tail segment %d missing", i)
		}
	}
	// An evicted segment re-materializes on demand, evicting LRU again.
	if did, err := vol.MaterializeSegment(id, 0, segSize, fillSeq(0, segSize)); err != nil || !did {
		t.Fatalf("re-materialize segment 0: did=%v err=%v", did, err)
	}
	if !vol.HasSegment(id, 0) {
		t.Fatal("segment 0 not resident after re-materialization")
	}
	if got := vol.ResidentSegments(id, segs); got != 4 {
		t.Fatalf("resident segments after re-materialize = %d, want 4", got)
	}
	// Whole-dataset lookups never see segment entries.
	if vol.Has(id) {
		t.Fatal("whole-dataset Has(id) reported true for a segmented dataset")
	}
}

func TestOpenSegmentFreshAndPooled(t *testing.T) {
	vol, err := NewDiskVolume(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const id = DatasetID("ds")
	if _, err := vol.MaterializeSegment(id, 2, 64, fillSeq(2, 64)); err != nil {
		t.Fatal(err)
	}
	f, size, fresh, ok := vol.OpenSegment(id, 2)
	if !ok || size != 64 {
		t.Fatalf("OpenSegment = (size %d, ok %v), want (64, true)", size, ok)
	}
	if !fresh {
		t.Fatal("first open of a segment must be a fresh descriptor")
	}
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{'c'}, 64)) {
		t.Fatalf("segment bytes = %q err=%v", got, err)
	}
	vol.ReleaseSegment(id, 2, f)
	f, _, fresh, ok = vol.OpenSegment(id, 2)
	if !ok {
		t.Fatal("second OpenSegment failed")
	}
	if fresh {
		t.Fatal("pooled descriptor reported fresh: sequential advice would be re-applied every serve")
	}
	vol.ReleaseSegment(id, 2, f)
}

func TestSegmentSpillAdoption(t *testing.T) {
	vol, err := NewDiskVolume(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const id = DatasetID("pulled")
	sp, err := vol.NewSegmentSpill(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 512)
	if _, err := sp.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := sp.Commit(int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if !vol.HasSegment(id, 1) || vol.HasSegment(id, 0) {
		t.Fatal("spill committed the wrong segment entry")
	}
	// Abort leaves nothing behind.
	sp, err = vol.NewSegmentSpill(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Write(payload[:100]); err != nil {
		t.Fatal(err)
	}
	sp.Abort()
	if vol.HasSegment(id, 3) {
		t.Fatal("aborted segment spill became resident")
	}
	if tmp := vol.TempFiles(); len(tmp) != 0 {
		t.Fatalf("aborted spill leaked temp files: %v", tmp)
	}
}

func TestRemoveSegments(t *testing.T) {
	vol, err := NewDiskVolume(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const id = DatasetID("gone")
	for i := int64(0); i < 5; i++ {
		if _, err := vol.MaterializeSegment(id, i, 128, fillSeq(i, 128)); err != nil {
			t.Fatal(err)
		}
	}
	vol.RemoveSegments(id, 5)
	if got := vol.ResidentSegments(id, 5); got != 0 {
		t.Fatalf("resident after RemoveSegments = %d, want 0", got)
	}
	if vol.Len() != 0 {
		t.Fatalf("volume still holds %d entries", vol.Len())
	}
}

func TestFadviseOnRealFile(t *testing.T) {
	// The advice calls must never error a serve: they return a boolean
	// (for counters) and are otherwise fire-and-forget. On Linux both
	// should succeed against a real descriptor; elsewhere the stubs
	// return false. Either way this must not panic or corrupt the file.
	vol, err := NewDiskVolume(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const id = DatasetID("adv")
	if _, err := vol.MaterializeSegment(id, 0, 1024, fillSeq(0, 1024)); err != nil {
		t.Fatal(err)
	}
	f, _, _, ok := vol.OpenSegment(id, 0)
	if !ok {
		t.Fatal("open")
	}
	seq := FadviseSequential(f)
	drop := FadviseDontNeed(f, 0, 0)
	t.Logf("fadvise sequential=%v dontneed=%v", seq, drop)
	got, err := io.ReadAll(f)
	if err != nil || len(got) != 1024 {
		t.Fatalf("read after advice: %d bytes, err %v", len(got), err)
	}
	vol.ReleaseSegment(id, 0, f)
}

func BenchmarkOpenSegmentWarm(b *testing.B) {
	vol, err := NewDiskVolume(b.TempDir(), 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	const id = DatasetID("warm")
	for i := int64(0); i < 16; i++ {
		if _, err := vol.MaterializeSegment(id, i, 4096, fillSeq(i, 4096)); err != nil {
			b.Fatal(err)
		}
		// Prime the FD pool so the loop measures the pooled path.
		if f, _, _, ok := vol.OpenSegment(id, i); ok {
			vol.ReleaseSegment(id, i, f)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := int64(i % 16)
		f, _, _, ok := vol.OpenSegment(id, seg)
		if !ok {
			b.Fatal("open failed")
		}
		vol.ReleaseSegment(id, seg, f)
	}
}

func ExampleSegmentKey() {
	key := SegmentKey("ds-007", 3)
	id, seg, ok := ParseSegmentKey(key)
	fmt.Println(id, seg, ok)
	// Output: ds-007 3 true
}
