//go:build linux && (amd64 || arm64)

package storage

import (
	"os"
	"syscall"
)

// posix_fadvise advice values (uapi/linux/fadvise.h). The raw syscall
// keeps the module dependency-free; on 64-bit Linux SYS_FADVISE64
// takes (fd, offset, len, advice) directly.
const (
	fadvSequential = 2 // POSIX_FADV_SEQUENTIAL
	fadvDontNeed   = 4 // POSIX_FADV_DONTNEED
)

func fadvise(f *os.File, off, length int64, advice int) bool {
	if f == nil {
		return false
	}
	_, _, errno := syscall.Syscall6(syscall.SYS_FADVISE64,
		f.Fd(), uintptr(off), uintptr(length), uintptr(advice), 0, 0)
	return errno == 0
}

// FadviseSequential hints that f will be read sequentially, letting
// the kernel widen its readahead window for the descriptor. Reports
// whether the advice was applied.
func FadviseSequential(f *os.File) bool {
	return fadvise(f, 0, 0, fadvSequential)
}

// FadviseDontNeed drops the file's cached pages over [off, off+length)
// (length 0 meaning to end of file) — page-cache hygiene behind a
// completed sequential serve, so one giant transfer stops evicting the
// warm small-object working set. Reports whether the advice was
// applied.
func FadviseDontNeed(f *os.File, off, length int64) bool {
	return fadvise(f, off, length, fadvDontNeed)
}
