package graph

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: betweenness of node i (unnormalized, undirected pairs)
	// is (#pairs whose shortest path passes through i). For a path of n
	// nodes, node i has i*(n-1-i) such pairs.
	g := path(5)
	bc := g.Betweenness()
	want := map[NodeID]float64{0: 0, 1: 3, 2: 4, 3: 3, 4: 0}
	for u, w := range want {
		if math.Abs(bc[u]-w) > 1e-9 {
			t.Errorf("betweenness[%d] = %v, want %v", u, bc[u], w)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with hub 0 and 4 leaves: hub lies on all C(4,2)=6 leaf pairs.
	bc := star(4).Betweenness()
	if math.Abs(bc[0]-6) > 1e-9 {
		t.Fatalf("hub betweenness = %v, want 6", bc[0])
	}
	for i := 1; i <= 4; i++ {
		if bc[NodeID(i)] != 0 {
			t.Fatalf("leaf betweenness = %v, want 0", bc[NodeID(i)])
		}
	}
}

func TestBetweennessComplete(t *testing.T) {
	// In K_n no node is interior to any shortest path.
	for u, b := range complete(5).Betweenness() {
		if b != 0 {
			t.Fatalf("K5 betweenness[%d] = %v, want 0", u, b)
		}
	}
}

func TestClosenessPath(t *testing.T) {
	// Path 0-1-2: closeness(1) = 2/2 = 1 (center), closeness(0) = 2/3.
	cc := path(3).Closeness()
	if math.Abs(cc[1]-1) > 1e-9 {
		t.Fatalf("closeness[1] = %v, want 1", cc[1])
	}
	if math.Abs(cc[0]-2.0/3.0) > 1e-9 {
		t.Fatalf("closeness[0] = %v, want 2/3", cc[0])
	}
}

func TestClosenessIsolated(t *testing.T) {
	g := New()
	g.AddNode(7)
	g.AddEdge(1, 2)
	cc := g.Closeness()
	if cc[7] != 0 {
		t.Fatalf("isolated closeness = %v, want 0", cc[7])
	}
	if cc[1] == 0 {
		t.Fatal("connected node closeness should be > 0")
	}
}

func TestClosenessComponentCorrection(t *testing.T) {
	// Two K2 components in a 4-node graph: each node reaches 1 node at
	// distance 1 → base 1, corrected by (1/3): closeness = 1/3.
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	cc := g.Closeness()
	for u, c := range cc {
		if math.Abs(c-1.0/3.0) > 1e-9 {
			t.Fatalf("closeness[%d] = %v, want 1/3", u, c)
		}
	}
}

func TestRankByScoreDeterministicTies(t *testing.T) {
	scores := map[NodeID]float64{5: 1, 3: 1, 9: 2, 1: 1}
	r := RankByScore(scores)
	if r[0].Node != 9 {
		t.Fatalf("top = %d, want 9", r[0].Node)
	}
	if r[1].Node != 1 || r[2].Node != 3 || r[3].Node != 5 {
		t.Fatalf("tie order = %v, want ascending IDs", r)
	}
}

func TestDegreeScoresMatchDegree(t *testing.T) {
	g := randomGraph(15, 0.3, 7)
	for u, s := range g.DegreeScores() {
		if int(s) != g.Degree(u) {
			t.Fatalf("score %v != degree %d for %d", s, g.Degree(u), u)
		}
	}
}

func TestClusteringScoresMatch(t *testing.T) {
	g := randomGraph(15, 0.4, 11)
	for u, s := range g.ClusteringScores() {
		if math.Abs(s-g.ClusteringCoefficient(u)) > 1e-12 {
			t.Fatalf("clustering score mismatch for %d", u)
		}
	}
}

// Property: betweenness is non-negative and leaves (degree 1) score 0.
func TestPropertyBetweennessNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(18, 0.15, seed)
		for u, b := range g.Betweenness() {
			if b < 0 {
				return false
			}
			if g.Degree(u) == 1 && b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: total betweenness equals the number of ordered interior
// visits; for a tree it equals sum over pairs of (path length - 1).
func TestPropertyBetweennessPathSum(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 3
		g := path(n)
		total := 0.0
		for _, b := range g.Betweenness() {
			total += b
		}
		want := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want += float64(j - i - 1)
			}
		}
		return math.Abs(total-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	var sb strings.Builder
	err := g.WriteDOT(&sb, DOTOptions{
		Name:         "fig2",
		Highlight:    2,
		HasHighlight: true,
		NodeLabels:   map[NodeID]string{1: "seed"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"graph fig2 {",
		`n1 [label="seed"]`,
		"n2 [color=red, style=filled];",
		"n1 -- n2 [color=red];",
		"n2 -- n3 [color=red];",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "graph G {") {
		t.Fatalf("default name not applied:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "color=red") {
		t.Fatal("no highlight requested but red attrs emitted")
	}
}
