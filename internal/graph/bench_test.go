package graph

import (
	"math/rand"
	"testing"
)

// benchGraph builds a case-study-sized random graph (~2000 nodes, ~20000
// edges) once per benchmark.
func benchGraph(b *testing.B) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := New()
	n := 2000
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	for e := 0; e < 20000; e++ {
		g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return g
}

func BenchmarkBFSFrom(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFSFrom(NodeID(i % 2000))
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ConnectedComponents()
	}
}

func BenchmarkClusteringScores(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ClusteringScores()
	}
}

func BenchmarkBetweenness(b *testing.B) {
	// Betweenness is O(VE); use a smaller instance.
	rng := rand.New(rand.NewSource(2))
	g := New()
	for i := 0; i < 300; i++ {
		g.AddNode(NodeID(i))
	}
	for e := 0; e < 3000; e++ {
		g.AddEdge(NodeID(rng.Intn(300)), NodeID(rng.Intn(300)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Betweenness()
	}
}

func BenchmarkKHopEgo(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.KHopEgo(NodeID(i%2000), 3)
	}
}

func BenchmarkAddEdge(b *testing.B) {
	g := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdge(NodeID(i%5000), NodeID((i*7)%5000))
	}
}
