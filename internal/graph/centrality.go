package graph

import "sort"

// Betweenness computes betweenness centrality for every node using
// Brandes' algorithm (unweighted). Scores are unnormalized shortest-path
// pair counts; relative order is what the placement algorithms consume.
func (g *Graph) Betweenness() map[NodeID]float64 {
	cb := make(map[NodeID]float64, len(g.adj))
	nodes := g.Nodes()
	for _, u := range nodes {
		cb[u] = 0
	}
	// Reusable per-source state.
	sigma := make(map[NodeID]float64, len(nodes))
	dist := make(map[NodeID]int, len(nodes))
	delta := make(map[NodeID]float64, len(nodes))
	preds := make(map[NodeID][]NodeID, len(nodes))

	for _, s := range nodes {
		// Single-source shortest paths (BFS).
		var stack []NodeID
		for _, u := range nodes {
			sigma[u] = 0
			dist[u] = -1
			delta[u] = 0
			preds[u] = preds[u][:0]
		}
		sigma[s] = 1
		dist[s] = 0
		queue := []NodeID{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Accumulation in reverse BFS order.
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				cb[w] += delta[w]
			}
		}
	}
	// Each undirected pair was counted twice.
	for u := range cb {
		cb[u] /= 2
	}
	return cb
}

// Closeness computes closeness centrality for every node: for node u with
// reachable set R(u), closeness = (|R(u)|-1) / sum of distances to R(u),
// scaled by (|R(u)|-1)/(N-1) (the Wasserman–Faust correction) so values
// remain comparable across components. Isolated nodes score 0.
func (g *Graph) Closeness() map[NodeID]float64 {
	n := len(g.adj)
	cc := make(map[NodeID]float64, n)
	for u := range g.adj {
		dist := g.BFSFrom(u)
		sum := 0
		for _, d := range dist {
			sum += d
		}
		reach := len(dist) - 1 // excluding u itself
		if reach <= 0 || sum == 0 {
			cc[u] = 0
			continue
		}
		base := float64(reach) / float64(sum)
		if n > 1 {
			base *= float64(reach) / float64(n-1)
		}
		cc[u] = base
	}
	return cc
}

// RankedScore is a node paired with a metric value, used when returning
// ordered centrality results.
type RankedScore struct {
	Node  NodeID
	Score float64
}

// RankByScore converts a node→score map into a slice sorted by descending
// score, breaking ties by ascending node ID for determinism.
func RankByScore(scores map[NodeID]float64) []RankedScore {
	out := make([]RankedScore, 0, len(scores))
	for u, s := range scores {
		out = append(out, RankedScore{u, s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// DegreeScores returns a node→degree map as float64 scores.
func (g *Graph) DegreeScores() map[NodeID]float64 {
	s := make(map[NodeID]float64, len(g.adj))
	for u, nbrs := range g.adj {
		s[u] = float64(len(nbrs))
	}
	return s
}

// ClusteringScores returns a node→local-clustering-coefficient map.
func (g *Graph) ClusteringScores() map[NodeID]float64 {
	s := make(map[NodeID]float64, len(g.adj))
	for u := range g.adj {
		s[u] = g.ClusteringCoefficient(u)
	}
	return s
}
