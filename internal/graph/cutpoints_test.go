package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArticulationPointsPath(t *testing.T) {
	// Path 0-1-2-3-4: every interior node is a cut vertex.
	aps := path(5).ArticulationPoints()
	if len(aps) != 3 || aps[0] != 1 || aps[1] != 2 || aps[2] != 3 {
		t.Fatalf("articulation points = %v, want [1 2 3]", aps)
	}
}

func TestArticulationPointsCycleHasNone(t *testing.T) {
	g := path(5)
	g.AddEdge(0, 4) // close the cycle
	if aps := g.ArticulationPoints(); len(aps) != 0 {
		t.Fatalf("cycle has cut vertices: %v", aps)
	}
}

func TestArticulationPointsStarHub(t *testing.T) {
	aps := star(5).ArticulationPoints()
	if len(aps) != 1 || aps[0] != 0 {
		t.Fatalf("star cut vertices = %v, want [0]", aps)
	}
}

func TestArticulationPointsBridgedCliques(t *testing.T) {
	// Two triangles joined through node 10: 10 is the only cut vertex...
	// connect via edges (2,10) and (10,20).
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(20, 21)
	g.AddEdge(21, 22)
	g.AddEdge(20, 22)
	g.AddEdge(2, 10)
	g.AddEdge(10, 20)
	aps := g.ArticulationPoints()
	want := map[NodeID]bool{2: true, 10: true, 20: true}
	if len(aps) != 3 {
		t.Fatalf("cut vertices = %v, want {2,10,20}", aps)
	}
	for _, u := range aps {
		if !want[u] {
			t.Fatalf("unexpected cut vertex %d", u)
		}
	}
}

func TestArticulationPointsMultiComponent(t *testing.T) {
	g := path(3) // 1 is a cut vertex
	g.AddEdge(10, 11)
	g.AddEdge(11, 12)
	g.AddEdge(10, 12) // triangle: none
	aps := g.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 1 {
		t.Fatalf("multi-component cut vertices = %v, want [1]", aps)
	}
}

func TestBridgesPath(t *testing.T) {
	bs := path(4).Bridges()
	if len(bs) != 3 {
		t.Fatalf("bridges = %v, want every path edge", bs)
	}
}

func TestBridgesCycleHasNone(t *testing.T) {
	g := path(5)
	g.AddEdge(0, 4)
	if bs := g.Bridges(); len(bs) != 0 {
		t.Fatalf("cycle has bridges: %v", bs)
	}
}

func TestBridgesBridgedCliques(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 10) // bridge
	g.AddEdge(10, 11)
	g.AddEdge(11, 12)
	g.AddEdge(10, 12)
	bs := g.Bridges()
	if len(bs) != 1 || bs[0] != (Edge{2, 10}) {
		t.Fatalf("bridges = %v, want [(2,10)]", bs)
	}
}

// brute-force reference: u is a cut vertex iff removing it increases the
// component count among the remaining nodes of its component.
func bruteArticulation(g *Graph) map[NodeID]bool {
	out := make(map[NodeID]bool)
	base := len(g.ConnectedComponents())
	for _, u := range g.Nodes() {
		c := g.Clone()
		c.RemoveNode(u)
		// Removing an isolated node reduces node count but not
		// connectivity; compare component counts ignoring the removed
		// node itself.
		if len(c.ConnectedComponents()) > base-1+boolToInt(g.Degree(u) > 0) {
			out[u] = true
		}
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestPropertyArticulationMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 14
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.18 {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		want := bruteArticulation(g)
		got := g.ArticulationPoints()
		if len(got) != len(want) {
			t.Logf("seed %d: got %v want %v", seed, got, want)
			return false
		}
		for _, u := range got {
			if !want[u] {
				t.Logf("seed %d: spurious cut vertex %d", seed, u)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing a bridge increases the component count; removing a
// non-bridge edge never does.
func TestPropertyBridgesMatchDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 12
		for i := 0; i < n; i++ {
			g.AddNode(NodeID(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		bridgeSet := make(map[Edge]bool)
		for _, b := range g.Bridges() {
			bridgeSet[b] = true
		}
		base := len(g.ConnectedComponents())
		for _, e := range g.Edges() {
			c := g.Clone()
			c.RemoveEdge(e.U, e.V)
			increases := len(c.ConnectedComponents()) > base
			if increases != bridgeSet[e] {
				t.Logf("seed %d: edge %v bridge=%v increases=%v", seed, e, bridgeSet[e], increases)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
