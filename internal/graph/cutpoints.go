package graph

import "sort"

// ArticulationPoints returns the nodes whose removal would disconnect
// their component (Tarjan's low-link algorithm, iterative). In an S-CDN
// these are the researchers whose departure would partition the
// collaboration overlay — prime candidates for extra redundancy.
func (g *Graph) ArticulationPoints() []NodeID {
	disc := make(map[NodeID]int, len(g.adj))
	low := make(map[NodeID]int, len(g.adj))
	parent := make(map[NodeID]NodeID, len(g.adj))
	isCut := make(map[NodeID]bool)
	timer := 0

	type frame struct {
		node NodeID
		nbrs []NodeID
		next int
	}

	for _, start := range g.Nodes() {
		if _, seen := disc[start]; seen {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{node: start, nbrs: g.Neighbors(start)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.nbrs) {
				v := f.nbrs[f.next]
				f.next++
				if _, seen := disc[v]; !seen {
					parent[v] = f.node
					timer++
					disc[v] = timer
					low[v] = timer
					stack = append(stack, frame{node: v, nbrs: g.Neighbors(v)})
				} else if p, hasP := parent[f.node]; !hasP || v != p {
					if disc[v] < low[f.node] {
						low[f.node] = disc[v]
					}
				}
				continue
			}
			// Post-order: propagate low-link to the parent and apply the
			// cut-vertex rule for non-root parents.
			popped := *f
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				pf := &stack[len(stack)-1]
				if low[popped.node] < low[pf.node] {
					low[pf.node] = low[popped.node]
				}
				if pf.node != start && low[popped.node] >= disc[pf.node] {
					isCut[pf.node] = true
				}
			}
		}
		// Root rule: a DFS root is a cut vertex iff it has >= 2 children.
		rootChildren := 0
		for v, p := range parent {
			if p == start {
				_ = v
				rootChildren++
			}
		}
		if rootChildren >= 2 {
			isCut[start] = true
		}
	}
	out := make([]NodeID, 0, len(isCut))
	for u, cut := range isCut {
		if cut {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bridges returns the edges whose removal would disconnect their
// component, normalized (U < V) and sorted.
func (g *Graph) Bridges() []Edge {
	disc := make(map[NodeID]int, len(g.adj))
	low := make(map[NodeID]int, len(g.adj))
	var bridges []Edge
	timer := 0

	type frame struct {
		node   NodeID
		parent NodeID
		hasPar bool
		nbrs   []NodeID
		next   int
		// skippedParent handles parallel-free simple graphs: the single
		// tree edge back to the parent is skipped exactly once.
		skippedParent bool
	}

	for _, start := range g.Nodes() {
		if _, seen := disc[start]; seen {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack := []frame{{node: start, nbrs: g.Neighbors(start)}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.nbrs) {
				v := f.nbrs[f.next]
				f.next++
				if f.hasPar && v == f.parent && !f.skippedParent {
					f.skippedParent = true
					continue
				}
				if _, seen := disc[v]; !seen {
					timer++
					disc[v] = timer
					low[v] = timer
					stack = append(stack, frame{node: v, parent: f.node, hasPar: true, nbrs: g.Neighbors(v)})
				} else if disc[v] < low[f.node] {
					low[f.node] = disc[v]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				pf := &stack[len(stack)-1]
				if low[f.node] < low[pf.node] {
					low[pf.node] = low[f.node]
				}
				if low[f.node] > disc[pf.node] {
					u, v := pf.node, f.node
					if u > v {
						u, v = v, u
					}
					bridges = append(bridges, Edge{U: u, V: v})
				}
			}
		}
	}
	sort.Slice(bridges, func(i, j int) bool {
		if bridges[i].U != bridges[j].U {
			return bridges[i].U < bridges[j].U
		}
		return bridges[i].V < bridges[j].V
	})
	return bridges
}
