package graph

import (
	"fmt"
	"io"
)

// DOTOptions controls DOT export. Highlight marks a node (the paper's Fig. 2
// marks the seed author red) and HighlightEdges marks that node's incident
// edges, matching the figure's red first-degree edges.
type DOTOptions struct {
	Name           string // graph name; defaults to "G"
	Highlight      NodeID // node to emphasize
	HasHighlight   bool   // whether Highlight is set
	NodeLabels     map[NodeID]string
	HighlightColor string // defaults to "red"
}

// WriteDOT serializes the graph in Graphviz DOT format. Output is
// deterministic: nodes and edges are emitted in sorted order.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	color := opts.HighlightColor
	if color == "" {
		color = "red"
	}
	if _, err := fmt.Fprintf(w, "graph %s {\n", name); err != nil {
		return err
	}
	for _, u := range g.Nodes() {
		attrs := ""
		if label, ok := opts.NodeLabels[u]; ok {
			attrs = fmt.Sprintf(" [label=%q]", label)
		}
		if opts.HasHighlight && u == opts.Highlight {
			if attrs == "" {
				attrs = fmt.Sprintf(" [color=%s, style=filled]", color)
			} else {
				attrs = attrs[:len(attrs)-1] + fmt.Sprintf(", color=%s, style=filled]", color)
			}
		}
		if _, err := fmt.Fprintf(w, "  n%d%s;\n", u, attrs); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		attrs := ""
		if opts.HasHighlight && (e.U == opts.Highlight || e.V == opts.Highlight) {
			attrs = fmt.Sprintf(" [color=%s]", color)
		}
		if _, err := fmt.Fprintf(w, "  n%d -- n%d%s;\n", e.U, e.V, attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
