// Package graph provides an undirected graph with the structural and
// centrality analyses the S-CDN placement algorithms depend on: degree,
// clustering coefficient, betweenness and closeness centrality, k-hop ego
// networks, connected components, eccentricity, and DOT export.
//
// Node identifiers are opaque int64 values chosen by the caller. All
// iteration orders exposed by the package are deterministic (sorted by node
// ID) so that simulations and tests are reproducible.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node in a Graph. IDs are assigned by the caller and
// need not be dense.
type NodeID int64

// Graph is an undirected simple graph (no self loops, no parallel edges).
// The zero value is not ready for use; call New.
type Graph struct {
	adj   map[NodeID]map[NodeID]struct{}
	edges int
}

// New returns an empty undirected graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]struct{})}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make(map[NodeID]map[NodeID]struct{}, len(g.adj)), edges: g.edges}
	for u, nbrs := range g.adj {
		m := make(map[NodeID]struct{}, len(nbrs))
		for v := range nbrs {
			m[v] = struct{}{}
		}
		c.adj[u] = m
	}
	return c
}

// AddNode inserts a node. Adding an existing node is a no-op.
func (g *Graph) AddNode(u NodeID) {
	if _, ok := g.adj[u]; !ok {
		g.adj[u] = make(map[NodeID]struct{})
	}
}

// AddEdge inserts an undirected edge between u and v, adding either endpoint
// if absent. Self loops are ignored. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; ok {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
}

// RemoveEdge deletes the edge between u and v if present.
func (g *Graph) RemoveEdge(u, v NodeID) {
	if _, ok := g.adj[u][v]; !ok {
		return
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
}

// RemoveNode deletes u and all incident edges.
func (g *Graph) RemoveNode(u NodeID) {
	nbrs, ok := g.adj[u]
	if !ok {
		return
	}
	for v := range nbrs {
		delete(g.adj[v], u)
		g.edges--
	}
	delete(g.adj, u)
}

// HasNode reports whether u is present.
func (g *Graph) HasNode(u NodeID) bool {
	_, ok := g.adj[u]
	return ok
}

// HasEdge reports whether the undirected edge (u,v) is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.adj[u][v]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the number of neighbours of u (0 if absent).
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(g.adj))
	for u := range g.adj {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Neighbors returns the neighbours of u in ascending order.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	nbrs := g.adj[u]
	ids := make([]NodeID, 0, len(nbrs))
	for v := range nbrs {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Edge is an undirected edge with U <= V.
type Edge struct{ U, V NodeID }

// Edges returns every edge exactly once, ordered by (U,V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edges)
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u < v {
				es = append(es, Edge{u, v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Density returns 2E / (N(N-1)), or 0 for graphs with fewer than two nodes.
func (g *Graph) Density() float64 {
	n := len(g.adj)
	if n < 2 {
		return 0
	}
	return 2 * float64(g.edges) / (float64(n) * float64(n-1))
}

// BFSFrom performs a breadth-first traversal from src and returns the hop
// distance of every reachable node (src included at distance 0).
func (g *Graph) BFSFrom(src NodeID) map[NodeID]int {
	dist := make(map[NodeID]int)
	if _, ok := g.adj[src]; !ok {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for v := range g.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPathLen returns the hop count of the shortest path from u to v and
// whether v is reachable from u.
func (g *Graph) ShortestPathLen(u, v NodeID) (int, bool) {
	if u == v {
		return 0, g.HasNode(u)
	}
	d := g.BFSFrom(u)
	n, ok := d[v]
	return n, ok
}

// KHopEgo returns the subgraph induced by all nodes within k hops of seed.
func (g *Graph) KHopEgo(seed NodeID, k int) *Graph {
	dist := g.BFSFrom(seed)
	keep := make(map[NodeID]struct{})
	for u, d := range dist {
		if d <= k {
			keep[u] = struct{}{}
		}
	}
	return g.InducedSubgraph(keep)
}

// InducedSubgraph returns the subgraph induced by the node set keep. Nodes
// in keep that are absent from g are ignored.
func (g *Graph) InducedSubgraph(keep map[NodeID]struct{}) *Graph {
	sub := New()
	for u := range keep {
		if g.HasNode(u) {
			sub.AddNode(u)
		}
	}
	for u := range sub.adj {
		for v := range g.adj[u] {
			if _, ok := keep[v]; ok && u < v {
				sub.AddEdge(u, v)
			}
		}
	}
	return sub
}

// ConnectedComponents returns the connected components as node-ID slices,
// each sorted ascending, ordered by descending size then by smallest member.
func (g *Graph) ConnectedComponents() [][]NodeID {
	seen := make(map[NodeID]bool, len(g.adj))
	var comps [][]NodeID
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{start}
		seen[start] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// LargestComponent returns the node set of the largest connected component,
// or an empty set for an empty graph.
func (g *Graph) LargestComponent() map[NodeID]struct{} {
	set := make(map[NodeID]struct{})
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return set
	}
	for _, u := range comps[0] {
		set[u] = struct{}{}
	}
	return set
}

// ClusteringCoefficient returns the local clustering coefficient of u: the
// fraction of pairs of u's neighbours that are themselves connected.
// Nodes with degree < 2 have coefficient 0.
func (g *Graph) ClusteringCoefficient(u NodeID) float64 {
	nbrs := g.Neighbors(u)
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(k) * float64(k-1))
}

// AverageClustering returns the mean local clustering coefficient over all
// nodes, or 0 for an empty graph.
func (g *Graph) AverageClustering() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	sum := 0.0
	for u := range g.adj {
		sum += g.ClusteringCoefficient(u)
	}
	return sum / float64(len(g.adj))
}

// Eccentricity returns the greatest hop distance from u to any node
// reachable from u. Unreachable nodes are ignored.
func (g *Graph) Eccentricity(u NodeID) int {
	max := 0
	for _, d := range g.BFSFrom(u) {
		if d > max {
			max = d
		}
	}
	return max
}

// Diameter returns the maximum eccentricity over all nodes, considering
// only intra-component distances. O(V*(V+E)); intended for the graph sizes
// of the case study (thousands of nodes).
func (g *Graph) Diameter() int {
	max := 0
	for u := range g.adj {
		if e := g.Eccentricity(u); e > max {
			max = e
		}
	}
	return max
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, nbrs := range g.adj {
		h[len(nbrs)]++
	}
	return h
}

// Validate checks internal consistency (symmetric adjacency, edge count,
// no self loops) and returns a descriptive error on the first violation.
// It exists for tests and for defensive checks after bulk mutations.
func (g *Graph) Validate() error {
	count := 0
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u == v {
				return fmt.Errorf("graph: self loop at node %d", u)
			}
			if _, ok := g.adj[v][u]; !ok {
				return fmt.Errorf("graph: asymmetric edge %d->%d", u, v)
			}
			count++
		}
	}
	if count%2 != 0 {
		return fmt.Errorf("graph: odd directed edge count %d", count)
	}
	if count/2 != g.edges {
		return fmt.Errorf("graph: edge count mismatch: counted %d, recorded %d", count/2, g.edges)
	}
	return nil
}
