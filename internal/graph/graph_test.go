package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds a path graph 0-1-2-...-(n-1).
func path(n int) *Graph {
	g := New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	if n == 1 {
		g.AddNode(0)
	}
	return g
}

// complete builds K_n on nodes 0..n-1.
func complete(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return g
}

// star builds a star with center 0 and n leaves 1..n.
func star(n int) *Graph {
	g := New()
	for i := 1; i <= n; i++ {
		g.AddEdge(0, NodeID(i))
	}
	return g
}

func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode(5)
	g.AddNode(5)
	if got := g.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1) // duplicate, reversed
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge (1,2) should exist in both directions")
	}
	if g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees = %d,%d, want 1,1", g.Degree(1), g.Degree(2))
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge(3, 3)
	if g.NumEdges() != 0 {
		t.Fatalf("self loop added: NumEdges = %d", g.NumEdges())
	}
	if g.HasNode(3) {
		t.Fatal("self loop should not create node")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := complete(4)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge not removed")
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	g.RemoveEdge(0, 1) // no-op
	if g.NumEdges() != 5 {
		t.Fatalf("double remove changed count: %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNode(t *testing.T) {
	g := star(5)
	g.RemoveNode(0)
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0 after removing hub", g.NumEdges())
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveAbsentNode(t *testing.T) {
	g := path(3)
	g.RemoveNode(99)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatal("removing absent node mutated graph")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := complete(3)
	c := g.Clone()
	c.AddEdge(0, 10)
	c.RemoveEdge(0, 1)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatal("mutating clone affected original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	for _, id := range []NodeID{42, 7, 19, 3} {
		g.AddNode(id)
	}
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes not sorted: %v", nodes)
		}
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := randomGraph(20, 0.3, 1)
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge count differs between calls")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge order not deterministic at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	for _, e := range e1 {
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %v", e)
		}
	}
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := path(6)
	d := g.BFSFrom(0)
	for i := 0; i < 6; i++ {
		if d[NodeID(i)] != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d[NodeID(i)], i)
		}
	}
}

func TestBFSFromAbsent(t *testing.T) {
	g := path(3)
	if d := g.BFSFrom(77); len(d) != 0 {
		t.Fatalf("BFS from absent node returned %v", d)
	}
}

func TestShortestPathLen(t *testing.T) {
	g := path(5)
	g.AddEdge(10, 11) // separate component
	if n, ok := g.ShortestPathLen(0, 4); !ok || n != 4 {
		t.Fatalf("ShortestPathLen(0,4) = %d,%v want 4,true", n, ok)
	}
	if _, ok := g.ShortestPathLen(0, 10); ok {
		t.Fatal("cross-component path reported reachable")
	}
	if n, ok := g.ShortestPathLen(2, 2); !ok || n != 0 {
		t.Fatalf("self distance = %d,%v want 0,true", n, ok)
	}
}

func TestKHopEgo(t *testing.T) {
	g := path(10)
	ego := g.KHopEgo(5, 2)
	if ego.NumNodes() != 5 { // 3,4,5,6,7
		t.Fatalf("ego nodes = %d, want 5", ego.NumNodes())
	}
	if ego.NumEdges() != 4 {
		t.Fatalf("ego edges = %d, want 4", ego.NumEdges())
	}
	for _, u := range []NodeID{3, 4, 5, 6, 7} {
		if !ego.HasNode(u) {
			t.Fatalf("ego missing node %d", u)
		}
	}
}

func TestInducedSubgraphDropsOutsideEdges(t *testing.T) {
	g := complete(5)
	keep := map[NodeID]struct{}{0: {}, 1: {}, 9: {}} // 9 absent from g
	sub := g.InducedSubgraph(keep)
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("sub = %d nodes %d edges, want 2/1", sub.NumNodes(), sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(10, 11)
	g.AddNode(99)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d,%d,%d want 3,2,1",
			len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestLargestComponent(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(10, 11)
	lc := g.LargestComponent()
	if len(lc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(lc))
	}
	if _, ok := lc[2]; !ok {
		t.Fatal("largest component should contain node 2")
	}
	if len(New().LargestComponent()) != 0 {
		t.Fatal("empty graph should have empty largest component")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	k4 := complete(4)
	for _, u := range k4.Nodes() {
		if c := k4.ClusteringCoefficient(u); c != 1 {
			t.Fatalf("K4 clustering of %d = %v, want 1", u, c)
		}
	}
	s := star(5)
	if c := s.ClusteringCoefficient(0); c != 0 {
		t.Fatalf("star hub clustering = %v, want 0", c)
	}
	if c := s.ClusteringCoefficient(1); c != 0 {
		t.Fatalf("star leaf clustering = %v, want 0 (degree 1)", c)
	}
	// Triangle plus a pendant on node 0: neighbours of 0 are {1,2,3};
	// only (1,2) connected → C = 2*1/(3*2) = 1/3.
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	if c := g.ClusteringCoefficient(0); c < 0.333 || c > 0.334 {
		t.Fatalf("clustering = %v, want 1/3", c)
	}
}

func TestAverageClustering(t *testing.T) {
	if c := complete(5).AverageClustering(); c != 1 {
		t.Fatalf("K5 avg clustering = %v, want 1", c)
	}
	if c := path(5).AverageClustering(); c != 0 {
		t.Fatalf("path avg clustering = %v, want 0", c)
	}
	if c := New().AverageClustering(); c != 0 {
		t.Fatalf("empty avg clustering = %v, want 0", c)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := path(7)
	if e := g.Eccentricity(0); e != 6 {
		t.Fatalf("eccentricity(0) = %d, want 6", e)
	}
	if e := g.Eccentricity(3); e != 3 {
		t.Fatalf("eccentricity(3) = %d, want 3", e)
	}
	if d := g.Diameter(); d != 6 {
		t.Fatalf("diameter = %d, want 6", d)
	}
	if d := complete(5).Diameter(); d != 1 {
		t.Fatalf("K5 diameter = %d, want 1", d)
	}
}

func TestDensity(t *testing.T) {
	if d := complete(4).Density(); d != 1 {
		t.Fatalf("K4 density = %v, want 1", d)
	}
	if d := New().Density(); d != 0 {
		t.Fatalf("empty density = %v, want 0", d)
	}
	g := New()
	g.AddNode(1)
	if d := g.Density(); d != 0 {
		t.Fatalf("single-node density = %v, want 0", d)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := star(4).DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("histogram = %v, want {4:1, 1:4}", h)
	}
}

// Property: for random graphs, Validate always passes and handshake lemma
// holds (sum of degrees = 2E).
func TestPropertyRandomGraphInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%40) + 2
		p := float64(pRaw%100) / 100
		g := randomGraph(n, p, seed)
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		sum := 0
		for _, u := range g.Nodes() {
			sum += g.Degree(u)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle property along edges —
// neighbouring nodes' distances from any source differ by at most 1.
func TestPropertyBFSNeighborDistance(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(25, 0.15, seed)
		src := NodeID(int(uint64(seed) % 25))
		d := g.BFSFrom(src)
		for _, e := range g.Edges() {
			du, okU := d[e.U]
			dv, okV := d[e.V]
			if okU != okV {
				return false // one endpoint reachable, other not, but they're adjacent
			}
			if okU && abs(du-dv) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: induced subgraph never contains edges absent from the parent.
func TestPropertyInducedSubgraphIsSubset(t *testing.T) {
	f := func(seed int64, mask uint32) bool {
		g := randomGraph(20, 0.2, seed)
		keep := make(map[NodeID]struct{})
		for i := 0; i < 20; i++ {
			if mask&(1<<uint(i)) != 0 {
				keep[NodeID(i)] = struct{}{}
			}
		}
		sub := g.InducedSubgraph(keep)
		if err := sub.Validate(); err != nil {
			return false
		}
		for _, e := range sub.Edges() {
			if !g.HasEdge(e.U, e.V) {
				return false
			}
		}
		// And completeness: every parent edge with both ends kept appears.
		for _, e := range g.Edges() {
			_, ku := keep[e.U]
			_, kv := keep[e.V]
			if ku && kv && !sub.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: components partition the node set.
func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(30, 0.05, seed)
		seen := make(map[NodeID]bool)
		total := 0
		for _, comp := range g.ConnectedComponents() {
			for _, u := range comp {
				if seen[u] {
					return false
				}
				seen[u] = true
				total++
			}
		}
		return total == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
