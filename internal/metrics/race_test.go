package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent hammers Counter and Gauge from many
// goroutines; run under -race it is the regression test for the atomic
// implementations the HTTP serving plane depends on.
func TestCounterGaugeConcurrent(t *testing.T) {
	const (
		goroutines = 16
		iterations = 2000
	)
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iterations; j++ {
				c.Inc()
				c.Add(2)
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if want := uint64(goroutines * iterations * 3); c.Value() != want {
		t.Fatalf("counter = %d, want %d", c.Value(), want)
	}
	if want := float64(goroutines*iterations) * 0.5; math.Abs(g.Value()-want) > 1e-9 {
		t.Fatalf("gauge = %v, want %v", g.Value(), want)
	}
}

// TestGaugeConcurrentSetReaders checks Set/Value never tear a float even
// with concurrent readers and writers.
func TestGaugeConcurrentSetReaders(t *testing.T) {
	valid := map[float64]bool{0: true, 1.25: true, -7.5: true}
	var g Gauge
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := g.Value(); !valid[v] {
					t.Errorf("torn read: %v", v)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		g.Set(1.25)
		g.Set(-7.5)
		g.Set(0)
	}
	close(stop)
	wg.Wait()
}
