// Package metrics provides the measurement layer for the S-CDN: generic
// counters, gauges, and histograms plus the two Section V-E metric sets —
// CDN quality (availability, reliability, redundancy, response time,
// stability) and social performance (request acceptance rate, exchanges,
// immediacy of allocation, success ratio, free-rider ratio, transaction
// volume, resource abundance, scarcity distribution).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotone event count. Counters are goroutine-safe so the
// same metric set can be shared between the single-threaded simulator and
// the concurrent HTTP serving plane; the zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value. Like Counter it is goroutine-safe; the
// float is stored as its IEEE-754 bits and Add retries on contention.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations for quantile and mean queries. It
// stores raw values; S-CDN simulations observe at most a few million
// samples, for which exact quantiles are affordable and precise.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Observe records a sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func (h *Histogram) StdDev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	m := h.Mean()
	sum := 0.0
	for _, v := range h.samples {
		sum += (v - m) * (v - m)
	}
	return math.Sqrt(sum / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank; it
// returns 0 when empty and clamps q into range.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// CDNMetrics is the Section V-E CDN-quality metric set.
type CDNMetrics struct {
	// ResponseTime records end-to-end data access latency (seconds).
	ResponseTime Histogram
	// TransferThroughput records achieved per-transfer Mbps.
	TransferThroughput Histogram
	// RequestsServed / RequestsFailed count data accesses.
	RequestsServed Counter
	RequestsFailed Counter
	// LocalHits counts accesses satisfied from the local repository;
	// ReplicaHits from a remote replica; OriginFetches from the dataset
	// owner when no replica was available.
	LocalHits     Counter
	ReplicaHits   Counter
	OriginFetches Counter
	// ReplicaUnavailable counts chosen replicas that turned out offline
	// (reliability); Migrations counts replica moves (stability);
	// RedundancySamples records replicas-per-dataset over time.
	ReplicaUnavailable Counter
	Migrations         Counter
	RedundancySamples  Histogram
	// UpdatePropagations counts anti-entropy update deliveries;
	// StalenessSamples records the fraction of stale replica copies at
	// sample instants (eventual-consistency quality).
	UpdatePropagations Counter
	StalenessSamples   Histogram
	// AvailabilitySamples records the fraction of online replica nodes at
	// sample instants.
	AvailabilitySamples Histogram
}

// Availability returns mean sampled replica-node availability.
func (m *CDNMetrics) Availability() float64 { return m.AvailabilitySamples.Mean() }

// Reliability returns the fraction of served requests that did not hit an
// offline replica, 1 when nothing happened.
func (m *CDNMetrics) Reliability() float64 {
	total := m.RequestsServed.Value() + m.RequestsFailed.Value()
	if total == 0 {
		return 1
	}
	bad := float64(m.ReplicaUnavailable.Value())
	rel := 1 - bad/float64(total)
	if rel < 0 {
		return 0
	}
	return rel
}

// HitRatio returns the fraction of served requests answered locally or by
// a replica (vs. origin fetches).
func (m *CDNMetrics) HitRatio() float64 {
	served := float64(m.RequestsServed.Value())
	if served == 0 {
		return 0
	}
	return float64(m.LocalHits.Value()+m.ReplicaHits.Value()) / served
}

// SocialMetrics is the Section V-E social-performance metric set.
type SocialMetrics struct {
	// StorageRequests / StorageAccepts drive the request acceptance rate.
	StorageRequests Counter
	StorageAccepts  Counter
	// Exchanges counts data exchanges undertaken; Successful/Failed split
	// them for the success ratio.
	Exchanges           Counter
	SuccessfulExchanges Counter
	FailedExchanges     Counter
	// AllocationDelay records how fast participants accept placement
	// requests (seconds) — "immediacy of allocation".
	AllocationDelay Histogram
	// BytesContributed / BytesConsumed per user feed the free-rider ratio.
	contributed map[int64]int64
	consumed    map[int64]int64
	// TransactionVolumeBytes totals network usage.
	TransactionVolumeBytes Counter
	// AllocatedBytes / ContributedBytes drive resource abundance.
	AllocatedBytes   Gauge
	ContributedBytes Gauge
	// SiteBytes tracks per-site contributed capacity for the scarcity
	// distribution.
	siteBytes map[int]int64
}

// NewSocialMetrics returns an initialized social metric set.
func NewSocialMetrics() *SocialMetrics {
	return &SocialMetrics{
		contributed: make(map[int64]int64),
		consumed:    make(map[int64]int64),
		siteBytes:   make(map[int]int64),
	}
}

// RecordContribution credits a user (and site) with contributed bytes.
func (m *SocialMetrics) RecordContribution(user int64, site int, bytes int64) {
	m.contributed[user] += bytes
	m.siteBytes[site] += bytes
	m.ContributedBytes.Add(float64(bytes))
}

// RecordConsumption charges a user with consumed bytes.
func (m *SocialMetrics) RecordConsumption(user int64, bytes int64) {
	m.consumed[user] += bytes
}

// AcceptanceRate returns accepted/requested storage placements (1 when no
// requests were made).
func (m *SocialMetrics) AcceptanceRate() float64 {
	if m.StorageRequests.Value() == 0 {
		return 1
	}
	return float64(m.StorageAccepts.Value()) / float64(m.StorageRequests.Value())
}

// SuccessRatio returns successful/total exchanges (1 when none).
func (m *SocialMetrics) SuccessRatio() float64 {
	total := m.SuccessfulExchanges.Value() + m.FailedExchanges.Value()
	if total == 0 {
		return 1
	}
	return float64(m.SuccessfulExchanges.Value()) / float64(total)
}

// FreeRiderRatio returns the fraction of users who consumed data but
// contributed less than minContribution bytes.
func (m *SocialMetrics) FreeRiderRatio(minContribution int64) float64 {
	users := make(map[int64]struct{}, len(m.consumed)+len(m.contributed))
	for u := range m.consumed {
		users[u] = struct{}{}
	}
	for u := range m.contributed {
		users[u] = struct{}{}
	}
	if len(users) == 0 {
		return 0
	}
	free := 0
	for u := range users {
		if m.consumed[u] > 0 && m.contributed[u] < minContribution {
			free++
		}
	}
	return float64(free) / float64(len(users))
}

// AllocationRatio returns allocated/contributed bytes (resource
// abundance; 0 when nothing contributed).
func (m *SocialMetrics) AllocationRatio() float64 {
	if m.ContributedBytes.Value() == 0 {
		return 0
	}
	return m.AllocatedBytes.Value() / m.ContributedBytes.Value()
}

// ScarcityRatio returns the ratio of sites below half the mean per-site
// contribution to sites at or above it — the paper's "ratio of scarce to
// abundant resource locations". It returns 0 when no site is abundant.
func (m *SocialMetrics) ScarcityRatio() float64 {
	if len(m.siteBytes) == 0 {
		return 0
	}
	var total int64
	for _, b := range m.siteBytes {
		total += b
	}
	mean := float64(total) / float64(len(m.siteBytes))
	scarce, abundant := 0, 0
	for _, b := range m.siteBytes {
		if float64(b) < mean/2 {
			scarce++
		} else {
			abundant++
		}
	}
	if abundant == 0 {
		return 0
	}
	return float64(scarce) / float64(abundant)
}

// Report writes a human-readable summary of both metric sets.
func Report(w io.Writer, cdn *CDNMetrics, social *SocialMetrics, elapsed time.Duration) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("== CDN metrics (%v simulated) ==\n", elapsed)
	p("requests served/failed:      %d / %d\n", cdn.RequestsServed.Value(), cdn.RequestsFailed.Value())
	p("hit ratio (local+replica):   %.3f (local %d, replica %d, origin %d)\n",
		cdn.HitRatio(), cdn.LocalHits.Value(), cdn.ReplicaHits.Value(), cdn.OriginFetches.Value())
	p("response time s (mean/p50/p95): %.3f / %.3f / %.3f\n",
		cdn.ResponseTime.Mean(), cdn.ResponseTime.Quantile(0.5), cdn.ResponseTime.Quantile(0.95))
	p("throughput Mbps (mean):      %.1f\n", cdn.TransferThroughput.Mean())
	p("availability (mean sampled): %.3f\n", cdn.Availability())
	p("reliability:                 %.3f (offline-replica events: %d)\n",
		cdn.Reliability(), cdn.ReplicaUnavailable.Value())
	p("redundancy (mean replicas):  %.2f\n", cdn.RedundancySamples.Mean())
	p("stability (migrations):      %d\n", cdn.Migrations.Value())
	p("staleness (mean sampled):    %.3f (update deliveries: %d)\n",
		cdn.StalenessSamples.Mean(), cdn.UpdatePropagations.Value())
	p("== Social metrics ==\n")
	p("request acceptance rate:     %.3f (%d/%d)\n",
		social.AcceptanceRate(), social.StorageAccepts.Value(), social.StorageRequests.Value())
	p("data exchanges:              %d (success ratio %.3f)\n",
		social.Exchanges.Value(), social.SuccessRatio())
	p("immediacy of allocation s:   mean %.3f p95 %.3f\n",
		social.AllocationDelay.Mean(), social.AllocationDelay.Quantile(0.95))
	p("free-rider ratio:            %.3f\n", social.FreeRiderRatio(1))
	p("transaction volume:          %d bytes\n", social.TransactionVolumeBytes.Value())
	p("allocated/contributed:       %.3f\n", social.AllocationRatio())
	p("scarce:abundant sites:       %.3f\n", social.ScarcityRatio())
	return err
}
