package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.StdDev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if math.Abs(h.StdDev()-2.138089935) > 1e-6 {
		t.Fatalf("stddev = %v", h.StdDev())
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("p50 = %v, want 4", q)
	}
	if q := h.Quantile(1); q != 9 {
		t.Fatalf("p100 = %v, want 9", q)
	}
	if q := h.Quantile(0); q != 2 {
		t.Fatalf("p0 = %v, want 2", q)
	}
	if q := h.Quantile(-1); q != 2 {
		t.Fatalf("clamped q = %v, want 2", q)
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(5)
	_ = h.Quantile(0.5)
	h.Observe(1)
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("histogram not re-sorted after new observation: p0 = %v", q)
	}
}

func TestCDNReliability(t *testing.T) {
	var m CDNMetrics
	if m.Reliability() != 1 {
		t.Fatal("idle reliability should be 1")
	}
	m.RequestsServed.Add(8)
	m.RequestsFailed.Add(2)
	m.ReplicaUnavailable.Add(1)
	if r := m.Reliability(); math.Abs(r-0.9) > 1e-12 {
		t.Fatalf("reliability = %v, want 0.9", r)
	}
}

func TestCDNHitRatio(t *testing.T) {
	var m CDNMetrics
	if m.HitRatio() != 0 {
		t.Fatal("idle hit ratio should be 0")
	}
	m.RequestsServed.Add(10)
	m.LocalHits.Add(3)
	m.ReplicaHits.Add(5)
	m.OriginFetches.Add(2)
	if r := m.HitRatio(); math.Abs(r-0.8) > 1e-12 {
		t.Fatalf("hit ratio = %v, want 0.8", r)
	}
}

func TestSocialAcceptanceAndSuccess(t *testing.T) {
	s := NewSocialMetrics()
	if s.AcceptanceRate() != 1 || s.SuccessRatio() != 1 {
		t.Fatal("idle rates should be 1")
	}
	s.StorageRequests.Add(4)
	s.StorageAccepts.Add(3)
	if r := s.AcceptanceRate(); r != 0.75 {
		t.Fatalf("acceptance = %v", r)
	}
	s.SuccessfulExchanges.Add(9)
	s.FailedExchanges.Add(1)
	if r := s.SuccessRatio(); r != 0.9 {
		t.Fatalf("success = %v", r)
	}
}

func TestFreeRiderRatio(t *testing.T) {
	s := NewSocialMetrics()
	if s.FreeRiderRatio(1) != 0 {
		t.Fatal("no users → ratio 0")
	}
	s.RecordContribution(1, 0, 100) // contributor
	s.RecordConsumption(1, 50)
	s.RecordConsumption(2, 70)     // free rider
	s.RecordContribution(3, 1, 10) // contributes, never consumes
	if r := s.FreeRiderRatio(1); math.Abs(r-1.0/3.0) > 1e-12 {
		t.Fatalf("free-rider ratio = %v, want 1/3", r)
	}
	// Raising the bar makes user 3's contribution insufficient, but user 3
	// never consumed, so the ratio is unchanged.
	if r := s.FreeRiderRatio(20); math.Abs(r-1.0/3.0) > 1e-12 {
		t.Fatalf("free-rider ratio = %v, want 1/3", r)
	}
}

func TestAllocationRatio(t *testing.T) {
	s := NewSocialMetrics()
	if s.AllocationRatio() != 0 {
		t.Fatal("no contribution → 0")
	}
	s.RecordContribution(1, 0, 1000)
	s.AllocatedBytes.Set(250)
	if r := s.AllocationRatio(); r != 0.25 {
		t.Fatalf("allocation ratio = %v", r)
	}
}

func TestScarcityRatio(t *testing.T) {
	s := NewSocialMetrics()
	if s.ScarcityRatio() != 0 {
		t.Fatal("no sites → 0")
	}
	s.RecordContribution(1, 0, 1000)
	s.RecordContribution(2, 1, 1000)
	s.RecordContribution(3, 2, 10) // scarce: 10 < mean(670)/2
	if r := s.ScarcityRatio(); math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("scarcity = %v, want 0.5 (1 scarce : 2 abundant)", r)
	}
}

func TestReportContainsAllSections(t *testing.T) {
	var cdn CDNMetrics
	cdn.RequestsServed.Add(5)
	cdn.ResponseTime.Observe(1.5)
	social := NewSocialMetrics()
	social.Exchanges.Add(2)
	var sb strings.Builder
	if err := Report(&sb, &cdn, social, time.Hour); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"CDN metrics", "hit ratio", "response time", "availability",
		"reliability", "redundancy", "stability",
		"Social metrics", "acceptance rate", "data exchanges",
		"immediacy", "free-rider", "transaction volume", "scarce:abundant",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// Property: histogram quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		min, max := float64(raw[0]), float64(raw[0])
		for _, v := range raw {
			fv := float64(v)
			h.Observe(fv)
			if fv < min {
				min = fv
			}
			if fv > max {
				max = fv
			}
		}
		prev := min
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev-1e-9 || v < min || v > max {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
