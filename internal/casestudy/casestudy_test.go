package casestudy

import (
	"strings"
	"testing"

	"scdn/internal/coauthor"
)

// lightConfig keeps unit tests fast; the full 100-run config is exercised
// by the benchmarks and cmd/scdn-casestudy.
func lightConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 10
	return cfg
}

func newStudy(t testing.TB) *Study {
	t.Helper()
	s, err := New(lightConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableIOrderAndShape(t *testing.T) {
	s := newStudy(t)
	rows := s.TableI()
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Name != "baseline" || rows[1].Name != "double-coauthorship" || rows[2].Name != "number-of-authors" {
		t.Fatalf("row order wrong: %+v", rows)
	}
	// Paper's monotone structure: each pruning shrinks the graph.
	if !(rows[0].Nodes > rows[1].Nodes && rows[1].Nodes > rows[2].Nodes) {
		t.Errorf("node counts not strictly decreasing: %d, %d, %d",
			rows[0].Nodes, rows[1].Nodes, rows[2].Nodes)
	}
	if !(rows[0].Edges > rows[1].Edges && rows[1].Edges > rows[2].Edges) {
		t.Errorf("edge counts not strictly decreasing: %d, %d, %d",
			rows[0].Edges, rows[1].Edges, rows[2].Edges)
	}
}

func TestWriteTableI(t *testing.T) {
	s := newStudy(t)
	var sb strings.Builder
	if err := s.WriteTableI(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Graph", "baseline", "double-coauthorship", "number-of-authors"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Stats(t *testing.T) {
	s := newStudy(t)
	stats := s.Fig2()
	if len(stats) != 3 {
		t.Fatalf("stats = %d, want 3", len(stats))
	}
	if stats[0].MaxSpan != 6 {
		t.Errorf("baseline span = %d, want 6", stats[0].MaxSpan)
	}
	if stats[0].Components != 1 {
		t.Errorf("baseline components = %d, want 1", stats[0].Components)
	}
	if stats[1].Components < 2 {
		t.Errorf("double components = %d, want islands (>= 2)", stats[1].Components)
	}
	if stats[0].SeedDegree == 0 {
		t.Error("seed missing from baseline")
	}
}

func TestWriteFig2DOT(t *testing.T) {
	s := newStudy(t)
	var sb strings.Builder
	if err := WriteFig2DOT(&sb, s.Few); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "graph fig2 {") {
		t.Fatal("DOT output malformed")
	}
}

func TestSubgraphByName(t *testing.T) {
	s := newStudy(t)
	for _, name := range []string{"baseline", "double", "fewauthors", "few"} {
		if _, err := s.SubgraphByName(name); err != nil {
			t.Errorf("SubgraphByName(%q): %v", name, err)
		}
	}
	if _, err := s.SubgraphByName("bogus"); err == nil {
		t.Error("bogus name should error")
	}
}

// TestFig3Shape verifies the paper's qualitative results on the baseline
// panel with a reduced run count:
//   - hit rate grows with replica count for Community Node Degree;
//   - Community Node Degree ≥ Node Degree ≥ (roughly) Random at k=10;
//   - Clustering Coefficient is the weakest or near-weakest;
//   - Node Degree plateaus (the 86-author consortium artifact).
func TestFig3Shape(t *testing.T) {
	s := newStudy(t)
	curves := s.Fig3(s.Baseline)
	if len(curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(curves))
	}
	byName := map[string][]float64{}
	for _, c := range curves {
		rates := make([]float64, len(c.Points))
		for i, p := range c.Points {
			rates[i] = p.HitRate
		}
		byName[c.Algorithm] = rates
		t.Logf("%-24s %v", c.Algorithm, rates)
	}
	cnd := byName["Community Node Degree"]
	nd := byName["Node Degree"]
	rnd := byName["Random"]
	cc := byName["Clustering Coefficient"]
	last := len(cnd) - 1

	if cnd[last] <= cnd[0] {
		t.Errorf("Community Node Degree not increasing: %v", cnd)
	}
	if cnd[last] < nd[last] {
		t.Errorf("Community Node Degree (%v) below Node Degree (%v) at k=10", cnd[last], nd[last])
	}
	if nd[last] < rnd[last] {
		t.Errorf("Node Degree (%v) below Random (%v) at k=10", nd[last], rnd[last])
	}
	if cc[last] > cnd[last] {
		t.Errorf("Clustering Coefficient (%v) beats Community Node Degree (%v)", cc[last], cnd[last])
	}
	// Node-degree plateau: growth from k=2 to k=10 should be small
	// relative to Community Node Degree's growth over the same range.
	ndGrowth := nd[last] - nd[1]
	cndGrowth := cnd[last] - cnd[1]
	if ndGrowth > cndGrowth {
		t.Errorf("Node Degree grew more (%v) than Community Node Degree (%v) after k=2 — consortium plateau missing",
			ndGrowth, cndGrowth)
	}
}

// TestFig3TrustOrdering verifies that trust pruning raises the achievable
// hit rate: baseline < double-coauthorship < number-of-authors for
// Community Node Degree at k=10 (the paper's headline observation).
func TestFig3TrustOrdering(t *testing.T) {
	s := newStudy(t)
	rates := make(map[string]float64, 3)
	for _, sub := range s.Subgraphs() {
		curves := s.Fig3(sub)
		for _, c := range curves {
			if c.Algorithm == "Community Node Degree" {
				rates[sub.Name] = c.Points[len(c.Points)-1].HitRate
			}
		}
	}
	t.Logf("k=10 Community Node Degree rates: %v", rates)
	if !(rates["baseline"] < rates["double-coauthorship"]) {
		t.Errorf("baseline (%.2f) should be below double-coauthorship (%.2f)",
			rates["baseline"], rates["double-coauthorship"])
	}
	if !(rates["double-coauthorship"] < rates["number-of-authors"]) {
		t.Errorf("double-coauthorship (%.2f) should be below number-of-authors (%.2f)",
			rates["double-coauthorship"], rates["number-of-authors"])
	}
}

func TestWriteFig3(t *testing.T) {
	s := newStudy(t)
	curves := s.Fig3(s.Few)
	var sb strings.Builder
	if err := WriteFig3(&sb, "number-of-authors", curves); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Replicas", "Random", "Node Degree", "Community Node Degree", "Clustering Coefficient"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 12 { // title + header + 10 rows
		t.Errorf("Fig3 output lines = %d, want 12:\n%s", lines, out)
	}
}

func TestThresholdSweeps(t *testing.T) {
	s := newStudy(t)
	co := s.CoauthorshipThresholdSweep([]int{2, 3})
	if len(co) != 2 || co[0].Threshold != 2 {
		t.Fatalf("coauthorship sweep malformed: %+v", co)
	}
	if co[1].Stats.Nodes > co[0].Stats.Nodes {
		t.Errorf("higher threshold should not grow the graph: %+v", co)
	}
	ac := s.AuthorCountThresholdSweep([]int{4, 5, 8})
	if len(ac) != 3 {
		t.Fatalf("author-count sweep malformed: %+v", ac)
	}
	if ac[0].Stats.Nodes > ac[2].Stats.Nodes {
		t.Errorf("lower cutoff should not grow the graph: %+v", ac)
	}
}

func TestNewFromCorpusValidation(t *testing.T) {
	cfg := lightConfig()
	if _, err := NewFromCorpus(cfg, nil, 1, 2009, 2010, 2011); err == nil {
		t.Fatal("nil corpus accepted")
	}
	c := &coauthor.Corpus{Publications: []coauthor.Publication{
		{ID: 0, Year: 2009, Authors: []coauthor.AuthorID{1, 2}},
	}}
	if _, err := NewFromCorpus(cfg, c, 1, 2010, 2009, 2011); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := NewFromCorpus(cfg, c, 99, 2009, 2010, 2011); err == nil {
		t.Fatal("absent seed author accepted")
	}
	s, err := NewFromCorpus(cfg, c, 1, 2009, 2010, 2011)
	if err != nil {
		t.Fatal(err)
	}
	if s.Synth != nil {
		t.Fatal("corpus-based study should have nil Synth")
	}
	if s.Baseline.Graph.NumNodes() != 2 {
		t.Fatalf("baseline nodes = %d", s.Baseline.Graph.NumNodes())
	}
}
