// Package casestudy drives the paper's Section VI evaluation: it builds
// the coauthorship corpus (synthetic, calibrated to the paper's DBLP
// extraction), derives the three trust subgraphs (Table I), analyses their
// topology (Fig. 2), and measures replica hit rates for every placement
// algorithm and replica count (Fig. 3).
package casestudy

import (
	"fmt"
	"io"
	"sort"

	"scdn/internal/coauthor"
	"scdn/internal/graph"
	"scdn/internal/placement"
)

// Config parameterizes a case-study run.
type Config struct {
	// Seed drives corpus generation and placement randomness.
	Seed int64
	// Hops is the ego-network radius (paper: 3).
	Hops int
	// MaxReplicas is the largest replica count evaluated (paper: 10).
	MaxReplicas int
	// Runs is the number of placements averaged per point (paper: 100).
	Runs int
	// HitRadius is the hit distance in hops (paper: 1).
	HitRadius int
	// Extended additionally evaluates the non-paper algorithms.
	Extended bool
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Seed: 42, Hops: 3, MaxReplicas: 10, Runs: 100, HitRadius: 1}
}

// Study holds everything derived from one corpus: the three trust
// subgraphs and the test events.
type Study struct {
	Config   Config
	Synth    *coauthor.SynthResult
	Baseline *coauthor.Subgraph
	Double   *coauthor.Subgraph
	Few      *coauthor.Subgraph
	// TestEvents are the author lists of test-year publications.
	TestEvents []placement.Event
}

// New generates the calibrated synthetic corpus and derives the study
// inputs with the paper's year split (train 2009–2010, test 2011).
func New(cfg Config) (*Study, error) {
	scfg := coauthor.DefaultSynthConfig(cfg.Seed)
	synth := coauthor.GenerateDBLP(scfg)
	s, err := NewFromCorpus(cfg, synth.Corpus, synth.Seed,
		scfg.TrainFrom, scfg.TrainTo, scfg.TestYear)
	if err != nil {
		return nil, err
	}
	s.Synth = synth
	return s, nil
}

// NewFromCorpus derives the study from an arbitrary corpus — e.g. a real
// DBLP extraction parsed with coauthor.ParseDBLPXML — using the given ego
// seed author and year split. The Synth field stays nil.
func NewFromCorpus(cfg Config, corpus *coauthor.Corpus, seed coauthor.AuthorID,
	trainFrom, trainTo, testYear int) (*Study, error) {
	if cfg.Hops <= 0 {
		cfg.Hops = 3
	}
	if corpus == nil || corpus.Len() == 0 {
		return nil, fmt.Errorf("casestudy: empty corpus")
	}
	if trainFrom > trainTo {
		return nil, fmt.Errorf("casestudy: training window %d..%d inverted", trainFrom, trainTo)
	}
	train := corpus.YearRange(trainFrom, trainTo)
	base, double, few, err := coauthor.TrustGraphs(train, seed, cfg.Hops)
	if err != nil {
		return nil, fmt.Errorf("casestudy: %w", err)
	}
	test := corpus.YearRange(testYear, testYear)
	events := make([]placement.Event, 0, test.Len())
	for _, p := range test.Publications {
		events = append(events, placement.Event(p.Authors))
	}
	return &Study{
		Config:     cfg,
		Baseline:   base,
		Double:     double,
		Few:        few,
		TestEvents: events,
	}, nil
}

// Subgraphs returns the three trust subgraphs in Table I order.
func (s *Study) Subgraphs() []*coauthor.Subgraph {
	return []*coauthor.Subgraph{s.Baseline, s.Double, s.Few}
}

// SubgraphByName returns baseline, double, or fewauthors by key.
func (s *Study) SubgraphByName(name string) (*coauthor.Subgraph, error) {
	switch name {
	case "baseline":
		return s.Baseline, nil
	case "double":
		return s.Double, nil
	case "fewauthors", "few":
		return s.Few, nil
	}
	return nil, fmt.Errorf("casestudy: unknown subgraph %q (want baseline|double|fewauthors)", name)
}

// TableI returns the Table I rows for the three subgraphs.
func (s *Study) TableI() []coauthor.Stats {
	out := make([]coauthor.Stats, 0, 3)
	for _, sub := range s.Subgraphs() {
		out = append(out, sub.Stats())
	}
	return out
}

// WriteTableI prints Table I in the paper's layout.
func (s *Study) WriteTableI(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-22s %8s %14s %8s\n", "Graph", "Nodes", "Publications", "Edges"); err != nil {
		return err
	}
	for _, row := range s.TableI() {
		if _, err := fmt.Fprintf(w, "%-22s %8d %14d %8d\n",
			row.Name, row.Nodes, row.Publications, row.Edges); err != nil {
			return err
		}
	}
	return nil
}

// Fig2Stats summarizes one subgraph's topology: the properties the paper
// reads off Fig. 2 (span, islands, seed attachment).
type Fig2Stats struct {
	Name          string
	Nodes, Edges  int
	Components    int
	LargestComp   int
	MaxSpan       int
	SeedDegree    int
	AvgClustering float64
}

// Fig2 computes topology statistics for each subgraph.
func (s *Study) Fig2() []Fig2Stats {
	out := make([]Fig2Stats, 0, 3)
	for _, sub := range s.Subgraphs() {
		comps := sub.Graph.ConnectedComponents()
		largest := 0
		if len(comps) > 0 {
			largest = len(comps[0])
		}
		out = append(out, Fig2Stats{
			Name:          sub.Name,
			Nodes:         sub.Graph.NumNodes(),
			Edges:         sub.Graph.NumEdges(),
			Components:    len(comps),
			LargestComp:   largest,
			MaxSpan:       sub.MaxSpan(),
			SeedDegree:    sub.Graph.Degree(sub.Seed),
			AvgClustering: sub.Graph.AverageClustering(),
		})
	}
	return out
}

// WriteFig2DOT writes the subgraph in DOT form with the seed highlighted,
// as in the paper's Fig. 2 rendering.
func WriteFig2DOT(w io.Writer, sub *coauthor.Subgraph) error {
	return sub.Graph.WriteDOT(w, graph.DOTOptions{
		Name:         "fig2",
		Highlight:    sub.Seed,
		HasHighlight: sub.Graph.HasNode(sub.Seed),
	})
}

// Curve is one algorithm's hit-rate series on one subgraph.
type Curve struct {
	Algorithm string
	Points    []placement.Result
}

// Fig3 evaluates every algorithm on the named subgraph for replica counts
// 1..MaxReplicas, producing the curves of one Fig. 3 panel.
func (s *Study) Fig3(sub *coauthor.Subgraph) []Curve {
	algs := placement.PaperAlgorithms()
	if s.Config.Extended {
		algs = append(algs, placement.ExtendedAlgorithms()...)
	}
	curves := make([]Curve, 0, len(algs))
	for i, alg := range algs {
		cfg := placement.EvalConfig{
			Runs:      s.Config.Runs,
			HitRadius: s.Config.HitRadius,
			// Per-algorithm seed offset keeps runs independent while the
			// study as a whole stays reproducible.
			Seed: s.Config.Seed + int64(i+1)*1e9,
		}
		curves = append(curves, Curve{
			Algorithm: alg.Name(),
			Points:    placement.Series(sub.Graph, s.TestEvents, alg, s.Config.MaxReplicas, cfg),
		})
	}
	return curves
}

// WriteFig3 prints a Fig. 3 panel as aligned columns: one row per replica
// count, one column per algorithm.
func WriteFig3(w io.Writer, name string, curves []Curve) error {
	if _, err := fmt.Fprintf(w, "Replica hit rate (%%) — %s\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-9s", "Replicas"); err != nil {
		return err
	}
	for _, c := range curves {
		if _, err := fmt.Fprintf(w, " %22s", c.Algorithm); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if len(curves) == 0 {
		return nil
	}
	for i := range curves[0].Points {
		if _, err := fmt.Fprintf(w, "%-9d", curves[0].Points[i].Replicas); err != nil {
			return err
		}
		for _, c := range curves {
			if _, err := fmt.Fprintf(w, " %22.2f", c.Points[i].HitRate); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// AblationPoint is one (threshold, hit-rate) measurement of the
// trust-threshold sweeps called out in DESIGN.md.
type AblationPoint struct {
	Threshold int
	Stats     coauthor.Stats
	HitRate   float64
}

// CoauthorshipThresholdSweep varies the double-coauthorship minimum weight
// and reports the Community Node Degree hit rate at MaxReplicas replicas.
func (s *Study) CoauthorshipThresholdSweep(thresholds []int) []AblationPoint {
	sort.Ints(thresholds)
	out := make([]AblationPoint, 0, len(thresholds))
	for _, th := range thresholds {
		sub := coauthor.DoubleCoauthorship(s.Baseline, th)
		res := placement.Evaluate(sub.Graph, s.TestEvents, placement.CommunityNodeDegree{},
			placement.EvalConfig{Replicas: s.Config.MaxReplicas, Runs: s.Config.Runs,
				HitRadius: s.Config.HitRadius, Seed: s.Config.Seed})
		out = append(out, AblationPoint{Threshold: th, Stats: sub.Stats(), HitRate: res.HitRate})
	}
	return out
}

// AuthorCountThresholdSweep varies the number-of-authors cutoff and
// reports the Community Node Degree hit rate at MaxReplicas replicas.
func (s *Study) AuthorCountThresholdSweep(cutoffs []int) []AblationPoint {
	sort.Ints(cutoffs)
	out := make([]AblationPoint, 0, len(cutoffs))
	for _, c := range cutoffs {
		sub := coauthor.FewAuthors(s.Baseline, c)
		res := placement.Evaluate(sub.Graph, s.TestEvents, placement.CommunityNodeDegree{},
			placement.EvalConfig{Replicas: s.Config.MaxReplicas, Runs: s.Config.Runs,
				HitRadius: s.Config.HitRadius, Seed: s.Config.Seed})
		out = append(out, AblationPoint{Threshold: c, Stats: sub.Stats(), HitRate: res.HitRate})
	}
	return out
}
