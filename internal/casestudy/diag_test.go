package casestudy

import (
	"math/rand"
	"sort"
	"testing"

	"scdn/internal/graph"
	"scdn/internal/placement"
)

// TestDiagFewPanel is a development diagnostic for the Fig. 3c panel.
func TestDiagFewPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	s := newStudy(t)
	res := s.Synth
	few := s.Few.Graph

	role := make(map[graph.NodeID]string)
	for _, g := range res.Groups {
		for _, m := range g {
			if role[m] == "" {
				role[m] = "member"
			}
		}
	}
	for _, team := range res.Teams {
		for _, m := range team {
			role[m] = "team"
		}
	}
	for _, p := range res.PIs {
		role[p] = "pi"
	}
	for _, b := range res.Brokers {
		role[b] = "broker"
	}
	role[res.Seed] = "seed"
	role[res.SuperHub] = "superhub"

	// Top-15 few-degree.
	nodes := few.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return few.Degree(nodes[i]) > few.Degree(nodes[j]) })
	for i := 0; i < 15 && i < len(nodes); i++ {
		t.Logf("few top-degree #%2d: node %5d deg=%2d role=%s",
			i+1, nodes[i], few.Degree(nodes[i]), role[nodes[i]])
	}

	// CND picks at k=10.
	picks := placement.CommunityNodeDegree{}.Place(few, 10, rand.New(rand.NewSource(1)))
	for _, p := range picks {
		t.Logf("CND pick: node %5d deg=%2d role=%s", p, few.Degree(p), role[p])
	}
	covered := placement.CoverageSet(few, picks, 1)
	t.Logf("coverage: %d of %d nodes", len(covered), few.NumNodes())

	// In-few test instance mass by role, and covered share by role.
	total := map[string]int{}
	hit := map[string]int{}
	for _, ev := range s.TestEvents {
		anyIn := false
		for _, a := range ev {
			if few.HasNode(a) {
				anyIn = true
				break
			}
		}
		if !anyIn {
			continue
		}
		for _, a := range ev {
			if !few.HasNode(a) {
				continue
			}
			total[role[a]]++
			if _, ok := covered[a]; ok {
				hit[role[a]]++
			}
		}
	}
	sum, hits := 0, 0
	for r, n := range total {
		sum += n
		hits += hit[r]
		t.Logf("in-few instances role=%-9s total=%4d covered=%4d", r, n, hit[r])
	}
	t.Logf("overall: %d/%d = %.1f%%", hits, sum, 100*float64(hits)/float64(sum))
}
