// Package availability models node churn for user-contributed storage:
// diurnal online/offline traces, uptime fractions, My3-style availability
// overlap graphs, and a greedy low-cost cover used to pick replica sets
// whose union availability spans the day (the paper's Section V-D
// "availability graphs").
package availability

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Trace is a node's availability pattern over a 24-hour cycle, quantized
// into fixed-width slots. Slot i covers [i*SlotWidth, (i+1)*SlotWidth).
type Trace struct {
	// Online[i] reports whether the node is up during slot i.
	Online []bool
	// SlotWidth is the duration of one slot.
	SlotWidth time.Duration
}

// NumSlots returns the number of slots in the cycle.
func (t *Trace) NumSlots() int { return len(t.Online) }

// Uptime returns the fraction of slots the node is online.
func (t *Trace) Uptime() float64 {
	if len(t.Online) == 0 {
		return 0
	}
	up := 0
	for _, on := range t.Online {
		if on {
			up++
		}
	}
	return float64(up) / float64(len(t.Online))
}

// At reports whether the node is online at the given offset into the
// diurnal cycle (offsets beyond one cycle wrap).
func (t *Trace) At(offset time.Duration) bool {
	if len(t.Online) == 0 {
		return false
	}
	cycle := t.SlotWidth * time.Duration(len(t.Online))
	if cycle <= 0 {
		return false
	}
	offset %= cycle
	if offset < 0 {
		offset += cycle
	}
	slot := int(offset / t.SlotWidth)
	return t.Online[slot]
}

// Overlap returns the fraction of slots during which both traces are
// online. Traces must have identical geometry.
func (t *Trace) Overlap(o *Trace) (float64, error) {
	if t.NumSlots() != o.NumSlots() || t.SlotWidth != o.SlotWidth {
		return 0, fmt.Errorf("availability: mismatched trace geometry (%d/%v vs %d/%v)",
			t.NumSlots(), t.SlotWidth, o.NumSlots(), o.SlotWidth)
	}
	if t.NumSlots() == 0 {
		return 0, nil
	}
	both := 0
	for i := range t.Online {
		if t.Online[i] && o.Online[i] {
			both++
		}
	}
	return float64(both) / float64(len(t.Online)), nil
}

// DiurnalConfig parameterizes synthetic trace generation: a researcher's
// machine is mostly on during local working hours, with a base probability
// otherwise, plus random flaps.
type DiurnalConfig struct {
	Slots     int           // slots per day (default 48 = 30-minute slots)
	SlotWidth time.Duration // default 30m
	// WorkStart/WorkEnd are local working hours (0-24).
	WorkStart, WorkEnd int
	// PWork and POff are the online probabilities inside and outside
	// working hours.
	PWork, POff float64
	// TZOffset shifts the pattern by whole hours (site's timezone).
	TZOffset int
}

// DefaultDiurnal returns a 48-slot, 9-to-18 working-hours configuration
// with 95% working-hour and 40% off-hour availability.
func DefaultDiurnal(tz int) DiurnalConfig {
	return DiurnalConfig{
		Slots: 48, SlotWidth: 30 * time.Minute,
		WorkStart: 9, WorkEnd: 18,
		PWork: 0.95, POff: 0.40,
		TZOffset: tz,
	}
}

// Generate builds a random trace from the configuration.
func Generate(cfg DiurnalConfig, rng *rand.Rand) *Trace {
	if cfg.Slots <= 0 {
		cfg.Slots = 48
	}
	if cfg.SlotWidth <= 0 {
		cfg.SlotWidth = 24 * time.Hour / time.Duration(cfg.Slots)
	}
	tr := &Trace{Online: make([]bool, cfg.Slots), SlotWidth: cfg.SlotWidth}
	for i := range tr.Online {
		hour := (float64(i)*cfg.SlotWidth.Hours() - float64(cfg.TZOffset))
		hour = math.Mod(math.Mod(hour, 24)+24, 24)
		p := cfg.POff
		if hour >= float64(cfg.WorkStart) && hour < float64(cfg.WorkEnd) {
			p = cfg.PWork
		}
		tr.Online[i] = rng.Float64() < p
	}
	return tr
}

// AlwaysOn returns a trace that is online in every slot (institutional
// servers).
func AlwaysOn(slots int, width time.Duration) *Trace {
	tr := &Trace{Online: make([]bool, slots), SlotWidth: width}
	for i := range tr.Online {
		tr.Online[i] = true
	}
	return tr
}

// NodeTrace pairs a node identifier with its trace.
type NodeTrace struct {
	Node  int64
	Trace *Trace
}

// UnionUptime returns the fraction of slots during which at least one of
// the given traces is online. All traces must share geometry; an empty set
// yields 0.
func UnionUptime(traces []*Trace) (float64, error) {
	if len(traces) == 0 {
		return 0, nil
	}
	n := traces[0].NumSlots()
	for _, t := range traces[1:] {
		if t.NumSlots() != n || t.SlotWidth != traces[0].SlotWidth {
			return 0, fmt.Errorf("availability: mismatched trace geometry in union")
		}
	}
	if n == 0 {
		return 0, nil
	}
	up := 0
	for i := 0; i < n; i++ {
		for _, t := range traces {
			if t.Online[i] {
				up++
				break
			}
		}
	}
	return float64(up) / float64(n), nil
}

// GreedyCover picks up to k nodes whose union uptime is maximal, greedily:
// each step adds the node covering the most still-uncovered slots,
// breaking ties by higher individual uptime then lower node ID. It returns
// the chosen nodes and the union uptime achieved. This is the My3-style
// replica-set selection of Section V-D.
func GreedyCover(nodes []NodeTrace, k int) ([]int64, float64, error) {
	if len(nodes) == 0 || k <= 0 {
		return nil, 0, nil
	}
	n := nodes[0].Trace.NumSlots()
	for _, nt := range nodes[1:] {
		if nt.Trace.NumSlots() != n || nt.Trace.SlotWidth != nodes[0].Trace.SlotWidth {
			return nil, 0, fmt.Errorf("availability: mismatched trace geometry in cover")
		}
	}
	sorted := make([]NodeTrace, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })

	covered := make([]bool, n)
	taken := make(map[int64]struct{})
	var chosen []int64
	for len(chosen) < k && len(chosen) < len(sorted) {
		bestIdx, bestGain, bestUptime := -1, -1, -1.0
		for i, nt := range sorted {
			if _, dup := taken[nt.Node]; dup {
				continue
			}
			gain := 0
			for s := 0; s < n; s++ {
				if !covered[s] && nt.Trace.Online[s] {
					gain++
				}
			}
			up := nt.Trace.Uptime()
			if gain > bestGain || (gain == bestGain && up > bestUptime) {
				bestIdx, bestGain, bestUptime = i, gain, up
			}
		}
		if bestIdx < 0 {
			break
		}
		nt := sorted[bestIdx]
		taken[nt.Node] = struct{}{}
		chosen = append(chosen, nt.Node)
		for s := 0; s < n; s++ {
			if nt.Trace.Online[s] {
				covered[s] = true
			}
		}
	}
	up := 0
	for _, c := range covered {
		if c {
			up++
		}
	}
	frac := 0.0
	if n > 0 {
		frac = float64(up) / float64(n)
	}
	return chosen, frac, nil
}
