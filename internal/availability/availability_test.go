package availability

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func trace(bits ...int) *Trace {
	tr := &Trace{Online: make([]bool, len(bits)), SlotWidth: time.Hour}
	for i, b := range bits {
		tr.Online[i] = b != 0
	}
	return tr
}

func TestUptime(t *testing.T) {
	if u := trace(1, 0, 1, 0).Uptime(); u != 0.5 {
		t.Fatalf("uptime = %v, want 0.5", u)
	}
	if u := (&Trace{}).Uptime(); u != 0 {
		t.Fatalf("empty uptime = %v", u)
	}
	if u := AlwaysOn(10, time.Hour).Uptime(); u != 1 {
		t.Fatalf("always-on uptime = %v", u)
	}
}

func TestAtWraps(t *testing.T) {
	tr := trace(1, 0, 0, 1) // 4-hour cycle
	if !tr.At(0) || tr.At(time.Hour) || !tr.At(3*time.Hour) {
		t.Fatal("At basic lookup wrong")
	}
	if !tr.At(4 * time.Hour) { // wraps to slot 0
		t.Fatal("At should wrap")
	}
	if !tr.At(-time.Hour) { // negative wraps to slot 3
		t.Fatal("At should wrap negatives")
	}
	if (&Trace{}).At(time.Hour) {
		t.Fatal("empty trace should be offline")
	}
}

func TestOverlap(t *testing.T) {
	a := trace(1, 1, 0, 0)
	b := trace(1, 0, 1, 0)
	got, err := a.Overlap(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.25 {
		t.Fatalf("overlap = %v, want 0.25", got)
	}
	if _, err := a.Overlap(trace(1, 0)); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
}

func TestGenerateDiurnalShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultDiurnal(0)
	cfg.PWork, cfg.POff = 1.0, 0.0 // deterministic
	tr := Generate(cfg, rng)
	if tr.NumSlots() != 48 {
		t.Fatalf("slots = %d", tr.NumSlots())
	}
	// Slot at 10:00 (slot 20) must be online; slot at 03:00 (slot 6) offline.
	if !tr.Online[20] {
		t.Fatal("working-hour slot offline")
	}
	if tr.Online[6] {
		t.Fatal("night slot online")
	}
	// Uptime should be (18-9)/24 = 0.375.
	if u := tr.Uptime(); u < 0.37 || u > 0.38 {
		t.Fatalf("uptime = %v, want 0.375", u)
	}
}

func TestGenerateTimezoneShift(t *testing.T) {
	cfg := DefaultDiurnal(0)
	cfg.PWork, cfg.POff = 1.0, 0.0
	utc := Generate(cfg, rand.New(rand.NewSource(1)))
	cfg.TZOffset = 9 // Tokyo: local 09:00 occurs at 00:00 UTC
	tokyo := Generate(cfg, rand.New(rand.NewSource(1)))
	// Tokyo trace should be utc trace shifted by 9h = 18 slots.
	for i := range utc.Online {
		j := (i + 18) % 48
		if utc.Online[i] != tokyo.Online[j] {
			t.Fatalf("timezone shift wrong at slot %d", i)
		}
	}
}

func TestUnionUptime(t *testing.T) {
	u, err := UnionUptime([]*Trace{trace(1, 0, 0, 0), trace(0, 1, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if u != 0.5 {
		t.Fatalf("union = %v, want 0.5", u)
	}
	if u, _ := UnionUptime(nil); u != 0 {
		t.Fatal("empty union should be 0")
	}
	if _, err := UnionUptime([]*Trace{trace(1), trace(1, 0)}); err == nil {
		t.Fatal("mismatched union accepted")
	}
}

func TestGreedyCoverComplementary(t *testing.T) {
	nodes := []NodeTrace{
		{1, trace(1, 1, 0, 0)},
		{2, trace(0, 0, 1, 1)},
		{3, trace(1, 1, 1, 0)}, // best single
		{4, trace(1, 0, 0, 0)},
	}
	chosen, frac, err := GreedyCover(nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1.0 {
		t.Fatalf("cover fraction = %v, want 1.0", frac)
	}
	if chosen[0] != 3 || chosen[1] != 2 {
		t.Fatalf("chosen = %v, want [3 2]", chosen)
	}
}

func TestGreedyCoverTieBreaks(t *testing.T) {
	// Both cover the same new slots; higher uptime wins... here equal
	// uptime too, so lower ID (1) wins via sorted order.
	nodes := []NodeTrace{
		{2, trace(1, 0)},
		{1, trace(1, 0)},
	}
	chosen, _, err := GreedyCover(nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if chosen[0] != 1 {
		t.Fatalf("chosen = %v, want lower ID first", chosen)
	}
}

func TestGreedyCoverEmptyAndZeroK(t *testing.T) {
	if c, f, _ := GreedyCover(nil, 3); c != nil || f != 0 {
		t.Fatal("empty input should yield empty cover")
	}
	if c, _, _ := GreedyCover([]NodeTrace{{1, trace(1)}}, 0); c != nil {
		t.Fatal("k=0 should yield empty cover")
	}
}

func TestGreedyCoverMismatch(t *testing.T) {
	if _, _, err := GreedyCover([]NodeTrace{{1, trace(1)}, {2, trace(1, 0)}}, 2); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
}

// Property: union uptime of a greedy cover never decreases as k grows.
func TestPropertyGreedyCoverMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var nodes []NodeTrace
		for i := 0; i < 10; i++ {
			tr := &Trace{Online: make([]bool, 24), SlotWidth: time.Hour}
			for s := range tr.Online {
				tr.Online[s] = rng.Float64() < 0.4
			}
			nodes = append(nodes, NodeTrace{int64(i), tr})
		}
		prev := 0.0
		for k := 1; k <= 5; k++ {
			_, frac, err := GreedyCover(nodes, k)
			if err != nil || frac < prev-1e-12 {
				return false
			}
			prev = frac
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: union uptime >= max individual uptime.
func TestPropertyUnionAtLeastMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var traces []*Trace
		maxUp := 0.0
		for i := 0; i < 5; i++ {
			tr := Generate(DefaultDiurnal(i*3-6), rng)
			traces = append(traces, tr)
			if u := tr.Uptime(); u > maxUp {
				maxUp = u
			}
		}
		u, err := UnionUptime(traces)
		return err == nil && u >= maxUp-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
