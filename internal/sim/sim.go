// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, a binary-heap event queue, and named RNG streams. All
// S-CDN dynamics — transfers, churn, client requests, allocation-server
// maintenance — run as events on this engine.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time. The zero value is the simulation epoch.
type Time time.Duration

// Seconds returns the time as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Duration converts back to a time.Duration offset from the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback.
type Event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events
	fn   func()
	dead bool
}

// Cancel prevents a pending event from firing. Cancelling a fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// At returns the event's scheduled time.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*Event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. Create with New; not safe for
// concurrent use (simulations are single-threaded by design so results are
// reproducible).
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	seed    int64
	streams map[string]*rand.Rand
	// processed counts fired (non-cancelled) events.
	processed uint64
}

// New returns an engine whose RNG streams derive from seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns how many events have fired.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns how many events are queued (including cancelled ones not
// yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Rand returns a named deterministic RNG stream. The same (seed, name)
// always yields the same sequence, independent of other streams' usage.
func (e *Engine) Rand(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, c := range name {
		h ^= uint64(c)
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(e.seed ^ int64(h)))
	e.streams[name] = r
	return r
}

// Schedule queues fn to run after delay. Negative delays run "now" (at the
// current time, after already-queued same-time events). It returns the
// Event so callers may cancel it.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	ev := &Event{at: e.now + Time(delay), seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleAt queues fn at an absolute virtual time. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step fires the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		e.processed++
		return true
	}
	return false
}

// Run fires events until the queue is empty or maxEvents have fired
// (0 = unlimited). It returns the number of events fired.
func (e *Engine) Run(maxEvents uint64) uint64 {
	fired := uint64(0)
	for maxEvents == 0 || fired < maxEvents {
		if !e.Step() {
			break
		}
		fired++
	}
	return fired
}

// RunUntil fires events with timestamps <= deadline, advancing the clock
// to exactly deadline afterwards. Events scheduled beyond the deadline
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Ticker schedules fn every interval until it returns false or the engine
// drains. The first firing happens one interval from now.
func (e *Engine) Ticker(interval time.Duration, fn func() bool) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	var tick func()
	tick = func() {
		if fn() {
			e.Schedule(interval, tick)
		}
	}
	e.Schedule(interval, tick)
}
