package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Millisecond, func() {})
		if e.Pending() > 10000 {
			e.Run(0)
		}
	}
	e.Run(0)
}

func BenchmarkEventThroughput(b *testing.B) {
	// Self-perpetuating event chain: measures pure dispatch cost.
	e := New(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	e.Run(0)
}

func BenchmarkRandStream(b *testing.B) {
	e := New(1)
	r := e.Rand("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
