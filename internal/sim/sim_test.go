package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Processed() != 0 {
		t.Fatalf("processed = %d, want 0", e.Processed())
	}
}

func TestCancelTwiceHarmless(t *testing.T) {
	e := New(1)
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	ev.Cancel()
	e.Run(0)
}

func TestNegativeDelayRunsNow(t *testing.T) {
	e := New(1)
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != Time(time.Second) {
				t.Errorf("negative delay ran at %v", e.Now())
			}
		})
	})
	e.Run(0)
}

func TestScheduleAtClampsPast(t *testing.T) {
	e := New(1)
	e.Schedule(2*time.Second, func() {
		e.ScheduleAt(Time(time.Second), func() {
			if e.Now() < Time(2*time.Second) {
				t.Error("past-scheduled event ran before now")
			}
		})
	})
	e.Run(0)
}

func TestRunMaxEvents(t *testing.T) {
	e := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	if fired := e.Run(4); fired != 4 {
		t.Fatalf("fired = %d, want 4", fired)
	}
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []int
	for i := 1; i <= 5; i++ {
		i := i
		e.Schedule(time.Duration(i)*time.Second, func() { fired = append(fired, i) })
	}
	e.RunUntil(Time(3 * time.Second))
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want first 3", fired)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("now = %v, want 3s", e.Now())
	}
	e.RunUntil(Time(10 * time.Second))
	if len(fired) != 5 {
		t.Fatalf("fired = %v, want all 5", fired)
	}
	if e.Now() != Time(10*time.Second) {
		t.Fatalf("now = %v, want clamped to deadline 10s", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	count := 0
	e.Ticker(time.Second, func() bool {
		count++
		return count < 5
	})
	e.Run(0)
	if count != 5 {
		t.Fatalf("ticker fired %d times, want 5", count)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("now = %v, want 5s", e.Now())
	}
}

func TestTickerPanicsOnZeroInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Ticker(0, func() bool { return false })
}

func TestRandStreamsIndependentAndDeterministic(t *testing.T) {
	e1 := New(42)
	e2 := New(42)
	// Consuming stream "a" must not perturb stream "b".
	_ = e1.Rand("a").Float64()
	b1 := e1.Rand("b").Float64()
	b2 := e2.Rand("b").Float64()
	if b1 != b2 {
		t.Fatalf("stream b differs despite same seed: %v vs %v", b1, b2)
	}
	a1 := New(42).Rand("a").Float64()
	a2 := New(43).Rand("a").Float64()
	if a1 == a2 {
		t.Log("different seeds gave same first draw (unlikely)")
	}
}

func TestTimeHelpers(t *testing.T) {
	ti := Time(1500 * time.Millisecond)
	if ti.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", ti.Seconds())
	}
	if ti.Duration() != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", ti.Duration())
	}
	if ti.String() != "1.5s" {
		t.Fatalf("String = %q", ti.String())
	}
}

// Property: events fire in non-decreasing time order regardless of
// insertion order.
func TestPropertyMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		violated := false
		last := Time(-1)
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				if e.Now() < last {
					violated = true
				}
				last = e.Now()
			})
		}
		e.Run(0)
		return !violated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested scheduling from callbacks preserves ordering.
func TestPropertyNestedScheduling(t *testing.T) {
	f := func(seed int64) bool {
		e := New(seed)
		rng := e.Rand("gen")
		var times []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			times = append(times, e.Now())
			if depth < 3 {
				n := rng.Intn(3)
				for i := 0; i < n; i++ {
					e.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() { spawn(depth + 1) })
				}
			}
		}
		e.Schedule(0, func() { spawn(0) })
		e.Run(10000)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
