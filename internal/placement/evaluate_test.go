package placement

import (
	"math"
	"testing"

	"scdn/internal/graph"
)

func TestCoverageSetRadius1(t *testing.T) {
	g := path(7)
	cov := CoverageSet(g, []graph.NodeID{3}, 1)
	want := []graph.NodeID{2, 3, 4}
	if len(cov) != len(want) {
		t.Fatalf("coverage = %v, want %v", cov, want)
	}
	for _, u := range want {
		if _, ok := cov[u]; !ok {
			t.Fatalf("coverage missing %d", u)
		}
	}
}

func TestCoverageSetRadius2(t *testing.T) {
	g := path(9)
	cov := CoverageSet(g, []graph.NodeID{4}, 2)
	if len(cov) != 5 {
		t.Fatalf("radius-2 coverage size = %d, want 5", len(cov))
	}
}

func TestCoverageSetIgnoresAbsentReplica(t *testing.T) {
	g := path(3)
	cov := CoverageSet(g, []graph.NodeID{99}, 1)
	if len(cov) != 0 {
		t.Fatalf("absent replica covered %v", cov)
	}
}

func TestHitRateCounting(t *testing.T) {
	// Graph: path 0-1-2-3-4. Replica at 1 covers {0,1,2}.
	g := path(5)
	events := []Event{
		{0, 2},    // both covered → 2 hits of 2 in-graph
		{3, 99},   // 3 uncovered, 99 absent → 0 hits of 1 in-graph
		{98, 97},  // no author in graph → event skipped entirely
		{4, 4, 1}, // duplicate instances: 4 (miss), 4 (miss), 1 (hit)
	}
	covered := CoverageSet(g, []graph.NodeID{1}, 1)
	inG, incl := hitRate(g, keepQualifying(g, events), covered)
	// In-graph instances: 2 + 1 + 3 = 6, hits 2+0+1 = 3 → 50%.
	if math.Abs(inG-50) > 1e-9 {
		t.Fatalf("in-graph hit rate = %v, want 50", inG)
	}
	// All instances of kept events: 2 + 2 + 3 = 7 → inclusive 3/7.
	want := 100 * 3.0 / 7.0
	if math.Abs(incl-want) > 1e-9 {
		t.Fatalf("inclusive rate = %v, want %v", incl, want)
	}
}

func TestHitRateEmptyEvents(t *testing.T) {
	g := star(3)
	if inG, incl := hitRate(g, nil, nil); inG != 0 || incl != 0 {
		t.Fatalf("empty hit rate = %v/%v, want 0/0", inG, incl)
	}
}

func TestEvaluateDeterministicSeed(t *testing.T) {
	g := star(10)
	events := []Event{{1, 2, 3}, {4, 5}, {0, 6}}
	cfg := EvalConfig{Replicas: 2, Runs: 10, HitRadius: 1, Seed: 7}
	a := Evaluate(g, events, Random{}, cfg)
	b := Evaluate(g, events, Random{}, cfg)
	if a.HitRate != b.HitRate || a.StdDev != b.StdDev {
		t.Fatalf("same seed gave different results: %v vs %v", a, b)
	}
	c := Evaluate(g, events, Random{}, EvalConfig{Replicas: 2, Runs: 10, HitRadius: 1, Seed: 8})
	if a.HitRate == c.HitRate && a.StdDev == c.StdDev {
		t.Log("different seeds gave identical results (possible but unlikely)")
	}
}

func TestEvaluateHubPerfect(t *testing.T) {
	// Replica on the star hub covers every node: NodeDegree must score 100%
	// for events drawn entirely from the graph.
	g := star(12)
	events := []Event{{1, 2, 3}, {4, 5, 6}, {7, 0}}
	res := Evaluate(g, events, NodeDegree{}, EvalConfig{Replicas: 1, Runs: 5, Seed: 1})
	if res.HitRate != 100 {
		t.Fatalf("hub hit rate = %v, want 100", res.HitRate)
	}
	if res.StdDev != 0 {
		t.Fatalf("deterministic placement stddev = %v, want 0", res.StdDev)
	}
}

func TestEvaluateDilutionByNewAuthors(t *testing.T) {
	g := star(4)
	// Half the instances are unknown authors: excluded from HitRate (the
	// paper's metric) but counted in InclusiveRate.
	events := []Event{{1, 101}, {2, 102}}
	res := Evaluate(g, events, NodeDegree{}, EvalConfig{Replicas: 1, Runs: 3, Seed: 1})
	if res.HitRate != 100 {
		t.Fatalf("in-graph hit rate = %v, want 100", res.HitRate)
	}
	if res.InclusiveRate != 50 {
		t.Fatalf("inclusive rate = %v, want 50", res.InclusiveRate)
	}
}

func TestSeriesMonotoneForGreedyCover(t *testing.T) {
	g := twoStars(8)
	events := []Event{{1, 2}, {101, 102}, {0, 100}, {3, 103}}
	series := Series(g, events, GreedyCover{}, 4, EvalConfig{Runs: 3, Seed: 2})
	if len(series) != 4 {
		t.Fatalf("series length = %d, want 4", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].HitRate < series[i-1].HitRate-1e-9 {
			t.Fatalf("greedy cover hit rate decreased: %v", series)
		}
	}
	if series[0].Replicas != 1 || series[3].Replicas != 4 {
		t.Fatalf("replica counts wrong: %+v", series)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(m-5) > 1e-9 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if math.Abs(s-2.138089935) > 1e-6 {
		t.Fatalf("sample stddev = %v, want ~2.138", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Fatal("empty meanStd should be 0,0")
	}
	if _, s := meanStd([]float64{3}); s != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
}

func TestEvaluateParallelMatchesSerial(t *testing.T) {
	g := twoStars(10)
	var events []Event
	for i := 1; i <= 10; i++ {
		events = append(events, Event{graph.NodeID(i), graph.NodeID(100 + i)})
	}
	base := EvalConfig{Replicas: 3, Runs: 40, HitRadius: 1, Seed: 99}
	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8
	for _, alg := range PaperAlgorithms() {
		s := Evaluate(g, events, alg, serial)
		p := Evaluate(g, events, alg, parallel)
		if s.HitRate != p.HitRate || s.StdDev != p.StdDev || s.InclusiveRate != p.InclusiveRate {
			t.Fatalf("%s: serial %+v != parallel %+v", alg.Name(), s, p)
		}
	}
}

func TestEvaluateWorkersClamped(t *testing.T) {
	g := star(5)
	events := []Event{{1, 2}}
	// More workers than runs must not deadlock or panic.
	res := Evaluate(g, events, Random{}, EvalConfig{Replicas: 1, Runs: 2, Workers: 64, Seed: 1})
	if res.HitRate < 0 || res.HitRate > 100 {
		t.Fatalf("rate = %v", res.HitRate)
	}
}
