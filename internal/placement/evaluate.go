package placement

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"scdn/internal/graph"
)

// Event is one future collaboration: the author list of a test-period
// publication. The evaluator skips events with no author inside the
// subgraph (the paper only considers 2011 publications "coauthored by at
// least one author in the subgraphs").
type Event []graph.NodeID

// EvalConfig controls hit-rate evaluation.
type EvalConfig struct {
	// Replicas is the number of replicas to place.
	Replicas int
	// Runs is how many placements to average over (the paper uses 100
	// "to account for randomness").
	Runs int
	// HitRadius is the maximum hop distance from a replica that counts as
	// a hit; the paper uses 1 ("an author with a direct link to a
	// replica").
	HitRadius int
	// Seed seeds the run RNGs; the same seed reproduces the same estimate
	// regardless of parallelism (each run derives its own stream).
	Seed int64
	// Workers bounds the goroutines evaluating runs in parallel. Zero
	// uses GOMAXPROCS; 1 forces serial evaluation. Results are identical
	// for any worker count.
	Workers int
}

// Result is an averaged hit-rate measurement.
type Result struct {
	Algorithm string
	Replicas  int
	// HitRate is the paper's metric: the mean percentage of in-subgraph
	// test author instances within HitRadius of a replica ("we report
	// misses only when the author exists in the subgraph").
	HitRate float64
	// InclusiveRate additionally counts authors absent from the subgraph
	// as misses — the paper notes these are constant across algorithms
	// and "reduce the overall hit ratio".
	InclusiveRate float64
	// StdDev is the standard deviation of the per-run HitRate values.
	StdDev float64
}

// Evaluate measures the replica hit rate of alg on g for the given events,
// reproducing the paper's Section VI methodology: replicas are placed on
// the (training) subgraph, then every author instance of every qualifying
// event is scored — a hit if the author is in the subgraph and within
// HitRadius hops of a replica, a miss otherwise (including authors absent
// from the subgraph, which dilute the rate identically for every
// algorithm).
func Evaluate(g *graph.Graph, events []Event, alg Algorithm, cfg EvalConfig) Result {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.HitRadius <= 0 {
		cfg.HitRadius = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	kept := keepQualifying(g, events)

	// Each run gets its own derived RNG stream, so the estimate is
	// identical whether runs execute serially or across workers.
	rates := make([]float64, cfg.Runs)
	inclusive := make([]float64, cfg.Runs)
	evalRun := func(run int) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(run)*0x9E3779B9))
		replicas := alg.Place(g, cfg.Replicas, rng)
		covered := CoverageSet(g, replicas, cfg.HitRadius)
		rates[run], inclusive[run] = hitRate(g, kept, covered)
	}
	if workers == 1 {
		for run := 0; run < cfg.Runs; run++ {
			evalRun(run)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for run := range next {
					evalRun(run)
				}
			}()
		}
		for run := 0; run < cfg.Runs; run++ {
			next <- run
		}
		close(next)
		wg.Wait()
	}
	mean, sd := meanStd(rates)
	inclMean, _ := meanStd(inclusive)
	return Result{Algorithm: alg.Name(), Replicas: cfg.Replicas,
		HitRate: mean, InclusiveRate: inclMean, StdDev: sd}
}

// Series evaluates alg for every replica count 1..maxReplicas, returning
// one Result per count — one curve of the paper's Fig. 3.
func Series(g *graph.Graph, events []Event, alg Algorithm, maxReplicas int, cfg EvalConfig) []Result {
	out := make([]Result, 0, maxReplicas)
	for k := 1; k <= maxReplicas; k++ {
		c := cfg
		c.Replicas = k
		// Decorrelate runs across k while keeping the whole series
		// reproducible from cfg.Seed.
		c.Seed = cfg.Seed + int64(k)*1e6
		out = append(out, Evaluate(g, events, alg, c))
	}
	return out
}

// CoverageSet returns all nodes within radius hops of any replica
// (replicas included).
func CoverageSet(g *graph.Graph, replicas []graph.NodeID, radius int) map[graph.NodeID]struct{} {
	covered := make(map[graph.NodeID]struct{})
	for _, r := range replicas {
		if !g.HasNode(r) {
			continue
		}
		covered[r] = struct{}{}
		if radius == 1 {
			for _, v := range g.Neighbors(r) {
				covered[v] = struct{}{}
			}
			continue
		}
		for u, d := range g.BFSFrom(r) {
			if d <= radius {
				covered[u] = struct{}{}
			}
		}
	}
	return covered
}

// keepQualifying filters events to those with at least one author in g.
func keepQualifying(g *graph.Graph, events []Event) []Event {
	kept := make([]Event, 0, len(events))
	for _, ev := range events {
		for _, a := range ev {
			if g.HasNode(a) {
				kept = append(kept, ev)
				break
			}
		}
	}
	return kept
}

// hitRate returns the paper's in-subgraph hit percentage and the inclusive
// percentage that also counts out-of-subgraph authors as misses.
func hitRate(g *graph.Graph, events []Event, covered map[graph.NodeID]struct{}) (inGraph, inclusive float64) {
	hits, inTotal, allTotal := 0, 0, 0
	for _, ev := range events {
		for _, a := range ev {
			allTotal++
			if !g.HasNode(a) {
				continue // out-of-subgraph author: excluded from HitRate
			}
			inTotal++
			if _, ok := covered[a]; ok {
				hits++
			}
		}
	}
	if inTotal > 0 {
		inGraph = 100 * float64(hits) / float64(inTotal)
	}
	if allTotal > 0 {
		inclusive = 100 * float64(hits) / float64(allTotal)
	}
	return inGraph, inclusive
}

func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(len(xs)-1))
}
