// Package placement implements the S-CDN replica placement algorithms of
// the paper's Section VI case study — Random, Node Degree, Community Node
// Degree, and Clustering Coefficient — together with the architecture
// section's extensions (Betweenness, Closeness, Availability Cover, Social
// Score) and the hit-rate evaluator used to produce Fig. 3.
//
// Algorithms operate on plain graphs (any social substrate); the evaluator
// consumes "events" — author lists of future publications — so it is
// decoupled from the coauthorship model.
package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"scdn/internal/graph"
)

// Algorithm selects k replica locations in a social graph. Randomized
// algorithms draw from rng; deterministic ones ignore it. Implementations
// must not mutate g.
type Algorithm interface {
	// Name returns the algorithm's display name (matches the paper's
	// legend where applicable).
	Name() string
	// Place returns min(k, |V|) distinct node IDs.
	Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID
}

// Random places replicas uniformly at random (paper algorithm 1).
type Random struct{}

// Name implements Algorithm.
func (Random) Name() string { return "Random" }

// Place implements Algorithm.
func (Random) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	nodes := g.Nodes()
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	if k > len(nodes) {
		k = len(nodes)
	}
	return nodes[:k]
}

// NodeDegree places replicas on the k highest-degree nodes (paper
// algorithm 2). Ties are broken randomly so repeated runs explore
// equivalent placements.
type NodeDegree struct{}

// Name implements Algorithm.
func (NodeDegree) Name() string { return "Node Degree" }

// Place implements Algorithm.
func (NodeDegree) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	ranked := rankWithRandomTies(g.DegreeScores(), rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// CommunityNodeDegree places replicas on high-degree nodes under the
// constraint that no two replicas are direct neighbours (paper algorithm
// 3: a community — a node and its direct neighbours — "elects" at most one
// replica). When the constraint exhausts the graph, remaining slots fall
// back to the highest-degree unselected nodes.
type CommunityNodeDegree struct{}

// Name implements Algorithm.
func (CommunityNodeDegree) Name() string { return "Community Node Degree" }

// Place implements Algorithm.
func (CommunityNodeDegree) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	ranked := rankWithRandomTies(g.DegreeScores(), rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	chosen := make([]graph.NodeID, 0, k)
	blocked := make(map[graph.NodeID]struct{})
	taken := make(map[graph.NodeID]struct{})
	for _, u := range ranked {
		if len(chosen) == k {
			return chosen
		}
		if _, bad := blocked[u]; bad {
			continue
		}
		chosen = append(chosen, u)
		taken[u] = struct{}{}
		blocked[u] = struct{}{}
		for _, v := range g.Neighbors(u) {
			blocked[v] = struct{}{}
		}
	}
	// Constraint exhausted: fill from the top of the ranking.
	for _, u := range ranked {
		if len(chosen) == k {
			break
		}
		if _, dup := taken[u]; !dup {
			chosen = append(chosen, u)
			taken[u] = struct{}{}
		}
	}
	return chosen
}

// ClusteringCoefficient places replicas on the k nodes with the highest
// local clustering coefficient (paper algorithm 4). Many nodes tie at
// coefficient 1.0, so ties are broken randomly; the paper observes this
// algorithm performs poorly because high-clustering nodes sit in small
// tight clusters.
type ClusteringCoefficient struct{}

// Name implements Algorithm.
func (ClusteringCoefficient) Name() string { return "Clustering Coefficient" }

// Place implements Algorithm.
func (ClusteringCoefficient) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	ranked := rankWithRandomTies(g.ClusteringScores(), rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// Betweenness places replicas on the k nodes with the highest betweenness
// centrality (Section V-D extension).
type Betweenness struct{}

// Name implements Algorithm.
func (Betweenness) Name() string { return "Betweenness" }

// Place implements Algorithm.
func (Betweenness) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	ranked := rankWithRandomTies(g.Betweenness(), rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// Closeness places replicas on the k nodes with the highest closeness
// centrality (Section V-D extension).
type Closeness struct{}

// Name implements Algorithm.
func (Closeness) Name() string { return "Closeness" }

// Place implements Algorithm.
func (Closeness) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	ranked := rankWithRandomTies(g.Closeness(), rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// SocialScore combines degree, betweenness, and inverse clustering into a
// single score, after the Social CDN cache-selection idea the paper cites
// ([19]/[20]): central, well-connected nodes that are not buried inside a
// single tight cluster.
type SocialScore struct {
	// DegreeWeight, BetweennessWeight, and SpreadWeight default to 1, 1,
	// and 0.5 when zero-valued via NewSocialScore.
	DegreeWeight, BetweennessWeight, SpreadWeight float64
}

// NewSocialScore returns a SocialScore with the default weights.
func NewSocialScore() SocialScore {
	return SocialScore{DegreeWeight: 1, BetweennessWeight: 1, SpreadWeight: 0.5}
}

// Name implements Algorithm.
func (SocialScore) Name() string { return "Social Score" }

// Place implements Algorithm.
func (s SocialScore) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	deg := normalize(g.DegreeScores())
	bet := normalize(g.Betweenness())
	clu := g.ClusteringScores()
	score := make(map[graph.NodeID]float64, g.NumNodes())
	for _, u := range g.Nodes() {
		score[u] = s.DegreeWeight*deg[u] + s.BetweennessWeight*bet[u] + s.SpreadWeight*(1-clu[u])
	}
	ranked := rankWithRandomTies(score, rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// GreedyCover places replicas to greedily maximize 1-hop coverage: each
// step picks the node whose closed neighbourhood covers the most
// still-uncovered nodes. It is the strongest static 1-hop-coverage
// baseline and serves as an upper-reference in ablations.
type GreedyCover struct{}

// Name implements Algorithm.
func (GreedyCover) Name() string { return "Greedy Cover" }

// Place implements Algorithm.
func (GreedyCover) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	if k > g.NumNodes() {
		k = g.NumNodes()
	}
	covered := make(map[graph.NodeID]struct{})
	taken := make(map[graph.NodeID]struct{})
	chosen := make([]graph.NodeID, 0, k)
	nodes := g.Nodes()
	for len(chosen) < k {
		var best graph.NodeID
		bestGain := -1
		for _, u := range nodes {
			if _, dup := taken[u]; dup {
				continue
			}
			gain := 0
			if _, ok := covered[u]; !ok {
				gain++
			}
			for _, v := range g.Neighbors(u) {
				if _, ok := covered[v]; !ok {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, best = gain, u
			}
		}
		chosen = append(chosen, best)
		taken[best] = struct{}{}
		covered[best] = struct{}{}
		for _, v := range g.Neighbors(best) {
			covered[v] = struct{}{}
		}
	}
	return chosen
}

// PaperAlgorithms returns the four algorithms evaluated in the paper's
// Fig. 3, in the paper's legend order.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{Random{}, NodeDegree{}, CommunityNodeDegree{}, ClusteringCoefficient{}}
}

// ExtendedAlgorithms returns the Section V-D extension algorithms
// implemented beyond the paper's evaluation.
func ExtendedAlgorithms() []Algorithm {
	return []Algorithm{Betweenness{}, Closeness{}, NewSocialScore(), GreedyCover{}}
}

// ByName returns the algorithm with the given display name.
func ByName(name string) (Algorithm, error) {
	for _, a := range append(PaperAlgorithms(), ExtendedAlgorithms()...) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("placement: unknown algorithm %q", name)
}

// rankWithRandomTies orders nodes by descending score, shuffling nodes
// that share a score so that tie order varies between runs.
func rankWithRandomTies(scores map[graph.NodeID]float64, rng *rand.Rand) []graph.NodeID {
	ranked := graph.RankByScore(scores)
	out := make([]graph.NodeID, len(ranked))
	for i, r := range ranked {
		out[i] = r.Node
	}
	// Shuffle each maximal run of equal scores.
	start := 0
	for i := 1; i <= len(ranked); i++ {
		if i == len(ranked) || ranked[i].Score != ranked[start].Score {
			run := out[start:i]
			rng.Shuffle(len(run), func(a, b int) { run[a], run[b] = run[b], run[a] })
			start = i
		}
	}
	return out
}

// normalize scales scores into [0,1] by the maximum (all-zero input stays
// zero).
func normalize(scores map[graph.NodeID]float64) map[graph.NodeID]float64 {
	max := 0.0
	for _, v := range scores {
		if v > max {
			max = v
		}
	}
	out := make(map[graph.NodeID]float64, len(scores))
	for u, v := range scores {
		if max > 0 {
			out[u] = v / max
		}
	}
	return out
}

// sortNodes sorts a node slice ascending in place and returns it (test
// convenience shared across files).
func sortNodes(ids []graph.NodeID) []graph.NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
