package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scdn/internal/graph"
)

func star(n int) *graph.Graph {
	g := graph.New()
	for i := 1; i <= n; i++ {
		g.AddEdge(0, graph.NodeID(i))
	}
	return g
}

func path(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return g
}

// twoStars builds two stars with hubs 0 and 100, bridged by an edge.
func twoStars(leaves int) *graph.Graph {
	g := graph.New()
	for i := 1; i <= leaves; i++ {
		g.AddEdge(0, graph.NodeID(i))
		g.AddEdge(100, graph.NodeID(100+i))
	}
	g.AddEdge(0, 100)
	return g
}

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func hasDup(ids []graph.NodeID) bool {
	seen := make(map[graph.NodeID]struct{})
	for _, u := range ids {
		if _, dup := seen[u]; dup {
			return true
		}
		seen[u] = struct{}{}
	}
	return false
}

func TestRandomPlacesDistinct(t *testing.T) {
	g := path(20)
	p := Random{}.Place(g, 10, rng(1))
	if len(p) != 10 || hasDup(p) {
		t.Fatalf("Random placement invalid: %v", p)
	}
}

func TestRandomClampsToGraph(t *testing.T) {
	g := path(3)
	p := Random{}.Place(g, 10, rng(1))
	if len(p) != 3 {
		t.Fatalf("len = %d, want 3", len(p))
	}
}

func TestNodeDegreePicksHub(t *testing.T) {
	g := star(8)
	p := NodeDegree{}.Place(g, 1, rng(1))
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("NodeDegree on star = %v, want [0]", p)
	}
}

func TestNodeDegreeOrdering(t *testing.T) {
	g := twoStars(5)
	p := NodeDegree{}.Place(g, 2, rng(1))
	got := map[graph.NodeID]bool{p[0]: true, p[1]: true}
	if !got[0] || !got[100] {
		t.Fatalf("NodeDegree top-2 = %v, want hubs 0 and 100", p)
	}
}

func TestCommunityNodeDegreeAvoidsNeighbors(t *testing.T) {
	// Star: hub and leaves are all mutually adjacent to the hub; after
	// choosing the hub, every leaf is blocked, so the fallback fills with
	// highest-degree remaining (leaves).
	g := star(5)
	p := CommunityNodeDegree{}.Place(g, 3, rng(1))
	if len(p) != 3 {
		t.Fatalf("len = %d, want 3", len(p))
	}
	if p[0] != 0 {
		t.Fatalf("first pick = %d, want hub 0", p[0])
	}
}

func TestCommunityNodeDegreeSpreads(t *testing.T) {
	// Two bridged stars: second pick must be the other hub even though
	// leaves of the first hub are blocked; the two hubs are adjacent via
	// the bridge, so the non-adjacency constraint forces... the bridge
	// makes hubs adjacent, so after hub 0 the hub 100 is blocked and the
	// constraint picks a leaf; verify no two chosen are adjacent.
	g := twoStars(6)
	p := CommunityNodeDegree{}.Place(g, 2, rng(1))
	if len(p) != 2 {
		t.Fatalf("len = %d", len(p))
	}
	if g.HasEdge(p[0], p[1]) {
		t.Fatalf("chosen replicas %v are adjacent", p)
	}
}

func TestCommunityNodeDegreeFallback(t *testing.T) {
	// Complete graph: after one pick everything is blocked; fallback must
	// still deliver k distinct replicas.
	g := graph.New()
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	p := CommunityNodeDegree{}.Place(g, 4, rng(1))
	if len(p) != 4 || hasDup(p) {
		t.Fatalf("fallback placement invalid: %v", p)
	}
}

func TestClusteringCoefficientPrefersCliques(t *testing.T) {
	// A triangle (clustering 1) attached to a long path (clustering 0).
	g := path(10)
	g.AddEdge(20, 21)
	g.AddEdge(21, 22)
	g.AddEdge(20, 22)
	g.AddEdge(9, 20) // connect
	p := ClusteringCoefficient{}.Place(g, 2, rng(1))
	for _, u := range p {
		if u != 21 && u != 22 {
			// node 20 has a path neighbour so its clustering is 1/3.
			t.Fatalf("clustering picked %v, want triangle nodes 21/22", p)
		}
	}
}

func TestBetweennessPicksBridge(t *testing.T) {
	// Two stars bridged via hubs: hubs have the highest betweenness.
	g := twoStars(6)
	p := Betweenness{}.Place(g, 2, rng(1))
	got := map[graph.NodeID]bool{p[0]: true, p[1]: true}
	if !got[0] || !got[100] {
		t.Fatalf("Betweenness top-2 = %v, want hubs", p)
	}
}

func TestClosenessPicksCenter(t *testing.T) {
	g := path(9)
	p := Closeness{}.Place(g, 1, rng(1))
	if p[0] != 4 {
		t.Fatalf("Closeness on path = %v, want center 4", p)
	}
}

func TestSocialScorePicksHub(t *testing.T) {
	g := twoStars(6)
	p := NewSocialScore().Place(g, 2, rng(1))
	got := map[graph.NodeID]bool{p[0]: true, p[1]: true}
	if !got[0] || !got[100] {
		t.Fatalf("SocialScore top-2 = %v, want hubs", p)
	}
}

func TestGreedyCoverCoversStarThenFar(t *testing.T) {
	g := twoStars(6)
	p := GreedyCover{}.Place(g, 2, rng(1))
	got := map[graph.NodeID]bool{p[0]: true, p[1]: true}
	if !got[0] || !got[100] {
		t.Fatalf("GreedyCover = %v, want both hubs", p)
	}
	covered := CoverageSet(g, p, 1)
	if len(covered) != g.NumNodes() {
		t.Fatalf("two hubs should cover all %d nodes, covered %d", g.NumNodes(), len(covered))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Random", "Node Degree", "Community Node Degree",
		"Clustering Coefficient", "Betweenness", "Closeness", "Social Score", "Greedy Cover"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should error")
	}
}

// Property: every algorithm returns min(k,|V|) distinct existing nodes.
func TestPropertyPlacementsValid(t *testing.T) {
	algs := append(PaperAlgorithms(), ExtendedAlgorithms()...)
	f := func(seed int64, kRaw uint8) bool {
		r := rng(seed)
		g := graph.New()
		n := 15
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.2 {
					g.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		k := int(kRaw%20) + 1
		want := k
		if want > n {
			want = n
		}
		for _, alg := range algs {
			p := alg.Place(g, k, r)
			if len(p) != want || hasDup(p) {
				t.Logf("%s returned %v for k=%d", alg.Name(), p, k)
				return false
			}
			for _, u := range p {
				if !g.HasNode(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRankWithRandomTiesPermutesTies(t *testing.T) {
	scores := map[graph.NodeID]float64{1: 5, 2: 5, 3: 5, 4: 5, 5: 1}
	seen := make(map[graph.NodeID]bool)
	for s := int64(0); s < 20; s++ {
		r := rankWithRandomTies(scores, rng(s))
		if r[4] != 5 {
			t.Fatalf("lowest score should stay last, got %v", r)
		}
		seen[r[0]] = true
	}
	if len(seen) < 2 {
		t.Fatalf("tie order never varied across seeds: %v", seen)
	}
}

func TestSortNodesHelper(t *testing.T) {
	ids := sortNodes([]graph.NodeID{3, 1, 2})
	if ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("sortNodes = %v", ids)
	}
}
