package placement

import (
	"math/rand"
	"testing"

	"scdn/internal/graph"
)

// benchGraph approximates the case-study baseline: ~2000 nodes with a
// heavy-tailed degree distribution (preferential attachment).
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	g := graph.New()
	var endpoints []graph.NodeID
	g.AddEdge(0, 1)
	endpoints = append(endpoints, 0, 1)
	for i := graph.NodeID(2); i < 2000; i++ {
		for d := 0; d < 8; d++ {
			target := endpoints[rng.Intn(len(endpoints))]
			g.AddEdge(i, target)
			endpoints = append(endpoints, i, target)
		}
	}
	return g
}

func benchPlace(b *testing.B, alg Algorithm) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = alg.Place(g, 10, rng)
	}
}

func BenchmarkPlaceRandom(b *testing.B)        { benchPlace(b, Random{}) }
func BenchmarkPlaceNodeDegree(b *testing.B)    { benchPlace(b, NodeDegree{}) }
func BenchmarkPlaceCommunityND(b *testing.B)   { benchPlace(b, CommunityNodeDegree{}) }
func BenchmarkPlaceClustering(b *testing.B)    { benchPlace(b, ClusteringCoefficient{}) }
func BenchmarkPlaceCloseness(b *testing.B)     { benchPlace(b, Closeness{}) }
func BenchmarkPlaceGreedyCover(b *testing.B)   { benchPlace(b, GreedyCover{}) }
func BenchmarkPlaceSocialScore(b *testing.B)   { benchPlace(b, NewSocialScore()) }
func BenchmarkPlaceTrustWeighted(b *testing.B) { benchPlace(b, TrustWeightedDegree{}) }

func BenchmarkEvaluateHitRate(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(11))
	events := make([]Event, 500)
	for i := range events {
		ev := make(Event, 5)
		for j := range ev {
			ev[j] = graph.NodeID(rng.Intn(2200)) // some authors outside the graph
		}
		events[i] = ev
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Evaluate(g, events, CommunityNodeDegree{}, EvalConfig{
			Replicas: 10, Runs: 10, HitRadius: 1, Seed: int64(i),
		})
	}
}
