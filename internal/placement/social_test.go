package placement

import (
	"testing"

	"scdn/internal/graph"
)

func TestTrustWeightedDegreeReducesToDegree(t *testing.T) {
	g := twoStars(5)
	unit := TrustWeightedDegree{} // nil weights = unit
	p := unit.Place(g, 2, rng(1))
	got := map[graph.NodeID]bool{p[0]: true, p[1]: true}
	if !got[0] || !got[100] {
		t.Fatalf("unit-weight TWD = %v, want hubs", p)
	}
}

func TestTrustWeightedDegreeFollowsTrust(t *testing.T) {
	// Path 0-1-2: node 1 has degree 2, nodes 0 and 2 degree 1. With heavy
	// trust on edge (0,1) only, node 0's weighted degree (10) beats node
	// 1's (10+1=11)... so weight edge (2,?) nothing: ranking: 1 (11),
	// 0 (10), 2 (1).
	g := path(3)
	weights := map[[2]graph.NodeID]float64{{0, 1}: 10}
	alg := TrustWeightedDegree{Weights: func(u, v graph.NodeID) float64 {
		if u > v {
			u, v = v, u
		}
		if w, ok := weights[[2]graph.NodeID{u, v}]; ok {
			return w
		}
		return 1
	}}
	p := alg.Place(g, 2, rng(1))
	if p[0] != 1 || p[1] != 0 {
		t.Fatalf("TWD ranking = %v, want [1 0]", p)
	}
}

func TestAvailabilityAwareDegreeSkipsFlakyHub(t *testing.T) {
	// Two bridged stars; hub 0 is nearly always offline, hub 100 is solid.
	g := twoStars(6)
	alg := AvailabilityAwareDegree{Quality: func(u graph.NodeID) float64 {
		if u == 0 {
			return 0.05
		}
		return 0.95
	}}
	p := alg.Place(g, 1, rng(1))
	if p[0] != 100 {
		t.Fatalf("AAD picked %v, want reliable hub 100", p)
	}
}

func TestAvailabilityAwareDegreeNonAdjacent(t *testing.T) {
	g := twoStars(6)
	alg := AvailabilityAwareDegree{Quality: func(graph.NodeID) float64 { return 1 }}
	p := alg.Place(g, 2, rng(1))
	if len(p) != 2 || g.HasEdge(p[0], p[1]) {
		t.Fatalf("AAD placed adjacent replicas: %v", p)
	}
}

func TestAvailabilityAwareDegreeNegativeQualityClamped(t *testing.T) {
	g := star(4)
	alg := AvailabilityAwareDegree{Quality: func(u graph.NodeID) float64 { return -1 }}
	p := alg.Place(g, 2, rng(1))
	if len(p) != 2 || hasDup(p) {
		t.Fatalf("AAD with degenerate quality = %v", p)
	}
}

func TestAvailabilityAwareDegreeFallbackFills(t *testing.T) {
	// Complete graph: after one pick all are blocked; fallback must fill.
	g := graph.New()
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	alg := AvailabilityAwareDegree{}
	p := alg.Place(g, 3, rng(1))
	if len(p) != 3 || hasDup(p) {
		t.Fatalf("fallback = %v", p)
	}
}

func TestSocialAlgorithmNames(t *testing.T) {
	if (TrustWeightedDegree{}).Name() != "Trust-Weighted Degree" {
		t.Fatal("TWD name wrong")
	}
	if (AvailabilityAwareDegree{}).Name() != "Availability-Aware Degree" {
		t.Fatal("AAD name wrong")
	}
}
