package placement

import (
	"math/rand"

	"scdn/internal/graph"
)

// EdgeWeight supplies a weight for a graph edge — typically a pairwise
// trust score (Section III) or coauthorship count.
type EdgeWeight func(u, v graph.NodeID) float64

// NodeQuality supplies a per-node quality in [0,1] — typically uptime from
// the availability model (Section V-A: "QoS metrics can be used to select
// which participant is likely to be more trustworthy/reliable").
type NodeQuality func(u graph.NodeID) float64

// TrustWeightedDegree ranks nodes by the sum of their incident edge
// weights: a replica goes where the most proven trust concentrates. With
// unit weights it reduces to NodeDegree.
type TrustWeightedDegree struct {
	Weights EdgeWeight
}

// Name implements Algorithm.
func (TrustWeightedDegree) Name() string { return "Trust-Weighted Degree" }

// Place implements Algorithm.
func (t TrustWeightedDegree) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	scores := make(map[graph.NodeID]float64, g.NumNodes())
	for _, u := range g.Nodes() {
		sum := 0.0
		for _, v := range g.Neighbors(u) {
			w := 1.0
			if t.Weights != nil {
				w = t.Weights(u, v)
			}
			sum += w
		}
		scores[u] = sum
	}
	ranked := rankWithRandomTies(scores, rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// AvailabilityAwareDegree scores nodes by degree × quality and, like
// Community Node Degree, forbids adjacent replicas. It realizes the
// Section V-D idea of "combining socially based algorithms ... with
// availability graphs": a well-connected node that is rarely online is a
// poor replica host.
type AvailabilityAwareDegree struct {
	Quality NodeQuality
}

// Name implements Algorithm.
func (AvailabilityAwareDegree) Name() string { return "Availability-Aware Degree" }

// Place implements Algorithm.
func (a AvailabilityAwareDegree) Place(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	scores := make(map[graph.NodeID]float64, g.NumNodes())
	for _, u := range g.Nodes() {
		q := 1.0
		if a.Quality != nil {
			q = a.Quality(u)
			if q < 0 {
				q = 0
			}
		}
		scores[u] = float64(g.Degree(u)) * q
	}
	ranked := rankWithRandomTies(scores, rng)
	if k > len(ranked) {
		k = len(ranked)
	}
	chosen := make([]graph.NodeID, 0, k)
	blocked := make(map[graph.NodeID]struct{})
	taken := make(map[graph.NodeID]struct{})
	for _, u := range ranked {
		if len(chosen) == k {
			return chosen
		}
		if _, bad := blocked[u]; bad {
			continue
		}
		chosen = append(chosen, u)
		taken[u] = struct{}{}
		blocked[u] = struct{}{}
		for _, v := range g.Neighbors(u) {
			blocked[v] = struct{}{}
		}
	}
	for _, u := range ranked {
		if len(chosen) == k {
			break
		}
		if _, dup := taken[u]; !dup {
			chosen = append(chosen, u)
			taken[u] = struct{}{}
		}
	}
	return chosen
}
