package cdnclient

import (
	"errors"
	"testing"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

type fakeAuth struct{ deny bool }

func (f *fakeAuth) Authorize(tok socialnet.Token, id storage.DatasetID) (socialnet.UserID, error) {
	if f.deny {
		return 0, errors.New("denied")
	}
	return 1, nil
}

type fakeResolver struct {
	replica    allocation.Replica
	found      bool
	bytes      int64
	origin     allocation.NodeID
	resolveErr error
}

func (f *fakeResolver) Resolve(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error) {
	return f.replica, f.found, f.resolveErr
}
func (f *fakeResolver) DatasetBytes(id storage.DatasetID) (int64, error) { return f.bytes, nil }
func (f *fakeResolver) Origin(id storage.DatasetID) (allocation.NodeID, error) {
	return f.origin, nil
}

type fakeFetcher struct {
	ok      bool
	submitE error
	fetches int
}

func (f *fakeFetcher) Fetch(src, dst allocation.NodeID, bytes int64,
	done func(bool, time.Duration, float64)) error {
	f.fetches++
	if f.submitE != nil {
		return f.submitE
	}
	done(f.ok, time.Second, 80)
	return nil
}

func setup(t *testing.T) (*Client, *fakeAuth, *fakeResolver, *fakeFetcher, *time.Duration) {
	t.Helper()
	repo, err := storage.NewRepository(1, 0, 1000, 400)
	if err != nil {
		t.Fatal(err)
	}
	auth := &fakeAuth{}
	res := &fakeResolver{replica: allocation.Replica{Node: 5, Site: 1}, found: true, bytes: 100, origin: 9}
	fet := &fakeFetcher{ok: true}
	now := new(time.Duration)
	c, err := New(1, "tok", repo, auth, res, fet, func() time.Duration { return *now })
	if err != nil {
		t.Fatal(err)
	}
	return c, auth, res, fet, now
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, "t", nil, &fakeAuth{}, &fakeResolver{}, &fakeFetcher{}, func() time.Duration { return 0 }); err == nil {
		t.Fatal("nil repo accepted")
	}
}

func access(t *testing.T, c *Client, id storage.DatasetID) AccessResult {
	t.Helper()
	var got *AccessResult
	c.Access(id, func(r AccessResult) { got = &r })
	if got == nil {
		t.Fatal("done not called")
	}
	return *got
}

func TestAccessLocalHit(t *testing.T) {
	c, _, _, fet, _ := setup(t)
	c.Repo.StoreUser("d", 50, 0)
	r := access(t, c, "d")
	if r.Outcome != LocalHit {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if fet.fetches != 0 {
		t.Fatal("local hit should not fetch")
	}
	if c.ByOutcome[LocalHit] != 1 || c.Accesses != 1 {
		t.Fatal("stats wrong")
	}
}

func TestAccessReplicaFetchStoresLocally(t *testing.T) {
	c, _, _, _, _ := setup(t)
	r := access(t, c, "d")
	if r.Outcome != ReplicaFetch || r.Source != 5 {
		t.Fatalf("result = %+v", r)
	}
	if r.ThroughputMbps != 80 {
		t.Fatalf("throughput = %v", r.ThroughputMbps)
	}
	if !c.Repo.HasLocal("d") {
		t.Fatal("fetched data not stored")
	}
	// Second access is a local hit.
	if r := access(t, c, "d"); r.Outcome != LocalHit {
		t.Fatalf("second access = %v", r.Outcome)
	}
}

func TestAccessOriginFetch(t *testing.T) {
	c, _, res, _, _ := setup(t)
	res.replica = allocation.Replica{Node: 9, Site: 2}
	res.origin = 9
	if r := access(t, c, "d"); r.Outcome != OriginFetch {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestAccessDenied(t *testing.T) {
	c, auth, _, fet, _ := setup(t)
	auth.deny = true
	r := access(t, c, "d")
	if r.Outcome != Denied || r.Err == nil {
		t.Fatalf("result = %+v", r)
	}
	if fet.fetches != 0 {
		t.Fatal("denied access should not fetch")
	}
}

func TestAccessUnavailable(t *testing.T) {
	c, _, res, _, _ := setup(t)
	res.found = false
	if r := access(t, c, "d"); r.Outcome != Unavailable {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	res.resolveErr = errors.New("boom")
	if r := access(t, c, "d"); r.Outcome != Unavailable || r.Err == nil {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestAccessTransferFailed(t *testing.T) {
	c, _, _, fet, _ := setup(t)
	fet.ok = false
	if r := access(t, c, "d"); r.Outcome != TransferFailed {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	fet.submitE = errors.New("submit failed")
	if r := access(t, c, "d"); r.Outcome != TransferFailed || r.Err == nil {
		t.Fatalf("outcome = %v", r.Outcome)
	}
}

func TestAccessSucceedsEvenIfStoreFails(t *testing.T) {
	c, _, res, _, _ := setup(t)
	res.bytes = 5000 // exceeds repo capacity: StoreUser fails
	r := access(t, c, "d")
	if r.Outcome != ReplicaFetch {
		t.Fatalf("outcome = %v, want ReplicaFetch despite store failure", r.Outcome)
	}
	if r.Err == nil {
		t.Fatal("store failure should surface in Err")
	}
}

func TestAccessElapsed(t *testing.T) {
	c, _, _, _, now := setup(t)
	// Simulate a clock that advances during fetch via the done callback:
	// fakeFetcher calls done synchronously, so advance before access to
	// check elapsed baseline = 0.
	*now = 5 * time.Second
	r := access(t, c, "d")
	if r.Elapsed != 0 {
		t.Fatalf("elapsed = %v with static clock", r.Elapsed)
	}
}

func TestHostReplicaAccept(t *testing.T) {
	c, _, _, _, _ := setup(t)
	var accepted, fetched bool
	c.HostReplica("rep", 9, 100, func(a, f bool) { accepted, fetched = a, f })
	if !accepted || !fetched {
		t.Fatalf("host = %v/%v", accepted, fetched)
	}
	if !c.Repo.HasReplica("rep") {
		t.Fatal("replica not stored")
	}
}

func TestHostReplicaRejectsWhenFull(t *testing.T) {
	c, _, _, fet, _ := setup(t)
	c.Repo.StoreReplica("existing", 400, 0) // fills the 400-byte reserve
	var accepted bool
	c.HostReplica("rep", 9, 100, func(a, f bool) { accepted = a })
	if accepted {
		t.Fatal("over-reserve placement accepted")
	}
	if fet.fetches != 0 {
		t.Fatal("rejected placement should not fetch")
	}
	// Duplicate replica also rejected.
	c2, _, _, _, _ := setup(t)
	c2.Repo.StoreReplica("rep", 10, 0)
	accepted = true
	c2.HostReplica("rep", 9, 10, func(a, f bool) { accepted = a })
	if accepted {
		t.Fatal("duplicate replica accepted")
	}
}

func TestHostReplicaFetchFailure(t *testing.T) {
	c, _, _, fet, _ := setup(t)
	fet.ok = false
	var accepted, fetched bool
	c.HostReplica("rep", 9, 100, func(a, f bool) { accepted, fetched = a, f })
	if !accepted || fetched {
		t.Fatalf("host = %v/%v, want accepted but not fetched", accepted, fetched)
	}
	if c.Repo.HasReplica("rep") {
		t.Fatal("failed fetch stored replica")
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		LocalHit: "local-hit", ReplicaFetch: "replica-fetch", OriginFetch: "origin-fetch",
		Denied: "denied", Unavailable: "unavailable", TransferFailed: "transfer-failed",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
	if Outcome(42).String() != "outcome(42)" {
		t.Error("unknown outcome String wrong")
	}
}
