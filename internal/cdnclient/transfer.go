// The live-transfer side of the CDN client: content-addressed uploads
// into the serving plane (PUT /v1/datasets/{id}) and manifest-verified
// striped downloads (GridFTP-style parallel ranges). This is the real
// data plane the paper's client agent "initiates third-party transfers"
// with — bytes genuinely move, and every transfer verifies against the
// dataset's manifest, not against a regenerable pattern.
package cdnclient

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"scdn/internal/ingest"
	"scdn/internal/storage"
	"scdn/internal/stripe"
	"scdn/internal/transport"
)

// defaultTransferClient drives transfers over the delivery plane's
// shared tuned transport when the caller supplies no client.
var defaultTransferClient = transport.NewClient(30 * time.Second)

// TransferOptions parameterizes uploads and downloads.
type TransferOptions struct {
	// Client issues the HTTP requests. Nil means a package-default
	// client over the shared tuned transport.
	Client *http.Client
	// Endpoints are candidate base URLs. Downloads spread stripes across
	// them; uploads send every stripe to Endpoints[0] (origin-affinity:
	// the receiving edge becomes the dataset's origin, so one upload
	// must land on one node).
	Endpoints []string
	// Token is the bearer session token.
	Token string
	// Stripes is the parallel range count (values < 1 mean 1).
	Stripes int
	// SegmentSize, when positive, aligns download stripe boundaries to
	// the serving plane's segment size (as advertised by /v1/resolve for
	// segmented large objects) instead of the manifest block size. A
	// segment-aligned stripe never straddles two segment files on the
	// edge, so each stripe is one sequential segment walk there. It must
	// be a multiple of the manifest block size or it is ignored.
	SegmentSize int64
}

func (o *TransferOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return defaultTransferClient
}

// uploadDrainLimit bounds how much of an upload error body is read
// before close (small JSON envelopes).
const uploadDrainLimit = 1 << 20

// Upload publishes size bytes from src as dataset id, scoped to the
// collaboration group. It streams src once to compute the content
// manifest (whole + per-block SHA-256), then PUTs the bytes — as one
// body, or as Stripes parallel Content-Range sections for large
// datasets — declaring the digest up front so the receiving edge can
// reject any corruption with no partial state. The returned manifest is
// the server's accepted copy; Upload fails if it disagrees with the
// locally computed digest.
func Upload(ctx context.Context, opts TransferOptions, id storage.DatasetID,
	group string, src io.ReaderAt, size int64) (*ingest.Manifest, error) {
	if len(opts.Endpoints) == 0 {
		return nil, fmt.Errorf("cdnclient: upload %q: no endpoints", id)
	}
	if size <= 0 {
		return nil, fmt.Errorf("cdnclient: upload %q: non-positive size %d", id, size)
	}
	// Pass one: hash the content. The manifest exists before any byte
	// leaves the machine, so a failed upload never half-publishes.
	hasher := ingest.NewHasher(ingest.DefaultBlockSize)
	if _, err := io.Copy(hasher, io.NewSectionReader(src, 0, size)); err != nil {
		return nil, fmt.Errorf("cdnclient: upload %q: hash: %w", id, err)
	}
	local := hasher.Manifest(id, true)

	plan := stripe.Plan(size, opts.Stripes, ingest.DefaultBlockSize)
	base := opts.Endpoints[0]

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type stripeResult struct {
		manifest []byte // 201 body (the finalizing stripe)
		err      error
	}
	results := make([]stripeResult, len(plan))
	var wg sync.WaitGroup
	for i, p := range plan {
		wg.Add(1)
		go func(i int, p stripe.Range) {
			defer wg.Done()
			body, err := putStripe(ctx, opts, base, id, group, local, src, p, size, len(plan) == 1)
			results[i] = stripeResult{manifest: body, err: err}
			if err != nil {
				cancel() // the upload already failed; stop sibling stripes
			}
		}(i, p)
	}
	wg.Wait()

	var accepted []byte
	for i := range results {
		if results[i].err != nil {
			return nil, fmt.Errorf("cdnclient: upload %q: stripe %d: %w", id, i, results[i].err)
		}
		if results[i].manifest != nil {
			accepted = results[i].manifest
		}
	}
	if accepted == nil {
		return nil, fmt.Errorf("cdnclient: upload %q: no stripe was acknowledged as final", id)
	}
	remote, err := ingest.DecodeManifest(accepted)
	if err != nil {
		return nil, fmt.Errorf("cdnclient: upload %q: server manifest: %w", id, err)
	}
	if remote.Digest != local.Digest || remote.Size != local.Size {
		return nil, fmt.Errorf("cdnclient: upload %q: server manifest disagrees with local digest", id)
	}
	return remote, nil
}

// putStripe PUTs one byte range of an upload. whole suppresses the
// Content-Range header (single-body upload). It returns the response
// body for 201 (the server's manifest, emitted by the stripe that
// completed the upload) and nil for 204 (stripe accepted, more
// outstanding).
func putStripe(ctx context.Context, opts TransferOptions, base string, id storage.DatasetID,
	group string, man *ingest.Manifest, src io.ReaderAt, p stripe.Range, total int64,
	whole bool) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		base+"/v1/datasets/"+url.PathEscape(string(id)),
		io.NewSectionReader(src, p.Offset, p.Length))
	if err != nil {
		return nil, err
	}
	req.ContentLength = p.Length
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("Authorization", "Bearer "+opts.Token)
	req.Header.Set(ingest.DigestHeader, man.DigestHex())
	req.Header.Set(ingest.GroupHeader, group)
	if !whole {
		req.Header.Set("Content-Range",
			fmt.Sprintf("bytes %d-%d/%d", p.Offset, p.Offset+p.Length-1, total))
	}
	resp, err := opts.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		return io.ReadAll(io.LimitReader(resp.Body, uploadDrainLimit))
	case http.StatusNoContent:
		return nil, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, uploadDrainLimit))
		return nil, fmt.Errorf("status %s: %s", resp.Status, body)
	}
}

// Download retrieves the manifest's dataset as parallel verified range
// fetches into dst: stripes are block-aligned so each one checks its
// bytes against the manifest's block digests in-stream, and a stripe
// from a corrupt or lying holder fails the transfer before dst is
// trusted. Endpoints should list replica holders (from a resolve).
func Download(ctx context.Context, opts TransferOptions, man *ingest.Manifest,
	dst io.WriterAt) (stripe.Result, error) {
	align := man.BlockSize
	if opts.SegmentSize > 0 && man.BlockSize > 0 && opts.SegmentSize%man.BlockSize == 0 {
		// Segment-aligned stripes stay block-aligned (segments are whole
		// blocks), so in-stream range verification is unaffected.
		align = opts.SegmentSize
	}
	return stripe.Fetch(ctx, stripe.Options{
		Client:    opts.Client,
		Endpoints: opts.Endpoints,
		Token:     opts.Token,
		Stripes:   opts.Stripes,
		Align:     align,
		NewVerifier: func(off, length int64) (io.WriteCloser, error) {
			return man.NewRangeVerifier(off, length)
		},
		Dst: dst,
	}, man.Dataset, man.Size)
}

// discardAt swallows positioned writes (digest-reconciliation
// downloads that only care about verification).
type discardAt struct{}

func (discardAt) WriteAt(p []byte, _ int64) (int, error) { return len(p), nil }

// Discard is an io.WriterAt that drops everything written to it: pass
// it to Download to verify a dataset's replicas without keeping the
// bytes.
var Discard io.WriterAt = discardAt{}
