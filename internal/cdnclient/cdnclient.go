// Package cdnclient implements the per-researcher CDN client of
// Section V-A: a lightweight agent configured with the user's social
// credentials that manages the contributed repository, resolves data
// through the allocation servers, initiates third-party transfers into
// the user's shared folder, and reports usage statistics.
package cdnclient

import (
	"fmt"
	"time"

	"scdn/internal/allocation"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// Outcome classifies one data access.
type Outcome int

// Access outcomes.
const (
	// LocalHit: the dataset was already in the user's repository.
	LocalHit Outcome = iota
	// ReplicaFetch: fetched from a CDN replica.
	ReplicaFetch
	// OriginFetch: no replica besides the origin was available; fetched
	// from the owner.
	OriginFetch
	// Denied: authorization failed.
	Denied
	// Unavailable: no online holder existed.
	Unavailable
	// TransferFailed: the transfer could not complete.
	TransferFailed
)

func (o Outcome) String() string {
	switch o {
	case LocalHit:
		return "local-hit"
	case ReplicaFetch:
		return "replica-fetch"
	case OriginFetch:
		return "origin-fetch"
	case Denied:
		return "denied"
	case Unavailable:
		return "unavailable"
	case TransferFailed:
		return "transfer-failed"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// AccessResult describes one completed access.
type AccessResult struct {
	Outcome Outcome
	Dataset storage.DatasetID
	// Source is the node served from (0 for local hits/failures).
	Source allocation.NodeID
	// Elapsed is the end-to-end latency in virtual time.
	Elapsed time.Duration
	// ThroughputMbps is the transfer goodput (0 if no transfer).
	ThroughputMbps float64
	Err            error
}

// Authorizer validates a session token against a dataset's trust
// boundary (the social middleware).
type Authorizer interface {
	Authorize(tok socialnet.Token, id storage.DatasetID) (socialnet.UserID, error)
}

// Resolver locates replicas (the allocation cluster).
type Resolver interface {
	Resolve(id storage.DatasetID, requester allocation.NodeID) (allocation.Replica, bool, error)
	DatasetBytes(id storage.DatasetID) (int64, error)
	Origin(id storage.DatasetID) (allocation.NodeID, error)
}

// Fetcher moves data between users' repositories (the transfer client
// over the transfer engine). done receives success, elapsed virtual time,
// and goodput.
type Fetcher interface {
	Fetch(src, dst allocation.NodeID, bytes int64, done func(ok bool, elapsed time.Duration, mbps float64)) error
}

// Clock yields current virtual time.
type Clock func() time.Duration

// Client is one user's CDN agent.
type Client struct {
	User  allocation.NodeID
	Token socialnet.Token
	Repo  *storage.Repository

	auth    Authorizer
	resolve Resolver
	fetch   Fetcher
	clock   Clock

	// Accesses / ByOutcome are client-side statistics the client reports
	// to allocation servers.
	Accesses  uint64
	ByOutcome map[Outcome]uint64
}

// New wires a client. All collaborators are required.
func New(user allocation.NodeID, token socialnet.Token, repo *storage.Repository,
	auth Authorizer, resolver Resolver, fetcher Fetcher, clock Clock) (*Client, error) {
	if repo == nil || auth == nil || resolver == nil || fetcher == nil || clock == nil {
		return nil, fmt.Errorf("cdnclient: missing collaborator")
	}
	return &Client{
		User: user, Token: token, Repo: repo,
		auth: auth, resolve: resolver, fetch: fetcher, clock: clock,
		ByOutcome: make(map[Outcome]uint64),
	}, nil
}

// Access performs the Section V-A access protocol: local check →
// middleware authorization → allocation-server lookup → third-party
// transfer into the user's shared folder. done fires exactly once, in
// virtual time.
func (c *Client) Access(id storage.DatasetID, done func(AccessResult)) {
	start := c.clock()
	finish := func(r AccessResult) {
		r.Dataset = id
		r.Elapsed = c.clock() - start
		c.Accesses++
		c.ByOutcome[r.Outcome]++
		if done != nil {
			done(r)
		}
	}
	// Local check first: the shared folder may already hold the data.
	if _, ok := c.Repo.Read(id, start); ok {
		finish(AccessResult{Outcome: LocalHit})
		return
	}
	// Authorization through the social middleware.
	if _, err := c.auth.Authorize(c.Token, id); err != nil {
		finish(AccessResult{Outcome: Denied, Err: err})
		return
	}
	// Discover a replica.
	rep, ok, err := c.resolve.Resolve(id, c.User)
	if err != nil {
		finish(AccessResult{Outcome: Unavailable, Err: err})
		return
	}
	if !ok {
		finish(AccessResult{Outcome: Unavailable})
		return
	}
	bytes, err := c.resolve.DatasetBytes(id)
	if err != nil {
		finish(AccessResult{Outcome: Unavailable, Err: err})
		return
	}
	origin, err := c.resolve.Origin(id)
	if err != nil {
		finish(AccessResult{Outcome: Unavailable, Err: err})
		return
	}
	outcome := ReplicaFetch
	if rep.Node == origin {
		outcome = OriginFetch
	}
	// Third-party transfer into the user's shared folder.
	err = c.fetch.Fetch(rep.Node, c.User, bytes, func(okT bool, _ time.Duration, mbps float64) {
		if !okT {
			finish(AccessResult{Outcome: TransferFailed, Source: rep.Node})
			return
		}
		if err := c.Repo.StoreUser(id, bytes, c.clock()); err != nil {
			// Data arrived but cannot be kept (repository too small):
			// the access still succeeded.
			finish(AccessResult{Outcome: outcome, Source: rep.Node, ThroughputMbps: mbps, Err: err})
			return
		}
		finish(AccessResult{Outcome: outcome, Source: rep.Node, ThroughputMbps: mbps})
	})
	if err != nil {
		finish(AccessResult{Outcome: TransferFailed, Source: rep.Node, Err: err})
	}
}

// HostReplica accepts a CDN placement: stores the dataset in the replica
// partition after fetching it from src. done reports acceptance (the
// Section V-E "request acceptance" signal) and then completion.
func (c *Client) HostReplica(id storage.DatasetID, src allocation.NodeID, bytes int64,
	done func(accepted bool, fetched bool)) {
	// The client checks partition room before accepting.
	st := c.Repo.Stats()
	if st.ReplicaUsedBytes+bytes > c.Repo.ReplicaReserve() || c.Repo.HasReplica(id) {
		if done != nil {
			done(false, false)
		}
		return
	}
	err := c.fetch.Fetch(src, c.User, bytes, func(ok bool, _ time.Duration, _ float64) {
		if !ok {
			if done != nil {
				done(true, false)
			}
			return
		}
		if err := c.Repo.StoreReplica(id, bytes, c.clock()); err != nil {
			if done != nil {
				done(true, false)
			}
			return
		}
		if done != nil {
			done(true, true)
		}
	})
	if err != nil && done != nil {
		done(true, false)
	}
}
