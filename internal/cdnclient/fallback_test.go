package cdnclient

import (
	"testing"

	"scdn/internal/allocation"
)

// TestFallbackDegradationChain drives one client through the CDN's
// degradation ladder as holders disappear — ReplicaFetch while a replica
// is online, OriginFetch once only the owner remains, Unavailable once
// nobody is — pinning the outcome semantics the HTTP serving plane
// (internal/server) mirrors: its peer hit, origin fetch, and bad-gateway
// responses classify accesses exactly like the simulated client.
func TestFallbackDegradationChain(t *testing.T) {
	c, _, res, _, _ := setup(t)
	res.origin = 9

	// Stage 1: a non-origin replica (node 5) is the resolved holder.
	res.replica = allocation.Replica{Node: 5, Site: 1}
	if r := access(t, c, "a"); r.Outcome != ReplicaFetch || r.Source != 5 {
		t.Fatalf("stage 1 = %+v, want ReplicaFetch from 5", r)
	}

	// Stage 2: the replica host churns away; resolution falls back to
	// the origin holder — same protocol, different outcome class.
	res.replica = allocation.Replica{Node: 9, Site: 2}
	if r := access(t, c, "b"); r.Outcome != OriginFetch || r.Source != 9 {
		t.Fatalf("stage 2 = %+v, want OriginFetch from 9", r)
	}

	// Stage 3: the origin goes offline too; no holder resolves.
	res.found = false
	if r := access(t, c, "c"); r.Outcome != Unavailable {
		t.Fatalf("stage 3 = %+v, want Unavailable", r)
	}

	// The ladder is recorded in the client-side statistics the client
	// reports to allocation servers (POST /v1/report on the live plane).
	if c.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3", c.Accesses)
	}
	for _, o := range []Outcome{ReplicaFetch, OriginFetch, Unavailable} {
		if c.ByOutcome[o] != 1 {
			t.Fatalf("ByOutcome[%v] = %d, want 1", o, c.ByOutcome[o])
		}
	}

	// Stage 4: a holder returns; the ladder climbs back up.
	res.found = true
	if r := access(t, c, "d"); r.Outcome != OriginFetch {
		t.Fatalf("stage 4 = %+v, want OriginFetch after rejoin", r)
	}
}

// TestFallbackCachedCopySurvivesOutage: data fetched during stage 1
// keeps serving locally after every remote holder is gone — the edge
// behavior the live plane's pull-through caching reproduces.
func TestFallbackCachedCopySurvivesOutage(t *testing.T) {
	c, _, res, _, _ := setup(t)
	if r := access(t, c, "d"); r.Outcome != ReplicaFetch {
		t.Fatalf("warmup = %+v", r)
	}
	res.found = false // total outage
	if r := access(t, c, "d"); r.Outcome != LocalHit {
		t.Fatalf("post-outage access = %+v, want LocalHit", r)
	}
	if r := access(t, c, "other"); r.Outcome != Unavailable {
		t.Fatalf("uncached access = %+v, want Unavailable", r)
	}
}
