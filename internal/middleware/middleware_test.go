package middleware

import (
	"testing"
	"time"

	"scdn/internal/socialnet"
)

func setup(t *testing.T) (*Middleware, *socialnet.Platform, *time.Duration) {
	t.Helper()
	p := socialnet.New(1)
	for i := socialnet.UserID(1); i <= 4; i++ {
		if err := p.Register(i, socialnet.Profile{Name: "u", SiteID: int(i) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	now := new(time.Duration)
	m := New(p, func() time.Duration { return *now })
	return m, p, now
}

func TestLoginUnknownUser(t *testing.T) {
	m, _, _ := setup(t)
	if _, err := m.Login(99); err == nil {
		t.Fatal("unknown user logged in")
	}
}

func TestLoginAndAuthenticate(t *testing.T) {
	m, _, now := setup(t)
	tok, err := m.Login(1)
	if err != nil {
		t.Fatal(err)
	}
	user, err := m.Authenticate(tok)
	if err != nil || user != 1 {
		t.Fatalf("authenticate = %d, %v", user, err)
	}
	*now = 9 * time.Hour // past TTL
	if _, err := m.Authenticate(tok); err == nil {
		t.Fatal("expired token authenticated")
	}
}

func TestRegisterDatasetConflict(t *testing.T) {
	m, _, _ := setup(t)
	if err := m.RegisterDataset("d1", "trial"); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterDataset("d1", "trial"); err != nil {
		t.Fatal("idempotent re-registration rejected")
	}
	if err := m.RegisterDataset("d1", "other"); err == nil {
		t.Fatal("group change accepted")
	}
	g, ok := m.DatasetGroup("d1")
	if !ok || g != "trial" {
		t.Fatalf("group = %q, %v", g, ok)
	}
}

func TestAuthorize(t *testing.T) {
	m, p, _ := setup(t)
	m.RegisterDataset("d1", "trial")
	p.JoinGroup("trial", 1)
	tok1, _ := m.Login(1)
	tok2, _ := m.Login(2)

	if user, err := m.Authorize(tok1, "d1"); err != nil || user != 1 {
		t.Fatalf("member denied: %d, %v", user, err)
	}
	if _, err := m.Authorize(tok2, "d1"); err == nil {
		t.Fatal("non-member authorized")
	}
	if _, err := m.Authorize(tok1, "unscoped"); err == nil {
		t.Fatal("unscoped dataset authorized")
	}
	if _, err := m.Authorize("bogus", "d1"); err == nil {
		t.Fatal("bogus token authorized")
	}
	if m.Denied() != 3 {
		t.Fatalf("denied = %d, want 3", m.Denied())
	}
}

func TestGroupGraph(t *testing.T) {
	m, p, _ := setup(t)
	m.RegisterDataset("d1", "trial")
	p.JoinGroup("trial", 1)
	p.JoinGroup("trial", 2)
	p.Connect(1, 2, socialnet.Coauthor, 1)
	p.Connect(1, 3, socialnet.Coauthor, 1) // 3 not in group
	g, err := m.GroupGraph("d1")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("group graph = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if _, err := m.GroupGraph("unscoped"); err == nil {
		t.Fatal("unscoped dataset produced graph")
	}
}

func TestSiteOf(t *testing.T) {
	m, _, _ := setup(t)
	site, err := m.SiteOf(3)
	if err != nil || site != 30 {
		t.Fatalf("site = %d, %v", site, err)
	}
	if _, err := m.SiteOf(99); err == nil {
		t.Fatal("unknown user's site resolved")
	}
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(socialnet.New(1), nil)
}
