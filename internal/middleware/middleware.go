// Package middleware is the paper's Social Middleware (Section V-C): the
// layer between users and the S-CDN that authenticates through the social
// network platform, enforces group-scoped authorization on datasets, and
// extracts the social properties (graph, profiles) the CDN algorithms
// consume.
package middleware

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scdn/internal/graph"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
)

// Clock supplies the current time for token validation; simulations pass
// virtual time.
type Clock func() time.Duration

// Middleware bridges the social platform and the CDN. It is safe for
// concurrent use: the HTTP serving plane authorizes every request through
// one shared Middleware.
type Middleware struct {
	platform *socialnet.Platform
	clock    Clock
	// TokenTTL is the session lifetime for Login.
	TokenTTL time.Duration
	// mu guards datasetGroup; the scope map is read on every authorization
	// and written only at registration time.
	mu sync.RWMutex
	// datasetGroup scopes each dataset to the collaboration group whose
	// members may access it.
	datasetGroup map[storage.DatasetID]string
	// denied counts rejected authorization checks (Section V-E inputs).
	denied atomic.Uint64
}

// New creates a middleware over a platform. clock must be non-nil.
func New(platform *socialnet.Platform, clock Clock) *Middleware {
	if clock == nil {
		panic("middleware: nil clock")
	}
	return &Middleware{
		platform:     platform,
		clock:        clock,
		TokenTTL:     8 * time.Hour,
		datasetGroup: make(map[storage.DatasetID]string),
	}
}

// Login authenticates a user through the social network and returns a
// session token (the paper: "it uses the credentials of the social
// network platform").
func (m *Middleware) Login(user socialnet.UserID) (socialnet.Token, error) {
	if _, err := m.platform.ProfileOf(user); err != nil {
		return "", fmt.Errorf("middleware: login: %w", err)
	}
	return m.platform.Auth().Issue(user, m.clock(), m.TokenTTL)
}

// Authenticate resolves a token to its user.
func (m *Middleware) Authenticate(tok socialnet.Token) (socialnet.UserID, error) {
	return m.platform.Auth().Validate(tok, m.clock())
}

// RegisterDataset scopes a dataset to a collaboration group. Registering
// an already-scoped dataset to a different group is an error (data must
// not silently change trust boundaries).
func (m *Middleware) RegisterDataset(id storage.DatasetID, group string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.datasetGroup[id]; ok && g != group {
		return fmt.Errorf("middleware: dataset %q already scoped to group %q", id, g)
	}
	m.platform.CreateGroup(group)
	m.datasetGroup[id] = group
	return nil
}

// DatasetGroup returns the group a dataset is scoped to.
func (m *Middleware) DatasetGroup(id storage.DatasetID) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	g, ok := m.datasetGroup[id]
	return g, ok
}

// Authorize checks that the token's user may access the dataset: the user
// must belong to the dataset's group. Unscoped datasets are denied —
// data never flows outside an explicit trust boundary.
func (m *Middleware) Authorize(tok socialnet.Token, id storage.DatasetID) (socialnet.UserID, error) {
	user, err := m.Authenticate(tok)
	if err != nil {
		m.denied.Add(1)
		return 0, err
	}
	group, ok := m.DatasetGroup(id)
	if !ok {
		m.denied.Add(1)
		return 0, fmt.Errorf("middleware: dataset %q is not registered with any group", id)
	}
	if !m.platform.InGroup(group, user) {
		m.denied.Add(1)
		return 0, fmt.Errorf("middleware: user %d is not a member of group %q", user, group)
	}
	return user, nil
}

// InGroup reports whether a user belongs to a collaboration group — the
// membership check behind publishing new data into a group (uploads
// scope datasets to a group before the dataset exists, so Authorize's
// dataset→group lookup cannot run yet).
func (m *Middleware) InGroup(user socialnet.UserID, group string) bool {
	return m.platform.InGroup(group, user)
}

// Denied returns the number of rejected authorization attempts.
func (m *Middleware) Denied() uint64 { return m.denied.Load() }

// GroupGraph returns the social graph restricted to the dataset's group —
// the overlay the allocation servers place replicas on.
func (m *Middleware) GroupGraph(id storage.DatasetID) (*graph.Graph, error) {
	group, ok := m.DatasetGroup(id)
	if !ok {
		return nil, fmt.Errorf("middleware: dataset %q is not registered with any group", id)
	}
	return m.platform.GroupGraph(group), nil
}

// SiteOf returns a user's home site from their profile.
func (m *Middleware) SiteOf(user socialnet.UserID) (int, error) {
	prof, err := m.platform.ProfileOf(user)
	if err != nil {
		return 0, err
	}
	return prof.SiteID, nil
}
