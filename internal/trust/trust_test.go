package trust

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"scdn/internal/graph"
)

func TestRecordAndScore(t *testing.T) {
	m := NewModel(0)
	if err := m.Record(1, 2, Interaction{Kind: Publication}); err != nil {
		t.Fatal(err)
	}
	m.Record(2, 1, Interaction{Kind: Publication}) // reversed pair accumulates same history
	if got := m.Score(1, 2, 0); got != 2 {
		t.Fatalf("score = %v, want 2", got)
	}
	if got := m.Score(2, 1, 0); got != 2 {
		t.Fatalf("reversed score = %v, want 2", got)
	}
	if len(m.History(1, 2)) != 2 {
		t.Fatal("history length wrong")
	}
}

func TestSelfInteractionRejected(t *testing.T) {
	m := NewModel(0)
	if err := m.Record(3, 3, Interaction{Kind: Publication}); err == nil {
		t.Fatal("self interaction accepted")
	}
}

func TestNegativeOutcomesClampAtZero(t *testing.T) {
	m := NewModel(0)
	m.Record(1, 2, Interaction{Kind: TransferFailed})
	m.Record(1, 2, Interaction{Kind: TransferFailed})
	if got := m.Score(1, 2, 0); got != 0 {
		t.Fatalf("score = %v, want clamped 0", got)
	}
	m.Record(1, 2, Interaction{Kind: Publication})
	// 1.0 - 0.5 - 0.5 = 0.
	if got := m.Score(1, 2, 0); got != 0 {
		t.Fatalf("score = %v, want 0", got)
	}
	m.Record(1, 2, Interaction{Kind: StorageHonoured})
	if got := m.Score(1, 2, 0); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("score = %v, want 0.4", got)
	}
}

func TestCustomWeightOverrides(t *testing.T) {
	m := NewModel(0)
	m.Record(1, 2, Interaction{Kind: Publication, Weight: 3.5})
	if got := m.Score(1, 2, 0); got != 3.5 {
		t.Fatalf("score = %v, want 3.5", got)
	}
}

func TestDecayHalfLife(t *testing.T) {
	m := NewModel(24 * time.Hour)
	m.Record(1, 2, Interaction{Kind: Publication, At: 0})
	if got := m.Score(1, 2, 24*time.Hour); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("score after one half-life = %v, want 0.5", got)
	}
	if got := m.Score(1, 2, 48*time.Hour); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("score after two half-lives = %v, want 0.25", got)
	}
	// Future-dated interactions don't grow.
	if got := m.Score(1, 2, 0); got != 1 {
		t.Fatalf("score at t=0 = %v, want 1 (age clamped)", got)
	}
}

func TestTrusts(t *testing.T) {
	m := NewModel(0)
	m.Record(1, 2, Interaction{Kind: Publication})
	if !m.Trusts(1, 2, 1.0, 0) {
		t.Fatal("threshold 1 should pass")
	}
	if m.Trusts(1, 2, 1.5, 0) {
		t.Fatal("threshold 1.5 should fail")
	}
	if m.Trusts(1, 9, 0.1, 0) {
		t.Fatal("strangers should not trust")
	}
}

func TestGraphThreshold(t *testing.T) {
	m := NewModel(0)
	m.Record(1, 2, Interaction{Kind: Publication})
	m.Record(1, 2, Interaction{Kind: Publication})
	m.Record(2, 3, Interaction{Kind: Publication})
	g := m.Graph(2.0, 0)
	if !g.HasEdge(1, 2) {
		t.Fatal("double-publication edge missing")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("single-publication edge should be pruned at threshold 2")
	}
	if g.HasNode(3) {
		t.Fatal("node 3 should be absent (no trusted edges)")
	}
}

func TestMostTrusted(t *testing.T) {
	m := NewModel(0)
	m.Record(1, 2, Interaction{Kind: Publication})
	m.Record(1, 3, Interaction{Kind: Publication})
	m.Record(1, 3, Interaction{Kind: Publication})
	m.Record(1, 4, Interaction{Kind: TransferFailed}) // score 0: excluded
	m.Record(5, 6, Interaction{Kind: Publication})    // unrelated
	top := m.MostTrusted(1, 10, 0)
	if len(top) != 2 {
		t.Fatalf("top = %+v, want 2 entries", top)
	}
	if top[0].Peer != 3 || top[1].Peer != 2 {
		t.Fatalf("order = %+v, want peer 3 first", top)
	}
	if got := m.MostTrusted(1, 1, 0); len(got) != 1 {
		t.Fatalf("k=1 returned %d", len(got))
	}
}

func TestMostTrustedTieOrder(t *testing.T) {
	m := NewModel(0)
	m.Record(1, 5, Interaction{Kind: Publication})
	m.Record(1, 3, Interaction{Kind: Publication})
	top := m.MostTrusted(1, 10, 0)
	if top[0].Peer != 3 || top[1].Peer != 5 {
		t.Fatalf("tie order = %+v, want ascending IDs", top)
	}
}

func TestSeedFromPublications(t *testing.T) {
	m := NewModel(0)
	pubs := [][]graph.NodeID{{1, 2, 3}, {1, 2}}
	if err := m.SeedFromPublications(pubs, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Score(1, 2, 0); got != 2 {
		t.Fatalf("score(1,2) = %v, want 2", got)
	}
	if got := m.Score(2, 3, 0); got != 1 {
		t.Fatalf("score(2,3) = %v, want 1", got)
	}
	// Mirrors the case study: trust graph at threshold 2 = double coauthors.
	g := m.Graph(2, 0)
	if g.NumEdges() != 1 || !g.HasEdge(1, 2) {
		t.Fatalf("trust graph wrong: %d edges", g.NumEdges())
	}
}

func TestSeedFromPublicationsTimestampValidation(t *testing.T) {
	m := NewModel(0)
	err := m.SeedFromPublications([][]graph.NodeID{{1, 2}}, []time.Duration{1, 2})
	if err == nil {
		t.Fatal("mismatched timestamps accepted")
	}
	// Duplicate authors within a publication are skipped, not errors.
	if err := m.SeedFromPublications([][]graph.NodeID{{1, 1, 2}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInteractionKindStrings(t *testing.T) {
	kinds := map[InteractionKind]string{
		Publication:       "publication",
		TransferCompleted: "transfer-completed",
		TransferFailed:    "transfer-failed",
		StorageHonoured:   "storage-honoured",
		StorageRefused:    "storage-refused",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if InteractionKind(42).String() != "interaction(42)" {
		t.Error("unknown kind String() wrong")
	}
	if DefaultWeight(InteractionKind(42)) != 0 {
		t.Error("unknown kind weight should be 0")
	}
}

// Property: score is non-negative and monotone under added positive
// interactions.
func TestPropertyScoreMonotonePositive(t *testing.T) {
	f := func(n uint8) bool {
		m := NewModel(0)
		prev := 0.0
		for i := 0; i < int(n%20); i++ {
			m.Record(1, 2, Interaction{Kind: Publication})
			s := m.Score(1, 2, 0)
			if s < prev || s < 0 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: with decay enabled, scores never increase as `now` advances.
func TestPropertyDecayMonotone(t *testing.T) {
	f := func(hours uint16) bool {
		m := NewModel(12 * time.Hour)
		m.Record(1, 2, Interaction{Kind: Publication, At: 0})
		m.Record(1, 2, Interaction{Kind: StorageHonoured, At: time.Hour})
		t1 := time.Duration(hours) * time.Hour
		t2 := t1 + 5*time.Hour
		return m.Score(1, 2, t2) <= m.Score(1, 2, t1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
