// Package trust implements the paper's Section III proven-trust model:
// trust as "a positive expectation ... that results from proven
// contextualized personal interaction-histories". Pairwise trust scores
// are accumulated from interaction outcomes (publications, completed
// transfers, honoured storage requests), decay over time, and can be
// thresholded into a trust graph that the placement algorithms consume.
package trust

import (
	"fmt"
	"math"
	"sort"
	"time"

	"scdn/internal/graph"
)

// InteractionKind classifies a proven interaction.
type InteractionKind int

// Interaction kinds, with default weights reflecting how strongly each
// outcome evidences trust.
const (
	// Publication is a scientific coauthorship (the paper's primary
	// evidence of proven trust).
	Publication InteractionKind = iota
	// TransferCompleted is a successfully served data transfer.
	TransferCompleted
	// TransferFailed is a transfer the peer failed to serve.
	TransferFailed
	// StorageHonoured is a replica-hosting request the peer honoured.
	StorageHonoured
	// StorageRefused is a replica-hosting request the peer declined.
	StorageRefused
)

func (k InteractionKind) String() string {
	switch k {
	case Publication:
		return "publication"
	case TransferCompleted:
		return "transfer-completed"
	case TransferFailed:
		return "transfer-failed"
	case StorageHonoured:
		return "storage-honoured"
	case StorageRefused:
		return "storage-refused"
	default:
		return fmt.Sprintf("interaction(%d)", int(k))
	}
}

// DefaultWeight returns the default trust delta for an interaction kind.
// Negative outcomes subtract trust.
func DefaultWeight(k InteractionKind) float64 {
	switch k {
	case Publication:
		return 1.0
	case TransferCompleted:
		return 0.25
	case TransferFailed:
		return -0.5
	case StorageHonoured:
		return 0.4
	case StorageRefused:
		return -0.3
	default:
		return 0
	}
}

// Interaction is one recorded event between two parties.
type Interaction struct {
	Kind InteractionKind
	At   time.Duration // time on the model's clock
	// Weight overrides DefaultWeight when non-zero.
	Weight float64
}

func (i Interaction) effectiveWeight() float64 {
	if i.Weight != 0 {
		return i.Weight
	}
	return DefaultWeight(i.Kind)
}

// pair is an unordered user pair.
type pair struct{ a, b graph.NodeID }

func makePair(a, b graph.NodeID) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// Model accumulates interaction histories and derives trust scores.
// Not safe for concurrent use; simulations are single-threaded.
type Model struct {
	// HalfLife controls exponential decay of old interactions; zero
	// disables decay.
	HalfLife time.Duration
	history  map[pair][]Interaction
}

// NewModel returns an empty trust model with the given decay half-life.
func NewModel(halfLife time.Duration) *Model {
	return &Model{HalfLife: halfLife, history: make(map[pair][]Interaction)}
}

// Record appends an interaction between a and b. Self-interactions are
// rejected.
func (m *Model) Record(a, b graph.NodeID, in Interaction) error {
	if a == b {
		return fmt.Errorf("trust: self interaction for %d", a)
	}
	p := makePair(a, b)
	m.history[p] = append(m.history[p], in)
	return nil
}

// History returns the interactions recorded between a and b in insertion
// order (a copy).
func (m *Model) History(a, b graph.NodeID) []Interaction {
	h := m.history[makePair(a, b)]
	out := make([]Interaction, len(h))
	copy(out, h)
	return out
}

// Score returns the pairwise trust at time now: the decayed sum of
// interaction weights, clamped at 0 (trust cannot go negative — a
// sufficiently bad history simply means no trust).
func (m *Model) Score(a, b graph.NodeID, now time.Duration) float64 {
	sum := 0.0
	for _, in := range m.history[makePair(a, b)] {
		w := in.effectiveWeight()
		if m.HalfLife > 0 {
			age := now - in.At
			if age < 0 {
				age = 0
			}
			w *= math.Exp2(-age.Hours() / m.HalfLife.Hours())
		}
		sum += w
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// Trusts reports whether the pairwise score at now meets the threshold.
func (m *Model) Trusts(a, b graph.NodeID, threshold float64, now time.Duration) bool {
	return m.Score(a, b, now) >= threshold
}

// Graph derives the trust graph at time now: an edge for every pair whose
// score meets the threshold. Nodes appear only if incident to a trusted
// edge, mirroring the paper's pruned-subgraph convention.
func (m *Model) Graph(threshold float64, now time.Duration) *graph.Graph {
	g := graph.New()
	for p := range m.history {
		if m.Score(p.a, p.b, now) >= threshold {
			g.AddEdge(p.a, p.b)
		}
	}
	return g
}

// Ranked is a peer with its trust score.
type Ranked struct {
	Peer  graph.NodeID
	Score float64
}

// MostTrusted returns up to k peers of u ordered by descending score
// (ties by ascending ID), considering only peers with positive scores.
func (m *Model) MostTrusted(u graph.NodeID, k int, now time.Duration) []Ranked {
	var out []Ranked
	for p := range m.history {
		var peer graph.NodeID
		switch u {
		case p.a:
			peer = p.b
		case p.b:
			peer = p.a
		default:
			continue
		}
		if s := m.Score(u, peer, now); s > 0 {
			out = append(out, Ranked{Peer: peer, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Peer < out[j].Peer
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// SeedFromPublications bulk-records coauthorship interactions: for every
// publication (author list + timestamp), every author pair gains one
// Publication interaction. This is how the case study's "proven trust from
// successful science" enters the model.
func (m *Model) SeedFromPublications(pubs [][]graph.NodeID, at []time.Duration) error {
	if len(at) != 0 && len(at) != len(pubs) {
		return fmt.Errorf("trust: at has %d entries for %d publications", len(at), len(pubs))
	}
	for i, authors := range pubs {
		var ts time.Duration
		if len(at) > 0 {
			ts = at[i]
		}
		for x := 0; x < len(authors); x++ {
			for y := x + 1; y < len(authors); y++ {
				if authors[x] == authors[y] {
					continue
				}
				if err := m.Record(authors[x], authors[y], Interaction{Kind: Publication, At: ts}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
