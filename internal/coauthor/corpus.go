// Package coauthor models scientific coauthorship networks: publications,
// authors, year-windowed corpora, k-hop ego networks, and the three
// trust-pruning heuristics of the paper's Section VI case study (baseline,
// double coauthorship, and number-of-authors).
//
// Because the original study's DBLP extraction is not redistributable, the
// package also provides a deterministic synthetic generator (see synth.go)
// calibrated to the structural properties reported in Table I and Fig. 2.
package coauthor

import (
	"fmt"
	"sort"

	"scdn/internal/graph"
)

// AuthorID identifies an author; it doubles as the node ID in coauthorship
// graphs.
type AuthorID = graph.NodeID

// Publication is a single paper: a year and its author list.
type Publication struct {
	ID      int
	Year    int
	Authors []AuthorID
}

// NumAuthors returns the number of authors on the publication.
func (p Publication) NumAuthors() int { return len(p.Authors) }

// Corpus is an ordered collection of publications.
type Corpus struct {
	Publications []Publication
}

// Len returns the number of publications.
func (c *Corpus) Len() int { return len(c.Publications) }

// YearRange returns a new Corpus containing publications with
// from <= Year <= to.
func (c *Corpus) YearRange(from, to int) *Corpus {
	out := &Corpus{}
	for _, p := range c.Publications {
		if p.Year >= from && p.Year <= to {
			out.Publications = append(out.Publications, p)
		}
	}
	return out
}

// Authors returns the set of all authors appearing in the corpus.
func (c *Corpus) Authors() map[AuthorID]struct{} {
	set := make(map[AuthorID]struct{})
	for _, p := range c.Publications {
		for _, a := range p.Authors {
			set[a] = struct{}{}
		}
	}
	return set
}

// PairKey is an unordered author pair with A < B, used as a map key for
// coauthorship edge weights.
type PairKey struct{ A, B AuthorID }

// MakePair normalizes (a,b) into a PairKey. It panics if a == b, which
// would indicate a malformed publication (duplicate author entries should
// be cleaned by the caller; the synthetic generator never produces them).
func MakePair(a, b AuthorID) PairKey {
	if a == b {
		panic(fmt.Sprintf("coauthor: self pair for author %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return PairKey{a, b}
}

// EdgeWeights returns, for every coauthor pair in the corpus, the number of
// distinct publications they share. A pair appearing once on a publication
// counts once regardless of author-list ordering.
func (c *Corpus) EdgeWeights() map[PairKey]int {
	w := make(map[PairKey]int)
	for _, p := range c.Publications {
		for i := 0; i < len(p.Authors); i++ {
			for j := i + 1; j < len(p.Authors); j++ {
				if p.Authors[i] == p.Authors[j] {
					continue
				}
				w[MakePair(p.Authors[i], p.Authors[j])]++
			}
		}
	}
	return w
}

// BuildGraph constructs the coauthorship graph: one node per author, one
// edge per coauthor pair (on one or more publications). Single-author
// publications still contribute their author as an isolated node.
func (c *Corpus) BuildGraph() *graph.Graph {
	g := graph.New()
	for _, p := range c.Publications {
		for _, a := range p.Authors {
			g.AddNode(a)
		}
		for i := 0; i < len(p.Authors); i++ {
			for j := i + 1; j < len(p.Authors); j++ {
				g.AddEdge(p.Authors[i], p.Authors[j])
			}
		}
	}
	return g
}

// Subgraph bundles a trust-pruned coauthorship graph with the publications
// that produced it, so that downstream consumers can report the paper's
// Table I triple (nodes, publications, edges).
type Subgraph struct {
	Name  string
	Graph *graph.Graph
	// Pubs are the publications retained by the pruning heuristic: those
	// contributing at least one edge of the subgraph.
	Pubs []Publication
	// Seed is the ego-network seed author.
	Seed AuthorID
}

// Stats is the Table I row for a subgraph.
type Stats struct {
	Name         string
	Nodes        int
	Publications int
	Edges        int
}

// Stats returns the subgraph's Table I row.
func (s *Subgraph) Stats() Stats {
	return Stats{
		Name:         s.Name,
		Nodes:        s.Graph.NumNodes(),
		Publications: len(s.Pubs),
		Edges:        s.Graph.NumEdges(),
	}
}

// MaxSpan returns the subgraph's diameter in hops (the paper's "maximum
// span", which remains 6 across all three subgraphs).
func (s *Subgraph) MaxSpan() int { return s.Graph.Diameter() }

// EgoNetwork extracts the ego network of seed to the given hop limit from
// the corpus: it builds the full coauthorship graph, takes the k-hop ego,
// and keeps the publications with at least two authors inside the ego set
// (those are the publications that contribute edges; the paper's Table I
// counts follow this convention).
func EgoNetwork(c *Corpus, seed AuthorID, hops int) (*Subgraph, error) {
	full := c.BuildGraph()
	if !full.HasNode(seed) {
		return nil, fmt.Errorf("coauthor: seed author %d has no publications in corpus", seed)
	}
	ego := full.KHopEgo(seed, hops)
	keep := make(map[AuthorID]struct{}, ego.NumNodes())
	for _, u := range ego.Nodes() {
		keep[u] = struct{}{}
	}
	var pubs []Publication
	for _, p := range c.Publications {
		inside := 0
		for _, a := range p.Authors {
			if _, ok := keep[a]; ok {
				inside++
			}
		}
		if inside >= 2 {
			pubs = append(pubs, p)
		}
	}
	return &Subgraph{Name: "baseline", Graph: ego, Pubs: pubs, Seed: seed}, nil
}

// SortedAuthors returns a publication's authors sorted ascending (for
// deterministic processing); the receiver is not modified.
func (p Publication) SortedAuthors() []AuthorID {
	out := make([]AuthorID, len(p.Authors))
	copy(out, p.Authors)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
