package coauthor

import "testing"

func BenchmarkGenerateDBLP(b *testing.B) {
	cfg := DefaultSynthConfig(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GenerateDBLP(cfg)
	}
}

func BenchmarkTrustGraphs(b *testing.B) {
	res := GenerateDBLP(DefaultSynthConfig(42))
	train := res.Corpus.YearRange(2009, 2010)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := TrustGraphs(train, res.Seed, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeWeights(b *testing.B) {
	res := GenerateDBLP(DefaultSynthConfig(42))
	train := res.Corpus.YearRange(2009, 2010)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = train.EdgeWeights()
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	res := GenerateDBLP(DefaultSynthConfig(42))
	train := res.Corpus.YearRange(2009, 2010)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = train.BuildGraph()
	}
}
