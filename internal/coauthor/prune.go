package coauthor

import (
	"scdn/internal/graph"
)

// DefaultMaxAuthors is the paper's number-of-authors threshold: only
// publications with fewer than six authors are trusted predictors.
const DefaultMaxAuthors = 5

// DefaultMinCoauthorships is the paper's double-coauthorship threshold:
// an edge is trusted when the pair coauthored more than one publication.
const DefaultMinCoauthorships = 2

// DoubleCoauthorship prunes the baseline subgraph to edges whose endpoint
// pair coauthored at least minCoauthorships publications (the paper uses
// 2: "more than 1 publication together"). Nodes are kept only if incident
// to a retained edge, which is what produces the isolated islands visible
// in the paper's Fig. 2(b) — except that fully disconnected nodes vanish
// rather than lingering as singletons. Retained publications are those
// contributing at least one retained edge.
func DoubleCoauthorship(base *Subgraph, minCoauthorships int) *Subgraph {
	if minCoauthorships < 1 {
		minCoauthorships = DefaultMinCoauthorships
	}
	weights := (&Corpus{Publications: base.Pubs}).EdgeWeights()
	g := graph.New()
	for pair, w := range weights {
		if w >= minCoauthorships && base.Graph.HasEdge(pair.A, pair.B) {
			g.AddEdge(pair.A, pair.B)
		}
	}
	var pubs []Publication
	for _, p := range base.Pubs {
		if pubContributesEdge(p, g) {
			pubs = append(pubs, p)
		}
	}
	name := "double-coauthorship"
	if minCoauthorships != DefaultMinCoauthorships {
		name = "double-coauthorship*" // non-default threshold (ablation)
	}
	return &Subgraph{Name: name, Graph: g, Pubs: pubs, Seed: base.Seed}
}

// FewAuthors prunes the baseline subgraph to the coauthorship structure of
// publications with at most maxAuthors authors (the paper keeps
// publications "with fewer than 6 authors", i.e. maxAuthors = 5). The
// graph is rebuilt from the retained publications, restricted to authors
// present in the baseline subgraph. Nodes are kept only if incident to a
// retained edge.
func FewAuthors(base *Subgraph, maxAuthors int) *Subgraph {
	if maxAuthors < 2 {
		maxAuthors = DefaultMaxAuthors
	}
	inBase := make(map[AuthorID]struct{}, base.Graph.NumNodes())
	for _, u := range base.Graph.Nodes() {
		inBase[u] = struct{}{}
	}
	g := graph.New()
	var pubs []Publication
	for _, p := range base.Pubs {
		if p.NumAuthors() > maxAuthors {
			continue
		}
		added := false
		for i := 0; i < len(p.Authors); i++ {
			if _, ok := inBase[p.Authors[i]]; !ok {
				continue
			}
			for j := i + 1; j < len(p.Authors); j++ {
				if _, ok := inBase[p.Authors[j]]; !ok {
					continue
				}
				if p.Authors[i] != p.Authors[j] {
					g.AddEdge(p.Authors[i], p.Authors[j])
					added = true
				}
			}
		}
		if added {
			pubs = append(pubs, p)
		}
	}
	name := "number-of-authors"
	if maxAuthors != DefaultMaxAuthors {
		name = "number-of-authors*"
	}
	return &Subgraph{Name: name, Graph: g, Pubs: pubs, Seed: base.Seed}
}

// pubContributesEdge reports whether any coauthor pair of p is an edge of g.
func pubContributesEdge(p Publication, g *graph.Graph) bool {
	for i := 0; i < len(p.Authors); i++ {
		for j := i + 1; j < len(p.Authors); j++ {
			if g.HasEdge(p.Authors[i], p.Authors[j]) {
				return true
			}
		}
	}
	return false
}

// TrustGraphs builds the paper's three case-study subgraphs from a corpus:
// the hops-hop ego network of seed (baseline), the double-coauthorship
// pruning, and the number-of-authors pruning, using the paper's default
// thresholds.
func TrustGraphs(c *Corpus, seed AuthorID, hops int) (baseline, double, fewAuthors *Subgraph, err error) {
	baseline, err = EgoNetwork(c, seed, hops)
	if err != nil {
		return nil, nil, nil, err
	}
	double = DoubleCoauthorship(baseline, DefaultMinCoauthorships)
	fewAuthors = FewAuthors(baseline, DefaultMaxAuthors)
	return baseline, double, fewAuthors, nil
}
