package coauthor

import (
	"strings"
	"testing"
)

const sampleDBLP = `<?xml version="1.0"?>
<dblp>
  <article key="a1">
    <author>Kyle Chard</author>
    <author>Simon Caton</author>
    <year>2010</year>
    <title>Social Cloud</title>
  </article>
  <inproceedings key="b1">
    <author>Kyle Chard</author>
    <author>Daniel S. Katz</author>
    <author>Omer Rana</author>
    <year>2011</year>
  </inproceedings>
  <article key="bad-year">
    <author>Nobody</author>
    <year>n/a</year>
  </article>
  <article key="no-authors">
    <year>2010</year>
  </article>
  <phdthesis key="ignored">
    <author>Someone Else</author>
    <year>2009</year>
  </phdthesis>
  <article key="dup-author">
    <author>Kyle Chard</author>
    <author>Kyle Chard</author>
    <author>Simon Caton</author>
    <year>2012</year>
  </article>
</dblp>`

func TestParseDBLPXML(t *testing.T) {
	res, err := ParseDBLPXML(strings.NewReader(sampleDBLP))
	if err != nil {
		t.Fatal(err)
	}
	if res.Corpus.Len() != 3 {
		t.Fatalf("publications = %d, want 3", res.Corpus.Len())
	}
	if res.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (bad year + no authors)", res.Skipped)
	}
	kyle, ok := res.IDs["Kyle Chard"]
	if !ok || kyle != 1 {
		t.Fatalf("Kyle Chard ID = %d, %v (want 1, first appearance)", kyle, ok)
	}
	if res.Names[kyle] != "Kyle Chard" {
		t.Fatal("name mapping broken")
	}
	// Duplicate author within a record is deduplicated.
	last := res.Corpus.Publications[2]
	if last.NumAuthors() != 2 {
		t.Fatalf("dup-author record has %d authors, want 2", last.NumAuthors())
	}
	// Years preserved.
	if res.Corpus.Publications[0].Year != 2010 || res.Corpus.Publications[1].Year != 2011 {
		t.Fatal("years wrong")
	}
}

func TestParseDBLPMalformed(t *testing.T) {
	if _, err := ParseDBLPXML(strings.NewReader("<dblp><article>")); err == nil {
		t.Fatal("truncated XML accepted")
	}
}

func TestSeedByName(t *testing.T) {
	res, err := ParseDBLPXML(strings.NewReader(sampleDBLP))
	if err != nil {
		t.Fatal(err)
	}
	id, err := res.SeedByName("Kyle Chard")
	if err != nil || id != 1 {
		t.Fatalf("seed = %d, %v", id, err)
	}
	_, err = res.SeedByName("K. Chard")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "Kyle Chard") {
		t.Fatalf("error should suggest similar names: %v", err)
	}
	if _, err := res.SeedByName("Total Stranger"); err == nil {
		t.Fatal("stranger accepted")
	}
}

func TestDBLPRoundTrip(t *testing.T) {
	// Generate a small synthetic corpus, write it as DBLP XML, parse it
	// back, and verify the coauthorship structure survives.
	cfg := DefaultSynthConfig(3)
	cfg.Ring1Groups, cfg.Ring2Groups = 3, 4
	cfg.NewCollabPubs = 5
	orig := GenerateDBLP(cfg)

	var sb strings.Builder
	if err := WriteDBLPXML(&sb, orig.Corpus, nil); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDBLPXML(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Corpus.Len() != orig.Corpus.Len() {
		t.Fatalf("round trip lost publications: %d vs %d", parsed.Corpus.Len(), orig.Corpus.Len())
	}
	if parsed.Skipped != 0 {
		t.Fatalf("round trip skipped %d records", parsed.Skipped)
	}
	// Graph structure is isomorphic: same node/edge counts per year graph.
	for _, years := range [][2]int{{2009, 2010}, {2011, 2011}} {
		go1 := orig.Corpus.YearRange(years[0], years[1]).BuildGraph()
		gp := parsed.Corpus.YearRange(years[0], years[1]).BuildGraph()
		if go1.NumNodes() != gp.NumNodes() || go1.NumEdges() != gp.NumEdges() {
			t.Fatalf("years %v: %d/%d vs %d/%d", years,
				go1.NumNodes(), go1.NumEdges(), gp.NumNodes(), gp.NumEdges())
		}
	}
	// Author-name mapping respects first-appearance ordering and written
	// names survive.
	name := parsed.Names[parsed.Corpus.Publications[0].Authors[0]]
	if !strings.HasPrefix(name, "author-") {
		t.Fatalf("default names missing: %q", name)
	}
}

func TestWriteDBLPCustomNames(t *testing.T) {
	c := &Corpus{Publications: []Publication{{ID: 0, Year: 2012, Authors: []AuthorID{1, 2}}}}
	var sb strings.Builder
	if err := WriteDBLPXML(&sb, c, map[AuthorID]string{1: "Kyle Chard"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "<author>Kyle Chard</author>") {
		t.Fatalf("custom name missing:\n%s", out)
	}
	if !strings.Contains(out, "<author>author-2</author>") {
		t.Fatalf("fallback name missing:\n%s", out)
	}
	if !strings.Contains(out, "<year>2012</year>") {
		t.Fatal("year missing")
	}
}

func TestFullPipelineOnParsedData(t *testing.T) {
	// The headline real-data path: parse XML → ego network → trust graphs.
	res, err := ParseDBLPXML(strings.NewReader(sampleDBLP))
	if err != nil {
		t.Fatal(err)
	}
	kyle, _ := res.SeedByName("Kyle Chard")
	base, double, few, err := TrustGraphs(res.Corpus, kyle, 3)
	if err != nil {
		t.Fatal(err)
	}
	if base.Graph.NumNodes() != 4 { // Kyle, Simon, Dan, Omer
		t.Fatalf("baseline nodes = %d, want 4", base.Graph.NumNodes())
	}
	// Kyle-Simon coauthored twice (2010 and 2012) → survives double pruning.
	if !double.Graph.HasEdge(1, 2) {
		t.Fatal("double-coauthorship edge Kyle-Simon missing")
	}
	if few.Graph.NumNodes() == 0 {
		t.Fatal("few-authors graph empty (all sample pubs are small)")
	}
}
