package coauthor

import (
	"sort"
	"testing"
)

// TestDiagRoles is a development diagnostic: run with -run TestDiagRoles -v.
func TestDiagRoles(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	res, base, double, few := genTrained(t, 42)

	role := make(map[AuthorID]string)
	for _, g := range res.Groups {
		for _, m := range g {
			if role[m] == "" {
				role[m] = "member"
			}
		}
	}
	for _, team := range res.Teams {
		for _, m := range team {
			role[m] = "team"
		}
	}
	for _, p := range res.PIs {
		role[p] = "pi"
	}
	for _, b := range res.Brokers {
		role[b] = "broker"
	}
	for _, c := range res.ConsortiumAuthors {
		if role[c] == "" {
			role[c] = "consortium-only"
		}
	}
	role[res.Seed] = "seed"

	// Top-20 baseline degree.
	nodes := base.Graph.Nodes()
	sort.Slice(nodes, func(i, j int) bool {
		return base.Graph.Degree(nodes[i]) > base.Graph.Degree(nodes[j])
	})
	for i := 0; i < 20 && i < len(nodes); i++ {
		u := nodes[i]
		t.Logf("top-degree #%2d: node %5d deg=%3d role=%s", i+1, u, base.Graph.Degree(u), role[u])
	}

	// Double-survivor role histogram.
	hist := make(map[string]int)
	for _, u := range double.Graph.Nodes() {
		hist[role[u]]++
	}
	t.Logf("double survivors by role: %v (total %d)", hist, double.Graph.NumNodes())

	histFew := make(map[string]int)
	for _, u := range few.Graph.Nodes() {
		histFew[role[u]]++
	}
	t.Logf("few-author nodes by role: %v (total %d)", histFew, few.Graph.NumNodes())
}
