package coauthor

import (
	"math/rand"
	"sort"
)

// SynthConfig parameterizes the synthetic DBLP-like coauthorship generator.
// The zero value is unusable; start from DefaultSynthConfig, which is
// calibrated so the three Section VI trust subgraphs land near the paper's
// Table I (baseline 2335/1163/17973, double-coauthorship 811/881/5123,
// number-of-authors 604/435/1988) and reproduce the Fig. 2 structure
// (6-hop span, islands after double-coauthorship pruning, one 86-author
// consortium publication).
//
// The generator works in seed-centric rings so the 3-hop ego network is
// well defined: the seed belongs to a ring-0 group; ring-1 groups attach to
// the seed through liaison publications (their PIs are 1 hop from the
// seed); ring-2 groups attach through an anchor — a ring-1 member embedded
// in the ring-2 group — placing ring-2 members at 3 hops.
//
// Three author roles create the structure the paper's results depend on:
//
//   - Core teams: each group has a persistent project team that publishes
//     together repeatedly, producing the dense repeat-collaboration core
//     that survives double-coauthorship pruning (Fig. 2b / Table I row 2).
//   - Brokers: prolific ring-1 members who write many small papers with
//     rotating partners across their own and anchored ring-2 groups; they
//     are the hubs of the number-of-authors subgraph (Fig. 3c).
//   - The consortium: one 86-author publication whose members dominate the
//     baseline degree ranking, producing the Fig. 3a node-degree plateau.
type SynthConfig struct {
	Seed int64 // RNG seed; same seed → identical corpus

	TrainFrom, TrainTo int // training window (paper: 2009–2010)
	TestYear           int // evaluation year (paper: 2011)

	Ring0Size              int
	Ring1Groups            int
	Ring1SizeMin, Ring1Max int
	Ring2Groups            int
	Ring2SizeMin, Ring2Max int

	// Core team size range (includes the PI).
	TeamMin, TeamMax int
	// Team publications per group per year.
	TeamPubsMin, TeamPubsMax int
	// Expected small publications per group per year (PI + rotating
	// members, ≤ 5 authors).
	SmallPubsMin, SmallPubsMax int
	// Probability of one large publication (LargeMin..LargeMax authors)
	// per group per year.
	PLarge             float64
	LargeMin, LargeMax int

	// Small publications per broker per year (one broker per even-indexed
	// ring-1 group).
	BrokerPubsMin, BrokerPubsMax int

	// Probability the anchor joins a given ring-2 team/large publication.
	AnchorJoin float64

	SeedPubsPerYear int

	// Consortium (mega) publication, the paper's 86-author artifact.
	ConsortiumSize     int
	ConsortiumEmbedded int

	// Test-year novelty: probability that a test publication gains fresh
	// authors never seen in training, how many at most, and the number of
	// "new collaboration" publications (one network member + all-new
	// coauthors).
	PNewAuthors     float64
	NewAuthorsMax   int
	NewCollabPubs   int
	TestActivityMul float64
}

// DefaultSynthConfig returns the calibrated configuration. Seed 42 is what
// the repository's experiments use.
func DefaultSynthConfig(seed int64) SynthConfig {
	return SynthConfig{
		Seed:      seed,
		TrainFrom: 2009, TrainTo: 2010, TestYear: 2011,
		Ring0Size:   18,
		Ring1Groups: 22, Ring1SizeMin: 20, Ring1Max: 36,
		Ring2Groups: 96, Ring2SizeMin: 18, Ring2Max: 32,
		TeamMin: 5, TeamMax: 7,
		TeamPubsMin: 2, TeamPubsMax: 2,
		SmallPubsMin: 1, SmallPubsMax: 1,
		PLarge: 0.55, LargeMin: 14, LargeMax: 20,
		BrokerPubsMin: 8, BrokerPubsMax: 9,
		AnchorJoin:      0.75,
		SeedPubsPerYear: 9,
		ConsortiumSize:  86, ConsortiumEmbedded: 6,
		PNewAuthors:     0.45,
		NewAuthorsMax:   4,
		NewCollabPubs:   60,
		TestActivityMul: 1.0,
	}
}

// SynthResult is the generated corpus plus ground-truth structure useful
// to tests and workload generators.
type SynthResult struct {
	Corpus *Corpus
	Seed   AuthorID
	// Groups lists every community's member set (ring 0 first, then ring 1,
	// then ring 2), sorted ascending. Teams lists each group's persistent
	// core team, index-aligned with Groups.
	Groups [][]AuthorID
	Teams  [][]AuthorID
	// PIs are the groups' principal investigators; Brokers are the
	// prolific small-paper authors of ring-1 groups.
	PIs     []AuthorID
	Brokers []AuthorID
	// SuperHub is the network's highest-degree regular author (the ring-0
	// PI); see synthState.superHub.
	SuperHub AuthorID
	// ConsortiumAuthors are the authors of the 86-author publication.
	ConsortiumAuthors []AuthorID
	// NumTrainingAuthors is the highest author ID issued during training;
	// larger IDs are test-year novices.
	NumTrainingAuthors int
}

type synthState struct {
	cfg     SynthConfig
	rng     *rand.Rand
	nextID  AuthorID
	nextPub int
	corpus  *Corpus
	// superHub is the network's centre of gravity (a Foster-like ring-0
	// figure): it joins ring-1 team publications and every liaison paper,
	// accumulating by far the highest non-consortium degree. Node Degree's
	// first replica lands here — productive — before falling into the
	// consortium trap, reproducing the paper's Fig. 3a plateau-after-two.
	superHub AuthorID
	// deputies are two senior ring-0 collaborators who co-publish with
	// the super hub everywhere it goes. Their spheres overlap the super
	// hub's almost completely, so degree-ranked placement wastes picks on
	// them while the community-elected variant skips them — the paper's
	// "community election avoids clustering replicas too close together".
	deputies []AuthorID
}

func (s *synthState) newAuthor() AuthorID {
	id := s.nextID
	s.nextID++
	return id
}

func (s *synthState) emit(year int, authors []AuthorID) {
	authors = dedup(authors)
	if len(authors) < 2 {
		return
	}
	s.corpus.Publications = append(s.corpus.Publications, Publication{
		ID: s.nextPub, Year: year, Authors: authors,
	})
	s.nextPub++
}

func dedup(in []AuthorID) []AuthorID {
	seen := make(map[AuthorID]struct{}, len(in))
	out := make([]AuthorID, 0, len(in))
	for _, a := range in {
		if _, ok := seen[a]; !ok {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	return out
}

// group is a research community with a PI, a persistent core team, and an
// optional anchor member from the parent ring.
type group struct {
	ring     int // 0, 1, or 2: social distance band from the seed
	members  []AuthorID
	pi       AuthorID
	team     []AuthorID // persistent project team (includes pi)
	brokers  []AuthorID // ring-1 only: prolific small-paper authors
	anchor   AuthorID   // parent-ring member embedded here (0 for ring 0/1)
	parent   *group     // the anchor's home group (nil for ring 0/1)
	anchored []*group   // ring-1 only: ring-2 groups anchored to this group
	rotIdx   int        // round-robin pointer into the periphery
	// largeYear is the single training year with a large publication
	// (0: none). One large per window keeps weight-2 pairs confined to
	// the persistent teams.
	largeYear int
	// loose marks ring-2 groups whose home link appears only once, so the
	// double-coauthorship pruning detaches them — the paper's Fig. 2b
	// islands.
	loose bool
}

// periphery returns the non-team members.
func (g *group) periphery() []AuthorID {
	if len(g.team) >= len(g.members) {
		return nil
	}
	return g.members[len(g.team):]
}

// nextRot returns the next n periphery members in round-robin order.
// Cycling (rather than sampling) means guest pairs almost never repeat, so
// the double-coauthorship subgraph stays confined to the persistent teams,
// matching the paper's dense-core pruning result.
func (g *group) nextRot(n int) []AuthorID {
	per := g.periphery()
	if len(per) == 0 {
		return nil
	}
	if n > len(per) {
		n = len(per)
	}
	out := make([]AuthorID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, per[g.rotIdx%len(per)])
		g.rotIdx++
	}
	return out
}

// sample returns n distinct random members of pool (fewer if the pool is
// smaller), excluding any in the skip set.
func (s *synthState) sample(pool []AuthorID, n int, skip map[AuthorID]struct{}) []AuthorID {
	avail := make([]AuthorID, 0, len(pool))
	for _, a := range pool {
		if _, bad := skip[a]; !bad {
			avail = append(avail, a)
		}
	}
	s.rng.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })
	if n > len(avail) {
		n = len(avail)
	}
	return avail[:n]
}

func asSet(ids []AuthorID) map[AuthorID]struct{} {
	m := make(map[AuthorID]struct{}, len(ids))
	for _, a := range ids {
		m[a] = struct{}{}
	}
	return m
}

// groupYear emits one year's worth of publications for g.
func (s *synthState) groupYear(g *group, year int, mul float64) {
	cfg := s.cfg
	scale := func(n int) int {
		v := int(float64(n)*mul + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
	// Team publications: the persistent core plus round-robin guests. The
	// super hub joins one ring-1 team paper per group-year more often than
	// not, building its outsized degree.
	teamPubs := scale(cfg.TeamPubsMin + s.rng.Intn(cfg.TeamPubsMax-cfg.TeamPubsMin+1))
	for i := 0; i < teamPubs; i++ {
		authors := append([]AuthorID{}, g.team...)
		authors = append(authors, g.nextRot(s.rng.Intn(3))...)
		if g.anchor != 0 && s.rng.Float64() < cfg.AnchorJoin {
			authors = append(authors, g.anchor)
		}
		// Stable (weight-2) super-hub ties to the broker-hosting half of
		// ring 1: these survive double-coauthorship pruning and give that
		// subgraph its active, coverable core.
		if g.ring == 1 && i == 0 && len(g.brokers) > 0 {
			authors = append(authors, s.superHub)
			authors = append(authors, s.deputies...)
		}
		s.emit(year, authors)
	}
	// Small publications: PI with one or two team colleagues. Keeping
	// smalls fully team-internal gives the number-of-authors subgraph its
	// dense hub neighbourhoods without minting fresh low-degree nodes.
	// Inner rings write small papers at roughly twice the outer-ring rate:
	// the ego-network sample is densest near its centre, which is what
	// concentrates the pruned subgraphs (and their hit rates) there.
	smallPubs := scale(cfg.SmallPubsMin + s.rng.Intn(cfg.SmallPubsMax-cfg.SmallPubsMin+1))
	if g.ring <= 1 {
		smallPubs *= 2
	}
	smallKeep := 0.8
	if g.ring == 2 {
		smallKeep = 0.15
	}
	for i := 0; i < smallPubs; i++ {
		if s.rng.Float64() > smallKeep {
			continue // not every group writes a small paper every year
		}
		authors := []AuthorID{g.pi}
		authors = append(authors, s.sample(g.team[1:], 2+s.rng.Intn(2), nil)...)
		s.emit(year, authors)
	}
	// Large publication: at most one per training window (plus possibly
	// one in the test year), drawn from the periphery plus the PI so the
	// repeat pairs it creates with team publications stay rare.
	// The PI stays off large publications: a PI on a large would pair with
	// every rotated guest twice, flooding the double-coauthorship core.
	if year == g.largeYear || (year == cfg.TestYear && s.rng.Float64() < cfg.PLarge*mul*0.5) {
		n := cfg.LargeMin + s.rng.Intn(cfg.LargeMax-cfg.LargeMin+1)
		authors := s.sample(g.periphery(), n, nil)
		if g.anchor != 0 && s.rng.Float64() < cfg.AnchorJoin {
			authors = append(authors, g.anchor)
		}
		s.emit(year, authors)
	}
	// Broker publications (ring-1 groups): many small papers with partners
	// drawn from the teams of the broker's home group and of its first two
	// anchored ring-2 groups. The fixed pool set makes each broker a deep
	// hub over a small neighbourhood rather than a shallow one over many.
	for _, b := range g.brokers {
		pubs := scale(cfg.BrokerPubsMin + s.rng.Intn(cfg.BrokerPubsMax-cfg.BrokerPubsMin+1))
		for i := 0; i < pubs; i++ {
			pool := g
			if len(g.anchored) > 0 && s.rng.Float64() < 0.6 {
				pool = g.anchored[s.rng.Intn(min(2, len(g.anchored)))]
			}
			authors := []AuthorID{b}
			authors = append(authors, s.sample(pool.team, 2+s.rng.Intn(2), asSet(authors))...)
			authors = append(authors, pool.nextRot(1)...)
			if len(authors) > 5 {
				authors = authors[:5] // brokers write small papers only
			}
			s.emit(year, authors)
		}
	}
	if g.anchor != 0 && g.parent != nil {
		// Home-link publication: the anchor publishes with its home-group
		// PI, so the member→anchor→home-PI→seed spine carries weight ≥ 2
		// and survives double-coauthorship pruning. Loose groups link only
		// once — those become the paper's Fig. 2b islands. Six authors
		// keep home links out of the number-of-authors subgraph.
		// Filler authors come from this group's own team (already double
		// survivors) rather than the parent's membership, so home links
		// never mint accidental weight-2 pairs in the parent group.
		if !g.loose || year == cfg.TrainFrom {
			authors := []AuthorID{g.anchor, g.parent.pi}
			authors = append(authors, s.sample(g.team, 4, asSet(authors))...)
			s.emit(year, authors)
		}
	}
}

// seedPub emits one publication by the ego seed with repeat preference:
// mostly the same ring-0 colleagues and ring-1 PIs.
func (s *synthState) seedPub(year int, seed AuthorID, ring0 *group, ring1 []*group) {
	n := 2 + s.rng.Intn(6) // 2..7 authors
	authors := []AuthorID{seed}
	chosen := map[AuthorID]struct{}{seed: {}}
	for attempts := 0; len(authors) < n && attempts < 20*n; attempts++ {
		var cand AuthorID
		if s.rng.Float64() < 0.7 {
			cand = ring0.members[s.rng.Intn(len(ring0.members))]
		} else {
			cand = ring1[s.rng.Intn(len(ring1))].pi
		}
		if _, dup := chosen[cand]; dup {
			continue
		}
		chosen[cand] = struct{}{}
		authors = append(authors, cand)
	}
	s.emit(year, authors)
}

// GenerateDBLP builds the synthetic coauthorship corpus. The same config
// (including Seed) always yields the identical corpus.
func GenerateDBLP(cfg SynthConfig) *SynthResult {
	s := &synthState{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		nextID: 1,
		corpus: &Corpus{},
	}
	seed := s.newAuthor() // AuthorID 1 = the ego seed

	newGroup := func(size int) *group {
		g := &group{}
		for i := 0; i < size; i++ {
			g.members = append(g.members, s.newAuthor())
		}
		g.pi = g.members[0]
		teamSize := cfg.TeamMin + s.rng.Intn(cfg.TeamMax-cfg.TeamMin+1)
		if teamSize > size {
			teamSize = size
		}
		g.team = append([]AuthorID{}, g.members[:teamSize]...)
		if s.rng.Float64() < cfg.PLarge {
			g.largeYear = cfg.TrainFrom + s.rng.Intn(cfg.TrainTo-cfg.TrainFrom+1)
		}
		return g
	}

	ring0 := newGroup(cfg.Ring0Size)
	ring0.members = append(ring0.members, seed) // seed is a full ring-0 member
	s.superHub = ring0.pi
	if len(ring0.members) > 2 {
		s.deputies = []AuthorID{ring0.members[1], ring0.members[2]}
	}

	ring1 := make([]*group, cfg.Ring1Groups)
	for i := range ring1 {
		size := cfg.Ring1SizeMin + s.rng.Intn(cfg.Ring1Max-cfg.Ring1SizeMin+1)
		ring1[i] = newGroup(size)
		ring1[i].ring = 1
		// Every other ring-1 group hosts one broker: a prolific
		// small-paper author outside the core team. Keeping brokers rare
		// but deep (many papers each) makes them the dominant hubs of the
		// number-of-authors subgraph, which is what lets ten replicas
		// cover most of its activity (Fig. 3c).
		if i%2 == 0 {
			start := len(ring1[i].team)
			if start < size {
				ring1[i].brokers = append(ring1[i].brokers, ring1[i].members[start])
			}
		}
	}

	// Ring-2 anchors are distinct ring-1 members (never PIs or brokers) so
	// no ordinary author out-degrees the consortium members.
	usedAnchor := make(map[AuthorID]struct{})
	ring2 := make([]*group, cfg.Ring2Groups)
	for i := range ring2 {
		size := cfg.Ring2SizeMin + s.rng.Intn(cfg.Ring2Max-cfg.Ring2SizeMin+1)
		ring2[i] = newGroup(size)
		ring2[i].ring = 2
		parent := ring1[s.rng.Intn(len(ring1))]
		var anchor AuthorID
		for attempts := 0; attempts < 200; attempts++ {
			cand := parent.members[s.rng.Intn(len(parent.members))]
			_, used := usedAnchor[cand]
			if cand != parent.pi && !used && !contains(parent.brokers, cand) {
				anchor = cand
				break
			}
			if attempts%50 == 49 { // parent saturated; try another group
				parent = ring1[s.rng.Intn(len(ring1))]
			}
		}
		if anchor == 0 { // extremely saturated config: accept reuse
			anchor = parent.members[s.rng.Intn(len(parent.members))]
		}
		usedAnchor[anchor] = struct{}{}
		ring2[i].anchor = anchor
		ring2[i].parent = parent
		ring2[i].loose = s.rng.Float64() < 0.22
		parent.anchored = append(parent.anchored, ring2[i])
	}

	groups := append([]*group{ring0}, append(ring1, ring2...)...)

	// Joint projects: sibling teams (same ring, same parent for ring 2)
	// co-publish every year. These repeated team-to-team publications are
	// what give the double-coauthorship core its density (the paper's
	// subgraph has mean degree ~12, far above what a single team can
	// supply). Loose groups are excluded so the Fig. 2b islands survive.
	var jointPairs [][2]*group
	for i := 0; i+1 < len(ring1); i += 2 {
		jointPairs = append(jointPairs, [2]*group{ring1[i], ring1[i+1]})
	}
	for _, parent := range ring1 {
		var tight []*group
		for _, g := range parent.anchored {
			if !g.loose {
				tight = append(tight, g)
			}
		}
		for i := 0; i+1 < len(tight); i += 2 {
			jointPairs = append(jointPairs, [2]*group{tight[i], tight[i+1]})
		}
	}
	jointPub := func(year int, pair [2]*group) {
		authors := append([]AuthorID{}, pair[0].team...)
		authors = append(authors, pair[1].team...)
		s.emit(year, authors)
	}

	// --- Training years --------------------------------------------------
	for year := cfg.TrainFrom; year <= cfg.TrainTo; year++ {
		for i := 0; i < cfg.SeedPubsPerYear; i++ {
			s.seedPub(year, seed, ring0, ring1)
		}
		// Liaison publications: every ring-1 group co-publishes with the
		// seed every training year, giving the seed↔PI edges weight ≥ 2.
		// The first year's liaison paper is small (≤ 5 authors) so the
		// seed remains a hub of the number-of-authors subgraph too.
		// The super hub appears on first-year liaisons only: its edges to
		// the PIs stay weight-1, so it does not blanket-block every PI
		// under Community Node Degree on the double-coauthorship graph.
		// Liaisons carry six authors: they stay out of the
		// number-of-authors subgraph, so the seed does not blanket-block
		// every PI there under Community Node Degree.
		for _, g := range ring1 {
			var authors []AuthorID
			if year == cfg.TrainFrom {
				authors = []AuthorID{seed, g.pi, s.superHub}
				authors = append(authors, s.sample(g.team[1:], 1, nil)...)
				authors = append(authors, s.sample(ring0.members, 2, asSet(authors))...)
			} else {
				authors = []AuthorID{seed, g.pi}
				authors = append(authors, s.sample(ring0.members, 4, asSet(authors))...)
			}
			s.emit(year, authors)
		}
		for _, g := range groups {
			s.groupYear(g, year, 1.0)
		}
		for _, pair := range jointPairs {
			jointPub(year, pair)
		}
	}

	// Consortium publication: the 86-author artifact. Lead is a ring-1
	// member (hop 2), a few embedded members are ring-2 regulars, the rest
	// are consortium-only authors.
	consortium := make([]AuthorID, 0, cfg.ConsortiumSize)
	leadGroup := ring1[s.rng.Intn(len(ring1))]
	// The lead must be a team member: teams co-publish with their PI, so
	// the lead is guaranteed to sit 2 hops from the seed and the whole
	// consortium lands inside the 3-hop ego network.
	consortium = append(consortium, leadGroup.team[s.rng.Intn(len(leadGroup.team))])
	for i := 0; i < cfg.ConsortiumEmbedded; i++ {
		g := ring2[s.rng.Intn(len(ring2))]
		consortium = append(consortium, g.members[s.rng.Intn(len(g.members))])
	}
	consortium = dedup(consortium)
	for len(consortium) < cfg.ConsortiumSize {
		consortium = append(consortium, s.newAuthor())
	}
	s.emit(cfg.TrainTo, consortium)

	trainMax := int(s.nextID) - 1

	// --- Test year --------------------------------------------------------
	year := cfg.TestYear
	mul := cfg.TestActivityMul
	if mul <= 0 {
		mul = 1
	}
	for i := 0; i < int(float64(cfg.SeedPubsPerYear)*mul+0.5); i++ {
		s.seedPub(year, seed, ring0, ring1)
	}
	// Ego-centric activity gradient: groups near the seed stay productive
	// inside the network, while outer-ring groups publish less here and
	// collaborate mostly outward (their 2011 papers gain many authors the
	// training network never saw). This is what the 3-hop DBLP sample
	// looks like from its centre, and it concentrates achievable hits on
	// the trusted core — the paper's headline effect.
	for _, g := range groups {
		ringMul, pNew, maxNew := mul, cfg.PNewAuthors*0.55, cfg.NewAuthorsMax/2
		if g.ring == 2 {
			ringMul, pNew, maxNew = mul*0.85, cfg.PNewAuthors*1.5, cfg.NewAuthorsMax
		}
		if pNew > 0.95 {
			pNew = 0.95
		}
		if maxNew < 1 {
			maxNew = 1
		}
		start := len(s.corpus.Publications)
		s.groupYear(g, year, ringMul)
		for i := start; i < len(s.corpus.Publications); i++ {
			if s.rng.Float64() < pNew {
				p := &s.corpus.Publications[i]
				extra := 1 + s.rng.Intn(maxNew)
				for j := 0; j < extra; j++ {
					p.Authors = append(p.Authors, s.newAuthor())
				}
			}
		}
	}
	for _, pair := range jointPairs {
		if s.rng.Float64() < 0.6*mul {
			jointPub(year, pair)
		}
	}
	// New collaborations: a lone network member with an all-new team.
	for i := 0; i < cfg.NewCollabPubs; i++ {
		g := groups[s.rng.Intn(len(groups))]
		authors := []AuthorID{g.members[s.rng.Intn(len(g.members))]}
		n := 2 + s.rng.Intn(5)
		for j := 0; j < n; j++ {
			authors = append(authors, s.newAuthor())
		}
		s.emit(year, authors)
	}

	// --- Result -----------------------------------------------------------
	res := &SynthResult{
		Corpus:             s.corpus,
		Seed:               seed,
		SuperHub:           s.superHub,
		ConsortiumAuthors:  consortium,
		NumTrainingAuthors: trainMax,
	}
	for _, g := range groups {
		members := make([]AuthorID, len(g.members))
		copy(members, g.members)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		res.Groups = append(res.Groups, members)
		team := make([]AuthorID, len(g.team))
		copy(team, g.team)
		res.Teams = append(res.Teams, team)
		res.PIs = append(res.PIs, g.pi)
		res.Brokers = append(res.Brokers, g.brokers...)
	}
	return res
}

func contains(pool []AuthorID, a AuthorID) bool {
	for _, m := range pool {
		if m == a {
			return true
		}
	}
	return false
}
