package coauthor

import (
	"testing"
)

func genTrained(t testing.TB, seed int64) (*SynthResult, *Subgraph, *Subgraph, *Subgraph) {
	t.Helper()
	res := GenerateDBLP(DefaultSynthConfig(seed))
	train := res.Corpus.YearRange(2009, 2010)
	base, double, few, err := TrustGraphs(train, res.Seed, 3)
	if err != nil {
		t.Fatalf("TrustGraphs: %v", err)
	}
	return res, base, double, few
}

func TestSynthDeterminism(t *testing.T) {
	a := GenerateDBLP(DefaultSynthConfig(42))
	b := GenerateDBLP(DefaultSynthConfig(42))
	if a.Corpus.Len() != b.Corpus.Len() {
		t.Fatalf("corpus lengths differ: %d vs %d", a.Corpus.Len(), b.Corpus.Len())
	}
	for i := range a.Corpus.Publications {
		pa, pb := a.Corpus.Publications[i], b.Corpus.Publications[i]
		if pa.Year != pb.Year || len(pa.Authors) != len(pb.Authors) {
			t.Fatalf("publication %d differs", i)
		}
		for j := range pa.Authors {
			if pa.Authors[j] != pb.Authors[j] {
				t.Fatalf("publication %d author %d differs", i, j)
			}
		}
	}
}

func TestSynthDifferentSeedsDiffer(t *testing.T) {
	a := GenerateDBLP(DefaultSynthConfig(1))
	b := GenerateDBLP(DefaultSynthConfig(2))
	if a.Corpus.Len() == b.Corpus.Len() {
		// Lengths can collide; check author streams too.
		same := true
		for i := 0; i < a.Corpus.Len() && i < b.Corpus.Len(); i++ {
			if len(a.Corpus.Publications[i].Authors) != len(b.Corpus.Publications[i].Authors) {
				same = false
				break
			}
		}
		if same {
			t.Log("seeds 1 and 2 produced structurally similar corpora (allowed but suspicious)")
		}
	}
}

func TestSynthConsortiumPublication(t *testing.T) {
	res := GenerateDBLP(DefaultSynthConfig(42))
	found := false
	for _, p := range res.Corpus.Publications {
		if p.NumAuthors() == 86 && p.Year <= 2010 {
			found = true
		}
	}
	if !found {
		t.Fatal("no 86-author consortium publication in training window")
	}
	if len(res.ConsortiumAuthors) != 86 {
		t.Fatalf("ConsortiumAuthors = %d, want 86", len(res.ConsortiumAuthors))
	}
}

func TestSynthNoDuplicateAuthorsWithinPub(t *testing.T) {
	res := GenerateDBLP(DefaultSynthConfig(7))
	for _, p := range res.Corpus.Publications {
		seen := make(map[AuthorID]struct{}, len(p.Authors))
		for _, a := range p.Authors {
			if _, dup := seen[a]; dup {
				t.Fatalf("publication %d has duplicate author %d", p.ID, a)
			}
			seen[a] = struct{}{}
		}
	}
}

func TestSynthTestYearHasNovices(t *testing.T) {
	res := GenerateDBLP(DefaultSynthConfig(42))
	test := res.Corpus.YearRange(2011, 2011)
	novices := 0
	for a := range test.Authors() {
		if int(a) > res.NumTrainingAuthors {
			novices++
		}
	}
	if novices < 50 {
		t.Fatalf("test year novices = %d, want >= 50 (new-collaborator dilution)", novices)
	}
}

// TestSynthCalibration checks the generated subgraphs land in the
// neighbourhood of the paper's Table I. Bounds are deliberately loose
// (±35%): the reproduction contract is shape, not exact counts. The test
// also logs the measured triples so calibration drift is visible in -v runs.
func TestSynthCalibration(t *testing.T) {
	_, base, double, few := genTrained(t, 42)
	type row struct {
		got   Stats
		nodes int
		pubs  int
		edges int
	}
	rows := []row{
		{base.Stats(), 2335, 1163, 17973},
		{double.Stats(), 811, 881, 5123},
		{few.Stats(), 604, 435, 1988},
	}
	for _, r := range rows {
		t.Logf("%-22s nodes=%d (paper %d)  pubs=%d (paper %d)  edges=%d (paper %d)",
			r.got.Name, r.got.Nodes, r.nodes, r.got.Publications, r.pubs, r.got.Edges, r.edges)
		check := func(what string, got, want int, tol float64) {
			lo, hi := int(float64(want)*(1-tol)), int(float64(want)*(1+tol))
			if got < lo || got > hi {
				t.Errorf("%s %s = %d, outside [%d, %d] (paper %d)",
					r.got.Name, what, got, lo, hi, want)
			}
		}
		check("nodes", r.got.Nodes, r.nodes, 0.35)
		// Publication counting is the most interpretation-sensitive part
		// of Table I (the paper does not define which publications a
		// pruned subgraph "contains"); allow a wider band.
		check("publications", r.got.Publications, r.pubs, 0.50)
		check("edges", r.got.Edges, r.edges, 0.35)
	}
}

// TestSynthFig2Structure checks the paper's Fig. 2 observations: the span
// stays 6 hops in all subgraphs, and the double-coauthorship graph is the
// only one with isolated islands.
func TestSynthFig2Structure(t *testing.T) {
	_, base, double, few := genTrained(t, 42)
	if got := base.MaxSpan(); got != 6 {
		t.Errorf("baseline max span = %d, want 6", got)
	}
	// The paper reports the span staying at 6 after pruning; with pruning
	// some detours lengthen, so we accept a modest stretch (documented in
	// EXPERIMENTS.md).
	if got := double.MaxSpan(); got < 4 || got > 12 {
		t.Errorf("double-coauthorship max span = %d, want ~6 (4..12)", got)
	}
	if got := few.MaxSpan(); got < 4 || got > 15 {
		t.Errorf("few-authors max span = %d, want ~6 (4..15)", got)
	}
	baseComps := len(base.Graph.ConnectedComponents())
	doubleComps := len(double.Graph.ConnectedComponents())
	if baseComps != 1 {
		t.Errorf("baseline components = %d, want 1 (connected ego net)", baseComps)
	}
	if doubleComps < 2 {
		t.Errorf("double-coauthorship components = %d, want >= 2 (islands)", doubleComps)
	}
	t.Logf("components: baseline=%d double=%d few=%d",
		baseComps, doubleComps, len(few.Graph.ConnectedComponents()))
}

// TestSynthDegreeArtifact checks that the consortium publication creates
// the paper's node-degree artifact: consortium authors dominate the top of
// the baseline degree ranking.
func TestSynthDegreeArtifact(t *testing.T) {
	res, base, _, _ := genTrained(t, 42)
	inConsortium := make(map[AuthorID]struct{}, len(res.ConsortiumAuthors))
	for _, a := range res.ConsortiumAuthors {
		inConsortium[a] = struct{}{}
	}
	type nd struct {
		n AuthorID
		d int
	}
	var all []nd
	for _, u := range base.Graph.Nodes() {
		all = append(all, nd{u, base.Graph.Degree(u)})
	}
	// top 10 by degree
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].d > all[i].d {
				all[i], all[j] = all[j], all[i]
			}
		}
		if i >= 9 {
			break
		}
	}
	top10InConsortium := 0
	for i := 0; i < 10 && i < len(all); i++ {
		if _, ok := inConsortium[all[i].n]; ok {
			top10InConsortium++
		}
	}
	if top10InConsortium < 6 {
		t.Errorf("consortium members in top-10 degree = %d, want >= 6 (the Fig. 3a plateau artifact)",
			top10InConsortium)
	}
	t.Logf("top-10 degree nodes in consortium: %d/10", top10InConsortium)
}
