package coauthor

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The original study extracted its coauthorship network from DBLP. This
// file provides the real-data path: a streaming parser for DBLP-style XML
// (article/inproceedings records with <author> and <year> children) and a
// writer that serializes a Corpus back into the same format, so the whole
// pipeline — trust pruning, placement, hit-rate evaluation — runs
// unchanged on an actual DBLP export.

// ParseResult is a corpus loaded from XML plus the author-name mapping
// (DBLP identifies authors by name strings; the pipeline uses dense IDs).
type ParseResult struct {
	Corpus *Corpus
	// Names maps assigned AuthorIDs back to DBLP author names.
	Names map[AuthorID]string
	// IDs maps author names to their assigned IDs.
	IDs map[string]AuthorID
	// Skipped counts records dropped for missing years or authors.
	Skipped int
}

// ParseDBLPXML reads DBLP-style XML: any element named article,
// inproceedings, incollection, or proceedings becomes a publication; its
// <author> children are the author list, <year> the year. Records without
// a parseable year or with fewer than one author are skipped (counted in
// Skipped). Author IDs are assigned in order of first appearance,
// starting at 1.
func ParseDBLPXML(r io.Reader) (*ParseResult, error) {
	dec := xml.NewDecoder(r)
	res := &ParseResult{
		Corpus: &Corpus{},
		Names:  make(map[AuthorID]string),
		IDs:    make(map[string]AuthorID),
	}
	pubElems := map[string]bool{
		"article": true, "inproceedings": true, "incollection": true, "proceedings": true,
	}
	nextID := AuthorID(1)
	nextPub := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("coauthor: dblp parse: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok || !pubElems[start.Name.Local] {
			continue
		}
		var rec dblpRecord
		if err := dec.DecodeElement(&rec, &start); err != nil {
			return nil, fmt.Errorf("coauthor: dblp record: %w", err)
		}
		year, err := strconv.Atoi(rec.Year)
		if err != nil || len(rec.Authors) == 0 {
			res.Skipped++
			continue
		}
		authors := make([]AuthorID, 0, len(rec.Authors))
		seen := make(map[AuthorID]struct{}, len(rec.Authors))
		for _, name := range rec.Authors {
			id, ok := res.IDs[name]
			if !ok {
				id = nextID
				nextID++
				res.IDs[name] = id
				res.Names[id] = name
			}
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			authors = append(authors, id)
		}
		res.Corpus.Publications = append(res.Corpus.Publications, Publication{
			ID: nextPub, Year: year, Authors: authors,
		})
		nextPub++
	}
	return res, nil
}

type dblpRecord struct {
	Authors []string `xml:"author"`
	Year    string   `xml:"year"`
	Title   string   `xml:"title"`
}

// WriteDBLPXML serializes a corpus as DBLP-style XML. names maps author
// IDs to display names; IDs absent from the map are written as
// "author-<id>". Output is deterministic.
func WriteDBLPXML(w io.Writer, c *Corpus, names map[AuthorID]string) error {
	if _, err := fmt.Fprintln(w, `<?xml version="1.0" encoding="UTF-8"?>`); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "<dblp>"); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("  ", "  ")
	for _, p := range c.Publications {
		rec := dblpRecord{Year: strconv.Itoa(p.Year), Title: fmt.Sprintf("publication %d", p.ID)}
		for _, a := range p.Authors {
			name, ok := names[a]
			if !ok {
				name = fmt.Sprintf("author-%d", a)
			}
			rec.Authors = append(rec.Authors, name)
		}
		start := xml.StartElement{
			Name: xml.Name{Local: "article"},
			Attr: []xml.Attr{{Name: xml.Name{Local: "key"}, Value: fmt.Sprintf("pub/%d", p.ID)}},
		}
		if err := enc.EncodeElement(rec, start); err != nil {
			return fmt.Errorf("coauthor: dblp write: %w", err)
		}
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "\n</dblp>")
	return err
}

// SeedByName finds the AuthorID for a (case-sensitive) author name in a
// parse result — the usual way to pick the ego seed from real data.
func (r *ParseResult) SeedByName(name string) (AuthorID, error) {
	if id, ok := r.IDs[name]; ok {
		return id, nil
	}
	// Help the caller: suggest close names (same last token).
	var suggestions []string
	for n := range r.IDs {
		if lastToken(n) == lastToken(name) {
			suggestions = append(suggestions, n)
		}
	}
	sort.Strings(suggestions)
	if len(suggestions) > 0 {
		return 0, fmt.Errorf("coauthor: author %q not found; similar: %v", name, suggestions)
	}
	return 0, fmt.Errorf("coauthor: author %q not found", name)
}

func lastToken(s string) string {
	last := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if i > start {
				last = s[start:i]
			}
			start = i + 1
		}
	}
	return last
}
