// Package community implements community detection over the social graph:
// synchronous label propagation, a greedy modularity heuristic, and the
// paper's lightweight "community = a node and its direct neighbours"
// notion used by the Community Node Degree placement algorithm.
package community

import (
	"math/rand"
	"sort"

	"scdn/internal/graph"
)

// Partition maps every node to a community label. Labels are arbitrary but
// stable within one detection run.
type Partition map[graph.NodeID]int

// Communities groups a Partition into label→member-set form, with members
// sorted ascending and groups ordered by descending size then smallest
// member (deterministic).
func (p Partition) Communities() [][]graph.NodeID {
	byLabel := make(map[int][]graph.NodeID)
	for u, l := range p {
		byLabel[l] = append(byLabel[l], u)
	}
	out := make([][]graph.NodeID, 0, len(byLabel))
	for _, members := range byLabel {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// Modularity computes Newman modularity Q of the partition on g:
// Q = (1/2m) Σ_ij [A_ij − k_i k_j / 2m] δ(c_i, c_j).
// Returns 0 for graphs with no edges.
func Modularity(g *graph.Graph, p Partition) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	// Sum of intra-community edges and per-community degree totals.
	intra := make(map[int]float64)
	degSum := make(map[int]float64)
	for _, u := range g.Nodes() {
		degSum[p[u]] += float64(g.Degree(u))
	}
	for _, e := range g.Edges() {
		if p[e.U] == p[e.V] {
			intra[p[e.U]]++
		}
	}
	q := 0.0
	for label, d := range degSum {
		q += intra[label]/m - (d/(2*m))*(d/(2*m))
	}
	return q
}

// LabelPropagation runs synchronous-ish label propagation: every node
// starts in its own community, then repeatedly adopts the most frequent
// label among its neighbours (ties broken by smallest label). Node visit
// order is shuffled each round using rng for robustness; pass a seeded
// rand.Rand for reproducibility. Converges when a full round changes no
// labels or after maxRounds.
func LabelPropagation(g *graph.Graph, rng *rand.Rand, maxRounds int) Partition {
	nodes := g.Nodes()
	labels := make(Partition, len(nodes))
	for i, u := range nodes {
		labels[u] = i
	}
	if maxRounds <= 0 {
		maxRounds = 100
	}
	order := make([]graph.NodeID, len(nodes))
	copy(order, nodes)
	for round := 0; round < maxRounds; round++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := false
		for _, u := range order {
			best, ok := dominantLabel(g, labels, u)
			if ok && best != labels[u] {
				labels[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return canonicalize(labels)
}

// dominantLabel returns the most frequent label among u's neighbours,
// breaking frequency ties by the smallest label value. ok is false when u
// has no neighbours.
func dominantLabel(g *graph.Graph, labels Partition, u graph.NodeID) (int, bool) {
	counts := make(map[int]int)
	for _, v := range g.Neighbors(u) {
		counts[labels[v]]++
	}
	if len(counts) == 0 {
		return 0, false
	}
	best, bestCount := 0, -1
	for l, c := range counts {
		if c > bestCount || (c == bestCount && l < best) {
			best, bestCount = l, c
		}
	}
	return best, true
}

// GreedyModularity is a CNM-style agglomerative heuristic: start with each
// node in its own community and repeatedly merge the connected community
// pair yielding the largest modularity gain, stopping when no merge
// improves Q. It is O(rounds · E · C) — adequate for case-study graphs.
func GreedyModularity(g *graph.Graph) Partition {
	p := make(Partition, g.NumNodes())
	for i, u := range g.Nodes() {
		p[u] = i
	}
	m := float64(g.NumEdges())
	if m == 0 {
		return canonicalize(p)
	}
	degSum := make(map[int]float64)
	for _, u := range g.Nodes() {
		degSum[p[u]] += float64(g.Degree(u))
	}
	// between[a][b] = number of edges between communities a and b (a<b).
	between := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for _, e := range g.Edges() {
		if p[e.U] != p[e.V] {
			between[key(p[e.U], p[e.V])]++
		}
	}
	for {
		bestGain := 0.0
		var bestPair [2]int
		found := false
		for pair, eab := range between {
			a, b := pair[0], pair[1]
			// ΔQ of merging a,b = e_ab/m − 2·(d_a/2m)·(d_b/2m)
			gain := eab/m - 2*(degSum[a]/(2*m))*(degSum[b]/(2*m))
			if gain > bestGain+1e-12 || (!found && gain > 1e-12) {
				if gain > bestGain {
					bestGain, bestPair, found = gain, pair, true
				}
			}
		}
		if !found {
			break
		}
		a, b := bestPair[0], bestPair[1]
		// Merge b into a.
		for u, l := range p {
			if l == b {
				p[u] = a
			}
		}
		degSum[a] += degSum[b]
		delete(degSum, b)
		// Re-route b's inter-community edges to a.
		for pair, eab := range between {
			if pair[0] == b || pair[1] == b {
				other := pair[0]
				if other == b {
					other = pair[1]
				}
				delete(between, pair)
				if other != a {
					between[key(a, other)] += eab
				}
			}
		}
		delete(between, key(a, b))
	}
	return canonicalize(p)
}

// Neighborhood returns the paper's direct-neighbour community of u: u plus
// all of its neighbours.
func Neighborhood(g *graph.Graph, u graph.NodeID) map[graph.NodeID]struct{} {
	set := map[graph.NodeID]struct{}{u: {}}
	for _, v := range g.Neighbors(u) {
		set[v] = struct{}{}
	}
	return set
}

// canonicalize renumbers labels densely in order of each label's smallest
// member so two runs with identical groupings produce identical Partitions.
func canonicalize(p Partition) Partition {
	smallest := make(map[int]graph.NodeID)
	for u, l := range p {
		if cur, ok := smallest[l]; !ok || u < cur {
			smallest[l] = u
		}
	}
	type lab struct {
		old int
		min graph.NodeID
	}
	labs := make([]lab, 0, len(smallest))
	for l, m := range smallest {
		labs = append(labs, lab{l, m})
	}
	sort.Slice(labs, func(i, j int) bool { return labs[i].min < labs[j].min })
	remap := make(map[int]int, len(labs))
	for i, l := range labs {
		remap[l.old] = i
	}
	out := make(Partition, len(p))
	for u, l := range p {
		out[u] = remap[l]
	}
	return out
}
