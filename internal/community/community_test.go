package community

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scdn/internal/graph"
)

// twoCliques builds two K_k cliques joined by a single bridge edge.
func twoCliques(k int) *graph.Graph {
	g := graph.New()
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			g.AddEdge(graph.NodeID(100+i), graph.NodeID(100+j))
		}
	}
	g.AddEdge(0, 100)
	return g
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliques(6)
	p := LabelPropagation(g, rand.New(rand.NewSource(1)), 50)
	// All members of each clique should share a label.
	for i := 1; i < 6; i++ {
		if p[graph.NodeID(i)] != p[0] {
			t.Fatalf("clique A split: node %d label %d vs node 0 label %d", i, p[graph.NodeID(i)], p[0])
		}
		if p[graph.NodeID(100+i)] != p[100] {
			t.Fatalf("clique B split at node %d", 100+i)
		}
	}
}

func TestLabelPropagationIsolatedNodeKeepsOwnLabel(t *testing.T) {
	g := graph.New()
	g.AddNode(42)
	g.AddEdge(1, 2)
	p := LabelPropagation(g, rand.New(rand.NewSource(2)), 10)
	if p[42] == p[1] {
		t.Fatal("isolated node merged into another community")
	}
}

func TestGreedyModularityTwoCliques(t *testing.T) {
	g := twoCliques(5)
	p := GreedyModularity(g)
	comms := p.Communities()
	if len(comms) != 2 {
		t.Fatalf("communities = %d, want 2 (got %v)", len(comms), comms)
	}
	if Modularity(g, p) <= 0.3 {
		t.Fatalf("modularity = %v, want > 0.3 for two cliques", Modularity(g, p))
	}
}

func TestGreedyModularityEmptyAndEdgeless(t *testing.T) {
	if p := GreedyModularity(graph.New()); len(p) != 0 {
		t.Fatal("empty graph should yield empty partition")
	}
	g := graph.New()
	g.AddNode(1)
	g.AddNode(2)
	p := GreedyModularity(g)
	if p[1] == p[2] {
		t.Fatal("edgeless nodes should stay in distinct communities")
	}
}

func TestModularityKnownValues(t *testing.T) {
	// Single community covering K3: Q = 1 - 1 = 0 (all edges intra but
	// degree term consumes everything).
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	all := Partition{1: 0, 2: 0, 3: 0}
	if q := Modularity(g, all); q > 1e-9 || q < -1e-9 {
		t.Fatalf("single-community K3 modularity = %v, want 0", q)
	}
	// Each node alone: Q = -Σ(k_i/2m)^2 = -3*(2/6)^2 = -1/3.
	alone := Partition{1: 0, 2: 1, 3: 2}
	if q := Modularity(g, alone); q > -0.33 || q < -0.34 {
		t.Fatalf("singleton modularity = %v, want -1/3", q)
	}
}

func TestModularityNoEdges(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	if q := Modularity(g, Partition{1: 0}); q != 0 {
		t.Fatalf("edgeless modularity = %v, want 0", q)
	}
}

func TestCommunitiesOrdering(t *testing.T) {
	p := Partition{5: 1, 1: 0, 2: 0, 3: 0, 9: 1, 7: 2}
	comms := p.Communities()
	if len(comms) != 3 {
		t.Fatalf("groups = %d, want 3", len(comms))
	}
	if len(comms[0]) != 3 || comms[0][0] != 1 {
		t.Fatalf("largest group = %v, want [1 2 3]", comms[0])
	}
	if len(comms[1]) != 2 || comms[1][0] != 5 {
		t.Fatalf("second group = %v, want [5 9]", comms[1])
	}
}

func TestNeighborhood(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	n := Neighborhood(g, 1)
	if len(n) != 3 {
		t.Fatalf("neighborhood size = %d, want 3", len(n))
	}
	for _, u := range []graph.NodeID{1, 2, 3} {
		if _, ok := n[u]; !ok {
			t.Fatalf("neighborhood missing %d", u)
		}
	}
	if _, ok := n[4]; ok {
		t.Fatal("neighborhood should not include 2-hop node 4")
	}
}

func TestCanonicalDeterminism(t *testing.T) {
	g := twoCliques(4)
	p1 := LabelPropagation(g, rand.New(rand.NewSource(3)), 50)
	p2 := LabelPropagation(g, rand.New(rand.NewSource(3)), 50)
	for u, l := range p1 {
		if p2[u] != l {
			t.Fatalf("same seed produced different partitions at node %d", u)
		}
	}
}

// Property: label propagation always yields a total partition and
// modularity stays within [-1, 1].
func TestPropertyPartitionTotalAndModularityBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 20
		for i := 0; i < n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					g.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		p := LabelPropagation(g, rng, 30)
		if len(p) != g.NumNodes() {
			return false
		}
		q := Modularity(g, p)
		return q >= -1.0001 && q <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy modularity never produces a partition worse than
// all-singletons (its own starting point).
func TestPropertyGreedyModularityImproves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		for i := 0; i < 16; i++ {
			g.AddNode(graph.NodeID(i))
		}
		for i := 0; i < 16; i++ {
			for j := i + 1; j < 16; j++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		singletons := make(Partition)
		for i, u := range g.Nodes() {
			singletons[u] = i
		}
		return Modularity(g, GreedyModularity(g)) >= Modularity(g, singletons)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
