package community

import (
	"math/rand"
	"testing"

	"scdn/internal/graph"
)

// benchGraph builds a planted-partition graph: 40 communities of 25 nodes
// with dense intra- and sparse inter-community edges.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	g := graph.New()
	const comms, size = 40, 25
	for c := 0; c < comms; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < 0.3 {
					g.AddEdge(graph.NodeID(base+i), graph.NodeID(base+j))
				}
			}
		}
		if c > 0 {
			g.AddEdge(graph.NodeID(base), graph.NodeID(base-size))
		}
	}
	return g
}

func BenchmarkLabelPropagation(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LabelPropagation(g, rand.New(rand.NewSource(int64(i))), 50)
	}
}

func BenchmarkGreedyModularity(b *testing.B) {
	// CNM-style is the slow path; smaller instance.
	rng := rand.New(rand.NewSource(6))
	g := graph.New()
	for c := 0; c < 8; c++ {
		base := c * 12
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(graph.NodeID(base+i), graph.NodeID(base+j))
				}
			}
		}
		if c > 0 {
			g.AddEdge(graph.NodeID(base), graph.NodeID(base-12))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GreedyModularity(g)
	}
}

func BenchmarkModularity(b *testing.B) {
	g := benchGraph(b)
	p := LabelPropagation(g, rand.New(rand.NewSource(7)), 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Modularity(g, p)
	}
}
