// Package netmodel models the wide-area network between S-CDN sites:
// geographic coordinates, propagation latency, and path bandwidth. It is
// the substrate the transfer engine runs on, replacing the paper's
// physical testbed with a parameterized synthetic internet.
package netmodel

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Site is a geographic location hosting one or more storage repositories.
type Site struct {
	ID   int
	Name string
	// Lat/Lon in degrees.
	Lat, Lon float64
	// UplinkMbps / DownlinkMbps bound the site's access link.
	UplinkMbps, DownlinkMbps float64
	// TimeZoneOffset shifts the site's diurnal availability pattern,
	// in hours relative to UTC.
	TimeZoneOffset int
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance between two sites.
func HaversineKm(a, b *Site) float64 {
	lat1, lon1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	lat2, lon2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dLat, dLon := lat2-lat1, lon2-lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// Network models pairwise latency and bandwidth between sites.
type Network struct {
	sites map[int]*Site
	// BackboneMbps caps any single flow regardless of access links.
	BackboneMbps float64
	// RTTFloor is the minimum round-trip time (processing overheads).
	RTTFloor time.Duration
	rng      *rand.Rand
	// JitterFrac randomizes per-query latency by ±frac.
	JitterFrac float64
}

// NewNetwork creates an empty network. Seed drives jitter.
func NewNetwork(seed int64) *Network {
	return &Network{
		sites:        make(map[int]*Site),
		BackboneMbps: 10000,
		RTTFloor:     2 * time.Millisecond,
		JitterFrac:   0.1,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// AddSite registers a site. Adding a duplicate ID returns an error.
func (n *Network) AddSite(s *Site) error {
	if _, dup := n.sites[s.ID]; dup {
		return fmt.Errorf("netmodel: duplicate site %d", s.ID)
	}
	if s.UplinkMbps <= 0 || s.DownlinkMbps <= 0 {
		return fmt.Errorf("netmodel: site %d has non-positive link capacity", s.ID)
	}
	n.sites[s.ID] = s
	return nil
}

// Site returns a registered site.
func (n *Network) Site(id int) (*Site, bool) {
	s, ok := n.sites[id]
	return s, ok
}

// NumSites returns the registered site count.
func (n *Network) NumSites() int { return len(n.sites) }

// RTT estimates the round-trip time between two sites: a propagation term
// (speed of light in fibre ≈ 2/3 c, doubled for round trip, with a 1.5×
// path-stretch factor) plus the RTT floor, with multiplicative jitter.
func (n *Network) RTT(a, b int) (time.Duration, error) {
	sa, ok := n.sites[a]
	if !ok {
		return 0, fmt.Errorf("netmodel: unknown site %d", a)
	}
	sb, ok := n.sites[b]
	if !ok {
		return 0, fmt.Errorf("netmodel: unknown site %d", b)
	}
	km := HaversineKm(sa, sb)
	const fibreKmPerMs = 200.0 // ~2/3 speed of light
	oneWay := time.Duration(km * 1.5 / fibreKmPerMs * float64(time.Millisecond))
	rtt := 2*oneWay + n.RTTFloor
	if n.JitterFrac > 0 {
		j := 1 + n.JitterFrac*(2*n.rng.Float64()-1)
		rtt = time.Duration(float64(rtt) * j)
	}
	return rtt, nil
}

// PathMbps returns the bottleneck bandwidth of a single flow from src to
// dst: min(src uplink, dst downlink, backbone).
func (n *Network) PathMbps(src, dst int) (float64, error) {
	ss, ok := n.sites[src]
	if !ok {
		return 0, fmt.Errorf("netmodel: unknown site %d", src)
	}
	sd, ok := n.sites[dst]
	if !ok {
		return 0, fmt.Errorf("netmodel: unknown site %d", dst)
	}
	bw := ss.UplinkMbps
	if sd.DownlinkMbps < bw {
		bw = sd.DownlinkMbps
	}
	if n.BackboneMbps < bw {
		bw = n.BackboneMbps
	}
	return bw, nil
}

// TransferTime estimates moving `bytes` from src to dst at the path's
// bottleneck bandwidth shared among `flows` concurrent flows, plus one RTT
// of setup.
func (n *Network) TransferTime(src, dst int, bytes int64, flows int) (time.Duration, error) {
	if flows < 1 {
		flows = 1
	}
	bw, err := n.PathMbps(src, dst)
	if err != nil {
		return 0, err
	}
	rtt, err := n.RTT(src, dst)
	if err != nil {
		return 0, err
	}
	bits := float64(bytes) * 8
	seconds := bits / (bw / float64(flows) * 1e6)
	return rtt + time.Duration(seconds*float64(time.Second)), nil
}

// SiteSpec abbreviates site construction for generators.
type SiteSpec struct {
	Name     string
	Lat, Lon float64
	TZ       int
}

// WorldSites is a set of research-site locations used by the synthetic
// community generator (universities and labs across continents).
var WorldSites = []SiteSpec{
	{"chicago", 41.9, -87.6, -6},
	{"argonne", 41.7, -87.9, -6},
	{"new-york", 40.7, -74.0, -5},
	{"berkeley", 37.9, -122.3, -8},
	{"seattle", 47.6, -122.3, -8},
	{"austin", 30.3, -97.7, -6},
	{"london", 51.5, -0.1, 0},
	{"cardiff", 51.5, -3.2, 0},
	{"karlsruhe", 49.0, 8.4, 1},
	{"zurich", 47.4, 8.5, 1},
	{"barcelona", 41.4, 2.2, 1},
	{"amsterdam", 52.4, 4.9, 1},
	{"tokyo", 35.7, 139.7, 9},
	{"beijing", 39.9, 116.4, 8},
	{"melbourne", -37.8, 145.0, 10},
	{"sao-paulo", -23.5, -46.6, -3},
}

// GenerateSites creates n sites cycling through WorldSites with randomized
// access-link capacities in [minMbps, maxMbps], registered on a fresh
// Network.
func GenerateSites(n int, seed int64, minMbps, maxMbps float64) (*Network, []*Site, error) {
	if minMbps <= 0 || maxMbps < minMbps {
		return nil, nil, fmt.Errorf("netmodel: invalid capacity range [%v, %v]", minMbps, maxMbps)
	}
	net := NewNetwork(seed)
	rng := rand.New(rand.NewSource(seed + 1))
	sites := make([]*Site, 0, n)
	for i := 0; i < n; i++ {
		spec := WorldSites[i%len(WorldSites)]
		s := &Site{
			ID:   i,
			Name: fmt.Sprintf("%s-%d", spec.Name, i/len(WorldSites)),
			// Perturb coordinates slightly so co-located sites differ.
			Lat:            spec.Lat + rng.Float64()*0.5,
			Lon:            spec.Lon + rng.Float64()*0.5,
			UplinkMbps:     minMbps + rng.Float64()*(maxMbps-minMbps),
			DownlinkMbps:   minMbps + rng.Float64()*(maxMbps-minMbps),
			TimeZoneOffset: spec.TZ,
		}
		if err := net.AddSite(s); err != nil {
			return nil, nil, err
		}
		sites = append(sites, s)
	}
	return net, sites, nil
}
