package netmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func site(id int, lat, lon, up, down float64) *Site {
	return &Site{ID: id, Lat: lat, Lon: lon, UplinkMbps: up, DownlinkMbps: down}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Chicago to London ≈ 6350-6400 km.
	chi := site(0, 41.9, -87.6, 100, 100)
	lon := site(1, 51.5, -0.1, 100, 100)
	d := HaversineKm(chi, lon)
	if d < 6200 || d > 6500 {
		t.Fatalf("Chicago-London = %v km, want ~6350", d)
	}
	if HaversineKm(chi, chi) != 0 {
		t.Fatal("self distance should be 0")
	}
}

func TestAddSiteDuplicate(t *testing.T) {
	n := NewNetwork(1)
	if err := n.AddSite(site(1, 0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSite(site(1, 0, 0, 10, 10)); err == nil {
		t.Fatal("duplicate site accepted")
	}
	if err := n.AddSite(site(2, 0, 0, 0, 10)); err == nil {
		t.Fatal("zero-capacity site accepted")
	}
	if n.NumSites() != 1 {
		t.Fatalf("NumSites = %d", n.NumSites())
	}
}

func TestRTTGrowsWithDistance(t *testing.T) {
	n := NewNetwork(1)
	n.JitterFrac = 0
	n.AddSite(site(0, 41.9, -87.6, 100, 100)) // chicago
	n.AddSite(site(1, 40.7, -74.0, 100, 100)) // new york
	n.AddSite(site(2, 35.7, 139.7, 100, 100)) // tokyo
	near, err := n.RTT(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	far, err := n.RTT(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if near >= far {
		t.Fatalf("RTT chicago-ny (%v) should be < chicago-tokyo (%v)", near, far)
	}
	// Chicago-Tokyo ~10150 km → one-way ~76ms with stretch → RTT ~154ms.
	if far < 100*time.Millisecond || far > 250*time.Millisecond {
		t.Fatalf("chicago-tokyo RTT = %v, want ~150ms", far)
	}
}

func TestRTTUnknownSite(t *testing.T) {
	n := NewNetwork(1)
	n.AddSite(site(0, 0, 0, 10, 10))
	if _, err := n.RTT(0, 9); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := n.RTT(9, 0); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestPathMbpsBottleneck(t *testing.T) {
	n := NewNetwork(1)
	n.BackboneMbps = 1000
	n.AddSite(site(0, 0, 0, 50, 200))
	n.AddSite(site(1, 1, 1, 300, 80))
	bw, err := n.PathMbps(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bw != 50 { // src uplink is the bottleneck
		t.Fatalf("bw = %v, want 50", bw)
	}
	bw, _ = n.PathMbps(1, 0)
	if bw != 200 { // dst downlink 200 vs src uplink 300
		t.Fatalf("reverse bw = %v, want 200", bw)
	}
	n.BackboneMbps = 30
	bw, _ = n.PathMbps(0, 1)
	if bw != 30 {
		t.Fatalf("backbone-capped bw = %v, want 30", bw)
	}
}

func TestTransferTime(t *testing.T) {
	n := NewNetwork(1)
	n.JitterFrac = 0
	n.RTTFloor = 0
	n.AddSite(site(0, 0, 0, 80, 80))
	n.AddSite(site(1, 0, 0.001, 80, 80))
	// 100 MB at 80 Mbps = 800 Mbit / 80 Mbps = 10 s (RTT ~0).
	d, err := n.TransferTime(0, 1, 100e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Seconds()-10) > 0.2 {
		t.Fatalf("transfer time = %v, want ~10s", d)
	}
	// Two flows halve per-flow bandwidth → double time.
	d2, _ := n.TransferTime(0, 1, 100e6, 2)
	if math.Abs(d2.Seconds()-20) > 0.4 {
		t.Fatalf("2-flow transfer time = %v, want ~20s", d2)
	}
}

func TestGenerateSites(t *testing.T) {
	net, sites, err := GenerateSites(40, 7, 20, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 40 || net.NumSites() != 40 {
		t.Fatalf("generated %d sites", len(sites))
	}
	for _, s := range sites {
		if s.UplinkMbps < 20 || s.UplinkMbps > 100 {
			t.Fatalf("site %d uplink %v out of range", s.ID, s.UplinkMbps)
		}
	}
	if _, _, err := GenerateSites(5, 1, -1, 10); err == nil {
		t.Fatal("invalid range accepted")
	}
	if _, _, err := GenerateSites(5, 1, 100, 10); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestGenerateSitesDeterministic(t *testing.T) {
	_, a, _ := GenerateSites(10, 3, 10, 50)
	_, b, _ := GenerateSites(10, 3, 10, 50)
	for i := range a {
		if a[i].Lat != b[i].Lat || a[i].UplinkMbps != b[i].UplinkMbps {
			t.Fatalf("site %d differs between same-seed generations", i)
		}
	}
}

// Property: RTT is symmetric up to jitter; with jitter disabled, exactly.
func TestPropertyRTTSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 int8) bool {
		n := NewNetwork(1)
		n.JitterFrac = 0
		n.AddSite(site(0, float64(lat1)/2, float64(lon1), 10, 10))
		n.AddSite(site(1, float64(lat2)/2, float64(lon2), 10, 10))
		ab, err1 := n.RTT(0, 1)
		ba, err2 := n.RTT(1, 0)
		return err1 == nil && err2 == nil && ab == ba && ab >= n.RTTFloor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer time is monotone in bytes.
func TestPropertyTransferMonotone(t *testing.T) {
	n := NewNetwork(1)
	n.JitterFrac = 0
	n.AddSite(site(0, 10, 10, 55, 70))
	n.AddSite(site(1, -20, 40, 90, 45))
	f := func(a, b uint32) bool {
		small, big := int64(a), int64(b)
		if small > big {
			small, big = big, small
		}
		ds, err1 := n.TransferTime(0, 1, small, 1)
		db, err2 := n.TransferTime(0, 1, big, 1)
		return err1 == nil && err2 == nil && ds <= db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
