package transfer

import (
	"testing"

	"scdn/internal/netmodel"
	"scdn/internal/sim"
)

func BenchmarkTransferEngine(b *testing.B) {
	net, _, err := netmodel.GenerateSites(16, 1, 50, 1000)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.New(1)
	e := NewEngine(net, eng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Submit(i%16, (i+5)%16, 1e8, nil); err != nil {
			b.Fatal(err)
		}
		if eng.Pending() > 4096 {
			eng.Run(0)
		}
	}
	eng.Run(0)
}
