package transfer

import (
	"testing"
	"time"

	"scdn/internal/netmodel"
	"scdn/internal/sim"
)

func setup(t *testing.T, failureProb float64) (*Engine, *sim.Engine) {
	t.Helper()
	net := netmodel.NewNetwork(1)
	net.JitterFrac = 0
	for i := 0; i < 3; i++ {
		err := net.AddSite(&netmodel.Site{
			ID: i, Lat: float64(i * 10), Lon: float64(i * 10),
			UplinkMbps: 100, DownlinkMbps: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	eng := sim.New(7)
	e := NewEngine(net, eng)
	e.FailureProb = failureProb
	return e, eng
}

func TestSubmitValidation(t *testing.T) {
	e, _ := setup(t, 0)
	if err := e.Submit(0, 1, 0, nil); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if err := e.Submit(9, 1, 100, nil); err == nil {
		t.Fatal("unknown src accepted")
	}
	if err := e.Submit(0, 9, 100, nil); err == nil {
		t.Fatal("unknown dst accepted")
	}
}

func TestTransferCompletes(t *testing.T) {
	e, eng := setup(t, 0)
	var got *Result
	if err := e.Submit(0, 1, 100e6, func(r Result) { got = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run(0)
	if got == nil || got.Status != Completed {
		t.Fatalf("result = %+v", got)
	}
	// 100 MB at 100 Mbps ≈ 8 s (plus small RTT).
	secs := (got.Finished - got.Started).Duration().Seconds()
	if secs < 7 || secs > 10 {
		t.Fatalf("duration = %vs, want ~8", secs)
	}
	if got.ThroughputMbps < 80 || got.ThroughputMbps > 101 {
		t.Fatalf("throughput = %v", got.ThroughputMbps)
	}
	if e.CompletedCount != 1 || e.BytesMoved != 100e6 {
		t.Fatalf("engine totals wrong: %d completed, %d bytes", e.CompletedCount, e.BytesMoved)
	}
}

func TestSameSiteInstant(t *testing.T) {
	e, eng := setup(t, 1.0) // even certain failure doesn't affect local copies
	var got *Result
	e.Submit(2, 2, 1e9, func(r Result) { got = &r })
	eng.Run(0)
	if got == nil || got.Status != Completed {
		t.Fatalf("result = %+v", got)
	}
	if got.Finished != got.Started {
		t.Fatal("same-site transfer should be instantaneous")
	}
}

func TestRetriesUntilFailure(t *testing.T) {
	e, eng := setup(t, 1.0) // always fails
	e.MaxAttempts = 3
	var got *Result
	e.Submit(0, 1, 10e6, func(r Result) { got = &r })
	eng.Run(0)
	if got == nil || got.Status != Failed {
		t.Fatalf("result = %+v", got)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
	if e.FailedCount != 1 || e.CompletedCount != 0 {
		t.Fatal("engine totals wrong")
	}
}

func TestFlowAccountingReturnsToZero(t *testing.T) {
	e, eng := setup(t, 0.3)
	done := 0
	for i := 0; i < 20; i++ {
		e.Submit(0, 1, 5e6, func(Result) { done++ })
		e.Submit(1, 2, 5e6, func(Result) { done++ })
	}
	eng.Run(0)
	if done != 40 {
		t.Fatalf("done = %d, want 40", done)
	}
	for site := 0; site < 3; site++ {
		if f := e.ActiveFlows(site); f != 0 {
			t.Fatalf("site %d still has %d active flows", site, f)
		}
	}
	if e.CompletedCount+e.FailedCount != 40 {
		t.Fatalf("totals = %d+%d", e.CompletedCount, e.FailedCount)
	}
}

func TestConcurrentFlowsSlowDown(t *testing.T) {
	// Two concurrent transfers on the same path should take longer than a
	// lone one, because the second submission sees an active flow.
	e1, eng1 := setup(t, 0)
	var lone Result
	e1.Submit(0, 1, 50e6, func(r Result) { lone = r })
	eng1.Run(0)

	e2, eng2 := setup(t, 0)
	var results []Result
	e2.Submit(0, 1, 50e6, func(r Result) { results = append(results, r) })
	e2.Submit(0, 1, 50e6, func(r Result) { results = append(results, r) })
	eng2.Run(0)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	loneDur := (lone.Finished - lone.Started).Duration()
	secondDur := (results[1].Finished - results[1].Started).Duration()
	if secondDur <= loneDur {
		t.Fatalf("contended transfer (%v) should be slower than lone (%v)", secondDur, loneDur)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	// With a moderate failure probability and enough attempts, transfers
	// should mostly succeed; verify the retry path produces Completed
	// results with Attempts > 1 somewhere in a batch.
	e, eng := setup(t, 0.5)
	e.MaxAttempts = 10
	retried := false
	for i := 0; i < 30; i++ {
		e.Submit(0, 1, 1e6, func(r Result) {
			if r.Status == Completed && r.Attempts > 1 {
				retried = true
			}
		})
	}
	eng.Run(0)
	if !retried {
		t.Fatal("no transfer completed after a retry (statistically near-impossible)")
	}
}

func TestStatusString(t *testing.T) {
	if Completed.String() != "completed" || Failed.String() != "failed" {
		t.Fatal("Status strings wrong")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, int64) {
		e, eng := setup(t, 0.3)
		for i := 0; i < 25; i++ {
			e.Submit(i%3, (i+1)%3, int64(1e6*(i+1)), nil)
		}
		eng.Run(0)
		return e.CompletedCount, e.FailedCount, e.BytesMoved
	}
	c1, f1, b1 := run()
	c2, f2, b2 := run()
	if c1 != c2 || f1 != f2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, f1, b1, c2, f2, b2)
	}
}

func TestRetryBackoffDelaysCompletion(t *testing.T) {
	e, eng := setup(t, 1.0)
	e.MaxAttempts = 2
	e.RetryBackoff = time.Minute
	var got Result
	e.Submit(0, 1, 1e6, func(r Result) { got = r })
	eng.Run(0)
	if (got.Finished - got.Started).Duration() < time.Minute {
		t.Fatalf("backoff not applied: %v", got.Finished-got.Started)
	}
}

func TestParallelStreamsWinContention(t *testing.T) {
	// Two competing transfers on the same path: the one submitted while
	// another is active goes faster with more streams (it claims a larger
	// share of the bottleneck).
	run := func(streams int) time.Duration {
		e, eng := setup(t, 0)
		e.StreamsPerTransfer = 1
		e.Submit(0, 1, 200e6, nil) // background flow
		e.StreamsPerTransfer = streams
		var contended Result
		e.Submit(0, 1, 50e6, func(r Result) { contended = r })
		eng.Run(0)
		return (contended.Finished - contended.Started).Duration()
	}
	single := run(1)
	multi := run(4)
	if multi >= single {
		t.Fatalf("4-stream contended transfer (%v) should beat 1-stream (%v)", multi, single)
	}
}

func TestParallelStreamsNoBenefitAlone(t *testing.T) {
	// An uncontended transfer cannot exceed the physical bottleneck no
	// matter how many streams it opens.
	run := func(streams int) time.Duration {
		e, eng := setup(t, 0)
		e.StreamsPerTransfer = streams
		var r Result
		e.Submit(0, 1, 100e6, func(res Result) { r = res })
		eng.Run(0)
		return (r.Finished - r.Started).Duration()
	}
	single := run(1)
	multi := run(8)
	diff := single - multi
	if diff < 0 {
		diff = -diff
	}
	if diff > single/50 {
		t.Fatalf("uncontended: 8 streams (%v) should match 1 stream (%v)", multi, single)
	}
}

func TestStreamsFlowAccountingBalanced(t *testing.T) {
	e, eng := setup(t, 0.4)
	e.StreamsPerTransfer = 4
	for i := 0; i < 10; i++ {
		e.Submit(0, 1, 5e6, nil)
	}
	eng.Run(0)
	for site := 0; site < 3; site++ {
		if f := e.ActiveFlows(site); f != 0 {
			t.Fatalf("site %d has %d residual streams", site, f)
		}
	}
}
