// Package transfer simulates the third-party transfer service the paper
// delegates to GlobusTransfer (Section V-A): asynchronous transfers
// between sites with bandwidth sharing per site, transient failures, and
// automatic retries. It runs entirely on the sim engine; completion
// callbacks fire in virtual time.
package transfer

import (
	"fmt"
	"time"

	"scdn/internal/netmodel"
	"scdn/internal/sim"
)

// Status is a transfer's terminal state.
type Status int

// Transfer outcomes.
const (
	Completed Status = iota
	Failed
)

func (s Status) String() string {
	if s == Completed {
		return "completed"
	}
	return "failed"
}

// Result describes a finished transfer.
type Result struct {
	ID       uint64
	Status   Status
	Bytes    int64
	SrcSite  int
	DstSite  int
	Started  sim.Time
	Finished sim.Time
	Attempts int
	// ThroughputMbps is the achieved goodput over the whole transfer
	// (including retries); 0 for failed transfers.
	ThroughputMbps float64
}

// Engine executes transfers. Create with NewEngine.
type Engine struct {
	net    *netmodel.Network
	eng    *sim.Engine
	nextID uint64
	// FailureProb is the per-attempt probability of a transient failure.
	FailureProb float64
	// MaxAttempts bounds retries (GlobusTransfer-style reliability).
	MaxAttempts int
	// RetryBackoff delays re-attempts.
	RetryBackoff time.Duration
	// StreamsPerTransfer is the GridFTP-style parallel-stream count per
	// transfer (GlobusTransfer's trick): under contention a transfer with
	// S streams receives S shares of the bottleneck instead of one.
	// Minimum 1.
	StreamsPerTransfer int
	// activeFlows tracks concurrent stream counts per site (both
	// directions count toward a site's total) for bandwidth sharing.
	activeFlows map[int]int
	// Completed / FailedCount / BytesMoved are engine-level totals.
	CompletedCount uint64
	FailedCount    uint64
	BytesMoved     int64
}

// NewEngine binds a transfer engine to a network model and simulator.
func NewEngine(net *netmodel.Network, eng *sim.Engine) *Engine {
	return &Engine{
		net:                net,
		eng:                eng,
		FailureProb:        0.02,
		MaxAttempts:        3,
		RetryBackoff:       5 * time.Second,
		StreamsPerTransfer: 1,
		activeFlows:        make(map[int]int),
	}
}

// ActiveFlows returns the current flow count at a site.
func (e *Engine) ActiveFlows(site int) int { return e.activeFlows[site] }

// Submit schedules an asynchronous transfer of bytes from srcSite to
// dstSite; done fires in virtual time with the result. Submit itself
// validates sites and size synchronously.
func (e *Engine) Submit(srcSite, dstSite int, bytes int64, done func(Result)) error {
	if bytes <= 0 {
		return fmt.Errorf("transfer: non-positive size %d", bytes)
	}
	if _, ok := e.net.Site(srcSite); !ok {
		return fmt.Errorf("transfer: unknown source site %d", srcSite)
	}
	if _, ok := e.net.Site(dstSite); !ok {
		return fmt.Errorf("transfer: unknown destination site %d", dstSite)
	}
	e.nextID++
	id := e.nextID
	started := e.eng.Now()
	e.attempt(id, srcSite, dstSite, bytes, 1, started, done)
	return nil
}

func (e *Engine) attempt(id uint64, src, dst int, bytes int64, attempt int, started sim.Time, done func(Result)) {
	// Same-site transfers are instantaneous local copies.
	if src == dst {
		e.eng.Schedule(0, func() {
			e.finish(Result{ID: id, Status: Completed, Bytes: bytes, SrcSite: src, DstSite: dst,
				Started: started, Finished: e.eng.Now(), Attempts: attempt,
				ThroughputMbps: e.net.BackboneMbps}, done)
		})
		return
	}
	streams := e.StreamsPerTransfer
	if streams < 1 {
		streams = 1
	}
	existing := e.activeFlows[src]
	if f := e.activeFlows[dst]; f > existing {
		existing = f
	}
	// This transfer receives `streams` shares of the bottleneck among all
	// streams on the busier endpoint: share = bw × streams/(existing+streams).
	// Express that as an equivalent single-flow transfer of scaled size.
	scaled := bytes * int64(existing+streams) / int64(streams)
	if scaled < 1 {
		scaled = 1
	}
	dur, err := e.net.TransferTime(src, dst, scaled, 1)
	if err != nil {
		// Unreachable after Submit's validation, but fail safe.
		e.eng.Schedule(0, func() {
			e.finish(Result{ID: id, Status: Failed, Bytes: bytes, SrcSite: src, DstSite: dst,
				Started: started, Finished: e.eng.Now(), Attempts: attempt}, done)
		})
		return
	}
	e.activeFlows[src] += streams
	e.activeFlows[dst] += streams
	fails := e.eng.Rand("transfer-failures").Float64() < e.FailureProb
	if fails {
		// A transient failure surfaces after a fraction of the transfer.
		frac := 0.1 + 0.8*e.eng.Rand("transfer-failures").Float64()
		dur = time.Duration(float64(dur) * frac)
	}
	e.eng.Schedule(dur, func() {
		e.activeFlows[src] -= streams
		e.activeFlows[dst] -= streams
		if !fails {
			elapsed := (e.eng.Now() - started).Duration().Seconds()
			tput := 0.0
			if elapsed > 0 {
				tput = float64(bytes) * 8 / 1e6 / elapsed
			}
			e.finish(Result{ID: id, Status: Completed, Bytes: bytes, SrcSite: src, DstSite: dst,
				Started: started, Finished: e.eng.Now(), Attempts: attempt,
				ThroughputMbps: tput}, done)
			return
		}
		if attempt >= e.MaxAttempts {
			e.finish(Result{ID: id, Status: Failed, Bytes: bytes, SrcSite: src, DstSite: dst,
				Started: started, Finished: e.eng.Now(), Attempts: attempt}, done)
			return
		}
		e.eng.Schedule(e.RetryBackoff, func() {
			e.attempt(id, src, dst, bytes, attempt+1, started, done)
		})
	})
}

func (e *Engine) finish(r Result, done func(Result)) {
	if r.Status == Completed {
		e.CompletedCount++
		e.BytesMoved += r.Bytes
	} else {
		e.FailedCount++
	}
	if done != nil {
		done(r)
	}
}
