// Package loadharness is the delivery plane's honest measurement kit:
// an open-loop load generator (requests fired on a seeded arrival
// schedule, regardless of how many are still in flight) with
// coordinated-omission-safe latency recording, a log-bucketed HDR-style
// histogram cheap enough to share between the generator's hot loop and
// tests, and the versioned BENCH record schema plus the perf-ratchet
// comparison behind `make perfgate`.
//
// The closed-loop generator this package replaces measured the harness,
// not the server: when every worker waits for its previous response
// before sending the next request, a slow server quietly lowers the
// offered load and the recorded latencies omit exactly the requests
// that would have hurt — the coordinated-omission trap. Here the
// arrival schedule is fixed up front, each request's latency is
// measured from its *intended* start time (so time spent queued behind
// a saturated connection pool counts against the server), and the sweep
// across arrival rates yields a latency-vs-throughput curve whose knee
// is the number worth ratcheting.
package loadharness

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram bucket geometry: values from histMin up are bucketed at
// histSubBuckets buckets per power of two, giving a worst-case relative
// error of 2^(1/histSubBuckets)-1 (~4.4% at 16 sub-buckets) — the
// HDR-histogram trade: fixed memory, bounded relative error, O(1)
// lock-free recording from any number of goroutines.
const (
	histMin        = 1e-6 // 1µs: everything below lands in bucket 0
	histOctaves    = 36   // covers up to ~64,000s
	histSubBuckets = 16
	histBuckets    = histOctaves*histSubBuckets + 1
)

// Hist is a goroutine-safe log-bucketed latency histogram. The zero
// value is ready to use; all methods may be called concurrently.
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Uint64 // sum in nanoseconds, enough headroom for ~584y
	maxBits atomic.Uint64 // max sample, as float64 bits
}

// bucketIndex maps a non-negative sample (seconds) to its bucket.
func bucketIndex(v float64) int {
	if v < histMin {
		return 0
	}
	idx := int(math.Log2(v/histMin)*histSubBuckets) + 1
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketValue returns the representative value (upper bound) of a bucket.
func bucketValue(idx int) float64 {
	if idx <= 0 {
		return histMin
	}
	return histMin * math.Pow(2, float64(idx)/histSubBuckets)
}

// Observe records one latency sample in seconds. Negative samples are
// clamped to zero (a clock step mid-request must not panic the run).
func (h *Hist) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	h.buckets[bucketIndex(seconds)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(seconds * 1e9))
	for {
		old := h.maxBits.Load()
		if seconds <= math.Float64frombits(old) {
			return
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(seconds)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Mean returns the mean sample in seconds (0 when empty).
func (h *Hist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNS.Load()) / 1e9 / float64(n)
}

// Max returns the largest recorded sample in seconds.
func (h *Hist) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Quantile returns the q-quantile (0..1, clamped) in seconds by
// cumulative bucket rank; the answer is the bucket's upper bound, so it
// never understates the latency by more than the bucket width.
func (h *Hist) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == histBuckets-1 {
				// Overflow bucket: the true value may exceed the bucket
				// bound; the tracked max is the honest answer.
				return h.Max()
			}
			return bucketValue(i)
		}
	}
	return h.Max()
}

// Merge folds other's samples into h. Not atomic with respect to
// concurrent Observe calls on other; merge quiesced histograms.
func (h *Hist) Merge(other *Hist) {
	for i := 0; i < histBuckets; i++ {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sumNS.Add(other.sumNS.Load())
	for {
		old := h.maxBits.Load()
		om := other.maxBits.Load()
		if math.Float64frombits(om) <= math.Float64frombits(old) {
			return
		}
		if h.maxBits.CompareAndSwap(old, om) {
			return
		}
	}
}

// Latency is a latency digest in milliseconds — the shape every BENCH
// record stores.
type Latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max,omitempty"`
}

// Digest summarizes the histogram in its native units — used for
// per-request byte-throughput (MB/s) distributions, where the
// millisecond scaling of LatencyMS does not apply. The bucket geometry
// covers MB/s values up to ~64,000, far past anything a single box
// serves.
func (h *Hist) Digest() Latency {
	return Latency{
		Mean: h.Mean(),
		P50:  h.Quantile(0.5),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		Max:  h.Max(),
	}
}

// LatencyMS digests the histogram into milliseconds.
func (h *Hist) LatencyMS() Latency {
	return Latency{
		Mean: h.Mean() * 1000,
		P50:  h.Quantile(0.5) * 1000,
		P95:  h.Quantile(0.95) * 1000,
		P99:  h.Quantile(0.99) * 1000,
		Max:  h.Max() * 1000,
	}
}

func (l Latency) String() string {
	return fmt.Sprintf("mean %.2fms p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms",
		l.Mean, l.P50, l.P95, l.P99, l.Max)
}
