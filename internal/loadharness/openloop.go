package loadharness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RunConfig parameterizes one open-loop step at a single arrival rate.
type RunConfig struct {
	// Rate is the mean arrival rate in requests per second.
	Rate float64
	// Duration is how long the arrival schedule runs. Requests already
	// fired when it elapses are allowed to finish and are recorded.
	Duration time.Duration
	// MaxConns bounds concurrently executing requests (the connection
	// pool). An arrival that finds the pool exhausted still *starts* on
	// schedule — its wait for a slot is charged to its latency, exactly
	// the queueing delay a real client would see.
	MaxConns int
	// Dist is the inter-arrival distribution (DistExponential default).
	Dist string
	// Seed makes the schedule reproducible.
	Seed int64
}

// RateResult is one swept rate's outcome.
type RateResult struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Issued      uint64  `json:"issued"`
	Failed      uint64  `json:"failed"`
	// LatencyMS digests intended-start-time latencies: each sample runs
	// from the moment the schedule said the request should begin (not
	// from when a connection freed up) to its completion.
	LatencyMS Latency `json:"latency_ms"`
	// Bytes, AchievedMBps, and RequestMBps appear only on byte-measured
	// steps (RunBytes): total payload bytes moved, wall-clock byte
	// throughput in MB/s (1e6 bytes), and the per-request MB/s
	// distribution — the step's second axis, so a serve path that keeps
	// its request knee but halves its byte rate is still caught.
	Bytes        uint64   `json:"bytes,omitempty"`
	AchievedMBps float64  `json:"achieved_mbps,omitempty"`
	RequestMBps  *Latency `json:"request_mbps,omitempty"`

	// Hist carries the raw latency histogram for callers that
	// aggregate; MBpsHist the per-request MB/s histogram of a
	// byte-measured step. Neither is serialized.
	Hist     *Hist `json:"-"`
	MBpsHist *Hist `json:"-"`
}

// Run executes one open-loop step: arrivals fire on the seeded schedule
// regardless of in-flight count, each request's latency is measured from
// its intended start time, and the call returns once every fired request
// has completed. do performs one request; a non-nil error counts as a
// failure (the latency is still recorded — failures are usually the
// slow ones, dropping them would re-introduce the omission).
func Run(ctx context.Context, cfg RunConfig, do func(context.Context) error) (RateResult, error) {
	res, err := RunBytes(ctx, cfg, func(ctx context.Context) (int64, error) {
		return 0, do(ctx)
	})
	// A request-only run carries no byte axis.
	res.Bytes, res.AchievedMBps, res.RequestMBps, res.MBpsHist = 0, 0, nil, nil
	return res, err
}

// RunBytes is Run for byte-throughput measurement: do additionally
// reports how many payload bytes the request moved, and the step's
// result carries the byte axis — total bytes, wall-clock MB/s, and the
// per-request MB/s distribution (each request's bytes over its
// intended-start-time latency, so queueing delay depresses the number
// exactly as a client would experience it).
func RunBytes(ctx context.Context, cfg RunConfig, do func(context.Context) (int64, error)) (RateResult, error) {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 64
	}
	if cfg.Dist == "" {
		cfg.Dist = DistExponential
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	sched, err := NewArrivals(cfg.Dist, cfg.Rate, cfg.Seed)
	if err != nil {
		return RateResult{}, err
	}
	var (
		hist   Hist
		mbps   Hist
		bytes  atomic.Uint64
		issued atomic.Uint64
		failed atomic.Uint64
		wg     sync.WaitGroup
		sem    = make(chan struct{}, cfg.MaxConns)
	)
	start := time.Now()
	for {
		offset := sched.Next()
		if offset >= cfg.Duration {
			break
		}
		// Sleep until the intended start; when the generator itself is
		// behind (offset already past), fire immediately — the intended
		// time, not the actual fire time, is what latency is measured
		// from, so generator lag self-reports as latency instead of
		// silently thinning the load.
		if wait := offset - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				wg.Wait()
				return RateResult{}, ctx.Err()
			}
		}
		intended := start.Add(offset)
		issued.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{} // pool slot; the wait counts against latency
			n, err := do(ctx)
			<-sem
			lat := time.Since(intended).Seconds()
			hist.Observe(lat)
			if err != nil {
				failed.Add(1)
				return
			}
			if n > 0 {
				bytes.Add(uint64(n))
				if lat > 0 {
					mbps.Observe(float64(n) / lat / 1e6)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	res := RateResult{
		OfferedRPS: cfg.Rate,
		Issued:     issued.Load(),
		Failed:     failed.Load(),
		Bytes:      bytes.Load(),
		LatencyMS:  hist.LatencyMS(),
		Hist:       &hist,
		MBpsHist:   &mbps,
	}
	if elapsed > 0 {
		res.AchievedRPS = float64(issued.Load()-failed.Load()) / elapsed
		res.AchievedMBps = float64(bytes.Load()) / elapsed / 1e6
	}
	if mbps.Count() > 0 {
		d := mbps.Digest()
		res.RequestMBps = &d
	}
	return res, nil
}

// SweepConfig parameterizes a rate sweep: the same schedule parameters
// applied across a ladder of arrival rates.
type SweepConfig struct {
	Rates    []float64
	Duration time.Duration
	MaxConns int
	Dist     string
	Seed     int64
	// Settle is an idle pause between steps so one step's stragglers
	// don't pollute the next step's measurements.
	Settle time.Duration
	// Progress, when non-nil, is called after each completed step.
	Progress func(RateResult)
}

// Sweep runs one open-loop step per configured rate, in order, and
// returns the per-rate results.
func Sweep(ctx context.Context, cfg SweepConfig, do func(context.Context) error) ([]RateResult, error) {
	return SweepBytes(ctx, cfg, func(ctx context.Context) (int64, error) {
		return 0, do(ctx)
	})
}

// SweepBytes is Sweep over a byte-measuring request function: each
// step's result carries the byte-throughput axis (see RunBytes).
func SweepBytes(ctx context.Context, cfg SweepConfig, do func(context.Context) (int64, error)) ([]RateResult, error) {
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("loadharness: sweep needs at least one arrival rate")
	}
	out := make([]RateResult, 0, len(cfg.Rates))
	for i, rate := range cfg.Rates {
		res, err := RunBytes(ctx, RunConfig{
			Rate: rate, Duration: cfg.Duration, MaxConns: cfg.MaxConns,
			Dist: cfg.Dist, Seed: cfg.Seed + int64(i),
		}, do)
		if err != nil {
			return out, err
		}
		out = append(out, res)
		if cfg.Progress != nil {
			cfg.Progress(res)
		}
		if cfg.Settle > 0 && i < len(cfg.Rates)-1 {
			select {
			case <-time.After(cfg.Settle):
			case <-ctx.Done():
				return out, ctx.Err()
			}
		}
	}
	return out, nil
}

// Knee locates the latency-vs-throughput curve's knee: the highest
// swept rate the server still absorbed — achieved throughput within
// kneeThroughputFloor of offered, p99 within kneeLatencyInflation of
// the lowest rate's p99 (with an absolute floor so microsecond-level
// baselines don't declare a knee on scheduler jitter). When no rate
// qualifies (the ladder started past saturation), the point with the
// highest achieved throughput is returned, which is then the measured
// capacity. Returns the index into results, or -1 for no results.
func Knee(results []RateResult) int {
	if len(results) == 0 {
		return -1
	}
	const (
		kneeThroughputFloor  = 0.90
		kneeLatencyInflation = 10.0
		kneeLatencyFloorMS   = 5.0
	)
	baseP99 := results[0].LatencyMS.P99
	capMS := baseP99 * kneeLatencyInflation
	if capMS < kneeLatencyFloorMS {
		capMS = kneeLatencyFloorMS
	}
	best := -1
	for i, r := range results {
		if r.Issued == 0 {
			continue
		}
		if r.AchievedRPS >= kneeThroughputFloor*r.OfferedRPS && r.LatencyMS.P99 <= capMS {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	for i, r := range results {
		if best < 0 || r.AchievedRPS > results[best].AchievedRPS {
			best = i
		}
	}
	return best
}
