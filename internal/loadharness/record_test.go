package loadharness

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHitRateGuarded(t *testing.T) {
	if got := HitRate(0, 0); got != 0 {
		t.Fatalf("HitRate(0,0) = %g, want 0 (not NaN)", got)
	}
	if got := HitRate(3, 1); got != 0.75 {
		t.Fatalf("HitRate(3,1) = %g, want 0.75", got)
	}
}

func TestCurrentHost(t *testing.T) {
	h := CurrentHost()
	if h.GOMAXPROCS < 1 || h.NumCPU < 1 || !strings.HasPrefix(h.GoVersion, "go") {
		t.Fatalf("implausible host info: %+v", h)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_delivery.json")
	rec := &DeliveryRecord{
		SchemaVersion: SchemaVersion,
		Host:          CurrentHost(),
		Mode:          "open-loop",
		Requests:      1200,
		PayloadMode:   "dir",
		LatencyMS:     Latency{Mean: 0.4, P50: 0.3, P95: 0.9, P99: 1.2, Max: 4},
		CacheHits:     10,
		CacheMisses:   2,
		CacheHitRate:  HitRate(10, 2),
		Reconciled:    true,
		OpenLoop: &OpenLoop{
			Distribution: DistExponential, DurationSeconds: 1, MaxConns: 64,
			Rates: []RateResult{{OfferedRPS: 1000, AchievedRPS: 990, Issued: 990}},
			Knee:  &KneePoint{OfferedRPS: 1000, AchievedRPS: 990, P99MS: 1.2},
		},
	}
	if err := WriteRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeliveryRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.OpenLoop == nil || got.OpenLoop.Knee == nil {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.OpenLoop.Knee.AchievedRPS != 990 {
		t.Fatalf("knee achieved = %g, want 990", got.OpenLoop.Knee.AchievedRPS)
	}
}

func TestReadDeliveryRecordErrors(t *testing.T) {
	if _, err := ReadDeliveryRecord(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := WriteRecord(bad, "not an object"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDeliveryRecord(bad); err == nil {
		t.Error("malformed record accepted")
	}
}

func TestNewOpenLoopComputesKnee(t *testing.T) {
	cfg := SweepConfig{Rates: []float64{100, 200}, Duration: time.Second,
		MaxConns: 8, Dist: DistExponential}
	results := []RateResult{
		{OfferedRPS: 100, AchievedRPS: 99, Issued: 99, LatencyMS: Latency{P99: 1}},
		{OfferedRPS: 200, AchievedRPS: 198, Issued: 198, LatencyMS: Latency{P99: 1.5}},
	}
	ol := NewOpenLoop(cfg, results)
	if ol.Knee == nil || ol.Knee.OfferedRPS != 200 {
		t.Fatalf("knee = %+v, want the 200 rps step", ol.Knee)
	}
	if ol.Distribution != DistExponential || ol.MaxConns != 8 {
		t.Fatalf("config not carried: %+v", ol)
	}
}

func healthyRecord(kneeRPS, kneeP99 float64) *DeliveryRecord {
	return &DeliveryRecord{
		SchemaVersion: SchemaVersion,
		Reconciled:    true,
		OpenLoop: &OpenLoop{
			Knee: &KneePoint{OfferedRPS: kneeRPS, AchievedRPS: kneeRPS, P99MS: kneeP99},
		},
	}
}

// TestCompareDeliveryRatchet is the acceptance-criteria gate test: the
// comparison must pass a healthy candidate against the baseline and
// demonstrably fail a doctored regression record.
func TestCompareDeliveryRatchet(t *testing.T) {
	baseline := healthyRecord(10000, 40)

	t.Run("healthy candidate passes", func(t *testing.T) {
		if err := CompareDelivery(baseline, healthyRecord(9500, 45), GateOptions{}); err != nil {
			t.Fatalf("healthy candidate rejected: %v", err)
		}
	})
	t.Run("doctored throughput regression fails", func(t *testing.T) {
		// Knee at 30% of baseline: past the default 50% tolerance band.
		err := CompareDelivery(baseline, healthyRecord(3000, 40), GateOptions{})
		if err == nil || !strings.Contains(err.Error(), "knee throughput regressed") {
			t.Fatalf("doctored throughput record passed the gate: %v", err)
		}
	})
	t.Run("doctored p99 regression fails", func(t *testing.T) {
		err := CompareDelivery(baseline, healthyRecord(10000, 500), GateOptions{})
		if err == nil || !strings.Contains(err.Error(), "knee p99 regressed") {
			t.Fatalf("doctored p99 record passed the gate: %v", err)
		}
	})
	t.Run("p99 floor absorbs loopback jitter", func(t *testing.T) {
		// Baseline p99 0.5ms, candidate 20ms: 40× inflation but below the
		// 25ms absolute floor — shared-runner noise, not a regression.
		if err := CompareDelivery(healthyRecord(10000, 0.5), healthyRecord(10000, 20), GateOptions{}); err != nil {
			t.Fatalf("sub-floor p99 rejected: %v", err)
		}
	})
	t.Run("failed requests fail the gate", func(t *testing.T) {
		cand := healthyRecord(10000, 40)
		cand.Failed = 3
		if err := CompareDelivery(baseline, cand, GateOptions{}); err == nil {
			t.Fatal("candidate with failures passed")
		}
	})
	t.Run("unreconciled candidate fails", func(t *testing.T) {
		cand := healthyRecord(10000, 40)
		cand.Reconciled = false
		if err := CompareDelivery(baseline, cand, GateOptions{}); err == nil {
			t.Fatal("unreconciled candidate passed")
		}
	})
	t.Run("candidate without knee fails", func(t *testing.T) {
		cand := healthyRecord(10000, 40)
		cand.OpenLoop = nil
		if err := CompareDelivery(baseline, cand, GateOptions{}); err == nil {
			t.Fatal("knee-less candidate passed")
		}
	})
	t.Run("pre-ratchet baseline only checks health", func(t *testing.T) {
		old := &DeliveryRecord{Reconciled: true} // schema v1: no open_loop
		if err := CompareDelivery(old, healthyRecord(100, 1), GateOptions{}); err != nil {
			t.Fatalf("v1 baseline should not anchor a ratchet: %v", err)
		}
	})
	t.Run("custom tolerance", func(t *testing.T) {
		// 20% tolerance: a 25% drop fails.
		err := CompareDelivery(baseline, healthyRecord(7500, 40), GateOptions{Tolerance: 0.2})
		if err == nil {
			t.Fatal("25% drop passed a 20% tolerance")
		}
	})
}

func TestHostMismatch(t *testing.T) {
	a := Host{GOMAXPROCS: 1, NumCPU: 1, GoVersion: "go1.24"}
	if diff := HostMismatch(a, a); diff != "" {
		t.Fatalf("identical hosts reported a mismatch: %q", diff)
	}
	// Go version alone is not a hardware mismatch.
	b := a
	b.GoVersion = "go1.25"
	if diff := HostMismatch(a, b); diff != "" {
		t.Fatalf("go-version-only difference reported: %q", diff)
	}
	b = Host{GOMAXPROCS: 16, NumCPU: 32, GoVersion: "go1.24"}
	diff := HostMismatch(a, b)
	if !strings.Contains(diff, "GOMAXPROCS 1 vs 16") || !strings.Contains(diff, "NumCPU 1 vs 32") {
		t.Fatalf("mismatch description incomplete: %q", diff)
	}
}

func healthyLargeRecord(mbps float64) *LargeRecord {
	return &LargeRecord{
		SchemaVersion:   SchemaVersion,
		Host:            CurrentHost(),
		Mode:            "open-loop",
		SustainedMBps:   mbps,
		SegmentedServes: 40,
		SegmentFetches:  12,
		Reconciled:      true,
		OpenLoop: &OpenLoop{
			Knee: &KneePoint{OfferedRPS: 8, AchievedRPS: 8, P99MS: 30},
		},
	}
}

func TestLargeRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_large.json")
	rec := healthyLargeRecord(120)
	rec.Mix = LargeMix{Whole: 10, Ranged: 25, SegmentWalk: 15}
	rec.SegmentSize = 4 << 20
	rec.BytesPerDataset = 256 << 20
	if err := WriteRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLargeRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SustainedMBps != 120 || got.Mix.Ranged != 25 || got.SegmentSize != 4<<20 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.OpenLoop == nil || got.OpenLoop.Knee == nil {
		t.Fatal("round trip lost the open-loop knee")
	}
	if _, err := ReadLargeRecord(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing large record accepted")
	}
}

// TestCompareLargeRatchet is the byte axis's gate test, mirror of
// TestCompareDeliveryRatchet: healthy candidates pass, doctored
// byte-throughput regressions and unhealthy records demonstrably fail.
func TestCompareLargeRatchet(t *testing.T) {
	baseline := healthyLargeRecord(100)

	t.Run("healthy candidate passes", func(t *testing.T) {
		if err := CompareLarge(baseline, healthyLargeRecord(90), GateOptions{}); err != nil {
			t.Fatalf("healthy candidate rejected: %v", err)
		}
	})
	t.Run("doctored byte-throughput regression fails", func(t *testing.T) {
		err := CompareLarge(baseline, healthyLargeRecord(30), GateOptions{})
		if err == nil || !strings.Contains(err.Error(), "byte throughput regressed") {
			t.Fatalf("doctored byte record passed the gate: %v", err)
		}
	})
	t.Run("no baseline starts the ratchet", func(t *testing.T) {
		if err := CompareLarge(nil, healthyLargeRecord(5), GateOptions{}); err != nil {
			t.Fatalf("first record rejected: %v", err)
		}
	})
	t.Run("candidate off the segmented path fails", func(t *testing.T) {
		cand := healthyLargeRecord(100)
		cand.SegmentedServes, cand.SegmentFetches = 0, 0
		err := CompareLarge(baseline, cand, GateOptions{})
		if err == nil || !strings.Contains(err.Error(), "segmented path") {
			t.Fatalf("whole-file-path candidate passed the byte gate: %v", err)
		}
	})
	t.Run("segment-endpoint-only candidate passes", func(t *testing.T) {
		cand := healthyLargeRecord(100)
		cand.SegmentedServes = 0 // all traffic via /segments/{n}
		if err := CompareLarge(baseline, cand, GateOptions{}); err != nil {
			t.Fatalf("segment-endpoint candidate rejected: %v", err)
		}
	})
	t.Run("failed requests fail the gate", func(t *testing.T) {
		cand := healthyLargeRecord(100)
		cand.Failed = 1
		if err := CompareLarge(baseline, cand, GateOptions{}); err == nil {
			t.Fatal("candidate with failures passed")
		}
	})
	t.Run("unreconciled candidate fails", func(t *testing.T) {
		cand := healthyLargeRecord(100)
		cand.Reconciled = false
		if err := CompareLarge(baseline, cand, GateOptions{}); err == nil {
			t.Fatal("unreconciled candidate passed")
		}
	})
	t.Run("candidate without knee fails", func(t *testing.T) {
		cand := healthyLargeRecord(100)
		cand.OpenLoop = nil
		if err := CompareLarge(baseline, cand, GateOptions{}); err == nil {
			t.Fatal("knee-less candidate passed")
		}
	})
	t.Run("zero sustained throughput fails", func(t *testing.T) {
		if err := CompareLarge(nil, healthyLargeRecord(0), GateOptions{}); err == nil {
			t.Fatal("0 MB/s candidate passed")
		}
	})
	t.Run("custom tolerance", func(t *testing.T) {
		err := CompareLarge(baseline, healthyLargeRecord(75), GateOptions{Tolerance: 0.2})
		if err == nil {
			t.Fatal("25% drop passed a 20% tolerance")
		}
	})
}
