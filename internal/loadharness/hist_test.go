package loadharness

import (
	"math"
	"sync"
	"testing"
)

func TestHistQuantileAccuracy(t *testing.T) {
	var h Hist
	// 1..10000 µs uniformly: quantiles are known exactly.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	if got := h.Count(); got != 10000 {
		t.Fatalf("Count = %d, want 10000", got)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5000e-6},
		{0.95, 9500e-6},
		{0.99, 9900e-6},
	} {
		got := h.Quantile(tc.q)
		// Bucket geometry promises ~4.4% relative error, never understating
		// beyond one bucket width.
		if got < tc.want*0.95 || got > tc.want*1.10 {
			t.Errorf("Quantile(%g) = %g, want within 5%%/10%% of %g", tc.q, got, tc.want)
		}
	}
	if got, want := h.Mean(), 5000.5e-6; math.Abs(got-want)/want > 0.01 {
		t.Errorf("Mean = %g, want ~%g", got, want)
	}
	if got := h.Max(); got != 10000e-6 {
		t.Errorf("Max = %g, want %g", got, 10000e-6)
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %g, want 0", got)
	}
	h.Observe(-5)         // clock step: clamps to 0, no panic
	h.Observe(math.NaN()) // defensive: clamps to 0
	h.Observe(1e12)       // far past the last octave: overflow bucket
	if got := h.Count(); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	// The overflow bucket reports the tracked max, not the bucket bound.
	if got := h.Quantile(1); got != 1e12 {
		t.Errorf("Quantile(1) = %g, want 1e12 (tracked max)", got)
	}
	if got := h.Quantile(-1); got != histMin {
		t.Errorf("Quantile(-1) = %g, want clamp to first bucket %g", got, histMin)
	}
}

func TestHistQuantileNeverUnderstates(t *testing.T) {
	var h Hist
	samples := []float64{0.0001, 0.0005, 0.003, 0.003, 0.020, 0.150}
	for _, s := range samples {
		h.Observe(s)
	}
	// p100 must cover the max exactly; lower quantiles must be >= the true
	// order statistic (bucket upper bound semantics).
	if got := h.Quantile(1); got < 0.150 {
		t.Errorf("Quantile(1) = %g understates max 0.150", got)
	}
	if got := h.Quantile(0.5); got < 0.0005 {
		t.Errorf("Quantile(0.5) = %g understates true p50 0.003's lower neighbor", got)
	}
}

func TestHistConcurrentObserve(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-6)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
	var sum uint64
	for i := range h.buckets {
		sum += h.buckets[i].Load()
	}
	if sum != goroutines*per {
		t.Fatalf("bucket sum = %d, want %d", sum, goroutines*per)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i) * 1e-6)
	}
	b.Observe(0.5)
	a.Merge(&b)
	if got := a.Count(); got != 101 {
		t.Fatalf("merged Count = %d, want 101", got)
	}
	if got := a.Max(); got != 0.5 {
		t.Errorf("merged Max = %g, want 0.5", got)
	}
}

func TestLatencyMS(t *testing.T) {
	var h Hist
	h.Observe(0.010) // 10ms
	l := h.LatencyMS()
	if l.P99 < 10 || l.P99 > 11 {
		t.Errorf("P99 = %gms, want ~10ms", l.P99)
	}
	if l.Max != 10 {
		t.Errorf("Max = %gms, want 10ms", l.Max)
	}
	if s := l.String(); s == "" {
		t.Error("String() empty")
	}
}

// TestHistDigestNativeUnits: Digest must summarize in the histogram's
// own units (MB/s for byte-rate hists), 1000× smaller than LatencyMS's
// millisecond scaling of the same buckets.
func TestHistDigestNativeUnits(t *testing.T) {
	var h Hist
	for i := 0; i < 1000; i++ {
		h.Observe(2.0) // e.g. 2 MB/s per request
	}
	d := h.Digest()
	if d.P50 < 1.9 || d.P50 > 2.2 {
		t.Fatalf("native p50 = %g, want ~2", d.P50)
	}
	ms := h.LatencyMS()
	if got := ms.P50 / d.P50; got < 999 || got > 1001 {
		t.Fatalf("LatencyMS/Digest ratio = %g, want 1000", got)
	}
	if d.Max != h.Max() || d.Mean != h.Mean() {
		t.Fatalf("digest mean/max diverge from accessors: %+v", d)
	}
}
