package loadharness

import (
	"testing"
	"time"
)

func TestArrivalsRejectsBadConfig(t *testing.T) {
	if _, err := NewArrivals(DistExponential, 0, 1); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := NewArrivals(DistExponential, -5, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewArrivals("zipf", 100, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	for _, dist := range []string{DistExponential, DistUniform} {
		a1, err := NewArrivals(dist, 1000, 42)
		if err != nil {
			t.Fatal(err)
		}
		a2, _ := NewArrivals(dist, 1000, 42)
		for i := 0; i < 100; i++ {
			if x, y := a1.Next(), a2.Next(); x != y {
				t.Fatalf("%s: same seed diverged at draw %d: %v vs %v", dist, i, x, y)
			}
		}
	}
}

func TestArrivalsMonotoneAndRate(t *testing.T) {
	for _, dist := range []string{DistExponential, DistUniform} {
		a, err := NewArrivals(dist, 1000, 7) // mean gap 1ms
		if err != nil {
			t.Fatal(err)
		}
		const n = 10000
		var prev, last time.Duration
		for i := 0; i < n; i++ {
			at := a.Next()
			if at < prev {
				t.Fatalf("%s: offsets decreased: %v after %v", dist, at, prev)
			}
			prev, last = at, at
		}
		// n draws at 1000/s should land near n milliseconds; both laws have
		// mean gap 1/rate, so allow 10% statistical slack.
		want := time.Duration(n) * time.Millisecond
		if last < want*9/10 || last > want*11/10 {
			t.Errorf("%s: %d draws span %v, want ~%v", dist, n, last, want)
		}
	}
}
