package loadharness

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Distribution names accepted by NewArrivals.
const (
	DistExponential = "exp"     // Poisson process: exponential inter-arrivals
	DistUniform     = "uniform" // jittered inter-arrivals, uniform in (0, 2/rate)
)

// Arrivals is a seeded arrival-time schedule at a fixed mean rate. The
// schedule is decided by the seed alone — never by how the server is
// responding — which is what makes the generator open-loop: Next keeps
// handing out intended start times on the same clock whether or not the
// previous requests have completed.
type Arrivals struct {
	rng  *rand.Rand
	dist string
	mean float64 // mean inter-arrival gap in seconds
	next float64 // next arrival offset from schedule start, seconds
}

// NewArrivals builds a schedule with mean arrival rate `rate` requests
// per second. dist selects the inter-arrival law: DistExponential (a
// Poisson process — the standard open-world client model) or
// DistUniform (bounded jitter around the mean gap).
func NewArrivals(dist string, rate float64, seed int64) (*Arrivals, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadharness: arrival rate must be positive, got %g", rate)
	}
	switch dist {
	case DistExponential, DistUniform:
	default:
		return nil, fmt.Errorf("loadharness: unknown arrival distribution %q (want %q or %q)",
			dist, DistExponential, DistUniform)
	}
	return &Arrivals{
		rng:  rand.New(rand.NewSource(seed)),
		dist: dist,
		mean: 1 / rate,
	}, nil
}

// Next returns the next intended start time as an offset from the
// schedule's start. Offsets are strictly non-decreasing.
func (a *Arrivals) Next() time.Duration {
	at := a.next
	var gap float64
	switch a.dist {
	case DistExponential:
		gap = a.rng.ExpFloat64() * a.mean
	case DistUniform:
		gap = a.rng.Float64() * 2 * a.mean
	}
	// Clamp pathological tail draws so one 10-sigma gap cannot stall a
	// short smoke run.
	if max := 10 * a.mean; gap > max {
		gap = max
	}
	a.next = at + gap
	return time.Duration(math.Round(at * 1e9))
}
