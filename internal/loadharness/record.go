package loadharness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// SchemaVersion is the current BENCH_*.json schema. History:
//
//	(absent) — PR 2–6 records: closed-loop only, no host info, hit rate
//	           unguarded against zero-sample runs.
//	2        — schema_version + host block on every record, guarded
//	           payload_cache_hit_rate, optional open_loop section with
//	           the rate sweep and knee point.
const SchemaVersion = 2

// Host pins the hardware/runtime context a BENCH record was produced
// under, so numbers from different machines are comparable (or visibly
// not): a knee measured at GOMAXPROCS=1 on a shared runner is not a
// regression against one measured on a 16-core box.
type Host struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

// CurrentHost captures the running process's host context.
func CurrentHost() Host {
	return Host{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
}

// KneePoint is the sweep's operating point: the highest arrival rate
// the serve path absorbed without falling off the latency cliff.
type KneePoint struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P99MS       float64 `json:"p99_ms"`
}

// OpenLoop is a delivery record's open-loop section: the swept
// latency-vs-throughput curve and its knee.
type OpenLoop struct {
	Distribution    string       `json:"distribution"`
	DurationSeconds float64      `json:"duration_seconds"`
	MaxConns        int          `json:"max_conns"`
	Rates           []RateResult `json:"rates"`
	Knee            *KneePoint   `json:"knee,omitempty"`
}

// NewOpenLoop assembles the open-loop section from sweep results.
func NewOpenLoop(cfg SweepConfig, results []RateResult) *OpenLoop {
	ol := &OpenLoop{
		Distribution:    cfg.Dist,
		DurationSeconds: cfg.Duration.Seconds(),
		MaxConns:        cfg.MaxConns,
		Rates:           results,
	}
	if i := Knee(results); i >= 0 {
		ol.Knee = &KneePoint{
			OfferedRPS:  results[i].OfferedRPS,
			AchievedRPS: results[i].AchievedRPS,
			P99MS:       results[i].LatencyMS.P99,
		}
	}
	return ol
}

// ChurnRecord is the optional churn section shared by delivery, churn,
// and ingest records.
type ChurnRecord struct {
	Spec             string `json:"spec"`
	Kills            int    `json:"kills"`
	Restarts         int    `json:"restarts"`
	AllRestarted     bool   `json:"all_restarted"`
	ExcusedFailures  uint64 `json:"excused_failures"`
	DeadMembers      uint64 `json:"repair_dead_members"`
	Readmissions     uint64 `json:"repair_readmissions"`
	ReplicasRestored uint64 `json:"repair_replicas_restored"`
	Churn503s        uint64 `json:"churn_unavailable"`
}

// DeliveryRecord is the BENCH_delivery.json schema: the delivery
// plane's perf trajectory across PRs, and perfgate's ratchet unit.
type DeliveryRecord struct {
	SchemaVersion   int          `json:"schema_version"`
	Host            Host         `json:"host"`
	Mode            string       `json:"mode"` // "closed-loop" or "open-loop"
	Workers         int          `json:"workers,omitempty"`
	Requests        int          `json:"requests"`
	Stripes         int          `json:"stripes,omitempty"`
	Edges           int          `json:"edges"`
	Datasets        int          `json:"datasets"`
	BytesPerDataset int64        `json:"bytes_per_dataset"`
	PayloadMode     string       `json:"payload_mode"`
	ElapsedSeconds  float64      `json:"elapsed_seconds"`
	ThroughputRPS   float64      `json:"throughput_rps"`
	ThroughputMBps  float64      `json:"throughput_mbps"`
	LatencyMS       Latency      `json:"latency_ms"`
	Failed          uint64       `json:"failed"`
	CacheHits       uint64       `json:"payload_cache_hits"`
	CacheMisses     uint64       `json:"payload_cache_misses"`
	CacheHitRate    float64      `json:"payload_cache_hit_rate"`
	RangeRequests   uint64       `json:"range_requests"`
	Reconciled      bool         `json:"reconciled"`
	OpenLoop        *OpenLoop    `json:"open_loop,omitempty"`
	Churn           *ChurnRecord `json:"churn,omitempty"`
}

// HitRate is hits/(hits+misses), guarded against the zero-sample case —
// a run that never touched the payload cache reports 0, not NaN.
func HitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// WriteRecord marshals any BENCH record as indented JSON.
func WriteRecord(path string, rec any) error {
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadDeliveryRecord loads a BENCH_delivery.json history record.
func ReadDeliveryRecord(path string) (*DeliveryRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec DeliveryRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("loadharness: parse %s: %w", path, err)
	}
	return &rec, nil
}

// GateOptions tunes the perfgate tolerance band. Zero values get
// defaults suited to shared CI runners (loose but real).
type GateOptions struct {
	// Tolerance is the allowed fractional knee-throughput regression:
	// 0.5 fails only when the candidate knee falls below half the
	// baseline knee. Default 0.5.
	Tolerance float64
	// MaxP99Inflation is the allowed knee-p99 growth factor, with an
	// absolute floor of GateP99FloorMS so microsecond baselines don't
	// fail on scheduler noise. Default 4.
	MaxP99Inflation float64
}

// GateP99FloorMS is the absolute knee-p99 level below which the gate
// never fails on latency: single-digit milliseconds on a loopback smoke
// are indistinguishable from scheduler jitter.
const GateP99FloorMS = 25.0

// CompareDelivery is the perf ratchet: it fails (returns an error) when
// the candidate record regresses past the tolerance band relative to
// the checked-in baseline — knee throughput down by more than
// Tolerance, knee p99 inflated past MaxP99Inflation (and above the
// absolute floor), any failed requests, or a reconciliation mismatch.
// A baseline predating the open-loop schema (no open_loop section)
// cannot anchor a ratchet; the candidate then only has to be healthy.
func CompareDelivery(baseline, candidate *DeliveryRecord, opt GateOptions) error {
	if opt.Tolerance <= 0 {
		opt.Tolerance = 0.5
	}
	if opt.MaxP99Inflation <= 0 {
		opt.MaxP99Inflation = 4
	}
	if candidate == nil {
		return fmt.Errorf("perfgate: no candidate record")
	}
	if !candidate.Reconciled {
		return fmt.Errorf("perfgate: candidate record did not reconcile against /metrics")
	}
	if candidate.Failed != 0 {
		return fmt.Errorf("perfgate: candidate recorded %d failed requests", candidate.Failed)
	}
	if candidate.OpenLoop == nil || candidate.OpenLoop.Knee == nil {
		return fmt.Errorf("perfgate: candidate record has no open-loop knee (run scdn-loadgen -openloop)")
	}
	if baseline == nil || baseline.OpenLoop == nil || baseline.OpenLoop.Knee == nil {
		// Pre-ratchet history: nothing to compare against. The candidate
		// becoming the new checked-in record starts the ratchet.
		return nil
	}
	base, cand := baseline.OpenLoop.Knee, candidate.OpenLoop.Knee
	if floor := base.AchievedRPS * (1 - opt.Tolerance); cand.AchievedRPS < floor {
		return fmt.Errorf("perfgate: knee throughput regressed: %.1f rps < %.1f rps (baseline %.1f, tolerance %.0f%%)",
			cand.AchievedRPS, floor, base.AchievedRPS, opt.Tolerance*100)
	}
	p99Cap := base.P99MS * opt.MaxP99Inflation
	if p99Cap < GateP99FloorMS {
		p99Cap = GateP99FloorMS
	}
	if cand.P99MS > p99Cap {
		return fmt.Errorf("perfgate: knee p99 regressed: %.2fms > %.2fms cap (baseline %.2fms, inflation %.1fx)",
			cand.P99MS, p99Cap, base.P99MS, opt.MaxP99Inflation)
	}
	return nil
}
