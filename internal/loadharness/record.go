package loadharness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// SchemaVersion is the current BENCH_*.json schema. History:
//
//	(absent) — PR 2–6 records: closed-loop only, no host info, hit rate
//	           unguarded against zero-sample runs.
//	2        — schema_version + host block on every record, guarded
//	           payload_cache_hit_rate, optional open_loop section with
//	           the rate sweep and knee point.
const SchemaVersion = 2

// Host pins the hardware/runtime context a BENCH record was produced
// under, so numbers from different machines are comparable (or visibly
// not): a knee measured at GOMAXPROCS=1 on a shared runner is not a
// regression against one measured on a 16-core box.
type Host struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

// CurrentHost captures the running process's host context.
func CurrentHost() Host {
	return Host{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
}

// HostMismatch describes the hardware-context differences between two
// host blocks that make their numbers incomparable, or "" when there
// are none. The gate warns on a mismatch rather than failing: a knee
// measured at GOMAXPROCS=1 against a 16-core baseline is not a
// regression, it is a different experiment.
func HostMismatch(a, b Host) string {
	var diffs []string
	if a.GOMAXPROCS != b.GOMAXPROCS {
		diffs = append(diffs, fmt.Sprintf("GOMAXPROCS %d vs %d", a.GOMAXPROCS, b.GOMAXPROCS))
	}
	if a.NumCPU != b.NumCPU {
		diffs = append(diffs, fmt.Sprintf("NumCPU %d vs %d", a.NumCPU, b.NumCPU))
	}
	return strings.Join(diffs, ", ")
}

// KneePoint is the sweep's operating point: the highest arrival rate
// the serve path absorbed without falling off the latency cliff.
type KneePoint struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P99MS       float64 `json:"p99_ms"`
}

// OpenLoop is a delivery record's open-loop section: the swept
// latency-vs-throughput curve and its knee.
type OpenLoop struct {
	Distribution    string       `json:"distribution"`
	DurationSeconds float64      `json:"duration_seconds"`
	MaxConns        int          `json:"max_conns"`
	Rates           []RateResult `json:"rates"`
	Knee            *KneePoint   `json:"knee,omitempty"`
}

// NewOpenLoop assembles the open-loop section from sweep results.
func NewOpenLoop(cfg SweepConfig, results []RateResult) *OpenLoop {
	ol := &OpenLoop{
		Distribution:    cfg.Dist,
		DurationSeconds: cfg.Duration.Seconds(),
		MaxConns:        cfg.MaxConns,
		Rates:           results,
	}
	if i := Knee(results); i >= 0 {
		ol.Knee = &KneePoint{
			OfferedRPS:  results[i].OfferedRPS,
			AchievedRPS: results[i].AchievedRPS,
			P99MS:       results[i].LatencyMS.P99,
		}
	}
	return ol
}

// ChurnRecord is the optional churn section shared by delivery, churn,
// and ingest records.
type ChurnRecord struct {
	Spec             string `json:"spec"`
	Kills            int    `json:"kills"`
	Restarts         int    `json:"restarts"`
	AllRestarted     bool   `json:"all_restarted"`
	ExcusedFailures  uint64 `json:"excused_failures"`
	DeadMembers      uint64 `json:"repair_dead_members"`
	Readmissions     uint64 `json:"repair_readmissions"`
	ReplicasRestored uint64 `json:"repair_replicas_restored"`
	Churn503s        uint64 `json:"churn_unavailable"`
}

// DeliveryRecord is the BENCH_delivery.json schema: the delivery
// plane's perf trajectory across PRs, and perfgate's ratchet unit.
type DeliveryRecord struct {
	SchemaVersion   int          `json:"schema_version"`
	Host            Host         `json:"host"`
	Mode            string       `json:"mode"` // "closed-loop" or "open-loop"
	Workers         int          `json:"workers,omitempty"`
	Requests        int          `json:"requests"`
	Stripes         int          `json:"stripes,omitempty"`
	Edges           int          `json:"edges"`
	Datasets        int          `json:"datasets"`
	BytesPerDataset int64        `json:"bytes_per_dataset"`
	PayloadMode     string       `json:"payload_mode"`
	ElapsedSeconds  float64      `json:"elapsed_seconds"`
	ThroughputRPS   float64      `json:"throughput_rps"`
	ThroughputMBps  float64      `json:"throughput_mbps"`
	LatencyMS       Latency      `json:"latency_ms"`
	Failed          uint64       `json:"failed"`
	CacheHits       uint64       `json:"payload_cache_hits"`
	CacheMisses     uint64       `json:"payload_cache_misses"`
	CacheHitRate    float64      `json:"payload_cache_hit_rate"`
	RangeRequests   uint64       `json:"range_requests"`
	Reconciled      bool         `json:"reconciled"`
	OpenLoop        *OpenLoop    `json:"open_loop,omitempty"`
	Churn           *ChurnRecord `json:"churn,omitempty"`
}

// HitRate is hits/(hits+misses), guarded against the zero-sample case —
// a run that never touched the payload cache reports 0, not NaN.
func HitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// WriteRecord marshals any BENCH record as indented JSON.
func WriteRecord(path string, rec any) error {
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadDeliveryRecord loads a BENCH_delivery.json history record.
func ReadDeliveryRecord(path string) (*DeliveryRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec DeliveryRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("loadharness: parse %s: %w", path, err)
	}
	return &rec, nil
}

// LargeMix records how many requests of each flavor a large-object
// run's seeded mix issued: whole-object GETs, ranged window fetches,
// and segment walks (every segment of a dataset via the segment
// endpoint, in order).
type LargeMix struct {
	Whole       uint64 `json:"whole"`
	Ranged      uint64 `json:"ranged"`
	SegmentWalk uint64 `json:"segment_walk"`
}

// LargeRecord is the BENCH_large.json schema: the large-object
// delivery engine's byte-throughput trajectory — the perf ratchet's
// second axis, next to BENCH_delivery.json's request-latency knee.
// The store counters are scraped from the cluster's /metrics after the
// sweep, so a record proves the segmented path actually ran (nonzero
// segmented_serves) rather than measuring the whole-file path by
// accident.
type LargeRecord struct {
	SchemaVersion     int       `json:"schema_version"`
	Host              Host      `json:"host"`
	Mode              string    `json:"mode"` // "open-loop"
	Seed              int64     `json:"seed"`
	Edges             int       `json:"edges"`
	Datasets          int       `json:"datasets"`
	BytesPerDataset   int64     `json:"bytes_per_dataset"`
	SegmentSize       int64     `json:"segment_size"`
	StoreQuota        int64     `json:"store_quota"`
	Mix               LargeMix  `json:"mix"`
	TotalBytes        uint64    `json:"total_bytes"`
	ElapsedSeconds    float64   `json:"elapsed_seconds"`
	SustainedMBps     float64   `json:"sustained_mbps"` // wall-clock MB/s at the knee step
	LatencyMS         Latency   `json:"latency_ms"`
	RequestMBps       Latency   `json:"request_mbps"`
	Failed            uint64    `json:"failed"`
	SegmentedServes   uint64    `json:"segmented_serves"`
	SegmentFetches    uint64    `json:"segment_fetches"`
	SegmentPulls      uint64    `json:"segment_pulls"`
	FadviseSequential uint64    `json:"fadvise_sequential"`
	FadviseDontNeed   uint64    `json:"fadvise_dontneed"`
	Materializations  uint64    `json:"materializations"`
	MaterializedBytes uint64    `json:"materialized_bytes"`
	Reconciled        bool      `json:"reconciled"`
	OpenLoop          *OpenLoop `json:"open_loop,omitempty"`
}

// ReadLargeRecord loads a BENCH_large.json history record.
func ReadLargeRecord(path string) (*LargeRecord, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec LargeRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("loadharness: parse %s: %w", path, err)
	}
	return &rec, nil
}

// GateOptions tunes the perfgate tolerance band. Zero values get
// defaults suited to shared CI runners (loose but real).
type GateOptions struct {
	// Tolerance is the allowed fractional knee-throughput regression:
	// 0.5 fails only when the candidate knee falls below half the
	// baseline knee. Default 0.5.
	Tolerance float64
	// MaxP99Inflation is the allowed knee-p99 growth factor, with an
	// absolute floor of GateP99FloorMS so microsecond baselines don't
	// fail on scheduler noise. Default 4.
	MaxP99Inflation float64
}

// GateP99FloorMS is the absolute knee-p99 level below which the gate
// never fails on latency: single-digit milliseconds on a loopback smoke
// are indistinguishable from scheduler jitter.
const GateP99FloorMS = 25.0

// CompareDelivery is the perf ratchet: it fails (returns an error) when
// the candidate record regresses past the tolerance band relative to
// the checked-in baseline — knee throughput down by more than
// Tolerance, knee p99 inflated past MaxP99Inflation (and above the
// absolute floor), any failed requests, or a reconciliation mismatch.
// A baseline predating the open-loop schema (no open_loop section)
// cannot anchor a ratchet; the candidate then only has to be healthy.
func CompareDelivery(baseline, candidate *DeliveryRecord, opt GateOptions) error {
	if opt.Tolerance <= 0 {
		opt.Tolerance = 0.5
	}
	if opt.MaxP99Inflation <= 0 {
		opt.MaxP99Inflation = 4
	}
	if candidate == nil {
		return fmt.Errorf("perfgate: no candidate record")
	}
	if !candidate.Reconciled {
		return fmt.Errorf("perfgate: candidate record did not reconcile against /metrics")
	}
	if candidate.Failed != 0 {
		return fmt.Errorf("perfgate: candidate recorded %d failed requests", candidate.Failed)
	}
	if candidate.OpenLoop == nil || candidate.OpenLoop.Knee == nil {
		return fmt.Errorf("perfgate: candidate record has no open-loop knee (run scdn-loadgen -openloop)")
	}
	if baseline == nil || baseline.OpenLoop == nil || baseline.OpenLoop.Knee == nil {
		// Pre-ratchet history: nothing to compare against. The candidate
		// becoming the new checked-in record starts the ratchet.
		return nil
	}
	base, cand := baseline.OpenLoop.Knee, candidate.OpenLoop.Knee
	if floor := base.AchievedRPS * (1 - opt.Tolerance); cand.AchievedRPS < floor {
		return fmt.Errorf("perfgate: knee throughput regressed: %.1f rps < %.1f rps (baseline %.1f, tolerance %.0f%%)",
			cand.AchievedRPS, floor, base.AchievedRPS, opt.Tolerance*100)
	}
	p99Cap := base.P99MS * opt.MaxP99Inflation
	if p99Cap < GateP99FloorMS {
		p99Cap = GateP99FloorMS
	}
	if cand.P99MS > p99Cap {
		return fmt.Errorf("perfgate: knee p99 regressed: %.2fms > %.2fms cap (baseline %.2fms, inflation %.1fx)",
			cand.P99MS, p99Cap, base.P99MS, opt.MaxP99Inflation)
	}
	return nil
}

// CompareLarge is the byte-throughput axis of the perf ratchet: the
// candidate BENCH_large.json must be healthy (reconciled, zero
// unexcused failures, a real open-loop knee, the segmented path
// actually exercised) and its sustained MB/s at the knee must not fall
// more than Tolerance below the checked-in baseline's. Latency is
// DeliveryRecord's axis; this one guards bytes.
func CompareLarge(baseline, candidate *LargeRecord, opt GateOptions) error {
	if opt.Tolerance <= 0 {
		opt.Tolerance = 0.5
	}
	if candidate == nil {
		return fmt.Errorf("perfgate: no large candidate record")
	}
	if !candidate.Reconciled {
		return fmt.Errorf("perfgate: large candidate record did not reconcile against /metrics")
	}
	if candidate.Failed != 0 {
		return fmt.Errorf("perfgate: large candidate recorded %d failed requests", candidate.Failed)
	}
	if candidate.OpenLoop == nil || candidate.OpenLoop.Knee == nil {
		return fmt.Errorf("perfgate: large candidate record has no open-loop knee (run scdn-loadgen -large)")
	}
	if candidate.SegmentedServes == 0 && candidate.SegmentFetches == 0 {
		return fmt.Errorf("perfgate: large candidate never hit the segmented path (segmented_serves and segment_fetches both zero)")
	}
	if candidate.SustainedMBps <= 0 {
		return fmt.Errorf("perfgate: large candidate sustained 0 MB/s")
	}
	if baseline == nil {
		// First record starts the ratchet.
		return nil
	}
	if floor := baseline.SustainedMBps * (1 - opt.Tolerance); candidate.SustainedMBps < floor {
		return fmt.Errorf("perfgate: sustained byte throughput regressed: %.1f MB/s < %.1f MB/s (baseline %.1f, tolerance %.0f%%)",
			candidate.SustainedMBps, floor, baseline.SustainedMBps, opt.Tolerance*100)
	}
	return nil
}
