package loadharness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunIssuesOnSchedule(t *testing.T) {
	var calls atomic.Uint64
	res, err := Run(context.Background(), RunConfig{
		Rate: 2000, Duration: 200 * time.Millisecond, Seed: 1,
	}, func(context.Context) error {
		calls.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != calls.Load() {
		t.Fatalf("Issued %d != calls %d", res.Issued, calls.Load())
	}
	// 2000/s for 200ms ≈ 400 arrivals; allow wide statistical slack.
	if res.Issued < 250 || res.Issued > 550 {
		t.Errorf("Issued = %d, want ~400", res.Issued)
	}
	if res.Failed != 0 {
		t.Errorf("Failed = %d, want 0", res.Failed)
	}
	if res.Hist == nil || res.Hist.Count() != res.Issued {
		t.Errorf("histogram count mismatch")
	}
	if res.AchievedRPS <= 0 {
		t.Errorf("AchievedRPS = %g, want > 0", res.AchievedRPS)
	}
}

// TestRunOpenLoopChargesQueueing is the coordinated-omission regression
// test: a server stuck at 1 concurrent request × 20ms each, offered 500
// rps through a 1-slot pool, must report p99 latencies far above the
// 20ms service time — the queueing delay belongs to the measurement. A
// closed-loop harness would report a flat ~20ms here.
func TestRunOpenLoopChargesQueueing(t *testing.T) {
	res, err := Run(context.Background(), RunConfig{
		Rate: 500, Duration: 300 * time.Millisecond, MaxConns: 1, Seed: 3,
	}, func(context.Context) error {
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued < 100 {
		t.Fatalf("Issued = %d; open loop should keep firing past the pool bound", res.Issued)
	}
	if p99 := res.LatencyMS.P99; p99 < 100 {
		t.Errorf("p99 = %gms; queueing behind the saturated pool should dominate (want >= 100ms)", p99)
	}
}

func TestRunRecordsFailures(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Uint64
	res, err := Run(context.Background(), RunConfig{
		Rate: 1000, Duration: 100 * time.Millisecond, Seed: 5,
	}, func(context.Context) error {
		if n.Add(1)%2 == 0 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 || res.Failed > res.Issued {
		t.Fatalf("Failed = %d of %d, want roughly half", res.Failed, res.Issued)
	}
	// Failures still contribute latency samples.
	if res.Hist.Count() != res.Issued {
		t.Errorf("failed requests dropped from histogram: %d != %d", res.Hist.Count(), res.Issued)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, RunConfig{Rate: 1, Duration: time.Hour, Seed: 1},
		func(context.Context) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunRejectsBadRate(t *testing.T) {
	if _, err := Run(context.Background(), RunConfig{Rate: 0}, func(context.Context) error { return nil }); err == nil {
		t.Fatal("rate 0 accepted")
	}
}

func TestSweep(t *testing.T) {
	var steps int
	results, err := Sweep(context.Background(), SweepConfig{
		Rates:    []float64{200, 400, 800},
		Duration: 100 * time.Millisecond,
		Seed:     9,
		Progress: func(RateResult) { steps++ },
	}, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || steps != 3 {
		t.Fatalf("got %d results, %d progress calls, want 3/3", len(results), steps)
	}
	for i, r := range results {
		if r.Issued == 0 {
			t.Errorf("step %d issued nothing", i)
		}
	}
	if _, err := Sweep(context.Background(), SweepConfig{}, func(context.Context) error { return nil }); err == nil {
		t.Error("empty rate ladder accepted")
	}
}

func TestKnee(t *testing.T) {
	mk := func(offered, achieved, p99 float64) RateResult {
		return RateResult{OfferedRPS: offered, AchievedRPS: achieved, Issued: 100,
			LatencyMS: Latency{P99: p99}}
	}
	t.Run("empty", func(t *testing.T) {
		if got := Knee(nil); got != -1 {
			t.Fatalf("Knee(nil) = %d, want -1", got)
		}
	})
	t.Run("classic curve", func(t *testing.T) {
		// Healthy at 1k and 2k, collapses at 4k (achieved stalls, p99 blows up).
		results := []RateResult{
			mk(1000, 995, 1.0),
			mk(2000, 1980, 1.8),
			mk(4000, 2100, 900),
		}
		if got := Knee(results); got != 1 {
			t.Fatalf("Knee = %d, want 1 (the 2k step)", got)
		}
	})
	t.Run("latency cliff without throughput loss", func(t *testing.T) {
		// Achieved keeps up but p99 explodes past 10× the base (and the 5ms
		// absolute floor): still past the knee.
		results := []RateResult{
			mk(1000, 995, 2.0),
			mk(2000, 1990, 400),
		}
		if got := Knee(results); got != 0 {
			t.Fatalf("Knee = %d, want 0", got)
		}
	})
	t.Run("sub-floor jitter ignored", func(t *testing.T) {
		// Base p99 60µs, next step 3ms: >10× but under the 5ms floor — not a cliff.
		results := []RateResult{
			mk(1000, 995, 0.06),
			mk(2000, 1990, 3.0),
		}
		if got := Knee(results); got != 1 {
			t.Fatalf("Knee = %d, want 1", got)
		}
	})
	t.Run("ladder started past saturation", func(t *testing.T) {
		// No step qualifies; fall back to max achieved throughput.
		results := []RateResult{
			mk(8000, 3000, 700),
			mk(16000, 3400, 1500),
		}
		if got := Knee(results); got != 1 {
			t.Fatalf("Knee = %d, want 1 (max achieved)", got)
		}
	})
}

// TestRunBytesByteAxis checks the byte-measured step: total bytes sum
// over successful requests, wall-clock MB/s reconciles with
// bytes/elapsed, and the per-request MB/s distribution is populated in
// native units.
func TestRunBytesByteAxis(t *testing.T) {
	const perReq = int64(50_000)
	res, err := RunBytes(context.Background(), RunConfig{
		Rate: 1000, Duration: 200 * time.Millisecond, Seed: 3,
	}, func(context.Context) (int64, error) {
		return perReq, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued == 0 {
		t.Fatal("no requests issued")
	}
	if want := res.Issued * uint64(perReq); res.Bytes != want {
		t.Fatalf("Bytes = %d, want %d (issued %d × %d)", res.Bytes, want, res.Issued, perReq)
	}
	if res.AchievedMBps <= 0 {
		t.Fatalf("AchievedMBps = %g, want > 0", res.AchievedMBps)
	}
	if res.RequestMBps == nil || res.RequestMBps.P50 <= 0 {
		t.Fatalf("RequestMBps = %+v, want populated distribution", res.RequestMBps)
	}
	if res.MBpsHist == nil || res.MBpsHist.Count() == 0 {
		t.Fatal("MBpsHist not carried")
	}
	// AchievedMBps is bytes over wall-clock: it can never exceed the
	// fastest per-request rate times concurrency, and for instant
	// requests it lands near offered-rate × perReq / 1e6 = 50 MB/s.
	if res.AchievedMBps < 10 || res.AchievedMBps > 200 {
		t.Errorf("AchievedMBps = %g, want ~50", res.AchievedMBps)
	}
}

// TestRunBytesFailuresCarryNoBytes: failed requests count in Failed and
// latency but contribute nothing to the byte axis.
func TestRunBytesFailuresCarryNoBytes(t *testing.T) {
	res, err := RunBytes(context.Background(), RunConfig{
		Rate: 500, Duration: 100 * time.Millisecond, Seed: 4,
	}, func(context.Context) (int64, error) {
		return 0, errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != res.Issued || res.Issued == 0 {
		t.Fatalf("Failed = %d, Issued = %d, want all failed", res.Failed, res.Issued)
	}
	if res.Bytes != 0 || res.AchievedMBps != 0 || res.RequestMBps != nil {
		t.Fatalf("failed run leaked a byte axis: %+v", res)
	}
	if res.AchievedRPS != 0 {
		t.Errorf("AchievedRPS = %g with all requests failed, want 0", res.AchievedRPS)
	}
}

// TestRunDropsByteAxis: the request-only wrapper must not report bytes
// even though it rides RunBytes internally.
func TestRunDropsByteAxis(t *testing.T) {
	res, err := Run(context.Background(), RunConfig{
		Rate: 500, Duration: 100 * time.Millisecond, Seed: 5,
	}, func(context.Context) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 0 || res.AchievedMBps != 0 || res.RequestMBps != nil || res.MBpsHist != nil {
		t.Fatalf("request-only run carries a byte axis: %+v", res)
	}
}
