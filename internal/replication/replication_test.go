package replication

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPublishAndStaleness(t *testing.T) {
	tr := NewTracker()
	tr.AddReplica("d", 1, 0)
	tr.AddReplica("d", 2, 0)
	if tr.StalenessRatio() != 0 {
		t.Fatal("fresh replicas should be current")
	}
	v := tr.Publish("d", 1, time.Second)
	if v != 1 || tr.Latest("d") != 1 {
		t.Fatalf("version = %d", v)
	}
	if !tr.Stale("d", 2) || tr.Stale("d", 1) {
		t.Fatal("staleness wrong after publish")
	}
	if got := tr.StaleReplicas("d"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("stale replicas = %v", got)
	}
	if tr.StalenessRatio() != 0.5 {
		t.Fatalf("staleness ratio = %v", tr.StalenessRatio())
	}
	if tr.Converged("d") {
		t.Fatal("should not be converged")
	}
}

func TestSyncConverges(t *testing.T) {
	tr := NewTracker()
	tr.AddReplica("d", 1, 0)
	tr.AddReplica("d", 2, 0)
	tr.AddReplica("d", 3, 0)
	tr.Publish("d", 1, 10*time.Second)

	changed, err := tr.Sync("d", 1, 2, 20*time.Second)
	if err != nil || !changed {
		t.Fatalf("sync = %v, %v", changed, err)
	}
	if tr.Converged("d") {
		t.Fatal("node 3 still stale")
	}
	// Propagation through an intermediate: 2 syncs 3.
	changed, _ = tr.Sync("d", 2, 3, 30*time.Second)
	if !changed || !tr.Converged("d") {
		t.Fatal("indirect propagation failed")
	}
	// Convergence delay recorded: 30s - 10s = 20s.
	if len(tr.ConvergenceDelay) != 1 || tr.ConvergenceDelay[0] != 20 {
		t.Fatalf("convergence delays = %v", tr.ConvergenceDelay)
	}
	// Re-sync of current nodes: no change, counted as exchange.
	changed, _ = tr.Sync("d", 1, 3, 40*time.Second)
	if changed {
		t.Fatal("no-op sync reported change")
	}
	if tr.Exchanges != 3 {
		t.Fatalf("exchanges = %d", tr.Exchanges)
	}
}

func TestSyncNonHolder(t *testing.T) {
	tr := NewTracker()
	tr.AddReplica("d", 1, 0)
	if _, err := tr.Sync("d", 1, 9, 0); err == nil {
		t.Fatal("sync with non-holder accepted")
	}
	if _, err := tr.Sync("ghost", 1, 2, 0); err == nil {
		t.Fatal("sync of unknown dataset accepted")
	}
}

func TestRemoveReplicaUnblocksConvergence(t *testing.T) {
	tr := NewTracker()
	tr.AddReplica("d", 1, 0)
	tr.AddReplica("d", 2, 0)
	tr.Publish("d", 1, 0)
	// Node 2 disappears (left the CDN) — convergence is about remaining
	// holders.
	tr.RemoveReplica("d", 2)
	if !tr.Converged("d") {
		t.Fatal("dataset with only the origin should be converged")
	}
	if got := tr.Holders("d"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("holders = %v", got)
	}
}

func TestFreshReplicaJoinsCurrent(t *testing.T) {
	tr := NewTracker()
	tr.AddReplica("d", 1, 0)
	tr.Publish("d", 1, 0)
	tr.Publish("d", 1, time.Second)
	// A new holder copies the latest content at join time.
	tr.AddReplica("d", 5, 2*time.Second)
	if tr.Stale("d", 5) {
		t.Fatal("fresh replica should hold the latest version")
	}
}

func TestMultipleUpdatesMonotone(t *testing.T) {
	tr := NewTracker()
	tr.AddReplica("d", 1, 0)
	tr.AddReplica("d", 2, 0)
	for i := 0; i < 5; i++ {
		tr.Publish("d", 1, time.Duration(i)*time.Second)
	}
	if tr.Latest("d") != 5 {
		t.Fatalf("latest = %d", tr.Latest("d"))
	}
	if tr.VersionAt("d", 2) != 0 {
		t.Fatalf("node 2 version = %d, want 0 (never synced)", tr.VersionAt("d", 2))
	}
	tr.Sync("d", 1, 2, 10*time.Second)
	if tr.VersionAt("d", 2) != 5 {
		t.Fatal("sync should jump straight to the newest version")
	}
}

func TestDatasetsSorted(t *testing.T) {
	tr := NewTracker()
	tr.AddReplica("zz", 1, 0)
	tr.AddReplica("aa", 1, 0)
	ids := tr.Datasets()
	if len(ids) != 2 || ids[0] != "aa" {
		t.Fatalf("datasets = %v", ids)
	}
}

// Property: random publish/sync sequences keep every replica version
// bounded by the latest, versions never decrease, and a full pairwise
// sync round always converges.
func TestPropertyAntiEntropyConverges(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTracker()
		nodes := []NodeID{1, 2, 3, 4, 5}
		for _, n := range nodes {
			tr.AddReplica("d", n, 0)
		}
		prev := make(map[NodeID]Version)
		now := time.Duration(0)
		for op := 0; op < int(opsRaw%40)+5; op++ {
			now += time.Second
			if rng.Float64() < 0.3 {
				tr.Publish("d", nodes[rng.Intn(len(nodes))], now)
			} else {
				a := nodes[rng.Intn(len(nodes))]
				b := nodes[rng.Intn(len(nodes))]
				if a != b {
					tr.Sync("d", a, b, now)
				}
			}
			for _, n := range nodes {
				v := tr.VersionAt("d", n)
				if v > tr.Latest("d") || v < prev[n] {
					return false
				}
				prev[n] = v
			}
		}
		// One full round of pairwise syncs with the most-current node
		// first guarantees convergence.
		for _, n := range nodes[1:] {
			tr.Sync("d", nodes[0], n, now)
		}
		for _, n := range nodes[1:] {
			tr.Sync("d", nodes[0], n, now)
		}
		return tr.Converged("d")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
