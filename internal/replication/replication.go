// Package replication keeps dataset replicas consistent as their contents
// evolve: owners publish new versions, and an anti-entropy protocol
// propagates updates between online replica holders until every copy
// converges — the My3-style eventual consistency the paper builds on
// ("updates propagate amongst replicas until profiles are eventually
// consistent", Section VII). The package tracks per-replica versions and
// exposes the staleness and convergence metrics the S-CDN reports.
package replication

import (
	"fmt"
	"sort"
	"time"

	"scdn/internal/storage"
)

// NodeID identifies a replica holder.
type NodeID = int64

// Version is a dataset's monotonically increasing content version.
type Version uint64

// replicaState is one holder's view of one dataset.
type replicaState struct {
	version Version
	// updatedAt is when this holder last advanced its version.
	updatedAt time.Duration
}

// Tracker maintains the version state of every replica of every dataset
// and runs anti-entropy exchanges. Not safe for concurrent use.
type Tracker struct {
	// state[dataset][node] = that node's replica state.
	state map[storage.DatasetID]map[NodeID]*replicaState
	// latest[dataset] = the newest published version.
	latest map[storage.DatasetID]Version
	// published[dataset] = when the newest version appeared.
	published map[storage.DatasetID]time.Duration

	// Exchanges counts anti-entropy syncs performed; Converged counts
	// datasets that reached full convergence at least once after an
	// update; ConvergenceDelay records publish→all-replicas-current
	// delays in seconds.
	Exchanges        uint64
	ConvergenceDelay []float64
	converged        map[storage.DatasetID]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		state:     make(map[storage.DatasetID]map[NodeID]*replicaState),
		latest:    make(map[storage.DatasetID]Version),
		published: make(map[storage.DatasetID]time.Duration),
		converged: make(map[storage.DatasetID]bool),
	}
}

// AddReplica registers a holder for a dataset at the current latest
// version (a fresh copy is current by construction).
func (t *Tracker) AddReplica(id storage.DatasetID, node NodeID, now time.Duration) {
	if t.state[id] == nil {
		t.state[id] = make(map[NodeID]*replicaState)
	}
	t.state[id][node] = &replicaState{version: t.latest[id], updatedAt: now}
}

// RemoveReplica forgets a holder.
func (t *Tracker) RemoveReplica(id storage.DatasetID, node NodeID) {
	delete(t.state[id], node)
}

// Publish records a new content version authored at `by` (typically the
// origin): that holder becomes current, every other copy is now stale.
func (t *Tracker) Publish(id storage.DatasetID, by NodeID, now time.Duration) Version {
	t.latest[id]++
	t.published[id] = now
	t.converged[id] = false
	if t.state[id] == nil {
		t.state[id] = make(map[NodeID]*replicaState)
	}
	t.state[id][by] = &replicaState{version: t.latest[id], updatedAt: now}
	return t.latest[id]
}

// VersionAt returns a holder's replica version (0 if not a holder).
func (t *Tracker) VersionAt(id storage.DatasetID, node NodeID) Version {
	if s, ok := t.state[id][node]; ok {
		return s.version
	}
	return 0
}

// Latest returns the newest published version of a dataset.
func (t *Tracker) Latest(id storage.DatasetID) Version { return t.latest[id] }

// Stale reports whether a holder's copy is behind the latest version.
func (t *Tracker) Stale(id storage.DatasetID, node NodeID) bool {
	return t.VersionAt(id, node) < t.latest[id]
}

// StaleReplicas returns the holders of a dataset whose copies are behind,
// sorted by node ID.
func (t *Tracker) StaleReplicas(id storage.DatasetID) []NodeID {
	var out []NodeID
	for n := range t.state[id] {
		if t.Stale(id, n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sync performs one anti-entropy exchange between two holders of a
// dataset: both end at the pair's maximum version. It returns whether
// either side changed. Unknown holders are an error — sync never
// resurrects dropped replicas.
func (t *Tracker) Sync(id storage.DatasetID, a, b NodeID, now time.Duration) (bool, error) {
	sa, okA := t.state[id][a]
	sb, okB := t.state[id][b]
	if !okA || !okB {
		return false, fmt.Errorf("replication: sync %q between non-holders %d,%d", id, a, b)
	}
	t.Exchanges++
	if sa.version == sb.version {
		return false, nil
	}
	max := sa.version
	if sb.version > max {
		max = sb.version
	}
	sa.version, sb.version = max, max
	sa.updatedAt, sb.updatedAt = now, now
	t.noteConvergence(id, now)
	return true, nil
}

// noteConvergence records the publish→convergence delay the first time
// all holders reach the latest version after a publish.
func (t *Tracker) noteConvergence(id storage.DatasetID, now time.Duration) {
	if t.converged[id] {
		return
	}
	for n := range t.state[id] {
		if t.Stale(id, n) {
			return
		}
	}
	t.converged[id] = true
	t.ConvergenceDelay = append(t.ConvergenceDelay, (now - t.published[id]).Seconds())
}

// Converged reports whether every holder of the dataset is current.
func (t *Tracker) Converged(id storage.DatasetID) bool {
	for n := range t.state[id] {
		if t.Stale(id, n) {
			return false
		}
	}
	return true
}

// StalenessRatio returns the fraction of replica copies (across all
// datasets) that are behind their latest version; 0 when empty.
func (t *Tracker) StalenessRatio() float64 {
	total, stale := 0, 0
	for id, holders := range t.state {
		for n := range holders {
			total++
			if t.Stale(id, n) {
				stale++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(stale) / float64(total)
}

// Datasets returns tracked dataset IDs sorted ascending.
func (t *Tracker) Datasets() []storage.DatasetID {
	out := make([]storage.DatasetID, 0, len(t.state))
	for id := range t.state {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Holders returns a dataset's replica holders sorted ascending.
func (t *Tracker) Holders(id storage.DatasetID) []NodeID {
	out := make([]NodeID, 0, len(t.state[id]))
	for n := range t.state[id] {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
