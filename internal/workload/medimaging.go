package workload

import (
	"fmt"
	"math/rand"
	"time"

	"scdn/internal/graph"
	"scdn/internal/storage"
)

// MedImagingConfig parameterizes the Section IV multi-center MRI trial
// workload: per-subject raw sessions of ~100 MB expand through analysis
// workflows (brain extraction, registration, ROI annotation, FA
// calculation) into derived datasets roughly 14× the raw size — the
// paper's "a DTI FA calculation workflow ... generates approximately
// 1.4 GB from a single raw session (of 100 MB)".
type MedImagingConfig struct {
	Subjects           int
	SessionsPerSubject int
	RawBytes           int64
	// DerivedFactor scales raw → derived total (paper: ~14).
	DerivedFactor float64
	// Stages are the workflow stage names; each produces one derived
	// dataset per session, splitting the derived volume evenly.
	Stages []string
	// AnalystsPerDataset is how many collaborators access each derived
	// dataset during the trial.
	AnalystsPerDataset int
	// Duration spreads accesses over the trial window.
	Duration time.Duration
}

// DefaultMedImaging mirrors the paper's numbers: 100 MB raw sessions,
// 1.4 GB derived, four neurological workflow stages.
func DefaultMedImaging(subjects int) MedImagingConfig {
	return MedImagingConfig{
		Subjects:           subjects,
		SessionsPerSubject: 2,
		RawBytes:           100e6,
		DerivedFactor:      14,
		Stages: []string{
			"brain-extraction", "registration", "roi-annotation", "fa-calculation",
		},
		AnalystsPerDataset: 3,
		Duration:           30 * 24 * time.Hour,
	}
}

// Derivation records a dataset's workflow parentage.
type Derivation struct {
	Parent storage.DatasetID
	Stage  string
}

// MedImagingTrial is the generated workload: the dataset catalog (raw +
// derived) and the access requests of the trial's analysts.
type MedImagingTrial struct {
	Datasets []Dataset
	Requests []Request
	// RawIDs and DerivedIDs partition the catalog.
	RawIDs, DerivedIDs []storage.DatasetID
	// Derivations maps each derived dataset to its parent and stage, for
	// provenance recording.
	Derivations map[storage.DatasetID]Derivation
	// TotalBytes is the catalog volume.
	TotalBytes int64
}

// GenerateMedImaging builds a trial over the given participants: subjects'
// raw sessions are owned by uploading sites (round-robin over
// participants), each workflow stage derives a dataset owned by the
// analyst who ran it, and analysts across the collaboration access the
// derived data.
func GenerateMedImaging(participants []graph.NodeID, cfg MedImagingConfig, rng *rand.Rand) (*MedImagingTrial, error) {
	if len(participants) == 0 {
		return nil, fmt.Errorf("workload: no participants")
	}
	if cfg.Subjects <= 0 || cfg.SessionsPerSubject <= 0 || cfg.RawBytes <= 0 {
		return nil, fmt.Errorf("workload: invalid medical-imaging parameters")
	}
	if len(cfg.Stages) == 0 {
		return nil, fmt.Errorf("workload: no workflow stages")
	}
	if cfg.DerivedFactor <= 0 {
		return nil, fmt.Errorf("workload: non-positive derived factor")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: non-positive duration")
	}
	trial := &MedImagingTrial{Derivations: make(map[storage.DatasetID]Derivation)}
	derivedPerStage := int64(float64(cfg.RawBytes) * cfg.DerivedFactor / float64(len(cfg.Stages)))
	for subj := 0; subj < cfg.Subjects; subj++ {
		uploader := participants[subj%len(participants)]
		for sess := 0; sess < cfg.SessionsPerSubject; sess++ {
			rawID := storage.DatasetID(fmt.Sprintf("raw-s%03d-t%d", subj, sess))
			trial.Datasets = append(trial.Datasets, Dataset{ID: rawID, Owner: uploader, Bytes: cfg.RawBytes})
			trial.RawIDs = append(trial.RawIDs, rawID)
			trial.TotalBytes += cfg.RawBytes
			for _, stage := range cfg.Stages {
				analyst := participants[rng.Intn(len(participants))]
				id := storage.DatasetID(fmt.Sprintf("%s-s%03d-t%d", stage, subj, sess))
				trial.Datasets = append(trial.Datasets, Dataset{ID: id, Owner: analyst, Bytes: derivedPerStage})
				trial.DerivedIDs = append(trial.DerivedIDs, id)
				trial.Derivations[id] = Derivation{Parent: rawID, Stage: stage}
				trial.TotalBytes += derivedPerStage
				// The analyst first fetches the raw session (or the
				// previous stage's output) to run the workflow.
				trial.Requests = append(trial.Requests, Request{
					At:   time.Duration(rng.Int63n(int64(cfg.Duration))),
					User: analyst,
					Data: rawID,
				})
				// Collaborators then access the derived result.
				for a := 0; a < cfg.AnalystsPerDataset; a++ {
					reader := participants[rng.Intn(len(participants))]
					trial.Requests = append(trial.Requests, Request{
						At:   time.Duration(rng.Int63n(int64(cfg.Duration))),
						User: reader,
						Data: id,
					})
				}
			}
		}
	}
	sortRequests(trial.Requests)
	return trial, nil
}
