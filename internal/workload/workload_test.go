package workload

import (
	"math/rand"
	"testing"
	"time"

	"scdn/internal/graph"
)

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(0, 1, rng); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewZipf(10, -1, rng); err == nil {
		t.Fatal("negative exponent accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewZipf(100, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		r := z.Rank()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	// Harmonic: rank0 share ≈ 1/H(100) ≈ 0.192.
	share := float64(counts[0]) / 20000
	if share < 0.15 || share < float64(counts[10])/20000 {
		t.Fatalf("rank-0 share = %v, want ~0.19", share)
	}
}

func TestZipfUniformWhenZeroExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z, _ := NewZipf(10, 0, rng)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.Rank()]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform zipf rank %d count %d far from 1000", i, c)
		}
	}
}

func TestCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	users := []graph.NodeID{1, 2, 3}
	cat, err := Catalog(users, 2, 100, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 6 {
		t.Fatalf("catalog = %d entries", len(cat))
	}
	seen := map[string]bool{}
	for _, d := range cat {
		if d.Bytes < 100 || d.Bytes > 200 {
			t.Fatalf("dataset size %d out of range", d.Bytes)
		}
		if seen[string(d.ID)] {
			t.Fatalf("duplicate dataset ID %s", d.ID)
		}
		seen[string(d.ID)] = true
	}
	if _, err := Catalog(users, 0, 1, 2, rng); err == nil {
		t.Fatal("perUser=0 accepted")
	}
	if _, err := Catalog(users, 1, 10, 5, rng); err == nil {
		t.Fatal("inverted size range accepted")
	}
}

func socialGraph() *graph.Graph {
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	return g
}

func TestSocialRequestsBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := socialGraph()
	cat, _ := Catalog(g.Nodes(), 2, 1e6, 2e6, rng)
	reqs, err := SocialRequests(g, cat, SocialConfig{
		Requests: 500, Duration: time.Hour, PSocial: 0.8, ZipfExponent: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 500 {
		t.Fatalf("requests = %d", len(reqs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At < reqs[i-1].At {
			t.Fatal("requests not time-sorted")
		}
	}
	for _, r := range reqs {
		if r.At < 0 || r.At >= time.Hour {
			t.Fatalf("request time %v out of window", r.At)
		}
	}
}

func TestSocialRequestsLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := socialGraph()
	cat, _ := Catalog(g.Nodes(), 1, 1e6, 1e6, rng)
	owners := map[string]graph.NodeID{}
	for _, d := range cat {
		owners[string(d.ID)] = d.Owner
	}
	reqs, _ := SocialRequests(g, cat, SocialConfig{
		Requests: 2000, Duration: time.Hour, PSocial: 1.0, ZipfExponent: 1,
	}, rng)
	socialHits := 0
	for _, r := range reqs {
		if g.HasEdge(r.User, owners[string(r.Data)]) {
			socialHits++
		}
	}
	// With PSocial=1, most requests from connected users target
	// neighbours' data (isolated users fall back to Zipf).
	if frac := float64(socialHits) / float64(len(reqs)); frac < 0.5 {
		t.Fatalf("social fraction = %v, want > 0.5", frac)
	}
}

func TestSocialRequestsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := socialGraph()
	cat, _ := Catalog(g.Nodes(), 1, 1, 2, rng)
	if _, err := SocialRequests(g, cat, SocialConfig{Requests: 0, Duration: time.Hour}, rng); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, err := SocialRequests(g, nil, SocialConfig{Requests: 1, Duration: time.Hour}, rng); err == nil {
		t.Fatal("empty catalog accepted")
	}
	if _, err := SocialRequests(graph.New(), cat, SocialConfig{Requests: 1, Duration: time.Hour}, rng); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestGenerateMedImaging(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	participants := []graph.NodeID{1, 2, 3, 4, 5}
	cfg := DefaultMedImaging(10)
	trial, err := GenerateMedImaging(participants, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 10 subjects × 2 sessions = 20 raw; ×4 stages = 80 derived.
	if len(trial.RawIDs) != 20 || len(trial.DerivedIDs) != 80 {
		t.Fatalf("raw/derived = %d/%d", len(trial.RawIDs), len(trial.DerivedIDs))
	}
	if len(trial.Datasets) != 100 {
		t.Fatalf("datasets = %d", len(trial.Datasets))
	}
	// Paper's ratio: total ≈ raw × (1 + 14) = 20 × 100MB × 15 = 30 GB.
	wantTotal := int64(20) * 100e6 * 15
	if trial.TotalBytes < wantTotal*95/100 || trial.TotalBytes > wantTotal*105/100 {
		t.Fatalf("total bytes = %d, want ~%d", trial.TotalBytes, wantTotal)
	}
	// Each session: 1 raw-fetch + 4 stages × 3 readers... requests = per
	// stage (1 fetch + 3 reads) × 4 stages × 20 sessions = 320.
	if len(trial.Requests) != 20*4*(1+3) {
		t.Fatalf("requests = %d, want 320", len(trial.Requests))
	}
	for i := 1; i < len(trial.Requests); i++ {
		if trial.Requests[i].At < trial.Requests[i-1].At {
			t.Fatal("trial requests not sorted")
		}
	}
}

func TestGenerateMedImagingValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultMedImaging(1)
	if _, err := GenerateMedImaging(nil, cfg, rng); err == nil {
		t.Fatal("no participants accepted")
	}
	bad := cfg
	bad.Subjects = 0
	if _, err := GenerateMedImaging([]graph.NodeID{1}, bad, rng); err == nil {
		t.Fatal("zero subjects accepted")
	}
	bad = cfg
	bad.Stages = nil
	if _, err := GenerateMedImaging([]graph.NodeID{1}, bad, rng); err == nil {
		t.Fatal("no stages accepted")
	}
	bad = cfg
	bad.DerivedFactor = 0
	if _, err := GenerateMedImaging([]graph.NodeID{1}, bad, rng); err == nil {
		t.Fatal("zero factor accepted")
	}
	bad = cfg
	bad.Duration = 0
	if _, err := GenerateMedImaging([]graph.NodeID{1}, bad, rng); err == nil {
		t.Fatal("zero duration accepted")
	}
}
