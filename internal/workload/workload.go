// Package workload generates the data-access workloads the S-CDN
// simulations run: Zipf-popular dataset catalogs, socially local access
// patterns (collaborators read each other's data), and the Section IV
// medical-imaging pipeline (raw MRI sessions expanding through analysis
// workflows into derived datasets shared across a multi-center trial).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"scdn/internal/graph"
	"scdn/internal/storage"
)

// Dataset is a shareable dataset owned by a user.
type Dataset struct {
	ID    storage.DatasetID
	Owner graph.NodeID
	Bytes int64
}

// Request is one data access: a user needs a dataset at a virtual time.
type Request struct {
	At   time.Duration
	User graph.NodeID
	Data storage.DatasetID
}

// Zipf draws ranks 1..n with exponent s (rank 1 most popular).
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a Zipf sampler over n items. n must be positive and s
// non-negative.
func NewZipf(n int, s float64, rng *rand.Rand) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: zipf over %d items", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: negative zipf exponent %v", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// Rank draws a rank in [0, n).
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Catalog builds datasets owned by the given users: each user owns
// `perUser` datasets with sizes uniform in [minBytes, maxBytes].
func Catalog(users []graph.NodeID, perUser int, minBytes, maxBytes int64, rng *rand.Rand) ([]Dataset, error) {
	if perUser <= 0 || minBytes <= 0 || maxBytes < minBytes {
		return nil, fmt.Errorf("workload: invalid catalog parameters")
	}
	var out []Dataset
	for _, u := range users {
		for i := 0; i < perUser; i++ {
			out = append(out, Dataset{
				ID:    storage.DatasetID(fmt.Sprintf("ds-%d-%d", u, i)),
				Owner: u,
				Bytes: minBytes + rng.Int63n(maxBytes-minBytes+1),
			})
		}
	}
	return out, nil
}

// SocialConfig parameterizes socially local request generation.
type SocialConfig struct {
	// Requests is the total request count.
	Requests int
	// Duration spreads requests uniformly over [0, Duration).
	Duration time.Duration
	// PSocial is the probability a request targets a dataset owned by a
	// social neighbour (vs. Zipf over the whole catalog). This is the
	// paper's premise: collaborators access collaborators' data.
	PSocial float64
	// ZipfExponent shapes global popularity (typical CDN workloads ~0.8-1.2).
	ZipfExponent float64
}

// SocialRequests generates requests where users predominantly read data
// owned by their neighbours in the social graph.
func SocialRequests(g *graph.Graph, catalog []Dataset, cfg SocialConfig, rng *rand.Rand) ([]Request, error) {
	if cfg.Requests <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: invalid request parameters")
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("workload: empty catalog")
	}
	users := g.Nodes()
	if len(users) == 0 {
		return nil, fmt.Errorf("workload: empty graph")
	}
	byOwner := make(map[graph.NodeID][]Dataset)
	for _, d := range catalog {
		byOwner[d.Owner] = append(byOwner[d.Owner], d)
	}
	zipf, err := NewZipf(len(catalog), cfg.ZipfExponent, rng)
	if err != nil {
		return nil, err
	}
	out := make([]Request, 0, cfg.Requests)
	for i := 0; i < cfg.Requests; i++ {
		user := users[rng.Intn(len(users))]
		var ds Dataset
		picked := false
		if rng.Float64() < cfg.PSocial {
			nbrs := g.Neighbors(user)
			if len(nbrs) > 0 {
				// Try a few neighbours for one that owns data.
				for tries := 0; tries < 4; tries++ {
					owner := nbrs[rng.Intn(len(nbrs))]
					if own := byOwner[owner]; len(own) > 0 {
						ds = own[rng.Intn(len(own))]
						picked = true
						break
					}
				}
			}
		}
		if !picked {
			ds = catalog[zipf.Rank()]
		}
		out = append(out, Request{
			At:   time.Duration(rng.Int63n(int64(cfg.Duration))),
			User: user,
			Data: ds.ID,
		})
	}
	sortRequests(out)
	return out, nil
}

// sortRequests orders requests by time, then user, then dataset, for
// deterministic replay.
func sortRequests(reqs []Request) {
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].At != reqs[j].At {
			return reqs[i].At < reqs[j].At
		}
		if reqs[i].User != reqs[j].User {
			return reqs[i].User < reqs[j].User
		}
		return reqs[i].Data < reqs[j].Data
	})
}
