package core

import (
	"testing"
	"time"
)

func TestUpdatePropagation(t *testing.T) {
	s := newSystem(t)
	if err := s.PublishDataset(1, "d", 10e6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlaceReplicas("d", 2); err != nil {
		t.Fatal(err)
	}
	s.Run(time.Hour)
	if err := s.validateReplicationWiring(); err != nil {
		t.Fatal(err)
	}
	if s.Stale("d") {
		t.Fatal("fresh replicas should be current")
	}
	// The owner publishes a new version.
	if err := s.UpdateDataset("d"); err != nil {
		t.Fatal(err)
	}
	if !s.Stale("d") {
		t.Fatal("replicas should be stale after an update")
	}
	// Anti-entropy rounds (2h default) propagate the update.
	s.Run(10 * time.Hour)
	if s.Stale("d") {
		t.Fatalf("update did not converge: %+v", s.Staleness())
	}
	rep := s.Staleness()
	if rep.Propagations == 0 {
		t.Fatal("no propagations recorded")
	}
	if rep.Ratio != 0 {
		t.Fatalf("staleness ratio = %v", rep.Ratio)
	}
	if rep.MeanConvergenceSeconds <= 0 {
		t.Fatalf("convergence delay = %v", rep.MeanConvergenceSeconds)
	}
}

func TestUpdateUnknownDataset(t *testing.T) {
	s := newSystem(t)
	if err := s.UpdateDataset("ghost"); err == nil {
		t.Fatal("unknown dataset updated")
	}
}

func TestStalenessSampled(t *testing.T) {
	s := newSystem(t)
	s.PublishDataset(1, "d", 1e6)
	s.PlaceReplicas("d", 2)
	s.Run(2 * time.Hour)
	s.UpdateDataset("d")
	s.Run(3 * time.Hour)
	if s.CDN.StalenessSamples.Count() == 0 {
		t.Fatal("no staleness samples")
	}
}

func TestAntiEntropyWaitsForChurnedNodes(t *testing.T) {
	// With churn, offline holders cannot sync; they converge after they
	// come back. We only assert the system never syncs an offline node
	// inconsistently and that the wiring stays valid throughout.
	users, edges := mixedCommunity()
	cfg := DefaultConfig(23)
	cfg.Churn = true
	cfg.AntiEntropyInterval = time.Hour
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(1, "d", 5e6)
	s.PlaceReplicas("d", 3)
	s.Run(2 * time.Hour)
	s.UpdateDataset("d")
	s.Run(72 * time.Hour)
	if err := s.validateReplicationWiring(); err != nil {
		t.Fatal(err)
	}
	// Over three days every holder should have seen an online overlap
	// with a current holder.
	if s.Stale("d") {
		t.Fatalf("72h of anti-entropy did not converge: %+v", s.Staleness())
	}
}
