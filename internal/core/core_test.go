package core

import (
	"strings"
	"testing"
	"time"

	"scdn/internal/cdnclient"
	"scdn/internal/graph"
	"scdn/internal/metrics"
	"scdn/internal/sim"
	"scdn/internal/socialnet"
	"scdn/internal/storage"
	"scdn/internal/workload"
)

// smallCommunity builds a 6-user community: two triads bridged by an edge.
func smallCommunity() ([]User, []Edge) {
	users := make([]User, 0, 6)
	for i := 1; i <= 6; i++ {
		users = append(users, User{
			ID: graph.NodeID(i), Name: "u", SiteID: i - 1,
			CapacityBytes: 10e9, ReplicaReserveBytes: 5e9,
			Institutional: true, // deterministic tests: no churn
		})
	}
	edges := []Edge{
		{A: 1, B: 2, Type: socialnet.Coauthor, Strength: 2},
		{A: 2, B: 3, Type: socialnet.Coauthor, Strength: 1},
		{A: 1, B: 3, Type: socialnet.Coauthor, Strength: 1},
		{A: 4, B: 5, Type: socialnet.Coauthor, Strength: 3},
		{A: 5, B: 6, Type: socialnet.Coauthor, Strength: 1},
		{A: 4, B: 6, Type: socialnet.Coauthor, Strength: 1},
		{A: 3, B: 4, Type: socialnet.Colleague, Strength: 1},
	}
	return users, edges
}

func newSystem(t *testing.T) *SCDN {
	t.Helper()
	users, edges := smallCommunity()
	cfg := DefaultConfig(7)
	cfg.Churn = false
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(1), nil, nil); err == nil {
		t.Fatal("empty community accepted")
	}
	users, _ := smallCommunity()
	bad := []Edge{{A: 1, B: 99}}
	if _, err := New(DefaultConfig(1), users, bad); err == nil {
		t.Fatal("edge to unknown user accepted")
	}
}

func TestUsersAndAccessors(t *testing.T) {
	s := newSystem(t)
	ids := s.Users()
	if len(ids) != 6 || ids[0] != 1 || ids[5] != 6 {
		t.Fatalf("users = %v", ids)
	}
	if _, err := s.Client(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Client(99); err == nil {
		t.Fatal("unknown client resolved")
	}
	if _, err := s.Repository(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Repository(99); err == nil {
		t.Fatal("unknown repository resolved")
	}
}

func TestPublishDataset(t *testing.T) {
	s := newSystem(t)
	if err := s.PublishDataset(1, "d1", 1e9); err != nil {
		t.Fatal(err)
	}
	repo, _ := s.Repository(1)
	if !repo.HasLocal("d1") {
		t.Fatal("origin copy missing")
	}
	if err := s.PublishDataset(99, "d2", 1); err == nil {
		t.Fatal("unknown owner accepted")
	}
	if err := s.PublishDataset(1, "d1", 1e9); err == nil {
		t.Fatal("duplicate publish accepted")
	}
}

func TestPlaceReplicasAndAccess(t *testing.T) {
	s := newSystem(t)
	if err := s.PublishDataset(1, "d1", 1e9); err != nil {
		t.Fatal(err)
	}
	placed, err := s.PlaceReplicas("d1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 2 {
		t.Fatalf("placed = %v", placed)
	}
	// Run the sim so transfers complete and replicas register.
	s.Run(2 * time.Hour)
	reps, err := s.Cluster.Replicas("d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 { // origin + 2
		t.Fatalf("replicas = %d, want 3", len(reps))
	}
	if s.Social.AcceptanceRate() != 1 {
		t.Fatalf("acceptance = %v", s.Social.AcceptanceRate())
	}

	// A far user accesses the data.
	var result *cdnclient.AccessResult
	if err := s.RequestAccess(6, "d1", func(r cdnclient.AccessResult) { result = &r }); err != nil {
		t.Fatal(err)
	}
	s.Run(6 * time.Hour)
	if result == nil {
		t.Fatal("access never completed")
	}
	if result.Outcome != cdnclient.ReplicaFetch && result.Outcome != cdnclient.OriginFetch {
		t.Fatalf("outcome = %v", result.Outcome)
	}
	if s.CDN.RequestsServed.Value() != 1 {
		t.Fatalf("served = %d", s.CDN.RequestsServed.Value())
	}
	repo6, _ := s.Repository(6)
	if !repo6.HasLocal("d1") {
		t.Fatal("fetched data not in requester's folder")
	}
	// Second access: local hit.
	s.RequestAccess(6, "d1", nil)
	s.Run(7 * time.Hour)
	if s.CDN.LocalHits.Value() != 1 {
		t.Fatalf("local hits = %d", s.CDN.LocalHits.Value())
	}
}

func TestRequestAccessUnknownUser(t *testing.T) {
	s := newSystem(t)
	if err := s.RequestAccess(99, "d", nil); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestAccessDeniedOutsideGroup(t *testing.T) {
	s := newSystem(t)
	s.PublishDataset(1, "d1", 1e6)
	// Remove user 6 from the collaboration group.
	s.Platform.LeaveGroup(s.Config.GroupName, 6)
	var result *cdnclient.AccessResult
	s.RequestAccess(6, "d1", func(r cdnclient.AccessResult) { result = &r })
	s.Run(time.Hour)
	if result == nil || result.Outcome != cdnclient.Denied {
		t.Fatalf("result = %+v, want Denied", result)
	}
	if s.CDN.RequestsFailed.Value() != 1 {
		t.Fatal("denied access not counted as failed")
	}
}

func TestChurnMakesNodesOffline(t *testing.T) {
	users, edges := smallCommunity()
	for i := range users {
		users[i].Institutional = false
	}
	cfg := DefaultConfig(11)
	cfg.Churn = true
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	offline := 0
	for hour := 0; hour < 24; hour++ {
		for _, id := range s.Users() {
			if !s.OnlineAt(id, time.Duration(hour)*time.Hour) {
				offline++
			}
		}
	}
	if offline == 0 {
		t.Fatal("diurnal churn produced no offline slots")
	}
	if s.OnlineAt(99, 0) {
		t.Fatal("unknown user reported online")
	}
}

func TestMaintenanceReplicatesHotData(t *testing.T) {
	users, edges := smallCommunity()
	cfg := DefaultConfig(13)
	cfg.Churn = false
	cfg.DemandThreshold = 3
	cfg.MaintenanceInterval = time.Hour
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(1, "hot", 1e6)
	before := s.Cluster.ReplicaCount("hot")
	// Distinct users hammer the dataset (each fetch is remote once, then
	// local, so use many users for sustained demand).
	for round := 0; round < 3; round++ {
		for _, u := range []graph.NodeID{2, 3, 4, 5, 6} {
			u := u
			at := time.Duration(round)*20*time.Minute + time.Duration(u)*time.Minute
			s.Engine.ScheduleAt(toSimTime(at), func() {
				repo, _ := s.Repository(u)
				// Drop any cached copy so demand keeps hitting the cluster.
				if repo.HasLocal("hot") {
					// Re-request anyway; local hits don't touch the cluster,
					// so force a resolve by accessing through the cluster
					// directly for demand accounting.
					s.Cluster.Resolve("hot", int64(u))
					return
				}
				s.RequestAccess(u, "hot", nil)
			})
		}
	}
	s.Run(5 * time.Hour)
	after := s.Cluster.ReplicaCount("hot")
	if after <= before {
		t.Fatalf("maintenance did not add replicas: %d → %d", before, after)
	}
}

func TestLoadRequestsDrivesWorkload(t *testing.T) {
	s := newSystem(t)
	s.PublishDataset(1, "a", 1e6)
	s.PublishDataset(4, "b", 1e6)
	reqs := []workload.Request{
		{At: time.Minute, User: 2, Data: "a"},
		{At: 2 * time.Minute, User: 5, Data: "b"},
		{At: 3 * time.Minute, User: 6, Data: "a"},
	}
	s.LoadRequests(reqs)
	s.Run(2 * time.Hour)
	total := s.CDN.RequestsServed.Value() + s.CDN.RequestsFailed.Value()
	if total != 3 {
		t.Fatalf("requests handled = %d, want 3", total)
	}
}

func TestSamplingPopulatesMetrics(t *testing.T) {
	s := newSystem(t)
	s.PublishDataset(1, "d", 1e6)
	s.Run(5 * time.Hour)
	if s.CDN.AvailabilitySamples.Count() == 0 {
		t.Fatal("no availability samples")
	}
	if s.CDN.Availability() != 1 { // all institutional → always on
		t.Fatalf("availability = %v, want 1", s.CDN.Availability())
	}
	if s.CDN.RedundancySamples.Count() == 0 {
		t.Fatal("no redundancy samples")
	}
	var sb strings.Builder
	if err := metrics.Report(&sb, s.CDN, s.Social, 5*time.Hour); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CDN metrics") {
		t.Fatal("report malformed")
	}
}

func TestCommunityFromSubgraphValidation(t *testing.T) {
	if _, _, err := CommunityFromSubgraph(nil, 0.1); err == nil {
		t.Fatal("nil subgraph accepted")
	}
}

func TestTrustAccumulatesFromTransfers(t *testing.T) {
	s := newSystem(t)
	s.PublishDataset(1, "d", 1e6)
	s.RequestAccess(2, "d", nil)
	s.Run(time.Hour)
	if s.Trust.Score(1, 2, time.Hour) <= 0 {
		t.Fatal("completed transfer did not build trust")
	}
}

// toSimTime converts a duration offset to sim time.
func toSimTime(d time.Duration) sim.Time { return sim.Time(d) }

// TestSimulationDeterminism: identical seeds must produce bit-identical
// metrics regardless of wall-clock conditions — the reproducibility
// contract of the whole simulator.
func TestSimulationDeterminism(t *testing.T) {
	run := func() (uint64, uint64, float64, uint64, float64) {
		users, edges := smallCommunity()
		for i := range users {
			users[i].Institutional = false
		}
		cfg := DefaultConfig(99)
		cfg.Churn = true
		cfg.MigrationUptimeFloor = 0.5
		s, err := New(cfg, users, edges)
		if err != nil {
			t.Fatal(err)
		}
		s.PublishDataset(1, "a", 50e6)
		s.PublishDataset(4, "b", 80e6)
		s.PlaceReplicas("a", 2)
		s.PlaceReplicas("b", 2)
		reqs := []workload.Request{}
		for i := 0; i < 40; i++ {
			reqs = append(reqs, workload.Request{
				At:   time.Duration(i) * 37 * time.Minute,
				User: graph.NodeID(1 + i%6),
				Data: storageID2(i%2 == 0),
			})
		}
		s.LoadRequests(reqs)
		s.Engine.Schedule(24*time.Hour, func() { s.UpdateDataset("a") })
		s.Run(72 * time.Hour)
		return s.CDN.RequestsServed.Value(), s.CDN.RequestsFailed.Value(),
			s.CDN.ResponseTime.Mean(), s.Social.Exchanges.Value(), s.Replication.StalenessRatio()
	}
	s1, f1, r1, e1, st1 := run()
	s2, f2, r2, e2, st2 := run()
	if s1 != s2 || f1 != f2 || r1 != r2 || e1 != e2 || st1 != st2 {
		t.Fatalf("non-deterministic: (%d,%d,%v,%d,%v) vs (%d,%d,%v,%d,%v)",
			s1, f1, r1, e1, st1, s2, f2, r2, e2, st2)
	}
}

func storageID2(a bool) storage.DatasetID {
	if a {
		return "a"
	}
	return "b"
}
