package core

import (
	"testing"
	"time"

	"scdn/internal/cdnclient"
	"scdn/internal/graph"
	"scdn/internal/placement"
	"scdn/internal/socialnet"
	"scdn/internal/trust"
)

// mixedCommunity builds ten users: 1-2 institutional, the rest personal
// machines that churn.
func mixedCommunity() ([]User, []Edge) {
	var users []User
	for i := 1; i <= 10; i++ {
		users = append(users, User{
			ID: graph.NodeID(i), Name: "u", SiteID: (i - 1) % 8,
			CapacityBytes: 20e9, ReplicaReserveBytes: 10e9,
			Institutional: i <= 2,
		})
	}
	var edges []Edge
	// Hub-and-spoke around user 1 plus a chain, so placement has choices.
	for i := 2; i <= 6; i++ {
		edges = append(edges, Edge{A: 1, B: graph.NodeID(i), Type: socialnet.Coauthor, Strength: 2})
	}
	for i := 6; i < 10; i++ {
		edges = append(edges, Edge{A: graph.NodeID(i), B: graph.NodeID(i + 1), Type: socialnet.Coauthor, Strength: 1})
	}
	return users, edges
}

func TestStrategyTrustPrefersProvenPartners(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(3)
	cfg.Churn = false
	cfg.Strategy = StrategyTrust
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Build heavy proven trust on one of node 9's edges (publications).
	for i := 0; i < 20; i++ {
		s.Trust.Record(9, 10, trust.Interaction{Kind: trust.Publication})
	}
	s.PublishDataset(1, "d", 1e6)
	placed, err := s.PlaceReplicas("d", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Node 9 has trust-weighted degree 2 edges × (1+20) on one edge
	// = base 2 + 20 ≈ 22, beating the hub (degree 5, weight ~5).
	if len(placed) != 1 || placed[0] != 9 {
		t.Fatalf("trust strategy placed %v, want [9]", placed)
	}
}

func TestStrategyAvailabilityAvoidsChurners(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(5)
	cfg.Churn = true // users 3..10 churn; 1 and 2 are institutional
	cfg.Strategy = StrategyAvailability
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(3, "d", 1e6)
	placed, err := s.PlaceReplicas("d", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 1 {
		t.Fatalf("placed = %v", placed)
	}
	// The chosen host should be institutional (uptime 1): user 1 (hub,
	// degree 5 × 1.0 beats everything).
	if placed[0] != 1 {
		t.Fatalf("availability strategy placed %v, want institutional hub 1", placed)
	}
}

func TestMigrationMovesReplicasOffWeakHosts(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(7)
	cfg.Churn = true
	cfg.MaintenanceInterval = time.Hour
	cfg.MigrationUptimeFloor = 0.9 // anything below 90% uptime migrates
	cfg.Placement = placement.NodeDegree{}
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(1, "d", 1e6)
	// Force a replica onto a churny low-uptime host (user 7).
	repo7, _ := s.Repository(7)
	if err := repo7.StoreReplica("d", 1e6, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Cluster.AddReplica("d", 7, 0); err != nil {
		t.Fatal(err)
	}
	uptime7 := 0.0
	for hour := 0; hour < 24; hour++ {
		if s.OnlineAt(7, time.Duration(hour)*time.Hour) {
			uptime7++
		}
	}
	if uptime7/24 >= 0.9 {
		t.Skip("seed produced an unusually stable trace for user 7")
	}
	s.Run(3 * time.Hour)
	if s.CDN.Migrations.Value() == 0 {
		t.Fatal("no migration recorded")
	}
	if repo7.HasReplica("d") {
		t.Fatal("weak host still holds the replica")
	}
	// Redundancy preserved: someone else holds a copy besides the origin.
	reps, _ := s.Cluster.Replicas("d")
	if len(reps) < 2 {
		t.Fatalf("replicas after migration = %v", reps)
	}
	for _, r := range reps {
		if r.Node == 7 {
			t.Fatal("catalog still lists the weak host")
		}
	}
}

func TestAllocationServerOutageTransparent(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(11)
	cfg.Churn = false
	cfg.AllocationServers = 3
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(1, "d", 1e6)
	s.PlaceReplicas("d", 2)
	s.Run(time.Hour)
	// One server dies; the cluster keeps resolving.
	if err := s.Cluster.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	// User 4 is a leaf that never hosts replicas in this topology.
	var result *cdnclient.AccessResult
	s.RequestAccess(4, "d", func(r cdnclient.AccessResult) { result = &r })
	s.Run(2 * time.Hour)
	if result == nil || (result.Outcome != cdnclient.ReplicaFetch && result.Outcome != cdnclient.OriginFetch) {
		t.Fatalf("access during outage = %+v", result)
	}
	// Publishing during the outage replicates to live members only...
	if err := s.PublishDataset(2, "d2", 1e6); err != nil {
		t.Fatal(err)
	}
	// ...and the rejoining server resyncs the catalog.
	if err := s.Cluster.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	var r2 *cdnclient.AccessResult
	s.RequestAccess(10, "d2", func(r cdnclient.AccessResult) { r2 = &r })
	s.Run(4 * time.Hour)
	if r2 == nil || r2.Outcome == cdnclient.Unavailable {
		t.Fatalf("post-rejoin access = %+v", r2)
	}
}

func TestTotalAllocationOutageFailsGracefully(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(13)
	cfg.Churn = false
	cfg.AllocationServers = 2
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(1, "d", 1e6)
	s.Run(time.Hour)
	s.Cluster.SetDown(0, true)
	s.Cluster.SetDown(1, true)
	var result *cdnclient.AccessResult
	s.RequestAccess(9, "d", func(r cdnclient.AccessResult) { result = &r })
	s.Run(2 * time.Hour)
	if result == nil || result.Outcome != cdnclient.Unavailable {
		t.Fatalf("access with no catalog = %+v, want Unavailable", result)
	}
	if s.CDN.RequestsFailed.Value() == 0 {
		t.Fatal("failed request not counted")
	}
}

func TestTransferFailureStorm(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(17)
	cfg.Churn = false
	cfg.TransferFailureProb = 0.95 // nearly everything fails, even retried
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(1, "d", 100e6)
	failures := 0
	for _, u := range []graph.NodeID{5, 6, 7, 8, 9, 10} {
		u := u
		s.RequestAccess(u, "d", func(r cdnclient.AccessResult) {
			if r.Outcome == cdnclient.TransferFailed {
				failures++
			}
		})
	}
	s.Run(12 * time.Hour)
	if failures == 0 {
		t.Fatal("0.95 failure probability produced no terminal failures across 6 transfers")
	}
	if s.Social.SuccessRatio() == 1 {
		t.Fatal("success ratio should reflect failed exchanges")
	}
	// Failed transfers must erode trust, not build it.
	if s.Trust.Score(1, 5, s.Engine.Now().Duration()) > 1 {
		t.Fatalf("trust grew despite failure storm: %v", s.Trust.Score(1, 5, s.Engine.Now().Duration()))
	}
}

func TestP2PFallbackRescuesAccess(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(29)
	cfg.Churn = false
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(1, "d", 1e6)
	s.Run(time.Hour)
	// Ensure a neighbour of 10 holds a copy: user 9 fetches it first.
	// (No CDN replicas are placed, so 10 itself cannot hold the data.)
	s.RequestAccess(9, "d", nil)
	s.Run(2 * time.Hour)
	repo9, _ := s.Repository(9)
	if !repo9.HasLocal("d") {
		t.Fatal("setup: user 9 should hold a copy")
	}
	// Total catalog outage.
	s.Cluster.SetDown(0, true)
	s.Cluster.SetDown(1, true)
	var result *cdnclient.AccessResult
	s.RequestAccess(10, "d", func(r cdnclient.AccessResult) { result = &r })
	s.Run(4 * time.Hour)
	if result == nil {
		t.Fatal("access incomplete")
	}
	if result.Outcome != cdnclient.ReplicaFetch && result.Outcome != cdnclient.OriginFetch {
		t.Fatalf("P2P fallback outcome = %v", result.Outcome)
	}
	if result.Source != 9 {
		t.Fatalf("P2P fallback served from %d, want neighbour 9", result.Source)
	}
	if s.P2PLookups == 0 {
		t.Fatal("P2P lookup not counted")
	}
}

func TestP2PFallbackTwoHops(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(31)
	cfg.Churn = false
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Owner 8 publishes; 10's 2-hop neighbourhood includes 8 (10-9-8).
	s.PublishDataset(8, "d", 1e6)
	s.Run(time.Hour)
	s.Cluster.SetDown(0, true)
	s.Cluster.SetDown(1, true)
	var result *cdnclient.AccessResult
	s.RequestAccess(10, "d", func(r cdnclient.AccessResult) { result = &r })
	s.Run(3 * time.Hour)
	if result == nil || result.Source != 8 {
		t.Fatalf("2-hop P2P result = %+v, want source 8", result)
	}
}

func TestP2PFallbackDisabled(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(37)
	cfg.Churn = false
	cfg.P2PFallback = false
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	s.PublishDataset(8, "d", 1e6)
	s.Run(time.Hour)
	s.Cluster.SetDown(0, true)
	s.Cluster.SetDown(1, true)
	var result *cdnclient.AccessResult
	s.RequestAccess(9, "d", func(r cdnclient.AccessResult) { result = &r })
	s.Run(2 * time.Hour)
	if result == nil || result.Outcome != cdnclient.Unavailable {
		t.Fatalf("disabled fallback result = %+v, want Unavailable", result)
	}
	if s.P2PLookups != 0 {
		t.Fatal("disabled fallback performed lookups")
	}
}

func TestP2PFallbackBeyondTwoHopsFails(t *testing.T) {
	users, edges := mixedCommunity()
	cfg := DefaultConfig(41)
	cfg.Churn = false
	s, err := New(cfg, users, edges)
	if err != nil {
		t.Fatal(err)
	}
	// Owner 10 publishes; requester 2 is 1-10: 2-1-6-7-8-9-10 → 5+ hops.
	s.PublishDataset(10, "d", 1e6)
	s.Run(time.Hour)
	s.Cluster.SetDown(0, true)
	s.Cluster.SetDown(1, true)
	var result *cdnclient.AccessResult
	s.RequestAccess(2, "d", func(r cdnclient.AccessResult) { result = &r })
	s.Run(2 * time.Hour)
	if result == nil || result.Outcome != cdnclient.Unavailable {
		t.Fatalf("distant P2P result = %+v, want Unavailable (beyond gossip horizon)", result)
	}
}
