package core

import (
	"fmt"

	"scdn/internal/coauthor"
	"scdn/internal/socialnet"
)

// CommunityFromSubgraph converts a trust-pruned coauthorship subgraph into
// the users and edges of an S-CDN community: every author becomes a
// participant (auto-assigned sites), every coauthorship edge a Coauthor
// tie weighted by the pair's publication count. Institutional nodes are
// the top-degree fraction given by institutionalFrac (PIs and labs run
// always-on servers; students' workstations churn).
func CommunityFromSubgraph(sub *coauthor.Subgraph, institutionalFrac float64) ([]User, []Edge, error) {
	if sub == nil || sub.Graph.NumNodes() == 0 {
		return nil, nil, fmt.Errorf("core: empty subgraph")
	}
	if institutionalFrac < 0 || institutionalFrac > 1 {
		return nil, nil, fmt.Errorf("core: institutional fraction %v outside [0,1]", institutionalFrac)
	}
	weights := (&coauthor.Corpus{Publications: sub.Pubs}).EdgeWeights()

	nodes := sub.Graph.Nodes()
	// Top-degree nodes become institutional.
	byDegree := make([]coauthor.AuthorID, len(nodes))
	copy(byDegree, nodes)
	for i := 1; i < len(byDegree); i++ { // insertion sort by degree desc (stable for tests)
		for j := i; j > 0 && sub.Graph.Degree(byDegree[j]) > sub.Graph.Degree(byDegree[j-1]); j-- {
			byDegree[j], byDegree[j-1] = byDegree[j-1], byDegree[j]
		}
	}
	instCount := int(float64(len(nodes)) * institutionalFrac)
	institutional := make(map[coauthor.AuthorID]bool, instCount)
	for i := 0; i < instCount; i++ {
		institutional[byDegree[i]] = true
	}

	users := make([]User, 0, len(nodes))
	for i, n := range nodes {
		users = append(users, User{
			ID:            n,
			Name:          fmt.Sprintf("author-%d", n),
			SiteID:        i % 16, // spread over the world-site catalog
			Institutional: institutional[n],
		})
	}
	var edges []Edge
	for _, e := range sub.Graph.Edges() {
		w := float64(weights[coauthor.MakePair(e.U, e.V)])
		if w == 0 {
			w = 1
		}
		edges = append(edges, Edge{A: e.U, B: e.V, Type: socialnet.Coauthor, Strength: w})
	}
	return users, edges, nil
}
