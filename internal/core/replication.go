package core

import (
	"fmt"
	"time"

	"scdn/internal/graph"
	"scdn/internal/storage"
)

// UpdateDataset publishes a new version of a dataset from its origin: the
// owner's copy becomes current and every replica is stale until
// anti-entropy propagates the update (the My3-style eventual consistency
// of Section VII's DOSN lineage).
func (s *SCDN) UpdateDataset(id storage.DatasetID) error {
	origin, err := s.Cluster.Origin(id)
	if err != nil {
		return err
	}
	s.Replication.Publish(id, origin, s.Engine.Now().Duration())
	s.Provenance.RecordUpdated(id, origin, s.Engine.Now().Duration())
	return nil
}

// Stale reports whether any replica of the dataset is behind its latest
// version.
func (s *SCDN) Stale(id storage.DatasetID) bool {
	return !s.Replication.Converged(id)
}

// antiEntropy runs one propagation round: for every dataset with stale
// holders, each stale holder that is online pulls the update from an
// online current holder (the delta travels as a transfer sized at
// DeltaFraction of the dataset).
func (s *SCDN) antiEntropy() {
	now := s.Engine.Now().Duration()
	for _, id := range s.Replication.Datasets() {
		stale := s.Replication.StaleReplicas(id)
		if len(stale) == 0 {
			continue
		}
		// Current online holders are the sync sources.
		var sources []NodeID
		for _, n := range s.Replication.Holders(id) {
			if !s.Replication.Stale(id, n) && s.OnlineAt(graph.NodeID(n), now) {
				sources = append(sources, n)
			}
		}
		if len(sources) == 0 {
			continue
		}
		bytes := s.dataset[id]
		delta := int64(float64(bytes) * s.deltaFraction())
		if delta < 1 {
			delta = 1
		}
		for i, n := range stale {
			if !s.OnlineAt(graph.NodeID(n), now) {
				continue
			}
			src := sources[i%len(sources)]
			n := n
			id := id
			err := (fetcher{s}).Fetch(src, n, delta, func(ok bool, _ time.Duration, _ float64) {
				if !ok {
					return
				}
				if _, err := s.Replication.Sync(id, src, n, s.Engine.Now().Duration()); err == nil {
					s.CDN.UpdatePropagations.Inc()
				}
			})
			if err != nil {
				continue
			}
		}
	}
}

// deltaFraction is the update-delta size relative to the full dataset.
func (s *SCDN) deltaFraction() float64 {
	if s.Config.UpdateDeltaFraction > 0 {
		return s.Config.UpdateDeltaFraction
	}
	return 0.1
}

// StalenessReport summarizes replica freshness.
type StalenessReport struct {
	// Ratio is the fraction of replica copies behind their latest version.
	Ratio float64
	// StaleDatasets lists datasets with at least one stale copy.
	StaleDatasets []storage.DatasetID
	// MeanConvergenceSeconds averages publish→full-convergence delays.
	MeanConvergenceSeconds float64
	// Propagations is the number of successful update deliveries.
	Propagations uint64
}

// Staleness returns the current replication freshness summary.
func (s *SCDN) Staleness() StalenessReport {
	rep := StalenessReport{
		Ratio:        s.Replication.StalenessRatio(),
		Propagations: s.CDN.UpdatePropagations.Value(),
	}
	for _, id := range s.Replication.Datasets() {
		if !s.Replication.Converged(id) {
			rep.StaleDatasets = append(rep.StaleDatasets, id)
		}
	}
	if n := len(s.Replication.ConvergenceDelay); n > 0 {
		sum := 0.0
		for _, d := range s.Replication.ConvergenceDelay {
			sum += d
		}
		rep.MeanConvergenceSeconds = sum / float64(n)
	}
	return rep
}

// validateReplicationWiring is a defensive check used by tests: every
// catalog replica must be tracked and vice versa.
func (s *SCDN) validateReplicationWiring() error {
	ids, err := s.Cluster.Datasets()
	if err != nil {
		return err
	}
	for _, id := range ids {
		catalog := make(map[NodeID]struct{})
		reps, err := s.Cluster.Replicas(id)
		if err != nil {
			return err
		}
		for _, r := range reps {
			catalog[r.Node] = struct{}{}
		}
		tracked := s.Replication.Holders(id)
		if len(tracked) != len(catalog) {
			return fmt.Errorf("core: dataset %q tracks %d holders, catalog has %d",
				id, len(tracked), len(catalog))
		}
		for _, n := range tracked {
			if _, ok := catalog[n]; !ok {
				return fmt.Errorf("core: dataset %q tracks non-catalog holder %d", id, n)
			}
		}
	}
	return nil
}
